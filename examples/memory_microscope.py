"""Memory microscope: watch the simulator's primitives explain the paper.

Uses the low-level gpusim API directly — coalescing, bank conflicts, L2,
occupancy — to reproduce the *mechanisms* behind each optimization, not
just the end-to-end numbers.

Run with ``python examples/memory_microscope.py``.
"""

import numpy as np

from repro import TITAN_BLACK
from repro.gpusim import (
    LaunchConfig,
    SetAssociativeCache,
    analyze_warps,
    compute_occupancy,
    conflict_degree,
    latency_hiding_factor,
    strided_pattern,
    tile_column_access,
)
from repro.tensors import CHWN, NCHW, TensorDesc


def main() -> None:
    device = TITAN_BLACK

    print("== 1. Coalescing: why CHWN pooling wins (Section IV.B) ==")
    desc_chwn = TensorDesc(128, 96, 55, 55, CHWN)
    desc_nchw = desc_chwn.with_layout(NCHW)
    # A pooling warp walks 32 consecutive outputs; its loads stride by the
    # layout's stride along the dimension the warp spans.
    for label, stride in (
        ("CHWN (warp along N, stride 4 B)", desc_chwn.stride_bytes("N")),
        ("NCHW (warp along W, stride = pool stride * 4 B)", 2 * desc_nchw.stride_bytes("W")),
    ):
        report = analyze_warps(strided_pattern(64, stride, device), device)
        print(
            f"  {label:48s} -> {report.transactions_per_warp:4.1f} "
            f"transactions/warp, {report.overfetch:.1f}x over-fetch"
        )

    print("\n== 2. Shared-memory padding: the Fig. 7b trick ==")
    for pitch, label in ((32, "unpadded sh[32][32]"), (33, "padded sh[32][33]")):
        degree = conflict_degree(tile_column_access(32, pitch))[0]
        print(f"  {label}: column read serializes {degree}x")

    print("\n== 3. L2 and redundant pooling loads (Fig. 8) ==")
    l2 = SetAssociativeCache.l2_for(device)
    # 1-D pooling, window 4, stride 2 over 12 elements: 20 loads, 12 unique.
    addresses = np.array(
        [o * 2 * 4 + k * 4 for o in range(5) for k in range(4)], dtype=np.int64
    )
    hits = l2.access_stream(addresses)
    print(
        f"  20 loads over 12 elements: {int(hits.sum())} L2 hits "
        "(the register-tiled kernel avoids even issuing them)"
    )

    print("\n== 4. Occupancy: why the 128-thread softmax starves (Section V.B) ==")
    for label, launch in (
        ("baseline: 1 block x 128 threads", LaunchConfig(grid=(1, 1, 1), block=(128, 1, 1))),
        ("opt: 128 blocks x 256 threads", LaunchConfig(grid=(128, 1, 1), block=(256, 1, 1))),
    ):
        occ = compute_occupancy(device, launch)
        hiding = latency_hiding_factor(device, occ)
        print(
            f"  {label:34s} -> {occ.active_warps_per_sm:2d} warps/SM resident, "
            f"sustains {hiding:5.1%} of peak bandwidth"
        )

    print("\n== 5. The three transform kernels, from first principles ==")
    from repro.tensors import transform_stats

    desc = TensorDesc(64, 96, 55, 55, CHWN)
    for method in ("naive", "opt1", "opt2"):
        stats = transform_stats(device, desc, NCHW, method)
        print(
            f"  {method:6s}: {stats.time_ms:7.3f} ms, "
            f"{stats.effective_bandwidth_gbs:6.1f} GB/s, "
            f"DRAM traffic {stats.dram_bytes / 2**20:7.1f} MiB "
            f"(tensor is {2 * desc.nbytes / 2**20:.1f} MiB round-trip)"
        )


if __name__ == "__main__":
    main()
