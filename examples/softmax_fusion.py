"""Softmax kernel fusion demo (paper Section V.B / Fig. 13).

Shows the two-stage optimization on the classifier layer — kernel fusion
(five launches and eight DRAM passes collapse into one kernel) and inner
reduction-loop parallelization — plus the numeric equivalence of the fused
algorithm.

Run with ``python examples/softmax_fusion.py``.
"""

import numpy as np

from repro import TITAN_BLACK
from repro.core import fusion_report
from repro.layers import SoftmaxSpec, softmax_five_step, softmax_fused
from repro.networks import FIG13_SOFTMAX


def main() -> None:
    device = TITAN_BLACK

    print(f"== Fusing the five-step softmax on {device.name} ==")
    print(
        f"{'config':>10s} {'baseline':>10s} {'fused':>9s} {'opt':>9s} "
        f"{'fusion':>7s} {'threads':>8s} {'total':>7s}"
    )
    for name, spec in FIG13_SOFTMAX.items():
        rep = fusion_report(spec, device)
        print(
            f"{name:>10s} {rep.baseline_ms:9.4f}ms {rep.fused_ms:8.4f}ms "
            f"{rep.parallel_ms:8.4f}ms {rep.fusion_speedup:6.2f}x "
            f"{rep.parallel_speedup:7.2f}x {rep.total_speedup:6.1f}x"
        )
    print(
        "\npaper: fusion contributes up to 3.53x (avg 2.81x GM); injected "
        "threads add an average 5.13x more"
    )

    print("\n== What fusion removes ==")
    rep = fusion_report(SoftmaxSpec(128, 1000), device)
    print(f"  kernel launches removed : {rep.launches_removed}")
    print(f"  DRAM matrix passes removed: {rep.dram_passes_removed}")
    print("  (intermediates live in shared memory / registers instead)")

    print("\n== Numeric equivalence of the fused algorithm ==")
    spec = SoftmaxSpec(64, 1000)
    rng = np.random.default_rng(0)
    x = (rng.standard_normal((spec.n, spec.categories)) * 10).astype(np.float32)
    five = softmax_five_step(x, spec)
    fused = softmax_fused(x, spec)
    print(f"  max |five-step - fused| = {np.abs(five.out - fused).max():.2e}")
    print(f"  rows sum to 1 within     {np.abs(fused.sum(1) - 1).max():.2e}")


if __name__ == "__main__":
    main()
