"""Quickstart: layouts matter, and the library picks them for you.

Runs in a few seconds::

    python examples/quickstart.py

Walks through the paper's story on one layer and one network:
1. time a convolution layer under both data layouts;
2. see the layout-selection heuristic agree with the measurements;
3. plan a whole network and compare against the library baselines.
"""

from repro import (
    CHWN,
    NCHW,
    CONV_LAYERS,
    Net,
    SCHEMES,
    SimulationEngine,
    TITAN_BLACK,
    build_network,
    compare_schemes,
    preferred_conv_layout,
    thresholds_for,
)
from repro.core import best_conv_for_layout


def main() -> None:
    device = TITAN_BLACK
    engine = SimulationEngine(device)

    print(f"== 1. One layer, two layouts (on a simulated {device.name}) ==")
    spec = CONV_LAYERS["CV1"]  # LeNet's first convolution
    for layout in (CHWN, NCHW):
        choice = best_conv_for_layout(engine, spec, layout)
        print(f"  CV1 in {layout}: {choice.time_ms:7.3f} ms via {choice.implementation}")

    print("\n== 2. The heuristic's call ==")
    thresholds = thresholds_for(device)
    print(f"  device thresholds: Ct={thresholds.ct}, Nt={thresholds.nt}")
    for name in ("CV1", "CV7"):
        layout = preferred_conv_layout(CONV_LAYERS[name], thresholds)
        print(f"  {name}: prefer {layout}")

    print("\n== 3. Whole networks: Fig. 14 in one loop ==")
    for net_name in ("lenet", "alexnet"):
        net = Net(build_network(net_name))
        results = compare_schemes(net, device)
        base = results["cudnn-mm"].total_ms
        print(f"  {net_name} (speedup over cuDNN-MM):")
        for scheme in SCHEMES:
            marker = " <- ours" if scheme == "opt" else ""
            print(
                f"    {scheme:14s} {results[scheme].total_ms:9.3f} ms  "
                f"{base / results[scheme].total_ms:5.2f}x{marker}"
            )


if __name__ == "__main__":
    main()
