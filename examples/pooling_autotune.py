"""Pooling auto-tuner demo (paper Section V.A / Fig. 12).

For each Table-1 pooling layer, hill-climb the per-thread working-set
expansion (ux, uy) and show the traffic/occupancy trade-off the search
navigates.  Also validates numerically that coarsening never changes the
pooled values.

Run with ``python examples/pooling_autotune.py``.
"""

import numpy as np

from repro import TITAN_BLACK, autotune_pooling
from repro.gpusim import SimulationEngine
from repro.layers import PoolSpec, PoolingCoarsenedCHWN, pool_coarsened, pool_plain
from repro.networks import POOL_LAYERS


def main() -> None:
    device = TITAN_BLACK
    engine = SimulationEngine(device)

    print(f"== Auto-tuning Table-1 pooling layers on {device.name} ==")
    print(f"{'layer':6s} {'window':>6s} {'tile':>6s} {'gain':>7s} {'evals':>6s}  search path")
    for name, spec in POOL_LAYERS.items():
        result = autotune_pooling(device, spec)
        path = " -> ".join(f"{ux}x{uy}:{t:.3f}" for ux, uy, t in result.evaluations[:5])
        kind = "overlap" if spec.overlapped else "plain"
        print(
            f"{name:6s} {f'{spec.window}/{spec.stride}':>6s} "
            f"{f'{result.ux}x{result.uy}':>6s} {100 * (result.speedup - 1):6.1f}% "
            f"{len(result.evaluations):6d}  [{kind}] {path}"
        )

    print("\n== Why the search stops: registers vs traffic on PL5 ==")
    spec = POOL_LAYERS["PL5"]
    for u in (1, 2, 3, 4, 6, 8):
        kernel = PoolingCoarsenedCHWN(spec, u, u)
        stats = engine.run(kernel)
        launch = kernel.launch_config(device)
        print(
            f"  {u}x{u}: {stats.time_ms:7.3f} ms, "
            f"{stats.dram_bytes / 2**20:6.1f} MiB DRAM, "
            f"{launch.regs_per_thread:3d} regs/thread, "
            f"occupancy {stats.occupancy.fraction:.0%}"
        )

    print("\n== Numeric safety check ==")
    rng = np.random.default_rng(0)
    small = PoolSpec(n=2, c=3, h=13, w=13, window=3, stride=2)
    x = rng.standard_normal((2, 3, 13, 13)).astype(np.float32)
    for u in (2, 3, 5):
        assert np.allclose(pool_plain(x, small), pool_coarsened(x, small, u, u))
    print("  coarsened pooling is bit-compatible with the plain kernel ✓")


if __name__ == "__main__":
    main()
