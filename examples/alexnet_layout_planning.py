"""AlexNet layout planning: the paper's Fig. 15 walkthrough.

Shows the full pipeline the integrated framework runs:
1. resolve AlexNet into layer specs;
2. plan layouts (heuristic preferences + profiled fine-tuning);
3. inspect the inserted transformations and their cost;
4. verify numerically (small batch) that the planned execution computes
   exactly what the plain one does — transforms included.

Run with ``python examples/alexnet_layout_planning.py``.
"""

import numpy as np

from repro import Net, TITAN_BLACK, build_network, plan_optimal, plan_single_layout
from repro.core import explain_conv_choice, thresholds_for
from repro.core.planner import NodeKind
from repro.tensors import CHWN, NCHW


def main() -> None:
    device = TITAN_BLACK
    net = Net(build_network("alexnet"))
    nodes = net.planner_nodes(device)

    print("== Heuristic rationale per convolution ==")
    thresholds = thresholds_for(device)
    for layer in net.layers:
        if layer.kind is NodeKind.CONV:
            print(f"  {layer.name}: {explain_conv_choice(layer.spec, thresholds)}")

    print("\n== Fine-tuned plan (profiled DP over layouts + transform costs) ==")
    plan = plan_optimal(device, nodes)
    print(plan.summary())
    print(
        f"\n  {plan.transform_count} transforms cost {plan.transform_ms:.3f} ms "
        f"of {plan.total_ms:.3f} ms total "
        f"({100 * plan.transform_ms / plan.total_ms:.1f}%)"
    )

    print("\n== Versus the single-layout worlds the libraries live in ==")
    for layout in (CHWN, NCHW):
        single = plan_single_layout(device, nodes, layout, tune_pooling=True)
        print(
            f"  everything in {layout}: {single.total_ms:9.3f} ms "
            f"({single.total_ms / plan.total_ms:.2f}x slower than the plan)"
        )

    print("\n== Numeric verification at batch 4 (plan-invariant results) ==")
    small = Net(build_network("alexnet", batch=4))
    weights = small.init_weights()
    x = small.make_input(seed=0)
    reference = small.forward(x, weights)
    planned = small.forward(
        x, weights, plan=plan_optimal(device, small.planner_nodes(device))
    )
    print(
        "  max |difference| =",
        float(np.abs(reference - planned).max()),
        "(layouts and transforms change nothing numerically)",
    )


if __name__ == "__main__":
    main()
