"""Section VII, executed: Winograd convolution and FP16 on Pascal.

The paper closes by predicting that (a) more arithmetic-complexity tricks
like Lavin & Gray's Winograd convolution will appear and win "a group of
layers, for which they suit", and (b) FP16-capable hardware (Tesla P100)
will raise compute throughput — while in both cases "the underlying impact
from data layout remains".  This example runs both predictions through the
model.

Run with ``python examples/future_work.py``.
"""

import numpy as np

from repro.extensions import TESLA_P100, compare_layouts_fp16, memory_bound_share
from repro.gpusim import TITAN_BLACK, SimulationEngine
from repro.layers import (
    ConvSpec,
    conv_direct,
    conv_winograd,
    make_conv_kernel,
    make_filters,
)
from repro.networks import CONV_LAYERS


def main() -> None:
    print("== 1. Winograd F(2x2, 3x3): exact, and 2.25x fewer MACs ==")
    spec = ConvSpec(n=2, ci=8, h=14, w=14, co=8, fh=3, fw=3, pad=1)
    rng = np.random.default_rng(0)
    x = rng.standard_normal((2, 8, 14, 14)).astype(np.float32)
    w = make_filters(spec)
    diff = np.abs(conv_winograd(x, w, spec) - conv_direct(x, w, spec)).max()
    print(f"  max |winograd - direct| = {diff:.2e} (bit-level agreement)")

    engine = SimulationEngine(TITAN_BLACK, check_memory=False)
    print("\n  deep 3x3 layers on the Titan Black (time in ms):")
    for name in ("CV7", "CV10", "CV11", "CV12"):
        layer = CONV_LAYERS[name]
        times = {
            impl: engine.run(make_conv_kernel(layer, impl)).time_ms
            for impl in ("im2col", "fft", "winograd")
        }
        winner = min(times, key=lambda k: times[k])
        print(
            f"  {name}: mm={times['im2col']:6.2f} fft={times['fft']:6.2f} "
            f"winograd={times['winograd']:6.2f}  -> {winner}"
        )

    print("\n== 2. FP16 on the Tesla P100: layout still decides ==")
    print(f"  {'layer':5s} {'fp32 winner':>12s} {'fp16 winner':>12s} "
          f"{'fp16 gap':>9s} {'speedup':>8s}")
    for row in compare_layouts_fp16(TESLA_P100)[:8]:
        print(
            f"  {row.layer:5s} {row.fp32_winner:>12s} {row.fp16_winner:>12s} "
            f"{row.fp16_ratio:8.2f}x {row.fp16_speedup_preferred:7.2f}x"
        )

    print("\n== 3. Why memory efficiency matters *more* going forward ==")
    for name in ("CV7", "CV12"):
        layer = CONV_LAYERS[name]
        s32 = memory_bound_share(TESLA_P100, layer, "im2col")
        s16 = memory_bound_share(TESLA_P100, layer, "im2col", fp16=True, math_only=True)
        print(
            f"  {name}: memory share of layer time {s32:5.1%} (fp32 math) -> "
            f"{s16:5.1%} (fp16 math over fp32 data)"
        )
    print(
        "\n  paper: 'with compute efficiency being addressed ... the\n"
        "  performance impact of the memory efficiency is likely to become\n"
        "  more important' — reproduced."
    )


if __name__ == "__main__":
    main()
