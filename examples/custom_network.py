"""Define your own network, calibrate a device, plan it, and run it.

Demonstrates the full user workflow on a custom architecture written in the
prototxt-like text format, including cross-device threshold calibration
(the paper's Titan Black vs Titan X comparison).

Run with ``python examples/custom_network.py``.
"""

import numpy as np

from repro import (
    Net,
    TITAN_BLACK,
    TITAN_X,
    calibrate,
    parse_netdef,
    plan_optimal,
    time_network,
)

NETDEF = """
# A VGG-flavoured small network: shallow first block (CHWN territory),
# deep later blocks (NCHW territory) — exactly the mix that needs planning.
network custom batch=128 input=3x64x64
conv block1_conv co=32 f=5 pad=2
pool block1_pool window=3 stride=2
conv block2_conv co=128 f=3 pad=1
conv block2_conv2 co=128 f=3 pad=1
pool block2_pool window=3 stride=2
conv block3_conv co=256 f=3 pad=1
pool block3_pool window=2 stride=2
fc fc1 out=1024
fc fc2 out=100 relu=0
softmax prob
"""


def main() -> None:
    net = Net(parse_netdef(NETDEF))
    print(f"== Custom network '{net.name}' ==")
    for layer in net.layers:
        dims = layer.out_dims or ("-",)
        print(f"  {layer.name:14s} {layer.kind.value:12s} out={dims}")

    print("\n== Device calibration (one-time per GPU) ==")
    for device in (TITAN_BLACK, TITAN_X):
        result = calibrate(device)
        print(
            f"  {device.name}: Ct={result.thresholds.ct}, "
            f"Nt={result.thresholds.nt} "
            f"(simulated profiling: {result.profiling_ms:.0f} ms)"
        )

    print("\n== Plans differ across devices ==")
    for device in (TITAN_BLACK, TITAN_X):
        plan = plan_optimal(device, net.planner_nodes(device))
        layouts = {
            s.name: str(s.layout) for s in plan.steps if s.layout is not None
        }
        print(f"  {device.name}: {layouts}")

    print("\n== Scheme comparison on the Titan Black ==")
    for scheme in ("cuda-convnet", "cudnn-best", "opt"):
        timing = time_network(net, TITAN_BLACK, scheme)
        print(f"  {scheme:14s} {timing.total_ms:9.3f} ms")

    print("\n== Numeric forward at batch 4 ==")
    small = Net(parse_netdef(NETDEF).with_batch(4))
    out = small.forward(small.make_input(seed=1))
    print(f"  output shape {out.shape}, rows sum to 1: "
          f"{bool(np.allclose(out.sum(1), 1, atol=1e-5))}")


if __name__ == "__main__":
    main()
