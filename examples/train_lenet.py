"""Train LeNet on a synthetic MNIST substitute, with layout-aware timing.

Ties the whole reproduction together:
1. numerically train the real LeNet definition (manual backprop, SGD) on
   the synthetic digit dataset until it clearly beats chance;
2. show what the paper's memory optimizations would buy for this training
   run: forward-backward timing under each library scheme (footnote 1 —
   the same data structures serve training).

Run with ``python examples/train_lenet.py`` (~30 s, pure NumPy).
"""

import numpy as np

from repro import Net, TITAN_BLACK, build_network, time_network
from repro.data import synthetic_digits
from repro.framework import train


def main() -> None:
    rng = np.random.default_rng(0)
    del rng

    print("== 1. Training LeNet (batch 16) on synthetic digits ==")
    dataset = synthetic_digits(n_samples=256, image=28, n_classes=10, seed=7)
    net = Net(build_network("lenet", batch=16))
    trainer, history = train(
        net, dataset.images, dataset.labels, steps=40, batch_size=16, lr=0.03
    )
    for i in (0, 9, 19, 29, 39):
        step = history[i]
        print(
            f"  step {i + 1:3d}: loss {step.loss:6.3f}  "
            f"batch accuracy {step.accuracy:5.1%}  |grad| {step.grad_norm:8.3f}"
        )
    loss, accuracy = trainer.evaluate(dataset.images, dataset.labels)
    print(f"  final: loss {loss:.3f}, accuracy {accuracy:.1%} (chance 10%)")

    print("\n== 2. What would this training run cost on a Titan Black? ==")
    timing_net = Net(build_network("lenet"))  # the paper's batch of 128
    print(f"  {'scheme':14s} {'fwd (ms)':>10s} {'fwd+bwd (ms)':>13s} {'speedup':>8s}")
    baseline = None
    for scheme in ("cudnn-mm", "cuda-convnet", "opt"):
        fwd = time_network(timing_net, TITAN_BLACK, scheme)
        trn = time_network(timing_net, TITAN_BLACK, scheme, training=True)
        if baseline is None:
            baseline = trn.total_ms
        print(
            f"  {scheme:14s} {fwd.total_ms:10.3f} {trn.total_ms:13.3f} "
            f"{baseline / trn.total_ms:7.2f}x"
        )
    print(
        "\n  (the layout plan, pooling coarsening and fused softmax apply to\n"
        "   the backward pass too — same data structures, paper footnote 1)"
    )


if __name__ == "__main__":
    main()
