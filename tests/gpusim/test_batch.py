"""Bit-identity of the batched candidate evaluator.

The SoA batch path (``CandidateBatch`` + ``evaluate_batch``) must agree
field-for-field — not approximately, bit-for-bit — with the scalar golden
reference: :func:`time_kernel` for a raw spec, ``SimulationContext.run``
for a kernel model.  The property tests drive randomized launch/profile
grids through both paths, including the degenerate corners the planner
can produce: one-thread blocks, launches sitting exactly on an occupancy
limiter, and kernels with zero stores (or zero traffic entirely).
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.gpusim import (
    LaunchConfig,
    MemoryProfile,
    SimulationContext,
    TITAN_BLACK,
    TITAN_X,
    compute_occupancy,
    time_kernel,
)
from repro.gpusim.batch import (
    EvalSpec,
    batched_eval_enabled,
    evaluate_models,
    evaluate_specs,
    set_batched_eval,
)
from repro.gpusim.occupancy import LaunchValidationError
from repro.layers import DirectConvCHWN, Im2colGemmNCHW, make_pool_kernel
from repro.layers.base import PoolSpec
from repro.networks import CONV_LAYERS

DEVICES = (TITAN_BLACK, TITAN_X)


def _assert_identical(ref, out, label=""):
    """Field-for-field equality: frozen dataclasses compare by value, and
    every field is a Python scalar, so ``==`` is exact bit identity."""
    assert not isinstance(out, Exception), f"{label}: batch returned {out!r}"
    assert ref == out, f"{label}:\n  scalar  {ref}\n  batched {out}"


# --------------------------------------------------------------------------
# raw specs vs time_kernel
# --------------------------------------------------------------------------

launch_configs = st.builds(
    LaunchConfig,
    grid=st.tuples(st.integers(1, 4096), st.integers(1, 64)),
    block=st.tuples(st.integers(1, 1024), st.integers(1, 8)),
    regs_per_thread=st.sampled_from([0, 8, 16, 32, 63, 128, 255]),
    smem_per_block=st.sampled_from([0, 1, 2048, 12 * 1024, 48 * 1024]),
    active_lane_fraction=st.sampled_from([1.0, 0.5, 0.25, 1 / 3, 0.03125]),
)

profiles = st.builds(
    MemoryProfile,
    load_bytes=st.sampled_from([0.0, 4.0, 1e3, 1e6, 3.7e8]),
    store_bytes=st.sampled_from([0.0, 4.0, 1e3, 1e6]),
    load_transactions=st.sampled_from([0.0, 1.0, 33.0, 1e5, 1e7]),
    store_transactions=st.sampled_from([0.0, 1.0, 1e4, 1e6]),
    l2_hit_rate=st.sampled_from([0.0, 0.25, 0.5, 0.9, 1.0]),
    dependent_iterations=st.sampled_from([1.0, 2.0, 81.0]),
    smem_conflict_degree=st.sampled_from([1.0, 1.5, 32.0]),
    access_bytes=st.sampled_from([4, 8, 16]),
    traced_l2_hit_rate=st.sampled_from([None, 0.0, 0.42, 1.0]),
)

eval_specs = st.builds(
    EvalSpec,
    launch=launch_configs,
    flops=st.sampled_from([0.0, 1.0, 1e6, 4.2e9]),
    alu_efficiency=st.sampled_from([0.05, 0.5, 1.0]),
    profile=profiles,
    n_launches=st.sampled_from([1, 2, 5]),
    name=st.sampled_from(["kernel", "pool-chwn", ""]),
)


def _scalar_ref(device, spec):
    return time_kernel(
        device,
        spec.launch,
        spec.flops,
        spec.alu_efficiency,
        spec.profile,
        n_launches=spec.n_launches,
        name=spec.name,
    )


class TestSpecEquivalence:
    @given(specs=st.lists(eval_specs, min_size=1, max_size=20))
    @settings(max_examples=120, deadline=None)
    def test_randomized_grid_matches_scalar(self, specs):
        for device in DEVICES:
            valid = []
            for s in specs:
                try:
                    compute_occupancy(device, s.launch)
                except (LaunchValidationError, ValueError):
                    continue
                valid.append(s)
            if not valid:
                continue
            out = evaluate_specs(device, valid)
            for s, o in zip(valid, out):
                _assert_identical(_scalar_ref(device, s), o, device.name)

    @given(spec=eval_specs)
    @settings(max_examples=60, deadline=None)
    @example(
        spec=EvalSpec(  # one-thread block, zero-store, zero-flop kernel
            LaunchConfig(grid=(1, 1), block=(1, 1)),
            0.0,
            1.0,
            MemoryProfile(4.0, 0.0, 1.0, 0.0, 0.0),
        )
    )
    def test_single_spec_matches_scalar(self, spec):
        for device in DEVICES:
            try:
                ref = _scalar_ref(device, spec)
            except (LaunchValidationError, ValueError):
                with pytest.raises((LaunchValidationError, ValueError)):
                    evaluate_specs(device, [spec])
                continue
            _assert_identical(ref, evaluate_specs(device, [spec])[0], device.name)


class TestDegenerateCandidates:
    """The planner's corner cases, pinned explicitly."""

    def _check(self, spec):
        for device in DEVICES:
            _assert_identical(
                _scalar_ref(device, spec),
                evaluate_specs(device, [spec])[0],
                device.name,
            )

    def test_one_thread_block(self):
        self._check(
            EvalSpec(
                LaunchConfig(grid=(1, 1), block=(1, 1)),
                10.0,
                1.0,
                MemoryProfile(4.0, 4.0, 1.0, 1.0, 0.0),
            )
        )

    def test_zero_store_kernel(self):
        self._check(
            EvalSpec(
                LaunchConfig(grid=(128, 1), block=(256, 1)),
                1e6,
                0.8,
                MemoryProfile(1e6, 0.0, 4096.0, 0.0, 0.5),
            )
        )

    def test_zero_traffic_kernel(self):
        self._check(
            EvalSpec(
                LaunchConfig(grid=(64, 1), block=(128, 1)),
                1e9,
                1.0,
                MemoryProfile(0.0, 0.0, 0.0, 0.0, 0.0),
            )
        )

    @pytest.mark.parametrize(
        "launch,limiter",
        [
            # 2048 threads/SM at 256 threads/block: threads limit binds
            (LaunchConfig(grid=(512, 1), block=(256, 1)), "threads"),
            # tiny blocks: blocks/SM cap binds before the warp cap
            (LaunchConfig(grid=(512, 1), block=(32, 1)), "blocks"),
            # 255 regs/thread: register file limit binds
            (
                LaunchConfig(grid=(512, 1), block=(256, 1), regs_per_thread=255),
                "registers",
            ),
            # a full SM's shared memory per block: exactly one block fits
            (
                LaunchConfig(
                    grid=(512, 1), block=(256, 1), smem_per_block=48 * 1024
                ),
                "shared_memory",
            ),
        ],
    )
    def test_occupancy_limit_edges(self, launch, limiter):
        spec = EvalSpec(
            launch, 1e6, 1.0, MemoryProfile(1e5, 1e5, 3000.0, 3000.0, 0.5)
        )
        stats = evaluate_specs(TITAN_BLACK, [spec])[0]
        assert stats.occupancy.limiter == limiter
        self._check(spec)

    def test_invalid_launch_raises_scalar_error(self):
        """A block larger than the device allows must raise the scalar
        checker's LaunchValidationError, not silently evaluate."""
        spec = EvalSpec(
            LaunchConfig(grid=(1, 1), block=(2048, 1)),
            1.0,
            1.0,
            MemoryProfile(4.0, 4.0, 1.0, 1.0, 0.0),
        )
        with pytest.raises(LaunchValidationError):
            evaluate_specs(TITAN_BLACK, [spec])


# --------------------------------------------------------------------------
# kernel models vs SimulationContext.run
# --------------------------------------------------------------------------

conv_specs = st.builds(
    lambda n, ci: replace(CONV_LAYERS["CV7"], n=n, ci=ci),
    n=st.sampled_from([1, 2, 7, 64, 256, 512]),
    ci=st.sampled_from([3, 16, 96, 256]),
)

pool_specs = st.builds(
    PoolSpec,
    n=st.sampled_from([1, 16, 128, 384]),
    c=st.sampled_from([3, 64, 256]),
    h=st.just(27),
    w=st.just(27),
    window=st.sampled_from([2, 3]),
    stride=st.sampled_from([1, 2]),
)

models = st.one_of(
    conv_specs.map(DirectConvCHWN),
    conv_specs.map(Im2colGemmNCHW),  # composed: im2col staging + GEMM
    st.tuples(pool_specs, st.sampled_from(["chwn", "nchw-linear"])).map(
        lambda t: make_pool_kernel(*t)
    ),
)


class TestModelEquivalence:
    @given(ms=st.lists(models, min_size=1, max_size=12))
    @settings(max_examples=50, deadline=None)
    def test_mixed_model_grid_matches_context_run(self, ms):
        device = TITAN_BLACK
        scalar_ctx = SimulationContext(device, check_memory=False)
        refs = [scalar_ctx.run(m, check_memory=False) for m in ms]
        out = evaluate_models(
            SimulationContext(device, check_memory=False), ms, check_memory=False
        )
        for m, ref, o in zip(ms, refs, out):
            _assert_identical(ref, o, m.name)

    def test_disabled_toggle_serves_scalar_path(self):
        ms = [
            DirectConvCHWN(replace(CONV_LAYERS["CV7"], n=8)),
            make_pool_kernel(
                PoolSpec(n=8, c=16, h=27, w=27, window=3, stride=2), "chwn"
            ),
        ]
        device = TITAN_BLACK
        refs = [
            SimulationContext(device, check_memory=False).run(m, check_memory=False)
            for m in ms
        ]
        prev = set_batched_eval(False)
        try:
            assert not batched_eval_enabled()
            off = evaluate_models(
                SimulationContext(device, check_memory=False),
                ms,
                check_memory=False,
            )
        finally:
            set_batched_eval(prev)
        on = evaluate_models(
            SimulationContext(device, check_memory=False), ms, check_memory=False
        )
        assert refs == off == on

    def test_error_slots_match_scalar_exceptions(self):
        """An unlaunchable model occupies its slot with the scalar error
        while the rest of the grid still evaluates."""
        good = DirectConvCHWN(replace(CONV_LAYERS["CV7"], n=8))
        bad = DirectConvCHWN(replace(CONV_LAYERS["CV7"], n=8))
        launch = good.launch_config(TITAN_BLACK)
        object.__setattr__(
            bad, "launch_config", lambda device: replace(launch, block=(2048, 1))
        )
        out = evaluate_models(
            SimulationContext(TITAN_BLACK, check_memory=False),
            [good, bad, good],
            check_memory=False,
        )
        ref = SimulationContext(TITAN_BLACK, check_memory=False).run(
            good, check_memory=False
        )
        assert out[0] == ref and out[2] == ref
        assert isinstance(out[1], LaunchValidationError)
