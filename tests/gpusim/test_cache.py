"""Set-associative LRU cache model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import SetAssociativeCache, unique_line_hits


def small_cache(capacity=1024, line=32, assoc=2):
    return SetAssociativeCache(capacity, line, assoc)


class TestBasics:
    def test_geometry(self):
        c = small_cache()
        assert c.n_sets == 1024 // (32 * 2)

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(0)
        with pytest.raises(ValueError):
            SetAssociativeCache(1000, 32, 3)  # not a multiple

    def test_cold_miss_then_hit(self):
        c = small_cache()
        assert c.access(0) is False
        assert c.access(0) is True
        assert c.access(31) is True  # same line
        assert c.access(32) is False  # next line

    def test_stats(self):
        c = small_cache()
        c.access_stream(np.array([0, 0, 64, 64, 0]))
        assert c.stats.accesses == 5
        assert c.stats.hits == 3
        assert c.stats.misses == 2
        assert c.stats.hit_rate == pytest.approx(0.6)

    def test_reset(self):
        c = small_cache()
        c.access(0)
        c.reset()
        assert c.stats.accesses == 0
        assert c.access(0) is False

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            small_cache().access_stream(np.array([-1]))


class TestLRU:
    def test_eviction_order_is_lru(self):
        # assoc=2, line=32: addresses 0, n_sets*32, 2*n_sets*32 map to set 0.
        c = small_cache(capacity=256, line=32, assoc=2)  # 4 sets
        s = c.n_sets * 32
        c.access(0)      # miss, set0 way0
        c.access(s)      # miss, set0 way1
        c.access(0)      # hit, 0 becomes MRU
        c.access(2 * s)  # miss, evicts s (LRU)
        assert c.access(0) is True
        assert c.access(s) is False  # was evicted

    def test_working_set_within_capacity_all_hits_second_pass(self):
        c = SetAssociativeCache(4096, 32, 4)
        addrs = np.arange(0, 4096, 32)
        c.access_stream(addrs)
        hits = c.access_stream(addrs)
        assert hits.all()

    def test_streaming_larger_than_capacity_thrashes(self):
        c = SetAssociativeCache(1024, 32, 2)
        addrs = np.arange(0, 16 * 1024, 32)
        c.access_stream(addrs)
        hits = c.access_stream(addrs)
        assert not hits.any()  # sequential sweep defeats LRU

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_hits_never_exceed_infinite_cache_bound(self, seed):
        rng = np.random.default_rng(seed)
        addrs = rng.integers(0, 64 * 1024, size=200) * 4
        c = SetAssociativeCache(2048, 32, 2)
        hits = int(c.access_stream(addrs).sum())
        _, inf_hits = unique_line_hits(addrs, 32)
        assert hits <= inf_hits


class TestUniqueLineHits:
    def test_counts(self):
        accesses, hits = unique_line_hits(np.array([0, 4, 8, 64]), 32)
        assert accesses == 4
        assert hits == 2  # 0/4/8 share a line
