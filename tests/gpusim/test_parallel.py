"""Parallel sweep executor: determinism, chunking, and cache merge-back.

The contract of :mod:`repro.gpusim.parallel` is that ``--jobs N`` is purely
a wall-clock knob: for any deterministic task function, the result list —
and everything derived from it (sweep grids, calibration thresholds, tuned
factors, CLI output) — is byte-identical to a serial run.
"""

from __future__ import annotations

import os
from dataclasses import replace

import pytest

from repro.analysis.sweeps import sweep_conv, sweep_pool
from repro.cli import main
from repro.core.autotune import autotune_pooling, autotune_pooling_many
from repro.core.calibration import calibrate
from repro.gpusim import (
    SimStats,
    SimulationContext,
    chunk_items,
    parallel_map,
    resolve_jobs,
    shutdown_pool,
)
from repro.gpusim.parallel import DEFAULT_MIN_CHUNK
from repro.layers import make_pool_kernel
from repro.obs.metrics import global_registry


class TestResolveJobs:
    @pytest.fixture(autouse=True)
    def _eight_cpus(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 8)

    @pytest.mark.parametrize("jobs,expected", [(None, 1), (0, 1), (1, 1), (3, 3)])
    def test_explicit(self, jobs, expected):
        assert resolve_jobs(jobs) == expected

    def test_negative_means_all_cpus(self):
        assert resolve_jobs(-1) == 8

    def test_auto_means_all_cpus(self):
        assert resolve_jobs("auto") == 8
        assert resolve_jobs(" AUTO ") == 8

    def test_numeric_strings_accepted(self):
        assert resolve_jobs("3") == 3

    def test_oversubscription_clamps_and_warns(self):
        before = global_registry().value("exec.jobs.clamped") or 0
        assert resolve_jobs(64) == 8
        assert global_registry().value("exec.jobs.clamped") == before + 1

    def test_cpu_count_request_not_clamped(self):
        before = global_registry().value("exec.jobs.clamped") or 0
        assert resolve_jobs(8) == 8
        assert (global_registry().value("exec.jobs.clamped") or 0) == before


class TestChunkItems:
    def test_empty(self):
        assert chunk_items([], 4) == []

    def test_default_at_most_jobs_chunks(self):
        chunks = chunk_items(list(range(10)), 3)
        assert len(chunks) <= 3
        assert [x for c in chunks for x in c] == list(range(10))

    def test_explicit_chunk_size(self):
        assert chunk_items([1, 2, 3, 4, 5], 2, chunk_size=2) == [[1, 2], [3, 4], [5]]

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            chunk_items([1], 1, chunk_size=0)

    def test_small_grid_never_splits_into_singletons(self):
        # 6 items over 6 workers used to produce six singleton chunks —
        # pure IPC overhead; the floor keeps chunks at DEFAULT_MIN_CHUNK.
        chunks = chunk_items(list(range(6)), 6)
        assert all(
            len(c) >= min(DEFAULT_MIN_CHUNK, 6) or c is chunks[-1] for c in chunks
        )
        assert [x for c in chunks for x in c] == list(range(6))
        assert len(chunks) == 2

    def test_grid_smaller_than_floor_is_one_chunk(self):
        assert chunk_items([1, 2], 8) == [[1, 2]]


def _double(context, item):
    return item * 2


def _time_pool_chwn(context, spec):
    return context.run(make_pool_kernel(spec, "chwn"), check_memory=False).time_ms


class TestParallelMap:
    @pytest.fixture(autouse=True)
    def _four_cpus(self, monkeypatch):
        # These tests exercise real worker fan-out; a 1-CPU CI box would
        # clamp everything to serial, so pretend the box is wider.
        monkeypatch.setattr(os, "cpu_count", lambda: 4)

    def test_order_preserved_across_chunks(self, device):
        ctx = SimulationContext(device, check_memory=False)
        out = parallel_map(_double, list(range(11)), ctx, jobs=3, chunk_size=2)
        assert out == [2 * i for i in range(11)]

    def test_serial_path_uses_caller_context(self, device, small_pool):
        ctx = SimulationContext(device, check_memory=False)
        parallel_map(_time_pool_chwn, [small_pool], ctx, jobs=1)
        assert ctx.cache_size == 1
        assert ctx.stats.merged_contexts == 0  # no workers involved

    def test_worker_caches_merge_back(self, device, small_pool):
        specs = [replace(small_pool, c=c) for c in (4, 8, 16, 32)]
        ctx = SimulationContext(device, check_memory=False)
        times = parallel_map(_time_pool_chwn, specs, ctx, jobs=2, chunk_size=2)
        assert len(times) == 4
        # Two chunks -> two worker contexts absorbed, four new entries.
        assert ctx.stats.merged_contexts == 2
        assert ctx.stats.merged_entries == 4
        assert ctx.cache_size == 4
        # The parent can now serve the same kernels without re-simulating.
        hits_before = ctx.stats.hits
        again = parallel_map(_time_pool_chwn, specs, ctx, jobs=1)
        assert again == times
        assert ctx.stats.hits == hits_before + 4


class TestJobsDeterminism:
    """jobs=N output equals jobs=1, value-for-value and byte-for-byte."""

    @pytest.fixture(autouse=True)
    def _four_cpus(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        yield
        shutdown_pool()

    def test_sweep_pool(self, device, small_pool):
        serial = sweep_pool(
            device, small_pool, "c", (4, 8, 16),
            context=SimulationContext(device, check_memory=False), jobs=1,
        )
        parallel = sweep_pool(
            device, small_pool, "c", (4, 8, 16),
            context=SimulationContext(device, check_memory=False), jobs=2,
        )
        assert serial == parallel

    def test_sweep_conv_with_unrunnable_cells(self, device, small_conv):
        # ci=1 is unsupported by im2col? regardless: any per-cell failure
        # must be encoded as a None point identically in both modes.
        values = (3, 16, 64)
        serial = sweep_conv(
            device, small_conv, "ci", values,
            context=SimulationContext(device), jobs=1,
        )
        parallel = sweep_conv(
            device, small_conv, "ci", values,
            context=SimulationContext(device), jobs=2,
        )
        assert serial == parallel

    def test_calibrate(self, device):
        serial = calibrate(device, context=SimulationContext(device), jobs=1)
        parallel = calibrate(device, context=SimulationContext(device), jobs=4)
        assert serial == parallel

    def test_autotune_many(self, device, small_pool):
        specs = [replace(small_pool, c=c) for c in (4, 8, 16)]
        serial = [autotune_pooling(device, s) for s in specs]
        parallel = autotune_pooling_many(
            device, specs, context=SimulationContext(device), jobs=2
        )
        assert serial == parallel

    def test_cli_sweep_stdout_byte_identical(self, capsys):
        args = ["sweep", "--layer", "CV7", "--dim", "n", "--values", "16,32,64"]
        assert main([*args, "--jobs", "1"]) == 0
        serial_out = capsys.readouterr().out
        assert main([*args, "--jobs", "4"]) == 0
        parallel_out = capsys.readouterr().out
        assert serial_out == parallel_out


class TestSimStatsCounters:
    def test_merge_folds_new_counters(self):
        a, b = SimStats(), SimStats()
        b.record_miss("pool", 0.5, cache_calls=3, cache_s=0.2)
        b.merged_contexts = 2
        b.merged_entries = 7
        a.merge(b)
        assert a.cache_sim_calls == 3
        assert a.cache_sim_s == pytest.approx(0.2)
        assert a.merged_contexts == 2
        assert a.merged_entries == 7

    def test_summary_mentions_replays_and_workers(self):
        s = SimStats()
        s.record_miss("pool", 0.5, cache_calls=3, cache_s=0.2)
        s.merged_contexts = 1
        s.merged_entries = 4
        text = s.summary()
        assert "cache replays" in text
        assert "merged workers" in text

    def test_reset_clears_new_counters(self):
        s = SimStats()
        s.record_miss("pool", 0.5, cache_calls=3, cache_s=0.2)
        s.merged_contexts = 1
        s.reset()
        assert s.cache_sim_calls == 0
        assert s.cache_sim_s == 0.0
        assert s.merged_contexts == 0
        assert s.merged_entries == 0
