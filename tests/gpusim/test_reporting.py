"""Profiler-style reporting and roofline placement."""

import pytest

from repro.gpusim import (
    TITAN_BLACK,
    comparison_table,
    kernel_report,
    roofline_point,
    simulate,
)
from repro.layers import make_conv_kernel, make_pool_kernel
from repro.networks import CONV_LAYERS, POOL_LAYERS


@pytest.fixture(scope="module")
def conv_stats():
    # CV12 under direct convolution: high arithmetic intensity (the input
    # is small relative to the 29.6 GFLOP of work), so it sits under the
    # compute roof.
    return simulate(TITAN_BLACK, make_conv_kernel(CONV_LAYERS["CV12"], "direct"))


@pytest.fixture(scope="module")
def pool_stats():
    return simulate(TITAN_BLACK, make_pool_kernel(POOL_LAYERS["PL5"], "chwn"))


class TestRooflinePoint:
    def test_compute_heavy_kernel_is_compute_roofed(self, conv_stats):
        p = roofline_point(TITAN_BLACK, conv_stats)
        assert not p.memory_bound
        assert p.roof_gflops == TITAN_BLACK.peak_gflops

    def test_streaming_kernel_is_bandwidth_roofed(self, pool_stats):
        p = roofline_point(TITAN_BLACK, pool_stats)
        assert p.memory_bound
        assert p.roof_gflops < TITAN_BLACK.peak_gflops

    def test_efficiency_bounded(self, conv_stats, pool_stats):
        for stats in (conv_stats, pool_stats):
            p = roofline_point(TITAN_BLACK, stats)
            assert 0 < p.efficiency <= 1.001

    def test_roof_is_min_of_slope_and_peak(self, pool_stats):
        p = roofline_point(TITAN_BLACK, pool_stats)
        assert p.roof_gflops == pytest.approx(
            min(
                TITAN_BLACK.peak_gflops,
                p.arithmetic_intensity * TITAN_BLACK.mem_bandwidth_gbs,
            )
        )


class TestKernelReport:
    def test_contains_all_sections(self, conv_stats):
        text = kernel_report(TITAN_BLACK, conv_stats)
        for needle in (
            "time", "bound by", "occupancy", "DRAM traffic",
            "transactions", "arithmetic", "roofline",
        ):
            assert needle in text, needle

    def test_reports_the_limiter(self, pool_stats):
        text = kernel_report(TITAN_BLACK, pool_stats)
        assert pool_stats.bound in text
        assert pool_stats.occupancy.limiter in text


class TestComparisonTable:
    def test_one_row_per_entry(self, conv_stats, pool_stats):
        text = comparison_table(
            TITAN_BLACK, [("conv", conv_stats), ("pool", pool_stats)]
        )
        lines = text.splitlines()
        assert len(lines) == 4  # header + rule + 2 rows
        assert "conv" in lines[2] and "pool" in lines[3]

    def test_empty_entries(self):
        text = comparison_table(TITAN_BLACK, [])
        assert "variant" in text
