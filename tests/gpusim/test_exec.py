"""Sweep execution engine: memoization, dedup, fused batches, warm pool.

The contract of :mod:`repro.gpusim.exec` extends the parallel executor's:
memoization, dedup, chunking, and worker warmth are all *pure wall-clock
knobs* — every grid consumer's output is byte-identical to the scalar
golden path no matter how many times a cell has been priced before, which
process priced it, or how the grid was chunked.
"""

from __future__ import annotations

import os
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.sweeps import sweep_conv, sweep_pool
from repro.core.autotune import autotune_pooling_many
from repro.core.calibration import calibrate
from repro.gpusim import (
    SimulationContext,
    evaluate_models,
    map_chunks,
    shutdown_pool,
)
from repro.gpusim.engine import GpuOutOfMemoryError
from repro.gpusim.exec import (
    TARGET_CHUNK_S,
    adaptive_chunk_size,
    evaluate_cells,
    pool_workers,
)
from repro.gpusim.parallel import DEFAULT_MIN_CHUNK
from repro.layers import make_pool_kernel
from repro.layers.base import ConvSpec
from repro.layers.conv_kernels import make_conv_kernel
from repro.obs.metrics import global_registry


def _fresh(device):
    return SimulationContext(device, check_memory=False)


def _pool_models(small_pool, channels=(4, 8, 16)):
    return [
        make_pool_kernel(replace(small_pool, c=c), impl)
        for c in channels
        for impl in ("chwn", "nchw-linear")
    ]


# ---------------------------------------------------------------------------
# evaluate_cells: memoization + dedup
# ---------------------------------------------------------------------------


class TestEvaluateCells:
    def test_matches_fresh_context_batch(self, device, small_pool):
        models = _pool_models(small_pool)
        ref = evaluate_models(_fresh(device), models, check_memory=False)
        got = evaluate_cells(_fresh(device), models, check_memory=False)
        assert got == ref

    def test_memoized_rerun_is_identical(self, device, small_pool):
        models = _pool_models(small_pool)
        ctx = _fresh(device)
        first = evaluate_cells(ctx, models, check_memory=False)
        again = evaluate_cells(ctx, models, check_memory=False)
        assert again == first
        # Second pass is all cache hits: no new entries appeared.
        assert ctx.cache_size == len(models)

    def test_scalar_cache_primes_the_engine(self, device, small_pool):
        # A cell priced by the scalar path is a hit for the engine: the
        # two share one structural key space.
        kernel = make_pool_kernel(small_pool, "chwn")
        ctx = _fresh(device)
        scalar = ctx.run(kernel, check_memory=False)
        hits0 = global_registry().value("exec.cache.hit") or 0
        [engine] = evaluate_cells(ctx, [kernel], check_memory=False)
        assert engine == scalar
        assert global_registry().value("exec.cache.hit") == hits0 + 1

    def test_engine_primes_the_scalar_cache(self, device, small_pool):
        kernel = make_pool_kernel(small_pool, "chwn")
        ctx = _fresh(device)
        [engine] = evaluate_cells(ctx, [kernel], check_memory=False)
        hits_before = ctx.stats.hits
        assert ctx.run(kernel, check_memory=False) == engine
        assert ctx.stats.hits == hits_before + 1

    def test_duplicates_collapse_but_fan_back_out(self, device, small_pool):
        a = make_pool_kernel(small_pool, "chwn")
        b = make_pool_kernel(small_pool, "nchw-linear")
        models = [a, b, a, a, b]
        ref = evaluate_models(_fresh(device), models, check_memory=False)
        dedup0 = global_registry().value("exec.cache.dedup") or 0
        got = evaluate_cells(_fresh(device), models, check_memory=False)
        assert got == ref
        assert got[0] == got[2] == got[3]
        assert got[1] == got[4]
        assert global_registry().value("exec.cache.dedup") == dedup0 + 3

    def test_batching_disabled_delegates_to_scalar(self, device, small_pool):
        from repro.gpusim import set_batched_eval

        models = _pool_models(small_pool)
        ref = evaluate_models(_fresh(device), models, check_memory=False)
        prev = set_batched_eval(False)
        try:
            got = evaluate_cells(_fresh(device), models, check_memory=False)
        finally:
            set_batched_eval(prev)
        assert got == ref

    def test_empty_grid(self, device):
        assert evaluate_cells(_fresh(device), []) == []


class TestErrorMemoization:
    #: a conv too large for any bundled device once check_memory is on
    HUGE = ConvSpec(n=4096, ci=512, h=256, w=256, co=512, fh=3, fw=3)
    SMALL = ConvSpec(n=8, ci=16, h=15, w=15, co=16, fh=3, fw=3)

    def _models(self):
        return [
            make_conv_kernel(self.SMALL, "direct"),
            make_conv_kernel(self.HUGE, "im2col"),
            make_conv_kernel(self.SMALL, "direct"),
        ]

    @staticmethod
    def _shape(results):
        return [
            (type(r).__name__, r.args) if isinstance(r, Exception) else r
            for r in results
        ]

    def test_oom_depends_on_the_flag_not_the_memo(self, device):
        # Prime the memo with the check OFF (everything prices fine),
        # then ask with the check ON: the big conv must still OOM —
        # exactly what the scalar path does, where _check_fit runs
        # before the cache lookup.
        models = self._models()
        ref_on = evaluate_models(_fresh(device), models, check_memory=True)
        ref_off = evaluate_models(_fresh(device), models, check_memory=False)
        ctx = _fresh(device)
        assert self._shape(
            evaluate_cells(ctx, models, check_memory=False)
        ) == self._shape(ref_off)
        assert self._shape(
            evaluate_cells(ctx, models, check_memory=True)
        ) == self._shape(ref_on)
        assert self._shape(
            evaluate_cells(ctx, models, check_memory=False)
        ) == self._shape(ref_off)

    def test_oom_hit_after_oom_miss(self, device):
        models = self._models()
        ref = evaluate_models(_fresh(device), models, check_memory=True)
        ctx = _fresh(device)
        first = evaluate_cells(ctx, models, check_memory=True)
        again = evaluate_cells(ctx, models, check_memory=True)
        assert self._shape(first) == self._shape(ref)
        assert self._shape(again) == self._shape(ref)
        assert isinstance(again[1], GpuOutOfMemoryError)


# ---------------------------------------------------------------------------
# Hypothesis: dedup never drops or reorders grid cells
# ---------------------------------------------------------------------------


BASE_CHANNELS = (4, 6, 8)
BASE_IMPLS = ("chwn", "nchw-linear")


@pytest.fixture(scope="module")
def dedup_reference(device, small_pool):
    """The distinct cell pool and its scalar-priced reference values."""
    models = _pool_models(small_pool, BASE_CHANNELS)
    stats = evaluate_models(
        SimulationContext(device, check_memory=False), models, check_memory=False
    )
    return models, stats


class TestDedupProperty:
    @settings(max_examples=30, deadline=None)
    @given(
        picks=st.lists(
            st.integers(min_value=0, max_value=5), min_size=0, max_size=24
        )
    )
    def test_never_drops_or_reorders(self, device, dedup_reference, picks):
        models, stats = dedup_reference
        grid = [models[i] for i in picks]
        expected = [stats[i] for i in picks]
        # A warm shared context across examples *and* a fresh one: both
        # must reproduce the reference slot for slot.
        got = evaluate_cells(_fresh(device), grid, check_memory=False)
        assert got == expected

    @settings(max_examples=15, deadline=None)
    @given(
        picks=st.lists(
            st.integers(min_value=0, max_value=5), min_size=1, max_size=24
        )
    )
    def test_warm_context_matches(self, device, dedup_reference, picks):
        models, stats = dedup_reference
        if not hasattr(self, "_warm"):
            self._warm = _fresh(device)
        grid = [models[i] for i in picks]
        assert evaluate_cells(self._warm, grid, check_memory=False) == [
            stats[i] for i in picks
        ]


# ---------------------------------------------------------------------------
# Adaptive chunking
# ---------------------------------------------------------------------------


class TestAdaptiveChunkSize:
    def test_even_split_by_default(self):
        assert adaptive_chunk_size(100, 4, None) == 25

    def test_floor_prevents_singletons(self):
        assert adaptive_chunk_size(6, 6, None) == min(6, DEFAULT_MIN_CHUNK)
        assert adaptive_chunk_size(2, 8, None) == 2

    def test_expensive_cells_shrink_chunks(self):
        # Cells costing half the target each: chunks of 2 would be ideal
        # but the floor wins; cells cheap enough never shrink below the
        # even split.
        cost = TARGET_CHUNK_S / 2
        assert adaptive_chunk_size(100, 2, cost) == DEFAULT_MIN_CHUNK
        assert adaptive_chunk_size(100, 2, TARGET_CHUNK_S / 1000) == 50

    def test_empty_grid(self):
        assert adaptive_chunk_size(0, 4, None) == 1


# ---------------------------------------------------------------------------
# map_chunks: serial fusion, warm pool, delta merge-back
# ---------------------------------------------------------------------------


def _eval_chunk(context, models):
    return evaluate_cells(context, models, check_memory=False)


class TestMapChunksSerial:
    def test_single_fused_call(self, device, small_pool):
        models = _pool_models(small_pool)
        ref = evaluate_models(_fresh(device), models, check_memory=False)
        ctx = _fresh(device)
        sizes0 = (global_registry().histogram("exec.batch.size").values or [])[:]
        out = map_chunks(_eval_chunk, models, ctx, jobs=1)
        assert out == ref
        sizes = global_registry().histogram("exec.batch.size").values
        # Exactly one new batch observation: the whole grid was fused.
        assert len(sizes) == len(sizes0) + 1
        assert sizes[-1] == len(models)


class TestMapChunksPool:
    @pytest.fixture(autouse=True)
    def _four_cpus(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        yield
        shutdown_pool()

    def test_pool_results_byte_identical(self, device, small_pool):
        models = _pool_models(small_pool, (4, 8, 16, 32))
        ref = evaluate_models(_fresh(device), models, check_memory=False)
        ctx = _fresh(device)
        out = map_chunks(_eval_chunk, models, ctx, jobs=4, chunk_size=2)
        assert out == ref
        # Every worker delta merged home: the parent can serve all cells.
        assert ctx.cache_size == len(models)
        assert pool_workers() == 4

    def test_delta_merge_back_under_pool_reuse(self, device, small_pool):
        first = _pool_models(small_pool, (4, 8))
        more = _pool_models(small_pool, (4, 8, 16, 32))
        ref = evaluate_models(_fresh(device), more, check_memory=False)
        ctx = _fresh(device)
        map_chunks(_eval_chunk, first, ctx, jobs=4, chunk_size=2)
        reuse0 = global_registry().value("exec.pool.reuse") or 0
        out = map_chunks(_eval_chunk, more, ctx, jobs=4, chunk_size=2)
        assert out == ref
        assert ctx.cache_size == len(more)
        # Same pool, second submission: warm workers were reused and the
        # already-shipped entries were not re-shipped (the parent cache
        # grew by exactly the new cells).
        assert (global_registry().value("exec.pool.reuse") or 0) > reuse0

    def test_pool_then_serial_hits(self, device, small_pool):
        models = _pool_models(small_pool, (4, 8, 16, 32))
        ctx = _fresh(device)
        out_pool = map_chunks(_eval_chunk, models, ctx, jobs=4, chunk_size=2)
        hits0 = global_registry().value("exec.cache.hit") or 0
        out_serial = map_chunks(_eval_chunk, models, ctx, jobs=1)
        assert out_serial == out_pool
        assert global_registry().value("exec.cache.hit") == hits0 + len(models)


# ---------------------------------------------------------------------------
# Grid consumers: memoized vs fresh-context, jobs 1 and 4
# ---------------------------------------------------------------------------


class TestConsumerByteIdentity:
    @pytest.fixture(autouse=True)
    def _four_cpus(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        yield
        shutdown_pool()

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_sweep_pool_memoized(self, device, small_pool, jobs):
        fresh = sweep_pool(
            device, small_pool, "c", (4, 8, 16),
            context=_fresh(device), jobs=jobs,
        )
        warm = _fresh(device)
        first = sweep_pool(
            device, small_pool, "c", (4, 8, 16), context=warm, jobs=jobs
        )
        again = sweep_pool(
            device, small_pool, "c", (4, 8, 16), context=warm, jobs=jobs
        )
        assert first == fresh
        assert again == fresh

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_sweep_conv_memoized(self, device, small_conv, jobs):
        values = (3, 16, 64)
        fresh = sweep_conv(
            device, small_conv, "ci", values,
            context=SimulationContext(device), jobs=jobs,
        )
        warm = SimulationContext(device)
        first = sweep_conv(device, small_conv, "ci", values, context=warm, jobs=jobs)
        again = sweep_conv(device, small_conv, "ci", values, context=warm, jobs=jobs)
        assert first == fresh
        assert again == fresh

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_calibrate_memoized(self, device, jobs):
        fresh = calibrate(device, context=SimulationContext(device), jobs=jobs)
        warm = SimulationContext(device)
        first = calibrate(device, context=warm, jobs=jobs)
        again = calibrate(device, context=warm, jobs=jobs)
        assert first == fresh
        assert again == fresh

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_autotune_memoized(self, device, small_pool, jobs):
        specs = [replace(small_pool, c=c) for c in (4, 8, 16)]
        fresh = autotune_pooling_many(
            device, specs, context=SimulationContext(device), jobs=jobs
        )
        warm = SimulationContext(device)
        first = autotune_pooling_many(device, specs, context=warm, jobs=jobs)
        again = autotune_pooling_many(device, specs, context=warm, jobs=jobs)
        assert first == fresh
        assert again == fresh
