"""Golden equivalence for the DRAM row-buffer replay.

``analyze_row_locality`` (vectorized per-bank stable-sort replay) and
``reference_analyze_row_locality`` (the scalar per-transaction walk) must
produce identical :class:`RowBufferStats` on any stream — random,
adversarial, and the boundary cases (empty, single access, one bank
hammered, alternating rows).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim.rowbuffer import (
    DramGeometry,
    analyze_row_locality,
    reference_analyze_row_locality,
    stream_addresses,
)


def _assert_same(addr, geometry=DramGeometry()):
    ref = reference_analyze_row_locality(addr, geometry)
    fast = analyze_row_locality(addr, geometry)
    assert ref == fast, f"\n  reference {ref}\n  vectorized {fast}"
    return fast


@st.composite
def address_streams(draw):
    geometry = DramGeometry(
        channels=draw(st.sampled_from([1, 2, 4, 6])),
        banks_per_channel=draw(st.sampled_from([1, 2, 8, 16])),
        row_bytes=draw(st.sampled_from([512, 2048])),
    )
    n = draw(st.integers(0, 3000))
    kind = draw(st.integers(0, 3))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    burst = geometry.burst_bytes
    if kind == 0:  # uniform random: mostly misses
        addr = rng.integers(0, 1 << 28, size=n) // burst * burst
    elif kind == 1:  # sequential with random jumps
        addr = np.cumsum(rng.choice([burst, burst, geometry.row_bytes * 37], size=n))
    elif kind == 2:  # small working set: repeated rows
        addr = rng.integers(0, 4, size=n) * geometry.row_bytes
    else:  # strided (pooling-shaped column walks)
        stride = int(rng.choice([burst, 128, geometry.row_bytes, 57 * 4]))
        addr = (np.arange(n) * stride) % (1 << 26) // burst * burst
    return np.asarray(addr, dtype=np.int64), geometry


class TestRandomizedEquivalence:
    @given(case=address_streams())
    @settings(max_examples=80, deadline=None)
    def test_streams(self, case):
        addr, geometry = case
        _assert_same(addr, geometry)


class TestAdversarial:
    def test_empty_stream(self):
        stats = _assert_same(np.empty(0, dtype=np.int64))
        assert stats.accesses == 0 and stats.hits == 0

    def test_single_access_misses(self):
        stats = _assert_same(np.array([0], dtype=np.int64))
        assert (stats.accesses, stats.hits) == (1, 0)

    def test_sequential_stream(self):
        stats = _assert_same(stream_addresses(1 << 20))
        assert stats.hit_rate > 0.9

    def test_one_bank_alternating_rows(self):
        """Two rows of the same bank ping-ponging: every access misses."""
        g = DramGeometry(channels=1, banks_per_channel=1)
        addr = np.tile([0, g.row_bytes], 500).astype(np.int64)
        stats = _assert_same(addr, g)
        assert stats.hits == 0

    def test_one_bank_same_row_hammer(self):
        g = DramGeometry(channels=1, banks_per_channel=1)
        addr = np.zeros(1000, dtype=np.int64)
        stats = _assert_same(addr, g)
        assert stats.hits == 999

    def test_interleaved_bank_streams(self):
        """Sequential per-bank streams interleaved globally: the stable
        sort must keep each bank's order."""
        g = DramGeometry(channels=2, banks_per_channel=2)
        per_bank = [
            stream_addresses(1 << 14, g) * 4 + b * g.burst_bytes for b in range(4)
        ]
        addr = np.stack(per_bank, axis=1).ravel()
        _assert_same(addr, g)

    def test_negative_addresses_rejected_by_both(self):
        addr = np.array([-32], dtype=np.int64)
        with pytest.raises(ValueError):
            reference_analyze_row_locality(addr)
        with pytest.raises(ValueError):
            analyze_row_locality(addr)
