"""Device spec registry and validation."""

import pytest

from repro.gpusim import (
    TITAN_BLACK,
    TITAN_X,
    ArchProfile,
    DeviceSpec,
    get_device,
    list_devices,
    register_device,
)


class TestDeviceSpec:
    def test_titan_black_matches_paper_section_iii(self):
        assert TITAN_BLACK.peak_gflops == 5121.0
        assert TITAN_BLACK.mem_bandwidth_gbs == 235.0
        assert TITAN_BLACK.dram_gib == 6.0

    def test_titan_x_is_larger(self):
        assert TITAN_X.peak_gflops > TITAN_BLACK.peak_gflops
        assert TITAN_X.mem_bandwidth_gbs > TITAN_BLACK.mem_bandwidth_gbs
        assert TITAN_X.l2_bytes > TITAN_BLACK.l2_bytes

    def test_dram_bytes(self):
        assert TITAN_BLACK.dram_bytes == 6 * 2**30

    def test_max_concurrent_threads(self):
        assert TITAN_BLACK.max_concurrent_threads == 15 * 2048

    def test_bytes_per_cycle_positive(self):
        assert TITAN_BLACK.bytes_per_cycle > 100  # ~240 B/cycle

    @pytest.mark.parametrize(
        "field,value",
        [
            ("sm_count", 0),
            ("peak_gflops", -1.0),
            ("mem_bandwidth_gbs", 0.0),
            ("clock_ghz", 0.0),
        ],
    )
    def test_invalid_specs_rejected(self, field, value):
        kwargs = dict(
            name="bad", sm_count=8, peak_gflops=1000.0,
            mem_bandwidth_gbs=100.0, clock_ghz=1.0, dram_gib=4.0,
        )
        kwargs[field] = value
        with pytest.raises(ValueError):
            DeviceSpec(**kwargs)

    def test_warp_size_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            DeviceSpec(
                name="bad", sm_count=8, peak_gflops=1000.0,
                mem_bandwidth_gbs=100.0, clock_ghz=1.0, dram_gib=4.0, warp_size=33,
            )

    def test_access_bw_efficiency_monotone_in_width(self):
        assert (
            TITAN_BLACK.access_bw_efficiency(4)
            <= TITAN_BLACK.access_bw_efficiency(8)
            <= TITAN_BLACK.access_bw_efficiency(16)
        )

    def test_with_arch_overrides_only_named_fields(self):
        tweaked = TITAN_BLACK.with_arch(gemm_peak_eff=0.9)
        assert tweaked.arch.gemm_peak_eff == 0.9
        assert tweaked.arch.gemm_k_half == TITAN_BLACK.arch.gemm_k_half
        assert tweaked.peak_gflops == TITAN_BLACK.peak_gflops


class TestRegistry:
    def test_known_devices(self):
        assert "titan-black" in list_devices()
        assert "titan-x" in list_devices()

    @pytest.mark.parametrize(
        "alias", ["titan-black", "TITAN_BLACK", "Kepler", "gtx titan black"]
    )
    def test_aliases(self, alias):
        assert get_device(alias) is TITAN_BLACK

    def test_unknown_device_raises_with_choices(self):
        with pytest.raises(KeyError, match="titan-black"):
            get_device("voodoo2")

    def test_register_custom_device(self):
        custom = DeviceSpec(
            name="toy", sm_count=2, peak_gflops=100.0,
            mem_bandwidth_gbs=50.0, clock_ghz=1.0, dram_gib=1.0,
        )
        register_device("toy-gpu", custom)
        assert get_device("toy-gpu") is custom


class TestArchProfile:
    def test_defaults_are_kepler_calibration(self):
        arch = ArchProfile()
        assert arch.direct_conv_n_saturation == 128
        assert 0 < arch.gemm_peak_eff < 1
        assert arch.bw_warp_saturation > 0
