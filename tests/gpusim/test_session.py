"""Simulation sessions: structural cache, counters, persistence, OOM."""

import json

import pytest

from repro.gpusim import (
    ComposedKernel,
    GpuOutOfMemoryError,
    KernelModel,
    LaunchConfig,
    MemoryProfile,
    SimStats,
    SimulationContext,
    SimulationEngine,
    default_context,
    reset_default_contexts,
    structural_key,
)
from repro.gpusim.device import TITAN_BLACK, TITAN_X
from repro.layers import PoolSpec
from repro.layers.pooling_kernels import make_pool_kernel


class ToyKernel(KernelModel):
    """Minimal concrete kernel for session tests."""

    def __init__(self, name="toy", flops=1e9, bytes_=1e8, workspace=0.0):
        self.name = name
        self._flops = flops
        self._bytes = bytes_
        self._workspace = workspace

    def launch_config(self, device):
        return LaunchConfig(grid=(1024, 1, 1), block=(256, 1, 1))

    def flop_count(self):
        return self._flops

    def memory_profile(self, device):
        return MemoryProfile.coalesced(self._bytes, self._bytes)

    def workspace_bytes(self):
        return self._workspace


class TestStructuralKey:
    def test_equal_models_share_a_key(self, device):
        assert structural_key(ToyKernel(), device) == structural_key(
            ToyKernel(), device
        )

    def test_different_state_differs(self, device):
        assert structural_key(ToyKernel(flops=1e9), device) != structural_key(
            ToyKernel(flops=2e9), device
        )

    def test_different_device_differs(self):
        k = ToyKernel()
        assert structural_key(k, TITAN_BLACK) != structural_key(k, TITAN_X)

    def test_same_name_different_spec_differs(self):
        """Device identity is the full spec, not the display name."""
        from dataclasses import replace

        slower = replace(TITAN_BLACK, mem_bandwidth_gbs=100.0)
        assert structural_key(ToyKernel(), TITAN_BLACK) != structural_key(
            ToyKernel(), slower
        )

    def test_memo_attributes_are_excluded(self, device):
        """A kernel that has lazily populated its internal memo cache must
        hash identically to a freshly built twin (regression for the
        pooling kernels' ``_profile_cache``)."""
        spec = PoolSpec(n=4, c=6, h=13, w=13, window=3, stride=2)
        used = make_pool_kernel(spec, "chwn")
        used.memory_profile(device)  # populate the per-device memo
        fresh = make_pool_kernel(spec, "chwn")
        assert structural_key(used, device) == structural_key(fresh, device)


class TestCache:
    def test_separately_built_equal_models_share_one_timing(self, device):
        """Regression for the dead ``id(model)`` memoization: two
        structurally-equal models built independently must share a single
        cache entry (and the very same stats object)."""
        ctx = SimulationContext(device)
        first = ctx.run(ToyKernel(flops=3e9))
        second = ctx.run(ToyKernel(flops=3e9))
        assert first is second
        assert ctx.cache_size == 1
        assert ctx.stats.misses == 1
        assert ctx.stats.hits == 1

    def test_hit_miss_accounting(self, device):
        ctx = SimulationContext(device)
        for _ in range(3):
            ctx.run(ToyKernel(name="conv-a"))
        ctx.run(ToyKernel(name="pool-b", flops=2e9))
        assert ctx.stats.queries == 4
        assert ctx.stats.misses == ctx.stats.kernels_timed == 2
        assert ctx.stats.hits == 2
        assert ctx.stats.hit_rate == pytest.approx(0.5)
        assert ctx.stats.by_kind["conv"].hits == 2
        assert ctx.stats.by_kind["conv"].misses == 1
        assert ctx.stats.by_kind["pool"].misses == 1
        assert ctx.stats.sim_wall_s >= 0.0

    def test_clear_cache(self, device):
        ctx = SimulationContext(device)
        ctx.run(ToyKernel())
        ctx.clear_cache()
        assert ctx.cache_size == 0
        ctx.run(ToyKernel())
        assert ctx.stats.misses == 2

    def test_composed_kernel_caches_stages(self, device):
        ctx = SimulationContext(device)
        composed = ComposedKernel(
            kernels=[ToyKernel(name="a"), ToyKernel(name="b", flops=2e9)],
            name="ab",
        )
        cold = ctx.run(composed)
        warm = ctx.run(
            ComposedKernel(
                kernels=[ToyKernel(name="a"), ToyKernel(name="b", flops=2e9)],
                name="ab",
            )
        )
        assert warm.time_ms == pytest.approx(cold.time_ms)
        assert ctx.stats.misses == 2  # the two stages, timed once each
        assert ctx.stats.hits == 2  # served from cache on the second pass


class TestPersistence:
    def test_round_trip(self, device, tmp_path):
        path = tmp_path / "cache.json"
        hot = SimulationContext(device, cache_path=path)
        original = hot.run(ToyKernel(flops=5e9))
        hot.save_cache()

        cold = SimulationContext(device, cache_path=path)
        assert cold.cache_size == 1
        assert cold.stats.loaded_from_disk == 1
        restored = cold.run(ToyKernel(flops=5e9))
        assert cold.stats.misses == 0  # nothing re-timed
        assert cold.stats.hits == 1
        assert restored.time_ms == pytest.approx(original.time_ms)
        assert restored.occupancy.limiter == original.occupancy.limiter
        assert restored.bound == original.bound

    def test_save_needs_a_path(self, device):
        with pytest.raises(ValueError):
            SimulationContext(device).save_cache()

    def test_unknown_version_ignored(self, device, tmp_path):
        path = tmp_path / "stale.json"
        path.write_text('{"version": 999, "entries": {"k": {}}}')
        ctx = SimulationContext(device)
        assert ctx.load_cache(path) == 0
        assert ctx.cache_size == 0

    def test_damaged_file_is_never_fatal(self, device, tmp_path):
        """A cache file is an accelerator, not an input: corruption must
        degrade to a cold cache, not an exception."""
        path = tmp_path / "corrupt.json"
        path.write_text("not json{")
        ctx = SimulationContext(device, cache_path=path)
        assert ctx.cache_size == 0
        ctx.run(ToyKernel())
        assert ctx.stats.misses == 1  # simply re-timed

    def test_malformed_entries_skipped(self, device, tmp_path):
        good = SimulationContext(device)
        good.run(ToyKernel())
        target = good.save_cache(tmp_path / "cache.json")
        payload = json.loads(target.read_text())
        payload["entries"]["bogus@dev#00"] = {"unexpected": "shape"}
        target.write_text(json.dumps(payload))
        ctx = SimulationContext(device)
        assert ctx.load_cache(target) == 1  # the good entry only

    def test_explicit_save_path_overrides(self, device, tmp_path):
        ctx = SimulationContext(device)
        ctx.run(ToyKernel())
        target = ctx.save_cache(tmp_path / "sub" / "cache.json")
        assert target.exists()
        assert SimulationContext(device, cache_path=target).cache_size == 1


class TestOom:
    def test_oversized_workspace_raises(self, device):
        ctx = SimulationContext(device)
        with pytest.raises(GpuOutOfMemoryError) as err:
            ctx.run(ToyKernel(workspace=7 * 2**30))
        assert err.value.required_bytes == 7 * 2**30

    def test_resident_tensors_count_against_capacity(self, device):
        ctx = SimulationContext(device, tensor_bytes_resident=5 * 2**30)
        with pytest.raises(GpuOutOfMemoryError):
            ctx.run(ToyKernel(workspace=2 * 2**30))

    def test_oom_fires_even_on_cache_hits(self, device):
        """Caching a timing must not cache away the capacity check."""
        ctx = SimulationContext(device, check_memory=False)
        ctx.run(ToyKernel(workspace=7 * 2**30))  # timed, unchecked
        with pytest.raises(GpuOutOfMemoryError):
            ctx.run(ToyKernel(workspace=7 * 2**30), check_memory=True)

    def test_per_call_resident_override(self, device):
        ctx = SimulationContext(device)
        ctx.run(ToyKernel(workspace=2 * 2**30))  # fits alone
        with pytest.raises(GpuOutOfMemoryError):
            ctx.run(
                ToyKernel(workspace=2 * 2**30),
                tensor_bytes_resident=5 * 2**30,
            )


class TestDefaultContexts:
    def test_engines_share_the_default_session(self, device):
        reset_default_contexts()
        try:
            a = SimulationEngine(device, check_memory=False)
            b = SimulationEngine(device, check_memory=False)
            assert a.context is b.context is default_context(device)
            a.run(ToyKernel(flops=7e9))
            b.run(ToyKernel(flops=7e9))
            assert default_context(device).stats.hits == 1
        finally:
            reset_default_contexts()

    def test_value_equal_devices_share_a_session(self, device):
        from dataclasses import replace

        reset_default_contexts()
        try:
            assert default_context(device) is default_context(replace(device))
        finally:
            reset_default_contexts()

    def test_engine_view_binds_overrides(self, device):
        ctx = SimulationContext(device)
        view = ctx.engine(check_memory=False)
        assert view.context is ctx
        view.run(ToyKernel(workspace=7 * 2**30))  # unchecked via the view
        with pytest.raises(GpuOutOfMemoryError):
            ctx.run(ToyKernel(workspace=7 * 2**30))

    def test_engine_rejects_mismatched_device(self, device, titan_x):
        ctx = SimulationContext(device)
        with pytest.raises(ValueError):
            SimulationEngine(titan_x, context=ctx)


class TestSimStats:
    def test_merge_and_reset(self):
        a, b = SimStats(), SimStats()
        a.record_miss("conv", 0.25)
        b.record_hit("conv")
        b.record_miss("pool", 0.5)
        a.merge(b)
        assert a.queries == 3
        assert a.sim_wall_s == pytest.approx(0.75)
        assert a.by_kind["conv"].total == 2
        a.reset()
        assert a.queries == 0 and not a.by_kind

    def test_summary_mentions_counters(self):
        stats = SimStats()
        stats.record_miss("conv", 0.001)
        stats.record_hit("conv")
        text = stats.summary()
        assert "kernel queries : 2" in text
        assert "cache hits     : 1 (50.0%)" in text
        assert "kernels timed  : 1" in text
        assert "conv" in text


class TestTracedFieldPersistence:
    """``KernelStats.traced_l2_hit_rate`` must survive the JSON cache and
    default to None for cache files written before the field existed."""

    def _traced_kernel(self):
        spec = PoolSpec(n=4, c=6, h=13, w=13, window=3, stride=2)
        return make_pool_kernel(spec, "nchw-linear")

    def test_round_trips(self, device, tmp_path):
        hot = SimulationContext(device, cache_path=tmp_path / "cache.json")
        original = hot.run(self._traced_kernel(), check_memory=False)
        assert original.traced_l2_hit_rate is not None
        hot.save_cache()

        cold = SimulationContext(device, cache_path=tmp_path / "cache.json")
        restored = cold.run(self._traced_kernel(), check_memory=False)
        assert cold.stats.misses == 0
        assert restored.traced_l2_hit_rate == original.traced_l2_hit_rate

    def test_pre_field_cache_files_default_to_none(self, device, tmp_path):
        hot = SimulationContext(device)
        hot.run(self._traced_kernel(), check_memory=False)
        target = hot.save_cache(tmp_path / "cache.json")
        payload = json.loads(target.read_text())
        for entry in payload["entries"].values():
            del entry["traced_l2_hit_rate"]  # a pre-field cache file
        target.write_text(json.dumps(payload))
        ctx = SimulationContext(device)
        assert ctx.load_cache(target) == 1
        restored = ctx.run(self._traced_kernel(), check_memory=False)
        assert ctx.stats.misses == 0  # still served from the old entry
        assert restored.traced_l2_hit_rate is None
