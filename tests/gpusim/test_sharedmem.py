"""Shared-memory bank-conflict model (the Fig. 7b padding rationale)."""

import numpy as np
import pytest

from repro.gpusim import analyze_shared_access, conflict_degree, tile_column_access


class TestConflictDegree:
    def test_unit_stride_is_conflict_free(self):
        addr = (np.arange(32, dtype=np.int64) * 4)[None, :]
        assert conflict_degree(addr)[0] == 1

    def test_unpadded_tile_column_is_32_way_conflict(self):
        # Reading a column of a 32-word-pitch tile: every lane hits bank 0.
        addr = tile_column_access(tile_rows=32, row_pitch_words=32)
        assert conflict_degree(addr)[0] == 32

    def test_padded_tile_column_is_conflict_free(self):
        # The paper pads the pitch to 33 (``sh[C][33]``) — degree collapses to 1.
        addr = tile_column_access(tile_rows=32, row_pitch_words=33)
        assert conflict_degree(addr)[0] == 1

    def test_broadcast_does_not_conflict(self):
        addr = np.zeros((1, 32), dtype=np.int64)
        assert conflict_degree(addr)[0] == 1

    def test_two_way_conflict(self):
        # Lanes access words 0 and 32 alternately: bank 0 holds 2 distinct words.
        addr = (np.where(np.arange(32) % 2 == 0, 0, 32 * 4)).astype(np.int64)[None, :]
        assert conflict_degree(addr)[0] == 2

    def test_partial_warp(self):
        addr = tile_column_access(tile_rows=16, row_pitch_words=33)
        assert conflict_degree(addr)[0] == 1

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            conflict_degree(np.zeros(32, dtype=np.int64))


class TestReport:
    def test_replays_aggregate(self):
        bad = tile_column_access(32, 32)
        good = tile_column_access(32, 33)
        rep = analyze_shared_access(np.concatenate([bad, good], axis=0))
        assert rep.warps == 2
        assert rep.replays == 31
        assert rep.avg_conflict_degree == pytest.approx(1 + 31 / 2)
