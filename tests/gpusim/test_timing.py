"""Analytic timing model: roofline behaviour, latency bound, launch overhead."""

import pytest

from repro.gpusim import (
    LaunchConfig,
    MemoryProfile,
    memory_service_time,
    compute_occupancy,
    time_kernel,
)


def full_launch(device, blocks=4096):
    return LaunchConfig(grid=(blocks, 1, 1), block=(256, 1, 1), regs_per_thread=32)


class TestMemoryProfile:
    def test_dram_bytes_respects_l2_hits(self):
        p = MemoryProfile(
            load_bytes=1000.0, store_bytes=0.0,
            load_transactions=100.0, store_transactions=0.0, l2_hit_rate=0.75,
        )
        assert p.dram_bytes(32) == pytest.approx(25 * 32)

    def test_stores_are_write_through(self):
        p = MemoryProfile(0.0, 3200.0, 0.0, 100.0)
        assert p.dram_bytes(32) == pytest.approx(3200)

    def test_coalesced_constructor(self):
        p = MemoryProfile.coalesced(load_bytes=3200.0, store_bytes=320.0)
        assert p.load_transactions == 100.0
        assert p.store_transactions == 10.0

    def test_scaled(self):
        p = MemoryProfile.coalesced(100.0, 100.0).scaled(2.0)
        assert p.load_bytes == 200.0
        assert p.load_transactions == pytest.approx(200.0 / 32)

    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryProfile(-1.0, 0.0, 0.0, 0.0)
        with pytest.raises(ValueError):
            MemoryProfile(0.0, 0.0, 0.0, 0.0, l2_hit_rate=1.5)
        with pytest.raises(ValueError):
            MemoryProfile(0.0, 0.0, 0.0, 0.0, smem_conflict_degree=0.5)


class TestRoofline:
    def test_memory_bound_kernel(self, device):
        gib = float(1 << 30)
        stats = time_kernel(
            device, full_launch(device), flops=1e6, alu_efficiency=0.5,
            profile=MemoryProfile.coalesced(gib, gib),
        )
        assert stats.bound == "dram_bandwidth"
        # 2 GiB at 235 GB/s * 0.87 width efficiency.
        expected_ms = 2 * gib / (235e9 * 0.87) * 1e3
        assert stats.time_ms == pytest.approx(expected_ms, rel=0.05)

    def test_compute_bound_kernel(self, device):
        stats = time_kernel(
            device, full_launch(device), flops=1e12, alu_efficiency=0.5,
            profile=MemoryProfile.coalesced(1e6, 1e6),
        )
        assert stats.bound == "compute"
        assert stats.time_ms == pytest.approx(1e12 / (5121e9 * 0.5) * 1e3, rel=0.01)

    def test_achieved_bandwidth_capped_by_width_efficiency(self, device):
        gib = float(1 << 30)
        stats = time_kernel(
            device, full_launch(device), flops=0.0, alu_efficiency=0.5,
            profile=MemoryProfile.coalesced(gib, gib),
        )
        assert stats.achieved_bandwidth_gbs <= device.mem_bandwidth_gbs

    def test_vectorized_access_is_faster(self, device):
        gib = float(1 << 30)
        t4 = time_kernel(
            device, full_launch(device), 0.0, 0.5,
            MemoryProfile.coalesced(gib, gib, access_bytes=4),
        ).time_ms
        t8 = time_kernel(
            device, full_launch(device), 0.0, 0.5,
            MemoryProfile.coalesced(gib, gib, access_bytes=8),
        ).time_ms
        assert t8 < t4


class TestLatencyBound:
    def test_few_threads_are_latency_bound(self, device):
        """The paper's 128-thread softmax kernels cannot hide latency."""
        launch = LaunchConfig(grid=(1, 1, 1), block=(128, 1, 1))
        mb = 4e6
        stats = time_kernel(
            device, launch, flops=0.0, alu_efficiency=0.25,
            profile=MemoryProfile(
                load_bytes=mb, store_bytes=0.0,
                load_transactions=1e6, store_transactions=0.0,
                dependent_iterations=1000.0,
            ),
        )
        # Either label is a latency story: too few threads to hide latency
        # (memory_latency) or to saturate the bus (degraded dram_bandwidth).
        assert stats.bound in ("memory_latency", "dram_bandwidth")
        full = time_kernel(
            device, full_launch(device), flops=0.0, alu_efficiency=0.25,
            profile=MemoryProfile.coalesced(mb, 0.0),
        )
        assert stats.time_ms > 10 * full.time_ms

    def test_transaction_issue_bound_for_uncoalesced(self, device):
        """1 transaction per element: the LSU term dominates DRAM time."""
        elements = 1e7
        stats = time_kernel(
            device, full_launch(device), flops=0.0, alu_efficiency=0.25,
            profile=MemoryProfile(
                load_bytes=elements * 4, store_bytes=0.0,
                load_transactions=elements, store_transactions=0.0,
                l2_hit_rate=0.9,
            ),
        )
        assert stats.bound == "transaction_issue"


class TestLaunchOverhead:
    def test_tiny_kernel_dominated_by_launch(self, device):
        stats = time_kernel(
            device, LaunchConfig(grid=(1, 1, 1), block=(32, 1, 1)),
            flops=100.0, alu_efficiency=0.5,
            profile=MemoryProfile.coalesced(128.0, 128.0),
        )
        assert stats.bound == "launch_overhead"
        assert stats.time_ms >= device.launch_overhead_us * 1e-3

    def test_n_launches_multiplies_overhead(self, device):
        profile = MemoryProfile.coalesced(128.0, 128.0)
        launch = LaunchConfig(grid=(1, 1, 1), block=(32, 1, 1))
        one = time_kernel(device, launch, 0.0, 0.5, profile, n_launches=1)
        five = time_kernel(device, launch, 0.0, 0.5, profile, n_launches=5)
        assert five.launch_ms == pytest.approx(5 * one.launch_ms)


class TestServiceTimes:
    def test_limiter_labels(self, device):
        occ = compute_occupancy(device, full_launch(device))
        mem = memory_service_time(
            device, MemoryProfile.coalesced(1e9, 1e9), occ
        )
        assert mem.limiter == "dram_bandwidth"
        assert mem.total_s == pytest.approx(mem.bandwidth_s)

    def test_bank_conflicts_inflate_issue_time(self, device):
        occ = compute_occupancy(device, full_launch(device))
        clean = MemoryProfile.coalesced(1e8, 1e8)
        conflicted = MemoryProfile.coalesced(1e8, 1e8, smem_conflict_degree=32.0)
        t_clean = memory_service_time(device, clean, occ)
        t_bad = memory_service_time(device, conflicted, occ)
        assert t_bad.lsu_s == pytest.approx(32 * t_clean.lsu_s)
