"""Golden equivalence: the vectorized fast path must be bit-exact.

``SetAssociativeCache.access_stream`` (NumPy set-partitioned replay with a
closed-form shortcut and adjacent-duplicate collapse) and
``reference_access_stream`` (the scalar true-LRU loop) must agree on every
observable: per-access hit masks, :class:`CacheStats` including evictions,
and the full internal state (tags, LRU stamps, clock) so that interleaved
multi-call usage stays equivalent forever after.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import (
    SetAssociativeCache,
    transaction_stream,
    warps_from_threads,
)
from repro.gpusim.cache import min_round_sets, set_fast_path, set_min_round_sets


def _state(cache: SetAssociativeCache):
    return (
        cache._tags.copy(),
        cache._stamp.copy(),
        cache._clock,
        (cache.stats.accesses, cache.stats.hits, cache.stats.evictions),
    )


def _assert_same_state(ref: SetAssociativeCache, fast: SetAssociativeCache):
    tr, sr, cr, xr = _state(ref)
    tf, sf, cf, xf = _state(fast)
    np.testing.assert_array_equal(tr, tf, err_msg="tag arrays differ")
    np.testing.assert_array_equal(sr, sf, err_msg="LRU stamps differ")
    assert cr == cf, "clocks differ"
    assert xr == xf, "CacheStats differ"


def _pair(capacity, line, assoc):
    return (
        SetAssociativeCache(capacity, line, assoc, fast_path=False),
        SetAssociativeCache(capacity, line, assoc, fast_path=True),
    )


def _check_equivalent(addr, capacity, line, assoc, chunks=()):
    """Replay ``addr`` through both paths (optionally split at ``chunks``)
    and require identical hits and identical final state."""
    ref, fast = _pair(capacity, line, assoc)
    cuts = [0, *sorted(chunks), len(addr)]
    for lo, hi in zip(cuts, cuts[1:]):
        h_ref = ref.reference_access_stream(addr[lo:hi])
        h_fast = fast.access_stream(addr[lo:hi])
        np.testing.assert_array_equal(h_ref, h_fast)
    _assert_same_state(ref, fast)


@st.composite
def geometry_and_trace(draw):
    assoc = draw(st.sampled_from([1, 2, 4, 8, 16]))
    n_sets = draw(st.sampled_from([1, 2, 4, 8, 16, 32]))
    line = draw(st.sampled_from([16, 32, 64]))
    capacity = line * assoc * n_sets
    n = draw(st.integers(1, 2000))
    kind = draw(st.integers(0, 4))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    if kind == 0:  # uniform over 8x capacity: mixed hits and evictions
        addr = rng.integers(0, capacity * 8, size=n)
    elif kind == 1:  # hot working set within capacity: closed-form heavy
        addr = rng.integers(0, capacity // 2 + 1, size=n)
    elif kind == 2:  # strided sweep (adjacent duplicates when stride < line)
        stride = int(rng.choice([1, 2, 4, 32, 128]))
        addr = (np.arange(n) * stride) % (capacity * 4)
    elif kind == 3:  # adversarial: hammer one set
        s = int(rng.integers(0, n_sets))
        addr = (rng.integers(0, 4 * assoc, size=n) * n_sets + s) * line
    else:  # bimodal reuse distances
        addr = np.concatenate(
            [
                rng.integers(0, capacity, size=n // 2 + 1),
                rng.integers(0, capacity * 16, size=n // 2 + 1),
            ]
        )
    cuts = sorted(int(c) for c in rng.integers(0, addr.size + 1, size=2))
    return capacity, line, assoc, np.asarray(addr, dtype=np.int64), cuts


class TestRandomizedEquivalence:
    @given(case=geometry_and_trace())
    @settings(max_examples=60, deadline=None)
    def test_single_call(self, case):
        capacity, line, assoc, addr, _ = case
        _check_equivalent(addr, capacity, line, assoc)

    @given(case=geometry_and_trace())
    @settings(max_examples=40, deadline=None)
    def test_multi_call_continuity(self, case):
        """State carried across calls: chunked replay equals one-shot."""
        capacity, line, assoc, addr, cuts = case
        _check_equivalent(addr, capacity, line, assoc, chunks=cuts)


class TestAdversarial:
    @pytest.mark.parametrize("assoc", [1, 2, 4, 16])
    def test_same_set_thrash(self, assoc):
        """assoc+1 lines cycling through one set: every access evicts."""
        capacity = 32 * assoc * 8
        addr = (np.arange(5000) % (assoc + 1)) * 8 * 32
        _check_equivalent(addr, capacity, 32, assoc)

    @pytest.mark.parametrize("assoc", [1, 2, 4, 16])
    def test_closed_form_boundary_fits(self, assoc):
        """Working set of exactly ``assoc`` lines per set: the closed-form
        shortcut applies and nothing may be evicted."""
        capacity = 32 * assoc * 8
        addr = (np.arange(5000) % assoc) * 8 * 32
        ref, fast = _pair(capacity, 32, assoc)
        np.testing.assert_array_equal(
            ref.reference_access_stream(addr), fast.access_stream(addr)
        )
        _assert_same_state(ref, fast)
        assert fast.stats.evictions == 0

    def test_adjacent_duplicate_runs(self):
        """Pooling-shaped traces: consecutive taps share a line (the
        duplicate-collapse tier), interleaved with row strides."""
        taps = np.arange(0, 57 * 4, 8, dtype=np.int64)
        rows = np.arange(0, 81, 2, dtype=np.int64) * 57 * 4
        addr = (rows[:, None] + taps[None, :]).ravel()
        _check_equivalent(addr, 4096, 32, 4)

    def test_scalar_shortcut_small_trace(self):
        """Traces of <= 32 addresses take the scalar path even with the
        fast path enabled; state must still match."""
        addr = np.array([0, 32, 0, 64, 96, 32, 128], dtype=np.int64)
        _check_equivalent(addr, 256, 32, 2)


class TestFastPathToggle:
    def test_set_fast_path_returns_previous(self):
        prev = set_fast_path(False)
        try:
            assert set_fast_path(True) is False
            assert set_fast_path(True) is True
        finally:
            set_fast_path(prev)

    def test_default_follows_module_toggle(self):
        prev = set_fast_path(False)
        try:
            addr = np.arange(0, 200 * 32, 32, dtype=np.int64)
            slow = SetAssociativeCache(1024, 32, 2)
            set_fast_path(True)
            fast = SetAssociativeCache(1024, 32, 2)
            np.testing.assert_array_equal(
                slow.access_stream(addr), fast.access_stream(addr)
            )
            _assert_same_state(slow, fast)
        finally:
            set_fast_path(prev)


class TestPaddedTraces:
    """Satellite regression: ``warps_from_threads`` pads inactive lanes
    with -1, and the L2 rejects negative addresses — the shared
    ``transaction_stream`` helper must strip the padding in between."""

    def test_padded_warps_flow_into_cache(self):
        addrs = np.arange(0, 100 * 4, 4, dtype=np.int64)  # 100 threads
        warps = warps_from_threads(addrs)
        assert (warps == -1).any()  # tail-padded to a full warp
        stream = transaction_stream(warps, 32)
        assert (stream >= 0).all()
        cache = SetAssociativeCache(1024, 32, 2)
        hits = cache.access_stream(stream)  # must not raise
        assert hits.size == stream.size

    def test_all_padding_warp_contributes_nothing(self):
        warps = np.full((3, 32), -1, dtype=np.int64)
        assert transaction_stream(warps, 32).size == 0

    def test_negative_still_rejected_at_the_cache(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(1024, 32, 2).access_stream(np.array([-1]))


class TestTransactionStream:
    def test_per_warp_unique_ascending_segments(self):
        warps = np.array([[0, 4, 8, 64], [96, 96, 32, -1]])
        out = transaction_stream(warps, 32)
        assert out.tolist() == [0, 64, 32, 96]

    def test_cap_keeps_whole_warp_reaching_it(self):
        warps = np.array([[0, 64], [128, 192], [256, 320]])
        # Cap of 3 is first reached inside warp 1: warps 0-1 kept whole.
        out = transaction_stream(warps, 32, max_transactions=3)
        assert out.tolist() == [0, 64, 128, 192]
        # Cap of 2 is reached exactly at warp 0's boundary.
        out = transaction_stream(warps, 32, max_transactions=2)
        assert out.tolist() == [0, 64]

    def test_one_dimensional_input_is_one_warp(self):
        out = transaction_stream(np.array([40, 0, 8]), 32)
        assert out.tolist() == [0, 32]

    def test_empty_input(self):
        assert transaction_stream(np.empty((0, 32), dtype=np.int64), 32).size == 0

    def test_invalid_segment_bytes(self):
        with pytest.raises(ValueError):
            transaction_stream(np.array([0]), 0)


class TestMinRoundSetsCutoff:
    """``MIN_ROUND_SETS`` trades vectorized rounds against the scalar
    tail purely for speed — any threshold must replay identically."""

    def test_setter_returns_previous_and_validates(self):
        prev = set_min_round_sets(0)
        try:
            assert set_min_round_sets(100) == 0
            assert min_round_sets() == 100
            with pytest.raises(ValueError):
                set_min_round_sets(-1)
            assert min_round_sets() == 100  # rejected values don't stick
        finally:
            set_min_round_sets(prev)

    @pytest.mark.parametrize("threshold", [0, 1, 24, 10_000])
    def test_any_cutoff_matches_reference(self, threshold):
        rng = np.random.default_rng(7)
        addr = rng.integers(0, 64 * 1024, size=4000) // 32 * 32
        prev = set_min_round_sets(threshold)
        try:
            ref, fast = _pair(16 * 1024, 32, 4)
            h_ref = ref.reference_access_stream(addr)
            h_fast = fast.access_stream(addr)
        finally:
            set_min_round_sets(prev)
        np.testing.assert_array_equal(h_ref, h_fast)
        _assert_same_state(ref, fast)

    def test_extremes_agree_with_each_other(self):
        """All-vectorized (0) and all-scalar-tail (huge) replays of the
        same trace leave byte-identical hits and state."""
        rng = np.random.default_rng(11)
        addr = rng.integers(0, 32 * 1024, size=3000) // 32 * 32
        results = {}
        for threshold in (0, 1_000_000):
            prev = set_min_round_sets(threshold)
            try:
                cache = SetAssociativeCache(8 * 1024, 32, 2, fast_path=True)
                hits = cache.access_stream(addr)
            finally:
                set_min_round_sets(prev)
            results[threshold] = (hits, _state(cache))
        h0, s0 = results[0]
        h1, s1 = results[1_000_000]
        np.testing.assert_array_equal(h0, h1)
        np.testing.assert_array_equal(s0[0], s1[0])
        np.testing.assert_array_equal(s0[1], s1[1])
        assert s0[2:] == s1[2:]
