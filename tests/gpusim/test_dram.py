"""DRAM service-time model: each limiting mechanism in isolation."""

import pytest

from repro.gpusim import (
    LaunchConfig,
    MemoryProfile,
    compute_occupancy,
    memory_service_time,
)


def occ_full(device):
    return compute_occupancy(
        device, LaunchConfig(grid=(4096,), block=(256,), regs_per_thread=32)
    )


def occ_tiny(device):
    return compute_occupancy(device, LaunchConfig(grid=(1,), block=(64,)))


class TestBandwidthTerm:
    def test_streaming_kernel_is_bandwidth_limited(self, device):
        prof = MemoryProfile.coalesced(1e9, 1e9)
        mem = memory_service_time(device, prof, occ_full(device))
        assert mem.limiter == "dram_bandwidth"
        expected = 2e9 / (device.mem_bandwidth_gbs * 1e9 * device.bw_eff_4b)
        assert mem.bandwidth_s == pytest.approx(expected, rel=1e-6)

    def test_l2_hits_shrink_dram_bytes(self, device):
        hot = MemoryProfile(1e9, 0.0, 1e9 / 32, 0.0, l2_hit_rate=0.8)
        cold = MemoryProfile(1e9, 0.0, 1e9 / 32, 0.0, l2_hit_rate=0.0)
        occ = occ_full(device)
        assert (
            memory_service_time(device, hot, occ).dram_bytes
            == pytest.approx(0.2 * memory_service_time(device, cold, occ).dram_bytes)
        )

    def test_low_occupancy_degrades_bandwidth(self, device):
        prof = MemoryProfile.coalesced(1e8, 0.0)
        full = memory_service_time(device, prof, occ_full(device))
        tiny = memory_service_time(device, prof, occ_tiny(device))
        assert tiny.bandwidth_s > 5 * full.bandwidth_s


class TestIssueTerm:
    def test_uncoalesced_kernel_is_issue_limited(self, device):
        # one transaction per 4-byte element, but all L2 hits: DRAM light,
        # LSU heavy.
        elements = 1e8
        prof = MemoryProfile(
            elements * 4, 0.0, elements, 0.0, l2_hit_rate=0.99
        )
        mem = memory_service_time(device, prof, occ_full(device))
        assert mem.limiter == "transaction_issue"
        expected = elements / (device.sm_count * device.clock_ghz * 1e9)
        assert mem.lsu_s == pytest.approx(expected, rel=1e-6)

    def test_bank_conflicts_multiply_issue_time(self, device):
        base = MemoryProfile.coalesced(1e8, 0.0)
        conflicted = MemoryProfile.coalesced(1e8, 0.0, smem_conflict_degree=8.0)
        occ = occ_full(device)
        assert memory_service_time(device, conflicted, occ).lsu_s == pytest.approx(
            8 * memory_service_time(device, base, occ).lsu_s
        )


class TestLatencyTerm:
    def test_dependent_chain_sets_a_floor(self, device):
        prof = MemoryProfile(
            4096.0, 0.0, 128.0, 0.0, dependent_iterations=10_000.0
        )
        mem = memory_service_time(device, prof, occ_tiny(device))
        latency_sec = device.mem_latency_cycles / (device.clock_ghz * 1e9)
        floor = 10_000.0 / device.arch.mlp_per_thread * latency_sec
        assert mem.latency_s >= floor * 0.999

    def test_zero_traffic_costs_nothing(self, device):
        prof = MemoryProfile(0.0, 0.0, 0.0, 0.0)
        mem = memory_service_time(device, prof, occ_full(device))
        assert mem.total_s == 0.0
        assert mem.dram_bytes == 0.0

    def test_total_is_the_max_of_the_terms(self, device):
        prof = MemoryProfile.coalesced(1e9, 1e8, l2_hit_rate=0.3)
        mem = memory_service_time(device, prof, occ_full(device))
        assert mem.total_s == max(mem.bandwidth_s, mem.lsu_s, mem.latency_s)
