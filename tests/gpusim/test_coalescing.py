"""Coalescing unit: transactions per warp for canonical access patterns."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import (
    TITAN_BLACK,
    analyze_warps,
    strided_pattern,
    warp_transactions,
)


class TestWarpTransactions:
    def test_fully_coalesced_float_is_4_transactions(self, device):
        addr = strided_pattern(1, 4, device)
        assert warp_transactions(addr, device)[0] == 4  # 128 B / 32 B

    def test_stride_two_floats_doubles_transactions(self, device):
        addr = strided_pattern(1, 8, device)
        assert warp_transactions(addr, device)[0] == 8

    def test_large_stride_is_one_transaction_per_lane(self, device):
        addr = strided_pattern(1, 4096, device)
        assert warp_transactions(addr, device)[0] == 32

    def test_broadcast_is_single_transaction(self, device):
        addr = np.zeros((1, 32), dtype=np.int64)
        assert warp_transactions(addr, device)[0] == 1

    def test_inactive_lanes_ignored(self, device):
        addr = strided_pattern(1, 4, device)
        addr[0, 16:] = -1
        assert warp_transactions(addr, device)[0] == 2  # 64 B / 32 B

    def test_all_inactive_warp_is_zero(self, device):
        addr = np.full((1, 32), -1, dtype=np.int64)
        assert warp_transactions(addr, device)[0] == 0

    def test_misaligned_coalesced_access_costs_one_extra(self, device):
        addr = strided_pattern(1, 4, device, base=16)
        assert warp_transactions(addr, device)[0] == 5

    def test_straddling_float2_counts_both_segments(self, device):
        # One 8-byte access starting 4 bytes before a segment boundary.
        addr = np.full((1, 32), -1, dtype=np.int64)
        addr[0, 0] = 28
        assert warp_transactions(addr, device, access_bytes=8)[0] == 2

    def test_rejects_bad_shapes(self, device):
        with pytest.raises(ValueError):
            warp_transactions(np.zeros(32, dtype=np.int64), device)
        with pytest.raises(ValueError):
            warp_transactions(np.zeros((1, 64), dtype=np.int64), device)

    @given(stride=st.integers(min_value=1, max_value=64))
    @settings(max_examples=30, deadline=None)
    def test_transactions_bounded(self, stride):
        """1 <= transactions <= warp_size for any 4-byte pattern."""
        addr = strided_pattern(4, stride * 4, TITAN_BLACK)
        counts = warp_transactions(addr, TITAN_BLACK)
        assert (counts >= 1).all()
        assert (counts <= TITAN_BLACK.warp_size).all()

    @given(
        perm_seed=st.integers(min_value=0, max_value=2**31 - 1),
        stride=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=25, deadline=None)
    def test_permutation_invariance(self, perm_seed, stride):
        """Transaction count depends on the address *set*, not lane order."""
        rng = np.random.default_rng(perm_seed)
        addr = strided_pattern(1, stride * 4, TITAN_BLACK)
        shuffled = addr.copy()
        rng.shuffle(shuffled[0])
        assert (
            warp_transactions(addr, TITAN_BLACK)[0]
            == warp_transactions(shuffled, TITAN_BLACK)[0]
        )


class TestAnalyzeWarps:
    def test_report_efficiency_for_coalesced(self, device):
        rep = analyze_warps(strided_pattern(8, 4, device), device)
        assert rep.warps == 8
        assert rep.efficiency == pytest.approx(1.0)
        assert rep.overfetch == pytest.approx(1.0)

    def test_report_overfetch_for_strided(self, device):
        rep = analyze_warps(strided_pattern(8, 32, device), device)
        assert rep.overfetch == pytest.approx(8.0)

    def test_merge_adds_counters(self, device):
        a = analyze_warps(strided_pattern(2, 4, device), device)
        b = analyze_warps(strided_pattern(3, 8, device), device)
        merged = a.merged(b)
        assert merged.warps == 5
        assert merged.transactions == a.transactions + b.transactions

    def test_empty_pattern_requires_positive_warps(self, device):
        with pytest.raises(ValueError):
            strided_pattern(0, 4, device)
