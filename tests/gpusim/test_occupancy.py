"""Occupancy calculator and latency-hiding model."""

import pytest

from repro.gpusim import (
    LaunchConfig,
    compute_occupancy,
    latency_hiding_factor,
)


class TestOccupancy:
    def test_full_occupancy_small_footprint(self, device):
        occ = compute_occupancy(
            device, LaunchConfig(grid=(1000, 1, 1), block=(256, 1, 1), regs_per_thread=32)
        )
        assert occ.active_warps_per_sm == device.max_warps_per_sm
        assert occ.fraction == 1.0

    def test_register_limited(self, device):
        # 255 regs * 256 threads = 65280 regs/block -> 1 block/SM.
        occ = compute_occupancy(
            device, LaunchConfig(grid=(100, 1, 1), block=(256, 1, 1), regs_per_thread=255)
        )
        assert occ.blocks_per_sm == 1
        assert occ.limiter == "registers"

    def test_shared_memory_limited(self, device):
        occ = compute_occupancy(
            device,
            LaunchConfig(
                grid=(100, 1, 1), block=(64, 1, 1),
                regs_per_thread=16, smem_per_block=24 * 1024,
            ),
        )
        assert occ.blocks_per_sm == 2
        assert occ.limiter == "shared_memory"

    def test_block_count_limited_for_tiny_blocks(self, device):
        occ = compute_occupancy(
            device, LaunchConfig(grid=(10000, 1, 1), block=(32, 1, 1), regs_per_thread=16)
        )
        assert occ.blocks_per_sm == device.max_blocks_per_sm
        assert occ.limiter == "blocks"

    def test_warp_cap(self, device):
        # 1024-thread blocks = 32 warps; 2 blocks possible by threads but the
        # warp cap (64) allows exactly 2 — use registers to force the check.
        occ = compute_occupancy(
            device, LaunchConfig(grid=(10, 1, 1), block=(1024, 1, 1), regs_per_thread=16)
        )
        assert occ.active_warps_per_sm <= device.max_warps_per_sm

    def test_oversized_block_rejected(self, device):
        with pytest.raises(ValueError):
            compute_occupancy(device, LaunchConfig(grid=(1, 1, 1), block=(2048, 1, 1)))

    def test_oversized_smem_rejected(self, device):
        with pytest.raises(ValueError):
            compute_occupancy(
                device,
                LaunchConfig(grid=(1, 1, 1), block=(32, 1, 1), smem_per_block=64 * 1024),
            )

    def test_waves(self, device):
        occ = compute_occupancy(
            device, LaunchConfig(grid=(device.sm_count * 8, 1, 1), block=(256, 1, 1))
        )
        assert occ.waves == pytest.approx(1.0)


class TestLatencyHiding:
    def test_saturated_at_full_occupancy(self, device):
        occ = compute_occupancy(
            device, LaunchConfig(grid=(10000, 1, 1), block=(256, 1, 1), regs_per_thread=32)
        )
        assert latency_hiding_factor(device, occ) == 1.0

    def test_tiny_grid_underutilizes(self, device):
        occ = compute_occupancy(device, LaunchConfig(grid=(1, 1, 1), block=(128, 1, 1)))
        assert latency_hiding_factor(device, occ) < 0.1

    def test_partial_lanes_reduce_hiding(self, device):
        full = compute_occupancy(
            device, LaunchConfig(grid=(10000, 1, 1), block=(32, 1, 1))
        )
        partial = compute_occupancy(
            device,
            LaunchConfig(grid=(10000, 1, 1), block=(6, 1, 1), active_lane_fraction=6 / 32),
        )
        assert latency_hiding_factor(device, partial) < latency_hiding_factor(
            device, full
        )

    def test_monotone_in_block_count(self, device):
        factors = []
        for grid in (1, 4, 16, 64, 256):
            occ = compute_occupancy(device, LaunchConfig(grid=(grid, 1, 1), block=(64, 1, 1)))
            factors.append(latency_hiding_factor(device, occ))
        assert factors == sorted(factors)


class TestLaunchConfig:
    def test_dims_normalized(self):
        cfg = LaunchConfig(grid=(4,), block=(32,))
        assert cfg.grid == (4, 1, 1)
        assert cfg.block == (32, 1, 1)
        assert cfg.total_threads == 128

    def test_int_accepted(self):
        cfg = LaunchConfig(grid=7, block=64)
        assert cfg.total_blocks == 7
        assert cfg.threads_per_block == 64

    def test_invalid_lane_fraction(self):
        with pytest.raises(ValueError):
            LaunchConfig(grid=1, block=32, active_lane_fraction=0.0)

    def test_negative_dims_rejected(self):
        with pytest.raises(ValueError):
            LaunchConfig(grid=(0, 1, 1), block=(32, 1, 1))


class TestLaunchValidation:
    """check_launch is the reusable limit predicate; compute_occupancy
    raises a structured error instead of reporting zero-block occupancy."""

    def test_clean_launch_has_no_violations(self, device):
        from repro.gpusim import check_launch

        cfg = LaunchConfig(grid=(100, 1, 1), block=(256, 1, 1))
        assert check_launch(device, cfg) == []

    def test_oversized_block_violation(self, device):
        from repro.gpusim import check_launch

        cfg = LaunchConfig(grid=(1, 1, 1), block=(2048, 1, 1))
        codes = {v.code for v in check_launch(device, cfg)}
        assert "threads_per_block" in codes

    def test_zero_occupancy_register_demand(self, device):
        from repro.gpusim import check_launch

        cfg = LaunchConfig(grid=(1, 1, 1), block=(1024, 1, 1), regs_per_thread=128)
        (v,) = check_launch(device, cfg)
        assert v.code == "regs_per_block"
        assert v.actual == 1024 * 128
        assert v.limit == device.regs_per_sm

    def test_compute_occupancy_raises_structured_error(self, device):
        from repro.gpusim import LaunchValidationError

        cfg = LaunchConfig(grid=(1, 1, 1), block=(1024, 1, 1), regs_per_thread=128)
        with pytest.raises(LaunchValidationError) as err:
            compute_occupancy(device, cfg)
        assert err.value.violations[0].code == "regs_per_block"
        assert "zero blocks fit" in str(err.value)

    def test_error_is_a_value_error(self, device):
        from repro.gpusim import LaunchValidationError

        assert issubclass(LaunchValidationError, ValueError)

    def test_message_names_the_limit(self, device):
        from repro.gpusim import LaunchValidationError

        cfg = LaunchConfig(grid=(1, 1, 1), block=(32, 1, 1), smem_per_block=64 * 1024)
        with pytest.raises(LaunchValidationError, match="shared memory"):
            compute_occupancy(device, cfg)
