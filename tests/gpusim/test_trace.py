"""Trace utilities: warp grouping, sampling, stride formula cross-check."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import (
    TITAN_BLACK,
    analyze_trace,
    sample_indices,
    strided_pattern,
    transactions_for_stride,
    warp_transactions,
    warps_from_threads,
)


class TestWarpsFromThreads:
    def test_1d_grouping(self):
        addrs = np.arange(64, dtype=np.int64) * 4
        warps = warps_from_threads(addrs)
        assert warps.shape == (2, 32)
        assert warps[1, 0] == 32 * 4

    def test_1d_padding(self):
        warps = warps_from_threads(np.arange(40, dtype=np.int64))
        assert warps.shape == (2, 32)
        assert (warps[1, 8:] == -1).all()

    def test_2d_per_thread_sequences(self):
        # 32 threads each doing 3 accesses -> 3 warp instructions.
        addrs = np.arange(32, dtype=np.int64)[:, None] * 4 + np.array([0, 400, 800])
        warps = warps_from_threads(addrs)
        assert warps.shape == (3, 32)
        assert (warps[0] == np.arange(32) * 4).all()
        assert (warps[1] == np.arange(32) * 4 + 400).all()

    def test_3d_rejected(self):
        with pytest.raises(ValueError):
            warps_from_threads(np.zeros((2, 2, 2), dtype=np.int64))


class TestSampling:
    def test_small_total_returns_all(self):
        assert (sample_indices(5, 10) == np.arange(5)).all()

    def test_large_total_spans_range(self):
        idx = sample_indices(10_000, 16)
        assert len(idx) == 16
        assert idx[0] == 0
        assert idx[-1] > 9000

    def test_deterministic(self):
        assert (sample_indices(1000, 7) == sample_indices(1000, 7)).all()

    def test_invalid_total(self):
        with pytest.raises(ValueError):
            sample_indices(0, 4)


class TestStrideFormula:
    @given(
        lanes=st.integers(1, 32),
        stride_floats=st.integers(1, 64),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_traced_coalescing(self, lanes, stride_floats):
        """The closed-form helper must agree with the traced unit."""
        stride = stride_floats * 4
        lanes_idx = np.arange(32, dtype=np.int64)
        addr = np.where(lanes_idx < lanes, lanes_idx * stride, -1)[None, :]
        assert transactions_for_stride(TITAN_BLACK, lanes, stride) == float(
            warp_transactions(addr, TITAN_BLACK)[0]
        )


class TestAnalyzeTrace:
    def test_no_l2_reuse_for_disjoint_warps(self, device):
        result = analyze_trace(strided_pattern(32, 4, device), device)
        assert result.l2_hit_rate == 0.0
        assert result.coalescing.efficiency == pytest.approx(1.0)

    def test_repeat_warps_hit_l2(self, device):
        one = strided_pattern(1, 4, device)
        trace = np.concatenate([one, one, one], axis=0)
        result = analyze_trace(trace, device)
        assert result.l2_hit_rate == pytest.approx(2 / 3)

    def test_sampled_fraction_scale(self, device):
        result = analyze_trace(
            strided_pattern(4, 4, device), device, sampled_fraction=0.25
        )
        assert result.scale() == pytest.approx(4.0)
