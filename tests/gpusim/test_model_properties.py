"""Property-based sanity laws of the timing model.

These are the monotonicity/boundedness guarantees any credible performance
model must satisfy — more work never takes less time, efficiency never
exceeds the roofline, occupancy responds to resources the right way.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import (
    LaunchConfig,
    MemoryProfile,
    TITAN_BLACK,
    compute_occupancy,
    roofline_point,
    time_kernel,
)

launches = st.builds(
    LaunchConfig,
    grid=st.tuples(st.integers(1, 4096)),
    block=st.tuples(st.sampled_from([32, 64, 128, 256, 512])),
    regs_per_thread=st.sampled_from([16, 32, 64, 128]),
    smem_per_block=st.sampled_from([0, 4096, 16384]),
)


def profile_of(bytes_, trans_factor=1.0, hit=0.0):
    return MemoryProfile(
        load_bytes=bytes_,
        store_bytes=bytes_ / 4,
        load_transactions=bytes_ / 32 * trans_factor,
        store_transactions=bytes_ / 128,
        l2_hit_rate=hit,
    )


class TestMonotonicity:
    @given(
        launch=launches,
        flops=st.floats(1e6, 1e12),
        scale=st.floats(1.1, 10.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_more_flops_never_faster(self, launch, flops, scale):
        prof = profile_of(1e7)
        t1 = time_kernel(TITAN_BLACK, launch, flops, 0.5, prof).time_ms
        t2 = time_kernel(TITAN_BLACK, launch, flops * scale, 0.5, prof).time_ms
        assert t2 >= t1

    @given(
        launch=launches,
        bytes_=st.floats(1e5, 1e9),
        scale=st.floats(1.1, 10.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_more_bytes_never_faster(self, launch, bytes_, scale):
        t1 = time_kernel(TITAN_BLACK, launch, 1e6, 0.5, profile_of(bytes_)).time_ms
        t2 = time_kernel(
            TITAN_BLACK, launch, 1e6, 0.5, profile_of(bytes_ * scale)
        ).time_ms
        assert t2 >= t1

    @given(launch=launches, bytes_=st.floats(1e6, 1e9), hit=st.floats(0.0, 0.99))
    @settings(max_examples=40, deadline=None)
    def test_l2_hits_never_hurt(self, launch, bytes_, hit):
        cold = time_kernel(TITAN_BLACK, launch, 0.0, 0.5, profile_of(bytes_)).time_ms
        warm = time_kernel(
            TITAN_BLACK, launch, 0.0, 0.5, profile_of(bytes_, hit=hit)
        ).time_ms
        assert warm <= cold + 1e-12

    @given(launch=launches, eff=st.floats(0.05, 1.0), scale=st.floats(1.1, 5.0))
    @settings(max_examples=40, deadline=None)
    def test_higher_efficiency_never_slower(self, launch, eff, scale):
        prof = profile_of(1e6)
        low = time_kernel(TITAN_BLACK, launch, 1e11, eff / scale, prof).time_ms
        high = time_kernel(TITAN_BLACK, launch, 1e11, eff, prof).time_ms
        assert high <= low


class TestBounds:
    @given(launch=launches, flops=st.floats(1e6, 1e13), bytes_=st.floats(1e5, 1e10))
    @settings(max_examples=50, deadline=None)
    def test_never_beats_the_roofline(self, launch, flops, bytes_):
        stats = time_kernel(TITAN_BLACK, launch, flops, 1.0, profile_of(bytes_))
        point = roofline_point(TITAN_BLACK, stats)
        assert stats.achieved_gflops <= point.roof_gflops * 1.001
        assert stats.achieved_gflops <= TITAN_BLACK.peak_gflops

    @given(launch=launches, bytes_=st.floats(1e5, 1e10))
    @settings(max_examples=40, deadline=None)
    def test_bandwidth_never_exceeds_effective(self, launch, bytes_):
        stats = time_kernel(TITAN_BLACK, launch, 0.0, 0.5, profile_of(bytes_))
        assert stats.achieved_bandwidth_gbs <= TITAN_BLACK.mem_bandwidth_gbs * 1.001

    @given(launch=launches)
    @settings(max_examples=40, deadline=None)
    def test_time_at_least_launch_overhead(self, launch):
        stats = time_kernel(TITAN_BLACK, launch, 1.0, 1.0, profile_of(32.0))
        assert stats.time_ms >= TITAN_BLACK.launch_overhead_us * 1e-3


class TestOccupancyLaws:
    @given(block=st.sampled_from([32, 64, 128, 256]), regs=st.sampled_from([16, 32, 64]))
    @settings(max_examples=30, deadline=None)
    def test_more_registers_never_raise_occupancy(self, block, regs):
        low = compute_occupancy(
            TITAN_BLACK, LaunchConfig(grid=(512,), block=(block,), regs_per_thread=regs)
        )
        high = compute_occupancy(
            TITAN_BLACK,
            LaunchConfig(grid=(512,), block=(block,), regs_per_thread=2 * regs),
        )
        assert high.active_warps_per_sm <= low.active_warps_per_sm

    @given(
        block=st.sampled_from([64, 128, 256]),
        smem=st.sampled_from([0, 8 * 1024, 24 * 1024, 48 * 1024]),
    )
    @settings(max_examples=30, deadline=None)
    def test_more_shared_memory_never_raises_occupancy(self, block, smem):
        base = compute_occupancy(
            TITAN_BLACK, LaunchConfig(grid=(512,), block=(block,))
        )
        loaded = compute_occupancy(
            TITAN_BLACK,
            LaunchConfig(grid=(512,), block=(block,), smem_per_block=smem),
        )
        assert loaded.active_warps_per_sm <= base.active_warps_per_sm

    @given(launch=launches)
    @settings(max_examples=40, deadline=None)
    def test_occupancy_fraction_bounded(self, launch):
        occ = compute_occupancy(TITAN_BLACK, launch)
        assert 0 < occ.fraction <= 1.0
        assert occ.blocks_per_sm >= 1
