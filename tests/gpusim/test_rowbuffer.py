"""DRAM row-buffer model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim.rowbuffer import (
    DramGeometry,
    analyze_row_locality,
    stream_addresses,
)


class TestGeometry:
    def test_validation(self):
        with pytest.raises(ValueError):
            DramGeometry(channels=0)
        with pytest.raises(ValueError):
            DramGeometry(row_bytes=100, burst_bytes=32)

    def test_mapping_is_deterministic_and_bounded(self):
        g = DramGeometry()
        addr = np.arange(0, 1 << 20, 32, dtype=np.int64)
        bank, row = g.map_address(addr)
        assert bank.min() >= 0
        assert bank.max() < g.channels * g.banks_per_channel
        assert (row >= 0).all()

    def test_consecutive_bursts_interleave_channels(self):
        g = DramGeometry(channels=4)
        addr = np.arange(0, 4 * 32, 32, dtype=np.int64)
        bank, _ = g.map_address(addr)
        assert len(set(bank.tolist())) == 4


class TestRowLocality:
    def test_sequential_stream_mostly_hits(self):
        stats = analyze_row_locality(stream_addresses(1 << 20))
        assert stats.hit_rate > 0.9
        g = DramGeometry()
        assert stats.bandwidth_fraction(g) > 0.8

    def test_random_stream_mostly_misses(self):
        rng = np.random.default_rng(0)
        addr = rng.integers(0, 1 << 28, size=20_000) // 32 * 32
        stats = analyze_row_locality(addr)
        assert stats.hit_rate < 0.15
        assert stats.bandwidth_fraction(DramGeometry()) < 0.35

    def test_large_stride_breaks_locality(self):
        seq = analyze_row_locality(stream_addresses(1 << 20))
        strided = analyze_row_locality(
            np.arange(0, 1 << 26, 64 * 1024, dtype=np.int64)
        )
        assert strided.hit_rate < seq.hit_rate

    def test_empty_stream(self):
        stats = analyze_row_locality(np.empty(0, dtype=np.int64))
        assert stats.accesses == 0
        assert stats.bandwidth_fraction(DramGeometry()) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            analyze_row_locality(np.array([-32]))

    @given(seed=st.integers(0, 100), n=st.integers(10, 2000))
    @settings(max_examples=20, deadline=None)
    def test_hits_bounded_by_accesses(self, seed, n):
        rng = np.random.default_rng(seed)
        addr = rng.integers(0, 1 << 24, size=n) // 32 * 32
        stats = analyze_row_locality(addr)
        assert 0 <= stats.hits < stats.accesses
        assert 0.0 <= stats.hit_rate < 1.0

    def test_transform_write_streams_differ(self):
        """The mechanistic point: the naive transform's scattered stores
        lose row locality; the tiled transform's coalesced stores keep it."""
        from repro.tensors import CHWN, NCHW, TensorDesc, relayout_linear_indices

        desc = TensorDesc(64, 8, 14, 14, CHWN)
        ids = np.arange(desc.size, dtype=np.int64)
        naive_store_order = relayout_linear_indices(desc, NCHW, ids) * 4
        tiled_store_order = np.sort(naive_store_order)  # tile pass ~ sequential
        naive = analyze_row_locality(naive_store_order // 32 * 32)
        tiled = analyze_row_locality(tiled_store_order // 32 * 32)
        assert naive.hit_rate < tiled.hit_rate
