"""Simulation engine: sequencing, OOM checks, memoization."""

import pytest

from repro.gpusim import (
    ComposedKernel,
    GpuOutOfMemoryError,
    KernelModel,
    LaunchConfig,
    MemoryProfile,
    SimulationEngine,
    simulate,
)


class ToyKernel(KernelModel):
    """Minimal concrete kernel for engine tests."""

    def __init__(self, name="toy", flops=1e9, bytes_=1e8, workspace=0.0):
        self.name = name
        self._flops = flops
        self._bytes = bytes_
        self._workspace = workspace

    def launch_config(self, device):
        return LaunchConfig(grid=(1024, 1, 1), block=(256, 1, 1))

    def flop_count(self):
        return self._flops

    def memory_profile(self, device):
        return MemoryProfile.coalesced(self._bytes, self._bytes)

    def workspace_bytes(self):
        return self._workspace


class TestRun:
    def test_simulate_convenience(self, device):
        stats = simulate(device, ToyKernel())
        assert stats.time_ms > 0
        assert stats.device == device.name

    def test_memoization_returns_same_stats(self, device):
        engine = SimulationEngine(device)
        k = ToyKernel()
        assert engine.run(k) is engine.run(k)

    def test_distinct_kernels_not_conflated(self, device):
        """Regression: id() reuse after GC must not poison the cache."""
        engine = SimulationEngine(device)
        times = set()
        for flops in (1e9, 1e11, 1e12):
            times.add(round(engine.run(ToyKernel(flops=flops)).time_ms, 9))
        assert len(times) == 3


class TestOom:
    def test_oversized_workspace_raises(self, device):
        engine = SimulationEngine(device)
        with pytest.raises(GpuOutOfMemoryError) as err:
            engine.run(ToyKernel(workspace=7 * 2**30))
        assert err.value.required_bytes == 7 * 2**30

    def test_resident_tensors_count_against_capacity(self, device):
        engine = SimulationEngine(device, tensor_bytes_resident=5 * 2**30)
        with pytest.raises(GpuOutOfMemoryError):
            engine.run(ToyKernel(workspace=2 * 2**30))

    def test_check_can_be_disabled(self, device):
        engine = SimulationEngine(device, check_memory=False)
        stats = engine.run(ToyKernel(workspace=7 * 2**30))
        assert stats.time_ms > 0


class TestSequences:
    def test_sequence_time_is_additive(self, device):
        engine = SimulationEngine(device)
        kernels = [ToyKernel(name=f"k{i}") for i in range(3)]
        seq = engine.run_sequence(kernels, name="pipeline")
        assert seq.time_ms == pytest.approx(
            sum(engine.run(k).time_ms for k in kernels)
        )
        assert seq.flops == pytest.approx(3e9)

    def test_composed_kernel_collapses(self, device):
        engine = SimulationEngine(device)
        composed = ComposedKernel(
            kernels=[ToyKernel(name="a"), ToyKernel(name="b")], name="ab"
        )
        stats = engine.run(composed)
        assert stats.name == "ab"
        assert stats.n_launches == 2
        assert stats.time_ms == pytest.approx(2 * engine.run(ToyKernel()).time_ms)

    def test_composed_requires_kernels(self):
        with pytest.raises(ValueError):
            ComposedKernel(kernels=[])

    def test_sequence_bandwidth_properties(self, device):
        engine = SimulationEngine(device)
        seq = engine.run_sequence([ToyKernel()])
        assert seq.achieved_bandwidth_gbs > 0
        assert seq.effective_bandwidth_gbs > 0
        assert seq.achieved_gflops > 0
