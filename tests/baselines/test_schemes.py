"""Whole-network schemes: the Fig. 14 harness behaviours."""

import pytest

from repro.baselines import SCHEMES, compare_schemes, time_network
from repro.framework import Net
from repro.networks import build_network


@pytest.fixture(scope="module")
def nets():
    return {name: Net(build_network(name)) for name in ("lenet", "cifar", "alexnet")}


@pytest.fixture(scope="module")
def lenet_results(nets):
    from repro.gpusim import TITAN_BLACK

    return compare_schemes(nets["lenet"], TITAN_BLACK)


class TestSchemeMechanics:
    def test_all_schemes_run(self, lenet_results):
        assert set(lenet_results) == set(SCHEMES)
        for timing in lenet_results.values():
            assert timing.total_ms > 0
            assert len(timing.layers) == 7

    def test_unknown_scheme(self, nets, device):
        with pytest.raises(ValueError):
            time_network(nets["lenet"], device, "tensorrt")

    def test_layer_lookup(self, lenet_results):
        timing = lenet_results["opt"]
        assert timing.layer("conv1").kind == "conv"
        with pytest.raises(KeyError):
            timing.layer("nope")

    def test_speedup_over(self, lenet_results):
        opt, mm = lenet_results["opt"], lenet_results["cudnn-mm"]
        assert opt.speedup_over(mm) == pytest.approx(mm.total_ms / opt.total_ms)

    def test_layout_conventions(self, lenet_results):
        assert all(
            l.layout == "CHWN"
            for l in lenet_results["cuda-convnet"].layers
            if l.kind in ("conv", "pool")
        )
        assert all(
            l.layout == "NCHW"
            for l in lenet_results["caffe"].layers
            if l.kind in ("conv", "pool")
        )

    def test_fft_scheme_falls_back_on_strided_convs(self, device):
        net = Net(build_network("zfnet"))
        timing = time_network(net, device, "cudnn-fft")
        conv1 = timing.layer("conv1")  # stride 2: FFT unsupported
        assert conv1.implementation == "im2col"
        conv3 = timing.layer("conv3")  # stride 1: FFT available
        assert conv3.implementation == "fft"


class TestPaperFig14:
    def test_opt_is_best_on_every_network(self, device):
        """Fig. 14: 'our optimized framework can achieve the highest
        performance for all these networks'."""
        for name in ("lenet", "cifar", "alexnet", "zfnet", "vgg"):
            net = Net(build_network(name))
            results = compare_schemes(net, device)
            opt = results["opt"].total_ms
            for scheme, timing in results.items():
                assert opt <= timing.total_ms * 1.001, f"{name}: opt slower than {scheme}"

    def test_cudnn_best_cherry_picks(self, lenet_results):
        assert (
            lenet_results["cudnn-best"].total_ms
            <= min(
                lenet_results["cudnn-mm"].total_ms,
                lenet_results["cudnn-fft"].total_ms,
                lenet_results["cudnn-fft-t"].total_ms,
            )
            * 1.001
        )

    def test_small_networks_favor_convnet_over_cudnn(self, lenet_results):
        """Fig. 14: 'for LeNet and Cifar, the performance of cuDNN is much
        worse than cuda-convnet'."""
        assert (
            lenet_results["cuda-convnet"].total_ms
            < lenet_results["cudnn-best"].total_ms
        )

    def test_big_networks_favor_cudnn_over_convnet(self, device):
        """Fig. 14: 'cuda-convnet is significantly under-performed compared
        to cuDNN for ... ZFNet and VGG'."""
        for name in ("zfnet", "vgg"):
            net = Net(build_network(name))
            results = compare_schemes(net, device, ("cuda-convnet", "cudnn-best"))
            assert (
                results["cudnn-best"].total_ms < results["cuda-convnet"].total_ms
            ), name

    def test_lenet_opt_speedup_magnitude(self, lenet_results):
        """Paper: LeNet Opt = 5.61x over cuDNN-MM (we accept 2.5x-8x)."""
        ratio = lenet_results["opt"].speedup_over(lenet_results["cudnn-mm"])
        assert 2.5 < ratio < 8

    def test_alexnet_opt_speedup_magnitude(self, nets, device):
        """Paper: AlexNet Opt = 2.02x over cuDNN-MM (we accept 1.4x-3x)."""
        results = compare_schemes(nets["alexnet"], device, ("cudnn-mm", "opt"))
        ratio = results["opt"].speedup_over(results["cudnn-mm"])
        assert 1.4 < ratio < 3.0

    def test_opt_transforms_only_on_mixed_plans(self, nets, device):
        lenet_opt = time_network(nets["lenet"], device, "opt")
        assert sum(l.transform_ms for l in lenet_opt.layers) == 0.0
        alex_opt = time_network(nets["alexnet"], device, "opt")
        assert sum(l.transform_ms for l in alex_opt.layers) > 0.0


class TestTitanXTrends:
    def test_opt_still_best_on_maxwell(self, titan_x):
        """Section VI.C: 'our test on the NVIDIA Titan X shows the very
        similar trends'."""
        for name in ("lenet", "vgg"):
            net = Net(build_network(name))
            results = compare_schemes(net, titan_x)
            opt = results["opt"].total_ms
            for scheme, timing in results.items():
                assert opt <= timing.total_ms * 1.001, f"{name}/{scheme}"
