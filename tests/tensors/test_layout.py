"""DataLayout permutations, strides, and index arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensors import ALL_LAYOUTS, CHWN, NCHW, NHWC, DataLayout, parse_layout

layouts = st.sampled_from(ALL_LAYOUTS)
dims = st.tuples(
    st.integers(1, 6), st.integers(1, 6), st.integers(1, 6), st.integers(1, 6)
)


class TestBasics:
    def test_there_are_24_layouts(self):
        assert len(ALL_LAYOUTS) == 24
        assert len(set(ALL_LAYOUTS)) == 24

    def test_invalid_orders_rejected(self):
        for bad in ("NCH", "NCHWW", "NCXW", "nchw "):
            with pytest.raises(ValueError):
                DataLayout(bad)

    def test_parse(self):
        assert parse_layout("nchw") == NCHW
        assert parse_layout(" chwn ") == CHWN

    def test_lowest_dimension(self):
        assert NCHW.lowest == "W"
        assert CHWN.lowest == "N"

    def test_axis_position(self):
        assert NCHW.axis_position("N") == 0
        assert CHWN.axis_position("N") == 3
        with pytest.raises(ValueError):
            NCHW.axis_position("Z")


class TestStrides:
    def test_nchw_strides_match_paper_description(self):
        """'the consecutive elements along the C dimension have a stride of
        H*W' — Section II.A."""
        s = NCHW.strides_of(2, 3, 5, 7, itemsize=4)
        assert s["W"] == 4
        assert s["H"] == 7 * 4
        assert s["C"] == 5 * 7 * 4
        assert s["N"] == 3 * 5 * 7 * 4

    def test_chwn_strides(self):
        s = CHWN.strides_of(2, 3, 5, 7, itemsize=4)
        assert s["N"] == 4
        assert s["W"] == 2 * 4
        assert s["H"] == 7 * 2 * 4
        assert s["C"] == 5 * 7 * 2 * 4

    @given(layout=layouts, d=dims)
    @settings(max_examples=50, deadline=None)
    def test_lowest_axis_has_unit_stride(self, layout, d):
        strides = layout.strides_of(*d, itemsize=4)
        assert strides[layout.lowest] == 4


class TestPermutations:
    def test_permutation_roundtrip_numpy(self):
        rng = np.random.default_rng(0)
        logical = rng.standard_normal((2, 3, 4, 5)).astype(np.float32)
        physical = logical.transpose(CHWN.permutation_from(NCHW))
        assert physical.shape == (3, 4, 5, 2)
        back = physical.transpose(NCHW.permutation_from(CHWN))
        assert (back == logical).all()

    @given(src=layouts, dst=layouts, d=dims)
    @settings(max_examples=60, deadline=None)
    def test_permutation_composes(self, src, dst, d):
        shape_src = src.shape_of(*d)
        arr = np.arange(np.prod(shape_src)).reshape(shape_src)
        via_dst = arr.transpose(dst.permutation_from(src))
        assert via_dst.shape == dst.shape_of(*d)


class TestLinearIndex:
    @given(layout=layouts, d=dims)
    @settings(max_examples=40, deadline=None)
    def test_linear_index_matches_numpy_ravel(self, layout, d):
        n, c, h, w = (max(1, x - 1) for x in d)
        idx = layout.linear_index(n - 1, c - 1, h - 1, w - 1, d)
        shape = layout.shape_of(*d)
        coord = {"N": n - 1, "C": c - 1, "H": h - 1, "W": w - 1}
        multi = tuple(coord[a] for a in layout.order)
        assert idx == np.ravel_multi_index(multi, shape)

    def test_corner_cases(self):
        dims4 = (2, 3, 4, 5)
        assert NCHW.linear_index(0, 0, 0, 0, dims4) == 0
        assert NCHW.linear_index(1, 2, 3, 4, dims4) == 2 * 3 * 4 * 5 - 1

    def test_nhwc_is_channel_minor(self):
        assert NHWC.linear_index(0, 1, 0, 0, (1, 4, 2, 2)) == 1
