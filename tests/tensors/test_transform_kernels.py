"""Transformation kernel models: the Fig. 7 / Fig. 11 behaviours."""

import pytest

from repro.gpusim import simulate
from repro.tensors import (
    CHWN,
    NCHW,
    NaiveTransformKernel,
    TensorDesc,
    TiledTransformKernel,
    VectorTransformKernel,
    make_transform_kernel,
    transform_stats,
    transform_time_ms,
)

CV6_DESC = TensorDesc(64, 96, 55, 55, CHWN)


class TestNaive:
    def test_uncoalesced_stores_dominate(self, device):
        stats = transform_stats(device, CV6_DESC, NCHW, "naive")
        # ~1 transaction per element on the store side -> heavy overfetch.
        assert stats.dram_bytes > 5 * 2 * CV6_DESC.nbytes
        assert stats.effective_bandwidth_gbs < 50

    def test_same_layout_rejected(self):
        with pytest.raises(ValueError):
            NaiveTransformKernel(CV6_DESC, CHWN)

    def test_workspace_is_destination_buffer(self):
        k = NaiveTransformKernel(CV6_DESC, NCHW)
        assert k.workspace_bytes() == CV6_DESC.nbytes

    def test_no_flops(self):
        assert NaiveTransformKernel(CV6_DESC, NCHW).flop_count() == 0.0


class TestTiled:
    def test_opt1_is_coalesced(self, device):
        stats = transform_stats(device, CV6_DESC, NCHW, "opt1")
        assert stats.dram_bytes == pytest.approx(2 * CV6_DESC.nbytes, rel=0.05)
        assert stats.effective_bandwidth_gbs > 150

    def test_opt1_beats_naive_by_several_x(self, device):
        """Paper Fig. 11: 'an average of 6.48x speedup' for Opt1."""
        naive = transform_time_ms(device, CV6_DESC, NCHW, "naive")
        opt1 = transform_time_ms(device, CV6_DESC, NCHW, "opt1")
        assert naive / opt1 > 4

    def test_unpadded_tile_pays_bank_conflicts(self, device):
        padded = simulate(device, TiledTransformKernel(CV6_DESC, NCHW, padded=True))
        unpadded = simulate(device, TiledTransformKernel(CV6_DESC, NCHW, padded=False))
        assert unpadded.time_ms > padded.time_ms

    def test_requires_2d_transposable_permutation(self):
        from repro.tensors import DataLayout

        with pytest.raises(ValueError):
            TiledTransformKernel(CV6_DESC, DataLayout("WHCN"))

    def test_edge_tiles_inflate_transactions(self, device):
        ragged = TensorDesc(33, 5, 7, 11, CHWN)  # nothing divides 32
        aligned = TensorDesc(64, 8, 8, 16, CHWN)
        p_ragged = TiledTransformKernel(ragged, NCHW).memory_profile(device)
        p_aligned = TiledTransformKernel(aligned, NCHW).memory_profile(device)
        assert (
            p_ragged.load_transactions / (ragged.nbytes / 32)
            > p_aligned.load_transactions / (aligned.nbytes / 32)
        )


class TestVectorized:
    def test_opt2_reaches_nearly_effective_bandwidth(self, device):
        """Paper: 'achieved 229.5 GB/s, 97.6% of the effective bandwidth'."""
        stats = transform_stats(device, CV6_DESC, NCHW, "opt2")
        assert stats.effective_bandwidth_gbs > 0.90 * device.mem_bandwidth_gbs

    def test_opt2_beats_opt1(self, device):
        opt1 = transform_time_ms(device, CV6_DESC, NCHW, "opt1")
        opt2 = transform_time_ms(device, CV6_DESC, NCHW, "opt2")
        assert opt2 < opt1

    def test_requires_wide_batch(self):
        """Fig. 11: 'Transform-Opt2 is not applicable for CV10, CV11, CV12
        whose N is smaller than 64'."""
        cv10 = TensorDesc(32, 128, 56, 56, CHWN)
        with pytest.raises(ValueError, match="64"):
            VectorTransformKernel(cv10, NCHW)


class TestAutoSelection:
    def test_auto_picks_opt2_for_wide_batch(self):
        k = make_transform_kernel(CV6_DESC, NCHW, "auto")
        assert isinstance(k, VectorTransformKernel)

    def test_auto_falls_back_to_opt1_for_narrow_batch(self):
        cv10 = TensorDesc(32, 128, 56, 56, CHWN)
        k = make_transform_kernel(cv10, NCHW, "auto")
        assert isinstance(k, TiledTransformKernel)

    def test_auto_falls_back_to_naive_for_4d_shuffle(self):
        from repro.tensors import DataLayout

        k = make_transform_kernel(CV6_DESC, DataLayout("WHCN"), "auto")
        assert isinstance(k, NaiveTransformKernel)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            make_transform_kernel(CV6_DESC, NCHW, "opt3")

    def test_transform_time_zero_for_identity(self, device):
        assert transform_time_ms(device, CV6_DESC, CHWN) == 0.0
