"""Structural transform analysis: group detection and index relayout."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensors import (
    ALL_LAYOUTS,
    CHWN,
    HWCN,
    NCHW,
    NHWC,
    TensorDesc,
    relayout_linear_indices,
    transform,
    transform_cost,
    transpose_groups,
    make_input,
)

layouts = st.sampled_from(ALL_LAYOUTS)


class TestTransposeGroups:
    def test_chwn_to_nchw_is_the_paper_flattening(self):
        """'we combine these three dimensions into a single dimension as CHW
        ... NCHW becomes [N][CxHxW], and CHWN becomes [CxHxW][N]'."""
        g = transpose_groups(CHWN, NCHW, (64, 96, 55, 55))
        assert g is not None
        assert g.batch == 1
        assert g.rows == 96 * 55 * 55
        assert g.cols == 64

    def test_nchw_to_chwn_symmetric(self):
        g = transpose_groups(NCHW, CHWN, (64, 96, 55, 55))
        assert g is not None
        assert (g.rows, g.cols) == (64, 96 * 55 * 55)

    def test_nchw_to_nhwc_is_batched(self):
        g = transpose_groups(NCHW, NHWC, (8, 3, 5, 5))
        assert g is not None
        assert g.batch == 8
        assert {g.rows, g.cols} == {3, 25}

    def test_identity_is_none(self):
        assert transpose_groups(NCHW, NCHW, (2, 3, 4, 5)) is None

    def test_genuine_4d_shuffle_is_none(self):
        # NCHW -> NWCH: H and W change relative order within the moved part
        # in a way that no 2-group swap captures.
        from repro.tensors import DataLayout

        assert transpose_groups(NCHW, DataLayout("WHCN"), (2, 3, 4, 5)) is None

    def test_chwn_hwcn_equivalence_case(self):
        # CHWN -> HWCN moves C inside; detectable as batched? C|HW|..:
        g = transpose_groups(CHWN, HWCN, (2, 3, 4, 5))
        # [C][HW][N]? HWCN = HW + C + N — swap of (C)(HW) with batch tail N?
        # Our splitter only handles prefix batches, so this is None.
        assert g is None


class TestRelayoutIndices:
    @given(src=layouts, dst=layouts)
    @settings(max_examples=40, deadline=None)
    def test_matches_numpy_transpose(self, src, dst):
        dims = (2, 3, 4, 5)
        desc = TensorDesc(*dims, layout=src)
        size = desc.size
        ids = np.arange(size)
        mapped = relayout_linear_indices(desc, dst, ids)
        # Build the same mapping with numpy: value v at src flat position i
        # must land at dst flat position mapped[i].
        src_arr = np.arange(size).reshape(desc.physical_shape)
        dst_arr = src_arr.transpose(dst.permutation_from(src))
        expected = np.empty(size, dtype=np.int64)
        expected[src_arr.ravel()] = np.arange(size)  # identity; src flat = value
        flat_dst = dst_arr.ravel()
        # position j in dst holds value flat_dst[j]; so value v sits at
        # argsort; invert:
        inverse = np.empty(size, dtype=np.int64)
        inverse[flat_dst] = np.arange(size)
        assert np.array_equal(mapped, inverse[ids])

    def test_preserves_shape(self):
        desc = TensorDesc(2, 2, 2, 2, NCHW)
        ids = np.arange(16).reshape(4, 4)
        assert relayout_linear_indices(desc, CHWN, ids).shape == (4, 4)


class TestNumericTransform:
    @given(dst=layouts)
    @settings(max_examples=24, deadline=None)
    def test_transform_function(self, dst):
        t = make_input(2, 3, 4, 5, layout=NCHW, seed=11)
        assert np.array_equal(transform(t, dst).as_nchw(), t.as_nchw())


class TestTransformCost:
    def test_identity_is_free(self):
        d = TensorDesc(2, 3, 4, 5, NCHW)
        c = transform_cost(d, NCHW)
        assert c.bytes_moved == 0
        assert c.workspace_bytes == 0

    def test_real_transform_moves_twice_the_bytes(self):
        d = TensorDesc(2, 3, 4, 5, NCHW)
        c = transform_cost(d, CHWN)
        assert c.bytes_moved == 2 * d.nbytes
        assert c.workspace_bytes == d.nbytes

    def test_alexnet_workspace_overhead_is_small(self):
        """Paper: 'the additional memory space overhead is only 73.5MB ...
        less than 3% compared to the memory footprint of around 3GB'."""
        # The largest transformed tensor in AlexNet's plan: conv2 output.
        d = TensorDesc(128, 256, 27, 27, NCHW)
        c = transform_cost(d, CHWN)
        assert c.workspace_bytes / (3 * 2**30) < 0.04
