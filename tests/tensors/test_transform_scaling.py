"""Scaling laws of the transformation kernel models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import TITAN_BLACK, simulate
from repro.tensors import (
    CHWN,
    NCHW,
    TensorDesc,
    TiledTransformKernel,
    VectorTransformKernel,
    transform_time_ms,
)

aligned_dims = st.tuples(
    st.sampled_from([64, 128]),
    st.sampled_from([16, 32, 64]),
    st.sampled_from([8, 16, 32]),
    st.sampled_from([8, 16, 32]),
)


class TestScalingLaws:
    @given(dims=aligned_dims)
    @settings(max_examples=20, deadline=None)
    def test_traffic_is_linear_in_tensor_size(self, dims):
        """For tile-aligned shapes, doubling the batch doubles the moved
        bytes and transactions exactly."""
        n, c, h, w = dims
        small = TiledTransformKernel(TensorDesc(n, c, h, w, CHWN), NCHW)
        big = TiledTransformKernel(TensorDesc(2 * n, c, h, w, CHWN), NCHW)
        p_small = small.memory_profile(TITAN_BLACK)
        p_big = big.memory_profile(TITAN_BLACK)
        assert p_big.load_bytes == pytest.approx(2 * p_small.load_bytes)
        assert p_big.load_transactions == pytest.approx(
            2 * p_small.load_transactions
        )

    @given(dims=aligned_dims)
    @settings(max_examples=15, deadline=None)
    def test_large_tensors_amortize_launch_overhead(self, dims):
        """Effective bandwidth is non-decreasing in tensor size (the launch
        overhead amortizes; nothing else degrades)."""
        n, c, h, w = dims
        bw = []
        for scale in (1, 4):
            desc = TensorDesc(n, c * scale, h, w, CHWN)
            stats = simulate(TITAN_BLACK, TiledTransformKernel(desc, NCHW))
            bw.append(2 * desc.nbytes / (stats.time_ms * 1e6))
        assert bw[1] >= bw[0] * 0.99

    @given(dims=aligned_dims)
    @settings(max_examples=15, deadline=None)
    def test_vectorized_never_slower_on_aligned_shapes(self, dims):
        n, c, h, w = dims
        desc = TensorDesc(n, c, h, w, CHWN)
        t1 = simulate(TITAN_BLACK, TiledTransformKernel(desc, NCHW)).time_ms
        t2 = simulate(TITAN_BLACK, VectorTransformKernel(desc, NCHW)).time_ms
        assert t2 <= t1 * 1.001

    @given(dims=aligned_dims)
    @settings(max_examples=15, deadline=None)
    def test_round_trip_costs_twice_one_way(self, dims):
        """CHWN -> NCHW -> CHWN costs two transforms of the same tensor."""
        n, c, h, w = dims
        there = transform_time_ms(
            TITAN_BLACK, TensorDesc(n, c, h, w, CHWN), NCHW
        )
        back = transform_time_ms(
            TITAN_BLACK, TensorDesc(n, c, h, w, NCHW), CHWN
        )
        assert back == pytest.approx(there, rel=0.25)
