"""Tensor4D storage, conversion, and address computation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensors import ALL_LAYOUTS, CHWN, NCHW, Tensor4D, TensorDesc, make_input

layouts = st.sampled_from(ALL_LAYOUTS)


class TestTensorDesc:
    def test_properties(self):
        d = TensorDesc(2, 3, 4, 5, NCHW)
        assert d.dims == (2, 3, 4, 5)
        assert d.size == 120
        assert d.nbytes == 480
        assert d.physical_shape == (2, 3, 4, 5)

    def test_chwn_physical_shape(self):
        d = TensorDesc(2, 3, 4, 5, CHWN)
        assert d.physical_shape == (3, 4, 5, 2)

    def test_positive_dims_required(self):
        with pytest.raises(ValueError):
            TensorDesc(0, 3, 4, 5)

    def test_stride_bytes(self):
        d = TensorDesc(2, 3, 4, 5, NCHW)
        assert d.stride_bytes("W") == 4
        assert d.stride_bytes("C") == 80

    def test_address_of(self):
        d = TensorDesc(2, 3, 4, 5, NCHW)
        assert d.address_of(0, 0, 0, 1) == 4
        assert d.address_of(1, 0, 0, 0, base=100) == 100 + 60 * 4

    def test_with_layout(self):
        d = TensorDesc(2, 3, 4, 5, NCHW).with_layout(CHWN)
        assert d.layout == CHWN
        assert d.dims == (2, 3, 4, 5)


class TestTensor4D:
    def test_from_nchw_roundtrip(self):
        rng = np.random.default_rng(1)
        logical = rng.standard_normal((2, 3, 4, 5)).astype(np.float32)
        t = Tensor4D.from_nchw(logical, CHWN)
        assert t.data.shape == (3, 4, 5, 2)
        assert (t.as_nchw() == logical).all()

    def test_to_layout_is_identity_for_same(self):
        t = make_input(2, 3, 4, 5, layout=NCHW)
        assert t.to_layout(NCHW) is t

    @given(src=layouts, dst=layouts)
    @settings(max_examples=60, deadline=None)
    def test_relayout_preserves_logical_values(self, src, dst):
        t = make_input(2, 3, 4, 5, layout=src, seed=7)
        moved = t.to_layout(dst)
        assert moved.layout == dst
        assert np.array_equal(moved.as_nchw(), t.as_nchw())
        # Physically contiguous in the new layout
        assert moved.data.flags["C_CONTIGUOUS"]

    def test_allclose_across_layouts(self):
        a = make_input(2, 3, 4, 5, layout=NCHW, seed=3)
        b = a.to_layout(CHWN)
        assert a.allclose(b)

    def test_allclose_detects_difference(self):
        a = make_input(2, 3, 4, 5, seed=3)
        b = make_input(2, 3, 4, 5, seed=4)
        assert not a.allclose(b)

    def test_shape_mismatch_rejected(self):
        desc = TensorDesc(2, 3, 4, 5, NCHW)
        with pytest.raises(ValueError):
            Tensor4D(np.zeros((3, 4, 5, 2), dtype=np.float32), desc)

    def test_from_nchw_requires_4d(self):
        with pytest.raises(ValueError):
            Tensor4D.from_nchw(np.zeros((2, 3, 4), dtype=np.float32))

    def test_zeros_and_random(self):
        desc = TensorDesc(2, 3, 4, 5, CHWN)
        z = Tensor4D.zeros(desc)
        assert not z.data.any()
        r1 = Tensor4D.random(desc, seed=9)
        r2 = Tensor4D.random(desc, seed=9)
        assert np.array_equal(r1.data, r2.data)

    def test_data_is_float32(self):
        assert make_input(1, 1, 2, 2).data.dtype == np.float32
