"""The paper's Fig. 7 kernels, executed and checked for correctness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensors import CHWN, NCHW, Tensor4D, make_input
from repro.tensors.transform_emulation import (
    naive_transform_emulated,
    tiled_transform_emulated,
)


def reference(tensor: Tensor4D) -> np.ndarray:
    return tensor.to_layout(NCHW).data


small_dims = st.tuples(
    st.sampled_from([2, 4, 32, 64]),  # N
    st.integers(1, 5),  # C
    st.integers(1, 6),  # H
    st.integers(1, 6),  # W
)


class TestNaiveKernel:
    @given(dims=small_dims, seed=st.integers(0, 50))
    @settings(max_examples=30, deadline=None)
    def test_fig7a_index_math_is_correct(self, dims, seed):
        t = make_input(*dims, layout=CHWN, seed=seed)
        out = naive_transform_emulated(t)
        assert out.layout == NCHW
        np.testing.assert_array_equal(out.data, reference(t))

    def test_rejects_other_directions(self):
        t = make_input(4, 2, 3, 3, layout=NCHW)
        with pytest.raises(ValueError, match="CHWN"):
            naive_transform_emulated(t)


class TestTiledKernel:
    @given(dims=small_dims, seed=st.integers(0, 50))
    @settings(max_examples=30, deadline=None)
    def test_fig7b_tiling_is_correct(self, dims, seed):
        t = make_input(*dims, layout=CHWN, seed=seed)
        out = tiled_transform_emulated(t)
        np.testing.assert_array_equal(out.data, reference(t))

    def test_ragged_tile_edges(self):
        # rows = 3*5*7 = 105 and cols = 33: neither divides 32.
        t = make_input(33, 3, 5, 7, layout=CHWN, seed=9)
        out = tiled_transform_emulated(t)
        np.testing.assert_array_equal(out.data, reference(t))

    @given(
        n=st.sampled_from([64, 128, 192]),
        c=st.integers(1, 4),
        h=st.integers(1, 5),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=20, deadline=None)
    def test_vectorized_variant_is_correct(self, n, c, h, seed):
        t = make_input(n, c, h, h, layout=CHWN, seed=seed)
        out = tiled_transform_emulated(t, vectorized=True)
        np.testing.assert_array_equal(out.data, reference(t))

    def test_vectorized_requires_multiple_of_64(self):
        t = make_input(32, 2, 3, 3, layout=CHWN)
        with pytest.raises(ValueError, match="64"):
            tiled_transform_emulated(t, vectorized=True)

    def test_all_three_kernels_agree(self):
        t = make_input(64, 3, 5, 5, layout=CHWN, seed=3)
        a = naive_transform_emulated(t).data
        b = tiled_transform_emulated(t).data
        c = tiled_transform_emulated(t, vectorized=True).data
        np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(b, c)
