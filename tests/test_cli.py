"""CLI commands (smoke-level, via main())."""

import pytest

from repro.cli import main, make_parser


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            make_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "GTX Titan Black" in out
        assert "alexnet" in out

    def test_calibrate(self, capsys):
        assert main(["calibrate", "--device", "titan-x"]) == 0
        out = capsys.readouterr().out
        assert "Ct=128" in out and "Nt=64" in out

    def test_plan(self, capsys):
        assert main(["plan", "--network", "lenet"]) == 0
        out = capsys.readouterr().out
        assert "conv1" in out and "transforms:" in out

    def test_plan_heuristic_strategy(self, capsys):
        assert main(["plan", "--network", "cifar", "--strategy", "heuristic"]) == 0
        assert "heuristic" in capsys.readouterr().out

    def test_plan_json_format(self, capsys):
        import json

        assert main(["plan", "--network", "lenet", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["network"] == "lenet"
        assert payload["steps"][0]["name"] == "conv1"
        assert [p["name"] for p in payload["passes"]][:2] == [
            "ResolveShapes",
            "AssignLayouts",
        ]
        assert "nodes" in payload["graph"]

    def test_plan_explain_prints_pass_table(self, capsys):
        assert main(["plan", "--network", "cifar", "--explain"]) == 0
        out = capsys.readouterr().out
        assert "EliminateRedundantTransforms" in out
        assert "SelectImplementations" in out

    def test_plan_branching_network(self, capsys):
        assert main(["plan", "--network", "inception"]) == 0
        out = capsys.readouterr().out
        assert "concat" in out and "b3b" in out

    def test_bench_network(self, capsys):
        assert main(["bench", "--network", "lenet"]) == 0
        out = capsys.readouterr().out
        assert "opt" in out and "cudnn-mm" in out

    def test_bench_conv_layers(self, capsys):
        assert main(["bench", "--layers", "conv"]) == 0
        out = capsys.readouterr().out
        assert "CV1" in out and "FAIL" in out  # CV5/CV6 FFT failures visible

    def test_bench_softmax_layers(self, capsys):
        assert main(["bench", "--layers", "softmax"]) == 0
        assert "128/10000" in capsys.readouterr().out

    def test_transform(self, capsys):
        assert main(["transform", "--n", "64", "--c", "32", "--hw", "14"]) == 0
        out = capsys.readouterr().out
        assert "naive" in out and "opt2" in out

    def test_transform_small_batch_skips_opt2(self, capsys):
        assert main(["transform", "--n", "32", "--c", "32", "--hw", "14"]) == 0
        assert "n/a" in capsys.readouterr().out

    def test_inspect_conv_layer(self, capsys):
        assert main(["inspect", "--layer", "cv7"]) == 0
        out = capsys.readouterr().out
        assert "direct" in out and "fft" in out and "bound" in out

    def test_inspect_conv_layer_verbose(self, capsys):
        assert main(["inspect", "--layer", "CV1", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "roofline" in out and "occupancy" in out

    def test_inspect_pool_layer(self, capsys):
        assert main(["inspect", "--layer", "PL5"]) == 0
        out = capsys.readouterr().out
        assert "chwn" in out and "nchw-rowblock" in out

    def test_inspect_shows_fft_failures(self, capsys):
        assert main(["inspect", "--layer", "CV5"]) == 0
        assert "unavailable" in capsys.readouterr().out

    def test_inspect_unknown_layer(self, capsys):
        assert main(["inspect", "--layer", "CV99"]) == 2

    def test_footprint(self, capsys):
        assert main(["footprint", "--network", "alexnet", "--training"]) == 0
        out = capsys.readouterr().out
        assert "fits" in out and "MiB" in out

    def test_footprint_vgg_training_does_not_fit(self, capsys):
        assert main(["footprint", "--network", "vgg", "--training"]) == 0
        assert "fits: False" in capsys.readouterr().out

    def test_sweep(self, capsys):
        assert main(["sweep", "--layer", "CV7", "--dim", "n",
                     "--values", "32,64,128"]) == 0
        out = capsys.readouterr().out
        assert "winner" in out and "crossover" in out

    def test_sweep_unknown_layer(self, capsys):
        assert main(["sweep", "--layer", "PL1"]) == 2

    def test_attribute(self, capsys):
        assert main(["attribute", "--network", "alexnet"]) == 0
        out = capsys.readouterr().out
        assert "layout" in out and "off-chip" in out and "72%" in out

    def test_sweep_with_fft_na(self, capsys):
        assert main(["sweep", "--layer", "CV6", "--dim", "n",
                     "--values", "32,64", "--impls", "im2col,fft"]) == 0
        assert "n/a" in capsys.readouterr().out


class TestSimStats:
    def test_plan_prints_counters(self, capsys):
        assert main(["plan", "--network", "lenet", "--sim-stats"]) == 0
        out = capsys.readouterr().out
        assert "simulation stats:" in out
        assert "kernel queries" in out
        assert "kernels timed" in out

    def test_off_by_default(self, capsys):
        assert main(["plan", "--network", "lenet"]) == 0
        assert "simulation stats:" not in capsys.readouterr().out
