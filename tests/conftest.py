"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.gpusim import TITAN_BLACK, TITAN_X, SimulationEngine
from repro.layers import ConvSpec, PoolSpec, SoftmaxSpec


@pytest.fixture(scope="session")
def device():
    """The paper's primary platform."""
    return TITAN_BLACK


@pytest.fixture(scope="session")
def titan_x():
    return TITAN_X


@pytest.fixture()
def engine(device):
    return SimulationEngine(device)


@pytest.fixture(scope="session")
def small_conv():
    """A small convolution spec for numeric tests."""
    return ConvSpec(n=4, ci=3, h=12, w=12, co=8, fh=3, fw=3, stride=1, pad=1)


@pytest.fixture(scope="session")
def small_pool():
    """A small overlapped pooling spec for numeric tests."""
    return PoolSpec(n=4, c=6, h=13, w=13, window=3, stride=2)


@pytest.fixture(scope="session")
def small_softmax():
    return SoftmaxSpec(n=8, categories=10)
