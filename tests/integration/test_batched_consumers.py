"""Batched evaluation is invisible to its consumers.

Every hot consumer threaded through ``evaluate_models`` — the layer
sweeps, device calibration, the pooling autotuner, and the layout
pipeline's transform pricing — must produce byte-identical results with
batching on and off, serial and with worker fan-out.  These tests pin the
contract the ``bench_planner_perf`` CI gate also enforces end to end.
"""

from __future__ import annotations

import pytest

from repro.analysis.sweeps import sweep_conv, sweep_pool
from repro.core.autotune import autotune_pooling_many
from repro.core.calibration import calibrate
from repro.core.pipeline import PipelineOptions, plan_network
from repro.gpusim import TITAN_BLACK, TITAN_X, default_context
from repro.gpusim.batch import set_batched_eval
from repro.layers.base import PoolSpec
from repro.networks import CONV_LAYERS, build_network


@pytest.fixture(params=[False, True], ids=["scalar", "batched"])
def batching(request):
    prev = set_batched_eval(request.param)
    yield request.param
    set_batched_eval(prev)


def _with_batching(enabled, fn):
    prev = set_batched_eval(enabled)
    try:
        return fn()
    finally:
        set_batched_eval(prev)


POOL_SPECS = [
    PoolSpec(n=64, c=c, h=27, w=27, window=3, stride=2) for c in (16, 64, 128)
]


class TestSweepIdentity:
    @pytest.mark.parametrize("jobs", [1, 4])
    def test_conv_sweep(self, jobs):
        base = CONV_LAYERS["CV3"]
        run = lambda: sweep_conv(  # noqa: E731
            TITAN_BLACK, base, "n", (1, 16, 64, 256), jobs=jobs
        )
        assert _with_batching(False, run) == _with_batching(True, run)

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_pool_sweep(self, jobs):
        run = lambda: sweep_pool(  # noqa: E731
            TITAN_X, POOL_SPECS[0], "c", (8, 32, 96), jobs=jobs
        )
        assert _with_batching(False, run) == _with_batching(True, run)


class TestCalibrationIdentity:
    @pytest.mark.parametrize("jobs", [1, 4])
    def test_calibrate(self, jobs):
        run = lambda: calibrate(TITAN_BLACK, jobs=jobs)  # noqa: E731
        ref, out = _with_batching(False, run), _with_batching(True, run)
        # profiling_ms is summed *simulated* time, so even it must match
        assert ref == out
        assert ref.thresholds == out.thresholds


class TestAutotuneIdentity:
    @pytest.mark.parametrize("jobs", [1, 4])
    def test_pooling_many(self, jobs):
        run = lambda: autotune_pooling_many(  # noqa: E731
            TITAN_BLACK, POOL_SPECS, jobs=jobs
        )
        ref, out = _with_batching(False, run), _with_batching(True, run)
        # full trace equality: same hill-climb visits in the same order
        assert ref == out


class TestPipelineIdentity:
    @pytest.mark.parametrize("network", ["alexnet", "inception"])
    @pytest.mark.parametrize("strategy", ["heuristic", "optimal"])
    def test_plan_identity(self, network, strategy):
        net = build_network(network)
        opts = PipelineOptions(strategy=strategy)

        def run():
            ctx = default_context(TITAN_BLACK)
            return plan_network(TITAN_BLACK, net, opts, context=ctx)

        ref, out = _with_batching(False, run), _with_batching(True, run)
        # the trace carries batch-only stats; the contract is the plan
        assert ref.plan == out.plan
        assert ref.plan.summary() == out.plan.summary()
        assert ref.graph == out.graph


def test_profile_digest_reports_batches(batching, capsys):
    """Smoke for the CLI digest source: with batching on, metrics carry
    batch.eval counters after a consumer runs."""
    from repro.obs.metrics import aggregate_metrics

    sweep_pool(TITAN_BLACK, POOL_SPECS[0], "c", (8, 32), jobs=1)
    metrics = aggregate_metrics()
    batches = metrics.value("batch.eval.batches")
    if batching:
        assert batches
    # scalar mode must not report batched evaluations from this sweep
