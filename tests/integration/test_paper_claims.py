"""End-to-end checks of the paper's headline quantitative claims.

Each test names the figure/table/claim it pins down.  Tolerances are wide —
the substrate is a performance model, not the authors' testbed — but every
*direction* and every crossover must hold (see EXPERIMENTS.md).
"""

from dataclasses import replace


from repro.core import calibrate
from repro.gpusim import SimulationEngine, simulate
from repro.layers import (
    DirectConvCHWN,
    FusedParallelSoftmax,
    Im2colGemmNCHW,
    make_conv_kernel,
)
from repro.networks import CONV_LAYERS, FIG13_SOFTMAX
from repro.tensors import CHWN, NCHW, transform_time_ms


class TestFig4Crossovers:
    def test_4a_batch_crossover_between_64_and_128(self, device):
        """Fig. 4a: cuda-convnet overtakes cuDNN as N grows past 64–128."""
        engine = SimulationEngine(device)
        base = CONV_LAYERS["CV7"]
        winners = {}
        for n in (16, 32, 64, 128, 256, 512):
            spec = replace(base, n=n)
            t_c = engine.run(DirectConvCHWN(spec)).time_ms
            t_m = engine.run(Im2colGemmNCHW(spec)).time_ms
            winners[n] = "CHWN" if t_c < t_m else "NCHW"
        assert winners[32] == "NCHW" and winners[64] == "NCHW"
        assert winners[128] == "CHWN" and winners[512] == "CHWN"

    def test_4b_channel_crossover_near_32(self, device):
        """Fig. 4b: 'cuDNN performs better when C is larger than 32'."""
        engine = SimulationEngine(device)
        base = CONV_LAYERS["CV7"]
        for c, expected in ((16, "CHWN"), (32, "CHWN"), (64, "NCHW"), (256, "NCHW")):
            spec = replace(base, ci=c)
            t_c = engine.run(DirectConvCHWN(spec)).time_ms
            t_m = engine.run(Im2colGemmNCHW(spec)).time_ms
            winner = "CHWN" if t_c < t_m else "NCHW"
            assert winner == expected, f"C={c}"

    def test_chwn_gflops_scale_with_n(self, device):
        """Fig. 4a: the CHWN curve rises steeply with batch, the NCHW curve
        is nearly flat."""
        engine = SimulationEngine(device)
        base = CONV_LAYERS["CV7"]
        chwn_16 = engine.run(DirectConvCHWN(replace(base, n=16))).achieved_gflops
        chwn_128 = engine.run(DirectConvCHWN(replace(base, n=128))).achieved_gflops
        nchw_16 = engine.run(Im2colGemmNCHW(replace(base, n=16))).achieved_gflops
        nchw_128 = engine.run(Im2colGemmNCHW(replace(base, n=128))).achieved_gflops
        assert chwn_128 / chwn_16 > 4
        assert nchw_128 / nchw_16 < 1.5


class TestFig10LayoutSpeedups:
    def test_average_preferred_layout_speedup(self, device):
        """Fig. 10: 'on average, 2.48x speedup is achieved with the
        preferred data layout compared to the alternative one'."""
        engine = SimulationEngine(device)
        ratios = []
        for spec in CONV_LAYERS.values():
            t_c = engine.run(DirectConvCHWN(spec)).time_ms
            t_m = engine.run(Im2colGemmNCHW(spec)).time_ms
            ratios.append(max(t_c, t_m) / min(t_c, t_m))
        geomean = 1.0
        for r in ratios:
            geomean *= r
        geomean **= 1 / len(ratios)
        assert 1.8 < geomean < 4.5

    def test_optimized_transform_preserves_most_of_the_benefit(self, device):
        """Fig. 10, CV1: the naive transform erases the layout win, the
        optimized transform keeps most of it."""
        engine = SimulationEngine(device)
        spec = CONV_LAYERS["CV1"]
        t_chwn = engine.run(DirectConvCHWN(spec)).time_ms
        t_nchw = engine.run(Im2colGemmNCHW(spec)).time_ms
        desc = spec.in_desc(NCHW)
        naive = transform_time_ms(device, desc, CHWN, "naive")
        fast = transform_time_ms(device, desc, CHWN, "auto")
        assert t_nchw / (t_chwn + naive) < t_nchw / t_chwn * 0.75
        assert t_nchw / (t_chwn + fast) > 0.8 * (t_nchw / t_chwn)


class TestFig11Transform:
    def test_opt2_on_cv6_approaches_peak(self, device):
        """'The optimized bandwidth for CONV6 has achieved 229.5 GB/s,
        97.6% of the effective GPU memory bandwidth.'"""
        desc = CONV_LAYERS["CV6"].in_desc(CHWN)
        from repro.tensors import transform_stats

        stats = transform_stats(device, desc, NCHW, "opt2")
        assert stats.effective_bandwidth_gbs > 0.9 * device.mem_bandwidth_gbs

    def test_speedup_ladder_naive_opt1_opt2(self, device):
        """Fig. 11: Opt1 ~6.5x over naive on average, Opt2 adds more."""
        specs = [s for s in CONV_LAYERS.values() if s.n >= 64]
        opt1_gains, opt2_gains = [], []
        for spec in specs:
            desc = spec.in_desc(CHWN)
            naive = transform_time_ms(device, desc, NCHW, "naive")
            opt1 = transform_time_ms(device, desc, NCHW, "opt1")
            opt2 = transform_time_ms(device, desc, NCHW, "opt2")
            opt1_gains.append(naive / opt1)
            opt2_gains.append(naive / opt2)
        assert 4 < sum(opt1_gains) / len(opt1_gains) < 12
        assert all(g2 >= g1 for g1, g2 in zip(opt1_gains, opt2_gains))


class TestFig13Softmax:
    def test_opt_bandwidth_scaling_with_categories(self, device):
        """Fig. 13: Opt bandwidth grows with category count, reaching ~94%
        of effective bandwidth at 10000 categories."""
        bws = []
        for c in (10, 100, 1000, 10000):
            spec = FIG13_SOFTMAX[f"128/{c}"]
            stats = simulate(device, FusedParallelSoftmax(spec))
            bws.append(2 * spec.nbytes / (stats.time_ms * 1e6))
        assert bws == sorted(bws)
        assert bws[-1] > 0.75 * device.mem_bandwidth_gbs


class TestSectionIVAUtilization:
    def test_alu_utilization_improves_with_suitable_layout(self, device):
        """Section II.A: AlexNet conv2's ALU utilization improves
        substantially with the more suitable layout."""
        from repro.networks import ALEXNET_CONV

        spec = ALEXNET_CONV["ACV2"]
        engine = SimulationEngine(device)
        chwn = engine.run(make_conv_kernel(spec, "direct"))
        nchw = engine.run(make_conv_kernel(spec, "im2col"))
        better = max(chwn.alu_utilization, nchw.alu_utilization)
        worse = min(chwn.alu_utilization, nchw.alu_utilization)
        assert better > worse * 1.1


class TestCalibrationMatchesHeuristics:
    def test_calibrated_thresholds_classify_table1_like_paper(self, device):
        """Calibrated thresholds must reproduce the paper's Table-1 layout
        decisions even if the raw (Ct, Nt) values differ by a grid point."""
        from repro.core import preferred_conv_layout

        thresholds = calibrate(device).thresholds
        expected_chwn = {"CV1", "CV2", "CV3", "CV4", "CV5", "CV9"}
        got = {
            name
            for name, spec in CONV_LAYERS.items()
            if preferred_conv_layout(spec, thresholds) == CHWN
        }
        assert got == expected_chwn
