"""Capstone integration: the complete user journey, one test per stage.

calibrate → plan → annotate/serialize → execute numerically → train →
account memory → time against the baselines.  Each stage consumes the
previous stage's artifact, so a regression anywhere in the stack surfaces
here even if the unit tests around it still pass.
"""

import numpy as np
import pytest

from repro import (
    Net,
    build_network,
    calibrate,
    compare_schemes,
    plan_optimal,
    preferred_conv_layout,
    time_network,
)
from repro.core.planner import NodeKind
from repro.data import synthetic_digits
from repro.framework import (
    annotations_from_plan,
    format_annotated_netdef,
    network_footprint,
    parse_annotated_netdef,
    plan_from_annotations,
    train,
)


@pytest.fixture(scope="module")
def journey(device):
    """Run the whole pipeline once; stages assert against this record."""
    record = {}
    record["thresholds"] = calibrate(device).thresholds
    net = Net(build_network("cifar"))
    record["net"] = net
    record["plan"] = plan_optimal(device, net.planner_nodes(device))
    ann = annotations_from_plan(record["plan"])
    record["serialized"] = format_annotated_netdef(net.definition, ann)
    record["schemes"] = compare_schemes(net, device, ("cudnn-best", "opt"))
    record["footprint"] = network_footprint(net, record["plan"], training=True)
    return record


class TestJourney:
    def test_calibration_feeds_the_heuristic(self, journey, device):
        """The (Ct, Nt) rules describe the direct-vs-MM trade-off, so they
        must match the profiled plan computed in that regime (no FFT —
        with FFT allowed the DP may diverge, exactly as the paper's
        AlexNet plan does at N=128)."""
        thresholds = journey["thresholds"]
        net = journey["net"]
        no_fft = plan_optimal(
            device, net.planner_nodes(device), allow_fft=False
        )
        plan_layouts = {s.name: s.layout for s in no_fft.steps if s.layout}
        for layer in net.layers:
            if layer.kind is NodeKind.CONV:
                assert plan_layouts[layer.name] == preferred_conv_layout(
                    layer.spec, thresholds
                ), layer.name

    def test_serialized_plan_round_trips_and_executes(self, journey, device):
        netdef, ann = parse_annotated_netdef(journey["serialized"])
        small = Net(build_network("cifar", batch=4))
        small_plan = plan_optimal(device, small.planner_nodes(device))
        overlay = plan_from_annotations(small_plan, ann)
        x = small.make_input(seed=0)
        w = small.init_weights()
        np.testing.assert_allclose(
            small.forward(x, w, plan=overlay),
            small.forward(x, w),
            rtol=1e-3,
            atol=1e-4,
        )
        assert netdef == journey["net"].definition

    def test_opt_beats_the_best_library(self, journey):
        schemes = journey["schemes"]
        assert schemes["opt"].total_ms <= schemes["cudnn-best"].total_ms

    def test_training_works_on_the_same_network(self, device):
        ds = synthetic_digits(n_samples=64, image=24, n_classes=4, seed=2)
        # CIFAR expects 3 channels; tile the grey digits.
        images = np.repeat(ds.images, 3, axis=1)
        net = Net(build_network("cifar", batch=16))
        # shrink the classifier to the synthetic label space
        from repro.framework import FCDef, NetworkDef

        defn = net.definition
        layers = tuple(
            FCDef("fc2", out_features=4, relu=False)
            if getattr(l, "name", "") == "fc2"
            else l
            for l in defn.layers
        )
        retargeted = Net(
            NetworkDef(defn.name, 16, defn.in_channels, defn.in_h, defn.in_w, layers)
        )
        _, history = train(retargeted, images, ds.labels, steps=10, lr=0.05)
        assert history[-1].loss < history[0].loss

    def test_footprint_fits_the_card(self, journey, device):
        assert journey["footprint"].fits(device)

    def test_training_timing_consistent_with_inference(self, journey, device):
        net = journey["net"]
        fwd = time_network(net, device, "opt").total_ms
        trn = time_network(net, device, "opt", training=True).total_ms
        assert 2.0 < trn / fwd < 4.5
