"""Shared simulation sessions across the planning stack.

The acceptance demonstration for the session refactor: planning the same
network twice against one warm :class:`SimulationContext` must (a) produce
exactly the same plan at exactly the same cost — the cache may never change
an answer — and (b) time strictly fewer kernels the second time, with a
non-zero cache hit rate.
"""

import pytest

from repro import Net, build_network, plan_optimal, plan_with_heuristic
from repro.gpusim import SimulationContext


@pytest.fixture(scope="module")
def alexnet():
    return Net(build_network("alexnet"))


def _steps(plan):
    return [
        (s.name, str(s.layout), s.implementation, s.coarsening)
        for s in plan.steps
    ]


class TestColdVsWarm:
    def test_optimal_plan_invariant_under_caching(self, alexnet, device):
        ctx = SimulationContext(device, check_memory=False)
        cold = plan_optimal(
            device, alexnet.planner_nodes(device, context=ctx), context=ctx
        )
        timed_cold = ctx.stats.kernels_timed
        assert timed_cold > 0

        warm = plan_optimal(
            device, alexnet.planner_nodes(device, context=ctx), context=ctx
        )
        timed_warm = ctx.stats.kernels_timed - timed_cold
        assert timed_warm < timed_cold
        assert timed_warm == 0  # every kernel shape already cached
        assert ctx.stats.hits > 0
        assert ctx.stats.hit_rate > 0.0
        assert _steps(warm) == _steps(cold)
        assert warm.total_ms == pytest.approx(cold.total_ms)

    def test_heuristic_plan_invariant_under_caching(self, alexnet, device):
        ctx = SimulationContext(device, check_memory=False)
        cold = plan_with_heuristic(
            device, alexnet.planner_nodes(device, context=ctx), context=ctx
        )
        timed_cold = ctx.stats.kernels_timed

        warm = plan_with_heuristic(
            device, alexnet.planner_nodes(device, context=ctx), context=ctx
        )
        assert ctx.stats.kernels_timed - timed_cold < timed_cold
        assert _steps(warm) == _steps(cold)
        assert warm.total_ms == pytest.approx(cold.total_ms)

    def test_fresh_contexts_agree_with_each_other(self, alexnet, device):
        """Two independent sessions must reach the same plan — the cache is
        an accelerator, never an input."""
        a = SimulationContext(device, check_memory=False)
        b = SimulationContext(device, check_memory=False)
        plan_a = plan_optimal(
            device, alexnet.planner_nodes(device, context=a), context=a
        )
        plan_b = plan_optimal(
            device, alexnet.planner_nodes(device, context=b), context=b
        )
        assert _steps(plan_a) == _steps(plan_b)
        assert plan_a.total_ms == pytest.approx(plan_b.total_ms)


class TestPersistedSessions:
    def test_disk_cache_warms_a_new_process_stand_in(
        self, alexnet, device, tmp_path
    ):
        path = tmp_path / "alexnet-cache.json"
        first = SimulationContext(device, check_memory=False, cache_path=path)
        cold = plan_optimal(
            device, alexnet.planner_nodes(device, context=first), context=first
        )
        first.save_cache()

        second = SimulationContext(device, check_memory=False, cache_path=path)
        assert second.stats.loaded_from_disk == first.cache_size
        warm = plan_optimal(
            device, alexnet.planner_nodes(device, context=second), context=second
        )
        assert second.stats.kernels_timed == 0
        assert _steps(warm) == _steps(cold)
        assert warm.total_ms == pytest.approx(cold.total_ms)
