"""Network definition parsing and serialization."""

import pytest

from repro.framework import (
    ConvDef,
    FCDef,
    LRNDef,
    NetworkDef,
    PoolDef,
    SoftmaxDef,
    format_netdef,
    parse_netdef,
)
from repro.networks import build_network

SAMPLE = """
# a LeNet-like stack
network demo batch=64 input=1x28x28
conv conv1 co=16 f=5 stride=1 pad=2
pool pool1 window=2 stride=2
lrn norm1 depth=5
fc fc1 out=500
fc fc2 out=10 relu=0
softmax prob
"""


class TestParse:
    def test_full_parse(self):
        net = parse_netdef(SAMPLE)
        assert net.name == "demo"
        assert net.batch == 64
        assert (net.in_channels, net.in_h, net.in_w) == (1, 28, 28)
        assert isinstance(net.layers[0], ConvDef)
        assert net.layers[0].pad == 2
        assert isinstance(net.layers[1], PoolDef)
        assert isinstance(net.layers[2], LRNDef)
        assert isinstance(net.layers[3], FCDef)
        assert net.layers[4].relu is False
        assert isinstance(net.layers[5], SoftmaxDef)

    def test_comments_and_blank_lines_ignored(self):
        assert len(parse_netdef(SAMPLE).layers) == 6

    def test_defaults(self):
        net = parse_netdef("network x batch=1 input=1x4x4\nconv c1 co=2 f=3\n")
        conv = net.layers[0]
        assert conv.stride == 1 and conv.pad == 0 and conv.relu is True

    @pytest.mark.parametrize(
        "text,match",
        [
            ("conv c co=2 f=3\n", "before network header"),
            ("network a batch=1 input=1x4x4\nblob b x=1\n", "unknown layer kind"),
            ("network a batch=1 input=1x4x4\nconv c co 2\n", "key=value"),
            ("", "missing network header"),
            (
                "network a batch=1 input=1x4x4\nnetwork b batch=1 input=1x4x4\n",
                "duplicate network header",
            ),
        ],
    )
    def test_errors(self, text, match):
        with pytest.raises(ValueError, match=match):
            parse_netdef(text)


class TestRoundTrip:
    @pytest.mark.parametrize("name", ["lenet", "cifar", "alexnet", "zfnet", "vgg"])
    def test_builtin_networks_roundtrip(self, name):
        net = build_network(name)
        assert parse_netdef(format_netdef(net)) == net

    def test_sample_roundtrips(self):
        net = parse_netdef(SAMPLE)
        assert parse_netdef(format_netdef(net)) == net


class TestValidation:
    def test_duplicate_layer_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            NetworkDef(
                "bad", 1, 1, 4, 4,
                (PoolDef("p", 2, 2), PoolDef("p", 2, 2)),
            )

    def test_positive_input_dims(self):
        with pytest.raises(ValueError):
            NetworkDef("bad", 0, 1, 4, 4)

    def test_with_batch(self):
        net = build_network("lenet").with_batch(32)
        assert net.batch == 32
        assert net.layers == build_network("lenet").layers
