"""Property-based fuzzing over random network definitions.

A hypothesis strategy builds random-but-valid CNN stacks; the properties
assert the invariants every component must hold for *any* network, not
just the five benchmark ones: shape resolution is consistent, the text
format round-trips, the DP plan dominates single-layout plans, and the
numeric forward is a probability distribution that does not depend on the
layout plan.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import plan_optimal, plan_single_layout
from repro.framework import (
    ConvDef,
    FCDef,
    LRNDef,
    Net,
    NetworkDef,
    PoolDef,
    SoftmaxDef,
    format_netdef,
    parse_netdef,
)
from repro.gpusim import TITAN_BLACK
from repro.tensors import CHWN, NCHW


@st.composite
def network_defs(draw) -> NetworkDef:
    """A random valid stack: 1-3 conv blocks, optional LRN/pool, FC head."""
    batch = draw(st.sampled_from([2, 4, 8]))
    channels = draw(st.sampled_from([1, 3]))
    extent = draw(st.sampled_from([12, 16, 20]))
    layers = []
    h = extent
    n_blocks = draw(st.integers(1, 3))
    for b in range(n_blocks):
        f = draw(st.sampled_from([3, 5]))
        pad = draw(st.sampled_from([0, f // 2]))
        out_h = h + 2 * pad - f + 1
        if out_h < 4:
            break
        layers.append(
            ConvDef(f"conv{b}", co=draw(st.sampled_from([4, 8])), f=f, pad=pad)
        )
        h = out_h
        if draw(st.booleans()):
            layers.append(LRNDef(f"lrn{b}", depth=draw(st.sampled_from([3, 5]))))
        if h >= 4 and draw(st.booleans()):
            window = draw(st.sampled_from([2, 3]))
            stride = draw(st.sampled_from([2, window]))
            if window <= h:
                layers.append(
                    PoolDef(
                        f"pool{b}", window=window, stride=stride,
                        op=draw(st.sampled_from(["max", "avg"])),
                    )
                )
                h = -(-(h - window) // stride) + 1
    layers.append(FCDef("fc_head", out_features=draw(st.sampled_from([8, 16]))))
    layers.append(FCDef("fc_out", out_features=4, relu=False))
    layers.append(SoftmaxDef("prob"))
    return NetworkDef("fuzz", batch, channels, extent, extent, tuple(layers))


class TestResolvedShapes:
    @given(netdef=network_defs())
    @settings(max_examples=40, deadline=None)
    def test_resolution_is_consistent(self, netdef):
        net = Net(netdef)
        prev_dims = (netdef.batch, netdef.in_channels, netdef.in_h, netdef.in_w)
        for layer in net.layers:
            if layer.in_dims is not None:
                assert layer.in_dims == prev_dims
            if layer.out_dims is not None:
                assert all(d > 0 for d in layer.out_dims)
                prev_dims = layer.out_dims

    @given(netdef=network_defs())
    @settings(max_examples=40, deadline=None)
    def test_netdef_roundtrips(self, netdef):
        assert parse_netdef(format_netdef(netdef)) == netdef


class TestPlannerProperties:
    @given(netdef=network_defs())
    @settings(max_examples=15, deadline=None)
    def test_optimal_dominates_single_layouts(self, netdef):
        nodes = Net(netdef).planner_nodes(TITAN_BLACK)
        opt = plan_optimal(TITAN_BLACK, nodes).total_ms
        for layout in (CHWN, NCHW):
            single = plan_single_layout(
                TITAN_BLACK, nodes, layout, tune_pooling=True
            ).total_ms
            assert opt <= single + 1e-9

    @given(netdef=network_defs())
    @settings(max_examples=15, deadline=None)
    def test_plan_covers_every_layer_once(self, netdef):
        net = Net(netdef)
        plan = plan_optimal(TITAN_BLACK, net.planner_nodes(TITAN_BLACK))
        assert [s.name for s in plan.steps] == [l.name for l in net.layers]


class TestNumericProperties:
    @given(netdef=network_defs(), seed=st.integers(0, 100))
    @settings(max_examples=10, deadline=None)
    def test_forward_is_a_distribution_and_plan_invariant(self, netdef, seed):
        net = Net(netdef)
        weights = net.init_weights(seed=seed)
        x = net.make_input(seed=seed)
        out = net.forward(x, weights)
        assert out.shape == (netdef.batch, 4)
        assert np.isfinite(out).all()
        np.testing.assert_allclose(out.sum(axis=1), 1.0, atol=1e-4)
        plan = plan_optimal(TITAN_BLACK, net.planner_nodes(TITAN_BLACK))
        out_planned = net.forward(x, weights, plan=plan)
        np.testing.assert_allclose(out_planned, out, rtol=1e-3, atol=1e-4)
