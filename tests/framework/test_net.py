"""Net resolution and plan-driven numeric execution."""

import numpy as np
import pytest

from repro.core import plan_optimal, plan_single_layout
from repro.core.planner import NodeKind
from repro.framework import (
    ConvDef,
    FCDef,
    Net,
    NetworkDef,
    PoolDef,
    SoftmaxDef,
    resolve,
)
from repro.layers import ConvSpec, SoftmaxSpec
from repro.networks import build_network
from repro.tensors import CHWN, NCHW


class TestResolve:
    def test_lenet_shapes(self):
        layers = resolve(build_network("lenet"))
        conv1, pool1, conv2, pool2 = layers[:4]
        assert isinstance(conv1.spec, ConvSpec)
        assert conv1.out_dims == (128, 16, 28, 28)  # pad 2 keeps 28
        assert pool1.out_dims == (128, 16, 14, 14)
        assert conv2.in_dims == (128, 16, 14, 14)
        assert pool2.out_dims == (128, 16, 7, 7)

    def test_alexnet_matches_table1_pools(self):
        layers = {l.name: l for l in resolve(build_network("alexnet"))}
        assert layers["pool1"].in_dims == (128, 96, 55, 55)  # PL5
        assert layers["pool2"].in_dims == (128, 256, 27, 27)  # PL6
        assert layers["pool3"].in_dims == (128, 256, 13, 13)  # PL7

    def test_zfnet_matches_table1_pools(self):
        layers = {l.name: l for l in resolve(build_network("zfnet"))}
        assert layers["pool1"].in_dims == (64, 96, 110, 110)  # PL8
        assert layers["pool2"].in_dims == (64, 256, 26, 26)  # PL9
        assert layers["pool3"].in_dims == (64, 256, 13, 13)  # PL10

    def test_vgg_matches_table1_convs(self):
        layers = {l.name: l for l in resolve(build_network("vgg"))}
        assert layers["conv1_1"].spec.ci == 3 and layers["conv1_1"].spec.h == 224
        assert layers["conv3_1"].spec.ci == 128 and layers["conv3_1"].spec.h == 56
        assert layers["conv4_1"].spec.ci == 256 and layers["conv4_1"].spec.h == 28
        assert layers["conv5_1"].spec.ci == 512 and layers["conv5_1"].spec.h == 14

    def test_softmax_requires_fc(self):
        bad = NetworkDef(
            "bad", 2, 1, 8, 8, (ConvDef("c", co=2, f=3), SoftmaxDef("s"))
        )
        with pytest.raises(ValueError, match="softmax"):
            resolve(bad)

    def test_conv_after_flatten_rejected(self):
        bad = NetworkDef(
            "bad", 2, 1, 8, 8,
            (FCDef("f", out_features=4), ConvDef("c", co=2, f=3)),
        )
        with pytest.raises(ValueError, match="flatten"):
            resolve(bad)

    def test_classifier_spec_types(self):
        layers = resolve(build_network("lenet"))
        assert isinstance(layers[-1].spec, SoftmaxSpec)
        assert layers[-1].spec.categories == 10


class TestPlannerNodes:
    def test_kinds(self, device):
        nodes = Net(build_network("alexnet")).planner_nodes(device)
        kinds = [n.kind for n in nodes]
        assert kinds.count(NodeKind.CONV) == 5
        assert kinds.count(NodeKind.POOL) == 3
        assert kinds.count(NodeKind.ELEMENTWISE) == 2  # the LRNs
        assert kinds.count(NodeKind.CLASSIFIER) == 4  # 3 FC + softmax

    def test_fixed_costs_positive(self, device):
        nodes = Net(build_network("alexnet")).planner_nodes(device)
        for n in nodes:
            if n.kind is NodeKind.ELEMENTWISE:
                assert n.fixed_ms > 0


@pytest.fixture(scope="module")
def tiny_net():
    """LeNet at batch 8 — fast enough for numeric work."""
    return Net(build_network("lenet", batch=8))


class TestNumericForward:
    def test_output_is_distribution(self, tiny_net):
        out = tiny_net.forward(tiny_net.make_input(seed=1))
        assert out.shape == (8, 10)
        np.testing.assert_allclose(out.sum(axis=1), 1.0, atol=1e-5)

    def test_deterministic(self, tiny_net):
        w = tiny_net.init_weights(seed=3)
        a = tiny_net.forward(tiny_net.make_input(seed=2), w)
        b = tiny_net.forward(tiny_net.make_input(seed=2), w)
        np.testing.assert_array_equal(a, b)

    def test_plan_invariance(self, tiny_net, device):
        """The headline integration property: any layout plan computes the
        same numbers, transforms included."""
        w = tiny_net.init_weights()
        x = tiny_net.make_input(seed=5)
        reference = tiny_net.forward(x, w)
        nodes = tiny_net.planner_nodes(device)
        for plan in (
            plan_optimal(device, nodes),
            plan_single_layout(device, nodes, CHWN),
            plan_single_layout(device, nodes, NCHW),
        ):
            out = tiny_net.forward(x, w, plan=plan)
            np.testing.assert_allclose(out, reference, rtol=1e-3, atol=1e-4)

    def test_input_layout_invariance(self, tiny_net):
        w = tiny_net.init_weights()
        a = tiny_net.forward(tiny_net.make_input(seed=7, layout=NCHW), w)
        b = tiny_net.forward(tiny_net.make_input(seed=7, layout=CHWN), w)
        np.testing.assert_allclose(a, b, rtol=1e-4, atol=1e-5)

    def test_cifar_forward_with_lrn_free_stack(self):
        net = Net(build_network("cifar", batch=4))
        out = net.forward(net.make_input(seed=11))
        assert out.shape == (4, 10)
        np.testing.assert_allclose(out.sum(axis=1), 1.0, atol=1e-5)

    def test_alexnet_style_net_with_lrn(self):
        """A small net exercising every layer kind, including LRN."""
        from repro.framework import LRNDef

        netdef = NetworkDef(
            "mini", 2, 3, 16, 16,
            (
                ConvDef("c1", co=4, f=3, pad=1),
                LRNDef("n1"),
                PoolDef("p1", window=3, stride=2),
                ConvDef("c2", co=6, f=3, pad=1),
                PoolDef("p2", window=2, stride=2),
                FCDef("f1", out_features=10, relu=False),
                SoftmaxDef("s"),
            ),
        )
        net = Net(netdef)
        out = net.forward(net.make_input(seed=13))
        assert out.shape == (2, 10)
        np.testing.assert_allclose(out.sum(axis=1), 1.0, atol=1e-5)
