"""Network memory-footprint accounting (paper Section VI.A)."""

import pytest

from repro.core import plan_optimal
from repro.framework import Net
from repro.framework.memory import (
    MemoryFootprint,
    PlanMismatchError,
    format_footprint,
    network_footprint,
    plan_within_memory,
)
from repro.networks import build_network


@pytest.fixture(scope="module")
def alexnet_plan():
    from repro.gpusim import TITAN_BLACK

    net = Net(build_network("alexnet"))
    return net, plan_optimal(TITAN_BLACK, net.planner_nodes(TITAN_BLACK))


class TestFootprint:
    def test_alexnet_transform_overhead_matches_paper(self, alexnet_plan):
        """'additional memory space overhead is only 73.5 MB, less than 3%
        compared to the memory footprint of around 3 GB' — our plan's
        largest transformed tensor is 91 MiB against a ~2 GiB footprint."""
        net, plan = alexnet_plan
        fp = network_footprint(net, plan, training=True)
        assert 50 * 2**20 < fp.transform_bytes < 150 * 2**20
        assert fp.transform_overhead_fraction < 0.06
        assert 1.5 * 2**30 < fp.resident_bytes < 4 * 2**30

    def test_transform_scratch_zero_without_transforms(self, device):
        net = Net(build_network("lenet"))
        plan = plan_optimal(device, net.planner_nodes(device))
        fp = network_footprint(net, plan)
        assert fp.transform_bytes == 0

    def test_training_costs_more_than_inference(self, alexnet_plan):
        net, plan = alexnet_plan
        infer = network_footprint(net, plan, training=False)
        train = network_footprint(net, plan, training=True)
        assert train.resident_bytes > 1.5 * infer.resident_bytes

    def test_lenet_fits_easily(self, device):
        net = Net(build_network("lenet"))
        fp = network_footprint(net)
        assert fp.fits(device)
        assert fp.peak_bytes < 200 * 2**20

    def test_peak_includes_largest_transient(self):
        fp = MemoryFootprint(
            activations_bytes=100, weights_bytes=50,
            workspace_bytes=30, transform_bytes=70,
        )
        assert fp.peak_bytes == 220

    def test_format(self, alexnet_plan):
        net, plan = alexnet_plan
        text = format_footprint(network_footprint(net, plan))
        assert "MiB" in text and "%" in text


class TestPlanAlignment:
    """The footprint pairs steps with layers by name and says so when it
    can't, instead of silently zipping mismatched sequences."""

    def test_plan_for_another_network_is_rejected(self, alexnet_plan, device):
        lenet = Net(build_network("lenet"))
        _, alex_plan = alexnet_plan
        with pytest.raises(PlanMismatchError, match="does not match network"):
            network_footprint(lenet, alex_plan)

    def test_message_names_the_unmatched_steps(self, alexnet_plan, device):
        lenet = Net(build_network("lenet"))
        _, alex_plan = alexnet_plan
        with pytest.raises(PlanMismatchError) as exc:
            network_footprint(lenet, alex_plan)
        assert "conv3" in str(exc.value)  # alexnet step with no lenet layer

    def test_reordered_steps_are_rejected(self, device):
        from dataclasses import replace

        net = Net(build_network("lenet"))
        plan = plan_optimal(device, net.planner_nodes(device))
        shuffled = replace(plan, steps=tuple(reversed(plan.steps)))
        with pytest.raises(PlanMismatchError, match="different order"):
            network_footprint(net, shuffled)

    def test_unsupported_conv_impl_contributes_no_workspace(self, device):
        """FFT rejects stride>1 specs with ConvUnsupportedError; the
        footprint skips exactly that error rather than swallowing all."""
        net = Net(build_network("alexnet"))
        plan = plan_optimal(device, net.planner_nodes(device))
        # conv1 has stride 4: FFT refuses it with ConvUnsupportedError
        from dataclasses import replace as _replace

        steps = tuple(
            _replace(s, implementation="fft")
            if s.name == "conv1"
            else s
            for s in plan.steps
        )
        fp = network_footprint(net, _replace(plan, steps=steps))
        assert fp.peak_bytes > 0  # computed, no exception

    def test_unknown_conv_impl_raises(self, device):
        """A plan naming a nonexistent implementation is a real bug and
        must propagate, not be silently zeroed."""
        from dataclasses import replace as _replace

        net = Net(build_network("lenet"))
        plan = plan_optimal(device, net.planner_nodes(device))
        steps = tuple(
            _replace(s, implementation="no-such-impl")
            if s.kind.value == "conv"
            else s
            for s in plan.steps
        )
        with pytest.raises(ValueError, match="no-such-impl"):
            network_footprint(net, _replace(plan, steps=steps))


class TestMemoryAwarePlanning:
    def test_vgg_training_falls_back_from_fft(self, device):
        """The unconstrained VGG plan's FFT workspace plus training
        residency exceeds the 6 GB card; memory-aware planning retreats to
        MM convolutions."""
        net = Net(build_network("vgg"))
        unconstrained = plan_optimal(device, net.planner_nodes(device))
        assert any("fft" in s.implementation for s in unconstrained.steps)
        assert not network_footprint(net, unconstrained, training=True).fits(device)
        plan, fp = plan_within_memory(device, net, training=True)
        assert all("fft" not in s.implementation for s in plan.steps)
        assert fp.workspace_bytes < unconstrained_workspace(net, unconstrained)

    def test_fitting_networks_keep_the_optimal_plan(self, device):
        net = Net(build_network("lenet"))
        plan, fp = plan_within_memory(device, net, training=True)
        optimal = plan_optimal(device, net.planner_nodes(device))
        assert plan.total_ms == pytest.approx(optimal.total_ms)
        assert fp.fits(device)


def unconstrained_workspace(net, plan) -> int:
    return network_footprint(net, plan).workspace_bytes
