"""Layout annotations baked into network definitions (Section IV.D)."""

import numpy as np
import pytest

from repro.core import plan_optimal
from repro.framework import Net, build_net, parse_netdef
from repro.framework.annotate import (
    LayerAnnotation,
    annotations_from_plan,
    format_annotated_netdef,
    parse_annotated_netdef,
    plan_from_annotations,
)
from repro.networks import build_network
from repro.tensors import CHWN, NCHW


@pytest.fixture(scope="module")
def alexnet_case():
    from repro.gpusim import TITAN_BLACK

    net = Net(build_network("alexnet"))
    plan = plan_optimal(TITAN_BLACK, net.planner_nodes(TITAN_BLACK))
    return net, plan


class TestAnnotationExtraction:
    def test_conv_and_pool_layers_annotated(self, alexnet_case):
        net, plan = alexnet_case
        ann = annotations_from_plan(plan)
        assert set(ann) == {
            "conv1", "conv2", "conv3", "conv4", "conv5",
            "pool1", "pool2", "pool3",
        }
        assert ann["conv1"].layout == CHWN
        assert ann["conv2"].layout == NCHW
        assert ann["pool1"].coarsening is not None

    def test_encoding(self):
        a = LayerAnnotation(layout=CHWN, implementation="chwn-coarsened",
                            coarsening=(3, 2))
        assert a.encode() == "layout=CHWN impl=chwn-coarsened coarsen=3x2"


class TestRoundTrip:
    def test_annotated_netdef_roundtrips(self, alexnet_case):
        net, plan = alexnet_case
        ann = annotations_from_plan(plan)
        text = format_annotated_netdef(net.definition, ann)
        parsed_net, parsed_ann = parse_annotated_netdef(text)
        assert parsed_net == net.definition
        assert parsed_ann == ann

    def test_plain_parser_ignores_annotations(self, alexnet_case):
        net, plan = alexnet_case
        text = format_annotated_netdef(
            net.definition, annotations_from_plan(plan)
        )
        assert parse_netdef(text) == net.definition

    def test_annotation_for_unknown_layer_rejected(self):
        text = (
            "network x batch=2 input=1x8x8\n"
            "conv c1 co=2 f=3 stride=1 pad=0 relu=1\n"
            "#@ nosuch layout=CHWN impl=direct\n"
        )
        with pytest.raises(ValueError, match="unknown layers"):
            parse_annotated_netdef(text)

    def test_malformed_annotation_rejected(self):
        text = "network x batch=2 input=1x8x8\n#@ c1\n"
        with pytest.raises(ValueError, match="malformed|needs"):
            parse_annotated_netdef(text)


class TestAnnotatedExecution:
    def test_annotations_drive_numeric_execution(self, alexnet_case, device):
        """Baked-in layout fields reproduce the planned execution exactly."""
        _, plan = alexnet_case
        small = Net(build_network("alexnet", batch=2))
        small_plan = plan_optimal(device, small.planner_nodes(device))
        ann = annotations_from_plan(small_plan)
        text = format_annotated_netdef(small.definition, ann)
        parsed_net, parsed_ann = parse_annotated_netdef(text)
        rebuilt = build_net(parsed_net)
        overlay = plan_from_annotations(small_plan, parsed_ann)
        weights = rebuilt.init_weights()
        x = rebuilt.make_input(seed=0)
        a = rebuilt.forward(x, weights, plan=small_plan)
        b = rebuilt.forward(x, weights, plan=overlay)
        np.testing.assert_allclose(a, b, rtol=1e-4, atol=1e-5)
        assert overlay.strategy == "annotated"
