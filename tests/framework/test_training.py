"""End-to-end training: gradients flow, loss decreases, data is learnable."""

import numpy as np
import pytest

from repro.data import synthetic_digits, synthetic_objects
from repro.framework import (
    ConvDef,
    FCDef,
    LRNDef,
    Net,
    NetworkDef,
    PoolDef,
    SoftmaxDef,
    Trainer,
    train,
)


def tiny_netdef(batch=16, image=14, classes=4, with_lrn=False, pool_op="max"):
    layers = [ConvDef("c1", co=6, f=3, pad=1)]
    if with_lrn:
        layers.append(LRNDef("n1", depth=3))
    layers += [
        PoolDef("p1", window=2, stride=2, op=pool_op),
        FCDef("f1", out_features=32),
        FCDef("f2", out_features=classes, relu=False),
        SoftmaxDef("s"),
    ]
    return NetworkDef("tiny", batch, 1, image, image, tuple(layers))


@pytest.fixture(scope="module")
def digits():
    return synthetic_digits(n_samples=128, image=14, n_classes=4, seed=1)


class TestTrainer:
    def test_loss_decreases(self, digits):
        net = Net(tiny_netdef())
        _, history = train(net, digits.images, digits.labels, steps=15, lr=0.05)
        assert history[-1].loss < history[0].loss * 0.7

    def test_learns_separable_data(self, digits):
        net = Net(tiny_netdef())
        trainer, _ = train(net, digits.images, digits.labels, steps=30, lr=0.05)
        _, acc = trainer.evaluate(digits.images, digits.labels)
        assert acc > 0.8  # chance is 0.25

    def test_evaluate_handles_other_batch_sizes(self, digits):
        net = Net(tiny_netdef(batch=16))
        trainer = Trainer(net)
        loss64, _ = trainer.evaluate(digits.images[:64], digits.labels[:64])
        loss8, _ = trainer.evaluate(digits.images[:8], digits.labels[:8])
        assert np.isfinite(loss64) and np.isfinite(loss8)

    def test_gradients_touch_every_parameter(self, digits):
        net = Net(tiny_netdef())
        trainer = Trainer(net)
        _, _, grads = trainer.loss_and_grads(digits.images[:16], digits.labels[:16])
        assert set(grads) == {"c1", "f1", "f2"}
        for g in grads.values():
            parts = g if isinstance(g, tuple) else (g,)
            assert all(np.isfinite(p).all() for p in parts)
            assert any(np.abs(p).max() > 0 for p in parts)

    def test_avg_pooling_and_lrn_variants_train(self, digits):
        net = Net(tiny_netdef(with_lrn=True, pool_op="avg"))
        _, history = train(net, digits.images, digits.labels, steps=12, lr=0.05)
        assert history[-1].loss < history[0].loss

    def test_momentum_accepted_and_validated(self, digits):
        net = Net(tiny_netdef())
        with pytest.raises(ValueError):
            Trainer(net, momentum=1.0)
        with pytest.raises(ValueError):
            Trainer(net, lr=0.0)
        trainer = Trainer(net, momentum=0.9)
        step = trainer.step(digits.images[:16], digits.labels[:16])
        assert step.grad_norm > 0

    def test_requires_softmax_head(self, digits):
        net = Net(
            NetworkDef(
                "headless", 16, 1, 14, 14,
                (ConvDef("c1", co=4, f=3, pad=1), FCDef("f1", out_features=4)),
            )
        )
        with pytest.raises(ValueError, match="softmax"):
            Trainer(net).loss_and_grads(digits.images[:16], digits.labels[:16])

    def test_color_dataset_trains(self):
        ds = synthetic_objects(n_samples=96, image=12, n_classes=3, seed=2)
        net = Net(
            NetworkDef(
                "color", 16, 3, 12, 12,
                (
                    ConvDef("c1", co=8, f=3, pad=1),
                    PoolDef("p1", window=2, stride=2),
                    FCDef("f1", out_features=3, relu=False),
                    SoftmaxDef("s"),
                ),
            )
        )
        trainer, history = train(net, ds.images, ds.labels, steps=25, lr=0.1)
        _, acc = trainer.evaluate(ds.images, ds.labels)
        assert acc > 0.6


class TestLenetOnDigits:
    def test_real_lenet_improves(self):
        """The actual LeNet definition (batch-reduced) learns the synthetic
        MNIST substitute."""
        from repro.networks import build_network

        ds = synthetic_digits(n_samples=96, image=28, n_classes=10, seed=3)
        net = Net(build_network("lenet", batch=16))
        trainer, history = train(
            net, ds.images, ds.labels, steps=12, batch_size=16, lr=0.03
        )
        _, acc = trainer.evaluate(ds.images, ds.labels)
        assert history[-1].loss < history[0].loss
        assert acc > 0.3  # chance is 0.1
