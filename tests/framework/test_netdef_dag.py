"""DAG wiring in NetworkDef: concat layers, bottom= references, round-trip."""

import pytest

from repro.framework import Net
from repro.framework.netdef import (
    ConcatDef,
    ConvDef,
    FCDef,
    NetworkDef,
    PoolDef,
    SoftmaxDef,
    format_netdef,
    parse_netdef,
)
from repro.networks import build_network


def branching_netdef() -> NetworkDef:
    return NetworkDef(
        "fork", 4, 3, 16, 16,
        layers=(
            ConvDef("stem", co=8, f=3, pad=1),
            ConvDef("a", co=4, f=1, bottom="stem"),
            ConvDef("b", co=4, f=3, pad=1, bottom="stem"),
            ConcatDef("cat", inputs=("a", "b")),
            PoolDef("pool", window=2, stride=2, bottom="cat"),
            FCDef("fc", out_features=10, bottom="pool"),
            SoftmaxDef("prob", bottom="fc"),
        ),
    )


class TestConcatDef:
    def test_needs_two_inputs(self):
        with pytest.raises(ValueError, match="at least two inputs"):
            ConcatDef("cat", inputs=("only",))

    def test_rejects_duplicate_inputs(self):
        with pytest.raises(ValueError, match="duplicate concat inputs"):
            ConcatDef("cat", inputs=("a", "a"))

    def test_inputs_coerced_to_tuple(self):
        assert ConcatDef("cat", inputs=["a", "b"]).inputs == ("a", "b")


class TestBottomReferences:
    def test_bottom_must_name_earlier_layer(self):
        with pytest.raises(ValueError, match="does not name an earlier layer"):
            NetworkDef(
                "bad", 4, 3, 8, 8,
                layers=(
                    ConvDef("x", co=4, f=3, bottom="later"),
                    ConvDef("later", co=4, f=3),
                ),
            )

    def test_concat_inputs_must_name_earlier_layers(self):
        with pytest.raises(ValueError, match="does not name an earlier layer"):
            NetworkDef(
                "bad", 4, 3, 8, 8,
                layers=(
                    ConvDef("x", co=4, f=3),
                    ConcatDef("cat", inputs=("x", "ghost")),
                ),
            )


class TestRoundTrip:
    def test_branching_netdef_round_trips(self):
        net = branching_netdef()
        text = format_netdef(net)
        assert "bottom=stem" in text
        assert "concat cat inputs=a,b" in text
        assert parse_netdef(text) == net

    def test_inception_round_trips(self):
        net = build_network("inception")
        assert parse_netdef(format_netdef(net)) == net


class TestNetChainDetection:
    def test_branching_net_is_not_chain(self):
        assert not Net(branching_netdef()).is_chain
        assert not Net(build_network("inception")).is_chain

    def test_linear_net_is_chain(self):
        assert Net(build_network("lenet")).is_chain

    def test_explicit_bottom_chain_still_counts(self):
        net = NetworkDef(
            "explicit", 4, 3, 8, 8,
            layers=(
                ConvDef("c1", co=4, f=3),
                ConvDef("c2", co=4, f=3, bottom="c1"),
                FCDef("fc", out_features=10, bottom="c2"),
                SoftmaxDef("prob", bottom="fc"),
            ),
        )
        assert Net(net).is_chain
