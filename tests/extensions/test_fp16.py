"""FP16/Pascal extension: the Section VII prediction, checked."""

import pytest

from repro.extensions import (
    TESLA_P100,
    as_fp16,
    compare_layouts_fp16,
    fp16_device,
    memory_bound_share,
)
from repro.gpusim import SimulationEngine, get_device, simulate
from repro.layers import make_conv_kernel, make_pool_kernel
from repro.networks import CONV_LAYERS, POOL_LAYERS


class TestDevice:
    def test_p100_registered(self):
        assert get_device("tesla-p100") is TESLA_P100
        assert get_device("pascal") is TESLA_P100

    def test_fp16_device_doubles_arithmetic_only(self, device):
        half = fp16_device(device)
        assert half.peak_gflops == 2 * device.peak_gflops
        assert half.mem_bandwidth_gbs == device.mem_bandwidth_gbs
        assert "FP16" in half.name

    def test_p100_is_faster_than_titan_black(self, device):
        spec = CONV_LAYERS["CV7"]
        t_black = simulate(device, make_conv_kernel(spec, "im2col")).time_ms
        t_p100 = simulate(TESLA_P100, make_conv_kernel(spec, "im2col")).time_ms
        assert t_p100 < t_black


class TestFp16Kernels:
    def test_halves_traffic(self, device):
        base = make_conv_kernel(CONV_LAYERS["CV7"], "im2col")
        half = as_fp16(base)
        assert (
            half.memory_profile(device).load_bytes
            == 0.5 * base.memory_profile(device).load_bytes
        )
        assert half.flop_count() == base.flop_count()

    def test_bandwidth_bound_layers_speed_up_about_2x(self):
        """Pooling is pure bandwidth: FP16 halves its time."""
        engine32 = SimulationEngine(TESLA_P100, check_memory=False)
        engine16 = SimulationEngine(fp16_device(TESLA_P100), check_memory=False)
        spec = POOL_LAYERS["PL5"]
        t32 = engine32.run(make_pool_kernel(spec, "chwn")).time_ms
        t16 = engine16.run(as_fp16(make_pool_kernel(spec, "chwn"))).time_ms
        assert 1.6 < t32 / t16 < 2.2


class TestSectionVIIPrediction:
    def test_layout_winners_survive_fp16(self):
        """'the underlying impact from data layout remains'."""
        for row in compare_layouts_fp16(TESLA_P100):
            assert row.fp16_winner == row.fp32_winner, row.layer

    def test_layout_gap_does_not_vanish(self):
        """The preferred-vs-alternative ratio stays material under FP16."""
        rows = compare_layouts_fp16(TESLA_P100)
        avg16 = sum(r.fp16_ratio for r in rows) / len(rows)
        assert avg16 > 1.5

    def test_memory_share_preserved_under_full_fp16(self):
        """Full FP16 halves both sides, so the memory/compute balance (and
        with it every layout conclusion) carries over unchanged."""
        for name in ("CV6", "CV7", "CV10", "CV12"):
            spec = CONV_LAYERS[name]
            s32 = memory_bound_share(TESLA_P100, spec, "im2col", fp16=False)
            s16 = memory_bound_share(TESLA_P100, spec, "im2col", fp16=True)
            assert s16 == pytest.approx(s32, abs=0.05), name

    def test_memory_share_grows_when_only_math_accelerates(self):
        """'with compute efficiency being addressed ... the performance
        impact of the memory efficiency is likely to become more important'
        — FP16 arithmetic over FP32 storage (early mixed precision) shifts
        every conv layer toward the memory side of the roofline."""
        for name in ("CV6", "CV7", "CV10", "CV12"):
            spec = CONV_LAYERS[name]
            s32 = memory_bound_share(TESLA_P100, spec, "im2col", fp16=False)
            s16 = memory_bound_share(
                TESLA_P100, spec, "im2col", fp16=True, math_only=True
            )
            assert s16 > s32, name

    def test_fp16_speedups_are_meaningful(self):
        rows = compare_layouts_fp16(TESLA_P100)
        assert all(1.2 < r.fp16_speedup_preferred < 2.3 for r in rows)
