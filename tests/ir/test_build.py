"""Lowering NetworkDef -> IR and shape inference over the graph."""

import pytest

from repro.framework.net import Net, resolve
from repro.framework.netdef import (
    ConcatDef,
    ConvDef,
    FCDef,
    NetworkDef,
    PoolDef,
    SoftmaxDef,
)
from repro.ir import (
    NodeKind,
    graph_from_plan_nodes,
    infer_shapes,
    iter_edges,
    lower_netdef,
)
from repro.networks import build_network


class TestLowerChain:
    def test_lenet_wiring_and_kinds(self):
        graph = lower_netdef(build_network("lenet"))
        names = [n.name for n in graph]
        assert names == ["conv1", "pool1", "conv2", "pool2", "fc1", "fc2", "prob"]
        assert graph["conv1"].inputs == ()
        assert graph["pool1"].inputs == ("conv1",)
        assert graph["prob"].kind is NodeKind.CLASSIFIER
        assert graph.is_chain()

    def test_shapes_match_framework_resolve(self):
        net = build_network("alexnet")
        graph = infer_shapes(lower_netdef(net))
        layers = resolve(net)
        for node, layer in zip(graph, layers):
            assert node.name == layer.name
            assert node.in_dims == layer.in_dims
            assert node.out_dims == layer.out_dims
            assert node.out_features == layer.out_features


class TestLowerBranching:
    def test_inception_concat_shapes(self):
        graph = infer_shapes(lower_netdef(build_network("inception")))
        assert not graph.is_chain()
        concat = graph["concat"]
        assert concat.kind is NodeKind.CONCAT
        assert concat.inputs == ("b1", "b2b", "b3b", "b4")
        # channels sum across branches; N/H/W match the branches
        n, c, h, w = concat.out_dims
        assert c == 64 + 128 + 32 + 32
        for src in concat.inputs:
            bn, bc, bh, bw = graph[src].out_dims
            assert (bn, bh, bw) == (n, h, w)

    def test_concat_spatial_mismatch_rejected(self):
        net = NetworkDef(
            "bad", 4, 3, 16, 16,
            layers=(
                ConvDef("a", co=8, f=3, pad=1),
                ConvDef("b", co=8, f=3, bottom="a"),  # 14x14, a is 16x16
                ConcatDef("cat", inputs=("a", "b")),
                SoftmaxDef("prob", bottom="cat"),
            ),
        )
        with pytest.raises(ValueError, match="cat"):
            infer_shapes(lower_netdef(net))

    def test_conv_after_flattening_error_preserved(self):
        net = NetworkDef(
            "flat", 4, 3, 8, 8,
            layers=(
                FCDef("fc", out_features=10),
                ConvDef("conv", co=4, f=3),
            ),
        )
        with pytest.raises(ValueError, match="convolution after flattening"):
            infer_shapes(lower_netdef(net))


class TestPlanNodeAdapter:
    def test_graph_from_plan_nodes_round_trip(self, device):
        net = Net(build_network("lenet"))
        nodes = net.planner_nodes(device)
        graph = graph_from_plan_nodes(nodes)
        assert graph.is_chain()
        assert [n.name for n in graph] == [n.name for n in nodes]
        # out_dims back-filled from the successor's in_dims
        for (a, b) in zip(graph.topological(), graph.topological()[1:]):
            if b.in_dims is not None:
                assert a.out_dims == b.in_dims

    def test_iter_edges(self):
        graph = lower_netdef(build_network("inception"))
        edges = [
            (src.name if src else None, dst.name)
            for src, dst in iter_edges(graph)
        ]
        assert (None, "conv1") in edges  # the network-input edge
        assert ("pool2", "b1") in edges and ("b3b", "concat") in edges
        # one edge per (producer, consumer) pair
        assert len(edges) == len(set(edges))
