"""Structural tests for the network-graph IR."""

import pytest

from repro.ir.graph import (
    EdgeTransform,
    Graph,
    GraphError,
    GraphNode,
    NodeKind,
)
from repro.tensors import CHWN, NCHW


def chain_graph() -> Graph:
    g = Graph("tiny", batch=4, in_channels=3, in_h=8, in_w=8)
    g.add(GraphNode("conv1", NodeKind.CONV))
    g.add(GraphNode("pool1", NodeKind.POOL, inputs=("conv1",)))
    g.add(GraphNode("fc", NodeKind.CLASSIFIER, inputs=("pool1",)))
    return g


def branch_graph() -> Graph:
    g = Graph("branchy", batch=4, in_channels=3, in_h=8, in_w=8)
    g.add(GraphNode("stem", NodeKind.CONV))
    g.add(GraphNode("a", NodeKind.CONV, inputs=("stem",)))
    g.add(GraphNode("b", NodeKind.CONV, inputs=("stem",)))
    g.add(GraphNode("join", NodeKind.CONCAT, inputs=("a", "b")))
    return g


class TestNodeKind:
    def test_layout_bearing(self):
        assert NodeKind.CONV.layout_bearing and NodeKind.POOL.layout_bearing
        assert not NodeKind.ELEMENTWISE.layout_bearing
        assert not NodeKind.CONCAT.layout_bearing

    def test_layout_agnostic(self):
        assert NodeKind.ELEMENTWISE.layout_agnostic
        assert NodeKind.CONCAT.layout_agnostic
        assert not NodeKind.CONV.layout_agnostic
        assert not NodeKind.CLASSIFIER.layout_agnostic


class TestGraphStructure:
    def test_add_rejects_forward_reference(self):
        g = Graph("bad")
        with pytest.raises(GraphError, match="not a node added before it"):
            g.add(GraphNode("late", NodeKind.CONV, inputs=("missing",)))

    def test_add_rejects_duplicate_name(self):
        g = Graph("dup")
        g.add(GraphNode("x", NodeKind.CONV))
        with pytest.raises(GraphError, match="duplicate node name"):
            g.add(GraphNode("x", NodeKind.POOL))

    def test_producers_and_consumers(self):
        g = branch_graph()
        assert [n.name for n in g.producers("join")] == ["a", "b"]
        assert [n.name for n in g.consumers("stem")] == ["a", "b"]
        assert g.consumers("join") == ()

    def test_topological_is_insertion_order(self):
        g = branch_graph()
        assert [n.name for n in g.topological()] == ["stem", "a", "b", "join"]

    def test_chain_detection(self):
        assert chain_graph().is_chain()
        assert not branch_graph().is_chain()

    def test_validate_concat_arity(self):
        g = Graph("one-armed")
        g.add(GraphNode("x", NodeKind.CONV))
        g.add(GraphNode("cat", NodeKind.CONCAT, inputs=("x",)))
        with pytest.raises(GraphError, match="at least two inputs"):
            g.validate()

    def test_dunder_views(self):
        g = chain_graph()
        assert len(g) == 3
        assert "conv1" in g and "nope" not in g
        assert g["pool1"].kind is NodeKind.POOL
        assert [n.name for n in g] == ["conv1", "pool1", "fc"]


class TestSerialization:
    def test_round_trip_preserves_annotations(self):
        g = branch_graph()
        g["a"].layout = CHWN
        g["a"].implementation = "direct"
        g["a"].layer_ms = 1.25
        g["a"].in_dims = (4, 16, 8, 8)
        g["a"].out_dims = (4, 8, 8, 8)
        g["join"].layout = NCHW
        g["join"].fixed_ms = 0.5
        g["join"].transforms = (
            EdgeTransform(src="a", from_layout=CHWN, to_layout=NCHW, ms=0.1),
        )
        g["join"].fused = "softmax-fuse"

        back = Graph.from_json(g.to_json())
        assert [n.name for n in back] == [n.name for n in g]
        assert back.in_dims == g.in_dims
        a = back["a"]
        assert a.layout == CHWN and a.implementation == "direct"
        assert a.layer_ms == 1.25
        assert a.in_dims == (4, 16, 8, 8) and a.out_dims == (4, 8, 8, 8)
        join = back["join"]
        assert join.transforms == g["join"].transforms
        assert join.transform_ms == pytest.approx(0.1)
        assert join.fused == "softmax-fuse"

    def test_round_trip_empty_annotations(self):
        g = chain_graph()
        back = Graph.from_json(g.to_json())
        assert back["conv1"].layout is None
        assert back["fc"].inputs == ("pool1",)

    def test_summary_mentions_wiring(self):
        text = branch_graph().summary()
        assert "a,b" in text and "(input)" in text
