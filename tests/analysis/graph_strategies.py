"""Shared hypothesis strategies for random annotated IR graphs.

``annotated_graphs()`` draws coherent DAGs: every edge's shape facts
agree, every layout disagreement carries a matching transform, and no
node reads a buffer outside its interval — so the dataflow verifier must
be ERROR-silent on every draw.  Corruption tests then break one property
at a time and assert the matching D-rule fires.  The module is imported
by both the lint-graph and dataflow test suites (one generator, not two
slightly different ones).
"""

from hypothesis import strategies as st

from repro.ir.graph import EdgeTransform, Graph, GraphNode, NodeKind
from repro.tensors import CHWN, NCHW

LAYOUTS = (CHWN, NCHW)


@st.composite
def annotated_graphs(draw, min_nodes: int = 2, max_nodes: int = 9) -> Graph:
    """A random coherent DAG with shape, layout and transform annotations.

    Nodes keep a constant H/W so any pair of them is concat-compatible;
    layout-agnostic nodes inherit their first producer's layout (the same
    policy the pipeline's elimination pass converges to, so no
    inverse-pair warnings are baked in by construction).
    """
    batch = draw(st.sampled_from([2, 4]))
    hw = draw(st.sampled_from([4, 8]))
    channels = draw(st.integers(min_value=1, max_value=4))
    g = Graph("rand", batch=batch, in_channels=channels, in_h=hw, in_w=hw)

    out_dims: dict[str, tuple[int, int, int, int]] = {}
    layout_of: dict[str, object] = {}

    first_layout = draw(st.sampled_from(LAYOUTS))
    entry_out = (batch, draw(st.integers(1, 6)), hw, hw)
    g.add(
        GraphNode(
            "n0",
            NodeKind.CONV,
            in_dims=(batch, channels, hw, hw),
            out_dims=entry_out,
            layout=first_layout,
        )
    )
    out_dims["n0"] = entry_out
    layout_of["n0"] = first_layout

    n_nodes = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    for i in range(1, n_nodes):
        name = f"n{i}"
        existing = sorted(out_dims)
        kind = draw(
            st.sampled_from(
                [NodeKind.CONV, NodeKind.POOL, NodeKind.ELEMENTWISE]
                + ([NodeKind.CONCAT] if len(existing) >= 2 else [])
            )
        )
        if kind is NodeKind.CONCAT:
            k = draw(st.integers(2, min(3, len(existing))))
            inputs = tuple(
                draw(
                    st.lists(
                        st.sampled_from(existing),
                        min_size=k,
                        max_size=k,
                        unique=True,
                    )
                )
            )
            dims = (
                batch,
                sum(out_dims[s][1] for s in inputs),
                hw,
                hw,
            )
            in_dims = out_dims[inputs[0]]
            layout = layout_of[inputs[0]]  # inherit: no baked-in islands
        else:
            src = draw(st.sampled_from(existing))
            inputs = (src,)
            in_dims = out_dims[src]
            if kind is NodeKind.CONV:
                dims = (batch, draw(st.integers(1, 6)), hw, hw)
                layout = draw(st.sampled_from(LAYOUTS))
            else:
                dims = in_dims
                layout = (
                    draw(st.sampled_from(LAYOUTS))
                    if kind is NodeKind.POOL
                    else layout_of[src]
                )
        g.add(
            GraphNode(
                name,
                kind,
                inputs=inputs,
                in_dims=in_dims,
                out_dims=dims,
                layout=layout,
            )
        )
        out_dims[name] = dims
        layout_of[name] = layout

    # every layout disagreement gets the transform the pipeline would insert
    for node in g:
        transforms = []
        for src in node.inputs:
            if layout_of[src] != layout_of[node.name]:
                transforms.append(
                    EdgeTransform(
                        src=src,
                        from_layout=layout_of[src],
                        to_layout=layout_of[node.name],
                        ms=0.05,
                    )
                )
        if transforms:
            node.transforms = tuple(transforms)
    return g
