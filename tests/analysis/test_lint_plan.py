"""L0xx rules: layout-plan linting, on planner output and hand-broken plans."""

from repro.analysis import Severity, lint_plan
from repro.core import plan_optimal, plan_with_heuristic
from repro.core.planner import LayoutPlan, NodeKind, PlanNode, PlanStep
from repro.framework import Net
from repro.gpusim import TITAN_BLACK
from repro.layers import ConvSpec
from repro.networks import build_network
from repro.tensors import CHWN, NCHW


def step(name, kind, layout, impl, transform_ms=0.0, transformed_from=None):
    return PlanStep(
        name=name,
        kind=kind,
        layout=layout,
        implementation=impl,
        layer_ms=1.0,
        transform_ms=transform_ms,
        transformed_from=transformed_from,
    )


def plan_of(*steps):
    return LayoutPlan(steps=tuple(steps), device=TITAN_BLACK.name, strategy="test")


def ids_of(diagnostics):
    return {d.rule_id for d in diagnostics}


class TestPlannerPlansAreClean:
    def test_bundled_networks_have_no_errors(self, device):
        for name in ("lenet", "alexnet", "vgg", "zfnet"):
            net = Net(build_network(name))
            nodes = net.planner_nodes(device)
            plan = plan_with_heuristic(device, nodes)
            diags = lint_plan(device, plan, nodes, network=name)
            errors = [d for d in diags if d.severity is Severity.ERROR]
            assert errors == [], f"{name}: {[d.format() for d in errors]}"

    def test_optimal_plans_have_no_errors(self, device):
        # The optimal DP bills boundary transforms on layout-agnostic LRN
        # steps (transformed_to records the target); the chain walker must
        # follow them instead of flagging a phantom mismatch.
        for name in ("alexnet", "zfnet"):
            net = Net(build_network(name))
            nodes = net.planner_nodes(device)
            plan = plan_optimal(device, nodes)
            diags = lint_plan(device, plan, nodes, network=name)
            errors = [d for d in diags if d.severity is Severity.ERROR]
            assert errors == [], f"{name}: {[d.format() for d in errors]}"


class TestLayoutMismatch:
    def test_l001_missing_transform(self):
        plan = plan_of(
            step("conv1", NodeKind.CONV, CHWN, "direct"),
            step("conv2", NodeKind.CONV, NCHW, "im2col"),  # no transform recorded
        )
        (d,) = [d for d in lint_plan(TITAN_BLACK, plan) if d.rule_id == "L001"]
        assert d.severity is Severity.ERROR
        assert d.subject == "conv2"
        assert d.detail["producer"] == "CHWN"

    def test_l001_wrong_transform_source(self):
        plan = plan_of(
            step("conv1", NodeKind.CONV, CHWN, "direct"),
            step(
                "conv2", NodeKind.CONV, NCHW, "im2col",
                transform_ms=0.1, transformed_from=NCHW,  # claims NCHW input
            ),
        )
        (d,) = [d for d in lint_plan(TITAN_BLACK, plan) if d.rule_id == "L001"]
        assert "does not match" in d.message

    def test_explicit_transform_is_clean(self):
        plan = plan_of(
            step("conv1", NodeKind.CONV, CHWN, "direct"),
            step(
                "conv2", NodeKind.CONV, NCHW, "im2col",
                transform_ms=0.1, transformed_from=CHWN,
            ),
        )
        assert "L001" not in ids_of(lint_plan(TITAN_BLACK, plan))

    def test_transform_hosted_on_layout_agnostic_step(self):
        # conv(NCHW) -> norm hosting the NCHW->CHWN transform -> pool(CHWN):
        # the norm's own layout is None but transformed_to carries the target.
        plan = plan_of(
            step("conv1", NodeKind.CONV, NCHW, "im2col"),
            PlanStep(
                name="norm1",
                kind=NodeKind.ELEMENTWISE,
                layout=None,
                implementation="elementwise",
                layer_ms=0.1,
                transform_ms=0.5,
                transformed_from=NCHW,
                transformed_to=CHWN,
            ),
            step("pool1", NodeKind.POOL, CHWN, "chwn"),
        )
        assert "L001" not in ids_of(lint_plan(TITAN_BLACK, plan))

    def test_layout_agnostic_step_without_transform_still_flags(self):
        plan = plan_of(
            step("conv1", NodeKind.CONV, NCHW, "im2col"),
            PlanStep(
                name="norm1",
                kind=NodeKind.ELEMENTWISE,
                layout=None,
                implementation="elementwise",
                layer_ms=0.1,
            ),
            step("pool1", NodeKind.POOL, CHWN, "chwn"),
        )
        (d,) = [d for d in lint_plan(TITAN_BLACK, plan) if d.rule_id == "L001"]
        assert d.subject == "pool1"


class TestRedundantTransforms:
    def test_l002_single_layer_island(self):
        plan = plan_of(
            step("conv1", NodeKind.CONV, NCHW, "im2col"),
            step(
                "pool1", NodeKind.POOL, CHWN, "chwn",
                transform_ms=0.2, transformed_from=NCHW,
            ),
            step(
                "conv2", NodeKind.CONV, NCHW, "im2col",
                transform_ms=0.2, transformed_from=CHWN,
            ),
        )
        (d,) = [d for d in lint_plan(TITAN_BLACK, plan) if d.rule_id == "L002"]
        assert d.severity is Severity.WARNING
        assert d.subject == "pool1"
        assert d.detail["island_layout"] == "CHWN"

    def test_no_l002_for_persistent_switch(self):
        plan = plan_of(
            step("conv1", NodeKind.CONV, NCHW, "im2col"),
            step(
                "conv2", NodeKind.CONV, CHWN, "direct",
                transform_ms=0.2, transformed_from=NCHW,
            ),
            step("conv3", NodeKind.CONV, CHWN, "direct"),
        )
        assert "L002" not in ids_of(lint_plan(TITAN_BLACK, plan))


class TestThresholdAmbiguity:
    def test_l003_fires_at_nt_boundary(self, device):
        # C=64 >= Ct=32, N=128 == Nt: N-1 flips the layout choice to NCHW.
        spec = ConvSpec(n=128, ci=64, h=14, w=14, co=64, fh=3, fw=3, pad=1)
        node = PlanNode("convA", NodeKind.CONV, spec=spec)
        plan = plan_of(step("convA", NodeKind.CONV, CHWN, "direct"))
        diags = [
            d
            for d in lint_plan(device, plan, nodes=[node])
            if d.rule_id == "L003"
        ]
        (d,) = diags
        assert d.severity is Severity.WARNING
        assert d.detail["n_distance"] == 0

    def test_l003_silent_far_from_thresholds(self, device):
        # C=512, N=64: solidly NCHW on Titan Black; +-1 changes nothing.
        spec = ConvSpec(n=64, ci=512, h=14, w=14, co=512, fh=3, fw=3, pad=1)
        node = PlanNode("convB", NodeKind.CONV, spec=spec)
        plan = plan_of(step("convB", NodeKind.CONV, NCHW, "im2col"))
        assert "L003" not in ids_of(lint_plan(device, plan, nodes=[node]))

    def test_l003_needs_nodes(self, device):
        plan = plan_of(step("convA", NodeKind.CONV, CHWN, "direct"))
        assert "L003" not in ids_of(lint_plan(device, plan))


class TestImplementationFamilies:
    def test_l005_cross_family_conv(self):
        plan = plan_of(step("conv1", NodeKind.CONV, NCHW, "direct"))
        (d,) = [d for d in lint_plan(TITAN_BLACK, plan) if d.rule_id == "L005"]
        assert d.severity is Severity.ERROR
        assert d.detail["implementation"] == "direct"

    def test_l005_cross_family_pool(self):
        plan = plan_of(step("pool1", NodeKind.POOL, NCHW, "chwn"))
        assert "L005" in ids_of(lint_plan(TITAN_BLACK, plan))

    def test_matching_families_clean(self):
        plan = plan_of(
            step("conv1", NodeKind.CONV, CHWN, "direct"),
            step("pool1", NodeKind.POOL, CHWN, "chwn-coarsened"),
        )
        assert "L005" not in ids_of(lint_plan(TITAN_BLACK, plan))


class TestChainCoverage:
    NODES = [
        PlanNode("conv1", NodeKind.CONV, spec=None),
        PlanNode("pool1", NodeKind.POOL, spec=None),
    ]

    def test_l006_missing_step(self):
        plan = plan_of(step("conv1", NodeKind.CONV, CHWN, "direct"))
        (d,) = [
            d
            for d in lint_plan(TITAN_BLACK, plan, nodes=self.NODES)
            if d.rule_id == "L006"
        ]
        assert "pool1" in d.detail["missing"]

    def test_l006_reordered_steps(self):
        plan = plan_of(
            step("pool1", NodeKind.POOL, CHWN, "chwn"),
            step("conv1", NodeKind.CONV, CHWN, "direct"),
        )
        (d,) = [
            d
            for d in lint_plan(TITAN_BLACK, plan, nodes=self.NODES)
            if d.rule_id == "L006"
        ]
        assert "reordered" in d.message

    def test_matching_chain_clean(self):
        plan = plan_of(
            step("conv1", NodeKind.CONV, CHWN, "direct"),
            step("pool1", NodeKind.POOL, CHWN, "chwn"),
        )
        assert "L006" not in ids_of(
            lint_plan(TITAN_BLACK, plan, nodes=self.NODES)
        )


class TestPoolLayoutNote:
    def test_l007_nchw_pool_is_info(self):
        plan = plan_of(step("pool1", NodeKind.POOL, NCHW, "nchw-linear"))
        (d,) = [d for d in lint_plan(TITAN_BLACK, plan) if d.rule_id == "L007"]
        assert d.severity is Severity.INFO

    def test_chwn_pool_silent(self):
        plan = plan_of(step("pool1", NodeKind.POOL, CHWN, "chwn"))
        assert "L007" not in ids_of(lint_plan(TITAN_BLACK, plan))
