"""``verify_graph``: every corruption class maps to a named D-rule, and
coherent graphs — random or pipeline-produced — are ERROR-silent."""

from hypothesis import given, settings

from repro.analysis import Severity, lint_graph, verify_graph
from repro.analysis.lint import LintConfig
from repro.core.pipeline import PipelineOptions, plan_network
from repro.ir.graph import EdgeTransform, Graph, GraphNode, NodeKind
from repro.networks import NETWORK_BUILDERS, build_network
from repro.tensors import CHWN, NCHW

from tests.analysis.graph_strategies import annotated_graphs


def ids_of(diagnostics):
    return {d.rule_id for d in diagnostics}


def chain_graph() -> Graph:
    """A small coherent conv->pool->elementwise chain with full facts."""
    g = Graph("chain", batch=2, in_channels=3, in_h=8, in_w=8)
    g.add(
        GraphNode(
            "conv",
            NodeKind.CONV,
            in_dims=(2, 3, 8, 8),
            out_dims=(2, 4, 8, 8),
            layout=CHWN,
        )
    )
    g.add(
        GraphNode(
            "pool",
            NodeKind.POOL,
            inputs=("conv",),
            in_dims=(2, 4, 8, 8),
            out_dims=(2, 4, 8, 8),
            layout=CHWN,
        )
    )
    g.add(
        GraphNode(
            "relu",
            NodeKind.ELEMENTWISE,
            inputs=("pool",),
            in_dims=(2, 4, 8, 8),
            out_dims=(2, 4, 8, 8),
            layout=CHWN,
        )
    )
    return g


class TestCorruptions:
    """Each deliberately corrupted graph is caught by its named rule."""

    def test_clean_chain_is_silent(self):
        assert verify_graph(chain_graph()) == []

    def test_bad_shape_edge_is_d001(self):
        g = chain_graph()
        g["conv"].out_dims = (2, 9, 8, 8)  # pool still expects 4 channels
        diags = verify_graph(g)
        assert "D001" in ids_of(diags)
        assert any(d.subject == "pool" for d in diags if d.rule_id == "D001")

    def test_dangling_edge_is_d002(self):
        g = chain_graph()
        g["pool"].inputs = ("ghost",)
        diags = verify_graph(g)
        assert "D002" in ids_of(diags)
        # downstream analyses stay quiet instead of crashing on the hole
        assert all(d.severity is not Severity.ERROR or d.rule_id == "D002"
                   for d in diags)

    def test_missing_transform_is_d003(self):
        g = chain_graph()
        g["pool"].layout = NCHW  # conv delivers CHWN, no transform recorded
        diags = verify_graph(g)
        assert "D003" in ids_of(diags)

    def test_layout_mismatched_transform_is_d004(self):
        g = chain_graph()
        g["pool"].layout = NCHW
        g["pool"].transforms = (
            # claims to read NCHW, but conv actually delivers CHWN
            EdgeTransform(src="conv", from_layout=NCHW, to_layout=NCHW, ms=0.1),
        )
        diags = verify_graph(g)
        assert "D004" in ids_of(diags)

    def test_uneliminated_inverse_pair_is_d005(self):
        g = chain_graph()
        # relu (layout-agnostic) labeled NCHW between CHWN-only neighbours:
        # relabeling it cancels both transforms at zero cost
        g.add(
            GraphNode(
                "tail",
                NodeKind.POOL,
                inputs=("relu",),
                in_dims=(2, 4, 8, 8),
                out_dims=(2, 4, 8, 8),
                layout=CHWN,
            )
        )
        g["relu"].layout = NCHW
        g["relu"].transforms = (
            EdgeTransform(src="pool", from_layout=CHWN, to_layout=NCHW, ms=0.1),
        )
        g["tail"].transforms = (
            EdgeTransform(src="relu", from_layout=NCHW, to_layout=CHWN, ms=0.1),
        )
        diags = verify_graph(g)
        d005 = [d for d in diags if d.rule_id == "D005"]
        assert d005 and d005[0].subject == "relu"
        assert d005[0].severity is Severity.WARNING

    def test_use_before_def_interval_is_d006(self):
        g = chain_graph()
        # a pass reordered the schedule: conv now reads pool's buffer,
        # which is defined later — outside any liveness interval
        g["conv"].inputs = ("pool",)
        diags = verify_graph(g)
        assert "D006" in ids_of(diags)

    def test_double_count_edge_is_d007(self):
        g = chain_graph()
        g["relu"].inputs = ("pool", "pool")
        diags = verify_graph(g)
        assert "D007" in ids_of(diags)

    def test_select_runs_only_named_rules(self):
        g = chain_graph()
        g["pool"].inputs = ("ghost",)          # D002
        g["relu"].inputs = ("pool", "pool")    # D007
        only = verify_graph(g, config=LintConfig(selected=frozenset({"D007"})))
        assert ids_of(only) == {"D007"}


class TestCoherentGraphsAreSilent:
    @given(annotated_graphs())
    @settings(max_examples=40, deadline=None)
    def test_random_coherent_dags_have_no_errors(self, graph):
        errors = [
            d for d in verify_graph(graph) if d.severity is Severity.ERROR
        ]
        assert errors == [], [d.format() for d in errors]

    def test_every_bundled_network_verifies(self, device):
        for name in sorted(NETWORK_BUILDERS):
            result = plan_network(
                device,
                build_network(name),
                PipelineOptions(strategy="optimal", verify=True),
            )
            diags = verify_graph(result.graph, device, network=name)
            assert diags == [], [d.format() for d in diags]

    def test_lint_graph_is_the_same_check(self):
        g = chain_graph()
        g["pool"].inputs = ("ghost",)
        assert ids_of(lint_graph(g)) == ids_of(verify_graph(g))
