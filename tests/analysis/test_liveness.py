"""Buffer liveness: intervals, the footprint curve, and the golden
inequality against the conservative Caffe-style model."""

import pytest

from repro.analysis.dataflow import (
    buffer_intervals,
    liveness_footprint,
)
from repro.analysis.dataflow.liveness import INPUT_BUFFER
from repro.core.pipeline import PipelineOptions, plan_network
from repro.framework import Net, network_footprint
from repro.ir.graph import Graph, GraphNode, NodeKind
from repro.networks import NETWORK_BUILDERS, build_network
from repro.tensors import CHWN

CHAIN_NETWORKS = [
    name
    for name in sorted(NETWORK_BUILDERS)
    if Net(build_network(name)).is_chain
]


def small_chain() -> Graph:
    g = Graph("chain", batch=2, in_channels=3, in_h=8, in_w=8)
    dims = (2, 3, 8, 8)
    g.add(GraphNode("a", NodeKind.CONV, in_dims=dims, out_dims=(2, 4, 8, 8),
                    layout=CHWN))
    g.add(GraphNode("b", NodeKind.POOL, inputs=("a",), in_dims=(2, 4, 8, 8),
                    out_dims=(2, 4, 8, 8), layout=CHWN))
    g.add(GraphNode("c", NodeKind.ELEMENTWISE, inputs=("b",),
                    in_dims=(2, 4, 8, 8), out_dims=(2, 4, 8, 8), layout=CHWN))
    return g


class TestIntervals:
    def test_chain_intervals_are_def_to_last_use(self):
        iv = buffer_intervals(small_chain())
        assert (iv["a"].start, iv["a"].end) == (0, 1)  # defined by a, read by b
        assert (iv["b"].start, iv["b"].end) == (1, 2)
        assert (iv["c"].start, iv["c"].end) == (2, 2)  # no consumer
        assert (iv[INPUT_BUFFER].start, iv[INPUT_BUFFER].end) == (-1, 0)

    def test_fanout_extends_the_interval(self):
        g = small_chain()
        g.add(GraphNode("d", NodeKind.ELEMENTWISE, inputs=("a",),
                        in_dims=(2, 4, 8, 8), out_dims=(2, 4, 8, 8),
                        layout=CHWN))
        iv = buffer_intervals(g)
        assert iv["a"].end == 3  # the late consumer keeps it alive

    def test_buffer_bytes_match_dims(self):
        iv = buffer_intervals(small_chain())
        assert iv["a"].nbytes == 4 * 2 * 4 * 8 * 8
        assert iv[INPUT_BUFFER].nbytes == 4 * 2 * 3 * 8 * 8


class TestFootprintCurve:
    def test_curve_covers_every_step_and_peak_is_max(self):
        fp = liveness_footprint(small_chain())
        assert [name for name, _ in fp.curve] == ["a", "b", "c"]
        assert fp.peak_bytes == max(live for _, live in fp.curve)
        assert fp.peak_step in {"a", "b", "c"}

    def test_training_pins_activations(self):
        infer = liveness_footprint(small_chain(), training=False)
        train = liveness_footprint(small_chain(), training=True)
        assert train.peak_bytes > infer.peak_bytes
        # under training every interval reaches the end of the schedule
        assert all(
            iv.end == len(small_chain().nodes) - 1
            for iv in train.intervals.values()
        )

    def test_summary_renders_bar_chart(self):
        text = liveness_footprint(small_chain()).summary()
        assert "liveness peak" in text and "#" in text


class TestGoldenInequality:
    """The interval model can only improve on the conservative model."""

    @pytest.mark.parametrize("name", CHAIN_NETWORKS)
    @pytest.mark.parametrize("training", [False, True])
    def test_liveness_at_most_conservative(self, device, name, training):
        net = Net(build_network(name))
        result = plan_network(
            device, net.definition, PipelineOptions(strategy="optimal")
        )
        conservative = network_footprint(net, result.plan, training=training)
        live = liveness_footprint(result.graph, training=training)
        assert live.peak_bytes <= conservative.peak_bytes, name

    def test_inference_strictly_cheaper_on_alexnet(self, device):
        """Freeing after last use must beat keep-everything at inference.
        (Heuristic plan: the optimal one picks FFT convs whose workspace
        dominates both models and narrows the gap.)"""
        net = Net(build_network("alexnet"))
        result = plan_network(
            device, net.definition, PipelineOptions(strategy="heuristic")
        )
        conservative = network_footprint(net, result.plan, training=False)
        live = liveness_footprint(result.graph, training=False)
        assert live.peak_bytes < 0.8 * conservative.peak_bytes
