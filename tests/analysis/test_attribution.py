"""Gain attribution (paper Section VI.C's 72%/28% decomposition)."""

import pytest

from repro.analysis import attribute_gains
from repro.framework import Net
from repro.networks import build_network


@pytest.fixture(scope="module")
def alexnet_attr():
    from repro.gpusim import TITAN_BLACK

    return attribute_gains(Net(build_network("alexnet")), TITAN_BLACK)


class TestAttribution:
    def test_stages_are_ordered(self, alexnet_attr):
        """Each optimization family can only help: baseline >= layout-only
        >= full Opt."""
        a = alexnet_attr
        assert a.baseline_ms >= a.layout_only_ms >= a.full_opt_ms

    def test_shares_partition_the_saving(self, alexnet_attr):
        a = alexnet_attr
        assert a.layout_share + a.offchip_share == pytest.approx(1.0)
        assert a.layout_share >= 0 and a.offchip_share >= 0

    def test_layout_is_the_dominant_contribution(self, alexnet_attr):
        """Paper: 'achieving the flexible data layout ... is the most
        critical optimization, contributing a 72% improvement'.  Our model
        attributes even more to layout (the conv layers dominate harder),
        but the ordering is the claim."""
        assert alexnet_attr.layout_share > 0.6
        assert alexnet_attr.layout_share > alexnet_attr.offchip_share

    def test_total_saving_positive_everywhere(self, device):
        for name in ("lenet", "cifar", "zfnet"):
            a = attribute_gains(Net(build_network(name)), device)
            assert a.total_saved_ms > 0, name

    def test_offchip_family_contributes_on_pooling_heavy_nets(self, device):
        """Networks with overlapped pooling see a real (if small) off-chip
        contribution."""
        a = attribute_gains(Net(build_network("cifar")), device)
        assert a.layout_only_ms > a.full_opt_ms  # coarsening+fusion helped

    def test_zero_saving_degenerates_gracefully(self):
        from repro.analysis import GainAttribution

        a = GainAttribution("x", baseline_ms=1.0, layout_only_ms=1.0, full_opt_ms=1.0)
        assert a.layout_share == 0.0
        assert a.offchip_share == 0.0
