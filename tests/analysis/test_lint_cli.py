"""The ``repro lint`` subcommand: output formats, rule selection, exits."""

import json

from repro.cli import main


class TestExitCodes:
    def test_bundled_networks_report_zero_errors(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_strict_promotes_warnings(self, capsys):
        # cifar's conv2 sits exactly on the Nt threshold -> L003 warning.
        assert main(["lint", "--network", "cifar"]) == 0
        assert main(["lint", "--network", "cifar", "--strict"]) == 1

    def test_unknown_rule_is_usage_error(self, capsys):
        assert main(["lint", "--select", "Q999"]) == 2
        assert "unknown rule" in capsys.readouterr().err


class TestRuleSelection:
    def test_disable_silences_a_rule(self, capsys):
        main(["lint", "--network", "cifar"])
        assert "L003" in capsys.readouterr().out
        main(["lint", "--network", "cifar", "--disable", "L003"])
        assert "L003" not in capsys.readouterr().out

    def test_select_runs_only_those_rules(self, capsys):
        main(["lint", "--network", "zfnet", "--select", "L002"])
        out = capsys.readouterr().out
        assert "L002" in out
        assert "L003" not in out

    def test_list_rules_prints_catalog(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("N001", "L001", "K001"):
            assert rule_id in out


class TestJsonFormat:
    def test_json_payload_shape(self, capsys):
        assert main(["lint", "--network", "lenet", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["failed"] is False
        (report,) = payload["reports"]
        assert report["target"] == "lenet"
        assert set(report["counts"]) == {"error", "warning", "info"}
        for diag in report["diagnostics"]:
            assert {"rule", "severity", "subject", "message"} <= set(diag)

    def test_json_covers_all_networks_by_default(self, capsys):
        assert main(["lint", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        targets = {r["target"] for r in payload["reports"]}
        assert {"lenet", "alexnet", "vgg", "zfnet", "cifar"} <= targets


class TestNetdefFile:
    def test_broken_file_exits_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "bad.netdef"
        bad.write_text(
            "network bad batch=64 input=3x32x32\nconv c1 co=8 f=3 stride=0\n"
        )
        assert main(["lint", "--netdef", str(bad)]) == 1
        assert "N000" in capsys.readouterr().out

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        good = tmp_path / "ok.netdef"
        good.write_text(
            "network ok batch=64 input=3x32x32\n"
            "conv conv1 co=32 f=5 pad=2\n"
            "fc fc1 out=10\n"
            "softmax softmax\n"
        )
        assert main(["lint", "--netdef", str(good)]) == 0

    def test_missing_file_is_usage_error(self, capsys):
        assert main(["lint", "--netdef", "/nonexistent/x.netdef"]) == 2
