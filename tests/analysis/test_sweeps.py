"""Sensitivity-analysis toolkit."""

import pytest

from repro.analysis import crossovers, sweep_conv, sweep_pool, sweep_softmax
from repro.layers import PoolSpec, SoftmaxSpec
from repro.networks import CONV_LAYERS


class TestConvSweeps:
    def test_fig4a_as_a_sweep(self, device):
        """The paper's Fig. 4a is one call: sweep N on CONV7."""
        result = sweep_conv(
            device, CONV_LAYERS["CV7"], "n", (16, 32, 64, 128, 256)
        )
        assert result.winner(32) == "im2col"
        assert result.winner(256) == "direct"
        xs = crossovers(result)
        assert len(xs) == 1
        assert xs[0][0] == 128  # first value where direct wins

    def test_fig4b_as_a_sweep(self, device):
        result = sweep_conv(
            device, CONV_LAYERS["CV7"], "ci", (16, 32, 64, 128, 256)
        )
        assert result.winner(16) == "direct"
        assert result.winner(256) == "im2col"

    def test_unsupported_implementations_become_none(self, device):
        result = sweep_conv(
            device, CONV_LAYERS["CV6"], "n", (32, 64), implementations=("fft",)
        )
        # CV6 is stride-2: FFT cannot run at any batch size.
        assert all(p.time_ms is None for p in result.points)
        with pytest.raises(ValueError):
            result.winner(32)

    def test_spatial_sweep_keeps_square_shapes(self, device):
        result = sweep_conv(
            device, CONV_LAYERS["CV7"], "h", (13, 27), implementations=("im2col",)
        )
        # doubling both spatial extents roughly quadruples the time
        t_small = result.time(13, "im2col")
        t_big = result.time(27, "im2col")
        assert 2.5 < t_big / t_small < 8

    def test_unknown_dimension(self, device):
        with pytest.raises(ValueError, match="dimension"):
            sweep_conv(device, CONV_LAYERS["CV7"], "depth", (1, 2))


class TestPoolAndSoftmaxSweeps:
    def test_chwn_wins_pooling_at_every_channel_count(self, device):
        base = PoolSpec(n=128, c=32, h=27, w=27, window=3, stride=2)
        result = sweep_pool(device, base, "c", (16, 64, 256))
        assert all(w == "chwn" for _, w in result.winners())

    def test_softmax_opt_gap_grows_with_categories(self, device):
        base = SoftmaxSpec(n=128, categories=10)
        result = sweep_softmax(device, base, "categories", (10, 100, 1000, 10000))
        gaps = [
            result.time(v, "cudnn") / result.time(v, "opt")
            for v in (100, 1000, 10000)
        ]
        assert gaps == sorted(gaps)

    def test_time_lookup_raises_for_missing_point(self, device):
        base = SoftmaxSpec(n=32, categories=10)
        result = sweep_softmax(device, base, "n", (32,))
        with pytest.raises(KeyError):
            result.time(64, "opt")


class TestThroughputMetric:
    def test_images_per_second(self, device):
        from repro.baselines import time_network
        from repro.framework import Net
        from repro.networks import build_network

        net = Net(build_network("lenet"))
        timing = time_network(net, device, "opt")
        assert timing.batch == 128
        assert timing.images_per_second == pytest.approx(
            128 / (timing.total_ms * 1e-3)
        )
