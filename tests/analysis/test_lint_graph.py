"""Graph-aware L001/L002: the edge-walking rules over hand-built IR graphs.

When ``lint_plan`` receives a ``graph``, L001/L002 walk the real
producer→consumer edges instead of the linear step sequence — the chain
walk would misfire on branching networks (a branch's neighbour in step
order is not its producer).
"""

from hypothesis import given, settings

from repro.analysis import Severity, lint_plan
from repro.core.pipeline import PipelineOptions, plan_network
from repro.core.planner import LayoutPlan
from repro.gpusim import TITAN_BLACK
from repro.ir.graph import EdgeTransform, Graph, GraphNode, NodeKind
from repro.networks import build_network
from repro.tensors import CHWN, NCHW

from tests.analysis.graph_strategies import annotated_graphs

EMPTY_PLAN = LayoutPlan(steps=(), device=TITAN_BLACK.name, strategy="test")


def ids_of(diagnostics):
    return {d.rule_id for d in diagnostics}


def fork_graph() -> Graph:
    """stem feeding two branches joined by a concat."""
    g = Graph("fork", batch=4, in_channels=3, in_h=8, in_w=8)
    g.add(GraphNode("stem", NodeKind.CONV, layout=CHWN))
    g.add(GraphNode("a", NodeKind.CONV, inputs=("stem",), layout=CHWN))
    g.add(GraphNode("b", NodeKind.CONV, inputs=("stem",), layout=CHWN))
    g.add(GraphNode("join", NodeKind.CONCAT, inputs=("a", "b"), layout=CHWN))
    return g


class TestGraphLayoutMismatch:
    def test_clean_graph_silent(self):
        diags = lint_plan(TITAN_BLACK, EMPTY_PLAN, graph=fork_graph())
        assert "L001" not in ids_of(diags)

    def test_missing_transform_on_one_branch_edge(self):
        g = fork_graph()
        g["b"].layout = NCHW  # stem is CHWN; no transform recorded
        findings = [
            d
            for d in lint_plan(TITAN_BLACK, EMPTY_PLAN, graph=g)
            if d.rule_id == "L001"
        ]
        # two broken edges: stem->b (arrives CHWN) and b->join (arrives NCHW)
        assert [(d.subject, d.detail["edge"]) for d in findings] == [
            ("b", "stem"),
            ("join", "b"),
        ]
        assert all(d.severity is Severity.ERROR for d in findings)

    def test_transform_with_wrong_source_layout(self):
        g = fork_graph()
        g["b"].layout = NCHW
        g["b"].transforms = (
            EdgeTransform(src="stem", from_layout=NCHW, to_layout=NCHW, ms=0.1),
        )
        findings = [
            d
            for d in lint_plan(TITAN_BLACK, EMPTY_PLAN, graph=g)
            if d.rule_id == "L001"
        ]
        assert any(
            d.subject == "b" and d.detail.get("transform_source") == "NCHW"
            for d in findings
        )

    def test_explicit_transform_is_clean(self):
        g = fork_graph()
        g["b"].layout = NCHW
        g["b"].transforms = (
            EdgeTransform(src="stem", from_layout=CHWN, to_layout=NCHW, ms=0.1),
        )
        diags = lint_plan(TITAN_BLACK, EMPTY_PLAN, graph=g)
        assert all(d.subject != "b" for d in diags if d.rule_id == "L001")


class TestGraphRedundantTransforms:
    def test_island_across_concat(self):
        g = fork_graph()
        g["join"].layout = NCHW
        g.add(GraphNode("pool", NodeKind.POOL, inputs=("join",), layout=CHWN))
        g["join"].transforms = (
            EdgeTransform(src="a", from_layout=CHWN, to_layout=NCHW, ms=0.2),
            EdgeTransform(src="b", from_layout=CHWN, to_layout=NCHW, ms=0.2),
        )
        g["pool"].transforms = (
            EdgeTransform(src="join", from_layout=NCHW, to_layout=CHWN, ms=0.2),
        )
        findings = [
            d
            for d in lint_plan(TITAN_BLACK, EMPTY_PLAN, graph=g)
            if d.rule_id == "L002"
        ]
        # both incoming edges are undone on the way out: two islands
        assert len(findings) == 2
        assert all(d.subject == "join" for d in findings)
        assert all(d.detail["island_layout"] == "NCHW" for d in findings)

    def test_persistent_switch_is_not_an_island(self):
        g = fork_graph()
        g["join"].layout = NCHW
        g.add(GraphNode("pool", NodeKind.POOL, inputs=("join",), layout=NCHW))
        g["join"].transforms = (
            EdgeTransform(src="a", from_layout=CHWN, to_layout=NCHW, ms=0.2),
            EdgeTransform(src="b", from_layout=CHWN, to_layout=NCHW, ms=0.2),
        )
        diags = lint_plan(TITAN_BLACK, EMPTY_PLAN, graph=g)
        assert "L002" not in ids_of(diags)


class TestRandomCoherentGraphs:
    """The shared DAG generator draws transform-coherent graphs, so the
    edge-walking L-rules must never error on them (same generator as the
    dataflow verifier's property tests — one source of truth)."""

    @given(annotated_graphs())
    @settings(max_examples=25, deadline=None)
    def test_edge_rules_silent_on_coherent_dags(self, graph):
        errors = [
            d
            for d in lint_plan(TITAN_BLACK, EMPTY_PLAN, graph=graph)
            if d.severity is Severity.ERROR
        ]
        assert errors == [], [d.format() for d in errors]


class TestPipelineOutputIsClean:
    def test_inception_has_no_errors(self, device):
        """End-to-end: the pipeline's own DAG plan lints clean (the
        elimination pass leaves no cancellable pairs behind)."""
        for strategy in ("heuristic", "optimal"):
            result = plan_network(
                device,
                build_network("inception"),
                PipelineOptions(strategy=strategy),
            )
            diags = lint_plan(
                device,
                result.plan,
                result.graph.topological(),
                network="inception",
                graph=result.graph,
            )
            errors = [d for d in diags if d.severity is Severity.ERROR]
            assert errors == [], f"{strategy}: {[d.format() for d in errors]}"
