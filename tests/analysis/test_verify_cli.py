"""``repro verify`` and ``repro plan --verify`` (via main())."""

import json

import pytest

from repro.cli import main


class TestVerifyNetworks:
    def test_single_network_passes(self, capsys):
        assert main(["verify", "lenet"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out
        assert "liveness peak" in out

    def test_heuristic_strategy(self, capsys):
        assert main(["verify", "cifar", "--strategy", "heuristic"]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_branching_network(self, capsys):
        assert main(["verify", "inception"]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_json_format_includes_footprint(self, capsys):
        assert main(["verify", "lenet", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["failed"] is False
        report = payload["reports"][0]
        assert report["target"] == "lenet"
        fp = report["footprint"]
        assert fp["peak_bytes"] > 0
        assert [p["step"] for p in fp["curve"]][0] == "conv1"

    def test_training_footprint_is_larger(self, capsys):
        assert main(["verify", "lenet", "--format", "json"]) == 0
        infer = json.loads(capsys.readouterr().out)
        assert main(["verify", "lenet", "--training", "--format", "json"]) == 0
        train = json.loads(capsys.readouterr().out)
        assert (
            train["reports"][0]["footprint"]["peak_bytes"]
            > infer["reports"][0]["footprint"]["peak_bytes"]
        )

    def test_list_rules_shows_only_d_rules(self, capsys):
        assert main(["verify", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "D001" in out and "D007" in out
        assert "N001" not in out and "L001" not in out

    def test_unknown_rule_id_is_usage_error(self, capsys):
        assert main(["verify", "lenet", "--select", "D999"]) == 2


class TestVerifyGraphFile:
    @pytest.fixture()
    def plan_payload(self, capsys):
        assert main(["plan", "--network", "lenet", "--format", "json"]) == 0
        return json.loads(capsys.readouterr().out)

    def test_clean_plan_payload_verifies(self, tmp_path, capsys, plan_payload):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(plan_payload))
        assert main(["verify", "--graph", str(path)]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_corrupted_graph_fails_with_named_rule(
        self, tmp_path, capsys, plan_payload
    ):
        graph = plan_payload["graph"]
        for node in graph["nodes"]:
            if node["name"] == "conv2":
                node["out_dims"] = [9, 9, 9, 9]
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(graph))
        assert main(["verify", "--graph", str(path)]) == 1
        out = capsys.readouterr().out
        assert "D001" in out

    def test_unreadable_file_is_usage_error(self, tmp_path, capsys):
        assert main(["verify", "--graph", str(tmp_path / "missing.json")]) == 2

    def test_malformed_json_is_usage_error(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        assert main(["verify", "--graph", str(path)]) == 2


class TestPlanVerifyFlag:
    def test_plan_verify_output_is_byte_identical(self, capsys):
        assert main(["plan", "--network", "lenet"]) == 0
        plain = capsys.readouterr().out
        assert main(["plan", "--network", "lenet", "--verify"]) == 0
        verified = capsys.readouterr().out
        assert plain == verified
