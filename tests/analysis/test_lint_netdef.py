"""N0xx rules: network-definition linting and construction-time validation."""

import pytest

from repro.analysis import Severity, lint_netdef, lint_netdef_text
from repro.framework.netdef import (
    ConvDef,
    FCDef,
    LRNDef,
    NetworkDef,
    PoolDef,
    SoftmaxDef,
)


def make_net(*layers, batch=64, c=3, hw=32, name="testnet"):
    return NetworkDef(
        name=name, batch=batch, in_channels=c, in_h=hw, in_w=hw, layers=tuple(layers)
    )


def ids_of(diagnostics):
    return {d.rule_id for d in diagnostics}


CLEAN = make_net(
    ConvDef("conv1", co=32, f=5, stride=1, pad=2),
    PoolDef("pool1", window=3, stride=2),
    ConvDef("conv2", co=64, f=5, stride=1, pad=2),
    FCDef("fc1", out_features=10),
    SoftmaxDef("softmax"),
)


class TestCleanNetwork:
    def test_no_diagnostics(self):
        assert lint_netdef(CLEAN) == []

    def test_diagnostics_carry_network_name(self):
        net = make_net(ConvDef("conv1", co=8, f=3))
        diags = lint_netdef(net)  # N009: no classifier head
        assert all(d.network == "testnet" for d in diags)


class TestShapeRules:
    def test_n001_conv_window_too_large(self):
        net = make_net(
            ConvDef("conv1", co=8, f=7), hw=5  # 7x7 filter on 5x5 input
        )
        diags = lint_netdef(net)
        (d,) = [d for d in diags if d.rule_id == "N001"]
        assert d.severity is Severity.ERROR
        assert d.subject == "conv1"

    def test_n001_walks_past_the_failure(self):
        """The tolerant walker reports problems in later layers too."""
        net = make_net(
            ConvDef("conv1", co=8, f=7),  # N001 on a 5x5 input
            ConvDef("conv2", co=8, f=9),  # also too large for the clamped dims
            hw=5,
        )
        subjects = [d.subject for d in lint_netdef(net) if d.rule_id == "N001"]
        assert subjects == ["conv1", "conv2"]

    def test_n002_pool_window_too_large(self):
        net = make_net(PoolDef("pool1", window=40, stride=2), hw=32)
        assert "N002" in ids_of(lint_netdef(net))

    def test_n003_layer_after_softmax(self):
        net = make_net(
            FCDef("fc1", out_features=10),
            SoftmaxDef("softmax"),
            ConvDef("dead", co=8, f=3),
        )
        (d,) = [d for d in lint_netdef(net) if d.rule_id == "N003"]
        assert d.subject == "dead"
        assert d.severity is Severity.ERROR

    def test_n004_conv_after_flatten(self):
        net = make_net(
            FCDef("fc1", out_features=100),
            ConvDef("conv1", co=8, f=3),
            PoolDef("pool1", window=2, stride=2),
        )
        subjects = [d.subject for d in lint_netdef(net) if d.rule_id == "N004"]
        assert subjects == ["conv1", "pool1"]

    def test_n005_groups_do_not_divide_channels(self):
        # groups=2 divides co=8 (construction passes) but not C=3 input.
        net = make_net(ConvDef("conv1", co=8, f=3, groups=2), c=3)
        assert "N005" in ids_of(lint_netdef(net))

    def test_n006_softmax_without_fc(self):
        net = make_net(ConvDef("conv1", co=8, f=3), SoftmaxDef("softmax"))
        assert "N006" in ids_of(lint_netdef(net))

    def test_n007_pool_stride_skips_input(self):
        net = make_net(PoolDef("pool1", window=2, stride=3))
        (d,) = [d for d in lint_netdef(net) if d.rule_id == "N007"]
        assert d.severity is Severity.WARNING

    def test_n008_excessive_padding(self):
        net = make_net(ConvDef("conv1", co=8, f=3, pad=3))
        assert "N008" in ids_of(lint_netdef(net))

    def test_n009_missing_classifier_head(self):
        net = make_net(ConvDef("conv1", co=8, f=3))
        (d,) = [d for d in lint_netdef(net) if d.rule_id == "N009"]
        assert d.severity is Severity.INFO


class TestTextEntry:
    def test_n000_on_parse_error(self):
        diags = lint_netdef_text("network bad 128\n")
        (d,) = diags
        assert d.rule_id == "N000"
        assert d.severity is Severity.ERROR

    def test_n000_on_construction_error(self):
        text = (
            "network bad batch=64 input=3x32x32\n"
            "conv conv1 co=8 f=3 stride=0\n"
        )
        (d,) = lint_netdef_text(text)
        assert d.rule_id == "N000"
        assert "stride" in d.message

    def test_clean_text_round_trip(self):
        text = (
            "network ok batch=64 input=3x32x32\n"
            "conv conv1 co=32 f=5 pad=2\n"
            "pool pool1 window=3 stride=2\n"
            "fc fc1 out=10\n"
            "softmax softmax\n"
        )
        assert lint_netdef_text(text) == []


class TestConstructionValidation:
    """Satellite: bad hyperparameters fail at definition time, by name."""

    def test_conv_rejects_zero_filter(self):
        with pytest.raises(ValueError, match="conv1"):
            ConvDef("conv1", co=8, f=0)

    def test_conv_rejects_zero_stride(self):
        with pytest.raises(ValueError, match="stride"):
            ConvDef("conv1", co=8, f=3, stride=0)

    def test_conv_rejects_negative_pad(self):
        with pytest.raises(ValueError, match="pad"):
            ConvDef("conv1", co=8, f=3, pad=-1)

    def test_conv_rejects_groups_not_dividing_co(self):
        with pytest.raises(ValueError, match="groups"):
            ConvDef("conv1", co=9, f=3, groups=2)

    def test_pool_rejects_bad_window(self):
        with pytest.raises(ValueError, match="pool1"):
            PoolDef("pool1", window=0, stride=2)

    def test_pool_rejects_unknown_op(self):
        with pytest.raises(ValueError, match="op"):
            PoolDef("pool1", window=2, stride=2, op="median")

    def test_lrn_rejects_zero_depth(self):
        with pytest.raises(ValueError, match="depth"):
            LRNDef("lrn1", depth=0)

    def test_fc_rejects_zero_features(self):
        with pytest.raises(ValueError, match="out_features"):
            FCDef("fc1", out_features=0)
