"""K0xx rules: kernel models against device limits and bandwidth patterns."""

from repro.analysis import Severity, lint_kernel
from repro.gpusim import TITAN_BLACK
from repro.gpusim.kernel import KernelModel, LaunchConfig, MemoryProfile


class StubKernel(KernelModel):
    """A kernel whose launch geometry and memory profile are dictated."""

    name = "stub"

    def __init__(self, launch: LaunchConfig, profile: MemoryProfile | None = None):
        self._launch = launch
        self._profile = profile or MemoryProfile(
            load_bytes=1e6,
            store_bytes=1e6,
            load_transactions=1e6 / 32,
            store_transactions=1e6 / 32,
        )

    def launch_config(self, device):
        return self._launch

    def flop_count(self):
        return 1e6

    def memory_profile(self, device):
        return self._profile


def launch(threads=256, blocks=4096, regs=32, smem=0):
    return LaunchConfig(
        grid=(blocks, 1, 1),
        block=(threads, 1, 1),
        regs_per_thread=regs,
        smem_per_block=smem,
    )


def profile(**overrides):
    base = dict(
        load_bytes=1e6,
        store_bytes=1e6,
        load_transactions=1e6 / 32,
        store_transactions=1e6 / 32,
    )
    base.update(overrides)
    return MemoryProfile(**base)


def lint(kernel, device=TITAN_BLACK):
    return lint_kernel(device, kernel, owner="stub")


def ids_of(diagnostics):
    return {d.rule_id for d in diagnostics}


class TestHardLimits:
    def test_clean_kernel_no_diagnostics(self):
        assert lint(StubKernel(launch())) == []

    def test_k001_oversized_block(self):
        diags = lint(StubKernel(launch(threads=2048)))
        errors = [d for d in diags if d.rule_id == "K001"]
        (d,) = errors
        assert d.severity is Severity.ERROR
        assert d.detail["limit"] == TITAN_BLACK.max_threads_per_block

    def test_k002_oversized_shared_memory(self):
        diags = lint(StubKernel(launch(smem=64 * 1024)))
        assert "K002" in ids_of(diags)
        (d,) = [d for d in diags if d.rule_id == "K002"]
        assert d.severity is Severity.ERROR

    def test_k003_impossible_register_demand(self):
        assert "K003" in ids_of(lint(StubKernel(launch(regs=300))))

    def test_k004_zero_occupancy_register_file(self):
        # 1024 threads x 128 regs = 131072 regs/block > 65536 regs/SM.
        diags = lint(StubKernel(launch(threads=1024, regs=128)))
        (d,) = [d for d in diags if d.rule_id == "K004"]
        assert d.severity is Severity.ERROR
        assert d.detail["code"] == "regs_per_block"

    def test_hard_error_suppresses_occupancy_warning(self):
        diags = lint(StubKernel(launch(threads=1024, regs=128)))
        assert "K005" not in ids_of(diags)


class TestSoftRules:
    def test_k005_low_occupancy(self):
        # One 30 KiB block per SM: 8 of 64 resident warps = 12.5%.
        diags = lint(StubKernel(launch(threads=256, smem=30 * 1024)))
        (d,) = [d for d in diags if d.rule_id == "K005"]
        assert d.severity is Severity.WARNING
        assert d.detail["limiter"] == "shared_memory"

    def test_k006_uncoalesced_access(self):
        bad = profile(load_transactions=1e6, store_transactions=1e6)  # 32x
        diags = lint(StubKernel(launch(), bad))
        (d,) = [d for d in diags if d.rule_id == "K006"]
        assert d.detail["inflation"] > 4.0

    def test_k007_bank_conflicts(self):
        diags = lint(StubKernel(launch(), profile(smem_conflict_degree=16.0)))
        (d,) = [d for d in diags if d.rule_id == "K007"]
        assert d.severity is Severity.WARNING

    def test_k008_partial_warp(self):
        assert "K008" in ids_of(lint(StubKernel(launch(threads=100))))

    def test_k009_grid_underfills_device(self):
        diags = lint(StubKernel(launch(blocks=5)))
        (d,) = [d for d in diags if d.rule_id == "K009"]
        assert d.severity is Severity.INFO
        assert d.detail["sm_count"] == TITAN_BLACK.sm_count

    def test_k010_unaligned_access_width(self):
        assert "K010" in ids_of(lint(StubKernel(launch(), profile(access_bytes=6))))

    def test_aligned_widths_clean(self):
        for width in (4, 8, 16):
            diags = lint(StubKernel(launch(), profile(access_bytes=width)))
            assert "K010" not in ids_of(diags)
