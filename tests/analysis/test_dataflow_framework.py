"""The generic worklist framework: direction, joins, edges, convergence."""

import pytest

from repro.analysis.dataflow import (
    ConvergenceError,
    DataflowAnalysis,
    LayoutPropagation,
    LivenessAnalysis,
    run_analysis,
)
from repro.ir.graph import EdgeTransform, Graph, GraphNode, NodeKind
from repro.tensors import CHWN, NCHW


def diamond() -> Graph:
    """stem -> (a, b) -> join, the smallest graph with a real join point."""
    g = Graph("diamond", batch=2, in_channels=3, in_h=4, in_w=4)
    g.add(GraphNode("stem", NodeKind.CONV, layout=CHWN))
    g.add(GraphNode("a", NodeKind.CONV, inputs=("stem",), layout=CHWN))
    g.add(GraphNode("b", NodeKind.CONV, inputs=("stem",), layout=NCHW))
    g.add(GraphNode("join", NodeKind.CONCAT, inputs=("a", "b"), layout=CHWN))
    return g


class ReachingNames(DataflowAnalysis):
    """Toy forward may-analysis: the set of node names on any path here."""

    name = "reaching-names"
    direction = "forward"

    def boundary(self, graph):
        return frozenset()

    def join(self, a, b):
        return a | b

    def transfer(self, graph, node, fact):
        return fact | {node.name}


class TestForward:
    def test_reaching_names_accumulate_along_paths(self):
        result = run_analysis(diamond(), ReachingNames())
        assert result.in_facts["join"] == {"stem", "a", "b"}
        assert result.out_facts["stem"] == {"stem"}
        assert result.in_facts["stem"] == frozenset()

    def test_layout_join_conflicts_at_concat(self):
        result = run_analysis(diamond(), LayoutPropagation())
        # a delivers CHWN, b delivers NCHW: the join sees a conflict
        fact = result.in_facts["join"]
        assert str(fact) == "????"

    def test_edge_transfer_applies_transforms_per_edge(self):
        g = diamond()
        g["join"].transforms = (
            EdgeTransform(src="b", from_layout=NCHW, to_layout=CHWN, ms=0.1),
        )
        result = run_analysis(g, LayoutPropagation())
        assert result.fact_on_edge("b", "join") == CHWN
        assert result.fact_on_edge("a", "join") == CHWN
        assert result.in_facts["join"] == CHWN


class TestBackward:
    def test_liveness_flows_against_edges(self):
        result = run_analysis(diamond(), LivenessAnalysis())
        # backward orientation: out_facts[n] is the live-in set while n
        # runs.  While `a` runs, stem's buffer is still needed by b.
        assert "stem" in result.out_facts["a"]
        # the join reads both branch outputs; nothing is live after it
        assert result.out_facts["join"] == {"a", "b"}
        assert result.in_facts["join"] == frozenset()


class TestConvergenceGuard:
    def test_cyclic_graph_with_unstable_facts_raises(self):
        class Counter(DataflowAnalysis):
            name = "counter"
            direction = "forward"

            def boundary(self, graph):
                return 0

            def join(self, a, b):
                return max(a, b)

            def transfer(self, graph, node, fact):
                return fact + 1  # strictly grows around any cycle

        g = diamond()
        # passes mutate nodes in place; a buggy one could close a cycle,
        # and the verifier must refuse to spin on it
        g["stem"].inputs = ("join",)
        with pytest.raises(ConvergenceError):
            run_analysis(g, Counter())

    def test_budget_scales_with_graph_size(self):
        # a long chain converges in one sweep regardless of length
        g = Graph("chain", batch=1, in_channels=1, in_h=2, in_w=2)
        prev = ()
        for i in range(50):
            g.add(
                GraphNode(
                    f"n{i}", NodeKind.ELEMENTWISE, inputs=prev, layout=CHWN
                )
            )
            prev = (f"n{i}",)
        result = run_analysis(g, ReachingNames())
        assert len(result.in_facts["n49"]) == 49
