"""Layout-selection heuristic: the (Ct, Nt) rules of Section IV.A."""

import pytest

from repro.core import (
    LayoutThresholds,
    PAPER_THRESHOLDS,
    conv_threshold_margins,
    explain_conv_choice,
    is_threshold_ambiguous,
    preferred_conv_layout,
    preferred_pool_layout,
    thresholds_for,
)
from repro.layers import ConvSpec
from repro.gpusim import TITAN_BLACK, TITAN_X
from repro.networks import CONV_LAYERS, POOL_LAYERS
from repro.tensors import CHWN, NCHW

TB = PAPER_THRESHOLDS["GTX Titan Black"]


class TestRules:
    def test_small_c_prefers_chwn(self):
        assert preferred_conv_layout(CONV_LAYERS["CV1"], TB) == CHWN  # C=1
        assert preferred_conv_layout(CONV_LAYERS["CV9"], TB) == CHWN  # C=3

    def test_large_batch_prefers_chwn(self):
        assert preferred_conv_layout(CONV_LAYERS["CV4"], TB) == CHWN  # N=128, C=64

    def test_otherwise_nchw(self):
        for name in ("CV6", "CV7", "CV8", "CV10", "CV11", "CV12"):
            assert preferred_conv_layout(CONV_LAYERS[name], TB) == NCHW, name

    def test_paper_table1_classification(self):
        """Section VI.A: 'all the benchmarking layers in Table 1 confirm the
        effectiveness of our heuristics'."""
        expected_chwn = {"CV1", "CV2", "CV3", "CV4", "CV5", "CV9"}
        got_chwn = {
            name
            for name, spec in CONV_LAYERS.items()
            if preferred_conv_layout(spec, TB) == CHWN
        }
        assert got_chwn == expected_chwn

    def test_pooling_always_chwn(self):
        for spec in POOL_LAYERS.values():
            assert preferred_pool_layout(spec) == CHWN


class TestThresholds:
    def test_paper_values(self):
        assert TB == LayoutThresholds(ct=32, nt=128)
        assert PAPER_THRESHOLDS["GTX Titan X"] == LayoutThresholds(ct=128, nt=64)

    def test_thresholds_for_devices(self):
        assert thresholds_for(TITAN_BLACK).nt == 128
        assert thresholds_for(TITAN_X).nt == 64

    def test_titan_x_shifts_decisions(self):
        """A C=64/N=64 layer flips layouts between the two GPUs."""
        spec = CONV_LAYERS["CV4"].with_batch(64)  # C=64, N=64
        assert preferred_conv_layout(spec, thresholds_for(TITAN_BLACK)) == NCHW
        assert preferred_conv_layout(spec, thresholds_for(TITAN_X)) == CHWN

    def test_validation(self):
        with pytest.raises(ValueError):
            LayoutThresholds(ct=0, nt=128)


class TestExplanations:
    def test_each_rule_is_named(self):
        assert "Ct" in explain_conv_choice(CONV_LAYERS["CV1"], TB)
        assert "Nt" in explain_conv_choice(CONV_LAYERS["CV4"], TB)
        assert "NCHW" in explain_conv_choice(CONV_LAYERS["CV7"], TB)


class TestBoundaries:
    """Exact-threshold behaviour: the rules are `C < Ct` and `N >= Nt`."""

    def base(self, n, ci):
        return ConvSpec(n=n, ci=ci, h=14, w=14, co=64, fh=3, fw=3, pad=1)

    def test_c_equal_ct_is_not_small(self):
        # C == Ct fails `C < Ct`; with N below Nt the choice is NCHW.
        assert preferred_conv_layout(self.base(n=64, ci=TB.ct), TB) == NCHW
        assert preferred_conv_layout(self.base(n=64, ci=TB.ct - 1), TB) == CHWN

    def test_n_equal_nt_is_large(self):
        # N == Nt satisfies `N >= Nt`: CHWN even for wide channel counts.
        assert preferred_conv_layout(self.base(n=TB.nt, ci=256), TB) == CHWN
        assert preferred_conv_layout(self.base(n=TB.nt - 1, ci=256), TB) == NCHW


class TestThresholdMargins:
    def base(self, n, ci):
        return ConvSpec(n=n, ci=ci, h=14, w=14, co=64, fh=3, fw=3, pad=1)

    def test_margins_are_signed_distances(self):
        m = conv_threshold_margins(self.base(n=100, ci=40), TB)
        assert m.c_distance == 40 - TB.ct
        assert m.n_distance == 100 - TB.nt

    def test_ambiguous_exactly_at_ct(self):
        # C == Ct with small N: C-1 flips NCHW -> CHWN.
        assert is_threshold_ambiguous(self.base(n=64, ci=TB.ct), TB)

    def test_ambiguous_one_below_nt(self):
        # N == Nt - 1 with wide C: N+1 flips NCHW -> CHWN.
        assert is_threshold_ambiguous(self.base(n=TB.nt - 1, ci=256), TB)

    def test_not_ambiguous_when_both_rules_far(self):
        assert not is_threshold_ambiguous(self.base(n=64, ci=512), TB)

    def test_not_ambiguous_when_dominant_rule_holds(self):
        # N sits on Nt but C=3 << Ct keeps CHWN under every perturbation.
        assert not is_threshold_ambiguous(self.base(n=TB.nt, ci=3), TB)

    def test_wider_margin_reaches_further(self):
        spec = self.base(n=64, ci=TB.ct + 2)
        assert not is_threshold_ambiguous(spec, TB, margin=1)
        assert is_threshold_ambiguous(spec, TB, margin=3)
