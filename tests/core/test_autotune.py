"""Pooling auto-tuner: hill climbing over (ux, uy)."""

import pytest

from repro.core import autotune_pooling
from repro.networks import POOL_LAYERS


class TestAutotune:
    def test_overlapped_layer_gets_coarsened(self, device):
        result = autotune_pooling(device, POOL_LAYERS["PL5"])
        assert (result.ux, result.uy) != (1, 1)
        assert result.speedup > 1.05

    def test_non_overlapped_layer_stays_plain(self, device):
        """No shared window data -> expansion only costs registers."""
        result = autotune_pooling(device, POOL_LAYERS["PL1"])
        assert (result.ux, result.uy) == (1, 1)
        assert result.time_ms == result.baseline_ms

    def test_never_worse_than_baseline(self, device):
        for name, spec in POOL_LAYERS.items():
            result = autotune_pooling(device, spec)
            assert result.time_ms <= result.baseline_ms, name

    def test_respects_max_factor(self, device):
        result = autotune_pooling(device, POOL_LAYERS["PL8"], max_factor=3)
        assert result.ux <= 3 and result.uy <= 3

    def test_search_trace_recorded(self, device):
        result = autotune_pooling(device, POOL_LAYERS["PL5"])
        assert result.evaluations[0][:2] == (1, 1)
        assert len(result.evaluations) >= 2

    def test_hill_climb_is_cheap(self, device):
        """The paper prunes with hill climbing; the search must stay small
        compared to the full (max_factor^2) grid."""
        result = autotune_pooling(device, POOL_LAYERS["PL5"], max_factor=8)
        assert len(result.evaluations) < 20

    def test_validation(self, device):
        with pytest.raises(ValueError):
            autotune_pooling(device, POOL_LAYERS["PL1"], max_factor=0)

    def test_chosen_factors_beat_neighbours(self, device):
        """Local optimality: the returned point is no worse than the
        evaluated neighbours."""
        result = autotune_pooling(device, POOL_LAYERS["PL6"])
        best = result.time_ms
        for ux, uy, t in result.evaluations:
            assert best <= t + 1e-12
