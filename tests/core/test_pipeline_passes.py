"""Pass-level unit tests for the pipeline, plus DAG planning end-to-end."""

import pytest

from repro.core.pipeline import (
    FUSION_PATTERNS,
    EliminateRedundantTransforms,
    FuseKernels,
    InsertTransforms,
    PipelineOptions,
    plan_network,
    register_fusion_pattern,
    run_pipeline,
)
from repro.framework import Net, Trainer
from repro.ir.graph import Graph, GraphNode, NodeKind
from repro.networks import build_network
from repro.tensors import CHWN, NCHW


def sandwich_graph() -> Graph:
    """conv(CHWN) -> lrn(NCHW) -> conv(CHWN): the LRN is layout-agnostic,
    so its NCHW label forces a transform-inverse pair around it."""
    dims = (64, 32, 16, 16)
    g = Graph("sandwich", batch=64, in_channels=32, in_h=16, in_w=16)
    g.add(GraphNode("conv1", NodeKind.CONV, in_dims=dims, out_dims=dims, layout=CHWN))
    g.add(
        GraphNode(
            "lrn", NodeKind.ELEMENTWISE, inputs=("conv1",),
            in_dims=dims, out_dims=dims, layout=NCHW,
        )
    )
    g.add(
        GraphNode(
            "conv2", NodeKind.CONV, inputs=("lrn",),
            in_dims=dims, out_dims=dims, layout=CHWN,
        )
    )
    return g


class TestEliminateRedundantTransforms:
    def test_cancels_pair_across_agnostic_node(self, device):
        result = run_pipeline(
            device,
            sandwich_graph(),
            passes=[InsertTransforms(), EliminateRedundantTransforms()],
        )
        insert, eliminate = result.trace
        assert insert.stats["inserted"] == 2  # into lrn, back into conv2
        assert eliminate.stats["relabeled"] == ("lrn",)
        assert eliminate.stats["removed"] == 2
        assert eliminate.stats["added"] == 0
        assert eliminate.stats["ms_saved"] > 0
        assert result.graph["lrn"].layout == CHWN
        assert all(n.transforms == () for n in result.graph)

    def test_noop_when_layouts_agree(self, device):
        g = sandwich_graph()
        g["lrn"].layout = CHWN
        result = run_pipeline(
            device, g, passes=[InsertTransforms(), EliminateRedundantTransforms()]
        )
        eliminate = result.trace[1]
        assert eliminate.stats["relabeled"] == ()
        assert eliminate.stats["removed"] == 0
        assert eliminate.stats["ms_saved"] == 0

    def test_does_not_touch_layout_bearing_nodes(self, device):
        """A pool between the convs is layout-bearing: its label encodes a
        real kernel choice, so the pass must leave the transforms alone."""
        g = sandwich_graph()
        lrn = g["lrn"]
        g.nodes["lrn"] = GraphNode(
            "lrn", NodeKind.POOL, inputs=lrn.inputs,
            in_dims=lrn.in_dims, out_dims=lrn.out_dims, layout=NCHW,
        )
        result = run_pipeline(
            device, g, passes=[InsertTransforms(), EliminateRedundantTransforms()]
        )
        eliminate = result.trace[1]
        assert eliminate.stats["relabeled"] == ()
        assert result.graph["lrn"].layout == NCHW
        assert len(result.graph["lrn"].transforms) == 1

    def test_opt_out_flag(self, device):
        result = run_pipeline(
            device,
            sandwich_graph(),
            PipelineOptions(eliminate_redundant=False),
            passes=[InsertTransforms(), EliminateRedundantTransforms()],
        )
        assert result.trace[1].stats == {"skipped": True}
        assert result.graph["lrn"].layout == NCHW


class TestFusionRegistry:
    def test_unknown_pattern_rejected(self, device):
        with pytest.raises(ValueError, match="unknown fusion pattern"):
            run_pipeline(
                device,
                sandwich_graph(),
                PipelineOptions(fusion_patterns=("no-such-pattern",)),
                passes=[FuseKernels()],
            )

    def test_custom_pattern_applies(self, device):
        @register_fusion_pattern("tag-lrn", "test-only: tag elementwise nodes")
        def tag_lrn(graph, node, ctx):
            if node.kind is not NodeKind.ELEMENTWISE:
                return False
            node.fused = "tag-lrn"
            return True

        try:
            result = run_pipeline(
                device,
                sandwich_graph(),
                PipelineOptions(fusion_patterns=("tag-lrn",)),
                passes=[FuseKernels()],
            )
        finally:
            FUSION_PATTERNS.pop("tag-lrn")
        assert result.trace[0].stats["matched"] == {"tag-lrn": 1}
        assert result.graph["lrn"].fused == "tag-lrn"
        assert result.graph["conv1"].fused is None

    def test_transform_pooling_is_opt_in(self, device):
        g = sandwich_graph()
        lrn = g["lrn"]
        g.nodes["lrn"] = GraphNode(
            "lrn", NodeKind.POOL, inputs=lrn.inputs,
            in_dims=lrn.in_dims, out_dims=lrn.out_dims, layout=NCHW,
        )
        baseline = run_pipeline(device, g, passes=[InsertTransforms()])
        full_ms = baseline.graph["lrn"].transform_ms
        assert full_ms > 0

        fused = run_pipeline(
            device,
            g,
            PipelineOptions(fusion_patterns=("softmax-fuse", "transform-pooling")),
            passes=[InsertTransforms(), FuseKernels()],
        )
        assert fused.graph["lrn"].fused == "transform-pooling"
        assert fused.graph["lrn"].transform_ms == pytest.approx(full_ms / 2)


class TestBranchingNetwork:
    @pytest.fixture(scope="class")
    def heuristic(self, device):
        return plan_network(
            device, build_network("inception"), PipelineOptions(strategy="heuristic")
        )

    def test_eliminates_round_trip_at_concat(self, heuristic):
        """The acceptance criterion: the heuristic labels the concat NCHW
        (wide output) between CHWN branches and a CHWN pool; relabeling it
        cancels the b3b->concat->pool3 transform-inverse pair."""
        trace = {t.name: t for t in heuristic.trace}
        stats = trace["EliminateRedundantTransforms"].stats
        assert "concat" in stats["relabeled"]
        assert stats["removed"] >= 2
        assert stats["ms_saved"] > 0

    def test_plan_covers_every_layer(self, heuristic):
        netdef = build_network("inception")
        assert [s.name for s in heuristic.plan.steps] == [
            layer.name for layer in netdef.layers
        ]
        assert heuristic.plan.total_ms > 0

    def test_optimal_no_worse_than_heuristic(self, device, heuristic):
        optimal = plan_network(
            device, build_network("inception"), PipelineOptions(strategy="optimal")
        )
        assert optimal.plan.total_ms <= heuristic.plan.total_ms + 1e-9

    def test_legacy_chain_entry_points_refuse(self, device):
        net = Net(build_network("inception"))
        with pytest.raises(ValueError, match="branching"):
            net.planner_nodes(device)
        with pytest.raises(ValueError, match="linear networks only"):
            Trainer(net)

    def test_explain_lists_every_pass(self, heuristic):
        text = heuristic.explain()
        for name in (
            "ResolveShapes", "AssignLayouts", "InsertTransforms",
            "EliminateRedundantTransforms", "FuseKernels",
            "SelectImplementations",
        ):
            assert name in text
