"""Softmax fusion pass and its ablation report."""

import pytest

from repro.core import can_fuse_softmax, fuse_softmax, fusion_report
from repro.layers import FusedParallelSoftmax, FusedSoftmax, SoftmaxSpec


class TestFusePass:
    def test_default_builds_parallel_kernel(self, device):
        k = fuse_softmax(SoftmaxSpec(128, 1000), device)
        assert isinstance(k, FusedParallelSoftmax)

    def test_fusion_only_stage(self, device):
        k = fuse_softmax(SoftmaxSpec(128, 1000), device, parallelize=False)
        assert isinstance(k, FusedSoftmax)

    def test_can_fuse_on_real_devices(self, device, titan_x):
        assert can_fuse_softmax(SoftmaxSpec(128, 10000), device)
        assert can_fuse_softmax(SoftmaxSpec(128, 10000), titan_x)


class TestReport:
    def test_stages_multiply(self, device):
        rep = fusion_report(SoftmaxSpec(128, 1000), device)
        assert rep.total_speedup == pytest.approx(
            rep.fusion_speedup * rep.parallel_speedup, rel=1e-6
        )

    def test_four_launches_removed(self, device):
        rep = fusion_report(SoftmaxSpec(64, 100), device)
        assert rep.launches_removed == 4

    def test_both_stages_help_large_configs(self, device):
        rep = fusion_report(SoftmaxSpec(128, 10000), device)
        assert rep.fusion_speedup > 1.5
        assert rep.parallel_speedup > 2.0

    def test_fusion_dominates_small_configs(self, device):
        """Tiny layers are launch-overhead bound: fusion (5 launches -> 1)
        is most of the win."""
        rep = fusion_report(SoftmaxSpec(32, 10), device)
        assert rep.fusion_speedup > rep.parallel_speedup

    def test_dram_passes_removed(self, device):
        rep = fusion_report(SoftmaxSpec(128, 1000), device)
        assert rep.dram_passes_removed == 8
