"""Per-layer implementation selection and cuDNN-mode fallback."""

import pytest

from repro.core import best_conv_for_layout, cudnn_mode_conv, try_conv_time
from repro.gpusim import SimulationEngine
from repro.networks import CONV_LAYERS
from repro.tensors import CHWN, NCHW, DataLayout


@pytest.fixture()
def engine(device):
    return SimulationEngine(device)


class TestTryConvTime:
    def test_valid_implementation(self, engine):
        result = try_conv_time(engine, CONV_LAYERS["CV7"], "im2col")
        assert result is not None
        assert result[0] > 0

    def test_unsupported_returns_none(self, engine):
        assert try_conv_time(engine, CONV_LAYERS["CV5"], "fft") is None

    def test_oom_returns_none(self, engine):
        from dataclasses import replace

        huge = replace(CONV_LAYERS["CV5"], stride=1)
        assert try_conv_time(engine, huge, "fft") is None


class TestBestForLayout:
    def test_chwn_uses_direct(self, engine):
        choice = best_conv_for_layout(engine, CONV_LAYERS["CV1"], CHWN)
        assert choice.implementation == "direct"
        assert choice.layout == CHWN

    def test_nchw_picks_fastest_mode(self, engine):
        # CV7: FFT beats MM in the model (and in the paper's Fig. 5).
        choice = best_conv_for_layout(engine, CONV_LAYERS["CV7"], NCHW)
        assert choice.implementation == "fft"

    def test_nchw_without_fft(self, engine):
        choice = best_conv_for_layout(engine, CONV_LAYERS["CV7"], NCHW, allow_fft=False)
        assert choice.implementation == "im2col"

    def test_fft_failure_falls_back(self, engine):
        # CV6 is stride 2: only MM is valid under NCHW.
        choice = best_conv_for_layout(engine, CONV_LAYERS["CV6"], NCHW)
        assert choice.implementation == "im2col"

    def test_unknown_layout_rejected(self, engine):
        with pytest.raises(ValueError):
            best_conv_for_layout(engine, CONV_LAYERS["CV1"], DataLayout("WHCN"))

    def test_nhwc_goes_through_the_repack_path(self, engine):
        choice = best_conv_for_layout(engine, CONV_LAYERS["CV7"], DataLayout("NHWC"))
        assert choice.implementation == "im2col-nhwc"

    def test_str(self, engine):
        choice = best_conv_for_layout(engine, CONV_LAYERS["CV1"], CHWN)
        assert "direct" in str(choice)


class TestCudnnModes:
    def test_mm_mode(self, engine):
        assert cudnn_mode_conv(engine, CONV_LAYERS["CV7"], "mm").implementation == "im2col"

    def test_fft_mode_with_fallback(self, engine):
        """Fig. 14 schemes: 'falls back to the cuDNN-MM mode if failed'."""
        choice = cudnn_mode_conv(engine, CONV_LAYERS["CV5"], "fft")
        assert choice.implementation == "im2col"

    def test_fft_mode_when_supported(self, engine):
        choice = cudnn_mode_conv(engine, CONV_LAYERS["CV7"], "fft")
        assert choice.implementation == "fft"

    def test_best_mode_never_slower_than_mm(self, engine):
        for name, spec in CONV_LAYERS.items():
            best = cudnn_mode_conv(engine, spec, "best")
            mm = cudnn_mode_conv(engine, spec, "mm")
            assert best.time_ms <= mm.time_ms * 1.0001, name

    def test_unknown_mode(self, engine):
        with pytest.raises(ValueError):
            cudnn_mode_conv(engine, CONV_LAYERS["CV7"], "winograd")
