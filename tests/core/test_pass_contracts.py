"""Pass-contract verification: ``PipelineOptions(verify=True)`` checks
each pass's declared invariants and attributes the first violation."""

import pytest

from repro.core.pipeline import (
    PassContractError,
    PipelineOptions,
    Pass,
    default_passes,
    plan_network,
    run_pipeline,
)
from repro.ir.build import lower_netdef
from repro.networks import build_network
from repro.tensors import CHWN, NCHW


class TestVerifiedPipeline:
    def test_all_default_passes_hold_their_contracts(self, device):
        for strategy in ("heuristic", "optimal"):
            plan_network(
                device,
                build_network("inception"),
                PipelineOptions(strategy=strategy, verify=True),
            )  # no PassContractError

    def test_plan_identical_with_verification_on(self, device):
        """Verification is observational: the planned result is
        byte-identical with it on or off."""
        for strategy in ("heuristic", "optimal"):
            off = plan_network(
                device, build_network("alexnet"), PipelineOptions(strategy=strategy)
            )
            on = plan_network(
                device,
                build_network("alexnet"),
                PipelineOptions(strategy=strategy, verify=True),
            )
            assert repr(on.plan) == repr(off.plan)
            assert on.plan.summary() == off.plan.summary()


class TestAttribution:
    def _run(self, device, buggy, position=2):
        passes = list(default_passes())
        passes.insert(position, buggy)
        return run_pipeline(
            device,
            lower_netdef(build_network("lenet")),
            PipelineOptions(verify=True),
            passes=passes,
        )

    def test_shape_corruption_names_the_offending_pass(self, device):
        class BreakShapes(Pass):
            name = "BreakShapes"
            default_contracts = ("structure", "shapes")

            def run(self, graph, ctx):
                graph.topological()[1].in_dims = (1, 1, 1, 1)
                return graph

        with pytest.raises(PassContractError) as exc:
            self._run(device, BreakShapes())
        assert exc.value.pass_name == "BreakShapes"
        assert exc.value.violations
        assert "BreakShapes" in str(exc.value)

    def test_dangling_edge_attributed_to_structure_contract(self, device):
        class BreakEdges(Pass):
            name = "BreakEdges"

            def run(self, graph, ctx):
                graph.topological()[-1].inputs = ("ghost",)
                return graph

        with pytest.raises(PassContractError) as exc:
            self._run(device, BreakEdges())
        assert exc.value.pass_name == "BreakEdges"
        assert any(v.contract == "structure" for v in exc.value.violations)

    def test_layout_break_after_insert_transforms_is_attributed(self, device):
        class BreakLayouts(Pass):
            name = "BreakLayouts"
            default_contracts = ("layout-coherent",)

            def run(self, graph, ctx):
                # flip one conv's layout without touching its transforms
                for node in graph.topological():
                    if node.layout is not None:
                        node.layout = NCHW if node.layout == CHWN else CHWN
                        break
                return graph

        # after InsertTransforms (index 3 in the default pipeline)
        with pytest.raises(PassContractError) as exc:
            self._run(device, BreakLayouts(), position=4)
        assert exc.value.pass_name == "BreakLayouts"

    def test_unverified_run_does_not_check(self, device):
        class BreakEdges(Pass):
            name = "BreakEdges"

            def run(self, graph, ctx):
                graph.topological()[-1].inputs = ()
                return graph

        passes = list(default_passes())
        passes.insert(2, BreakEdges())
        # verify=False: the bug sails through the pipeline unchecked
        run_pipeline(
            device,
            lower_netdef(build_network("lenet")),
            PipelineOptions(),
            passes=passes,
        )


class TestContractDeclarations:
    def test_every_default_pass_declares_structure(self):
        for p in default_passes():
            assert "structure" in p.contracts, p.name

    def test_elimination_prunes_its_contract_when_skipped(self, device):
        result = run_pipeline(
            device,
            lower_netdef(build_network("lenet")),
            PipelineOptions(eliminate_redundant=False, verify=True),
        )
        assert result.plan is not None  # no false violation from the skip

    def test_unknown_contract_name_is_rejected(self, device):
        class BadDeclaration(Pass):
            name = "BadDeclaration"
            default_contracts = ("structure", "no-such-contract")

            def run(self, graph, ctx):
                return graph

        passes = list(default_passes())
        passes.insert(1, BadDeclaration())
        with pytest.raises(ValueError, match="no-such-contract"):
            run_pipeline(
                device,
                lower_netdef(build_network("lenet")),
                PipelineOptions(verify=True),
                passes=passes,
            )
