"""Layout planner: DP optimality, heuristic quality, transform accounting."""

import itertools

import pytest

from repro.core import (
    plan_optimal,
    plan_single_layout,
    plan_with_heuristic,
)
from repro.core.planner import PLAN_LAYOUTS, NodeKind, PlanNode
from repro.framework import Net
from repro.networks import build_network
from repro.tensors import CHWN, NCHW


@pytest.fixture(scope="module")
def alexnet_nodes(device=None):
    from repro.gpusim import TITAN_BLACK

    return Net(build_network("alexnet")).planner_nodes(TITAN_BLACK)


@pytest.fixture(scope="module")
def lenet_nodes():
    from repro.gpusim import TITAN_BLACK

    return Net(build_network("lenet")).planner_nodes(TITAN_BLACK)


class TestSingleLayoutPlans:
    def test_both_layouts_produce_plans(self, device, lenet_nodes):
        for layout in (CHWN, NCHW):
            plan = plan_single_layout(device, lenet_nodes, layout)
            assert plan.total_ms > 0
            assert plan.transform_count == 0

    def test_lenet_prefers_chwn_globally(self, device, lenet_nodes):
        chwn = plan_single_layout(device, lenet_nodes, CHWN)
        nchw = plan_single_layout(device, lenet_nodes, NCHW)
        assert chwn.total_ms < nchw.total_ms


class TestOptimalPlan:
    def test_never_worse_than_any_single_layout(self, device, alexnet_nodes):
        opt = plan_optimal(device, alexnet_nodes)
        for layout in PLAN_LAYOUTS:
            single = plan_single_layout(device, alexnet_nodes, layout, tune_pooling=True)
            assert opt.total_ms <= single.total_ms + 1e-9

    def test_matches_brute_force_on_small_chain(self, device, lenet_nodes):
        """DP == exhaustive enumeration over layout assignments."""
        from repro.core.planner import _build_costs, _transform_ms

        nodes = lenet_nodes
        costs = _build_costs(device, nodes, tune_pooling=True, allow_fft=True)
        best_total = None
        for combo in itertools.product(PLAN_LAYOUTS, repeat=len(nodes)):
            total = costs[0].cost(combo[0])
            for i in range(1, len(nodes)):
                total += _transform_ms(device, nodes[i], combo[i - 1], combo[i])
                total += costs[i].cost(combo[i])
            best_total = total if best_total is None else min(best_total, total)
        dp = plan_optimal(device, nodes)
        assert dp.total_ms == pytest.approx(best_total, rel=1e-9)

    def test_alexnet_plan_matches_paper_fig15(self, device, alexnet_nodes):
        """Fig. 15: CHWN for CV1, NCHW for CV2-CV5, CHWN pooling, and a
        small number of transforms ('four data layout transformations')."""
        plan = plan_optimal(device, alexnet_nodes)
        by_name = {s.name: s for s in plan.steps}
        assert by_name["conv1"].layout == CHWN
        for conv in ("conv2", "conv3", "conv4", "conv5"):
            assert by_name[conv].layout == NCHW, conv
        for pool in ("pool1", "pool2", "pool3"):
            assert by_name[pool].layout == CHWN, pool
        assert 2 <= plan.transform_count <= 6

    def test_transform_overhead_is_minor(self, device, alexnet_nodes):
        """Fig. 15: 'only minor overhead is incurred'."""
        plan = plan_optimal(device, alexnet_nodes)
        assert plan.transform_ms < 0.1 * plan.total_ms

    def test_empty_chain(self, device):
        plan = plan_optimal(device, [])
        assert plan.total_ms == 0.0


class TestHeuristicPlan:
    def test_close_to_optimal_on_all_networks(self, device):
        for name in ("lenet", "cifar", "zfnet"):
            nodes = Net(build_network(name)).planner_nodes(device)
            heuristic = plan_with_heuristic(device, nodes)
            optimal = plan_optimal(device, nodes)
            assert heuristic.total_ms <= 1.5 * optimal.total_ms, name

    def test_lenet_is_all_chwn_no_transforms(self, device, lenet_nodes):
        plan = plan_with_heuristic(device, lenet_nodes)
        conv_pool = [s for s in plan.steps if s.kind in (NodeKind.CONV, NodeKind.POOL)]
        assert all(s.layout == CHWN for s in conv_pool)
        assert plan.transform_count == 0

    def test_summary_renders(self, device, lenet_nodes):
        plan = plan_with_heuristic(device, lenet_nodes)
        text = plan.summary()
        assert "conv1" in text and "ms" in text


class TestPlanNodeEdgeCases:
    def test_isolated_conv_node(self, device):
        from repro.networks import CONV_LAYERS

        node = PlanNode("cv7", NodeKind.CONV, CONV_LAYERS["CV7"], in_dims=(64, 256, 13, 13))
        plan = plan_optimal(device, [node])
        assert plan.steps[0].layout == NCHW  # NCHW wins CV7

    def test_elementwise_nodes_are_transparent(self, device):
        node = PlanNode("relu", NodeKind.ELEMENTWISE, None, fixed_ms=0.5,
                        in_dims=(8, 8, 8, 8))
        plan = plan_optimal(device, [node])
        assert plan.steps[0].layer_ms == 0.5
        assert plan.steps[0].layout is None
