"""Golden equivalence: the pass pipeline reproduces the legacy planner.

The legacy chain algorithms are kept verbatim in ``repro.core.planner`` as
``_legacy_plan_with_heuristic`` / ``_legacy_plan_optimal``; the public
``plan_with_heuristic`` / ``plan_optimal`` now route through the pipeline.
These tests pin the two paths to identical plans — step sequence, layouts,
implementations, transform records, and total time — on every bundled
chain network, for both strategies.
"""

import pytest

from repro.core.pipeline import PipelineOptions, plan_network
from repro.core.planner import (
    _legacy_plan_optimal,
    _legacy_plan_with_heuristic,
    plan_optimal,
    plan_with_heuristic,
)
from repro.framework import Net
from repro.gpusim.session import SimulationContext
from repro.networks import build_network

CHAIN_NETWORKS = ("lenet", "cifar", "alexnet", "alexnet-grouped", "zfnet", "vgg")


@pytest.fixture(scope="module")
def ctx(device):
    """One shared timing cache for every planner run in this module."""
    return SimulationContext(device, check_memory=False)


def assert_plans_identical(actual, expected):
    assert actual.device == expected.device
    assert len(actual.steps) == len(expected.steps)
    for got, want in zip(actual.steps, expected.steps):
        assert got == want, f"{got.name}: {got} != {want}"
    assert actual.total_ms == pytest.approx(expected.total_ms, abs=1e-12)


@pytest.mark.parametrize("name", CHAIN_NETWORKS)
def test_wrapper_matches_legacy_heuristic(name, device, ctx):
    nodes = Net(build_network(name), context=ctx).planner_nodes(device)
    legacy = _legacy_plan_with_heuristic(device, nodes, context=ctx)
    assert_plans_identical(
        plan_with_heuristic(device, nodes, context=ctx), legacy
    )


@pytest.mark.parametrize("name", CHAIN_NETWORKS)
def test_wrapper_matches_legacy_optimal(name, device, ctx):
    nodes = Net(build_network(name), context=ctx).planner_nodes(device)
    legacy = _legacy_plan_optimal(device, nodes, context=ctx)
    assert_plans_identical(plan_optimal(device, nodes, context=ctx), legacy)


@pytest.mark.parametrize("name", CHAIN_NETWORKS)
@pytest.mark.parametrize("strategy", ("heuristic", "optimal"))
def test_plan_network_matches_legacy(name, strategy, device, ctx):
    """The netdef entry point (lowering through the IR, not through
    PlanNodes) still lands on the exact legacy plan."""
    netdef = build_network(name)
    nodes = Net(netdef, context=ctx).planner_nodes(device)
    legacy_fn = (
        _legacy_plan_with_heuristic
        if strategy == "heuristic"
        else _legacy_plan_optimal
    )
    legacy = legacy_fn(device, nodes, context=ctx)
    result = plan_network(
        device, netdef, PipelineOptions(strategy=strategy), context=ctx
    )
    assert_plans_identical(result.plan, legacy)


def test_no_fft_option_respected(device, ctx):
    nodes = Net(build_network("alexnet"), context=ctx).planner_nodes(device)
    legacy = _legacy_plan_optimal(device, nodes, allow_fft=False, context=ctx)
    assert_plans_identical(
        plan_optimal(device, nodes, allow_fft=False, context=ctx), legacy
    )
    assert all("fft" not in s.implementation for s in legacy.steps)


def test_empty_chain(device):
    assert plan_optimal(device, []).steps == ()
    assert plan_with_heuristic(device, []).steps == ()
