"""One-time threshold calibration: recovers the paper's per-device pairs."""


from repro.core import calibrate
from repro.core.calibration import REFERENCE_SHAPE


class TestCalibration:
    def test_titan_black_thresholds(self, device):
        """Paper reports (Ct, Nt) = (32, 128) on Titan Black; our model's
        C-crossover lands one grid point later (64), which classifies every
        Table-1 layer identically (no layer has 32 <= C < 64)."""
        result = calibrate(device)
        assert result.thresholds.nt == 128
        assert result.thresholds.ct in (32, 64)

    def test_titan_x_thresholds(self, titan_x):
        """Paper: '(Ct, Nt) is (128, 64)' on the Titan X."""
        result = calibrate(titan_x)
        assert result.thresholds.nt == 64
        assert result.thresholds.ct == 128

    def test_sweeps_are_monotone_crossovers(self, device):
        result = calibrate(device)
        # Once CHWN wins the N sweep it keeps winning (reuse only grows).
        winners = [p.chwn_wins for p in result.n_sweep]
        assert winners == sorted(winners)
        # Once NCHW wins the C sweep it keeps winning.
        c_winners = [not p.chwn_wins for p in result.c_sweep]
        assert c_winners == sorted(c_winners)

    def test_profiling_cost_is_one_time_and_small(self, device):
        """Paper: '395 ms for AlexNet in a complete forward-backward
        profiling' — same order of magnitude here."""
        result = calibrate(device)
        assert result.profiling_ms < 2000

    def test_summary_mentions_thresholds(self, device):
        result = calibrate(device)
        assert f"Ct={result.thresholds.ct}" in result.summary()

    def test_reference_shape_is_conv7_like(self):
        assert REFERENCE_SHAPE.ci == 256
        assert REFERENCE_SHAPE.co == 384

    def test_custom_sweep_grids(self, device):
        result = calibrate(device, n_values=(32, 128), c_values=(16, 256))
        assert result.thresholds.nt in (32, 128)
        assert len(result.n_sweep) == 2
