"""Planner with widened layout sets (NHWC included)."""

import pytest

from repro.core import plan_optimal
from repro.framework import Net
from repro.networks import build_network
from repro.tensors import CHWN, NCHW, NHWC


@pytest.fixture(scope="module")
def alexnet_nodes():
    from repro.gpusim import TITAN_BLACK

    return Net(build_network("alexnet")).planner_nodes(TITAN_BLACK)


class TestWidenedLayoutSpace:
    def test_nhwc_never_wins(self, device, alexnet_nodes):
        """Footnote 1's consequence at the network level: adding NHWC to the
        search space changes nothing — it is dominated by NCHW."""
        base = plan_optimal(device, alexnet_nodes)
        widened = plan_optimal(
            device, alexnet_nodes, layouts=(CHWN, NCHW, NHWC)
        )
        assert widened.total_ms == pytest.approx(base.total_ms, rel=1e-9)
        assert all(s.layout != NHWC for s in widened.steps if s.layout)

    def test_single_layout_space_degenerates_correctly(self, device, alexnet_nodes):
        only_nchw = plan_optimal(device, alexnet_nodes, layouts=(NCHW,))
        assert all(
            s.layout == NCHW for s in only_nchw.steps if s.layout is not None
        )
        assert only_nchw.transform_count == 0

    def test_empty_layout_space_rejected(self, device, alexnet_nodes):
        with pytest.raises(ValueError):
            plan_optimal(device, alexnet_nodes, layouts=())

    def test_wider_space_never_hurts(self, device):
        nodes = Net(build_network("cifar")).planner_nodes(device)
        two = plan_optimal(device, nodes).total_ms
        three = plan_optimal(device, nodes, layouts=(CHWN, NCHW, NHWC)).total_ms
        assert three <= two + 1e-9
