"""Synthetic dataset generators."""

import numpy as np
import pytest

from repro.data import Dataset, batches, synthetic_digits, synthetic_objects


class TestDigits:
    def test_shapes_and_dtypes(self):
        ds = synthetic_digits(n_samples=32, image=28, n_classes=10)
        assert ds.images.shape == (32, 1, 28, 28)
        assert ds.images.dtype == np.float32
        assert ds.labels.shape == (32,)
        assert ds.n_classes <= 10

    def test_deterministic(self):
        a = synthetic_digits(n_samples=8, seed=5)
        b = synthetic_digits(n_samples=8, seed=5)
        assert np.array_equal(a.images, b.images)
        assert np.array_equal(a.labels, b.labels)

    def test_classes_are_distinguishable(self):
        """Noise-free class prototypes must differ pairwise — otherwise the
        training tests could not possibly converge."""
        ds = synthetic_digits(n_samples=64, image=14, n_classes=4, noise=0.0, seed=0)
        prototypes = {}
        for img, label in zip(ds.images, ds.labels):
            prototypes.setdefault(int(label), img)
        keys = sorted(prototypes)
        for i in keys:
            for j in keys:
                if i < j:
                    diff = np.abs(prototypes[i] - prototypes[j]).mean()
                    assert diff > 0.1, (i, j)

    def test_validation(self):
        with pytest.raises(ValueError):
            synthetic_digits(n_samples=0)


class TestObjects:
    def test_shapes(self):
        ds = synthetic_objects(n_samples=16, image=24)
        assert ds.images.shape == (16, 3, 24, 24)

    def test_color_channels_differ(self):
        ds = synthetic_objects(n_samples=32, image=12, n_classes=6, noise=0.0)
        # At least one class must use an asymmetric color signature.
        asym = np.abs(ds.images[:, 0] - ds.images[:, 1]).mean()
        assert asym > 0.05


class TestDataset:
    def test_validation(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((4, 1, 2, 2)), np.zeros(3, dtype=int))
        with pytest.raises(ValueError):
            Dataset(np.zeros((4, 2, 2)), np.zeros(4, dtype=int))

    def test_subset(self):
        ds = synthetic_digits(n_samples=16)
        assert ds.subset(4).images.shape[0] == 4


class TestBatches:
    def test_batch_shapes_and_coverage(self):
        ds = synthetic_digits(n_samples=40, image=8, n_classes=2)
        seen = 0
        for x, y in batches(ds, batch_size=16):
            assert x.shape == (16, 1, 8, 8)
            assert y.shape == (16,)
            seen += len(y)
        assert seen == 32  # ragged tail dropped

    def test_epochs(self):
        ds = synthetic_digits(n_samples=32, image=8)
        n = sum(1 for _ in batches(ds, 16, epochs=3))
        assert n == 6

    def test_validation(self):
        ds = synthetic_digits(n_samples=8, image=8)
        with pytest.raises(ValueError):
            list(batches(ds, 0))
        with pytest.raises(ValueError):
            list(batches(ds, 16))
