"""Metrics registry: kinds, percentiles, merging, pickling, aggregation."""

from __future__ import annotations

import pickle

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    aggregate_metrics,
    global_registry,
    register_metrics_provider,
    reset_global_registry,
)


class TestCounterGauge:
    def test_counter(self):
        c = Counter("hits")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        assert c.summary() == 3.5

    def test_gauge_last_write_wins(self):
        g = Gauge("entries")
        g.set(5)
        g.set(2)
        assert g.value == 2.0


class TestHistogramPercentiles:
    def test_empty_raises(self):
        h = Histogram("ms")
        with pytest.raises(ValueError):
            h.percentile(50)

    def test_out_of_range_raises(self):
        h = Histogram("ms")
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.percentile(101)
        with pytest.raises(ValueError):
            h.percentile(-1)

    def test_single_value_every_percentile(self):
        h = Histogram("ms")
        h.observe(7.0)
        for p in (0, 1, 50, 99, 100):
            assert h.percentile(p) == 7.0

    def test_nearest_rank_1_to_100(self):
        h = Histogram("ms")
        for v in range(1, 101):
            h.observe(float(v))
        # Nearest-rank on N=100: p-th percentile is the p-th value.
        assert h.percentile(50) == 50.0
        assert h.percentile(90) == 90.0
        assert h.percentile(99) == 99.0
        assert h.percentile(100) == 100.0
        assert h.percentile(0) == 1.0  # rank clamps to the first value

    def test_nearest_rank_small_n(self):
        h = Histogram("ms")
        for v in (10.0, 20.0, 30.0, 40.0):
            h.observe(v)
        assert h.percentile(50) == 20.0  # ceil(50*4/100) = 2
        assert h.percentile(51) == 30.0  # ceil(51*4/100) = 3
        assert h.percentile(90) == 40.0
        assert h.percentile(25) == 10.0

    def test_unsorted_observations(self):
        h = Histogram("ms")
        for v in (5.0, 1.0, 3.0):
            h.observe(v)
        assert h.percentile(50) == 3.0
        assert h.summary()["min"] == 1.0
        assert h.summary()["max"] == 5.0

    def test_summary_shape(self):
        h = Histogram("ms")
        assert h.summary() == {"count": 0, "sum": 0.0}
        h.observe(2.0)
        h.observe(4.0)
        s = h.summary()
        assert s["count"] == 2
        assert s["sum"] == 6.0
        assert s["mean"] == 3.0
        assert set(s) == {"count", "sum", "min", "max", "mean", "p50", "p90", "p99"}


class TestRegistry:
    def test_get_or_create(self):
        r = MetricsRegistry()
        assert r.counter("a") is r.counter("a")
        assert r.value("a") == 0.0
        r.counter("a").inc(3)
        assert r.value("a") == 3.0

    def test_kind_conflict_raises(self):
        r = MetricsRegistry()
        r.counter("a")
        with pytest.raises(TypeError):
            r.gauge("a")
        with pytest.raises(TypeError):
            r.histogram("a")

    def test_value_of_histogram_raises(self):
        r = MetricsRegistry()
        r.histogram("h").observe(1.0)
        with pytest.raises(TypeError):
            r.value("h")

    def test_value_default_for_missing(self):
        r = MetricsRegistry()
        assert r.value("nope") == 0.0
        assert r.value("nope", default=-1.0) == -1.0

    def test_names_prefix_filter(self):
        r = MetricsRegistry()
        r.counter("sim.hits")
        r.counter("sim.misses")
        r.counter("dram.bytes")
        assert r.names("sim.") == ["sim.hits", "sim.misses"]
        assert r.names() == ["dram.bytes", "sim.hits", "sim.misses"]

    def test_snapshot(self):
        r = MetricsRegistry()
        r.counter("c").inc(2)
        r.gauge("g").set(7)
        r.histogram("h").observe(1.0)
        snap = r.snapshot()
        assert snap["c"] == 2.0
        assert snap["g"] == 7.0
        assert snap["h"]["count"] == 1

    def test_merge_semantics(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(1)
        b.counter("c").inc(2)
        a.gauge("g").set(1)
        b.gauge("g").set(9)
        a.histogram("h").observe(1.0)
        b.histogram("h").observe(2.0)
        a.merge(b)
        assert a.value("c") == 3.0  # counters add
        assert a.value("g") == 9.0  # gauges last-write-wins
        assert sorted(a.histogram("h").values) == [1.0, 2.0]  # concat

    def test_reset_prefix(self):
        r = MetricsRegistry()
        r.counter("sim.hits").inc()
        r.counter("dram.bytes").inc()
        r.reset("sim.")
        assert r.names() == ["dram.bytes"]
        r.reset()
        assert r.names() == []

    def test_pickle_round_trip(self):
        r = MetricsRegistry()
        r.counter("c").inc(5)
        r.histogram("h").observe(1.5)
        clone = pickle.loads(pickle.dumps(r))
        assert clone.value("c") == 5.0
        assert clone.histogram("h").values == [1.5]
        # The clone is live: its lock was rebuilt.
        clone.counter("c").inc()
        assert clone.value("c") == 6.0


class TestGlobalAggregate:
    def test_global_registry_reset(self):
        global_registry().counter("test.x").inc()
        assert global_registry().value("test.x") == 1.0
        reset_global_registry()
        assert global_registry().names() == []

    def test_aggregate_includes_providers(self):
        reset_global_registry()
        global_registry().counter("test.global").inc(1)
        extra = MetricsRegistry()
        extra.counter("test.provided").inc(4)
        register_metrics_provider("test.provider", lambda: [extra])
        try:
            total = aggregate_metrics()
            assert total.value("test.global") == 1.0
            assert total.value("test.provided") == 4.0
            # The aggregate is a fresh snapshot, not a live alias.
            total.counter("test.global").inc(100)
            assert global_registry().value("test.global") == 1.0
        finally:
            from repro.obs import metrics as m

            m._PROVIDERS.pop("test.provider", None)
            reset_global_registry()

    def test_provider_registration_idempotent(self):
        from repro.obs import metrics as m

        calls = []
        register_metrics_provider("test.idem", lambda: calls.append(1) or [])
        register_metrics_provider("test.idem", lambda: calls.append(2) or [])
        try:
            aggregate_metrics()
            assert calls == [2]  # re-registration replaced, not stacked
        finally:
            m._PROVIDERS.pop("test.idem", None)
