"""Span recording: nesting, ordering, threading, merge, and the null path."""

from __future__ import annotations

import os
import threading

import pytest

from repro.obs import (
    Span,
    TraceEvent,
    Tracer,
    active_tracer,
    install_tracer,
    tracing_enabled,
    uninstall_tracer,
)
from repro.obs.tracer import span as obs_span


@pytest.fixture(autouse=True)
def _no_leftover_tracer():
    uninstall_tracer()
    yield
    uninstall_tracer()


class TestSpanRecording:
    def test_basic_span(self):
        tracer = Tracer("t")
        with tracer.span("work", "cat", key="value") as sp:
            pass
        (recorded,) = tracer.spans()
        assert recorded is sp
        assert recorded.name == "work"
        assert recorded.category == "cat"
        assert recorded.attrs == {"key": "value"}
        assert recorded.pid == os.getpid()
        assert recorded.duration_us >= 0.0
        assert recorded.end_us == pytest.approx(
            recorded.start_us + recorded.duration_us
        )

    def test_nesting_sets_parent_ids(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("middle") as middle:
                with tracer.span("inner") as inner:
                    pass
        assert outer.parent_id is None
        assert middle.parent_id == outer.span_id
        assert inner.parent_id == middle.span_id

    def test_siblings_share_parent(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent_id == outer.span_id
        assert b.parent_id == outer.span_id

    def test_completion_order_inner_first(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        names = [s.name for s in tracer.spans()]
        assert names == ["inner", "outer"]

    def test_span_ids_unique_and_increasing(self):
        tracer = Tracer()
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        ids = [s.span_id for s in tracer.spans()]
        assert ids == sorted(ids)
        assert len(set(ids)) == 5

    def test_attrs_attached_mid_flight(self):
        tracer = Tracer()
        with tracer.span("work") as sp:
            sp.attrs["result"] = 42
        assert tracer.spans()[0].attrs["result"] == 42

    def test_span_recorded_even_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        assert [s.name for s in tracer.spans()] == ["doomed"]
        # The stack unwound: a later span is not parented to the dead one.
        with tracer.span("after") as after:
            pass
        assert after.parent_id is None

    def test_record_after_the_fact(self):
        tracer = Tracer()
        sp = tracer.record("replay", "sim.cache", 1500.0, accesses=10)
        assert sp.duration_us == 1500.0
        assert sp.attrs == {"accesses": 10}
        assert sp.end_us <= tracer.now_us()

    def test_record_nests_under_open_span(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            inner = tracer.record("timed", "cat", 10.0)
        assert inner.parent_id == outer.span_id

    def test_events(self):
        tracer = Tracer()
        ev = tracer.event("decision", "pipeline.decision", layout="CHWN")
        assert isinstance(ev, TraceEvent)
        assert tracer.events() == (ev,)
        assert ev.attrs == {"layout": "CHWN"}

    def test_clear(self):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        tracer.event("e")
        tracer.clear()
        assert tracer.spans() == ()
        assert tracer.events() == ()


class TestThreading:
    def test_threads_do_not_cross_link_parents(self):
        tracer = Tracer()
        barrier = threading.Barrier(2)

        def work(name: str) -> None:
            with tracer.span(f"outer-{name}"):
                barrier.wait(timeout=5)
                with tracer.span(f"inner-{name}"):
                    pass

        threads = [threading.Thread(target=work, args=(n,)) for n in "ab"]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        by_name = {s.name: s for s in tracer.spans()}
        assert len(by_name) == 4
        for n in "ab":
            assert by_name[f"inner-{n}"].parent_id == by_name[f"outer-{n}"].span_id
            assert by_name[f"inner-{n}"].tid == by_name[f"outer-{n}"].tid

    def test_concurrent_ids_unique(self):
        tracer = Tracer()

        def work() -> None:
            for _ in range(50):
                with tracer.span("s"):
                    pass

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        ids = [s.span_id for s in tracer.spans()]
        assert len(ids) == 200
        assert len(set(ids)) == 200


class TestAbsorb:
    def test_absorb_extends_streams(self):
        parent = Tracer("parent")
        worker = Tracer("worker")
        with worker.span("chunk", "parallel"):
            pass
        worker.event("mark", "parallel")
        n = parent.absorb(worker.spans(), worker.events())
        assert n == 1
        assert [s.name for s in parent.spans()] == ["chunk"]
        assert [e.name for e in parent.events()] == ["mark"]

    def test_absorbed_spans_keep_identity(self):
        parent = Tracer()
        foreign = Span(
            name="remote",
            category="parallel",
            start_us=1.0,
            duration_us=2.0,
            pid=99999,
            tid=7,
            span_id=1,
        )
        parent.absorb([foreign])
        with parent.span("local"):
            pass
        spans = parent.spans()
        assert spans[0].pid == 99999
        assert spans[1].pid == os.getpid()


class TestModuleLevelSpan:
    def test_disabled_yields_none(self):
        assert not tracing_enabled()
        with obs_span("anything", "cat") as sp:
            assert sp is None

    def test_enabled_records_on_active_tracer(self):
        tracer = install_tracer(Tracer("active"))
        try:
            with obs_span("work", "cat", k=1) as sp:
                assert sp is not None
            assert [s.name for s in tracer.spans()] == ["work"]
        finally:
            uninstall_tracer()

    def test_install_uninstall_round_trip(self):
        tracer = install_tracer()
        assert active_tracer() is tracer
        assert tracing_enabled()
        assert uninstall_tracer() is tracer
        assert active_tracer() is None
        assert uninstall_tracer() is None


class TestClock:
    def test_now_us_monotonic_nondecreasing(self):
        tracer = Tracer()
        stamps = [tracer.now_us() for _ in range(100)]
        assert stamps == sorted(stamps)

    def test_span_times_ordered(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        a, b = tracer.spans()
        assert a.start_us <= b.start_us
