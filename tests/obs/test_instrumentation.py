"""Observability is observational: instrumented paths compute identical
results with tracing on or off, and the span/metrics streams actually cover
the subsystems the tentpole promises (pipeline passes, kernel dispatch,
cache replay, planner decisions, parallel workers)."""

from __future__ import annotations

import json

import pytest

from repro.analysis.sweeps import sweep_pool
from repro.cli import main
from repro.core.pipeline import PipelineOptions, plan_network
from repro.gpusim import SimulationContext, get_device
from repro.networks import build_network
from repro.obs import (
    Tracer,
    install_tracer,
    uninstall_tracer,
)
from repro.obs.metrics import global_registry, reset_global_registry


@pytest.fixture(autouse=True)
def _clean_obs_state():
    uninstall_tracer()
    reset_global_registry()
    yield
    uninstall_tracer()
    reset_global_registry()


def _traced(fn):
    tracer = install_tracer(Tracer("test"))
    try:
        return fn(), tracer
    finally:
        uninstall_tracer()


class TestByteIdentity:
    """Tracing must never change what gets computed."""

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_sweep_identical_with_and_without_tracing(self, device, small_pool, jobs):
        def run():
            return sweep_pool(
                device, small_pool, "c", (4, 8, 16),
                context=SimulationContext(device, check_memory=False), jobs=jobs,
            )

        plain = run()
        traced, tracer = _traced(run)
        assert traced == plain
        assert len(tracer.spans()) > 0

    def test_plan_identical_with_and_without_tracing(self, device):
        netdef = build_network("lenet")
        plain = plan_network(device, netdef, PipelineOptions())
        traced, _ = _traced(lambda: plan_network(device, netdef, PipelineOptions()))
        assert traced.plan == plain.plan

    def test_plan_text_stdout_byte_identical(self, capsys, tmp_path):
        argv = ["plan", "--network", "lenet"]
        assert main(argv) == 0
        plain = capsys.readouterr().out
        assert main(argv + ["--trace", str(tmp_path / "t.json")]) == 0
        captured = capsys.readouterr()
        assert captured.out == plain  # stdout byte-identical
        assert "trace: wrote" in captured.err  # file note on stderr only

    def test_plan_json_identical_modulo_wall_clock(self, capsys, tmp_path):
        argv = ["plan", "--network", "lenet", "--format", "json"]

        def normalized() -> dict:
            payload = json.loads(capsys.readouterr().out)
            # Pass wall-clock timings vary run to run with or without
            # tracing; everything else (the plan itself) must not.
            for p in payload["passes"]:
                p["ms"] = 0.0
            return payload

        assert main(argv) == 0
        plain = normalized()
        assert main(argv + ["--trace", str(tmp_path / "t.json")]) == 0
        assert normalized() == plain


class TestCoverage:
    """The streams contain spans for every subsystem the tentpole names."""

    def test_plan_records_pass_and_kernel_spans(self, device):
        netdef = build_network("lenet")
        _, tracer = _traced(lambda: plan_network(device, netdef, PipelineOptions()))
        by_cat = {}
        for s in tracer.spans():
            by_cat.setdefault(s.category, []).append(s.name)
        assert "pipeline" in by_cat
        assert "sim.kernel" in by_cat
        pass_names = by_cat["pipeline.pass"]
        for expected in ("ResolveShapes", "AssignLayouts", "SelectImplementations"):
            assert expected in pass_names

    def test_pass_spans_nest_under_run_pipeline(self, device):
        netdef = build_network("lenet")
        _, tracer = _traced(lambda: plan_network(device, netdef, PipelineOptions()))
        spans = {s.span_id: s for s in tracer.spans()}
        root = next(s for s in spans.values() if s.name == "run_pipeline")
        for s in spans.values():
            if s.category == "pipeline.pass":
                assert s.parent_id == root.span_id

    def test_planner_decision_events(self, device):
        netdef = build_network("lenet")
        _, tracer = _traced(lambda: plan_network(device, netdef, PipelineOptions()))
        decisions = [e for e in tracer.events() if e.category == "pipeline.decision"]
        assert decisions, "AssignLayouts should emit one decision event per node"
        for ev in decisions:
            assert "layout" in ev.attrs
            assert "algorithm" in ev.attrs

    def test_cache_replay_spans(self, device, small_pool):
        from repro.layers import make_pool_kernel

        # A fresh context forces a real simulation (no session-cache hit),
        # and the strided NCHW pooling model replays the L2 stream.
        ctx = SimulationContext(device, check_memory=False)
        _, tracer = _traced(
            lambda: ctx.run(make_pool_kernel(small_pool, "nchw-linear"))
        )
        replays = [s for s in tracer.spans() if s.category == "sim.cache"]
        assert replays
        assert all("accesses" in s.attrs for s in replays)

    def test_parallel_workers_ship_spans_home(self, device, small_pool, monkeypatch):
        import os

        from repro.gpusim import shutdown_pool

        # A 1-CPU box would clamp --jobs to serial; pretend it is wider,
        # and sweep enough cells that the grid splits into several chunks
        # (the chunk floor keeps tiny grids serial on purpose).
        monkeypatch.setattr(os, "cpu_count", lambda: 4)

        def run():
            return sweep_pool(
                device, small_pool, "c", (4, 6, 8, 10, 12, 16, 24, 32),
                context=SimulationContext(device, check_memory=False), jobs=4,
            )

        try:
            _, tracer = _traced(run)
        finally:
            shutdown_pool()
        pids = {s.pid for s in tracer.spans()}
        assert len(pids) > 1, "worker spans should carry worker pids"
        chunk_spans = [s for s in tracer.spans() if s.name == "chunk"]
        assert chunk_spans and all(s.pid != os.getpid() for s in chunk_spans)
        merges = [e for e in tracer.events() if e.name == "worker-merge"]
        assert len(merges) == len(chunk_spans)  # one merge per shipped chunk

    def test_worker_metrics_merge_into_global(self, device, small_pool):
        def run():
            return sweep_pool(
                device, small_pool, "c", (4, 8, 16),
                context=SimulationContext(device, check_memory=False), jobs=2,
            )

        _traced(run)
        # Workers' cache-model replays fold into the parent's global registry.
        assert global_registry().value("cache_model.replays") > 0


class TestCliSurface:
    def test_profile_writes_valid_trace(self, tmp_path, capsys):
        from repro.obs import validate_chrome_trace

        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        status = main(
            ["profile", "lenet", "--trace", str(trace), "--metrics", str(metrics)]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "span summary by category" in out
        payload = json.loads(trace.read_text())
        assert validate_chrome_trace(payload) == []
        cats = {e.get("cat") for e in payload["traceEvents"]}
        assert {"cli", "pipeline", "pipeline.pass", "sim.kernel"} <= cats
        m = json.loads(metrics.read_text())
        assert any(k.startswith("pipeline.pass_ms.") for k in m["metrics"])

    def test_plan_trace_has_pass_timings_without_explain(self, tmp_path):
        trace = tmp_path / "t.json"
        assert main(["plan", "--network", "lenet", "--trace", str(trace)]) == 0
        payload = json.loads(trace.read_text())
        passes = [
            e for e in payload["traceEvents"] if e.get("cat") == "pipeline.pass"
        ]
        assert passes, "--trace alone must expose per-pass spans (no --explain)"
        assert all(e["dur"] >= 0 for e in passes)

    def test_plan_jsonl_export(self, tmp_path):
        path = tmp_path / "t.jsonl"
        assert main(["plan", "--network", "lenet", "--jsonl", str(path)]) == 0
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert any(r["type"] == "span" for r in records)

    def test_no_tracer_leaks_after_cli(self, tmp_path):
        from repro.obs import active_tracer

        main(["plan", "--network", "lenet", "--trace", str(tmp_path / "t.json")])
        assert active_tracer() is None

    def test_metrics_without_trace(self, tmp_path, capsys):
        metrics = tmp_path / "m.json"
        assert main(["plan", "--network", "lenet", "--metrics", str(metrics)]) == 0
        payload = json.loads(metrics.read_text())
        assert payload["version"] == 1
        assert "sim.queries.misses" in payload["metrics"]
        assert "metrics: wrote" in capsys.readouterr().err


class TestStatsMetricsAgreement:
    """--sim-stats and --metrics are two views over one registry."""

    def test_sim_stats_counters_equal_metrics(self, device):
        from repro.gpusim.session import SimulationContext

        ctx = SimulationContext(device, check_memory=False)
        from repro.layers import make_pool_kernel
        from repro.layers.base import PoolSpec

        spec = PoolSpec(n=8, c=4, h=8, w=8, window=2, stride=2)
        ctx.run(make_pool_kernel(spec, "chwn"))
        ctx.run(make_pool_kernel(spec, "chwn"))  # second hit from cache
        assert ctx.stats.hits == ctx.metrics.value("sim.queries.hits")
        assert ctx.stats.misses == ctx.metrics.value("sim.queries.misses")
        assert ctx.stats.hits == 1
        assert ctx.stats.misses == 1
        assert ctx.metrics.histogram("sim.kernel_sim_ms").count == 1

    def test_cli_sim_stats_and_metrics_agree(self, tmp_path, capsys):
        metrics = tmp_path / "m.json"
        assert (
            main(
                [
                    "plan", "--network", "lenet",
                    "--sim-stats", "--metrics", str(metrics),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        payload = json.loads(metrics.read_text())
        # The summary's kernel count equals the aggregated metrics' count.
        misses = payload["metrics"]["sim.queries.misses"]
        assert f"kernels timed  : {int(misses)}" in out
