"""Exporters: Chrome-trace schema, JSONL stream, metrics JSON, checker CLI."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    MetricsRegistry,
    Tracer,
    chrome_trace,
    summarize_spans,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
    write_metrics,
)
from repro.obs.check import main as check_main


def _sample_tracer() -> Tracer:
    tracer = Tracer("unit")
    with tracer.span("outer", "pipeline", nodes=3):
        with tracer.span("inner", "sim.kernel", kernel="conv"):
            pass
    tracer.event("decision", "pipeline.decision", layout="CHWN")
    return tracer


class TestChromeTrace:
    def test_payload_is_valid(self):
        tracer = _sample_tracer()
        payload = chrome_trace(tracer.spans(), tracer.events())
        assert validate_chrome_trace(payload) == []

    def test_metadata_rows_per_pid(self):
        payload = chrome_trace(_sample_tracer().spans())
        meta = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        assert {e["name"] for e in meta} == {"process_name", "process_sort_index"}

    def test_complete_events_sorted_by_start(self):
        payload = chrome_trace(_sample_tracer().spans())
        xs = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert [e["name"] for e in xs] == ["outer", "inner"]  # outer starts first
        assert xs == sorted(xs, key=lambda e: e["ts"])

    def test_args_carry_attrs_and_ids(self):
        payload = chrome_trace(_sample_tracer().spans())
        outer = next(e for e in payload["traceEvents"] if e.get("name") == "outer")
        assert outer["args"]["nodes"] == 3
        assert outer["args"]["parent_id"] is None
        inner = next(e for e in payload["traceEvents"] if e.get("name") == "inner")
        assert inner["args"]["parent_id"] == outer["args"]["span_id"]

    def test_instant_events(self):
        tracer = _sample_tracer()
        payload = chrome_trace(tracer.spans(), tracer.events())
        (instant,) = [e for e in payload["traceEvents"] if e["ph"] == "i"]
        assert instant["name"] == "decision"
        assert instant["s"] == "t"
        assert instant["args"]["layout"] == "CHWN"

    def test_non_json_attrs_coerced(self):
        tracer = Tracer()
        with tracer.span("s", "c", layout=object()) as sp:
            sp.attrs["tup"] = (1, 2)
        payload = chrome_trace(tracer.spans())
        assert validate_chrome_trace(payload) == []
        json.dumps(payload)  # fully serializable

    def test_whole_payload_round_trips(self, tmp_path):
        tracer = _sample_tracer()
        target = write_chrome_trace(tmp_path / "t.json", tracer)
        loaded = json.loads(target.read_text())
        assert validate_chrome_trace(loaded) == []
        assert loaded["displayTimeUnit"] == "ms"
        names = [
            e["args"]["name"]
            for e in loaded["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        ]
        assert "unit" in names  # parent pid uses the tracer's process name


class TestValidatorNegatives:
    def test_not_a_dict(self):
        assert validate_chrome_trace([1, 2]) != []

    def test_missing_trace_events(self):
        assert validate_chrome_trace({"foo": 1}) == ["payload lacks a 'traceEvents' array"]

    def test_bad_phase(self):
        bad = {"traceEvents": [{"name": "x", "ph": "Q", "pid": 1, "tid": 1}]}
        assert any("'ph'" in p for p in validate_chrome_trace(bad))

    def test_negative_duration(self):
        bad = {
            "traceEvents": [
                {"name": "x", "ph": "X", "pid": 1, "tid": 1, "ts": 0, "dur": -5}
            ]
        }
        assert any("dur" in p for p in validate_chrome_trace(bad))

    def test_missing_name_and_pid(self):
        bad = {"traceEvents": [{"ph": "X", "tid": 1, "ts": 0, "dur": 1}]}
        problems = validate_chrome_trace(bad)
        assert any("name" in p for p in problems)
        assert any("pid" in p for p in problems)

    def test_non_object_event(self):
        assert any(
            "not an object" in p
            for p in validate_chrome_trace({"traceEvents": ["nope"]})
        )


class TestJsonl:
    def test_stream_shape(self, tmp_path):
        tracer = _sample_tracer()
        target = write_jsonl(tmp_path / "t.jsonl", tracer)
        records = [json.loads(line) for line in target.read_text().splitlines()]
        spans = [r for r in records if r["type"] == "span"]
        events = [r for r in records if r["type"] == "event"]
        assert [s["name"] for s in spans] == ["outer", "inner"]
        assert [e["name"] for e in events] == ["decision"]
        assert spans[1]["parent_id"] == spans[0]["span_id"]


class TestMetricsJson:
    def test_explicit_registry(self, tmp_path):
        r = MetricsRegistry()
        r.counter("sim.hits").inc(3)
        r.histogram("sim.ms").observe(1.5)
        target = write_metrics(tmp_path / "m.json", r)
        payload = json.loads(target.read_text())
        assert payload["version"] == 1
        assert payload["metrics"]["sim.hits"] == 3.0
        assert payload["metrics"]["sim.ms"]["count"] == 1


class TestCheckCli:
    def _write(self, tmp_path, payload) -> str:
        p = tmp_path / "trace.json"
        p.write_text(json.dumps(payload))
        return str(p)

    def test_valid_trace_exits_zero(self, tmp_path, capsys):
        tracer = _sample_tracer()
        path = write_chrome_trace(tmp_path / "t.json", tracer)
        assert check_main([str(path)]) == 0
        assert "valid Chrome trace" in capsys.readouterr().out

    def test_require_category(self, tmp_path):
        tracer = _sample_tracer()
        path = str(write_chrome_trace(tmp_path / "t.json", tracer))
        assert check_main([path, "--require-category", "sim.kernel"]) == 0
        assert check_main([path, "--require-category", "no.such"]) == 1

    def test_invalid_schema_exits_one(self, tmp_path):
        path = self._write(tmp_path, {"traceEvents": [{"ph": "Q"}]})
        assert check_main([path]) == 1

    def test_unreadable_exits_two(self, tmp_path):
        missing = str(tmp_path / "nope.json")
        assert check_main([missing]) == 2
        garbled = tmp_path / "bad.json"
        garbled.write_text("{not json")
        assert check_main([str(garbled)]) == 2


class TestSummarizeSpans:
    def test_empty(self):
        assert summarize_spans(()) == "no spans recorded"

    def test_category_totals_and_top(self):
        tracer = _sample_tracer()
        text = summarize_spans(tracer.spans(), top=1)
        assert "pipeline" in text
        assert "sim.kernel" in text
        assert "top 1 spans by duration" in text
        # Longest span is the outer one (it contains the inner).
        assert text.splitlines()[-1].lstrip().startswith("outer")
