"""Table 1 layer configurations."""

import pytest

from repro.networks import (
    CLASS_LAYERS,
    CONV_LAYERS,
    FIG13_SOFTMAX,
    POOL_LAYERS,
    conv_layer,
    pool_layer,
)


class TestConvLayers:
    def test_all_twelve_present(self):
        assert set(CONV_LAYERS) == {f"CV{i}" for i in range(1, 13)}

    @pytest.mark.parametrize(
        "name,n,co,h,f,ci,s",
        [
            ("CV1", 128, 16, 28, 5, 1, 1),
            ("CV2", 128, 16, 14, 5, 16, 1),
            ("CV3", 128, 64, 24, 5, 3, 1),
            ("CV4", 128, 64, 12, 5, 64, 1),
            ("CV5", 64, 96, 224, 3, 3, 2),
            ("CV6", 64, 256, 55, 5, 96, 2),
            ("CV7", 64, 384, 13, 3, 256, 1),
            ("CV8", 64, 384, 13, 3, 384, 1),
            ("CV9", 32, 64, 224, 3, 3, 1),
            ("CV10", 32, 256, 56, 3, 128, 1),
            ("CV11", 32, 512, 28, 3, 256, 1),
            ("CV12", 32, 512, 14, 3, 512, 1),
        ],
    )
    def test_rows_match_paper(self, name, n, co, h, f, ci, s):
        spec = CONV_LAYERS[name]
        assert (spec.n, spec.co, spec.h, spec.fh, spec.ci, spec.stride) == (
            n, co, h, f, ci, s,
        )

    def test_lookup_helpers(self):
        assert conv_layer("cv3") is CONV_LAYERS["CV3"]
        with pytest.raises(KeyError, match="CV1"):
            conv_layer("CV99")


class TestPoolLayers:
    def test_all_ten_present(self):
        assert set(POOL_LAYERS) == {f"PL{i}" for i in range(1, 11)}

    def test_overlap_classification(self):
        """PL1/PL2 are LeNet's non-overlapped 2x2/s2; the rest overlap."""
        assert not POOL_LAYERS["PL1"].overlapped
        assert not POOL_LAYERS["PL2"].overlapped
        for i in range(3, 11):
            assert POOL_LAYERS[f"PL{i}"].overlapped, f"PL{i}"

    @pytest.mark.parametrize(
        "name,n,c,h",
        [
            ("PL5", 128, 96, 55),
            ("PL6", 128, 192, 27),
            ("PL7", 128, 256, 13),
            ("PL8", 64, 96, 110),
        ],
    )
    def test_rows_match_paper(self, name, n, c, h):
        spec = POOL_LAYERS[name]
        assert (spec.n, spec.c, spec.h) == (n, c, h)

    def test_lookup_helpers(self):
        assert pool_layer("pl8") is POOL_LAYERS["PL8"]
        with pytest.raises(KeyError):
            pool_layer("PL0")


class TestClassifiers:
    def test_class_configs(self):
        assert CLASS_LAYERS["CLASS1"].categories == 10
        assert CLASS_LAYERS["CLASS3"].n == 128
        assert CLASS_LAYERS["CLASS3"].categories == 1000
        assert CLASS_LAYERS["CLASS4"].n == 64
        assert CLASS_LAYERS["CLASS5"].n == 32

    def test_fig13_grid(self):
        """Twelve configurations: batch {32,64,128} x categories
        {10,100,1000,10000}."""
        assert len(FIG13_SOFTMAX) == 12
        assert FIG13_SOFTMAX["128/10000"].categories == 10000
        assert FIG13_SOFTMAX["32/10"].n == 32
