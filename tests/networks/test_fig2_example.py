"""The example CNN of the paper's Fig. 2, built and executed.

Fig. 2: a 32x32 input image, C1 = 8 feature maps of 28x28 (5x5
convolution), P1 = 8 maps of 14x14 (2x2 pooling), a fully-connected stage,
and a softmax producing a letter distribution ("Z: 0.9, L: 0.05, ...").
"""

import numpy as np
import pytest

from repro.framework import (
    ConvDef,
    FCDef,
    Net,
    NetworkDef,
    PoolDef,
    SoftmaxDef,
    Trainer,
)


@pytest.fixture(scope="module")
def fig2_net():
    return Net(
        NetworkDef(
            "fig2",
            batch=8,
            in_channels=1,
            in_h=32,
            in_w=32,
            layers=(
                ConvDef("C1", co=8, f=5),
                PoolDef("P1", window=2, stride=2),
                FCDef("FC", out_features=64),
                FCDef("out", out_features=26, relu=False),  # letter labels
                SoftmaxDef("prob"),
            ),
        )
    )


class TestFig2Structure:
    def test_c1_is_8_maps_of_28x28(self, fig2_net):
        c1 = fig2_net.layers[0]
        assert c1.out_dims == (8, 8, 28, 28)

    def test_p1_is_8_maps_of_14x14(self, fig2_net):
        p1 = fig2_net.layers[1]
        assert p1.out_dims == (8, 8, 14, 14)

    def test_softmax_emits_a_label_distribution(self, fig2_net):
        out = fig2_net.forward(fig2_net.make_input(seed=0))
        assert out.shape == (8, 26)
        np.testing.assert_allclose(out.sum(axis=1), 1.0, atol=1e-5)
        assert (out >= 0).all()

    def test_a_confident_network_looks_like_the_figure(self, fig2_net):
        """After a few steps of training toward label 'Z' on a fixed input,
        the Z probability dominates — the '0.9 / 0.05 / ...' picture."""
        z = 25
        rng = np.random.default_rng(4)
        x = rng.standard_normal((8, 1, 32, 32)).astype(np.float32)
        labels = np.full(8, z)
        trainer = Trainer(fig2_net, lr=0.1)
        for _ in range(12):
            trainer.step(x, labels)
        _, _, grads = trainer.loss_and_grads(x, labels)
        del grads
        logits, _ = trainer._forward(x)
        probs = np.exp(logits - logits.max(1, keepdims=True))
        probs /= probs.sum(1, keepdims=True)
        assert (probs[:, z] > 0.5).all()
