"""The benchmark harness's own infrastructure (figutil) and determinism."""

import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

sys.path.insert(0, str(Path(__file__).parent.parent / "benchmarks"))

from figutil import FigureTable, geomean  # noqa: E402


class TestGeomean:
    def test_known_value(self):
        assert geomean([1, 4]) == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    @given(values=st.lists(st.floats(0.01, 100.0), min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_between_min_and_max(self, values):
        g = geomean(values)
        assert min(values) <= g * 1.0001
        assert g <= max(values) * 1.0001

    @given(
        values=st.lists(st.floats(0.01, 100.0), min_size=1, max_size=10),
        scale=st.floats(0.1, 10.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_scales_linearly(self, values, scale):
        assert geomean([v * scale for v in values]) == pytest.approx(
            geomean(values) * scale, rel=1e-6
        )


class TestFigureTable:
    def make(self):
        t = FigureTable("demo", ["name", "value"])
        t.add("a", 1.0)
        t.add("b", 2.0)
        return t

    def test_row_and_column_access(self):
        t = self.make()
        assert t.row("a") == ("a", 1.0)
        assert t.column("value") == [1.0, 2.0]

    def test_missing_row(self):
        with pytest.raises(KeyError):
            self.make().row("zzz")

    def test_width_mismatch_rejected(self):
        t = self.make()
        with pytest.raises(ValueError):
            t.add("c", 1.0, 2.0)

    def test_render_contains_everything(self):
        t = self.make()
        t.note("a note")
        text = t.render()
        assert "demo" in text and "a note" in text
        assert "1.000" in text and "b" in text


class TestDeterminism:
    def test_traced_kernels_are_deterministic(self, device):
        """Two independent engines must produce identical traced profiles
        (sampling is strided, never random)."""
        from repro.gpusim import SimulationEngine
        from repro.layers import make_pool_kernel
        from repro.networks import POOL_LAYERS

        spec = POOL_LAYERS["PL5"]
        a = SimulationEngine(device).run(make_pool_kernel(spec, "nchw-linear"))
        b = SimulationEngine(device).run(make_pool_kernel(spec, "nchw-linear"))
        assert a.time_ms == b.time_ms
        assert a.transactions == b.transactions

    def test_whole_network_timing_is_deterministic(self, device):
        from repro.baselines import time_network
        from repro.framework import Net
        from repro.networks import build_network

        net1 = Net(build_network("cifar"))
        net2 = Net(build_network("cifar"))
        t1 = time_network(net1, device, "opt").total_ms
        t2 = time_network(net2, device, "opt").total_ms
        assert t1 == t2

    def test_numeric_forward_is_seeded(self):
        from repro.framework import Net
        from repro.networks import build_network

        net = Net(build_network("lenet", batch=4))
        a = net.forward(net.make_input(seed=3), net.init_weights(seed=1))
        b = net.forward(net.make_input(seed=3), net.init_weights(seed=1))
        np.testing.assert_array_equal(a, b)


class TestAnnotationFuzz:
    @given(
        layout=st.sampled_from(["CHWN", "NCHW"]),
        impl=st.sampled_from(["direct", "im2col", "fft", "chwn-coarsened"]),
        coarsen=st.one_of(
            st.none(), st.tuples(st.integers(1, 8), st.integers(1, 8))
        ),
    )
    @settings(max_examples=30, deadline=None)
    def test_annotation_encode_parse_roundtrip(self, layout, impl, coarsen):
        from repro.framework import (
            LayerAnnotation,
            parse_annotated_netdef,
        )
        from repro.tensors import parse_layout

        ann = LayerAnnotation(
            layout=parse_layout(layout), implementation=impl, coarsening=coarsen
        )
        text = (
            "network f batch=2 input=1x8x8\n"
            "conv c1 co=2 f=3\n"
            f"#@ c1 {ann.encode()}\n"
        )
        _, parsed = parse_annotated_netdef(text)
        assert parsed["c1"] == ann
