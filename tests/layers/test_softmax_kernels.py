"""Softmax kernel models: Fig. 13 bandwidths, fusion/parallelism ablation."""

import pytest

from repro.gpusim import simulate
from repro.layers import (
    CudnnSoftmax,
    FusedParallelSoftmax,
    FusedSoftmax,
    SoftmaxSpec,
    five_kernel_softmax,
    make_softmax_kernel,
)
from repro.networks import FIG13_SOFTMAX


def effective_bw(spec, stats):
    """Useful bytes (read once + write once) over time."""
    return 2 * spec.nbytes / (stats.time_ms * 1e6)


class TestFiveKernelBaseline:
    def test_five_launches(self, device):
        stats = simulate(device, five_kernel_softmax(SoftmaxSpec(128, 1000)))
        assert stats.n_launches == 5

    def test_intermediates_roundtrip_memory(self, device):
        spec = SoftmaxSpec(128, 1000)
        base = five_kernel_softmax(spec).memory_profile(device)
        fused = FusedSoftmax(spec).memory_profile(device)
        assert base.useful_bytes > 3 * fused.useful_bytes

    def test_latency_bound_with_128_threads(self, device):
        """Paper: 'the number of threads for the kernel is only 128' —
        latency cannot be hidden."""
        stats = simulate(device, five_kernel_softmax(SoftmaxSpec(128, 10000)))
        assert effective_bw(SoftmaxSpec(128, 10000), stats) < 10


class TestCudnnBaseline:
    def test_bl_best_bandwidth_zone(self, device):
        """Fig. 13: the best baseline (cuDNN) peaks at ~58 GB/s."""
        best = max(
            effective_bw(spec, simulate(device, CudnnSoftmax(spec)))
            for spec in FIG13_SOFTMAX.values()
        )
        assert 25 < best < 90

    def test_cudnn_beats_five_kernel(self, device):
        spec = SoftmaxSpec(128, 1000)
        assert (
            simulate(device, CudnnSoftmax(spec)).time_ms
            < simulate(device, five_kernel_softmax(spec)).time_ms
        )


class TestOptimizedKernel:
    def test_single_launch(self, device):
        stats = simulate(device, FusedParallelSoftmax(SoftmaxSpec(128, 1000)))
        assert stats.n_launches == 1

    def test_large_config_approaches_peak(self, device):
        """Paper: at 10000 categories 'the bandwidth achieved in Opt can
        reach 220.95 GB/s, 94.02% of the effective GPU memory bandwidth'."""
        spec = SoftmaxSpec(128, 10000)
        bw = effective_bw(spec, simulate(device, FusedParallelSoftmax(spec)))
        assert bw > 0.75 * device.mem_bandwidth_gbs

    def test_small_configs_underutilize(self, device):
        """Paper: 'for small layer sizes, the bandwidth cannot be well
        utilized'."""
        spec = SoftmaxSpec(32, 10)
        bw = effective_bw(spec, simulate(device, FusedParallelSoftmax(spec)))
        assert bw < 30

    @pytest.mark.parametrize("key", sorted(FIG13_SOFTMAX))
    def test_opt_beats_every_baseline_everywhere(self, device, key):
        spec = FIG13_SOFTMAX[key]
        t_opt = simulate(device, FusedParallelSoftmax(spec)).time_ms
        t_cudnn = simulate(device, CudnnSoftmax(spec)).time_ms
        t_5k = simulate(device, five_kernel_softmax(spec)).time_ms
        assert t_opt <= t_cudnn * 1.001
        assert t_opt < t_5k


class TestAblation:
    def test_fusion_alone_helps(self, device):
        """Paper: fusion contributes 'an average of 2.81x speedup'."""
        ratios = []
        for spec in FIG13_SOFTMAX.values():
            base = simulate(device, five_kernel_softmax(spec)).time_ms
            fused = simulate(device, FusedSoftmax(spec)).time_ms
            ratios.append(base / fused)
        geomean = 1.0
        for r in ratios:
            geomean *= r
        geomean **= 1 / len(ratios)
        assert 1.5 < geomean < 8

    def test_parallelism_helps_on_top_of_fusion(self, device):
        """Paper: 'more threads ... further bring an average speedup of
        5.13x'."""
        ratios = []
        for spec in FIG13_SOFTMAX.values():
            fused = simulate(device, FusedSoftmax(spec)).time_ms
            parallel = simulate(device, FusedParallelSoftmax(spec)).time_ms
            ratios.append(fused / parallel)
        assert all(r >= 1.0 for r in ratios)
        assert max(r for r in ratios) > 3


class TestFactory:
    @pytest.mark.parametrize("impl", ["5kernel", "cudnn", "fused", "opt"])
    def test_dispatch(self, impl, device):
        k = make_softmax_kernel(SoftmaxSpec(64, 100), impl)
        assert simulate(device, k).time_ms > 0

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_softmax_kernel(SoftmaxSpec(64, 100), "warp-shuffle")
