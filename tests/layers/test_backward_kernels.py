"""Backward kernel models and the training-mode network timing."""

import pytest

from repro.baselines import compare_schemes, time_network
from repro.framework import Net
from repro.gpusim import SimulationEngine, simulate
from repro.layers import FCSpec, SoftmaxSpec, make_conv_kernel
from repro.layers.backward_kernels import (
    ScaledKernel,
    TRAINING_TRANSFORM_FACTOR,
    conv_backward_kernels,
    fc_backward_kernels,
    pool_backward_kernel,
    softmax_backward_kernel,
)
from repro.networks import CONV_LAYERS, POOL_LAYERS, build_network


class TestScaledKernel:
    def test_scales_apply(self, device):
        base = make_conv_kernel(CONV_LAYERS["CV7"], "direct")
        scaled = ScaledKernel(base, "x2", flop_scale=2.0, mem_scale=3.0)
        assert scaled.flop_count() == 2 * base.flop_count()
        assert (
            scaled.memory_profile(device).load_bytes
            == 3 * base.memory_profile(device).load_bytes
        )

    def test_efficiency_capped_at_one(self, device):
        base = make_conv_kernel(CONV_LAYERS["CV7"], "direct")
        scaled = ScaledKernel(base, "boost", eff_scale=100.0)
        assert scaled.alu_efficiency(device) == 1.0

    def test_validation(self):
        base = make_conv_kernel(CONV_LAYERS["CV7"], "direct")
        with pytest.raises(ValueError):
            ScaledKernel(base, "bad", flop_scale=0.0)


class TestBackwardKernels:
    def test_conv_backward_is_two_kernels_of_forward_size(self, device):
        spec = CONV_LAYERS["CV7"]
        kernels = conv_backward_kernels(spec, "im2col")
        assert len(kernels) == 2
        fwd = simulate(device, make_conv_kernel(spec, "im2col")).time_ms
        bwd = sum(simulate(device, k).time_ms for k in kernels)
        assert 1.5 * fwd < bwd < 4 * fwd

    def test_conv_backward_layout_preference_is_preserved(self, device):
        """Footnote 1: layout decisions carry over to the backward pass."""
        engine = SimulationEngine(device, check_memory=False)
        for name, impls in (("CV1", ("direct", "im2col")), ("CV11", ("direct", "im2col"))):
            spec = CONV_LAYERS[name]
            times = {
                impl: sum(
                    engine.run(k).time_ms for k in conv_backward_kernels(spec, impl)
                )
                for impl in impls
            }
            fwd_winner = min(
                impls, key=lambda i: engine.run(make_conv_kernel(spec, i)).time_ms
            )
            bwd_winner = min(impls, key=lambda i: times[i])
            assert fwd_winner == bwd_winner, name

    def test_pool_backward_costs_more_than_forward(self, device):
        spec = POOL_LAYERS["PL5"]
        from repro.layers import make_pool_kernel

        fwd = simulate(device, make_pool_kernel(spec, "chwn")).time_ms
        bwd = simulate(device, pool_backward_kernel(spec, "chwn")).time_ms
        assert fwd < bwd < 3 * fwd

    def test_fc_backward_is_two_gemms(self, device):
        kernels = fc_backward_kernels(FCSpec(n=128, in_features=9216, out_features=4096))
        assert len(kernels) == 2
        assert all(simulate(device, k).time_ms > 0 for k in kernels)

    def test_softmax_backward_single_pass(self, device):
        k = softmax_backward_kernel(SoftmaxSpec(128, 1000), "opt")
        assert simulate(device, k).n_launches == 1


class TestTrainingMode:
    @pytest.fixture(scope="class")
    def lenet(self):
        return Net(build_network("lenet"))

    def test_training_costs_2x_to_4x_forward(self, device, lenet):
        fwd = time_network(lenet, device, "opt").total_ms
        trn = time_network(lenet, device, "opt", training=True).total_ms
        assert 2.0 < trn / fwd < 4.5

    def test_backward_ms_zero_in_inference(self, device, lenet):
        fwd = time_network(lenet, device, "cudnn-mm")
        assert all(l.backward_ms == 0.0 for l in fwd.layers)

    def test_backward_ms_positive_in_training(self, device, lenet):
        trn = time_network(lenet, device, "cudnn-mm", training=True)
        assert all(
            l.backward_ms > 0 for l in trn.layers if l.kind in ("conv", "pool")
        )

    def test_transforms_double_in_training(self, device):
        net = Net(build_network("alexnet"))
        fwd = time_network(net, device, "opt")
        trn = time_network(net, device, "opt", training=True)
        fwd_t = sum(l.transform_ms for l in fwd.layers)
        trn_t = sum(l.transform_ms for l in trn.layers)
        assert trn_t == pytest.approx(TRAINING_TRANSFORM_FACTOR * fwd_t)

    def test_opt_still_wins_under_training(self, device, lenet):
        """The paper's optimizations apply to training runs too."""
        results = compare_schemes(
            lenet, device, ("cudnn-mm", "cuda-convnet", "opt"), training=True
        )
        opt = results["opt"].total_ms
        assert opt <= results["cudnn-mm"].total_ms
        assert opt <= results["cuda-convnet"].total_ms
