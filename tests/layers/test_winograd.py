"""Winograd F(2x2, 3x3) convolution: exactness and kernel-model behaviour."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import simulate
from repro.layers import (
    ConvSpec,
    ConvUnsupportedError,
    Im2colGemmNCHW,
    WinogradConvNCHW,
    conv_direct,
    conv_forward,
    conv_winograd,
    make_conv_kernel,
    make_filters,
)
from repro.networks import CONV_LAYERS
from repro.tensors import NCHW, Tensor4D

wino_specs = st.builds(
    ConvSpec,
    n=st.integers(1, 3),
    ci=st.integers(1, 5),
    h=st.integers(4, 15),
    w=st.integers(4, 15),
    co=st.integers(1, 5),
    fh=st.just(3),
    fw=st.just(3),
    stride=st.just(1),
    pad=st.integers(0, 1),
)


class TestNumeric:
    @given(spec=wino_specs, seed=st.integers(0, 500))
    @settings(max_examples=40, deadline=None)
    def test_equals_direct_convolution(self, spec, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((spec.n, spec.ci, spec.h, spec.w)).astype(np.float32)
        w = make_filters(spec, seed=seed + 1)
        np.testing.assert_allclose(
            conv_winograd(x, w, spec), conv_direct(x, w, spec), rtol=1e-3, atol=1e-4
        )

    def test_odd_output_extents_cropped_correctly(self):
        spec = ConvSpec(n=1, ci=2, h=7, w=9, co=2, fh=3, fw=3)
        assert (spec.out_h, spec.out_w) == (5, 7)  # both odd
        rng = np.random.default_rng(0)
        x = rng.standard_normal((1, 2, 7, 9)).astype(np.float32)
        w = make_filters(spec)
        out = conv_winograd(x, w, spec)
        assert out.shape == (1, 2, 5, 7)
        np.testing.assert_allclose(out, conv_direct(x, w, spec), rtol=1e-3, atol=1e-4)

    def test_rejects_non_3x3(self):
        spec = ConvSpec(n=1, ci=1, h=8, w=8, co=1, fh=5, fw=5)
        with pytest.raises(ConvUnsupportedError, match="3x3"):
            conv_winograd(np.zeros((1, 1, 8, 8), np.float32), make_filters(spec), spec)

    def test_rejects_strided(self):
        spec = ConvSpec(n=1, ci=1, h=8, w=8, co=1, fh=3, fw=3, stride=2)
        with pytest.raises(ConvUnsupportedError, match="stride"):
            conv_winograd(np.zeros((1, 1, 8, 8), np.float32), make_filters(spec), spec)

    def test_available_via_conv_forward(self):
        spec = ConvSpec(n=2, ci=2, h=8, w=8, co=3, fh=3, fw=3, pad=1)
        rng = np.random.default_rng(1)
        x = rng.standard_normal((2, 2, 8, 8)).astype(np.float32)
        w = make_filters(spec)
        out = conv_forward(Tensor4D.from_nchw(x, NCHW), w, spec, "winograd")
        np.testing.assert_allclose(
            out.as_nchw(), conv_direct(x, w, spec), rtol=1e-3, atol=1e-4
        )


class TestKernelModel:
    def test_fewer_macs_than_direct(self):
        spec = CONV_LAYERS["CV12"]
        wino = WinogradConvNCHW(spec)
        # 2.25x arithmetic reduction in the product stage (transform
        # overhead brings the total back up somewhat).
        assert wino.flop_count() < 0.7 * spec.flops

    @pytest.mark.parametrize("name", ["CV11", "CV12"])
    def test_beats_mm_on_deep_3x3_layers(self, device, name):
        spec = CONV_LAYERS[name]
        t_wino = simulate(device, WinogradConvNCHW(spec)).time_ms
        t_mm = simulate(device, Im2colGemmNCHW(spec)).time_ms
        assert t_wino < t_mm

    def test_small_channel_layers_starve_it(self, device):
        """Same Ci-reduction constraint as FFT: CV9 (Ci=3) cannot feed the
        transform-domain product."""
        spec = CONV_LAYERS["CV9"]
        t_wino = simulate(device, WinogradConvNCHW(spec)).time_ms
        t_direct = simulate(device, make_conv_kernel(spec, "direct")).time_ms
        assert t_wino > t_direct

    def test_unsupported_configs_raise(self):
        with pytest.raises(ConvUnsupportedError):
            WinogradConvNCHW(CONV_LAYERS["CV1"])  # 5x5 filter
        with pytest.raises(ConvUnsupportedError):
            WinogradConvNCHW(CONV_LAYERS["CV5"])  # stride 2

    def test_workspace_proportional_to_activations(self, device):
        """Unlike FFT, no padding blow-up: workspace stays within ~20x the
        input tensor even for the deepest layers."""
        spec = CONV_LAYERS["CV12"]
        wino = WinogradConvNCHW(spec)
        assert wino.workspace_bytes() < 20 * spec.in_desc().nbytes

    def test_factory_dispatch(self):
        k = make_conv_kernel(CONV_LAYERS["CV7"], "winograd")
        assert isinstance(k, WinogradConvNCHW)
