"""CHWN pooling kernels, executed in their native layout and checked."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.layers import PoolSpec, pool_plain
from repro.layers.pooling_emulation import (
    footprint_loads,
    pool_chwn_coarsened_emulated,
    pool_chwn_emulated,
)
from repro.tensors import CHWN, NCHW, Tensor4D

pool_specs = st.builds(
    PoolSpec,
    n=st.sampled_from([8, 32, 40]),
    c=st.integers(1, 4),
    h=st.integers(4, 12),
    w=st.integers(4, 12),
    window=st.integers(2, 3),
    stride=st.integers(1, 3),
    op=st.sampled_from(["max", "avg"]),
).filter(lambda s: s.window <= min(s.h, s.w))


def case(spec, seed=0):
    rng = np.random.default_rng(seed)
    logical = rng.standard_normal((spec.n, spec.c, spec.h, spec.w)).astype(np.float32)
    return Tensor4D.from_nchw(logical, CHWN), pool_plain(logical, spec)


class TestPlainKernel:
    @given(spec=pool_specs, seed=st.integers(0, 50))
    @settings(max_examples=25, deadline=None)
    def test_matches_reference(self, spec, seed):
        x, reference = case(spec, seed)
        out = pool_chwn_emulated(x, spec)
        assert out.layout == CHWN
        np.testing.assert_allclose(out.as_nchw(), reference, rtol=1e-5, atol=1e-6)

    def test_requires_chwn(self):
        spec = PoolSpec(n=8, c=1, h=4, w=4, window=2, stride=2)
        x = Tensor4D.from_nchw(np.zeros((8, 1, 4, 4), np.float32), NCHW)
        with pytest.raises(ValueError, match="CHWN"):
            pool_chwn_emulated(x, spec)


class TestCoarsenedKernel:
    @given(
        spec=pool_specs,
        ux=st.integers(1, 3),
        uy=st.integers(1, 3),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=25, deadline=None)
    def test_matches_reference_for_any_tile(self, spec, ux, uy, seed):
        x, reference = case(spec, seed)
        out = pool_chwn_coarsened_emulated(x, spec, ux, uy)
        np.testing.assert_allclose(out.as_nchw(), reference, rtol=1e-5, atol=1e-6)

    def test_validation(self):
        spec = PoolSpec(n=8, c=1, h=4, w=4, window=2, stride=2)
        x = Tensor4D.from_nchw(np.zeros((8, 1, 4, 4), np.float32), CHWN)
        with pytest.raises(ValueError):
            pool_chwn_coarsened_emulated(x, spec, 0, 1)


class TestFootprintCounters:
    def test_overlapped_pooling_saves_loads(self):
        spec = PoolSpec(n=1, c=1, h=12, w=12, window=3, stride=2)
        plain, coarse = footprint_loads(spec, 2, 2)
        assert coarse < plain

    def test_non_overlapped_saves_nothing(self):
        spec = PoolSpec(n=1, c=1, h=8, w=8, window=2, stride=2)
        plain, coarse = footprint_loads(spec, 2, 2)
        assert coarse == plain

    def test_fig8_one_dimensional_counts(self):
        """Fig. 8's 1-D illustration: window 4, stride 2 over 12 elements
        gives 5 outputs needing 20 loads; a register working set covering
        the row needs only the 12 unique elements."""
        spec = PoolSpec(n=1, c=1, h=4, w=12, window=4, stride=2)
        assert spec.out_w == 5
        plain_row_loads = spec.out_w * spec.window
        coarse_row_loads = (spec.out_w - 1) * spec.stride + spec.window
        assert plain_row_loads == 20
        assert coarse_row_loads == 12
