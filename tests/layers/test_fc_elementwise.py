"""FC, GEMM shape law, ReLU, LRN."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import TITAN_BLACK, simulate
from repro.layers import (
    ElementwiseKernel,
    FCSpec,
    GemmKernel,
    LRNSpec,
    fc_forward,
    flatten_4d,
    gemm_shape_efficiency,
    lrn_forward,
    make_fc_kernel,
    make_fc_weights,
    make_lrn_kernel,
    make_relu_kernel,
    relu_forward,
)


class TestFC:
    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((4, 10)).astype(np.float32)
        w = rng.standard_normal((10, 6)).astype(np.float32)
        b = rng.standard_normal(6).astype(np.float32)
        np.testing.assert_allclose(fc_forward(x, w, b), x @ w + b, rtol=1e-5)

    def test_without_bias(self):
        x = np.eye(3, dtype=np.float32)
        w = np.arange(9, dtype=np.float32).reshape(3, 3)
        np.testing.assert_array_equal(fc_forward(x, w), w)

    def test_shape_checks(self):
        with pytest.raises(ValueError):
            fc_forward(np.zeros((2, 3), dtype=np.float32), np.zeros((4, 5), dtype=np.float32))
        with pytest.raises(ValueError):
            fc_forward(
                np.zeros((2, 3), dtype=np.float32),
                np.zeros((3, 5), dtype=np.float32),
                bias=np.zeros(4, dtype=np.float32),
            )

    def test_flatten(self):
        x = np.arange(24).reshape(2, 3, 2, 2)
        flat = flatten_4d(x)
        assert flat.shape == (2, 12)
        np.testing.assert_array_equal(flat[0], np.arange(12))
        with pytest.raises(ValueError):
            flatten_4d(np.zeros((2, 3)))

    def test_seeded_weights(self):
        spec = FCSpec(n=4, in_features=10, out_features=6)
        w1, b1 = make_fc_weights(spec, seed=5)
        w2, b2 = make_fc_weights(spec, seed=5)
        assert np.array_equal(w1, w2) and np.array_equal(b1, b2)
        assert w1.shape == (10, 6) and b1.shape == (6,)

    def test_kernel_model(self, device):
        spec = FCSpec(n=128, in_features=9216, out_features=4096)
        stats = simulate(device, make_fc_kernel(spec))
        assert stats.flops == spec.flops
        assert stats.time_ms > 0


class TestGemmShapeLaw:
    def test_small_k_collapses(self, device):
        """The quantitative core of the paper's small-C argument."""
        small = gemm_shape_efficiency(device, 256, 10000, 27)
        big = gemm_shape_efficiency(device, 256, 10000, 2304)
        assert big > 3 * small

    def test_floor_applies(self, device):
        tiny = gemm_shape_efficiency(device, 256, 10000, 1)
        assert tiny >= device.arch.gemm_peak_eff * device.arch.gemm_k_floor * 0.5

    @given(
        m=st.integers(1, 4096),
        n=st.integers(1, 4096),
        k=st.integers(1, 4096),
    )
    @settings(max_examples=40, deadline=None)
    def test_efficiency_bounded(self, m, n, k):
        eff = gemm_shape_efficiency(TITAN_BLACK, m, n, k)
        assert 0 < eff <= TITAN_BLACK.arch.gemm_peak_eff

    def test_monotone_in_each_dim(self, device):
        base = gemm_shape_efficiency(device, 64, 1024, 256)
        assert gemm_shape_efficiency(device, 128, 1024, 256) >= base
        assert gemm_shape_efficiency(device, 64, 2048, 256) >= base
        assert gemm_shape_efficiency(device, 64, 1024, 512) >= base

    def test_kernel_validation(self):
        with pytest.raises(ValueError):
            GemmKernel(0, 10, 10)

    def test_gemm_traffic_scales_with_tiles(self, device):
        small = GemmKernel(64, 64, 64).memory_profile(device)
        wide = GemmKernel(64, 6400, 64).memory_profile(device)
        assert wide.load_bytes > 50 * small.load_bytes


class TestReLU:
    def test_values(self):
        x = np.array([-2.0, 0.0, 3.5], dtype=np.float32)
        np.testing.assert_array_equal(relu_forward(x), [0.0, 0.0, 3.5])

    def test_kernel(self, device):
        stats = simulate(device, make_relu_kernel(1_000_000))
        assert stats.useful_bytes == pytest.approx(8_000_000)


class TestLRN:
    def test_identity_when_alpha_zero(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal((2, 8, 4, 4)).astype(np.float32)
        spec = LRNSpec(alpha=0.0, beta=0.75, k=1.0)
        np.testing.assert_allclose(lrn_forward(x, spec), x, rtol=1e-5)

    def test_matches_direct_formula(self):
        rng = np.random.default_rng(4)
        x = rng.standard_normal((1, 6, 2, 2)).astype(np.float32)
        spec = LRNSpec(depth=5, alpha=1e-2, beta=0.5, k=2.0)
        out = lrn_forward(x, spec)
        # check one element by hand: channel 2 window covers channels 0..4
        c, h, w = 2, 0, 1
        window = x[0, 0:5, h, w].astype(np.float64)
        scale = spec.k + spec.alpha / spec.depth * (window**2).sum()
        assert out[0, c, h, w] == pytest.approx(
            x[0, c, h, w] / scale**spec.beta, rel=1e-5
        )

    def test_edge_channels_use_partial_window(self):
        x = np.ones((1, 3, 1, 1), dtype=np.float32)
        spec = LRNSpec(depth=5, alpha=1.0, beta=1.0, k=1.0)
        out = lrn_forward(x, spec)
        # channel 0 window covers channels 0..2 (3 valid of 5)
        assert out[0, 0, 0, 0] == pytest.approx(1.0 / (1.0 + 3 / 5), rel=1e-5)

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            LRNSpec(depth=4)

    def test_requires_4d(self):
        with pytest.raises(ValueError):
            lrn_forward(np.zeros((2, 3)))

    def test_kernel_reads_window(self, device):
        k = make_lrn_kernel(1000, LRNSpec(depth=5))
        p = k.memory_profile(device)
        assert p.load_bytes == pytest.approx(5 * 4000)
        assert p.l2_hit_rate > 0.5


class TestElementwiseKernel:
    def test_validation(self):
        with pytest.raises(ValueError):
            ElementwiseKernel(0)
