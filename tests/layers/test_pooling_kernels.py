"""Pooling kernel models: Fig. 6 layout dominance, Fig. 12 coarsening."""

import pytest

from repro.gpusim import simulate
from repro.layers import (
    PoolingCHWN,
    PoolingCoarsenedCHWN,
    PoolingNCHWBlockPerRow,
    PoolingNCHWLinear,
    make_pool_kernel,
)
from repro.networks import POOL_LAYERS


def useful_bytes(spec):
    return spec.in_desc().nbytes + spec.out_desc().nbytes


class TestCHWN:
    def test_coalesced_loads(self, device):
        p = PoolingCHWN(POOL_LAYERS["PL5"]).memory_profile(device)
        assert p.load_transactions == pytest.approx(p.load_bytes / 32)

    def test_overlapped_layers_get_l2_credit(self, device):
        overlapped = PoolingCHWN(POOL_LAYERS["PL5"]).memory_profile(device)
        non_overlapped = PoolingCHWN(POOL_LAYERS["PL1"]).memory_profile(device)
        assert overlapped.l2_hit_rate > non_overlapped.l2_hit_rate

    def test_achieved_bandwidth_in_paper_zone(self, device):
        """Paper Fig. 6: cuda-convnet pooling reaches 132–205 GB/s."""
        for name in ("PL1", "PL3", "PL5", "PL7", "PL8"):
            spec = POOL_LAYERS[name]
            stats = simulate(device, PoolingCHWN(spec))
            bw = useful_bytes(spec) / (stats.time_ms * 1e6)
            assert 100 < bw < 235, f"{name}: {bw:.1f} GB/s"

    def test_profile_is_cached(self, device):
        k = PoolingCHWN(POOL_LAYERS["PL3"])
        assert k.memory_profile(device) is k.memory_profile(device)


class TestNCHWDominatedByCHWN:
    """Fig. 6: 'cuda-convnet significantly outperforms Caffe and cuDNN
    across the board'."""

    @pytest.mark.parametrize("name", sorted(POOL_LAYERS))
    def test_chwn_faster_than_both_nchw_kernels(self, device, name):
        spec = POOL_LAYERS[name]
        t_chwn = simulate(device, PoolingCHWN(spec)).time_ms
        t_caffe = simulate(device, PoolingNCHWLinear(spec)).time_ms
        t_cudnn = simulate(device, PoolingNCHWBlockPerRow(spec)).time_ms
        assert t_chwn < t_caffe
        assert t_chwn < t_cudnn

    def test_worst_case_speedup_magnitude(self, device):
        """Paper: 'with a speedup up to 16.3x' over NCHW libraries; our
        model's worst case lands lower (~6.5x) but well beyond the average."""
        worst = max(
            simulate(device, PoolingNCHWBlockPerRow(spec)).time_ms
            / simulate(device, PoolingCHWN(spec)).time_ms
            for spec in POOL_LAYERS.values()
        )
        assert 4 < worst < 30

    def test_nchw_bandwidth_in_paper_zone(self, device):
        """Paper: Caffe avg 52.3 GB/s, cuDNN avg 41.9 GB/s."""
        bws = []
        for spec in POOL_LAYERS.values():
            stats = simulate(device, PoolingNCHWLinear(spec))
            bws.append(useful_bytes(spec) / (stats.time_ms * 1e6))
        avg = sum(bws) / len(bws)
        assert 30 < avg < 90

    def test_caffe_mask_store_traffic(self, device):
        spec = POOL_LAYERS["PL5"]
        p = PoolingNCHWLinear(spec).memory_profile(device)
        assert p.store_bytes == pytest.approx(2 * spec.out_desc().nbytes)


class TestCoarsening:
    def test_reduces_load_traffic_for_overlapped(self, device):
        spec = POOL_LAYERS["PL5"]  # 3x3 stride 2
        plain = PoolingCHWN(spec).memory_profile(device)
        coarse = PoolingCoarsenedCHWN(spec, 2, 2).memory_profile(device)
        assert coarse.load_bytes < plain.load_bytes

    def test_no_traffic_win_for_non_overlapped(self, device):
        spec = POOL_LAYERS["PL1"]  # 2x2 stride 2
        plain = PoolingCHWN(spec).memory_profile(device)
        coarse = PoolingCoarsenedCHWN(spec, 2, 2).memory_profile(device)
        assert coarse.load_bytes >= plain.load_bytes * 0.99

    def test_register_pressure_grows_with_tile(self, device):
        spec = POOL_LAYERS["PL5"]
        small = PoolingCoarsenedCHWN(spec, 2, 2).launch_config(device)
        big = PoolingCoarsenedCHWN(spec, 6, 6).launch_config(device)
        assert big.regs_per_thread > small.regs_per_thread

    def test_overlapped_speedup_in_paper_zone(self, device):
        """Fig. 12: 'improve the state-of-the-art performance by an average
        of 14.3%' on overlapped layers."""
        gains = []
        for name in ("PL3", "PL5", "PL6", "PL7", "PL8", "PL9", "PL10"):
            spec = POOL_LAYERS[name]
            t_plain = simulate(device, PoolingCHWN(spec)).time_ms
            t_coarse = simulate(device, PoolingCoarsenedCHWN(spec, 2, 2)).time_ms
            gains.append(t_plain / t_coarse - 1)
        avg_gain = sum(gains) / len(gains)
        assert 0.05 < avg_gain < 0.40

    def test_invalid_factors(self):
        with pytest.raises(ValueError):
            PoolingCoarsenedCHWN(POOL_LAYERS["PL1"], 0, 2)


class TestFactory:
    @pytest.mark.parametrize(
        "impl,cls",
        [
            ("chwn", PoolingCHWN),
            ("chwn-coarsened", PoolingCoarsenedCHWN),
            ("nchw-linear", PoolingNCHWLinear),
            ("nchw-rowblock", PoolingNCHWBlockPerRow),
        ],
    )
    def test_dispatch(self, impl, cls):
        assert isinstance(make_pool_kernel(POOL_LAYERS["PL3"], impl), cls)

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_pool_kernel(POOL_LAYERS["PL3"], "nhwc")

    def test_coarsen_factors_forwarded(self):
        k = make_pool_kernel(POOL_LAYERS["PL3"], "chwn-coarsened", coarsen=(3, 2))
        assert (k.ux, k.uy) == (3, 2)


class TestTracedL2Diagnostic:
    """The traced NCHW kernels replay their post-coalescing transaction
    stream through the L2 model and report the hit rate as a diagnostic;
    it does not feed the timing equations (the analytic ``l2_hit_rate``
    does), so the figures are unchanged by it."""

    @pytest.mark.parametrize("impl", ["nchw-linear", "nchw-rowblock"])
    def test_present_and_bounded_for_traced_kernels(self, device, impl):
        p = make_pool_kernel(POOL_LAYERS["PL3"], impl).memory_profile(device)
        assert p.traced_l2_hit_rate is not None
        assert 0.0 <= p.traced_l2_hit_rate <= 1.0

    def test_absent_for_analytic_chwn(self, device):
        p = PoolingCHWN(POOL_LAYERS["PL3"]).memory_profile(device)
        assert p.traced_l2_hit_rate is None

    def test_deterministic_across_instances(self, device):
        a = PoolingNCHWLinear(POOL_LAYERS["PL5"]).memory_profile(device)
        b = PoolingNCHWLinear(POOL_LAYERS["PL5"]).memory_profile(device)
        assert a.traced_l2_hit_rate == b.traced_l2_hit_rate

    def test_line_reuse_shows_up_on_small_maps(self, device):
        """PL5's small maps fit the L2, so window overlap and intra-line
        sharing must register as a substantial traced hit rate."""
        p = PoolingNCHWLinear(POOL_LAYERS["PL5"]).memory_profile(device)
        assert p.traced_l2_hit_rate > 0.3
