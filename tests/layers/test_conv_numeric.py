"""Numeric convolution: direct == im2col == FFT, plus layout-aware wrapper."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import signal

from repro.layers import (
    ConvSpec,
    conv_direct,
    conv_fft,
    conv_forward,
    conv_im2col,
    im2col,
    make_filters,
)
from repro.tensors import CHWN, NCHW, Tensor4D


def random_case(spec: ConvSpec, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((spec.n, spec.ci, spec.h, spec.w)).astype(np.float32)
    w = make_filters(spec, seed=seed + 1)
    return x, w


class TestAgainstScipy:
    def test_single_channel_matches_scipy_correlate(self):
        spec = ConvSpec(n=1, ci=1, h=10, w=10, co=1, fh=3, fw=3)
        x, w = random_case(spec)
        ours = conv_direct(x, w, spec)[0, 0]
        ref = signal.correlate2d(
            x[0, 0].astype(np.float64), w[0, 0].astype(np.float64), mode="valid"
        )
        np.testing.assert_allclose(ours, ref, rtol=1e-4, atol=1e-5)

    def test_multi_channel_sums_over_ci(self):
        spec = ConvSpec(n=1, ci=3, h=8, w=8, co=1, fh=3, fw=3)
        x, w = random_case(spec, seed=2)
        ours = conv_direct(x, w, spec)[0, 0]
        ref = sum(
            signal.correlate2d(
                x[0, c].astype(np.float64), w[0, c].astype(np.float64), mode="valid"
            )
            for c in range(3)
        )
        np.testing.assert_allclose(ours, ref, rtol=1e-4, atol=1e-4)


conv_specs = st.builds(
    ConvSpec,
    n=st.integers(1, 4),
    ci=st.integers(1, 5),
    h=st.integers(6, 14),
    w=st.integers(6, 14),
    co=st.integers(1, 6),
    fh=st.integers(1, 5),
    fw=st.integers(1, 5),
    stride=st.integers(1, 2),
    pad=st.integers(0, 2),
).filter(lambda s: s.fh <= s.h + 2 * s.pad and s.fw <= s.w + 2 * s.pad)


class TestImplementationEquivalence:
    @given(spec=conv_specs, seed=st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_direct_equals_im2col(self, spec, seed):
        x, w = random_case(spec, seed)
        np.testing.assert_allclose(
            conv_direct(x, w, spec), conv_im2col(x, w, spec), rtol=1e-3, atol=1e-4
        )

    @given(spec=conv_specs.filter(lambda s: s.stride == 1), seed=st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_direct_equals_fft(self, spec, seed):
        x, w = random_case(spec, seed)
        np.testing.assert_allclose(
            conv_direct(x, w, spec), conv_fft(x, w, spec), rtol=1e-3, atol=1e-3
        )

    def test_fft_rejects_strided(self):
        spec = ConvSpec(n=1, ci=1, h=8, w=8, co=1, fh=3, fw=3, stride=2)
        x, w = random_case(spec)
        with pytest.raises(ValueError, match="stride"):
            conv_fft(x, w, spec)

    def test_table1_cv1_shape(self):
        spec = ConvSpec(n=2, ci=1, h=28, w=28, co=4, fh=5, fw=5)
        x, w = random_case(spec, seed=5)
        out = conv_direct(x, w, spec)
        assert out.shape == (2, 4, 24, 24)
        np.testing.assert_allclose(out, conv_im2col(x, w, spec), rtol=1e-3, atol=1e-4)


class TestIm2col:
    def test_unroll_shape(self):
        spec = ConvSpec(n=2, ci=3, h=6, w=6, co=4, fh=3, fw=3)
        x, _ = random_case(spec)
        cols = im2col(x, spec)
        assert cols.shape == (2, 27, 16)

    def test_unroll_content(self):
        spec = ConvSpec(n=1, ci=1, h=3, w=3, co=1, fh=2, fw=2)
        x = np.arange(9, dtype=np.float32).reshape(1, 1, 3, 3)
        cols = im2col(x, spec)
        # First patch (top-left 2x2) flattened: 0,1,3,4
        np.testing.assert_array_equal(cols[0, :, 0], [0, 1, 3, 4])


class TestLayoutAwareForward:
    def test_chwn_input_gives_same_logical_result(self):
        spec = ConvSpec(n=3, ci=2, h=8, w=8, co=4, fh=3, fw=3, pad=1)
        x, w = random_case(spec, seed=9)
        out_nchw = conv_forward(Tensor4D.from_nchw(x, NCHW), w, spec, "direct")
        out_chwn = conv_forward(Tensor4D.from_nchw(x, CHWN), w, spec, "direct")
        assert out_chwn.layout == CHWN
        np.testing.assert_allclose(
            out_nchw.as_nchw(), out_chwn.as_nchw(), rtol=1e-5, atol=1e-6
        )

    def test_explicit_out_layout(self):
        spec = ConvSpec(n=2, ci=2, h=6, w=6, co=3, fh=3, fw=3)
        x, w = random_case(spec)
        out = conv_forward(Tensor4D.from_nchw(x, NCHW), w, spec, "im2col", out_layout=CHWN)
        assert out.layout == CHWN

    def test_unknown_implementation(self):
        spec = ConvSpec(n=1, ci=1, h=6, w=6, co=1, fh=3, fw=3)
        x, w = random_case(spec)
        with pytest.raises(ValueError, match="unknown convolution"):
            conv_forward(Tensor4D.from_nchw(x), w, spec, "strassen")

    def test_shape_validation(self):
        spec = ConvSpec(n=1, ci=2, h=6, w=6, co=1, fh=3, fw=3)
        x = np.zeros((1, 3, 6, 6), dtype=np.float32)  # wrong ci
        w = make_filters(spec)
        with pytest.raises(ValueError):
            conv_direct(x, w, spec)


class TestSpecProperties:
    def test_flops_formula(self):
        spec = ConvSpec(n=2, ci=3, h=8, w=8, co=4, fh=3, fw=3)
        assert spec.flops == 2 * 2 * 4 * 6 * 6 * 3 * 9
        assert spec.taps == 27

    def test_output_extents(self):
        spec = ConvSpec(n=1, ci=1, h=13, w=13, co=1, fh=3, fw=3, stride=1, pad=1)
        assert (spec.out_h, spec.out_w) == (13, 13)
        spec2 = ConvSpec(n=1, ci=1, h=224, w=224, co=1, fh=5, fw=5, stride=2)
        assert spec2.out_h == 110

    def test_window_must_fit(self):
        with pytest.raises(ValueError):
            ConvSpec(n=1, ci=1, h=4, w=4, co=1, fh=6, fw=6)

    def test_with_batch_and_channels(self):
        spec = ConvSpec(n=2, ci=3, h=8, w=8, co=4, fh=3, fw=3)
        assert spec.with_batch(16).n == 16
        assert spec.with_channels(7).ci == 7
