"""The paper's Fig. 9 fused softmax kernel, executed and checked."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.layers import SoftmaxSpec, softmax_fused
from repro.layers.softmax_emulation import _tree_reduce, softmax_fused_blockwise


class TestTreeReduction:
    @given(values=st.lists(st.floats(-100, 100), min_size=1, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_max_reduction(self, values):
        arr = np.array(values, dtype=np.float32)
        assert _tree_reduce(arr, max) == pytest.approx(float(arr.max()))

    @given(values=st.lists(st.floats(-10, 10), min_size=1, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_sum_reduction(self, values):
        arr = np.array(values, dtype=np.float64)
        assert _tree_reduce(arr, lambda a, b: a + b) == pytest.approx(
            float(arr.sum()), rel=1e-6, abs=1e-9
        )

    def test_non_power_of_two(self):
        arr = np.array([3.0, 1.0, 7.0, 2.0, 5.0], dtype=np.float32)
        assert _tree_reduce(arr, max) == 7.0


class TestFusedBlockwise:
    @given(
        n=st.integers(1, 4),
        c=st.integers(1, 300),
        block=st.sampled_from([32, 128, 256]),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=25, deadline=None)
    def test_matches_reference_softmax(self, n, c, block, seed):
        spec = SoftmaxSpec(n=n, categories=c)
        rng = np.random.default_rng(seed)
        x = (rng.standard_normal((n, c)) * 5).astype(np.float32)
        emulated = softmax_fused_blockwise(x, spec, block_threads=block)
        np.testing.assert_allclose(
            emulated, softmax_fused(x, spec), rtol=1e-4, atol=1e-6
        )

    def test_categories_smaller_than_block(self):
        spec = SoftmaxSpec(n=2, categories=3)
        x = np.array([[1.0, 2.0, 3.0], [0.0, 0.0, 0.0]], dtype=np.float32)
        out = softmax_fused_blockwise(x, spec, block_threads=256)
        np.testing.assert_allclose(out.sum(axis=1), 1.0, atol=1e-5)
        np.testing.assert_allclose(out[1], 1 / 3, atol=1e-6)

    def test_numerical_stability_via_max_shift(self):
        spec = SoftmaxSpec(n=1, categories=8)
        x = np.full((1, 8), 500.0, dtype=np.float32)  # exp(500) overflows
        out = softmax_fused_blockwise(x, spec)
        assert np.isfinite(out).all()

    def test_validation(self):
        spec = SoftmaxSpec(n=1, categories=4)
        with pytest.raises(ValueError):
            softmax_fused_blockwise(np.zeros((1, 4), np.float32), spec, block_threads=0)
        with pytest.raises(ValueError):
            softmax_fused_blockwise(np.zeros((2, 4), np.float32), spec)
