"""Backward passes verified against central finite differences."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.layers import ConvSpec, PoolSpec, SoftmaxSpec
from repro.layers.backward import (
    conv_backward,
    cross_entropy_loss,
    fc_backward,
    lrn_backward,
    pool_backward,
    relu_backward,
    softmax_backward,
)
from repro.layers.conv import conv_direct, make_filters
from repro.layers.elementwise import LRNSpec, lrn_forward
from repro.layers.pooling import pool_plain
from repro.layers.softmax import softmax_fused

RNG = np.random.default_rng(0)


def numeric_grad(f, x, dout, eps=1e-3):
    """Central finite differences of sum(f(x) * dout) w.r.t. x."""
    x = x.astype(np.float64)
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        hi = float((f(x.astype(np.float32)).astype(np.float64) * dout).sum())
        x[idx] = orig - eps
        lo = float((f(x.astype(np.float32)).astype(np.float64) * dout).sum())
        x[idx] = orig
        grad[idx] = (hi - lo) / (2 * eps)
        it.iternext()
    return grad


class TestConvBackward:
    @pytest.mark.parametrize(
        "spec",
        [
            ConvSpec(n=2, ci=2, h=5, w=5, co=3, fh=3, fw=3),
            ConvSpec(n=1, ci=1, h=6, w=6, co=2, fh=3, fw=3, stride=2),
            ConvSpec(n=2, ci=2, h=4, w=4, co=2, fh=3, fw=3, pad=1),
        ],
    )
    def test_matches_finite_differences(self, spec):
        x = RNG.standard_normal((spec.n, spec.ci, spec.h, spec.w)).astype(np.float32)
        w = make_filters(spec, seed=7)
        dout = RNG.standard_normal(
            (spec.n, spec.co, spec.out_h, spec.out_w)
        ).astype(np.float64)
        dx, dw = conv_backward(x, w, dout, spec)
        num_dx = numeric_grad(lambda xx: conv_direct(xx, w, spec), x, dout)
        np.testing.assert_allclose(dx, num_dx, rtol=2e-2, atol=2e-3)
        num_dw = numeric_grad(
            lambda ww: conv_direct(x, ww.astype(np.float32), spec), w, dout
        )
        np.testing.assert_allclose(dw, num_dw, rtol=2e-2, atol=2e-3)

    def test_shape_validation(self):
        spec = ConvSpec(n=1, ci=1, h=4, w=4, co=1, fh=3, fw=3)
        with pytest.raises(ValueError):
            conv_backward(
                np.zeros((1, 1, 4, 4), np.float32),
                make_filters(spec),
                np.zeros((1, 1, 3, 3), np.float32),
                spec,
            )


class TestPoolBackward:
    @pytest.mark.parametrize("op", ["max", "avg"])
    @pytest.mark.parametrize("h,window,stride", [(6, 2, 2), (5, 3, 2), (6, 3, 2)])
    def test_matches_finite_differences(self, op, h, window, stride):
        spec = PoolSpec(n=1, c=2, h=h, w=h, window=window, stride=stride, op=op)
        # Distinct values avoid max ties, where the subgradient is ambiguous.
        x = RNG.permutation(np.arange(spec.n * spec.c * h * h, dtype=np.float32))
        x = x.reshape(spec.n, spec.c, h, h)
        dout = RNG.standard_normal(
            (spec.n, spec.c, spec.out_h, spec.out_w)
        ).astype(np.float64)
        dx = pool_backward(x, dout, spec)
        num = numeric_grad(lambda xx: pool_plain(xx, spec), x, dout, eps=1e-2)
        np.testing.assert_allclose(dx, num, rtol=2e-2, atol=2e-3)

    def test_max_gradient_is_sparse(self):
        spec = PoolSpec(n=1, c=1, h=4, w=4, window=2, stride=2)
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        dout = np.ones((1, 1, 2, 2), dtype=np.float64)
        dx = pool_backward(x, dout, spec)
        assert (dx != 0).sum() == 4  # one winner per window

    def test_avg_gradient_is_uniform(self):
        spec = PoolSpec(n=1, c=1, h=4, w=4, window=2, stride=2, op="avg")
        x = np.zeros((1, 1, 4, 4), dtype=np.float32)
        dout = np.ones((1, 1, 2, 2), dtype=np.float64)
        dx = pool_backward(x, dout, spec)
        np.testing.assert_allclose(dx, 0.25)

    def test_gradient_mass_is_conserved(self):
        """Sum of dx equals sum of dout for avg pooling (partition of unity)."""
        spec = PoolSpec(n=2, c=3, h=7, w=7, window=3, stride=2, op="avg")
        x = RNG.standard_normal((2, 3, 7, 7)).astype(np.float32)
        dout = RNG.standard_normal((2, 3, spec.out_h, spec.out_w))
        dx = pool_backward(x, dout, spec)
        assert dx.sum() == pytest.approx(dout.sum(), rel=1e-4)


class TestSoftmaxBackward:
    def test_jvp_matches_finite_differences(self):
        spec = SoftmaxSpec(n=3, categories=6)
        x = RNG.standard_normal((3, 6)).astype(np.float32)
        dout = RNG.standard_normal((3, 6)).astype(np.float64)
        probs = softmax_fused(x, spec)
        dx = softmax_backward(probs, dout, spec)
        num = numeric_grad(lambda xx: softmax_fused(xx, spec), x, dout)
        np.testing.assert_allclose(dx, num, rtol=2e-2, atol=2e-3)

    def test_gradient_rows_sum_to_zero(self):
        spec = SoftmaxSpec(n=4, categories=8)
        x = RNG.standard_normal((4, 8)).astype(np.float32)
        dx = softmax_backward(
            softmax_fused(x, spec), RNG.standard_normal((4, 8)), spec
        )
        np.testing.assert_allclose(dx.sum(axis=1), 0.0, atol=1e-5)


class TestCrossEntropy:
    def test_loss_value(self):
        spec = SoftmaxSpec(n=2, categories=3)
        logits = np.log(np.array([[0.7, 0.2, 0.1], [0.1, 0.8, 0.1]], np.float32))
        labels = np.array([0, 1])
        loss, _ = cross_entropy_loss(logits, labels, spec)
        assert loss == pytest.approx(-(np.log(0.7) + np.log(0.8)) / 2, rel=1e-4)

    def test_gradient_matches_finite_differences(self):
        spec = SoftmaxSpec(n=3, categories=5)
        logits = RNG.standard_normal((3, 5)).astype(np.float32)
        labels = np.array([1, 4, 0])

        def loss_of(xx):
            return np.array([cross_entropy_loss(xx, labels, spec)[0]])

        _, dlogits = cross_entropy_loss(logits, labels, spec)
        num = numeric_grad(loss_of, logits, np.ones(1))
        np.testing.assert_allclose(dlogits, num, rtol=2e-2, atol=2e-3)

    def test_label_validation(self):
        spec = SoftmaxSpec(n=2, categories=3)
        with pytest.raises(ValueError):
            cross_entropy_loss(np.zeros((2, 3), np.float32), np.array([0, 3]), spec)


class TestFCBackward:
    @given(
        n=st.integers(1, 4), fin=st.integers(1, 6), fout=st.integers(1, 5),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=20, deadline=None)
    def test_matches_analytic_identities(self, n, fin, fout, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((n, fin)).astype(np.float32)
        w = rng.standard_normal((fin, fout)).astype(np.float32)
        dy = rng.standard_normal((n, fout)).astype(np.float32)
        dx, dw, db = fc_backward(x, w, dy)
        np.testing.assert_allclose(dx, dy @ w.T, rtol=1e-4, atol=1e-5)
        np.testing.assert_allclose(dw, x.T @ dy, rtol=1e-4, atol=1e-5)
        np.testing.assert_allclose(db, dy.sum(0), rtol=1e-4, atol=1e-5)

    def test_shape_check(self):
        with pytest.raises(ValueError):
            fc_backward(
                np.zeros((2, 3), np.float32),
                np.zeros((3, 4), np.float32),
                np.zeros((2, 5), np.float32),
            )


class TestReluLrnBackward:
    def test_relu(self):
        x = np.array([-1.0, 0.0, 2.0], dtype=np.float32)
        dy = np.array([5.0, 5.0, 5.0])
        np.testing.assert_array_equal(relu_backward(x, dy), [0.0, 0.0, 5.0])

    def test_lrn_matches_finite_differences(self):
        spec = LRNSpec(depth=3, alpha=0.1, beta=0.75, k=2.0)
        x = RNG.standard_normal((1, 5, 2, 2)).astype(np.float32)
        dout = RNG.standard_normal((1, 5, 2, 2)).astype(np.float64)
        dx = lrn_backward(x, dout, spec)
        num = numeric_grad(lambda xx: lrn_forward(xx, spec), x, dout)
        np.testing.assert_allclose(dx, num, rtol=3e-2, atol=3e-3)

    def test_lrn_identity_when_alpha_zero(self):
        spec = LRNSpec(alpha=0.0, beta=0.75, k=1.0)
        x = RNG.standard_normal((1, 4, 2, 2)).astype(np.float32)
        dy = RNG.standard_normal((1, 4, 2, 2)).astype(np.float32)
        np.testing.assert_allclose(lrn_backward(x, dy, spec), dy, rtol=1e-5)
