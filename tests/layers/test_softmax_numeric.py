"""Numeric softmax: five-step == fused == scipy, step-level checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.special import softmax as scipy_softmax

from repro.layers import SoftmaxSpec, softmax_five_step, softmax_forward, softmax_fused


def logits(spec, seed=0, scale=1.0):
    rng = np.random.default_rng(seed)
    return (rng.standard_normal((spec.n, spec.categories)) * scale).astype(np.float32)


class TestSteps:
    def test_all_five_intermediates(self, small_softmax):
        x = logits(small_softmax, seed=1)
        steps = softmax_five_step(x, small_softmax)
        np.testing.assert_array_equal(steps.maxv, x.max(axis=1))
        np.testing.assert_allclose(steps.midv1, x - steps.maxv[:, None], atol=1e-6)
        np.testing.assert_allclose(steps.midv2, np.exp(steps.midv1), rtol=1e-5)
        np.testing.assert_allclose(steps.sumv, steps.midv2.sum(1), rtol=1e-5)
        np.testing.assert_allclose(steps.out.sum(1), 1.0, atol=1e-5)

    def test_shift_makes_exp_safe(self):
        spec = SoftmaxSpec(n=2, categories=4)
        x = np.full((2, 4), 300.0, dtype=np.float32)  # exp(300) overflows
        out = softmax_five_step(x, spec).out
        assert np.isfinite(out).all()
        np.testing.assert_allclose(out, 0.25, atol=1e-6)


class TestEquivalence:
    @given(
        n=st.integers(1, 16),
        c=st.integers(1, 200),
        seed=st.integers(0, 500),
        scale=st.floats(0.1, 50.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_fused_equals_five_step(self, n, c, seed, scale):
        spec = SoftmaxSpec(n=n, categories=c)
        x = logits(spec, seed, scale)
        np.testing.assert_allclose(
            softmax_fused(x, spec),
            softmax_five_step(x, spec).out,
            rtol=1e-5,
            atol=1e-6,
        )

    @given(n=st.integers(1, 8), c=st.integers(2, 64), seed=st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_matches_scipy(self, n, c, seed):
        spec = SoftmaxSpec(n=n, categories=c)
        x = logits(spec, seed)
        np.testing.assert_allclose(
            softmax_fused(x, spec),
            scipy_softmax(x.astype(np.float64), axis=1),
            rtol=1e-4,
            atol=1e-6,
        )

    @given(n=st.integers(1, 8), c=st.integers(1, 64))
    @settings(max_examples=20, deadline=None)
    def test_rows_are_distributions(self, n, c):
        spec = SoftmaxSpec(n=n, categories=c)
        out = softmax_forward(logits(spec, 9), spec)
        assert (out >= 0).all()
        np.testing.assert_allclose(out.sum(axis=1), 1.0, atol=1e-5)


class TestValidation:
    def test_shape_mismatch(self, small_softmax):
        with pytest.raises(ValueError):
            softmax_fused(np.zeros((3, 3), dtype=np.float32), small_softmax)

    def test_forward_dispatch(self, small_softmax):
        x = logits(small_softmax)
        np.testing.assert_allclose(
            softmax_forward(x, small_softmax, fused=True),
            softmax_forward(x, small_softmax, fused=False),
            rtol=1e-6,
        )

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            SoftmaxSpec(n=0, categories=10)
        spec = SoftmaxSpec(n=4, categories=8)
        assert spec.elements == 32
        assert spec.nbytes == 128
