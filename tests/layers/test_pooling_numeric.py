"""Numeric pooling: ceil-mode windows, coarsened equivalence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.layers import PoolSpec, pool_coarsened, pool_forward, pool_plain, tile_footprint
from repro.layers.base import pool_out_extent
from repro.tensors import CHWN, NCHW, Tensor4D


def random_input(spec, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((spec.n, spec.c, spec.h, spec.w)).astype(np.float32)


class TestOutExtent:
    @pytest.mark.parametrize(
        "h,window,stride,expected",
        [
            (28, 2, 2, 14),
            (24, 3, 2, 12),  # ceil mode: (24-3)/2 -> 11.5 -> 12
            (55, 3, 2, 27),
            (110, 3, 2, 55),
            (26, 3, 2, 13),
            (13, 3, 2, 6),
        ],
    )
    def test_paper_shape_chain(self, h, window, stride, expected):
        assert pool_out_extent(h, window, stride) == expected

    def test_window_too_large(self):
        with pytest.raises(ValueError):
            pool_out_extent(4, 6, 2)


class TestMaxPooling:
    def test_known_values(self):
        spec = PoolSpec(n=1, c=1, h=4, w=4, window=2, stride=2)
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = pool_plain(x, spec)
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_overlapped_windows(self):
        spec = PoolSpec(n=1, c=1, h=5, w=5, window=3, stride=2)
        x = np.arange(25, dtype=np.float32).reshape(1, 1, 5, 5)
        out = pool_plain(x, spec)
        np.testing.assert_array_equal(out[0, 0], [[12, 14], [22, 24]])

    def test_ceil_mode_clips_overhanging_window(self):
        # H=4, window 3, stride 2 -> ceil((4-3)/2)+1 = 2 outputs; the second
        # window covers rows 2..3 only.
        spec = PoolSpec(n=1, c=1, h=4, w=4, window=3, stride=2)
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = pool_plain(x, spec)
        assert out.shape == (1, 1, 2, 2)
        assert out[0, 0, 1, 1] == 15.0  # max of clipped bottom-right window


class TestAvgPooling:
    def test_known_values(self):
        spec = PoolSpec(n=1, c=1, h=4, w=4, window=2, stride=2, op="avg")
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        np.testing.assert_allclose(
            pool_plain(x, spec)[0, 0], [[2.5, 4.5], [10.5, 12.5]]
        )

    def test_clipped_window_divides_by_valid_count(self):
        spec = PoolSpec(n=1, c=1, h=3, w=3, window=2, stride=2, op="avg")
        x = np.arange(9, dtype=np.float32).reshape(1, 1, 3, 3)
        out = pool_plain(x, spec)
        # Bottom-right window covers only element 8.
        assert out[0, 0, 1, 1] == 8.0
        # Bottom-left window covers elements 6, 7.
        assert out[0, 0, 1, 0] == pytest.approx(6.5)


pool_specs = st.builds(
    PoolSpec,
    n=st.integers(1, 3),
    c=st.integers(1, 4),
    h=st.integers(4, 16),
    w=st.integers(4, 16),
    window=st.integers(2, 4),
    stride=st.integers(1, 3),
    op=st.sampled_from(["max", "avg"]),
).filter(lambda s: s.window <= min(s.h, s.w))


class TestCoarsenedEquivalence:
    @given(
        spec=pool_specs,
        ux=st.integers(1, 4),
        uy=st.integers(1, 4),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=50, deadline=None)
    def test_any_expansion_factor_is_value_preserving(self, spec, ux, uy, seed):
        """Section V.A's working-set expansion must never change results."""
        x = random_input(spec, seed)
        np.testing.assert_allclose(
            pool_plain(x, spec), pool_coarsened(x, spec, ux, uy), rtol=1e-5, atol=1e-5
        )

    def test_invalid_factors(self, small_pool):
        with pytest.raises(ValueError):
            pool_coarsened(random_input(small_pool), small_pool, 0, 1)


class TestTileFootprint:
    def test_overlap_saves_loads(self):
        spec = PoolSpec(n=1, c=1, h=12, w=12, window=4, stride=2)
        assert tile_footprint(spec, 1, 1) == 16
        # 2x2 tile: (2-1)*2+4 = 6 per side -> 36 < 4*16.
        assert tile_footprint(spec, 2, 2) == 36

    def test_non_overlapped_has_no_savings(self):
        spec = PoolSpec(n=1, c=1, h=8, w=8, window=2, stride=2)
        assert tile_footprint(spec, 2, 2) == 4 * tile_footprint(spec, 1, 1)


class TestLayoutAwareForward:
    def test_layout_invariance(self, small_pool):
        x = random_input(small_pool, seed=4)
        out_nchw = pool_forward(Tensor4D.from_nchw(x, NCHW), small_pool)
        out_chwn = pool_forward(Tensor4D.from_nchw(x, CHWN), small_pool, coarsen=(2, 2))
        np.testing.assert_allclose(
            out_nchw.as_nchw(), out_chwn.as_nchw(), rtol=1e-5, atol=1e-5
        )
        assert out_chwn.layout == CHWN

    def test_spec_validation(self):
        spec = PoolSpec(n=1, c=1, h=4, w=4, window=2, stride=2)
        with pytest.raises(ValueError):
            pool_plain(np.zeros((1, 2, 4, 4), dtype=np.float32), spec)

    def test_bad_op_rejected(self):
        with pytest.raises(ValueError):
            PoolSpec(n=1, c=1, h=4, w=4, window=2, stride=2, op="median")

    def test_overlapped_flag(self):
        assert PoolSpec(n=1, c=1, h=8, w=8, window=3, stride=2).overlapped
        assert not PoolSpec(n=1, c=1, h=8, w=8, window=2, stride=2).overlapped
