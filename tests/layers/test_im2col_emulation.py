"""The im2col + tiled-GEMM pipeline, executed with explicit blocking."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.layers import ConvSpec, conv_im2col, make_filters
from repro.layers.im2col_emulation import (
    conv_im2col_emulated,
    expected_tile_loads,
    tiled_gemm_emulated,
)


class TestTiledGemm:
    @given(
        m=st.integers(1, 100),
        n=st.integers(1, 100),
        k=st.integers(1, 100),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=30, deadline=None)
    def test_matches_numpy_matmul(self, m, n, k, seed):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((m, k)).astype(np.float32)
        b = rng.standard_normal((k, n)).astype(np.float32)
        c, loads = tiled_gemm_emulated(a, b, tile=32)
        np.testing.assert_allclose(c, a @ b, rtol=1e-4, atol=1e-4)
        assert loads == expected_tile_loads(m, n, k, tile=32)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            tiled_gemm_emulated(np.zeros((2, 3)), np.zeros((4, 5)))

    def test_tile_loads_match_traffic_model(self, device):
        """The emulation's staged-tile count equals the GemmKernel traffic
        formula (each operand re-read once per tile of the other)."""
        from repro.layers import GemmKernel

        m, n, k = 100, 200, 150
        kernel = GemmKernel(m, n, k)
        profile = kernel.memory_profile(device)
        import math

        expected_bytes = 4 * (
            m * k * math.ceil(n / kernel.tile) + k * n * math.ceil(m / kernel.tile)
        )
        assert profile.load_bytes == pytest.approx(expected_bytes)


conv_specs = st.builds(
    ConvSpec,
    n=st.integers(1, 4),
    ci=st.integers(1, 4),
    h=st.integers(5, 10),
    w=st.integers(5, 10),
    co=st.integers(1, 5),
    fh=st.sampled_from([3, 5]),
    fw=st.sampled_from([3, 5]),
    stride=st.integers(1, 2),
    pad=st.integers(0, 1),
).filter(lambda s: s.fh <= s.h + 2 * s.pad and s.fw <= s.w + 2 * s.pad)


class TestPipeline:
    @given(spec=conv_specs, seed=st.integers(0, 50))
    @settings(max_examples=25, deadline=None)
    def test_matches_reference(self, spec, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((spec.n, spec.ci, spec.h, spec.w)).astype(np.float32)
        w = make_filters(spec, seed=seed + 1)
        out, counters = conv_im2col_emulated(x, w, spec, tile=32)
        np.testing.assert_allclose(
            out, conv_im2col(x, w, spec), rtol=1e-3, atol=1e-4
        )
        assert counters["unroll_elements"] == spec.n * spec.taps * spec.out_h * spec.out_w

    def test_counters_match_model(self):
        spec = ConvSpec(n=2, ci=3, h=8, w=8, co=4, fh=3, fw=3, pad=1)
        x = np.zeros((2, 3, 8, 8), np.float32)
        _, counters = conv_im2col_emulated(x, make_filters(spec), spec, tile=32)
        m, n, k = counters["gemm_shape"]
        assert (m, n, k) == (4, 2 * 64, 27)
        assert counters["gemm_tile_loads"] == expected_tile_loads(m, n, k, 32)

    def test_groups_unsupported(self):
        spec = ConvSpec(n=1, ci=4, h=6, w=6, co=4, fh=3, fw=3, groups=2)
        with pytest.raises(ValueError, match="group"):
            conv_im2col_emulated(
                np.zeros((1, 4, 6, 6), np.float32), make_filters(spec), spec
            )
