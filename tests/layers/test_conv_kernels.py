"""Convolution kernel models: the Figs. 3/4/5 behaviours."""

from dataclasses import replace

import pytest

from repro.gpusim import GpuOutOfMemoryError, SimulationEngine, simulate
from repro.layers import (
    ConvSpec,
    ConvUnsupportedError,
    DirectConvCHWN,
    FFTConvNCHW,
    Im2colGemmNCHW,
    Im2colKernel,
    make_conv_kernel,
)
from repro.networks import CONV_LAYERS

CV7 = CONV_LAYERS["CV7"]


class TestDirectConv:
    def test_flops_match_spec(self):
        k = DirectConvCHWN(CV7)
        assert k.flop_count() == CV7.flops

    def test_efficiency_ramps_with_batch(self, device):
        effs = [
            DirectConvCHWN(replace(CV7, n=n)).alu_efficiency(device)
            for n in (16, 32, 64, 128)
        ]
        assert effs == sorted(effs)
        assert effs[-1] > 2 * effs[0]

    def test_efficiency_saturates_at_n_saturation(self, device):
        sat = device.arch.direct_conv_n_saturation
        e1 = DirectConvCHWN(replace(CV7, n=sat)).alu_efficiency(device)
        e2 = DirectConvCHWN(replace(CV7, n=4 * sat)).alu_efficiency(device)
        assert e1 == pytest.approx(e2)

    def test_shallow_inputs_are_less_efficient(self, device):
        deep = DirectConvCHWN(CV7).alu_efficiency(device)
        shallow = DirectConvCHWN(replace(CV7, ci=1)).alu_efficiency(device)
        assert shallow < deep

    def test_memory_profile_is_coalesced(self, device):
        p = DirectConvCHWN(CV7).memory_profile(device)
        assert p.load_transactions == pytest.approx(p.load_bytes / 32)


class TestIm2colGemm:
    def test_unroll_bytes(self):
        k = Im2colKernel(CV7)
        assert k.unroll_bytes() == 4 * CV7.n * CV7.taps * CV7.out_h * CV7.out_w

    def test_unroll_has_high_l2_reuse(self, device):
        p = Im2colKernel(CV7).memory_profile(device)
        assert p.l2_hit_rate > 0.5  # each element lands in ~F^2 patches

    def test_composed_kernel_includes_both_stages(self, device):
        k = Im2colGemmNCHW(CV7)
        assert k.n_launches == 2
        assert k.flop_count() == pytest.approx(CV7.flops)

    def test_gemm_dominates_large_layers(self, device):
        engine = SimulationEngine(device)
        k = Im2colGemmNCHW(CV7)
        seq = engine.run_sequence(k.kernels)
        unroll_ms, gemm_ms = (s.time_ms for s in seq.kernels)
        assert gemm_ms > unroll_ms


class TestFFT:
    def test_strided_convolution_unsupported(self):
        """cuDNN's FFT algorithms require unit stride — the Fig. 5 CV5/CV6
        'execution failures'."""
        for name in ("CV5", "CV6"):
            with pytest.raises(ConvUnsupportedError, match="stride"):
                FFTConvNCHW(CONV_LAYERS[name])

    def test_workspace_exceeds_titan_black_for_big_unit_stride_layers(self, device):
        """Even without the stride rule, a CV5-sized stride-1 layer blows the
        6 GB card (the paper's memory explanation)."""
        huge = replace(CONV_LAYERS["CV5"], stride=1)
        engine = SimulationEngine(device)
        with pytest.raises(GpuOutOfMemoryError):
            engine.run(FFTConvNCHW(huge))

    def test_tiling_reduces_workspace(self):
        spec = CONV_LAYERS["CV10"]
        assert (
            FFTConvNCHW(spec, tiled=True).workspace_bytes()
            < FFTConvNCHW(spec, tiled=False).workspace_bytes()
        )

    def test_fft_beats_mm_for_large_channel_layers(self, device):
        """Fig. 5: 'FFT can perform better than cuDNN-MM when ... there are
        many channels such as CV7, CV10'."""
        for name in ("CV7", "CV10"):
            spec = CONV_LAYERS[name]
            t_fft = simulate(device, FFTConvNCHW(spec)).time_ms
            t_mm = simulate(device, Im2colGemmNCHW(spec)).time_ms
            assert t_fft < t_mm

    def test_fft_collapses_for_small_channel_layers(self, device):
        """Fig. 5: 'for small channel sizes, such as CV3, CV9, it performs
        much worse' (than direct CHWN)."""
        for name in ("CV3", "CV9"):
            spec = CONV_LAYERS[name]
            t_fft = simulate(device, FFTConvNCHW(spec)).time_ms
            t_direct = simulate(device, DirectConvCHWN(spec)).time_ms
            assert t_fft > 3 * t_direct

    def test_filter_too_large_for_tile(self):
        spec = ConvSpec(n=1, ci=1, h=64, w=64, co=1, fh=33, fw=33)
        with pytest.raises(ConvUnsupportedError, match="tile"):
            FFTConvNCHW(spec, tiled=True)


class TestNHWC:
    """Paper Section IV.A footnote 1: 'cuDNN also supports the NHWC data
    layout and our tests show that its NCHW layout outperforms its NHWC
    layout.'"""

    @pytest.mark.parametrize("name", ["CV1", "CV4", "CV7", "CV11"])
    def test_nchw_always_beats_nhwc(self, device, name):
        from repro.layers import Im2colGemmNHWC

        spec = CONV_LAYERS[name]
        t_nchw = simulate(device, Im2colGemmNCHW(spec)).time_ms
        t_nhwc = simulate(device, Im2colGemmNHWC(spec)).time_ms
        assert t_nchw < t_nhwc

    def test_nhwc_overhead_is_the_two_repacks(self, device):
        from repro.layers import Im2colGemmNHWC

        spec = CONV_LAYERS["CV7"]
        t_nchw = simulate(device, Im2colGemmNCHW(spec)).time_ms
        t_nhwc = simulate(device, Im2colGemmNHWC(spec)).time_ms
        repack_bytes = 2 * (spec.in_desc().nbytes + spec.out_desc().nbytes)
        repack_ms = repack_bytes / (device.mem_bandwidth_gbs * 1e6)
        assert t_nhwc - t_nchw == pytest.approx(repack_ms, rel=0.5)


class TestFactory:
    @pytest.mark.parametrize(
        "impl,cls",
        [
            ("direct", DirectConvCHWN),
            ("im2col", Im2colGemmNCHW),
            ("fft", FFTConvNCHW),
            ("fft-tiled", FFTConvNCHW),
        ],
    )
    def test_dispatch(self, impl, cls):
        assert isinstance(make_conv_kernel(CV7, impl), cls)

    def test_nhwc_dispatch(self):
        from repro.layers import Im2colGemmNHWC

        assert isinstance(make_conv_kernel(CV7, "im2col-nhwc"), Im2colGemmNHWC)

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_conv_kernel(CV7, "strassen")


class TestFig3Winners:
    """The headline layout result: who wins each Table-1 conv layer."""

    CHWN_WINNERS = ("CV1", "CV2", "CV3", "CV4", "CV5", "CV9")
    NCHW_WINNERS = ("CV6", "CV7", "CV8", "CV10", "CV11", "CV12")

    @pytest.mark.parametrize("name", CHWN_WINNERS)
    def test_chwn_wins(self, device, name):
        spec = CONV_LAYERS[name]
        t_direct = simulate(device, DirectConvCHWN(spec)).time_ms
        t_mm = simulate(device, Im2colGemmNCHW(spec)).time_ms
        assert t_direct < t_mm

    @pytest.mark.parametrize("name", NCHW_WINNERS)
    def test_nchw_wins(self, device, name):
        spec = CONV_LAYERS[name]
        t_direct = simulate(device, DirectConvCHWN(spec)).time_ms
        t_mm = simulate(device, Im2colGemmNCHW(spec)).time_ms
        assert t_mm < t_direct

    def test_cv1_speedup_magnitude(self, device):
        """Paper: 'on CV1, CHWN has an up to 6.5x speedup over NCHW'."""
        spec = CONV_LAYERS["CV1"]
        ratio = (
            simulate(device, Im2colGemmNCHW(spec)).time_ms
            / simulate(device, DirectConvCHWN(spec)).time_ms
        )
        assert 3 < ratio < 10

    def test_cv11_speedup_magnitude(self, device):
        """Paper: 'on CV11, NCHW ... outperforming CHWN by 3.5x'."""
        spec = CONV_LAYERS["CV11"]
        ratio = (
            simulate(device, DirectConvCHWN(spec)).time_ms
            / simulate(device, Im2colGemmNCHW(spec)).time_ms
        )
        assert 2 < ratio < 6
