"""cuda-convnet's blocked CHWN direct convolution, executed and checked."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.layers import ConvSpec, conv_direct, make_filters
from repro.layers.conv_emulation import direct_conv_chwn_emulated, register_tile_reuse
from repro.tensors import CHWN, NCHW, Tensor4D

specs = st.builds(
    ConvSpec,
    n=st.sampled_from([8, 32, 64]),
    ci=st.integers(1, 4),
    h=st.integers(5, 10),
    w=st.integers(5, 10),
    co=st.integers(1, 6),
    fh=st.sampled_from([3, 5]),
    fw=st.sampled_from([3, 5]),
    stride=st.integers(1, 2),
    pad=st.integers(0, 1),
).filter(lambda s: s.fh <= s.h + 2 * s.pad and s.fw <= s.w + 2 * s.pad)


def run_case(spec, seed=0, **kwargs):
    rng = np.random.default_rng(seed)
    logical = rng.standard_normal((spec.n, spec.ci, spec.h, spec.w)).astype(np.float32)
    w = make_filters(spec, seed=seed + 1)
    x = Tensor4D.from_nchw(logical, CHWN)
    emulated = direct_conv_chwn_emulated(x, w, spec, **kwargs)
    reference = conv_direct(logical, w, spec)
    return emulated, reference


class TestBlockedAlgorithm:
    @given(spec=specs, seed=st.integers(0, 50))
    @settings(max_examples=25, deadline=None)
    def test_matches_reference(self, spec, seed):
        emulated, reference = run_case(spec, seed)
        assert emulated.layout == CHWN
        np.testing.assert_allclose(
            emulated.as_nchw(), reference, rtol=1e-4, atol=1e-5
        )

    @pytest.mark.parametrize("ipt", [1, 2, 4])
    def test_any_images_per_thread_is_value_preserving(self, ipt):
        spec = ConvSpec(n=128, ci=2, h=6, w=6, co=5, fh=3, fw=3, pad=1)
        emulated, reference = run_case(spec, seed=3, imgs_per_thread=ipt)
        np.testing.assert_allclose(
            emulated.as_nchw(), reference, rtol=1e-4, atol=1e-5
        )

    def test_partial_image_block(self):
        # N=40: one full 32-image warp plus an 8-image tail block.
        spec = ConvSpec(n=40, ci=2, h=5, w=5, co=3, fh=3, fw=3)
        emulated, reference = run_case(spec, seed=7, imgs_per_thread=1)
        np.testing.assert_allclose(
            emulated.as_nchw(), reference, rtol=1e-4, atol=1e-5
        )

    def test_requires_chwn(self):
        spec = ConvSpec(n=8, ci=1, h=5, w=5, co=2, fh=3, fw=3)
        x = Tensor4D.from_nchw(np.zeros((8, 1, 5, 5), np.float32), NCHW)
        with pytest.raises(ValueError, match="CHWN"):
            direct_conv_chwn_emulated(x, make_filters(spec), spec)

    def test_requires_single_group(self):
        spec = ConvSpec(n=8, ci=4, h=5, w=5, co=4, fh=3, fw=3, groups=2)
        x = Tensor4D.from_nchw(np.zeros((8, 4, 5, 5), np.float32), CHWN)
        with pytest.raises(ValueError, match="group"):
            direct_conv_chwn_emulated(x, make_filters(spec), spec)


class TestRegisterReuse:
    def test_reuse_grows_with_batch(self):
        """The arithmetic behind Fig. 4a: register reuse ramps with N."""
        reuses = [
            register_tile_reuse(
                ConvSpec(n=n, ci=16, h=8, w=8, co=16, fh=3, fw=3)
            )
            for n in (32, 64, 128)
        ]
        assert reuses == sorted(reuses)
        assert reuses[-1] > 2 * reuses[0]

    def test_saturates_at_four_images(self):
        big = register_tile_reuse(ConvSpec(n=512, ci=16, h=8, w=8, co=16, fh=3, fw=3))
        at128 = register_tile_reuse(ConvSpec(n=128, ci=16, h=8, w=8, co=16, fh=3, fw=3))
        assert big == pytest.approx(at128)
