"""Grouped convolution (AlexNet's two-tower structure)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.framework import Net, format_netdef, parse_netdef, train
from repro.layers import (
    ConvSpec,
    conv_direct,
    conv_im2col,
    conv_winograd,
    make_filters,
)
from repro.layers.backward import conv_backward
from repro.networks import build_network


def grouped_case(groups=2, seed=0):
    spec = ConvSpec(n=2, ci=4, h=8, w=8, co=6, fh=3, fw=3, pad=1, groups=groups)
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((2, 4, 8, 8)).astype(np.float32)
    return spec, x, make_filters(spec, seed=seed + 1)


class TestSpec:
    def test_groups_must_divide_channels(self):
        with pytest.raises(ValueError, match="groups"):
            ConvSpec(n=1, ci=3, h=8, w=8, co=4, fh=3, fw=3, groups=2)
        with pytest.raises(ValueError, match="groups"):
            ConvSpec(n=1, ci=4, h=8, w=8, co=3, fh=3, fw=3, groups=2)

    def test_taps_and_flops_shrink_with_groups(self):
        full = ConvSpec(n=1, ci=4, h=8, w=8, co=4, fh=3, fw=3)
        split = ConvSpec(n=1, ci=4, h=8, w=8, co=4, fh=3, fw=3, groups=2)
        assert split.taps == full.taps // 2
        assert split.flops == full.flops / 2
        assert split.filter_bytes == full.filter_bytes // 2

    def test_group_spec(self):
        spec = ConvSpec(n=1, ci=4, h=8, w=8, co=6, fh=3, fw=3, groups=2)
        sub = spec.group_spec()
        assert (sub.ci, sub.co, sub.groups) == (2, 3, 1)


class TestNumeric:
    @given(groups=st.sampled_from([1, 2]), seed=st.integers(0, 50))
    @settings(max_examples=20, deadline=None)
    def test_direct_equals_im2col_equals_winograd(self, groups, seed):
        spec, x, w = grouped_case(groups, seed)
        a = conv_direct(x, w, spec)
        np.testing.assert_allclose(a, conv_im2col(x, w, spec), rtol=1e-3, atol=1e-4)
        np.testing.assert_allclose(a, conv_winograd(x, w, spec), rtol=1e-3, atol=1e-4)

    def test_groups_are_isolated(self):
        """Group k's output depends only on group k's input channels."""
        spec, x, w = grouped_case()
        base = conv_direct(x, w, spec)
        perturbed = x.copy()
        perturbed[:, 2:] += 10.0  # only group 2's inputs
        out = conv_direct(perturbed, w, spec)
        np.testing.assert_array_equal(base[:, :3], out[:, :3])
        assert not np.allclose(base[:, 3:], out[:, 3:])

    def test_grouped_equals_manual_split(self):
        spec, x, w = grouped_case()
        sub = spec.group_spec()
        manual = np.concatenate(
            [
                conv_direct(x[:, :2].copy(), w[:3], sub),
                conv_direct(x[:, 2:].copy(), w[3:], sub),
            ],
            axis=1,
        )
        np.testing.assert_allclose(conv_direct(x, w, spec), manual, rtol=1e-5)


class TestBackward:
    def test_grouped_gradients_match_finite_differences(self):
        from tests.layers.test_backward import numeric_grad

        spec, x, w = grouped_case(seed=3)
        rng = np.random.default_rng(9)
        dout = rng.standard_normal((2, 6, 8, 8)).astype(np.float64)
        dx, dw = conv_backward(x, w, dout, spec)
        num_dx = numeric_grad(lambda xx: conv_direct(xx, w, spec), x, dout)
        np.testing.assert_allclose(dx, num_dx, rtol=2e-2, atol=2e-3)
        num_dw = numeric_grad(
            lambda ww: conv_direct(x, ww.astype(np.float32), spec), w, dout
        )
        np.testing.assert_allclose(dw, num_dw, rtol=2e-2, atol=2e-3)


class TestGroupedAlexNet:
    def test_builds_and_resolves(self):
        net = Net(build_network("alexnet-grouped"))
        conv2 = next(l for l in net.layers if l.name == "conv2")
        assert conv2.spec.groups == 2
        assert conv2.out_dims == (128, 256, 27, 27)  # same shapes as untowered

    def test_half_the_conv2_work(self):
        full = Net(build_network("alexnet"))
        split = Net(build_network("alexnet-grouped"))
        f = next(l for l in full.layers if l.name == "conv2").spec
        s = next(l for l in split.layers if l.name == "conv2").spec
        assert s.flops == f.flops / 2

    def test_netdef_roundtrip_with_groups(self):
        net = build_network("alexnet-grouped")
        assert parse_netdef(format_netdef(net)) == net

    def test_grouped_network_trains(self):
        from repro.data import synthetic_objects

        ds = synthetic_objects(n_samples=48, image=12, n_classes=3, seed=5)
        from repro.framework import ConvDef, FCDef, NetworkDef, PoolDef, SoftmaxDef

        netdef = NetworkDef(
            "mini-grouped", 16, 3, 12, 12,
            (
                ConvDef("c1", co=8, f=3, pad=1),
                ConvDef("c2", co=8, f=3, pad=1, groups=2),
                PoolDef("p1", window=2, stride=2),
                FCDef("f1", out_features=3, relu=False),
                SoftmaxDef("s"),
            ),
        )
        net = Net(netdef)
        _, history = train(net, ds.images, ds.labels, steps=15, lr=0.1)
        assert history[-1].loss < history[0].loss
