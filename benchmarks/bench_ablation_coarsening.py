"""Ablation — pooling working-set expansion: exhaustive sweep vs hill climb.

Shows the trade-off surface the auto-tuner navigates (traffic falls with
the tile, occupancy falls with register pressure) and verifies the paper's
hill-climbing search finds the exhaustive optimum at a fraction of the
evaluations.
"""

from __future__ import annotations

from figutil import FigureTable

from repro.core import autotune_pooling
from repro.gpusim import SimulationEngine
from repro.layers import PoolingCHWN, PoolingCoarsenedCHWN
from repro.networks import POOL_LAYERS

FACTORS = (1, 2, 3, 4, 6, 8)


def sweep(engine, spec) -> dict[tuple[int, int], float]:
    times = {}
    for ux in FACTORS:
        for uy in FACTORS:
            if (ux, uy) == (1, 1):
                times[(1, 1)] = engine.run(PoolingCHWN(spec)).time_ms
            else:
                times[(ux, uy)] = engine.run(
                    PoolingCoarsenedCHWN(spec, ux, uy)
                ).time_ms
    return times


def build_figure(device) -> FigureTable:
    engine = SimulationEngine(device, check_memory=False)
    table = FigureTable(
        "Ablation: exhaustive (ux, uy) sweep vs the paper's hill climb",
        ["layer", "best_grid", "grid_ms", "tuned", "tuned_ms", "evals", "grid_evals"],
    )
    for name in ("PL3", "PL5", "PL6", "PL8"):
        spec = POOL_LAYERS[name]
        times = sweep(engine, spec)
        best = min(times, key=lambda k: times[k])
        tuned = autotune_pooling(device, spec, max_factor=max(FACTORS))
        table.add(
            name,
            f"{best[0]}x{best[1]}",
            times[best],
            f"{tuned.ux}x{tuned.uy}",
            tuned.time_ms,
            len(tuned.evaluations),
            len(times),
        )
    table.note("hill climbing must land within 10% of the exhaustive optimum")
    return table


def test_ablation_coarsening(benchmark, device):
    table = benchmark(build_figure, device)
    for row in table.rows:
        _, _, grid_ms, _, tuned_ms, evals, grid_evals = row
        assert tuned_ms <= grid_ms * 1.10  # near-optimal
        assert evals < grid_evals / 2  # and much cheaper


def test_tradeoff_surface_has_interior_optimum(device):
    """Bigger is not always better: at large factors register pressure
    throttles occupancy and time goes back up."""
    engine = SimulationEngine(device, check_memory=False)
    spec = POOL_LAYERS["PL8"]
    t2 = engine.run(PoolingCoarsenedCHWN(spec, 2, 2)).time_ms
    t8 = engine.run(PoolingCoarsenedCHWN(spec, 8, 8)).time_ms
    t_best = autotune_pooling(device, spec, max_factor=8).time_ms
    assert t_best <= min(t2, t8)
    assert t8 > t_best  # the extreme tile regressed


if __name__ == "__main__":
    from repro.gpusim import TITAN_BLACK

    build_figure(TITAN_BLACK).show()
