"""Section VI.C — Titan X (Maxwell) trend check.

Paper: "our test on the NVIDIA Titan X shows the very similar trends. For
example, compared to cuda-convnet, Caffe and cuDNN, our proposed
optimizations achieve 1.04x, 24.5x and 11.84x speedup for the small network
of MNIST; 5.11x, 1.77x and 1.05x speedup for a large network of VGG Net."
"""

from __future__ import annotations

from figutil import FigureTable

from repro.baselines import compare_schemes
from repro.framework import Net
from repro.networks import build_network

COMPARED = ("cuda-convnet", "caffe", "cudnn-best", "opt")


def build_figure(device) -> FigureTable:
    table = FigureTable(
        f"Section VI.C: Opt speedup over each library on {device.name}",
        ["network", "vs_convnet", "vs_caffe", "vs_cudnn"],
    )
    for name in ("lenet", "vgg"):
        net = Net(build_network(name))
        results = compare_schemes(net, device, COMPARED)
        opt = results["opt"]
        table.add(
            name,
            opt.speedup_over(results["cuda-convnet"]),
            opt.speedup_over(results["caffe"]),
            opt.speedup_over(results["cudnn-best"]),
        )
    table.note("paper (Titan X): MNIST 1.04x/24.5x/11.84x; VGG 5.11x/1.77x/1.05x")
    return table


def test_titanx_trends(benchmark, titan_x):
    table = benchmark(build_figure, titan_x)
    lenet = dict(zip(table.columns[1:], table.row("lenet")[1:]))
    vgg = dict(zip(table.columns[1:], table.row("vgg")[1:]))
    # MNIST: Opt barely beats cuda-convnet but crushes the NCHW libraries.
    assert 1.0 <= lenet["vs_convnet"] < 2.0
    assert lenet["vs_caffe"] > 2.0
    assert lenet["vs_cudnn"] > 2.0
    # VGG: Opt clearly ahead of cuda-convnet, close to cuDNN-best.
    assert vgg["vs_convnet"] > 1.4
    assert 1.0 <= vgg["vs_cudnn"] < 2.0


def test_trends_match_titan_black_directionally(device, titan_x):
    """Same winners on both GPUs (the paper's 'very similar trends')."""
    for name in ("lenet", "vgg"):
        net = Net(build_network(name))
        for dev in (device, titan_x):
            results = compare_schemes(net, dev, COMPARED)
            opt = results["opt"].total_ms
            assert all(
                opt <= results[s].total_ms * 1.001 for s in COMPARED
            ), f"{name}/{dev.name}"


if __name__ == "__main__":
    from repro.gpusim import TITAN_X

    build_figure(TITAN_X).show()
