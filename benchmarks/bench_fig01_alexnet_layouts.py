"""Fig. 1 — CHWN (cuda-convnet2) vs NCHW (cuDNN) on AlexNet layers.

Paper: normalized execution time on AlexNet's conv and pooling layers; "up
to 6.9x layer-level performance improvement could be retained by choosing a
proper data layout" and "even for ... convolutional layers ... up to 2.3x".
"""

from __future__ import annotations

from figutil import FigureTable

from repro.core import best_conv_for_layout, cudnn_mode_conv
from repro.gpusim import SimulationEngine
from repro.layers import make_pool_kernel
from repro.networks import ALEXNET_CONV, ALEXNET_POOL
from repro.tensors import CHWN


def build_figure(device) -> FigureTable:
    engine = SimulationEngine(device, check_memory=False)
    table = FigureTable(
        "Fig. 1: AlexNet layers, normalized execution time (CHWN = 1.0)",
        ["layer", "chwn_ms", "nchw_ms", "nchw_norm"],
    )
    for i, (name, spec) in enumerate(ALEXNET_CONV.items(), start=1):
        chwn = best_conv_for_layout(engine, spec, CHWN).time_ms
        nchw = cudnn_mode_conv(engine, spec, "best").time_ms
        table.add(f"CV{i}", chwn, nchw, nchw / chwn)
    for i, (name, spec) in enumerate(ALEXNET_POOL.items(), start=1):
        chwn = engine.run(make_pool_kernel(spec, "chwn")).time_ms
        nchw = engine.run(make_pool_kernel(spec, "nchw-rowblock")).time_ms
        table.add(f"PL{i}", chwn, nchw, nchw / chwn)
    table.note("paper: pooling NCHW up to 6.9x slower; conv layout up to 2.3x")
    return table


def test_fig01(benchmark, device):
    table = benchmark(build_figure, device)
    norm = dict(zip(table.column("layer"), table.column("nchw_norm")))
    # Pooling: CHWN always wins, by a large factor somewhere.
    assert all(norm[f"PL{i}"] > 1.0 for i in (1, 2, 3))
    assert max(norm[f"PL{i}"] for i in (1, 2, 3)) > 3.0
    # Conv: the first layer strongly prefers CHWN; later layers prefer NCHW.
    assert norm["CV1"] > 1.5
    assert min(norm[f"CV{i}"] for i in (2, 3, 4, 5)) < 1.0


if __name__ == "__main__":
    from repro.gpusim import TITAN_BLACK

    build_figure(TITAN_BLACK).show()
