"""Fig. 14 — whole-network comparison: every scheme on every bundled net.

Paper: no single library wins everywhere (cuda-convnet takes LeNet/Cifar,
cuDNN takes AlexNet/ZFNet/VGG) while Opt is fastest on all five; LeNet Opt
is 5.61x over cuDNN-MM, AlexNet Opt is 2.02x over cuDNN-MM and ~1.16x over
cuDNN-Best.  Beyond the paper's five, the table includes the branching
``inception`` network, which only the graph-IR pass pipeline can plan.
"""

from __future__ import annotations

from figutil import FigureTable

from repro.baselines import SCHEMES, compare_schemes
from repro.framework import Net
from repro.networks import NETWORK_BUILDERS, build_network

NETWORKS = tuple(NETWORK_BUILDERS)


def build_figure(device) -> FigureTable:
    table = FigureTable(
        "Fig. 14: whole-network speedup normalized to cuDNN-MM",
        ["network", *SCHEMES],
    )
    for name in NETWORKS:
        net = Net(build_network(name))
        results = compare_schemes(net, device)
        base = results["cudnn-mm"].total_ms
        table.add(name, *(base / results[s].total_ms for s in SCHEMES))
    table.note("paper: LeNet Opt 5.61x, AlexNet Opt 2.02x over cuDNN-MM")
    return table


def test_fig14(benchmark, device):
    table = benchmark(build_figure, device)
    rows = {r[0]: dict(zip(table.columns[1:], r[1:])) for r in table.rows}
    # Opt is fastest on every network.
    for name, row in rows.items():
        assert row["opt"] >= max(v for k, v in row.items() if k != "opt") * 0.999, name
    # Small networks: cuda-convnet >> cuDNN-best.
    for name in ("lenet", "cifar"):
        assert rows[name]["cuda-convnet"] > rows[name]["cudnn-best"]
    # Large networks: cuDNN-best >> cuda-convnet.
    for name in ("zfnet", "vgg"):
        assert rows[name]["cudnn-best"] > rows[name]["cuda-convnet"]
    # Magnitudes.
    assert 2.5 < rows["lenet"]["opt"] < 8  # paper 5.61x
    assert 1.4 < rows["alexnet"]["opt"] < 3.0  # paper 2.02x
    # The branching network plans through the graph pipeline and still
    # beats every library baseline by a clear margin.
    assert rows["inception"]["opt"] > 1.2


if __name__ == "__main__":
    from repro.gpusim import TITAN_BLACK

    build_figure(TITAN_BLACK).show()
