"""Extension — Winograd fast convolution (the paper's Section VII outlook).

"More techniques leveraging arithmetic complexity may be proposed in the
future for CNNs, e.g., the recent proposal from Nervana Systems [16].  They
can set state-of-the-art performance for a group of layers, for which they
suit ... Nevertheless, the underlying impact from data layout remains."

This harness checks both halves of that prediction against the model:
Winograd wins a *group* of layers (deep 3x3 convolutions), and the CHWN/
NCHW layout story is unchanged for the layers it cannot serve.
"""

from __future__ import annotations

from figutil import FigureTable

from repro.gpusim import GpuOutOfMemoryError, SimulationEngine
from repro.layers import ConvUnsupportedError, make_conv_kernel
from repro.networks import CONV_LAYERS


def build_figure(device) -> FigureTable:
    engine = SimulationEngine(device, check_memory=True)
    table = FigureTable(
        "Winograd extension: time (ms) per implementation, Table-1 conv layers",
        ["layer", "direct", "im2col", "fft", "winograd", "winner"],
    )
    for name, spec in CONV_LAYERS.items():
        times = {}
        for impl in ("direct", "im2col", "fft", "winograd"):
            try:
                times[impl] = engine.run(make_conv_kernel(spec, impl)).time_ms
            except (ConvUnsupportedError, GpuOutOfMemoryError):
                times[impl] = float("nan")
        winner = min(
            (t, impl) for impl, t in times.items() if t == t  # skip NaN
        )[1]
        table.add(
            name, times["direct"], times["im2col"], times["fft"],
            times["winograd"], winner,
        )
    return table


def test_extension_winograd(benchmark, device):
    import math

    table = benchmark(build_figure, device)
    rows = {r[0]: r for r in table.rows}
    # Winograd serves exactly the 3x3/stride-1 layers.
    for name, spec in CONV_LAYERS.items():
        supported = spec.fh == 3 and spec.stride == 1
        assert math.isnan(rows[name][4]) != supported, name
    # It wins a group of deep 3x3 layers over plain MM.
    beats_mm = [
        name for name, r in rows.items()
        if not math.isnan(r[4]) and r[4] < r[2]
    ]
    assert len(beats_mm) >= 2
    # And the layout story is untouched where Winograd cannot run: the
    # CHWN-preferring layers still prefer CHWN.
    for name in ("CV1", "CV2", "CV3", "CV4", "CV5"):
        r = rows[name]
        alternatives = [t for t in (r[2], r[3], r[4]) if not math.isnan(t)]
        assert r[1] < min(alternatives), name


if __name__ == "__main__":
    from repro.gpusim import TITAN_BLACK

    build_figure(TITAN_BLACK).show()
