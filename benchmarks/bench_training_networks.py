"""Extension — Fig. 14 under training (complete forward-backward passes).

Paper footnote 1 says forward and backward share data structures and
operations, so the layout optimizations should carry over to training; this
harness verifies that the scheme ranking survives when every layer also
pays its backward kernels and every transform is applied to the gradient
on the way back.
"""

from __future__ import annotations

from figutil import FigureTable

from repro.baselines import compare_schemes
from repro.framework import Net
from repro.networks import build_network

SCHEMES = ("cudnn-mm", "cudnn-best", "cuda-convnet", "opt")
NETWORKS = ("lenet", "cifar", "alexnet", "zfnet", "vgg")


def build_figure(device) -> FigureTable:
    table = FigureTable(
        "Training mode: fwd+bwd speedup normalized to cuDNN-MM",
        ["network", *SCHEMES, "opt_bwd_share"],
    )
    for name in NETWORKS:
        net = Net(build_network(name))
        results = compare_schemes(net, device, SCHEMES, training=True)
        base = results["cudnn-mm"].total_ms
        opt = results["opt"]
        bwd_share = sum(l.backward_ms for l in opt.layers) / opt.total_ms
        table.add(
            name, *(base / results[s].total_ms for s in SCHEMES), bwd_share
        )
    table.note("backward pass modelled per footnote 1: same structures, ~2x work")
    return table


def test_training_networks(benchmark, device):
    table = benchmark(build_figure, device)
    rows = {r[0]: dict(zip(table.columns[1:], r[1:])) for r in table.rows}
    # Opt remains the fastest scheme under training on every network.
    for name, row in rows.items():
        others = [v for k, v in row.items() if k not in ("opt", "opt_bwd_share")]
        assert row["opt"] >= max(others) * 0.999, name
    # Backward work dominates a training step (roughly 2/3 of the time).
    for name, row in rows.items():
        assert 0.45 < row["opt_bwd_share"] < 0.85, name
    # The forward-mode winners keep their roles.
    assert rows["lenet"]["cuda-convnet"] > rows["lenet"]["cudnn-best"]
    assert rows["vgg"]["cudnn-best"] > rows["vgg"]["cuda-convnet"]


if __name__ == "__main__":
    from repro.gpusim import TITAN_BLACK

    build_figure(TITAN_BLACK).show()
