"""Fig. 3 — cuda-convnet (CHWN) vs cuDNN (NCHW/MM) on CV1–CV12.

Paper: cuda-convnet wins CV1–CV5 and CV9 (up to 6.5x); cuDNN wins the rest.
Also reports the Section II.A ALU-utilization observation for AlexNet's
second convolution.
"""

from __future__ import annotations

from figutil import FigureTable

from repro.gpusim import SimulationEngine
from repro.layers import DirectConvCHWN, Im2colGemmNCHW
from repro.networks import ALEXNET_CONV, CONV_LAYERS

PAPER_CHWN_WINNERS = {"CV1", "CV2", "CV3", "CV4", "CV5", "CV9"}


def build_figure(device) -> FigureTable:
    engine = SimulationEngine(device, check_memory=False)
    table = FigureTable(
        "Fig. 3: convolution layouts (speedup of cuDNN over cuda-convnet; "
        "<1 means CHWN wins)",
        ["layer", "convnet_ms", "cudnn_ms", "cudnn_speedup", "winner"],
    )
    for name, spec in CONV_LAYERS.items():
        t_c = engine.run(DirectConvCHWN(spec)).time_ms
        t_m = engine.run(Im2colGemmNCHW(spec)).time_ms
        table.add(name, t_c, t_m, t_c / t_m, "CHWN" if t_c < t_m else "NCHW")

    # Section II.A: ALU utilization of AlexNet conv2 improves with layout.
    acv2 = ALEXNET_CONV["ACV2"]
    chwn_util = engine.run(DirectConvCHWN(acv2)).alu_utilization
    nchw_util = engine.run(Im2colGemmNCHW(acv2)).alu_utilization
    table.note(
        f"AlexNet CV2 ALU utilization: {min(chwn_util, nchw_util):.1%} -> "
        f"{max(chwn_util, nchw_util):.1%} with the suitable layout "
        "(paper: 55.64% -> 78.71%)"
    )
    return table


def test_fig03(benchmark, device):
    table = benchmark(build_figure, device)
    winners = dict(zip(table.column("layer"), table.column("winner")))
    got_chwn = {name for name, w in winners.items() if w == "CHWN"}
    assert got_chwn == PAPER_CHWN_WINNERS


if __name__ == "__main__":
    from repro.gpusim import TITAN_BLACK

    build_figure(TITAN_BLACK).show()
