"""Extension — FP16 on Pascal (paper Section VII's closing prediction).

"The latest NVIDIA Pascal architecture ... begins to support FP16 (e.g.,
NVIDIA Tesla P100) ... Nevertheless, the underlying impact from data
layout remains."  The harness re-runs the Fig. 3 layout duel on a Tesla
P100 in FP32 and FP16 and reports the winners and gaps.
"""

from __future__ import annotations

from figutil import FigureTable

from repro.extensions import TESLA_P100, compare_layouts_fp16, memory_bound_share
from repro.networks import CONV_LAYERS


def build_figure(device=TESLA_P100) -> FigureTable:
    table = FigureTable(
        f"FP16 extension on {device.name}: layout winners and gaps",
        ["layer", "fp32_win", "fp32_gap", "fp16_win", "fp16_gap", "fp16_speedup"],
    )
    for row in compare_layouts_fp16(device):
        table.add(
            row.layer, row.fp32_winner, row.fp32_ratio, row.fp16_winner,
            row.fp16_ratio, row.fp16_speedup_preferred,
        )
    shares = [
        (
            name,
            memory_bound_share(device, CONV_LAYERS[name], "im2col"),
            memory_bound_share(
                device, CONV_LAYERS[name], "im2col", fp16=True, math_only=True
            ),
        )
        for name in ("CV7", "CV12")
    ]
    for name, s32, s16 in shares:
        table.note(
            f"{name} memory share: {s32:.0%} (fp32) -> {s16:.0%} "
            "(fp16 math over fp32 storage)"
        )
    return table


def test_extension_fp16(benchmark):
    table = benchmark(build_figure)
    for row in table.rows:
        _, w32, gap32, w16, gap16, speedup = row
        assert w16 == w32  # 'the underlying impact from data layout remains'
        assert gap16 > 1.0
        assert 1.2 < speedup < 2.3  # FP16 buys up to ~2x


if __name__ == "__main__":
    build_figure().show()
