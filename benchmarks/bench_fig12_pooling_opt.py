"""Fig. 12 (and Fig. 8) — optimized pooling via auto-tuned thread coarsening.

Paper: with CHWN plus working-set expansion, the optimized kernels average
193.8 GB/s and improve on cuda-convnet by 14.3% on average (33.9% on PL3,
where 36% of DRAM accesses are eliminated).  Fig. 8's redundant-load
counting is reported as the traffic column.
"""

from __future__ import annotations

from figutil import FigureTable, bench_arg_parser

from repro.core.autotune import autotune_pooling_many
from repro.gpusim import SimulationContext, default_context
from repro.layers import PoolingCHWN, PoolingCoarsenedCHWN, make_pool_kernel
from repro.networks import POOL_LAYERS


def build_figure(device, jobs: int = 1, context: SimulationContext | None = None) -> FigureTable:
    ctx = context or default_context(device)
    engine = ctx.engine(check_memory=False)
    table = FigureTable(
        "Fig. 12: pooling — library kernels vs auto-tuned Opt "
        "(speedup normalized to cuda-convnet)",
        ["layer", "caffe", "cudnn", "opt", "factors", "dram_saved_pct", "opt_bw"],
    )
    # The hill-climbs are per-layer independent: tune them all up front,
    # optionally across workers.
    tuned_by_name = dict(
        zip(
            POOL_LAYERS,
            autotune_pooling_many(
                device, list(POOL_LAYERS.values()), context=ctx, jobs=jobs
            ),
        )
    )
    for name, spec in POOL_LAYERS.items():
        t_conv = engine.run(PoolingCHWN(spec)).time_ms
        t_caffe = engine.run(make_pool_kernel(spec, "nchw-linear")).time_ms
        t_cudnn = engine.run(make_pool_kernel(spec, "nchw-rowblock")).time_ms
        tuned = tuned_by_name[name]
        if (tuned.ux, tuned.uy) == (1, 1):
            opt_kernel = PoolingCHWN(spec)
        else:
            opt_kernel = PoolingCoarsenedCHWN(spec, tuned.ux, tuned.uy)
        opt_stats = engine.run(opt_kernel)
        base_dram = engine.run(PoolingCHWN(spec)).dram_bytes
        saved = 100.0 * (1 - opt_stats.dram_bytes / base_dram)
        useful = spec.in_desc().nbytes + spec.out_desc().nbytes
        table.add(
            name,
            t_conv / t_caffe,
            t_conv / t_cudnn,
            t_conv / opt_stats.time_ms,
            f"{tuned.ux}x{tuned.uy}",
            saved,
            useful / (opt_stats.time_ms * 1e6),
        )
    table.note("paper: Opt avg 193.8 GB/s, +14.3% avg over convnet, PL3 -36% DRAM")
    return table


def fig8_redundancy_example() -> tuple[int, int]:
    """Fig. 8's toy: 12 elements, window 4, stride 2 -> 5 outputs.

    Returns (loads without reuse, unique elements loaded)."""
    elements, window, stride = 12, 4, 2
    outputs = (elements - window) // stride + 1
    loads = outputs * window
    unique = (outputs - 1) * stride + window
    return loads, unique


def test_fig08_redundancy_counts():
    loads, unique = fig8_redundancy_example()
    assert loads == 20  # "totally 20 global memory accesses are required"
    assert unique == 12  # 8 of the 20 are redundant


def test_fig12(benchmark, device):
    table = benchmark(build_figure, device)
    rows = {r[0]: r for r in table.rows}
    # Opt never loses to the libraries.
    for name, r in rows.items():
        assert r[3] >= max(r[1], r[2]), name
        assert r[3] >= 0.99, name
    # Overlapped layers gain; non-overlapped do not regress.
    overlapped = [rows[f"PL{i}"][3] for i in range(3, 11)]
    avg_gain = sum(overlapped) / len(overlapped) - 1
    assert 0.05 < avg_gain < 0.40  # paper: 14.3% average
    # DRAM savings on an overlapped layer (paper: 36% on PL3).
    assert rows["PL3"][5] > 5.0


if __name__ == "__main__":
    from repro.gpusim import TITAN_BLACK

    args = bench_arg_parser(__doc__).parse_args()
    build_figure(TITAN_BLACK, jobs=args.jobs).show()
    print("\nFig. 8 toy example (loads, unique):", fig8_redundancy_example())
