"""Fig. 5 — FFT-based convolution vs MM vs cuda-convnet on CV1–CV12.

Paper: CV5/CV6 fail ("no results for both FFT options due to execution
failures"); FFT beats MM for large-channel layers (CV7, CV10); FFT is much
worse than MM at small channel counts (CV3, CV9).
"""

from __future__ import annotations

from figutil import FigureTable

from repro.gpusim import GpuOutOfMemoryError, SimulationEngine
from repro.layers import ConvUnsupportedError, make_conv_kernel
from repro.networks import CONV_LAYERS


def _speedup(engine, spec, impl, baseline_ms):
    try:
        return baseline_ms / engine.run(make_conv_kernel(spec, impl)).time_ms
    except (ConvUnsupportedError, GpuOutOfMemoryError):
        return float("nan")


def build_figure(device) -> FigureTable:
    engine = SimulationEngine(device, check_memory=True)
    table = FigureTable(
        "Fig. 5: speedups over cuda-convnet (nan = execution failure)",
        ["layer", "cudnn_mm", "cudnn_fft", "cudnn_fft_t"],
    )
    for name, spec in CONV_LAYERS.items():
        base = engine.run(make_conv_kernel(spec, "direct")).time_ms
        table.add(
            name,
            _speedup(engine, spec, "im2col", base),
            _speedup(engine, spec, "fft", base),
            _speedup(engine, spec, "fft-tiled", base),
        )
    table.note("paper: CV5/CV6 FFT fail; FFT > MM on CV7/CV10; FFT << MM on CV3/CV9")
    return table


def test_fig05(benchmark, device):
    import math

    table = benchmark(build_figure, device)
    rows = {r[0]: r for r in table.rows}
    # Execution failures on the stride-2 layers.
    for name in ("CV5", "CV6"):
        assert math.isnan(rows[name][2]) and math.isnan(rows[name][3])
    # FFT beats MM where the paper says it does.
    for name in ("CV7", "CV10"):
        assert rows[name][2] > rows[name][1]
    # FFT collapses at small C.
    for name in ("CV3", "CV9"):
        assert rows[name][2] < 0.5 * rows[name][1] or rows[name][2] < 0.3


if __name__ == "__main__":
    from repro.gpusim import TITAN_BLACK

    build_figure(TITAN_BLACK).show()
