"""Benchmark fixtures: make ``benchmarks`` importable and share the device."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from repro.gpusim import TITAN_BLACK, TITAN_X  # noqa: E402


@pytest.fixture(scope="session")
def device():
    return TITAN_BLACK


@pytest.fixture(scope="session")
def titan_x():
    return TITAN_X
