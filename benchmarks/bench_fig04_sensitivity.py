"""Fig. 4 — layout sensitivity to N and C on the CONV7 shape.

Paper: (a) cuda-convnet overtakes cuDNN once N passes 64–128 and is far
more batch-sensitive; (b) cuda-convnet wins below C = 32, cuDNN above.
"""

from __future__ import annotations

from dataclasses import replace

from figutil import FigureTable, bench_arg_parser

from repro.gpusim import SimulationContext, default_context
from repro.gpusim.batch import batched_eval_enabled
from repro.gpusim.exec import evaluate_cells, map_chunks
from repro.gpusim.parallel import parallel_map
from repro.layers import DirectConvCHWN, Im2colGemmNCHW
from repro.networks import CONV_LAYERS

N_VALUES = (1, 3, 16, 32, 64, 128, 256, 384, 512)
C_VALUES = (16, 32, 64, 128, 256)


def _gflops_pair(context: SimulationContext, spec) -> tuple[float, float]:
    """Scalar reference: one sweep point, two kernel evaluations."""
    g_c = context.run(DirectConvCHWN(spec), check_memory=False).achieved_gflops
    g_m = context.run(Im2colGemmNCHW(spec), check_memory=False).achieved_gflops
    return g_c, g_m


def _gflops_chunk(context: SimulationContext, specs) -> list[tuple[float, float]]:
    """Batched ``_gflops_pair``: both layouts of every point in one
    memoized vectorized evaluation."""
    models = []
    for spec in specs:
        models.append(DirectConvCHWN(spec))
        models.append(Im2colGemmNCHW(spec))
    outcomes = evaluate_cells(context, models, check_memory=False)
    pairs = []
    for i in range(len(specs)):
        g_c, g_m = outcomes[2 * i], outcomes[2 * i + 1]
        if isinstance(g_c, Exception):
            raise g_c
        if isinstance(g_m, Exception):
            raise g_m
        pairs.append((g_c.achieved_gflops, g_m.achieved_gflops))
    return pairs


def _gflops_pairs(
    ctx: SimulationContext, specs, jobs: int | str
) -> list[tuple[float, float]]:
    if batched_eval_enabled():
        return map_chunks(_gflops_chunk, specs, ctx, jobs=jobs)
    return parallel_map(_gflops_pair, specs, ctx, jobs=jobs)


def build_figure(
    device, jobs: int | str = 1, context: SimulationContext | None = None
) -> tuple[FigureTable, FigureTable]:
    ctx = context or default_context(device)
    base = CONV_LAYERS["CV7"]

    fig4a = FigureTable(
        "Fig. 4a: CONV7 GFLOPS vs batch size N",
        ["N", "convnet_gflops", "cudnn_gflops", "winner"],
    )
    n_pairs = _gflops_pairs(ctx, [replace(base, n=n) for n in N_VALUES], jobs)
    for n, (g_c, g_m) in zip(N_VALUES, n_pairs):
        fig4a.add(n, g_c, g_m, "CHWN" if g_c > g_m else "NCHW")

    fig4b = FigureTable(
        "Fig. 4b: CONV7 GFLOPS vs channel count C (N=64)",
        ["C", "convnet_gflops", "cudnn_gflops", "winner"],
    )
    c_pairs = _gflops_pairs(ctx, [replace(base, ci=c) for c in C_VALUES], jobs)
    for c, (g_c, g_m) in zip(C_VALUES, c_pairs):
        fig4b.add(c, g_c, g_m, "CHWN" if g_c > g_m else "NCHW")
    fig4b.note("paper: crossover at C = 32 (Ct); 4a crossover N in (64, 128]")
    return fig4a, fig4b


def test_fig04(benchmark, device):
    fig4a, fig4b = benchmark(build_figure, device)
    # 4a: CHWN monotone rising until saturation, crossover in (64, 128].
    chwn = fig4a.column("convnet_gflops")
    assert chwn == sorted(chwn)
    assert fig4a.row(64)[3] == "NCHW"
    assert fig4a.row(128)[3] == "CHWN"
    # 4b: cuDNN monotone rising with C, crossover in (32, 64].
    cudnn = fig4b.column("cudnn_gflops")
    assert cudnn == sorted(cudnn)
    assert fig4b.row(32)[3] == "CHWN"
    assert fig4b.row(64)[3] == "NCHW"


if __name__ == "__main__":
    from repro.gpusim import TITAN_BLACK

    args = bench_arg_parser(__doc__).parse_args()
    for t in build_figure(TITAN_BLACK, jobs=args.jobs):
        t.show()
