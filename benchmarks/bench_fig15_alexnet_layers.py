"""Fig. 15 — per-layer AlexNet breakdown, normalized to cuDNN-MM.

Paper: the optimized framework picks CHWN for CV1 and NCHW for CV2–CV5,
CHWN pooling (up to 27.8% over cuda-convnet), a 20.1x softmax win over
cuDNN, and only four layout transformations whose overhead is minor.
"""

from __future__ import annotations

from figutil import FigureTable

from repro.baselines import time_network
from repro.framework import Net
from repro.networks import build_network


def build_figure(device) -> FigureTable:
    net = Net(build_network("alexnet"))
    mm = time_network(net, device, "cudnn-mm")
    convnet = time_network(net, device, "cuda-convnet")
    opt = time_network(net, device, "opt")
    table = FigureTable(
        "Fig. 15: AlexNet per-layer speedup over cuDNN-MM",
        ["layer", "kind", "convnet", "opt", "opt_layout", "opt_impl"],
    )
    for layer in mm.layers:
        base = layer.total_ms
        c = convnet.layer(layer.name).total_ms
        o = opt.layer(layer.name)
        # Per-layer bars exclude the plan's relayouts (reported in the note),
        # matching the paper's per-layer normalization.
        table.add(
            layer.name, layer.kind, base / c, base / o.time_ms, o.layout,
            o.implementation,
        )
    transforms = sum(l.transform_ms for l in opt.layers)
    table.note(
        f"opt plan: {sum(1 for l in opt.layers if l.transform_ms > 0)} "
        f"transforms, {transforms:.3f} ms of {opt.total_ms:.3f} ms total"
    )
    return table


def test_fig15(benchmark, device):
    table = benchmark(build_figure, device)
    rows = {r[0]: dict(zip(table.columns[1:], r[1:])) for r in table.rows}
    # Layout plan matches the paper: CHWN for conv1, NCHW for conv2-5.
    assert rows["conv1"]["opt_layout"] == "CHWN"
    for conv in ("conv2", "conv3", "conv4", "conv5"):
        assert rows[conv]["opt_layout"] == "NCHW", conv
    # Pooling runs CHWN and beats the NCHW baseline clearly.
    for pool in ("pool1", "pool2", "pool3"):
        assert rows[pool]["opt_layout"] == "CHWN"
        assert rows[pool]["opt"] > 1.5
    # Softmax: a large win over the baseline (paper: 20.1x over cuDNN).
    assert rows["prob"]["opt"] > 2.0
    # Opt never loses a layer to cuDNN-MM by more than transform noise.
    assert all(r["opt"] > 0.8 for r in rows.values())


def test_fig15_transform_overhead_is_minor(device):
    net = Net(build_network("alexnet"))
    opt = time_network(net, device, "opt")
    transforms = sum(l.transform_ms for l in opt.layers)
    assert transforms < 0.1 * opt.total_ms


if __name__ == "__main__":
    from repro.gpusim import TITAN_BLACK

    build_figure(TITAN_BLACK).show()
