"""Analysis — roofline placement of every Table-1 layer.

Not a figure from the paper, but the analysis its Section II performs in
prose ("convolutional layers are not necessarily only compute bound"):
place each layer's best implementation on the device roofline and report
what binds it.  Pins the paper's qualitative taxonomy: convolutions with
healthy shapes ride the compute roof; pooling and softmax live far down
the bandwidth slope.
"""

from __future__ import annotations

from figutil import FigureTable

from repro.core import best_conv_for_layout
from repro.gpusim import SimulationEngine, roofline_point
from repro.layers import make_pool_kernel, make_softmax_kernel
from repro.networks import CLASS_LAYERS, CONV_LAYERS, POOL_LAYERS
from repro.tensors import CHWN, NCHW


def build_figure(device) -> FigureTable:
    engine = SimulationEngine(device, check_memory=False)
    table = FigureTable(
        f"Roofline placement on {device.name} "
        "(intensity flop/B, achieved vs attainable GFLOPS)",
        ["layer", "impl", "intensity", "achieved", "roof", "bound"],
    )
    for name, spec in CONV_LAYERS.items():
        best = min(
            (best_conv_for_layout(engine, spec, lo) for lo in (CHWN, NCHW)),
            key=lambda c: c.time_ms,
        )
        stats = engine.run(best.kernel)
        p = roofline_point(device, stats)
        table.add(
            name, best.implementation, p.arithmetic_intensity,
            stats.achieved_gflops, p.roof_gflops, stats.bound,
        )
    for name, spec in POOL_LAYERS.items():
        stats = engine.run(make_pool_kernel(spec, "chwn"))
        p = roofline_point(device, stats)
        table.add(name, "chwn", p.arithmetic_intensity, stats.achieved_gflops,
                  p.roof_gflops, stats.bound)
    for name, spec in CLASS_LAYERS.items():
        stats = engine.run(make_softmax_kernel(spec, "opt"))
        p = roofline_point(device, stats)
        table.add(name, "softmax-opt", p.arithmetic_intensity,
                  stats.achieved_gflops, p.roof_gflops, stats.bound)
    return table


def test_roofline(benchmark, device):
    table = benchmark(build_figure, device)
    rows = {r[0]: r for r in table.rows}
    # Nothing ever beats its roof.
    for name, r in rows.items():
        assert r[3] <= r[4] * 1.001, name
    # Pooling and classifier layers sit deep in memory-bound territory.
    pool_class = list(POOL_LAYERS) + list(CLASS_LAYERS)
    for name in pool_class:
        assert rows[name][2] < 10, name  # low arithmetic intensity
    # Every convolution has at least an order of magnitude more intensity
    # than the most intense pooling/classifier layer.
    worst_conv = min(rows[name][2] for name in CONV_LAYERS)
    best_other = max(rows[name][2] for name in pool_class)
    assert worst_conv > 3 * best_other
    # The paper's Section II point: convolutions are "not necessarily only
    # compute bound" — at least one conv rides the bandwidth slope.
    assert any(rows[name][5] == "dram_bandwidth" for name in CONV_LAYERS)


if __name__ == "__main__":
    from repro.gpusim import TITAN_BLACK

    build_figure(TITAN_BLACK).show()
