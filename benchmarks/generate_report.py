"""Regenerate every figure/table into a single report.

Usage::

    python benchmarks/generate_report.py [output.md]

Writes (or prints) all reproduced series — the paper's Figs. 1–15, the
Table-1 sweep, calibration, the Titan X check, and the extension studies —
as one document.  This is the artifact to diff when the model changes.
"""

from __future__ import annotations

import io
import sys
import time
from contextlib import redirect_stdout
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from repro.gpusim import TITAN_BLACK, TITAN_X  # noqa: E402


def collect() -> str:
    import bench_ablation_coarsening
    import bench_ablation_planner
    import bench_ablation_transform
    import bench_calibration
    import bench_convnet_suite
    import bench_devices
    import bench_extension_fp16
    import bench_extension_winograd
    import bench_fig01_alexnet_layouts
    import bench_fig03_conv_layouts
    import bench_fig04_sensitivity
    import bench_fig05_fft
    import bench_fig06_pooling_layouts
    import bench_fig10_layout_speedup
    import bench_fig11_transform
    import bench_fig12_pooling_opt
    import bench_fig13_softmax
    import bench_fig14_networks
    import bench_fig15_alexnet_layers
    import bench_roofline
    import bench_table1_layers
    import bench_titanx_trends
    import bench_training_networks

    single_device = [
        bench_fig01_alexnet_layouts,
        bench_fig03_conv_layouts,
        bench_fig05_fft,
        bench_fig06_pooling_layouts,
        bench_fig10_layout_speedup,
        bench_fig11_transform,
        bench_fig12_pooling_opt,
        bench_fig13_softmax,
        bench_fig14_networks,
        bench_fig15_alexnet_layers,
        bench_table1_layers,
        bench_training_networks,
        bench_convnet_suite,
        bench_roofline,
        bench_ablation_transform,
        bench_ablation_coarsening,
        bench_ablation_planner,
    ]

    buf = io.StringIO()
    with redirect_stdout(buf):
        print("# Reproduced figures and tables")
        print(f"\n_generated {time.strftime('%Y-%m-%d %H:%M:%S')}_\n")
        print("```")
        for mod in single_device:
            mod.build_figure(TITAN_BLACK).show()
        for table in bench_fig04_sensitivity.build_figure(TITAN_BLACK):
            table.show()
        bench_titanx_trends.build_figure(TITAN_X).show()
        bench_calibration.build_figure([TITAN_BLACK, TITAN_X]).show()
        bench_extension_winograd.build_figure(TITAN_BLACK).show()
        bench_extension_fp16.build_figure().show()
        bench_devices.build_figure().show()
        print("```")
    return buf.getvalue()


def main(argv: list[str]) -> int:
    report = collect()
    if len(argv) > 1:
        Path(argv[1]).write_text(report)
        print(f"wrote {len(report.splitlines())} lines to {argv[1]}")
    else:
        print(report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
