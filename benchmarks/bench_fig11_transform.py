"""Fig. 11 — layout-transformation kernels: Naive vs Opt1 vs Opt2.

Paper: Opt1 (flatten + tiled shared-memory transpose) gives an average
6.48x over naive; Opt2 (float2 vectorization, N >= 64 only) pushes the
best case to 229.5 GB/s on CONV6's tensor — 97.6% of effective bandwidth.
"""

from __future__ import annotations

import math

from figutil import FigureTable

from repro.gpusim import SimulationEngine
from repro.networks import CONV_LAYERS
from repro.tensors import CHWN, NCHW, make_transform_kernel


def build_figure(device) -> FigureTable:
    engine = SimulationEngine(device, check_memory=False)
    table = FigureTable(
        "Fig. 11: transformation bandwidth (GB/s moved: read+write / time)",
        ["layer", "naive", "opt1", "opt2"],
    )
    for name, spec in CONV_LAYERS.items():
        desc = spec.in_desc(CHWN)
        bws = []
        for method in ("naive", "opt1", "opt2"):
            try:
                kernel = make_transform_kernel(desc, NCHW, method)
            except ValueError:
                bws.append(float("nan"))  # Opt2 needs N >= 64
                continue
            stats = engine.run(kernel)
            bws.append(2 * desc.nbytes / (stats.time_ms * 1e6))
        table.add(name, *bws)
    table.note("paper: Opt2 n/a for CV9-CV12 (N=32); CV6 reaches 97.6% of 235 GB/s")
    return table


def test_fig11(benchmark, device):
    table = benchmark(build_figure, device)
    rows = {r[0]: r for r in table.rows}
    # Opt2 inapplicable exactly where N < 64 (CV9-CV12).
    for name, spec in CONV_LAYERS.items():
        assert math.isnan(rows[name][3]) == (spec.n < 64), name
    # The ladder: naive < opt1 < opt2 (where applicable).
    for name, r in rows.items():
        assert r[1] < r[2]
        if not math.isnan(r[3]):
            assert r[2] < r[3]
    # CV6 approaches the effective bandwidth.
    assert rows["CV6"][3] > 0.90 * device.mem_bandwidth_gbs
    # Average Opt1-over-naive gain in the paper's zone (6.48x).
    gains = [r[2] / r[1] for r in rows.values()]
    assert 4 < sum(gains) / len(gains) < 12


if __name__ == "__main__":
    from repro.gpusim import TITAN_BLACK

    build_figure(TITAN_BLACK).show()
