"""Ablation — what each planning ingredient contributes.

Compares, per network: the two single-layout worlds, the (Ct, Nt)
heuristic with fine-tuning, the DP-optimal plan, the DP plan without FFT
implementations, and the unreachable zero-transform-cost lower bound.
"""

from __future__ import annotations

from figutil import FigureTable

from repro.core import plan_optimal, plan_single_layout, plan_with_heuristic
from repro.framework import Net
from repro.networks import build_network
from repro.tensors import CHWN, NCHW

NETWORKS = ("lenet", "cifar", "alexnet", "zfnet", "vgg")


def _lower_bound_ms(device, nodes) -> float:
    """Every layer in its best layout with transforms priced at zero."""
    from repro.core.planner import PLAN_LAYOUTS, _build_costs

    costs = _build_costs(device, nodes, tune_pooling=True, allow_fft=True)
    return sum(min(c.cost(lo) for lo in PLAN_LAYOUTS) for c in costs)


def build_figure(device) -> FigureTable:
    table = FigureTable(
        "Ablation: planner variants, total network time (ms)",
        ["network", "all_chwn", "all_nchw", "heuristic", "optimal", "no_fft", "free_t"],
    )
    for name in NETWORKS:
        nodes = Net(build_network(name)).planner_nodes(device)
        table.add(
            name,
            plan_single_layout(device, nodes, CHWN, tune_pooling=True).total_ms,
            plan_single_layout(device, nodes, NCHW, tune_pooling=True).total_ms,
            plan_with_heuristic(device, nodes).total_ms,
            plan_optimal(device, nodes).total_ms,
            plan_optimal(device, nodes, allow_fft=False).total_ms,
            _lower_bound_ms(device, nodes),
        )
    table.note("free_t = zero-cost-transform lower bound (unreachable)")
    return table


def test_ablation_planner(benchmark, device):
    table = benchmark(build_figure, device)
    for row in table.rows:
        name, chwn, nchw, heuristic, optimal, no_fft, free = row
        # Order constraints the planner must satisfy everywhere.
        assert optimal <= min(chwn, nchw) + 1e-9, name
        assert optimal <= heuristic + 1e-9, name
        assert optimal <= no_fft + 1e-9, name
        assert free <= optimal + 1e-9, name
        # Transform costs are real but not dominant: the plan lands within
        # 25% of the free-transform bound.
        assert optimal <= free * 1.25, name
    # FFT availability matters for at least one network (AlexNet-class).
    assert any(row[5] > row[4] * 1.05 for row in table.rows)
    # The heuristic is a good approximation of the DP plan.
    assert all(row[3] <= row[4] * 1.6 for row in table.rows)


if __name__ == "__main__":
    from repro.gpusim import TITAN_BLACK

    build_figure(TITAN_BLACK).show()
