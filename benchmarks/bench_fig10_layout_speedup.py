"""Fig. 10 — preferred-layout speedups with and without transform overhead.

Paper: the preferred layout wins by 2.48x on average (GM); adding a naive
transformation can erase the benefit entirely, while the optimized
transformation retains an average 2.08x (up to 4.02x on CV1).
"""

from __future__ import annotations

from figutil import FigureTable, geomean

from repro.gpusim import SimulationEngine
from repro.layers import DirectConvCHWN, Im2colGemmNCHW
from repro.networks import CONV_LAYERS
from repro.tensors import CHWN, NCHW, transform_time_ms


def build_figure(device) -> FigureTable:
    engine = SimulationEngine(device, check_memory=False)
    table = FigureTable(
        "Fig. 10: speedup of the preferred layout over the alternative",
        ["layer", "opt", "opt_naive_t", "opt_fast_t"],
    )
    for name, spec in CONV_LAYERS.items():
        t_chwn = engine.run(DirectConvCHWN(spec)).time_ms
        t_nchw = engine.run(Im2colGemmNCHW(spec)).time_ms
        best, alt = min(t_chwn, t_nchw), max(t_chwn, t_nchw)
        # Running this one layer in its preferred layout inside a network
        # kept in the alternative layout costs two relayouts: the input into
        # the preferred layout, and the output back out of it.
        src = NCHW if t_chwn < t_nchw else CHWN
        dst = CHWN if t_chwn < t_nchw else NCHW
        naive = transform_time_ms(device, spec.in_desc(src), dst, "naive")
        naive += transform_time_ms(device, spec.out_desc(dst), src, "naive")
        fast = transform_time_ms(device, spec.in_desc(src), dst, "auto")
        fast += transform_time_ms(device, spec.out_desc(dst), src, "auto")
        table.add(name, alt / best, alt / (best + naive), alt / (best + fast))
    gm = (
        geomean(table.column("opt")),
        geomean(table.column("opt_naive_t")),
        geomean(table.column("opt_fast_t")),
    )
    table.add("GM", *gm)
    table.note("paper GM: opt 2.48x, with optimized transform 2.08x")
    return table


def test_fig10(benchmark, device):
    table = benchmark(build_figure, device)
    gm = table.row("GM")
    assert 1.8 < gm[1] < 4.5  # preferred layout GM (paper 2.48)
    assert gm[3] > gm[2]  # fast transform beats naive transform
    assert gm[3] > 0.55 * gm[1]  # fast transform retains most of the benefit
    # Naive transform erases the benefit on at least one layer (paper: CV1's
    # 6.46x gain disappears under the naive kernel).
    assert any(r[2] < 1.0 < r[1] for r in table.rows if r[0] != "GM")


if __name__ == "__main__":
    from repro.gpusim import TITAN_BLACK

    build_figure(TITAN_BLACK).show()
