"""Simulator fast-path performance: vectorized L2 replay + parallel sweeps.

Two measurements, both checked for bit-identical results before any timing
is reported:

* **micro** — ``SetAssociativeCache.access_stream`` on a pooling-shaped
  address trace (overlapped 3x3 stride-2 windows over 55x55 float maps),
  vectorized fast path vs the scalar ``reference_access_stream``;
* **end-to-end** — the Fig. 6 pooling-layout figure built with the scalar
  cache model serially vs the fast path with ``--jobs`` workers.

Emits ``BENCH_simulator.json`` (CI uploads it as an artifact); with
``--check`` the exit status is nonzero if the fast path fails to beat the
reference on the micro trace.
"""

from __future__ import annotations

import json
import os
import sys
import time

import numpy as np

from figutil import bench_arg_parser

import bench_fig06_pooling_layouts as fig06

from repro.gpusim import TITAN_BLACK, SetAssociativeCache, SimulationContext
from repro.gpusim.cache import set_fast_path


def pooling_trace(min_addresses: int) -> np.ndarray:
    """Byte addresses of a 3x3 stride-2 pooling pass over 55x55 maps.

    Each output row reads three input rows and stride 2 < window 3, so
    every interior input row is streamed twice — the overlapped-window
    reuse pattern the L2 model exists to capture.  Taps step 8 bytes, so
    four consecutive taps share one 32-byte line (the adjacent-duplicate
    shape the fast path collapses).
    """
    taps = np.arange(0, 57 * 4, 8, dtype=np.int64)
    row_starts = []
    base = 0
    total = 0
    while total < min_addresses:
        for out_row in range(27):
            for wrow in range(3):
                row_starts.append(base + (out_row * 2 + wrow) * 57 * 4)
                total += taps.size
        base += 55 * 55 * 16
    starts = np.asarray(row_starts, dtype=np.int64)
    return (starts[:, None] + taps[None, :]).ravel()


def run_micro(device, n_addresses: int) -> dict:
    addr = pooling_trace(n_addresses)

    ref = SetAssociativeCache.l2_for(device, fast_path=False)
    t0 = time.perf_counter()
    ref_hits = ref.access_stream(addr)
    ref_s = time.perf_counter() - t0

    fast = SetAssociativeCache.l2_for(device, fast_path=True)
    t0 = time.perf_counter()
    fast_hits = fast.access_stream(addr)
    fast_s = time.perf_counter() - t0

    if not np.array_equal(ref_hits, fast_hits):
        raise AssertionError("fast-path hit mask differs from reference")
    if (ref.stats.accesses, ref.stats.hits, ref.stats.evictions) != (
        fast.stats.accesses,
        fast.stats.hits,
        fast.stats.evictions,
    ):
        raise AssertionError("fast-path CacheStats differ from reference")

    return {
        "trace_addresses": int(addr.size),
        "reference_s": ref_s,
        "fast_s": fast_s,
        "speedup": ref_s / fast_s if fast_s else float("inf"),
        "hit_rate": ref.stats.hit_rate,
    }


def run_end_to_end(device, jobs: int) -> dict:
    prev = set_fast_path(False)
    try:
        ctx = SimulationContext(device, check_memory=False)
        t0 = time.perf_counter()
        ref_table = fig06.build_figure(device, jobs=1, context=ctx)
        ref_s = time.perf_counter() - t0
    finally:
        set_fast_path(True)
    try:
        ctx = SimulationContext(device, check_memory=False)
        t0 = time.perf_counter()
        fast_table = fig06.build_figure(device, jobs=jobs, context=ctx)
        fast_s = time.perf_counter() - t0
    finally:
        set_fast_path(prev)

    if ref_table.render() != fast_table.render():
        raise AssertionError("fast/parallel Fig. 6 differs from reference")

    return {
        "figure": "fig06_pooling_layouts",
        "jobs": jobs,
        "reference_s": ref_s,
        "fast_s": fast_s,
        "speedup": ref_s / fast_s if fast_s else float("inf"),
        "identical": True,
    }


def main(argv=None) -> int:
    parser = bench_arg_parser(__doc__)
    parser.add_argument(
        "--trace-addresses",
        type=int,
        default=1_000_000,
        help="micro-benchmark trace length (default: 1M addresses)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_simulator.json",
        help="where to write the results JSON",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero if the fast path is slower than the reference",
    )
    parser.add_argument(
        "--skip-end-to-end",
        action="store_true",
        help="only run the access_stream micro-benchmark",
    )
    args = parser.parse_args(argv)

    results = {
        "cpu_count": os.cpu_count(),
        "micro": run_micro(TITAN_BLACK, args.trace_addresses),
    }
    m = results["micro"]
    print(
        f"micro ({m['trace_addresses']} addrs): reference {m['reference_s']:.3f}s, "
        f"fast {m['fast_s']:.3f}s -> {m['speedup']:.1f}x "
        f"(hit rate {m['hit_rate']:.3f})"
    )

    if not args.skip_end_to_end:
        results["end_to_end"] = run_end_to_end(TITAN_BLACK, max(args.jobs, 1))
        e = results["end_to_end"]
        print(
            f"end-to-end ({e['figure']}, --jobs {e['jobs']}): "
            f"reference {e['reference_s']:.3f}s, fast {e['fast_s']:.3f}s "
            f"-> {e['speedup']:.1f}x, tables identical"
        )

    with open(args.output, "w") as fh:
        json.dump(results, fh, indent=1, sort_keys=True)
    print(f"wrote {args.output}")

    if args.check and results["micro"]["speedup"] < 1.0:
        print("CHECK FAILED: vectorized cache slower than scalar reference")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
