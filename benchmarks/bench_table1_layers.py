"""Table 1 — the full layer zoo under its best implementation per layout.

Table 1 is the paper's workload specification; this harness times every row
under both layouts' best implementations, which is the raw material behind
Figs. 1, 3, 5, 6, 10 and the heuristic itself.
"""

from __future__ import annotations

from figutil import FigureTable

from repro.core import best_conv_for_layout
from repro.gpusim import SimulationEngine
from repro.layers import make_pool_kernel, make_softmax_kernel
from repro.networks import CLASS_LAYERS, CONV_LAYERS, POOL_LAYERS
from repro.tensors import CHWN, NCHW


def build_figure(device) -> FigureTable:
    engine = SimulationEngine(device, check_memory=False)
    table = FigureTable(
        "Table 1 layers: best time per layout (ms)",
        ["layer", "chwn_ms", "nchw_ms", "preferred"],
    )
    for name, spec in CONV_LAYERS.items():
        chwn = best_conv_for_layout(engine, spec, CHWN).time_ms
        nchw = best_conv_for_layout(engine, spec, NCHW).time_ms
        table.add(name, chwn, nchw, "CHWN" if chwn < nchw else "NCHW")
    for name, spec in POOL_LAYERS.items():
        chwn = engine.run(make_pool_kernel(spec, "chwn")).time_ms
        nchw = engine.run(make_pool_kernel(spec, "nchw-linear")).time_ms
        table.add(name, chwn, nchw, "CHWN" if chwn < nchw else "NCHW")
    for name, spec in CLASS_LAYERS.items():
        best_base = min(
            engine.run(make_softmax_kernel(spec, impl)).time_ms
            for impl in ("5kernel", "cudnn")
        )
        opt = engine.run(make_softmax_kernel(spec, "opt")).time_ms
        table.add(name, opt, best_base, "opt")
    return table


def test_table1(benchmark, device):
    table = benchmark(build_figure, device)
    preferred = dict(zip(table.column("layer"), table.column("preferred")))
    # Every pooling row prefers CHWN; every classifier row prefers Opt.
    for i in range(1, 11):
        assert preferred[f"PL{i}"] == "CHWN"
    for i in range(1, 6):
        assert preferred[f"CLASS{i}"] == "opt"
    # Conv rows split exactly as the paper's Fig. 3.
    chwn_convs = {k for k, v in preferred.items() if k.startswith("CV") and v == "CHWN"}
    assert chwn_convs == {"CV1", "CV2", "CV3", "CV4", "CV5", "CV9"}


if __name__ == "__main__":
    from repro.gpusim import TITAN_BLACK

    build_figure(TITAN_BLACK).show()
