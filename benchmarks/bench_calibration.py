"""Section IV.A/IV.D — one-time calibration cost and threshold recovery.

Paper: thresholds "only relate to the property of the hardware", found by
one-time profiling; "the profiling time overhead is relatively low (e.g.,
395 ms for AlexNet in a complete forward-backward profiling)".
"""

from __future__ import annotations

from figutil import FigureTable, bench_arg_parser

from repro.core import calibrate


def build_figure(devices, jobs: int = 1) -> FigureTable:
    table = FigureTable(
        "Calibration: recovered thresholds and simulated profiling cost",
        ["device", "ct", "nt", "profiling_ms"],
    )
    for device in devices:
        result = calibrate(device, jobs=jobs)
        table.add(
            device.name, result.thresholds.ct, result.thresholds.nt,
            result.profiling_ms,
        )
    table.note("paper: Titan Black (32, 128); Titan X (128, 64); ~395 ms profiling")
    return table


def test_calibration(benchmark, device, titan_x):
    table = benchmark(build_figure, [device, titan_x])
    black = table.row("GTX Titan Black")
    maxwell = table.row("GTX Titan X")
    assert black[2] == 128  # Nt
    assert black[1] in (32, 64)  # Ct (decision-equivalent grid point)
    assert (maxwell[1], maxwell[2]) == (128, 64)
    # One-time profiling stays sub-second of simulated GPU time.
    assert black[3] < 2000


if __name__ == "__main__":
    from repro.gpusim import TITAN_BLACK, TITAN_X

    args = bench_arg_parser(__doc__).parse_args()
    build_figure([TITAN_BLACK, TITAN_X], jobs=args.jobs).show()
