"""Shared helpers for the figure-reproduction benchmarks.

Every ``bench_figXX_*.py`` module follows the same shape:

* a pure ``build_figure(device)`` function that regenerates the figure's
  series (rows of labelled numbers);
* a ``test_figXX`` pytest-benchmark entry that times the harness and
  asserts the figure's qualitative shape;
* a ``__main__`` block so ``python benchmarks/bench_figXX_*.py`` prints the
  reproduced rows next to the paper's expectations.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field


def parse_jobs(value: str) -> int | str:
    """``--jobs`` argument: an integer or the literal ``auto``."""
    if value.strip().lower() == "auto":
        return "auto"
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'auto', got {value!r}"
        ) from None


def bench_arg_parser(description: str) -> argparse.ArgumentParser:
    """Shared CLI for ``python benchmarks/bench_*.py`` entry points.

    Every driver accepts the same ``--jobs N`` flag (worker processes for
    independent kernel evaluations; results are identical for any value —
    see :mod:`repro.gpusim.exec`).
    """
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument(
        "--jobs",
        type=parse_jobs,
        default=1,
        help="worker processes (1 = serial, 'auto' or negative = all CPUs; "
        "requests beyond the CPU count are clamped)",
    )
    return parser


def geomean(values) -> float:
    """Geometric mean (the paper's GM bars)."""
    vals = list(values)
    if not vals:
        raise ValueError("geomean of empty sequence")
    prod = 1.0
    for v in vals:
        if v <= 0:
            raise ValueError(f"geomean requires positive values, got {v}")
        prod *= v
    return prod ** (1.0 / len(vals))


@dataclass
class FigureTable:
    """A labelled table of series, printable as the figure's data."""

    title: str
    columns: list[str]
    rows: list[tuple] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, *row) -> None:
        if len(row) != len(self.columns):
            raise ValueError(
                f"row width {len(row)} != {len(self.columns)} columns"
            )
        self.rows.append(row)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def column(self, name: str) -> list:
        idx = self.columns.index(name)
        return [r[idx] for r in self.rows]

    def row(self, label) -> tuple:
        for r in self.rows:
            if r[0] == label:
                return r
        raise KeyError(f"no row labelled {label!r} in {self.title}")

    def render(self) -> str:
        def fmt(v) -> str:
            if isinstance(v, float):
                return f"{v:10.3f}"
            return f"{str(v):>10s}"

        lines = [self.title, "-" * len(self.title)]
        lines.append("  ".join(f"{c:>10s}" for c in self.columns))
        for r in self.rows:
            lines.append("  ".join(fmt(v) for v in r))
        for n in self.notes:
            lines.append(f"  note: {n}")
        return "\n".join(lines)

    def show(self) -> None:
        print()
        print(self.render())
