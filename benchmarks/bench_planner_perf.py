"""Batched candidate-evaluator performance: vectorized analytic models.

Two measurements, both checked for bit-identical results before any timing
is reported:

* **micro** — a sweep-shaped candidate grid (direct CHWN + im2col NCHW
  convolutions plus the three Fig. 6 pooling layouts, across batch and
  channel axes) evaluated one ``context.run`` call at a time vs one
  ``evaluate_models`` call, seven interleaved timed passes each (fresh
  context per pass, so the scalar structural cache never warms); every
  :class:`KernelStats` field must match exactly, and the batched path must
  clear 5x the scalar candidates/sec on the cleanest of the seven
  rounds (the ``--check`` gate);
* **end-to-end** — the Fig. 4 sensitivity grid and the Fig. 6 pooling
  figure built with batching off (serial scalar evaluation) vs through
  the sweep execution engine: memoized-serial (fresh contexts), the warm
  worker pool at ``--jobs``, and a warm shared-context rebuild (the
  steady state of a long-lived session).  Rendered tables are compared
  byte for byte across every mode, and the scalar/serial passes are
  interleaved over rounds with the cleanest round reported, like the
  micro benchmark.

Emits ``BENCH_planner.json`` (CI uploads it as an artifact); with
``--check`` the exit status is nonzero on a sub-5x micro speedup *or* an
end-to-end memoized-serial run slower than the scalar path.
"""

from __future__ import annotations

import json
import os
import sys
import time
from dataclasses import replace

from figutil import bench_arg_parser

import bench_fig04_sensitivity as fig04
import bench_fig06_pooling_layouts as fig06

from repro.gpusim import SimulationContext, TITAN_BLACK
from repro.gpusim.batch import evaluate_models, set_batched_eval
from repro.gpusim.exec import shutdown_pool
from repro.gpusim.parallel import resolve_jobs
from repro.layers import DirectConvCHWN, Im2colGemmNCHW, make_pool_kernel
from repro.layers.base import PoolSpec
from repro.networks import CONV_LAYERS

MICRO_N = (1, 2, 4, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512)
MICRO_C = (3, 8, 16, 24, 32, 48, 64, 96, 128, 192, 256)
POOL_IMPLS = ("chwn", "nchw-linear", "nchw-rowblock")
MICRO_REPEATS = 7
SPEEDUP_GATE = 5.0
E2E_REPEATS = 5
#: memoized-serial must at least match the scalar path end to end
E2E_GATE = 1.0


def micro_models():
    """Distinct candidates shaped like the two bundled sweeps: the Fig. 4
    convolution-layout grid and the Fig. 6 pooling-layout grid, crossed
    over batch and channel axes (no repeated shapes, so the scalar path's
    structural cache never shortcuts an evaluation)."""
    base = CONV_LAYERS["CV7"]
    pool = PoolSpec(n=128, c=96, h=55, w=55, window=3, stride=2)
    models = []
    for n in MICRO_N:
        for c in MICRO_C:
            spec = replace(base, n=n, ci=c)
            models.append(DirectConvCHWN(spec))
            models.append(Im2colGemmNCHW(spec))
            pspec = replace(pool, n=n, c=c)
            for impl in POOL_IMPLS:
                models.append(make_pool_kernel(pspec, impl))
    return models


def run_micro(device) -> dict:
    models = micro_models()

    def scalar_pass():
        ctx = SimulationContext(device, check_memory=False)
        return [ctx.run(m, check_memory=False) for m in models]

    def batched_pass():
        ctx = SimulationContext(device, check_memory=False)
        return evaluate_models(ctx, models, check_memory=False)

    # One untimed pass per side first: the process-global warmup (lazy
    # imports, memoized trace replays for traced kernels) lands on neither
    # timed side, and the pair doubles as the bit-identity check.  Then
    # interleave the timed passes (scalar, batched, scalar, ...) so a
    # noisy stretch of machine time degrades both sides of a round alike,
    # and report the cleanest round: machine noise only ever slows a
    # pass, so the best paired ratio is the estimate closest to the true
    # speedup.  Every pass builds its own context — the scalar structural
    # cache never warms across repeats.
    scalar = scalar_pass()
    batched = batched_pass()
    scalar_s = batched_s = float("inf")
    rounds = []
    for _ in range(MICRO_REPEATS):
        t0 = time.perf_counter()
        scalar_pass()
        round_scalar_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        batched_pass()
        round_batched_s = time.perf_counter() - t0
        rounds.append(round_scalar_s / round_batched_s)
        scalar_s = min(scalar_s, round_scalar_s)
        batched_s = min(batched_s, round_batched_s)
    speedup = max(rounds)

    for i, (ref, out) in enumerate(zip(scalar, batched)):
        if isinstance(out, Exception):
            raise AssertionError(f"candidate {i} failed in the batch: {out!r}")
        if out != ref:
            raise AssertionError(
                f"candidate {i} ({models[i].name}) differs:\n"
                f"  scalar  {ref}\n  batched {out}"
            )

    n = len(models)
    return {
        "candidates": n,
        "scalar_s": scalar_s,
        "batched_s": batched_s,
        "scalar_cand_per_s": n / scalar_s if scalar_s else float("inf"),
        "batched_cand_per_s": n / batched_s if batched_s else float("inf"),
        "round_speedups": rounds,
        "speedup": speedup,
    }


def _figure_renders(
    device,
    jobs,
    contexts: tuple[SimulationContext, SimulationContext] | None = None,
) -> list[str]:
    """Render the Fig. 4 + Fig. 6 tables; fresh contexts unless given."""
    ctx4, ctx6 = contexts or (
        SimulationContext(device, check_memory=False),
        SimulationContext(device, check_memory=False),
    )
    tables = []
    for table in fig04.build_figure(device, jobs=jobs, context=ctx4):
        tables.append(table.render())
    tables.append(fig06.build_figure(device, jobs=jobs, context=ctx6).render())
    return tables


def run_end_to_end(device, jobs) -> dict:
    jobs_n = resolve_jobs(jobs)

    def scalar_pass():
        prev = set_batched_eval(False)
        try:
            return _figure_renders(device, jobs=1)
        finally:
            set_batched_eval(prev)

    def serial_pass():
        return _figure_renders(device, jobs=1)

    # One untimed pass per mode first: process-global warmup (lazy imports,
    # the worker pool spawn for the --jobs mode) lands on no timed side,
    # and the set doubles as the byte-identity check across all modes.
    ref_tables = scalar_pass()
    serial_tables = serial_pass()
    pool_tables = _figure_renders(device, jobs=jobs)
    if ref_tables != serial_tables or ref_tables != pool_tables:
        raise AssertionError("batched figures differ from the scalar reference")

    # Interleave scalar/memoized-serial timed rounds and report the
    # cleanest one: noise only ever slows a pass, so the best paired
    # ratio is the estimate closest to the true speedup.  Every pass
    # builds fresh contexts — neither side warms across repeats.
    scalar_s = serial_s = float("inf")
    rounds = []
    for _ in range(E2E_REPEATS):
        t0 = time.perf_counter()
        scalar_pass()
        round_scalar_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        serial_pass()
        round_serial_s = time.perf_counter() - t0
        rounds.append(round_scalar_s / round_serial_s)
        scalar_s = min(scalar_s, round_scalar_s)
        serial_s = min(serial_s, round_serial_s)
    serial_speedup = max(rounds)

    # Warm-pool pass (the pool itself was spawned by the untimed pass).
    t0 = time.perf_counter()
    _figure_renders(device, jobs=jobs)
    pool_s = time.perf_counter() - t0

    # Warm shared-context rebuild: the steady state of a long session
    # re-sweeping shapes it has already priced — every cell a memo hit.
    contexts = (
        SimulationContext(device, check_memory=False),
        SimulationContext(device, check_memory=False),
    )
    warm_tables = _figure_renders(device, jobs=1, contexts=contexts)
    t0 = time.perf_counter()
    warm_again = _figure_renders(device, jobs=1, contexts=contexts)
    warm_s = time.perf_counter() - t0
    if warm_tables != ref_tables or warm_again != ref_tables:
        raise AssertionError("warm-context figures differ from the scalar reference")

    return {
        "figures": ["fig04_sensitivity", "fig06_pooling_layouts"],
        "jobs_requested": jobs,
        "jobs": jobs_n,
        "scalar_s": scalar_s,
        "batched_serial_s": serial_s,
        "batched_s": pool_s,
        "warm_s": warm_s,
        "round_serial_speedups": rounds,
        "serial_speedup": serial_speedup,
        "speedup": scalar_s / pool_s if pool_s else float("inf"),
        "warm_speedup": scalar_s / warm_s if warm_s else float("inf"),
        "identical": True,
    }


def main(argv=None) -> int:
    parser = bench_arg_parser(__doc__)
    parser.add_argument(
        "--output",
        default="BENCH_planner.json",
        help="where to write the results JSON",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=f"exit nonzero if the batched micro speedup is below "
        f"{SPEEDUP_GATE}x or the end-to-end memoized-serial build is "
        f"slower than the scalar path (below {E2E_GATE}x)",
    )
    parser.add_argument(
        "--skip-end-to-end",
        action="store_true",
        help="only run the candidate-grid micro-benchmark",
    )
    args = parser.parse_args(argv)

    results = {
        "cpu_count": os.cpu_count(),
        "speedup_gate": SPEEDUP_GATE,
        "micro": run_micro(TITAN_BLACK),
    }
    m = results["micro"]
    print(
        f"micro ({m['candidates']} candidates): "
        f"scalar {m['scalar_cand_per_s']:.0f}/s, "
        f"batched {m['batched_cand_per_s']:.0f}/s -> {m['speedup']:.1f}x, "
        f"stats identical"
    )

    if not args.skip_end_to_end:
        try:
            results["end_to_end"] = run_end_to_end(TITAN_BLACK, args.jobs)
        finally:
            shutdown_pool()
        e = results["end_to_end"]
        print(
            f"end-to-end ({', '.join(e['figures'])}): "
            f"scalar {e['scalar_s']:.3f}s, memoized serial "
            f"{e['batched_serial_s']:.3f}s ({e['serial_speedup']:.1f}x), "
            f"warm pool --jobs {e['jobs']} {e['batched_s']:.3f}s, "
            f"warm context {e['warm_s']:.3f}s ({e['warm_speedup']:.1f}x), "
            f"tables identical"
        )

    with open(args.output, "w") as fh:
        json.dump(results, fh, indent=1, sort_keys=True)
    print(f"wrote {args.output}")

    failed = False
    if args.check and results["micro"]["speedup"] < SPEEDUP_GATE:
        print(
            f"CHECK FAILED: batched evaluator only "
            f"{results['micro']['speedup']:.1f}x the scalar path "
            f"(gate: {SPEEDUP_GATE}x)"
        )
        failed = True
    if (
        args.check
        and "end_to_end" in results
        and results["end_to_end"]["serial_speedup"] < E2E_GATE
    ):
        print(
            f"CHECK FAILED: end-to-end memoized-serial build only "
            f"{results['end_to_end']['serial_speedup']:.2f}x the scalar "
            f"path (gate: {E2E_GATE}x)"
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
