"""Ablation — the layout-transformation kernel, one optimization at a time.

Decomposes Fig. 11's ladder into its three ingredients:
1. tiling through shared memory (coalesces the strided side),
2. padding the tile (``sh[C][33]``) to kill bank conflicts,
3. float2 vectorization (8-byte shared-memory mode).
"""

from __future__ import annotations

from figutil import FigureTable

from repro.gpusim import SimulationEngine
from repro.tensors import (
    CHWN,
    NCHW,
    NaiveTransformKernel,
    TensorDesc,
    TiledTransformKernel,
    VectorTransformKernel,
)

SIZES = {
    "small (2 MiB)": TensorDesc(64, 16, 14, 14, CHWN),
    "medium (18 MiB)": TensorDesc(128, 64, 24, 24, CHWN),
    "large (71 MiB)": TensorDesc(64, 96, 55, 55, CHWN),
    "huge (296 MiB)": TensorDesc(128, 96, 55, 55, CHWN),
}


def build_figure(device) -> FigureTable:
    engine = SimulationEngine(device, check_memory=False)
    table = FigureTable(
        "Ablation: transform variants, effective GB/s (read+write / time)",
        ["tensor", "naive", "tiled_unpadded", "tiled_padded", "vectorized"],
    )
    for label, desc in SIZES.items():
        kernels = [
            NaiveTransformKernel(desc, NCHW),
            TiledTransformKernel(desc, NCHW, padded=False),
            TiledTransformKernel(desc, NCHW, padded=True),
            VectorTransformKernel(desc, NCHW),
        ]
        bws = [
            2 * desc.nbytes / (engine.run(k).time_ms * 1e6) for k in kernels
        ]
        table.add(label, *bws)
    table.note("each column adds one optimization from the paper's Fig. 7b")
    return table


def test_ablation_transform(benchmark, device):
    table = benchmark(build_figure, device)
    for row in table.rows:
        _, naive, unpadded, padded, vectorized = row
        # The full recipe works and vectorization adds on top.
        assert naive < padded < vectorized
        # Padding is not a nicety: a fully-conflicted tile (32-way
        # serialization on every column read) is even slower than the naive
        # kernel — forgetting ``sh[C][33]`` forfeits the whole optimization.
        assert unpadded < padded / 5
        assert unpadded < naive


if __name__ == "__main__":
    from repro.gpusim import TITAN_BLACK

    build_figure(TITAN_BLACK).show()
