"""Extension — the layout story across three GPU generations.

The paper argues its observations are architectural, not incidental: the
thresholds move between Kepler and Maxwell but the structure survives, and
Section VII predicts the same for Pascal.  This harness runs the Fig. 3
duel and the whole-network comparison on all three device models.
"""

from __future__ import annotations

from figutil import FigureTable

from repro.baselines import compare_schemes
from repro.core import calibrate
from repro.extensions import TESLA_P100
from repro.framework import Net
from repro.gpusim import TITAN_BLACK, TITAN_X, SimulationEngine
from repro.layers import DirectConvCHWN, Im2colGemmNCHW
from repro.networks import CONV_LAYERS, build_network

DEVICES = (TITAN_BLACK, TITAN_X, TESLA_P100)


def build_figure(devices=DEVICES) -> FigureTable:
    table = FigureTable(
        "Cross-device: calibrated thresholds, CHWN conv winners, Opt speedups",
        ["device", "ct", "nt", "chwn_wins", "lenet_opt", "vgg_opt"],
    )
    for device in devices:
        thresholds = calibrate(device).thresholds
        engine = SimulationEngine(device, check_memory=False)
        chwn_wins = sum(
            1
            for spec in CONV_LAYERS.values()
            if engine.run(DirectConvCHWN(spec)).time_ms
            < engine.run(Im2colGemmNCHW(spec)).time_ms
        )
        speedups = []
        for name in ("lenet", "vgg"):
            net = Net(build_network(name))
            results = compare_schemes(net, device, ("cudnn-mm", "opt"))
            speedups.append(results["opt"].speedup_over(results["cudnn-mm"]))
        table.add(
            device.name, thresholds.ct, thresholds.nt, chwn_wins, *speedups
        )
    table.note("newer parts shift thresholds toward CHWN but Opt always wins")
    return table


def test_devices(benchmark):
    table = benchmark(build_figure)
    rows = {r[0]: r for r in table.rows}
    # Thresholds move with architecture (the paper's Titan X observation).
    assert rows["GTX Titan Black"][2] == 128  # Nt
    assert rows["GTX Titan X"][2] == 64
    # Newer devices (earlier reuse saturation) favor CHWN on more layers.
    assert rows["GTX Titan X"][3] >= rows["GTX Titan Black"][3]
    # Opt never loses, anywhere.
    for r in table.rows:
        assert r[4] >= 1.0 and r[5] >= 1.0, r[0]


if __name__ == "__main__":
    build_figure().show()
