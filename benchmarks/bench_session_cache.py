"""Session-cache demonstration — the acceptance run for shared contexts.

Plans AlexNet twice against one :class:`SimulationContext`.  The second
(warm) pass must show a non-zero cache hit rate and strictly fewer kernel
timings than the first, while producing the identical plan at the identical
cost — the cache accelerates the planner, it never changes its answer.
"""

from __future__ import annotations

from figutil import FigureTable

from repro import Net, build_network, plan_optimal
from repro.gpusim import SimulationContext


def build_figure(device) -> FigureTable:
    table = FigureTable(
        "Session cache: AlexNet planned twice in one context",
        ["pass", "plan_ms", "queries", "hits", "timed", "hit_rate"],
    )
    ctx = SimulationContext(device, check_memory=False)
    for label in ("cold", "warm"):
        before_hits = ctx.stats.hits
        before_timed = ctx.stats.kernels_timed
        before_queries = ctx.stats.queries
        plan = plan_optimal(
            device, Net(build_network("alexnet")).planner_nodes(device, context=ctx),
            context=ctx,
        )
        table.add(
            label,
            plan.total_ms,
            ctx.stats.queries - before_queries,
            ctx.stats.hits - before_hits,
            ctx.stats.kernels_timed - before_timed,
            (ctx.stats.hits - before_hits)
            / max(ctx.stats.queries - before_queries, 1),
        )
    table.note("warm pass re-plans from cache: zero new kernel timings")
    return table


def test_session_cache(benchmark, device):
    table = benchmark(build_figure, device)
    cold, warm = table.row("cold"), table.row("warm")
    # Identical plans, identical costs — caching never changes the answer.
    assert warm[1] == cold[1]
    # The warm pass is served from the cache: hit rate > 0 and strictly
    # fewer kernels timed than the cold pass.
    assert warm[5] > 0.0
    assert warm[4] < cold[4]
    assert warm[4] == 0
    assert cold[4] > 0


if __name__ == "__main__":
    from repro.gpusim import TITAN_BLACK

    build_figure(TITAN_BLACK).show()
