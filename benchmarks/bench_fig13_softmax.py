"""Fig. 13 — softmax bandwidth: BL_Best vs the fused-parallel Opt kernel.

Paper: BL_Best (cuDNN) peaks at 58.3 GB/s; Opt reaches 220.95 GB/s
(94.02% of effective bandwidth) at 10000 categories.  Fusion alone
contributes up to 3.53x (avg 2.81x GM); inner-loop parallelization adds
an average 5.13x more.
"""

from __future__ import annotations

from figutil import FigureTable, geomean

from repro.core import fusion_report
from repro.gpusim import SimulationEngine
from repro.layers import make_softmax_kernel
from repro.networks import FIG13_SOFTMAX


def build_figure(device) -> FigureTable:
    engine = SimulationEngine(device, check_memory=False)
    table = FigureTable(
        "Fig. 13: softmax effective bandwidth (GB/s) per batch/categories",
        ["config", "bl_best", "opt", "fusion_x", "parallel_x"],
    )
    for name, spec in FIG13_SOFTMAX.items():
        baselines = [
            engine.run(make_softmax_kernel(spec, impl)).time_ms
            for impl in ("5kernel", "cudnn")
        ]
        bl_best = min(baselines)
        opt = engine.run(make_softmax_kernel(spec, "opt")).time_ms
        rep = fusion_report(spec, device)
        bw = lambda ms: 2 * spec.nbytes / (ms * 1e6)  # noqa: E731
        table.add(name, bw(bl_best), bw(opt), rep.fusion_speedup, rep.parallel_speedup)
    table.note("paper: BL_Best peaks at 58.3 GB/s; Opt at 220.95 GB/s (94%)")
    return table


def test_fig13(benchmark, device):
    table = benchmark(build_figure, device)
    bl = table.column("bl_best")
    opt = table.column("opt")
    # Baseline ceiling (paper 58.3 GB/s) and Opt ceiling (paper 94% of peak).
    assert max(bl) < 90
    assert max(opt) > 0.75 * device.mem_bandwidth_gbs
    # Opt wins every configuration.
    assert all(o >= b for o, b in zip(opt, bl))
    # Ablation: fusion GM in the paper's zone; parallelization helps on top.
    assert 1.5 < geomean(table.column("fusion_x")) < 8
    assert max(table.column("parallel_x")) > 3


if __name__ == "__main__":
    from repro.gpusim import TITAN_BLACK

    build_figure(TITAN_BLACK).show()
