"""Tracing overhead: the observability layer must cost (almost) nothing.

Builds the Fig. 6 pooling-layout figure twice — tracing off, then with a
full span tracer installed — on fresh simulation contexts, checks the
rendered tables are byte-identical (tracing is strictly observational),
and reports the wall-clock overhead of the traced run.

Emits ``BENCH_obs.json``; with ``--check`` the exit status is nonzero if
the traced run is more than ``--max-overhead`` (default 5%) slower than
the untraced baseline over the best of ``--repeat`` rounds.
"""

from __future__ import annotations

import json
import os
import sys
import time

from figutil import bench_arg_parser

import bench_fig06_pooling_layouts as fig06

from repro.gpusim import TITAN_BLACK, SimulationContext
from repro.obs import Tracer, install_tracer, uninstall_tracer


def _build(device, jobs: int) -> tuple[float, str]:
    ctx = SimulationContext(device, check_memory=False)
    t0 = time.perf_counter()
    table = fig06.build_figure(device, jobs=jobs, context=ctx)
    return time.perf_counter() - t0, table.render()


def run_overhead(device, jobs: int, repeat: int) -> dict:
    """Best-of-``repeat`` wall times for the fig06 sweep, untraced vs
    traced.  Best-of (not mean) because the baseline and traced runs do
    identical simulation work — the minimum is the least-noise estimate."""
    untraced: list[float] = []
    traced: list[float] = []
    reference = None
    span_count = 0
    for _ in range(repeat):
        seconds, rendered = _build(device, jobs)
        untraced.append(seconds)
        if reference is None:
            reference = rendered
        elif rendered != reference:
            raise AssertionError("untraced runs disagree with each other")
        tracer = install_tracer(Tracer("bench-obs"))
        try:
            seconds, rendered = _build(device, jobs)
        finally:
            uninstall_tracer()
        traced.append(seconds)
        span_count = len(tracer.spans())
        if rendered != reference:
            raise AssertionError("traced Fig. 6 differs from untraced")

    best_untraced = min(untraced)
    best_traced = min(traced)
    return {
        "figure": "fig06_pooling_layouts",
        "jobs": jobs,
        "repeat": repeat,
        "untraced_s": best_untraced,
        "traced_s": best_traced,
        "spans_recorded": span_count,
        "overhead": best_traced / best_untraced - 1.0,
        "identical": True,
    }


def main(argv=None) -> int:
    parser = bench_arg_parser(__doc__)
    parser.add_argument(
        "--repeat",
        type=int,
        default=3,
        help="measurement rounds; the best (fastest) of each mode is kept",
    )
    parser.add_argument(
        "--max-overhead",
        type=float,
        default=0.05,
        help="--check fails when traced/untraced - 1 exceeds this fraction",
    )
    parser.add_argument(
        "--output",
        default="BENCH_obs.json",
        help="where to write the results JSON",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero if tracing overhead exceeds --max-overhead",
    )
    args = parser.parse_args(argv)

    results = {
        "cpu_count": os.cpu_count(),
        "max_overhead": args.max_overhead,
        "overhead": run_overhead(TITAN_BLACK, max(args.jobs, 1), args.repeat),
    }
    o = results["overhead"]
    print(
        f"fig06 sweep (--jobs {o['jobs']}, best of {o['repeat']}): "
        f"untraced {o['untraced_s']:.3f}s, traced {o['traced_s']:.3f}s "
        f"-> {o['overhead']:+.1%} overhead, {o['spans_recorded']} spans, "
        f"tables identical"
    )

    with open(args.output, "w") as fh:
        json.dump(results, fh, indent=1, sort_keys=True)
    print(f"wrote {args.output}")

    if args.check and o["overhead"] > args.max_overhead:
        print(
            f"CHECK FAILED: tracing overhead {o['overhead']:.1%} exceeds "
            f"{args.max_overhead:.0%}"
        )
        return 1
    return 0


def test_obs_overhead(device):
    """Tier-agnostic smoke: traced == untraced tables, overhead bounded.

    The bound here is loose (50%) because CI machines are noisy; the
    ``--check`` entry point applies the honest 5% gate on quiet hardware.
    """
    result = run_overhead(device, jobs=1, repeat=2)
    assert result["identical"]
    assert result["spans_recorded"] > 0
    assert result["overhead"] < 0.5


if __name__ == "__main__":
    sys.exit(main())
