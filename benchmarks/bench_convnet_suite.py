"""Extension — a convnet-benchmarks style suite (paper reference [31]).

Soumith Chintala's convnet-benchmarks, which the paper cites for framework
comparisons, reports per-network forward and forward+backward times.  This
harness produces the same table for every scheme, which is also a handy
single entry point for regression-tracking the whole model.
"""

from __future__ import annotations

from figutil import FigureTable

from repro.baselines import time_network
from repro.framework import Net
from repro.networks import NETWORK_BUILDERS, build_network

SCHEMES = ("cudnn-best", "cuda-convnet", "opt")


def build_figure(device) -> FigureTable:
    table = FigureTable(
        "convnet-benchmarks style: per-network fwd / fwd+bwd times (ms)",
        ["network", "scheme", "forward_ms", "fwdbwd_ms", "bwd_ratio"],
    )
    for name in NETWORK_BUILDERS:
        net = Net(build_network(name))
        for scheme in SCHEMES:
            fwd = time_network(net, device, scheme).total_ms
            trn = time_network(net, device, scheme, training=True).total_ms
            table.add(name, scheme, fwd, trn, trn / fwd)
    return table


def test_convnet_suite(benchmark, device):
    table = benchmark(build_figure, device)
    # Backward adds 1.5x-3.5x on top of forward for every (net, scheme).
    for row in table.rows:
        assert 2.0 < row[4] < 4.5, row
    # Forward times are ordered by network size within each scheme.
    for scheme in SCHEMES:
        times = {
            r[0]: r[2] for r in table.rows if r[1] == scheme
        }
        assert times["lenet"] < times["alexnet"] < times["vgg"]


if __name__ == "__main__":
    from repro.gpusim import TITAN_BLACK

    build_figure(TITAN_BLACK).show()
