"""Fig. 6 — pooling-layer layouts: cuda-convnet vs Caffe vs cuDNN.

Paper: CHWN wins across the board (speedup up to 16.3x); the numbers on
top of the figure are the best achieved bandwidth per layer (132–205 GB/s
for cuda-convnet; Caffe averages 52.3 GB/s and cuDNN 41.9 GB/s).
"""

from __future__ import annotations

from figutil import FigureTable, bench_arg_parser, geomean

from repro.gpusim import SimulationContext, default_context
from repro.gpusim.batch import batched_eval_enabled
from repro.gpusim.exec import evaluate_cells, map_chunks
from repro.gpusim.parallel import parallel_map
from repro.layers import make_pool_kernel
from repro.networks import POOL_LAYERS

_IMPLS = ("chwn", "nchw-linear", "nchw-rowblock")


def effective_bw(spec, time_ms: float) -> float:
    useful = spec.in_desc().nbytes + spec.out_desc().nbytes
    return useful / (time_ms * 1e6)


def _time_cell(context: SimulationContext, task) -> float:
    """Scalar reference: one pooling layout evaluated on its own."""
    name, spec, impl = task
    return context.run(make_pool_kernel(spec, impl), check_memory=False).time_ms


def _time_chunk(context: SimulationContext, tasks) -> list[float]:
    """Batched ``_time_cell``: every layout in the chunk priced in one
    memoized vectorized evaluation."""
    models = [make_pool_kernel(spec, impl) for _, spec, impl in tasks]
    times = []
    for out in evaluate_cells(context, models, check_memory=False):
        if isinstance(out, Exception):
            raise out
        times.append(out.time_ms)
    return times


def _cell_times(ctx: SimulationContext, tasks, jobs: int | str) -> list[float]:
    if batched_eval_enabled():
        return map_chunks(_time_chunk, tasks, ctx, jobs=jobs)
    return parallel_map(_time_cell, tasks, ctx, jobs=jobs)


def build_figure(device, jobs: int | str = 1, context: SimulationContext | None = None) -> FigureTable:
    ctx = context or default_context(device)
    table = FigureTable(
        "Fig. 6: pooling layouts — normalized speed (convnet = 1.0) and "
        "achieved GB/s",
        ["layer", "convnet_bw", "caffe_rel", "cudnn_rel", "caffe_bw", "cudnn_bw"],
    )
    tasks = [
        (name, spec, impl)
        for name, spec in POOL_LAYERS.items()
        for impl in _IMPLS
    ]
    times = _cell_times(ctx, tasks, jobs)
    grid = dict(zip([(t[0], t[2]) for t in tasks], times))
    for name, spec in POOL_LAYERS.items():
        t_conv = grid[(name, "chwn")]
        t_caffe = grid[(name, "nchw-linear")]
        t_cudnn = grid[(name, "nchw-rowblock")]
        table.add(
            name,
            effective_bw(spec, t_conv),
            t_conv / t_caffe,
            t_conv / t_cudnn,
            effective_bw(spec, t_caffe),
            effective_bw(spec, t_cudnn),
        )
    table.note("paper: convnet 132-205 GB/s; Caffe avg 52.3; cuDNN avg 41.9")
    return table


def test_fig06(benchmark, device):
    table = benchmark(build_figure, device)
    # CHWN wins everywhere.
    assert all(rel < 1.0 for rel in table.column("caffe_rel"))
    assert all(rel < 1.0 for rel in table.column("cudnn_rel"))
    # Worst-case NCHW slowdown is large (paper: up to 16.3x; model: ~6.5x).
    assert min(table.column("cudnn_rel")) < 1 / 4
    # Bandwidth zones.
    conv_bws = table.column("convnet_bw")
    assert all(100 < bw < 235 for bw in conv_bws)
    assert 30 < geomean(table.column("cudnn_bw")) < 90


if __name__ == "__main__":
    from repro.gpusim import TITAN_BLACK

    args = bench_arg_parser(__doc__).parse_args()
    build_figure(TITAN_BLACK, jobs=args.jobs).show()
