"""Execution models of the baseline libraries (cuda-convnet, Caffe, cuDNN)
and the paper's optimized framework, as whole-network schemes."""

from .schemes import (
    LayerTiming,
    NetworkTiming,
    SCHEMES,
    compare_schemes,
    time_network,
)

__all__ = [
    "LayerTiming",
    "NetworkTiming",
    "SCHEMES",
    "compare_schemes",
    "time_network",
]
