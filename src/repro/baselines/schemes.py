"""Whole-network execution schemes: the library baselines and our ``Opt``.

These are the six mechanisms of the paper's Fig. 14:

* ``cudnn-mm`` / ``cudnn-fft`` / ``cudnn-fft-t`` — Caffe+cuDNN with the
  given convolution mode (FFT modes fall back to MM on failure), NCHW
  everywhere, cuDNN pooling and softmax;
* ``cudnn-best`` — cherry-picks the fastest cuDNN mode per conv layer;
* ``cuda-convnet`` — CHWN everywhere, direct convolution, five-kernel
  softmax;
* ``caffe`` — pure Caffe (no cuDNN): im2col+GEMM, NCHW pooling with mask
  stores, five-kernel softmax;
* ``opt`` — the paper's optimized framework: heuristic layout plan with
  fast transforms, auto-tuned CHWN pooling, fused-parallel softmax.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.planner import NodeKind, plan_optimal
from ..core.selector import best_conv_for_layout, cudnn_mode_conv
from ..framework.net import Net
from ..gpusim.device import DeviceSpec
from ..gpusim.engine import SimulationEngine
from ..gpusim.session import SimulationContext, default_context
from ..layers.backward_kernels import (
    TRAINING_TRANSFORM_FACTOR,
    conv_backward_kernels,
    fc_backward_kernels,
    pool_backward_kernel,
    softmax_backward_kernel,
)
from ..layers.base import ConvSpec, FCSpec, PoolSpec, SoftmaxSpec
from ..layers.elementwise import ElementwiseKernel, LRNSpec, make_lrn_kernel
from ..layers.fc import make_fc_kernel
from ..layers.pooling_kernels import make_pool_kernel
from ..layers.softmax_kernels import make_softmax_kernel
from ..tensors.layout import CHWN, NCHW

SCHEMES: tuple[str, ...] = (
    "cudnn-mm",
    "cudnn-fft",
    "cudnn-fft-t",
    "cudnn-best",
    "cuda-convnet",
    "caffe",
    "opt",
)


@dataclass(frozen=True)
class LayerTiming:
    """Per-layer result of one scheme.

    ``backward_ms`` is populated only in training mode (forward-backward
    timing, paper footnote 1); forward-only runs leave it at zero.
    """

    name: str
    kind: str
    layout: str
    implementation: str
    time_ms: float
    transform_ms: float = 0.0
    backward_ms: float = 0.0

    @property
    def total_ms(self) -> float:
        return self.time_ms + self.transform_ms + self.backward_ms


@dataclass(frozen=True)
class NetworkTiming:
    """Whole-network result of one scheme."""

    network: str
    scheme: str
    device: str
    layers: tuple[LayerTiming, ...]
    batch: int = 0

    @property
    def total_ms(self) -> float:
        return sum(l.total_ms for l in self.layers)

    @property
    def images_per_second(self) -> float:
        """Throughput, when the batch size is known (0 otherwise)."""
        if not self.batch or not self.total_ms:
            return 0.0
        return self.batch / (self.total_ms * 1e-3)

    def speedup_over(self, other: "NetworkTiming") -> float:
        return other.total_ms / self.total_ms if self.total_ms else 0.0

    def layer(self, name: str) -> LayerTiming:
        for l in self.layers:
            if l.name == name:
                return l
        raise KeyError(f"no layer {name!r} in {self.network}/{self.scheme}")


def _fixed_layer_time(engine: SimulationEngine, layer) -> tuple[str, float]:
    """Time for layout-transparent layers (identical across schemes)."""
    if layer.kind is NodeKind.CONCAT:
        elements = int(np.prod(layer.out_dims))
        return "concat", engine.run(
            ElementwiseKernel(elements, name="concat")
        ).time_ms
    if isinstance(layer.spec, LRNSpec):
        elements = int(np.prod(layer.in_dims))
        return "lrn", engine.run(make_lrn_kernel(elements, layer.spec)).time_ms
    if isinstance(layer.spec, FCSpec):
        return "fc-gemm", engine.run(make_fc_kernel(layer.spec)).time_ms
    raise TypeError(f"unexpected fixed layer spec {type(layer.spec)!r}")


def _backward_ms(
    engine: SimulationEngine,
    layer,
    implementation: str,
    coarsen: tuple[int, int] | None = None,
) -> float:
    """Backward-pass time for one resolved layer under one implementation."""
    spec = layer.spec
    if isinstance(spec, ConvSpec):
        impl = {"direct": "direct", "im2col": "im2col"}.get(
            implementation, implementation
        )
        return sum(
            engine.run(k).time_ms for k in conv_backward_kernels(spec, impl)
        )
    if isinstance(spec, PoolSpec):
        kernel = pool_backward_kernel(spec, implementation, coarsen or (2, 2))
        return engine.run(kernel).time_ms
    if isinstance(spec, SoftmaxSpec):
        impl = implementation.removeprefix("softmax-")
        return engine.run(softmax_backward_kernel(spec, impl)).time_ms
    if isinstance(spec, FCSpec):
        return sum(engine.run(k).time_ms for k in fc_backward_kernels(spec))
    if isinstance(spec, LRNSpec):
        import numpy as np

        elements = int(np.prod(layer.in_dims))
        return engine.run(make_lrn_kernel(elements, spec)).time_ms
    raise TypeError(f"no backward model for spec {type(spec)!r}")


def _library_scheme(
    net: Net,
    device: DeviceSpec,
    scheme: str,
    training: bool = False,
    context: SimulationContext | None = None,
) -> NetworkTiming:
    engine = (context or default_context(device)).engine(check_memory=False)
    if scheme == "cuda-convnet":
        layout, pool_impl, softmax_impl = CHWN, "chwn", "5kernel"
    elif scheme == "caffe":
        layout, pool_impl, softmax_impl = NCHW, "nchw-linear", "5kernel"
    else:  # cudnn-*
        layout, pool_impl, softmax_impl = NCHW, "nchw-rowblock", "cudnn"
    mode = scheme.removeprefix("cudnn-") if scheme.startswith("cudnn-") else None
    if mode == "fft-t":
        mode = "fft-tiled"

    rows: list[LayerTiming] = []
    for layer in net.layers:
        if layer.kind is NodeKind.CONV:
            assert isinstance(layer.spec, ConvSpec)
            if mode is not None:
                choice = cudnn_mode_conv(engine, layer.spec, mode)
            elif layout == CHWN:
                choice = best_conv_for_layout(engine, layer.spec, CHWN)
            else:
                choice = best_conv_for_layout(engine, layer.spec, NCHW, allow_fft=False)
            bwd = (
                _backward_ms(engine, layer, choice.implementation)
                if training
                else 0.0
            )
            rows.append(
                LayerTiming(
                    layer.name, "conv", str(layout), choice.implementation,
                    choice.time_ms, backward_ms=bwd,
                )
            )
        elif layer.kind is NodeKind.POOL:
            assert isinstance(layer.spec, PoolSpec)
            stats = engine.run(make_pool_kernel(layer.spec, pool_impl))
            bwd = _backward_ms(engine, layer, pool_impl) if training else 0.0
            rows.append(
                LayerTiming(
                    layer.name, "pool", str(layout), pool_impl, stats.time_ms,
                    backward_ms=bwd,
                )
            )
        elif layer.kind is NodeKind.CLASSIFIER and isinstance(layer.spec, SoftmaxSpec):
            stats = engine.run(make_softmax_kernel(layer.spec, softmax_impl))
            bwd = (
                _backward_ms(engine, layer, f"softmax-{softmax_impl}")
                if training
                else 0.0
            )
            rows.append(
                LayerTiming(
                    layer.name, "softmax", "-", f"softmax-{softmax_impl}",
                    stats.time_ms, backward_ms=bwd,
                )
            )
        else:
            impl, ms = _fixed_layer_time(engine, layer)
            if training:
                # concat has no parameters; its backward is the same split
                # traffic as its forward join
                bwd = _backward_ms(engine, layer, impl) if layer.spec is not None else ms
            else:
                bwd = 0.0
            rows.append(
                LayerTiming(
                    layer.name, layer.kind.value, "-", impl, ms, backward_ms=bwd
                )
            )
    return NetworkTiming(
        net.name, scheme, device.name, tuple(rows), batch=net.definition.batch
    )


def _opt_scheme(
    net: Net,
    device: DeviceSpec,
    training: bool = False,
    context: SimulationContext | None = None,
) -> NetworkTiming:
    # The heuristic sets per-layer preferences; the paper then applies
    # "one-time profiling ... to fine tune the data layout settings
    # automatically" (Section IV.D).  The DP planner is that fine-tuning
    # step taken to its conclusion: it weighs every layout choice against
    # transform costs using the profiled (simulated) layer times.
    ctx = context or default_context(device)
    if net.is_chain:
        plan = plan_optimal(
            device, net.planner_nodes(device, context=ctx), context=ctx
        )
    else:
        # branching networks have no planner-node chain; plan on the IR
        from ..core.pipeline import PipelineOptions, plan_network

        plan = plan_network(
            device, net.definition, PipelineOptions(strategy="optimal"), context=ctx
        ).plan
    engine = ctx.engine(check_memory=False)
    by_name = {layer.name: layer for layer in net.layers}
    rows = []
    for step in plan.steps:
        bwd = 0.0
        transform = step.transform_ms
        if training:
            layer = by_name[step.name]
            if layer.spec is not None:
                bwd = _backward_ms(
                    engine, layer, step.implementation, step.coarsening
                )
            else:  # elementwise layers reuse their forward cost backward
                bwd = step.layer_ms
            # gradients cross every layout boundary in reverse
            transform *= TRAINING_TRANSFORM_FACTOR
        rows.append(
            LayerTiming(
                name=step.name,
                kind=step.kind.value,
                layout=str(step.layout) if step.layout else "-",
                implementation=step.implementation,
                time_ms=step.layer_ms,
                transform_ms=transform,
                backward_ms=bwd,
            )
        )
    return NetworkTiming(
        net.name, "opt", device.name, tuple(rows), batch=net.definition.batch
    )


def time_network(
    net: Net,
    device: DeviceSpec,
    scheme: str,
    training: bool = False,
    context: SimulationContext | None = None,
) -> NetworkTiming:
    """Simulate one network under one scheme.

    ``training=True`` times a complete forward-backward pass (the paper's
    profiling configuration in Section IV.D).
    """
    if scheme not in SCHEMES:
        raise ValueError(f"unknown scheme {scheme!r}; choose from {SCHEMES}")
    if scheme == "opt":
        return _opt_scheme(net, device, training, context)
    return _library_scheme(net, device, scheme, training, context)


def compare_schemes(
    net: Net,
    device: DeviceSpec,
    schemes: tuple[str, ...] = SCHEMES,
    training: bool = False,
    context: SimulationContext | None = None,
) -> dict[str, NetworkTiming]:
    """Run several schemes on one network (the Fig. 14 harness).

    Schemes share many layer kernels (every cuDNN mode runs the same
    pooling, all NCHW convs appear in several schemes), so one shared
    ``context`` makes the whole comparison dramatically cheaper.
    """
    ctx = context or default_context(device)
    return {
        scheme: time_network(net, device, scheme, training, context=ctx)
        for scheme in schemes
    }
