"""Synthetic stand-ins for the paper's datasets (MNIST / CIFAR / ImageNet).

The reproduction has no network access and no dataset files; memory
behaviour depends only on tensor shapes, and training correctness only
needs *learnable* data.  These generators produce class-separable images
with the right shapes:

* :func:`synthetic_digits` — MNIST-shaped (1 x 28 x 28) grey images whose
  class determines an oriented bar pattern (ten distinguishable classes);
* :func:`synthetic_objects` — CIFAR-shaped (3 x H x W) color images whose
  class determines a color/frequency signature;
* :func:`batches` — a seeded mini-batch iterator.

The structure is deliberately simple enough for a small CNN to fit in a few
dozen SGD steps, which is what the training tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

_F = np.float32


@dataclass(frozen=True)
class Dataset:
    """Images (logical N, C, H, W) with integer labels."""

    images: np.ndarray
    labels: np.ndarray

    def __post_init__(self) -> None:
        if self.images.ndim != 4:
            raise ValueError("images must be (N, C, H, W)")
        if self.labels.shape != (self.images.shape[0],):
            raise ValueError("labels must be one per image")

    @property
    def n_classes(self) -> int:
        return int(self.labels.max()) + 1

    def subset(self, n: int) -> "Dataset":
        return Dataset(self.images[:n], self.labels[:n])


def _bar_pattern(h: int, w: int, klass: int, n_classes: int) -> np.ndarray:
    """An oriented sinusoidal grating whose angle encodes the class."""
    angle = np.pi * klass / n_classes
    yy, xx = np.mgrid[0:h, 0:w].astype(np.float64)
    coord = np.cos(angle) * xx + np.sin(angle) * yy
    period = 3.0 + (klass % 3)
    return np.sin(2 * np.pi * coord / period)


def synthetic_digits(
    n_samples: int = 256,
    image: int = 28,
    n_classes: int = 10,
    noise: float = 0.3,
    seed: int = 0,
) -> Dataset:
    """MNIST-shaped grey images: class = grating orientation/frequency."""
    if n_samples <= 0 or image <= 0 or n_classes <= 0:
        raise ValueError("sizes must be positive")
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, n_classes, size=n_samples)
    images = np.empty((n_samples, 1, image, image), dtype=_F)
    for i, k in enumerate(labels):
        base = _bar_pattern(image, image, int(k), n_classes)
        images[i, 0] = base + noise * rng.standard_normal((image, image))
    return Dataset(images.astype(_F), labels.astype(np.int64))


def synthetic_objects(
    n_samples: int = 256,
    image: int = 24,
    n_classes: int = 10,
    noise: float = 0.3,
    seed: int = 0,
) -> Dataset:
    """CIFAR-shaped color images: class = (hue, orientation) signature."""
    if n_samples <= 0 or image <= 0 or n_classes <= 0:
        raise ValueError("sizes must be positive")
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, n_classes, size=n_samples)
    images = np.empty((n_samples, 3, image, image), dtype=_F)
    for i, k in enumerate(labels):
        base = _bar_pattern(image, image, int(k), n_classes)
        hue = 2 * np.pi * int(k) / n_classes
        weights = np.array(
            [np.cos(hue), np.cos(hue - 2 * np.pi / 3), np.cos(hue + 2 * np.pi / 3)]
        )
        for c in range(3):
            images[i, c] = weights[c] * base + noise * rng.standard_normal(
                (image, image)
            )
    return Dataset(images.astype(_F), labels.astype(np.int64))


def batches(dataset: Dataset, batch_size: int, seed: int = 0, epochs: int = 1):
    """Yield shuffled (images, labels) mini-batches.

    Drops the final ragged batch, like the fixed-batch GPU pipelines the
    paper benchmarks (batch size is baked into the kernel configuration).
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    n = dataset.images.shape[0]
    if batch_size > n:
        raise ValueError("batch larger than dataset")
    rng = np.random.default_rng(seed)
    for _ in range(epochs):
        order = rng.permutation(n)
        for start in range(0, n - batch_size + 1, batch_size):
            idx = order[start : start + batch_size]
            yield dataset.images[idx], dataset.labels[idx]
