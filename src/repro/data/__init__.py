"""Synthetic dataset substitutes for MNIST / CIFAR (see DESIGN.md)."""

from .synthetic import Dataset, batches, synthetic_digits, synthetic_objects

__all__ = ["Dataset", "batches", "synthetic_digits", "synthetic_objects"]
