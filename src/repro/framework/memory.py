"""Device-memory footprint accounting for whole networks.

Reproduces the paper's Section VI.A bookkeeping: "in AlexNet, the
additional memory space overhead is only 73.5 MB, which is less than 3%
compared to the memory footprint of around 3 GB.  Furthermore, the
additional memory ... is freed right after the layout transformation is
completed."

The footprint model matches a Caffe-style allocator: every layer's input
and output activations are live for the whole run (training keeps them for
the backward pass), weights are resident, and the transient peak adds the
largest single workspace (im2col buffer, FFT frequency tensors, or a layout
transform's destination buffer — whichever the plan actually uses).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.planner import LayoutPlan, NodeKind
from ..gpusim.device import DeviceSpec
from ..gpusim.session import SimulationContext
from ..layers.base import ConvSpec, FCSpec, SoftmaxSpec
from ..layers.conv_kernels import ConvUnsupportedError, make_conv_kernel
from ..tensors.tensor import TensorDesc
from .net import Net


class PlanMismatchError(ValueError):
    """The plan's steps do not cover the network's layers one-to-one.

    Footprint accounting pairs each layer with its plan step by name; a
    plan produced for a different network (or a DAG-shaped plan whose
    step order diverges from the layer list) would silently mis-attribute
    workspaces and transforms, so the mismatch is diagnosed up front.
    """


def _check_plan_alignment(net: Net, plan: LayoutPlan) -> None:
    layer_names = [layer.name for layer in net.layers]
    step_names = [s.name for s in plan.steps]
    if step_names == layer_names:
        return
    missing = [n for n in layer_names if n not in set(step_names)]
    extra = [n for n in step_names if n not in set(layer_names)]
    if missing or extra:
        detail = []
        if missing:
            detail.append(f"layers without a plan step: {', '.join(missing)}")
        if extra:
            detail.append(f"plan steps without a layer: {', '.join(extra)}")
        reason = "; ".join(detail)
    else:
        reason = (
            "same names but different order — the plan does not follow the "
            f"layer sequence (plan: {', '.join(step_names)})"
        )
    raise PlanMismatchError(
        f"plan {plan.strategy!r} does not match network "
        f"{net.definition.name!r}: {reason}"
    )


@dataclass(frozen=True)
class MemoryFootprint:
    """Byte-level accounting for one network under one plan."""

    activations_bytes: int
    weights_bytes: int
    workspace_bytes: int  # largest transient buffer (freed after use)
    transform_bytes: int  # largest transform destination buffer

    @property
    def resident_bytes(self) -> int:
        return self.activations_bytes + self.weights_bytes

    @property
    def peak_bytes(self) -> int:
        return self.resident_bytes + max(self.workspace_bytes, self.transform_bytes)

    @property
    def transform_overhead_fraction(self) -> float:
        """The paper's "<3%" metric: transform scratch over the footprint."""
        return self.transform_bytes / self.resident_bytes if self.resident_bytes else 0.0

    def fits(self, device: DeviceSpec) -> bool:
        return self.peak_bytes <= device.dram_bytes


def _weights_bytes(spec: object) -> int:
    if isinstance(spec, ConvSpec):
        return spec.filter_bytes + 4 * spec.co  # filters + bias
    if isinstance(spec, FCSpec):
        return 4 * (spec.in_features * spec.out_features + spec.out_features)
    return 0


def _activation_bytes(layer) -> int:
    if layer.out_dims is not None:
        n, c, h, w = layer.out_dims
        return 4 * n * c * h * w
    if layer.out_features is not None:
        spec = layer.spec
        batch = spec.n if isinstance(spec, (FCSpec, SoftmaxSpec)) else 0
        return 4 * batch * layer.out_features
    return 0


def network_footprint(
    net: Net, plan: LayoutPlan | None = None, training: bool = False
) -> MemoryFootprint:
    """Compute the footprint of running (or training) ``net``.

    Without a plan, the conservative NCHW/im2col path is assumed for the
    workspace.  Training doubles the activation residency (gradients mirror
    every activation) and triples weight residency (gradient + momentum).

    Raises :class:`PlanMismatchError` when the plan's steps do not pair
    one-to-one, in order, with the network's layers — the accounting below
    keys workspaces and transform scratch by that pairing.
    """
    if plan is not None:
        _check_plan_alignment(net, plan)
    input_bytes = 4 * (
        net.definition.batch
        * net.definition.in_channels
        * net.definition.in_h
        * net.definition.in_w
    )
    activations = input_bytes
    weights = 0
    workspace = 0
    steps = {s.name: s for s in plan.steps} if plan is not None else {}

    for layer in net.layers:
        activations += _activation_bytes(layer)
        weights += _weights_bytes(layer.spec)
        if layer.kind is NodeKind.CONV:
            assert isinstance(layer.spec, ConvSpec)
            impl = steps[layer.name].implementation if steps else "im2col"
            try:
                kernel = make_conv_kernel(layer.spec, impl)
                workspace = max(workspace, int(kernel.workspace_bytes()))
            except ConvUnsupportedError:
                # The spec can't run under this implementation (e.g. FFT
                # with stride > 1) — it contributes no workspace.  Any
                # other failure is a real bug and must propagate.
                pass

    transform = 0
    if plan is not None:
        layers = {layer.name: layer for layer in net.layers}
        for step in plan.steps:
            layer = layers[step.name]
            if step.transform_ms > 0 and layer.in_dims is not None:
                # The transform's scratch is the destination buffer, the
                # same size as the tensor being relaid (freed right after).
                desc = TensorDesc(*layer.in_dims)
                transform = max(transform, desc.nbytes)

    if training:
        activations *= 2  # gradients mirror activations
        weights *= 3  # parameter + gradient + momentum buffers

    return MemoryFootprint(
        activations_bytes=int(activations),
        weights_bytes=int(weights),
        workspace_bytes=int(workspace),
        transform_bytes=int(transform),
    )


def plan_within_memory(
    device: DeviceSpec,
    net: Net,
    training: bool = False,
    context: SimulationContext | None = None,
) -> tuple[LayoutPlan, MemoryFootprint]:
    """Plan layouts subject to the card's memory capacity.

    The unconstrained optimum may pick FFT convolutions whose frequency-
    domain workspace, *combined with the resident activations*, exceeds
    device memory (each kernel fits alone — the paper's per-layer OOM check
    passes — but a training run would still die).  When that happens the
    plan is re-derived without FFT implementations.
    """
    from ..core.pipeline import PipelineOptions, plan_network
    from ..core.planner import plan_optimal

    if net.is_chain:
        nodes = net.planner_nodes(device, context=context)
        plan = plan_optimal(device, nodes, context=context)
    else:
        plan = plan_network(
            device, net.definition, PipelineOptions(strategy="optimal"),
            context=context,
        ).plan
    footprint = network_footprint(net, plan, training=training)
    if not footprint.fits(device):
        if net.is_chain:
            plan = plan_optimal(device, nodes, allow_fft=False, context=context)
        else:
            plan = plan_network(
                device, net.definition,
                PipelineOptions(strategy="optimal", allow_fft=False),
                context=context,
            ).plan
        footprint = network_footprint(net, plan, training=training)
    return plan, footprint


def format_footprint(fp: MemoryFootprint) -> str:
    """Human-readable footprint summary."""
    mib = 1 << 20
    return (
        f"activations {fp.activations_bytes / mib:8.1f} MiB | "
        f"weights {fp.weights_bytes / mib:8.1f} MiB | "
        f"workspace {fp.workspace_bytes / mib:8.1f} MiB | "
        f"transform scratch {fp.transform_bytes / mib:6.1f} MiB "
        f"({fp.transform_overhead_fraction:.1%} of resident)"
    )
