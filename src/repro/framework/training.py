"""Numeric training: manual backpropagation through a resolved network.

The paper evaluates execution time, not accuracy, but its data structures
"are used in both the forward pass and backward pass for testing and
training" (footnote 1).  This module closes the loop: a hand-rolled
backprop chain over the same layer implementations, an SGD optimizer, and a
training driver — used by the `train_lenet` example and by tests that
verify gradients end-to-end (loss decreases on separable synthetic data).

Activations flow as logical (N, C, H, W) arrays; layout planning is a pure
performance concern and provably value-preserving (see
``tests/framework/test_net.py``), so training runs on the logical view.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.planner import NodeKind
from ..layers.backward import (
    conv_backward,
    cross_entropy_loss,
    fc_backward,
    lrn_backward,
    pool_backward,
    relu_backward,
)
from ..layers.base import ConvSpec, FCSpec, PoolSpec, SoftmaxSpec
from ..layers.conv import conv_direct
from ..layers.elementwise import LRNSpec, lrn_forward, relu_forward
from ..layers.fc import fc_forward, flatten_4d
from ..layers.pooling import pool_plain
from .net import Net
from .netdef import ConvDef, FCDef

_F = np.float32


@dataclass
class TrainStep:
    """Result of one forward-backward-update step."""

    loss: float
    accuracy: float
    grad_norm: float


@dataclass
class Trainer:
    """SGD trainer over a :class:`~repro.framework.net.Net`.

    Parameters are the net's ``init_weights`` dict: conv layers map to a
    filter array, FC layers to a ``(weights, bias)`` tuple.
    """

    net: Net
    lr: float = 0.05
    momentum: float = 0.0
    weights: dict = field(default_factory=dict)
    _velocity: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not 0 <= self.momentum < 1:
            raise ValueError("momentum must be in [0, 1)")
        if self.lr <= 0:
            raise ValueError("learning rate must be positive")
        if not self.net.is_chain:
            raise ValueError(
                f"{self.net.name}: the backprop chain supports linear "
                "networks only (branching forward runs via Net.forward)"
            )
        if not self.weights:
            self.weights = self.net.init_weights()

    @staticmethod
    def _with_batch(spec, n: int):
        """Rebind a spec to the actual batch size (kernels bake N in, the
        numeric path does not need to)."""
        from dataclasses import replace

        return replace(spec, n=n)

    # -- forward with activation cache -------------------------------------
    def _forward(self, x: np.ndarray) -> tuple[np.ndarray, list[dict]]:
        cache: list[dict] = []
        current: np.ndarray = np.asarray(x, dtype=_F)
        batch = current.shape[0]
        for layer in self.net.layers:
            entry: dict = {"layer": layer, "input": current}
            if layer.kind is NodeKind.CONV:
                assert isinstance(layer.spec, ConvSpec)
                entry["spec"] = self._with_batch(layer.spec, batch)
                pre = conv_direct(current, self.weights[layer.name], entry["spec"])
                entry["pre_act"] = pre
                relu = isinstance(layer.defn, ConvDef) and layer.defn.relu
                current = relu_forward(pre) if relu else pre
            elif layer.kind is NodeKind.POOL:
                assert isinstance(layer.spec, PoolSpec)
                entry["spec"] = self._with_batch(layer.spec, batch)
                current = pool_plain(current, entry["spec"])
            elif layer.kind is NodeKind.ELEMENTWISE:
                assert isinstance(layer.spec, LRNSpec)
                current = lrn_forward(current, layer.spec)
            elif isinstance(layer.spec, FCSpec):
                if current.ndim == 4:
                    entry["flattened_from"] = current.shape
                    current = flatten_4d(current)
                    entry["input"] = current
                w, b = self.weights[layer.name]
                pre = fc_forward(current, w, b)
                entry["pre_act"] = pre
                relu = isinstance(layer.defn, FCDef) and layer.defn.relu
                current = relu_forward(pre) if relu else pre
            else:  # softmax handled by the loss
                assert isinstance(layer.spec, SoftmaxSpec)
            cache.append(entry)
        return current, cache

    # -- backward -----------------------------------------------------------
    def _backward(
        self, cache: list[dict], dlogits: np.ndarray
    ) -> dict[str, object]:
        grads: dict[str, object] = {}
        dcurrent = np.asarray(dlogits, dtype=_F)
        for entry in reversed(cache):
            layer = entry["layer"]
            if layer.kind is NodeKind.CONV:
                relu = isinstance(layer.defn, ConvDef) and layer.defn.relu
                if relu:
                    dcurrent = relu_backward(entry["pre_act"], dcurrent)
                dcurrent, dw = conv_backward(
                    entry["input"], self.weights[layer.name], dcurrent, entry["spec"]
                )
                grads[layer.name] = dw
            elif layer.kind is NodeKind.POOL:
                dcurrent = pool_backward(entry["input"], dcurrent, entry["spec"])
            elif layer.kind is NodeKind.ELEMENTWISE:
                dcurrent = lrn_backward(entry["input"], dcurrent, layer.spec)
            elif isinstance(layer.spec, FCSpec):
                relu = isinstance(layer.defn, FCDef) and layer.defn.relu
                if relu:
                    dcurrent = relu_backward(entry["pre_act"], dcurrent)
                w, _b = self.weights[layer.name]
                dcurrent, dw, db = fc_backward(entry["input"], w, dcurrent)
                grads[layer.name] = (dw, db)
                if "flattened_from" in entry:
                    dcurrent = dcurrent.reshape(entry["flattened_from"])
            # softmax layer: gradient already folded into dlogits
        return grads

    # -- public API -----------------------------------------------------------
    def loss_and_grads(
        self, x: np.ndarray, labels: np.ndarray
    ) -> tuple[float, float, dict[str, object]]:
        """(loss, accuracy, parameter gradients) for one batch."""
        softmax_layers = [
            l for l in self.net.layers if isinstance(l.spec, SoftmaxSpec)
        ]
        if not softmax_layers:
            raise ValueError("training requires a softmax classifier layer")
        spec = softmax_layers[-1].spec
        batch_spec = SoftmaxSpec(n=int(np.asarray(x).shape[0]), categories=spec.categories)
        logits, cache = self._forward(x)
        loss, dlogits = cross_entropy_loss(logits, labels, batch_spec)
        accuracy = float((logits.argmax(axis=1) == labels).mean())
        grads = self._backward(cache, dlogits)
        return loss, accuracy, grads

    def step(self, x: np.ndarray, labels: np.ndarray) -> TrainStep:
        """One SGD(+momentum) update."""
        loss, accuracy, grads = self.loss_and_grads(x, labels)
        sq_norm = 0.0
        for name, grad in grads.items():
            parts = grad if isinstance(grad, tuple) else (grad,)
            for p in parts:
                sq_norm += float((np.asarray(p, dtype=np.float64) ** 2).sum())
            self._apply(name, grad)
        return TrainStep(loss=loss, accuracy=accuracy, grad_norm=sq_norm**0.5)

    def _apply(self, name: str, grad: object) -> None:
        current = self.weights[name]
        if isinstance(current, tuple):
            assert isinstance(grad, tuple)
            new = []
            for i, (p, g) in enumerate(zip(current, grad)):
                v = self._velocity.get((name, i), 0.0)
                v = self.momentum * v - self.lr * g
                self._velocity[(name, i)] = v
                new.append((p + v).astype(_F))
            self.weights[name] = tuple(new)
        else:
            v = self._velocity.get(name, 0.0)
            v = self.momentum * v - self.lr * np.asarray(grad)
            self._velocity[name] = v
            self.weights[name] = (current + v).astype(_F)

    def evaluate(self, x: np.ndarray, labels: np.ndarray) -> tuple[float, float]:
        """(loss, accuracy) without updating parameters."""
        loss, accuracy, _ = self.loss_and_grads(x, labels)
        return loss, accuracy


def train(
    net: Net,
    x: np.ndarray,
    labels: np.ndarray,
    steps: int = 20,
    batch_size: int | None = None,
    lr: float = 0.05,
    momentum: float = 0.9,
    seed: int = 0,
) -> tuple[Trainer, list[TrainStep]]:
    """Convenience SGD driver over an in-memory dataset."""
    trainer = Trainer(net, lr=lr, momentum=momentum)
    rng = np.random.default_rng(seed)
    n = x.shape[0]
    batch_size = batch_size or min(n, net.definition.batch)
    history: list[TrainStep] = []
    for _ in range(steps):
        idx = rng.choice(n, size=batch_size, replace=False)
        history.append(trainer.step(x[idx], labels[idx]))
    return trainer, history
