"""Network resolution and numeric execution (the Caffe-analog runtime).

:class:`Net` turns a :class:`~repro.framework.netdef.NetworkDef` into
resolved layer specs (shape inference now runs on the graph IR via
``repro.ir.build``, so branching networks resolve too), exposes chain
networks to the legacy layout planner, and can execute the network
numerically with any layout plan — performing real relayouts at plan
boundaries, exactly where the integrated framework would launch its
transformation kernel.  Numeric results are plan-invariant, which the
integration tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.planner import LayoutPlan, NodeKind, PlanNode
from ..gpusim.device import DeviceSpec
from ..gpusim.session import SimulationContext, default_context
from ..ir.build import infer_shapes, lower_netdef
from ..layers.base import ConvSpec, FCSpec, PoolSpec, SoftmaxSpec
from ..layers.conv import conv_forward, make_filters
from ..layers.elementwise import (
    LRNSpec,
    lrn_forward,
    make_lrn_kernel,
    relu_forward,
)
from ..layers.fc import fc_forward, flatten_4d, make_fc_kernel, make_fc_weights
from ..layers.softmax import softmax_forward
from ..tensors.layout import NCHW, DataLayout
from ..tensors.tensor import Tensor4D
from .netdef import ConvDef, FCDef, LayerDef, NetworkDef


@dataclass(frozen=True)
class ResolvedLayer:
    """A layer definition bound to concrete shapes."""

    defn: LayerDef
    kind: NodeKind
    spec: object | None  # ConvSpec | PoolSpec | FCSpec | SoftmaxSpec | LRNSpec
    in_dims: tuple[int, int, int, int] | None  # 4-D logical input, if any
    out_dims: tuple[int, int, int, int] | None
    out_features: int | None = None  # for fc/softmax (2-D data)
    #: producing layers this one reads (empty = the network input)
    inputs: tuple[str, ...] = ()

    @property
    def name(self) -> str:
        return self.defn.name


def resolve(net: NetworkDef) -> list[ResolvedLayer]:
    """Shape-infer the whole stack.  Raises on inconsistent geometry.

    Adapter over the graph IR's :func:`~repro.ir.build.infer_shapes` — the
    single shape-inference implementation — preserving the legacy
    ``list[ResolvedLayer]`` view (topological order, which for chain
    definitions is the definition order).
    """
    graph = infer_shapes(lower_netdef(net))
    return [
        ResolvedLayer(
            defn=node.defn,  # type: ignore[arg-type]
            kind=node.kind,
            spec=node.spec,
            in_dims=node.in_dims,
            out_dims=node.out_dims,
            out_features=node.out_features,
            inputs=node.inputs,
        )
        for node in graph.topological()
    ]


class Net:
    """A resolved network: planner view + numeric execution.

    A shared :class:`SimulationContext` may be attached at construction (or
    passed per call); every simulation the net performs then feeds one
    structural timing cache instead of a private throwaway engine.
    """

    def __init__(
        self, definition: NetworkDef, context: SimulationContext | None = None
    ) -> None:
        self.definition = definition
        self.layers = resolve(definition)
        self.context = context

    @property
    def name(self) -> str:
        return self.definition.name

    def _context_for(
        self, device: DeviceSpec, context: SimulationContext | None
    ) -> SimulationContext:
        """Per-call context > net-level context (if device matches) > shared
        default session for the device."""
        if context is not None:
            return context
        if self.context is not None and self.context.device == device:
            return self.context
        return default_context(device)

    @property
    def is_chain(self) -> bool:
        """True when every layer reads the previous one (no branching)."""
        prev: str | None = None
        for layer in self.layers:
            expected = (prev,) if prev is not None else ()
            if layer.inputs != expected:
                return False
            prev = layer.name
        return True

    # -- planner interface -------------------------------------------------
    def planner_nodes(
        self, device: DeviceSpec, context: SimulationContext | None = None
    ) -> list[PlanNode]:
        """The layer chain as the legacy layout planner consumes it.

        Only defined for chain networks; branching networks plan through
        the graph IR (:func:`repro.core.pipeline.plan_network`).
        """
        if not self.is_chain:
            raise ValueError(
                f"{self.name}: branching networks have no planner-node chain; "
                "plan through repro.core.pipeline.plan_network instead"
            )
        engine = self._context_for(device, context).engine(check_memory=False)
        nodes: list[PlanNode] = []
        for layer in self.layers:
            if layer.kind in (NodeKind.CONV, NodeKind.POOL):
                nodes.append(
                    PlanNode(layer.name, layer.kind, layer.spec, in_dims=layer.in_dims)
                )
            elif layer.kind is NodeKind.ELEMENTWISE:
                assert layer.in_dims is not None
                elements = int(np.prod(layer.in_dims))
                assert isinstance(layer.spec, LRNSpec)
                ms = engine.run(make_lrn_kernel(elements, layer.spec)).time_ms
                nodes.append(
                    PlanNode(
                        layer.name, layer.kind, None, fixed_ms=ms, in_dims=layer.in_dims
                    )
                )
            else:  # CLASSIFIER
                spec = layer.spec
                if isinstance(spec, FCSpec):
                    ms = engine.run(make_fc_kernel(spec)).time_ms
                    nodes.append(
                        PlanNode(layer.name, layer.kind, None, fixed_ms=ms,
                                 in_dims=layer.in_dims)
                    )
                else:
                    nodes.append(
                        PlanNode(layer.name, layer.kind, spec, in_dims=None)
                    )
        return nodes

    # -- numeric execution -------------------------------------------------
    def init_weights(self, seed: int = 0) -> dict[str, object]:
        """Seeded parameters for every parameterized layer."""
        weights: dict[str, object] = {}
        for i, layer in enumerate(self.layers):
            if isinstance(layer.spec, ConvSpec):
                weights[layer.name] = make_filters(layer.spec, seed=seed + i + 1)
            elif isinstance(layer.spec, FCSpec):
                weights[layer.name] = make_fc_weights(layer.spec, seed=seed + i + 1)
        return weights

    def make_input(self, seed: int = 0, layout: DataLayout = NCHW) -> Tensor4D:
        d = self.definition
        rng = np.random.default_rng(seed)
        logical = rng.standard_normal(
            (d.batch, d.in_channels, d.in_h, d.in_w)
        ).astype(np.float32)
        return Tensor4D.from_nchw(logical, layout)

    def forward(
        self,
        x: Tensor4D,
        weights: dict[str, object] | None = None,
        plan: LayoutPlan | None = None,
    ) -> np.ndarray:
        """Run the network numerically; returns the softmax/FC output.

        With a plan, conv/pool layers execute in their planned layout and
        real relayouts happen at the boundaries (the numeric twin of the
        runtime transformation insertion of Section IV.D).
        """
        weights = weights if weights is not None else self.init_weights()
        steps = {s.name: s for s in plan.steps} if plan is not None else {}
        produced: dict[str, Tensor4D | np.ndarray] = {}
        current: Tensor4D | np.ndarray = x
        for layer in self.layers:
            step = steps.get(layer.name)
            current = produced[layer.inputs[0]] if layer.inputs else x
            if layer.kind is NodeKind.CONCAT:
                parts = [produced[src] for src in layer.inputs]
                assert all(isinstance(p, Tensor4D) for p in parts)
                target = parts[0].layout  # type: ignore[union-attr]
                joined = np.concatenate(
                    [p.as_nchw() for p in parts],  # type: ignore[union-attr]
                    axis=1,
                )
                produced[layer.name] = Tensor4D.from_nchw(joined, target)
                continue
            if layer.kind in (NodeKind.CONV, NodeKind.POOL):
                assert isinstance(current, Tensor4D)
                target = step.layout if step and step.layout else current.layout
                if target != current.layout:
                    current = current.to_layout(target)
                if layer.kind is NodeKind.CONV:
                    assert isinstance(layer.spec, ConvSpec)
                    impl = _numeric_conv_impl(step.implementation if step else "direct")
                    current = conv_forward(current, weights[layer.name], layer.spec, impl)
                    if isinstance(layer.defn, ConvDef) and layer.defn.relu:
                        current = Tensor4D.from_nchw(
                            relu_forward(current.as_nchw()), current.layout
                        )
                else:
                    assert isinstance(layer.spec, PoolSpec)
                    coarsen = step.coarsening if step else None
                    from ..layers.pooling import pool_forward

                    current = pool_forward(current, layer.spec, coarsen=coarsen)
            elif layer.kind is NodeKind.ELEMENTWISE:
                assert isinstance(current, Tensor4D)
                assert isinstance(layer.spec, LRNSpec)
                current = Tensor4D.from_nchw(
                    lrn_forward(current.as_nchw(), layer.spec), current.layout
                )
            else:  # classifier
                spec = layer.spec
                if isinstance(spec, FCSpec):
                    data = (
                        flatten_4d(current.as_nchw())
                        if isinstance(current, Tensor4D)
                        else current
                    )
                    w, b = weights[layer.name]
                    data = fc_forward(data, w, b)
                    if isinstance(layer.defn, FCDef) and layer.defn.relu:
                        data = relu_forward(data)
                    current = data
                else:
                    assert isinstance(spec, SoftmaxSpec)
                    assert isinstance(current, np.ndarray)
                    current = softmax_forward(current, spec, fused=True)
            produced[layer.name] = current
        out = produced[self.layers[-1].name] if self.layers else x
        if isinstance(out, Tensor4D):
            return out.as_nchw()
        return out


def _numeric_conv_impl(plan_impl: str) -> str:
    """Map a planner implementation name to a numeric conv implementation."""
    if plan_impl.startswith("fft"):
        return "fft"
    if plan_impl == "im2col":
        return "im2col"
    return "direct"


def build_net(
    definition: NetworkDef, context: SimulationContext | None = None
) -> Net:
    """Convenience constructor."""
    return Net(definition, context=context)
