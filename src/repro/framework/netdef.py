"""Network definitions: a Caffe-style layer-stack description.

"In the deep learning frameworks such as Caffe or cuda-convnet, each CNN
has a configuration file that defines a network structure by specifying a
stack of various layers" (Section IV.D).  :class:`NetworkDef` is that
configuration; :func:`parse_netdef` / :func:`format_netdef` read and write a
small prototxt-like text form.  The paper's data-layout support adds one
field per conv/pool layer — the chosen layout — which here lives in the
*plan* (``repro.core.planner``), keeping definitions layout-agnostic.

Wiring: every layer has an optional ``bottom`` naming the layer it reads
(Caffe's term); ``None`` means the previous layer in the stack (the
network input for the first layer), so chain definitions stay as terse as
before.  :class:`ConcatDef` joins several named layers along the channel
axis, which is what lets a definition describe branching
(Inception/ResNet-style) networks for the graph IR to plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union


@dataclass(frozen=True)
class ConvDef:
    """A convolution layer (output maps, square filter, stride, padding,
    channel groups).

    Hyperparameters are validated at construction time — a negative pad or a
    zero-extent filter is a definition error, and surfacing it here (with the
    layer's name) beats a shape failure deep inside an emulation kernel.
    """

    name: str
    co: int
    f: int
    stride: int = 1
    pad: int = 0
    relu: bool = True
    groups: int = 1
    bottom: str | None = None

    def __post_init__(self) -> None:
        if self.co <= 0 or self.f <= 0:
            raise ValueError(
                f"{self.name}: output maps and filter extent must be positive "
                f"(co={self.co}, f={self.f})"
            )
        if self.stride <= 0:
            raise ValueError(f"{self.name}: stride must be positive, got {self.stride}")
        if self.pad < 0:
            raise ValueError(f"{self.name}: pad cannot be negative, got {self.pad}")
        if self.groups <= 0:
            raise ValueError(f"{self.name}: groups must be positive, got {self.groups}")
        if self.co % self.groups:
            raise ValueError(
                f"{self.name}: groups={self.groups} must divide co={self.co}"
            )


@dataclass(frozen=True)
class PoolDef:
    """A pooling layer (square window)."""

    name: str
    window: int
    stride: int
    op: str = "max"
    bottom: str | None = None

    def __post_init__(self) -> None:
        if self.window <= 0 or self.stride <= 0:
            raise ValueError(
                f"{self.name}: pooling window and stride must be positive "
                f"(window={self.window}, stride={self.stride})"
            )
        if self.op not in ("max", "avg"):
            raise ValueError(
                f"{self.name}: pooling op must be 'max' or 'avg', got {self.op!r}"
            )


@dataclass(frozen=True)
class LRNDef:
    """AlexNet-style local response normalization."""

    name: str
    depth: int = 5
    bottom: str | None = None

    def __post_init__(self) -> None:
        if self.depth <= 0:
            raise ValueError(f"{self.name}: LRN depth must be positive, got {self.depth}")


@dataclass(frozen=True)
class FCDef:
    """A fully-connected layer; flattens 4-D input if needed."""

    name: str
    out_features: int
    relu: bool = True
    bottom: str | None = None

    def __post_init__(self) -> None:
        if self.out_features <= 0:
            raise ValueError(
                f"{self.name}: out_features must be positive, got {self.out_features}"
            )


@dataclass(frozen=True)
class SoftmaxDef:
    """The final classifier layer."""

    name: str
    bottom: str | None = None


@dataclass(frozen=True)
class ConcatDef:
    """Channel-axis join of several named layers (same N, H, W)."""

    name: str
    inputs: tuple[str, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "inputs", tuple(self.inputs))
        if len(self.inputs) < 2:
            raise ValueError(
                f"{self.name}: concat needs at least two inputs, "
                f"got {len(self.inputs)}"
            )
        if len(set(self.inputs)) != len(self.inputs):
            raise ValueError(f"{self.name}: duplicate concat inputs {self.inputs}")


LayerDef = Union[ConvDef, PoolDef, LRNDef, FCDef, SoftmaxDef, ConcatDef]


@dataclass(frozen=True)
class NetworkDef:
    """A complete network: input geometry plus an ordered layer stack."""

    name: str
    batch: int
    in_channels: int
    in_h: int
    in_w: int
    layers: tuple[LayerDef, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if min(self.batch, self.in_channels, self.in_h, self.in_w) <= 0:
            raise ValueError("network input dims must be positive")
        names = [layer.name for layer in self.layers]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate layer names in {self.name}: {names}")
        seen: set[str] = set()
        for layer in self.layers:
            if isinstance(layer, ConcatDef):
                refs: tuple[str, ...] = layer.inputs
            else:
                refs = (layer.bottom,) if layer.bottom is not None else ()
            for ref in refs:
                if ref not in seen:
                    raise ValueError(
                        f"{layer.name}: bottom {ref!r} does not name an "
                        f"earlier layer of {self.name}"
                    )
            seen.add(layer.name)

    def with_batch(self, batch: int) -> "NetworkDef":
        return NetworkDef(
            self.name, batch, self.in_channels, self.in_h, self.in_w, self.layers
        )


def format_netdef(net: NetworkDef) -> str:
    """Serialize to the text form accepted by :func:`parse_netdef`."""
    lines = [
        f"network {net.name} batch={net.batch} "
        f"input={net.in_channels}x{net.in_h}x{net.in_w}"
    ]
    for layer in net.layers:
        if isinstance(layer, ConvDef):
            line = (
                f"conv {layer.name} co={layer.co} f={layer.f} "
                f"stride={layer.stride} pad={layer.pad} relu={int(layer.relu)} "
                f"groups={layer.groups}"
            )
        elif isinstance(layer, PoolDef):
            line = (
                f"pool {layer.name} window={layer.window} stride={layer.stride} "
                f"op={layer.op}"
            )
        elif isinstance(layer, LRNDef):
            line = f"lrn {layer.name} depth={layer.depth}"
        elif isinstance(layer, FCDef):
            line = f"fc {layer.name} out={layer.out_features} relu={int(layer.relu)}"
        elif isinstance(layer, SoftmaxDef):
            line = f"softmax {layer.name}"
        elif isinstance(layer, ConcatDef):
            line = f"concat {layer.name} inputs={','.join(layer.inputs)}"
        else:  # pragma: no cover - union is closed
            raise TypeError(f"unknown layer type {type(layer)!r}")
        if not isinstance(layer, ConcatDef) and layer.bottom is not None:
            line += f" bottom={layer.bottom}"
        lines.append(line)
    return "\n".join(lines) + "\n"


def _kv(tokens: list[str], line_no: int) -> dict[str, str]:
    out: dict[str, str] = {}
    for tok in tokens:
        if "=" not in tok:
            raise ValueError(f"line {line_no}: expected key=value, got {tok!r}")
        key, value = tok.split("=", 1)
        out[key] = value
    return out


def parse_netdef(text: str) -> NetworkDef:
    """Parse the text form.  Unknown keys and layer kinds raise ValueError."""
    header: NetworkDef | None = None
    layers: list[LayerDef] = []
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        kind, *rest = line.split()
        if kind == "network":
            if header is not None:
                raise ValueError(f"line {line_no}: duplicate network header")
            name, *tokens = rest
            kv = _kv(tokens, line_no)
            c, h, w = (int(v) for v in kv["input"].split("x"))
            header = NetworkDef(
                name=name, batch=int(kv["batch"]), in_channels=c, in_h=h, in_w=w
            )
            continue
        if header is None:
            raise ValueError(f"line {line_no}: layer before network header")
        name, *tokens = rest
        kv = _kv(tokens, line_no)
        bottom = kv.get("bottom")
        if kind == "conv":
            layers.append(
                ConvDef(
                    name=name,
                    co=int(kv["co"]),
                    f=int(kv["f"]),
                    stride=int(kv.get("stride", 1)),
                    pad=int(kv.get("pad", 0)),
                    relu=bool(int(kv.get("relu", 1))),
                    groups=int(kv.get("groups", 1)),
                    bottom=bottom,
                )
            )
        elif kind == "pool":
            layers.append(
                PoolDef(
                    name=name,
                    window=int(kv["window"]),
                    stride=int(kv["stride"]),
                    op=kv.get("op", "max"),
                    bottom=bottom,
                )
            )
        elif kind == "lrn":
            layers.append(
                LRNDef(name=name, depth=int(kv.get("depth", 5)), bottom=bottom)
            )
        elif kind == "fc":
            layers.append(
                FCDef(
                    name=name,
                    out_features=int(kv["out"]),
                    relu=bool(int(kv.get("relu", 1))),
                    bottom=bottom,
                )
            )
        elif kind == "softmax":
            layers.append(SoftmaxDef(name=name, bottom=bottom))
        elif kind == "concat":
            layers.append(
                ConcatDef(name=name, inputs=tuple(kv["inputs"].split(",")))
            )
        else:
            raise ValueError(f"line {line_no}: unknown layer kind {kind!r}")
    if header is None:
        raise ValueError("missing network header line")
    return NetworkDef(
        header.name,
        header.batch,
        header.in_channels,
        header.in_h,
        header.in_w,
        tuple(layers),
    )
