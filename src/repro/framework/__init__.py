"""Caffe-analog framework: network definitions, shape resolution, and
layout-plan-driven numeric execution."""

from .annotate import (
    LayerAnnotation,
    annotations_from_plan,
    format_annotated_netdef,
    parse_annotated_netdef,
    plan_from_annotations,
)
from .memory import (
    MemoryFootprint,
    PlanMismatchError,
    format_footprint,
    network_footprint,
    plan_within_memory,
)
from .net import Net, ResolvedLayer, build_net, resolve
from .training import Trainer, TrainStep, train
from .netdef import (
    ConvDef,
    FCDef,
    LayerDef,
    LRNDef,
    NetworkDef,
    PoolDef,
    SoftmaxDef,
    format_netdef,
    parse_netdef,
)

__all__ = [
    "ConvDef",
    "LayerAnnotation",
    "MemoryFootprint",
    "PlanMismatchError",
    "annotations_from_plan",
    "format_annotated_netdef",
    "format_footprint",
    "network_footprint",
    "parse_annotated_netdef",
    "plan_from_annotations",
    "plan_within_memory",
    "FCDef",
    "LRNDef",
    "LayerDef",
    "Net",
    "NetworkDef",
    "PoolDef",
    "ResolvedLayer",
    "SoftmaxDef",
    "TrainStep",
    "Trainer",
    "build_net",
    "format_netdef",
    "parse_netdef",
    "resolve",
    "train",
]
