"""Layout annotations in network definitions (paper Section IV.D).

"Applying our data layout support requires two changes.  The first is to
add a new field in each convolutional and pooling layer to indicate the
data layout choice.  By scanning through the network once, the field in
each layer is set ... The second is at the runtime ... an additional check
is inserted to determine whether a data layout transformation is needed
before passing the output to the next layer."

This module is that first change: a :class:`LayoutPlan` can be *baked into*
a :class:`NetworkDef` as per-layer annotations, serialized with the network
(the text format grows a ``layout=`` key), parsed back, and re-hydrated
into a plan-equivalent annotation map the runtime consumes.  The runtime
check is :meth:`repro.framework.net.Net.forward`'s transform insertion.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.planner import LayoutPlan, NodeKind
from ..tensors.layout import DataLayout, parse_layout
from .netdef import NetworkDef


@dataclass(frozen=True)
class LayerAnnotation:
    """The per-layer fields Section IV.D adds to the configuration file."""

    layout: DataLayout
    implementation: str
    coarsening: tuple[int, int] | None = None

    def encode(self) -> str:
        parts = [f"layout={self.layout}", f"impl={self.implementation}"]
        if self.coarsening:
            parts.append(f"coarsen={self.coarsening[0]}x{self.coarsening[1]}")
        return " ".join(parts)


def annotations_from_plan(plan: LayoutPlan) -> dict[str, LayerAnnotation]:
    """Extract the conv/pool layout fields from a plan."""
    out: dict[str, LayerAnnotation] = {}
    for step in plan.steps:
        if step.kind in (NodeKind.CONV, NodeKind.POOL) and step.layout is not None:
            out[step.name] = LayerAnnotation(
                layout=step.layout,
                implementation=step.implementation,
                coarsening=step.coarsening,
            )
    return out


def format_annotated_netdef(
    net: NetworkDef, annotations: dict[str, LayerAnnotation]
) -> str:
    """Serialize a network with its layout fields.

    The output extends the plain text format with comment-marked annotation
    lines, so un-annotated parsers still read the topology.
    """
    from .netdef import format_netdef

    base_lines = format_netdef(net).splitlines()
    out: list[str] = []
    for line in base_lines:
        out.append(line)
        tokens = line.split()
        if len(tokens) >= 2 and tokens[0] in ("conv", "pool"):
            ann = annotations.get(tokens[1])
            if ann is not None:
                out.append(f"#@ {tokens[1]} {ann.encode()}")
    return "\n".join(out) + "\n"


def parse_annotated_netdef(
    text: str,
) -> tuple[NetworkDef, dict[str, LayerAnnotation]]:
    """Parse a network plus its layout annotations."""
    from .netdef import parse_netdef

    annotations: dict[str, LayerAnnotation] = {}
    plain_lines: list[str] = []
    for line_no, raw in enumerate(text.splitlines(), start=1):
        stripped = raw.strip()
        if stripped.startswith("#@"):
            tokens = stripped[2:].split()
            if len(tokens) < 2:
                raise ValueError(f"line {line_no}: malformed annotation")
            name, *kvs = tokens
            fields = dict(kv.split("=", 1) for kv in kvs)
            if "layout" not in fields or "impl" not in fields:
                raise ValueError(
                    f"line {line_no}: annotation needs layout= and impl="
                )
            coarsen = None
            if "coarsen" in fields:
                ux, uy = fields["coarsen"].split("x")
                coarsen = (int(ux), int(uy))
            annotations[name] = LayerAnnotation(
                layout=parse_layout(fields["layout"]),
                implementation=fields["impl"],
                coarsening=coarsen,
            )
        else:
            plain_lines.append(raw)
    net = parse_netdef("\n".join(plain_lines))
    known = {layer.name for layer in net.layers}
    unknown = set(annotations) - known
    if unknown:
        raise ValueError(f"annotations for unknown layers: {sorted(unknown)}")
    return net, annotations


def plan_from_annotations(
    plan_template: LayoutPlan, annotations: dict[str, LayerAnnotation]
) -> LayoutPlan:
    """Overlay stored annotations onto a freshly-computed plan skeleton.

    Used when a network ships with baked-in layout fields: timings are
    recomputed for the current device, but the layout/implementation
    choices come from the annotations.
    """
    from dataclasses import replace as dc_replace

    steps = []
    for step in plan_template.steps:
        ann = annotations.get(step.name)
        if ann is None:
            steps.append(step)
            continue
        steps.append(
            dc_replace(
                step,
                layout=ann.layout,
                implementation=ann.implementation,
                coarsening=ann.coarsening,
            )
        )
    return LayoutPlan(
        steps=tuple(steps), device=plan_template.device, strategy="annotated"
    )
