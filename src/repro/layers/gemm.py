"""SGEMM kernel model (cuBLAS stand-in) and the GEMM-shape efficiency law.

The NCHW convolution path and the fully-connected layers both bottom out in
a matrix multiplication, so the paper's NCHW-vs-CHWN crossover is largely a
statement about *GEMM shape efficiency*: a GEMM with a short reduction
dimension (K = Ci*Fh*Fw, small when C is small) cannot reach peak, while
merging N into the output columns ("dimensions merging", Section IV.A)
makes the column dimension effectively unbounded.  The shape law here is
the quantitative form of that argument; its constants live in the device's
:class:`~repro.gpusim.device.ArchProfile` and are what the one-time
calibration recovers.
"""

from __future__ import annotations

from math import ceil

from ..gpusim.device import DeviceSpec
from ..gpusim.kernel import KernelModel, LaunchConfig, MemoryProfile


def gemm_shape_efficiency(device: DeviceSpec, m: int, n: int, k: int) -> float:
    """Fraction of peak FLOPS an (M x K) @ (K x N) SGEMM sustains."""
    arch = device.arch
    f_k = max(k / (k + arch.gemm_k_half), arch.gemm_k_floor)
    f_m = m / (m + arch.gemm_m_half)
    f_n = n / (n + arch.gemm_n_half)
    return arch.gemm_peak_eff * f_k * f_m * f_n


class GemmKernel(KernelModel):
    """A tiled SGEMM: C(M x N) = A(M x K) @ B(K x N)."""

    name = "sgemm"
    tile = 64

    def __init__(self, m: int, n: int, k: int, name: str | None = None) -> None:
        if min(m, n, k) <= 0:
            raise ValueError(f"GEMM dims must be positive, got {(m, n, k)}")
        self.m, self.n, self.k = m, n, k
        if name:
            self.name = name

    def launch_config(self, device: DeviceSpec) -> LaunchConfig:
        grid = (ceil(self.n / self.tile), ceil(self.m / self.tile), 1)
        return LaunchConfig(
            grid=grid, block=(16, 16, 1), regs_per_thread=48, smem_per_block=8 * 1024
        )

    def flop_count(self) -> float:
        return 2.0 * self.m * self.n * self.k

    def alu_efficiency(self, device: DeviceSpec) -> float:
        return gemm_shape_efficiency(device, self.m, self.n, self.k)

    def memory_profile(self, device: DeviceSpec) -> MemoryProfile:
        # Standard tiled-GEMM traffic: each operand is re-read once per tile
        # row/column of the other operand.
        a_bytes = 4.0 * self.m * self.k * ceil(self.n / self.tile)
        b_bytes = 4.0 * self.k * self.n * ceil(self.m / self.tile)
        c_bytes = 4.0 * self.m * self.n
        return MemoryProfile.coalesced(load_bytes=a_bytes + b_bytes, store_bytes=c_bytes)
