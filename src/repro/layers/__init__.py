"""CNN layers: numeric implementations plus their GPU kernel models."""

from .base import ConvSpec, FCSpec, PoolSpec, SoftmaxSpec, conv_out_extent
from .conv import (
    conv_direct,
    conv_fft,
    conv_forward,
    conv_im2col,
    im2col,
    make_filters,
)
from .conv_kernels import (
    CONV_IMPLEMENTATIONS,
    ConvUnsupportedError,
    DirectConvCHWN,
    FFTConvNCHW,
    Im2colGemmNCHW,
    Im2colGemmNHWC,
    Im2colKernel,
    make_conv_kernel,
)
from .elementwise import (
    ElementwiseKernel,
    LRNSpec,
    lrn_forward,
    make_lrn_kernel,
    make_relu_kernel,
    relu_forward,
)
from .fc import fc_forward, flatten_4d, make_fc_kernel, make_fc_weights
from .gemm import GemmKernel, gemm_shape_efficiency
from .pooling import pool_coarsened, pool_forward, pool_plain, tile_footprint
from .pooling_kernels import (
    POOL_IMPLEMENTATIONS,
    PoolingCHWN,
    PoolingCoarsenedCHWN,
    PoolingNCHWBlockPerRow,
    PoolingNCHWLinear,
    make_pool_kernel,
)
from .softmax import (
    SoftmaxSteps,
    softmax_five_step,
    softmax_forward,
    softmax_fused,
)
from .winograd import WinogradConvNCHW, conv_winograd
from .softmax_kernels import (
    SOFTMAX_IMPLEMENTATIONS,
    CudnnSoftmax,
    FusedParallelSoftmax,
    FusedSoftmax,
    five_kernel_softmax,
    make_softmax_kernel,
)

__all__ = [
    "CONV_IMPLEMENTATIONS",
    "ConvSpec",
    "ConvUnsupportedError",
    "CudnnSoftmax",
    "DirectConvCHWN",
    "ElementwiseKernel",
    "FCSpec",
    "FFTConvNCHW",
    "FusedParallelSoftmax",
    "FusedSoftmax",
    "GemmKernel",
    "Im2colGemmNCHW",
    "Im2colGemmNHWC",
    "Im2colKernel",
    "LRNSpec",
    "POOL_IMPLEMENTATIONS",
    "PoolSpec",
    "PoolingCHWN",
    "PoolingCoarsenedCHWN",
    "PoolingNCHWBlockPerRow",
    "PoolingNCHWLinear",
    "SOFTMAX_IMPLEMENTATIONS",
    "SoftmaxSpec",
    "SoftmaxSteps",
    "WinogradConvNCHW",
    "conv_direct",
    "conv_fft",
    "conv_forward",
    "conv_im2col",
    "conv_winograd",
    "conv_out_extent",
    "fc_forward",
    "five_kernel_softmax",
    "flatten_4d",
    "gemm_shape_efficiency",
    "im2col",
    "lrn_forward",
    "make_conv_kernel",
    "make_fc_kernel",
    "make_fc_weights",
    "make_filters",
    "make_lrn_kernel",
    "make_pool_kernel",
    "make_relu_kernel",
    "make_softmax_kernel",
    "pool_coarsened",
    "pool_forward",
    "pool_plain",
    "relu_forward",
    "softmax_five_step",
    "softmax_forward",
    "softmax_fused",
    "tile_footprint",
]
