"""Layer specifications shared by numeric implementations and kernel models.

A *spec* is the pure geometry of a layer — the rows of the paper's Table 1.
Numeric layers and GPU kernel models both consume specs, so correctness
tests and performance benchmarks always agree on shapes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..tensors.layout import DataLayout, NCHW
from ..tensors.tensor import TensorDesc


def conv_out_extent(extent: int, filt: int, stride: int, pad: int) -> int:
    """Output spatial extent of a convolution window sweep (floor mode)."""
    out = (extent + 2 * pad - filt) // stride + 1
    if out <= 0:
        raise ValueError(
            f"window {filt} with stride {stride} does not fit extent {extent} "
            f"(pad {pad})"
        )
    return out


def pool_out_extent(extent: int, window: int, stride: int) -> int:
    """Output extent of a pooling sweep (ceil mode, as in Caffe).

    Ceil mode lets the last window overhang and be clipped, which is what
    produces the paper's shape chains (e.g. ZFNet 110 -> 55 -> 26 -> 13).
    """
    if window > extent:
        raise ValueError(f"window {window} larger than extent {extent}")
    out = -(-(extent - window) // stride) + 1
    # The last window must start inside the input.
    while (out - 1) * stride >= extent:  # pragma: no cover - defensive
        out -= 1
    return out


@dataclass(frozen=True)
class ConvSpec:
    """Convolutional layer geometry (Equation 1 of the paper)."""

    n: int
    ci: int
    h: int
    w: int
    co: int
    fh: int
    fw: int
    stride: int = 1
    pad: int = 0
    #: channel groups (AlexNet's two-tower convolutions use groups=2);
    #: each group convolves ci/groups inputs into co/groups outputs
    groups: int = 1

    def __post_init__(self) -> None:
        if min(self.n, self.ci, self.h, self.w, self.co, self.fh, self.fw) <= 0:
            raise ValueError("all convolution dimensions must be positive")
        if self.stride <= 0 or self.pad < 0:
            raise ValueError("stride must be positive and pad non-negative")
        if self.groups <= 0 or self.ci % self.groups or self.co % self.groups:
            raise ValueError(
                f"groups={self.groups} must divide ci={self.ci} and co={self.co}"
            )
        conv_out_extent(self.h, self.fh, self.stride, self.pad)
        conv_out_extent(self.w, self.fw, self.stride, self.pad)

    @property
    def out_h(self) -> int:
        return conv_out_extent(self.h, self.fh, self.stride, self.pad)

    @property
    def out_w(self) -> int:
        return conv_out_extent(self.w, self.fw, self.stride, self.pad)

    @property
    def flops(self) -> float:
        """Multiply-adds counted as 2 FLOPs, the GFLOPS convention of Fig. 4."""
        return (
            2.0 * self.n * self.co * self.out_h * self.out_w * self.taps
        )

    @property
    def taps(self) -> int:
        """Reduction length per output element (the GEMM K dimension)."""
        return (self.ci // self.groups) * self.fh * self.fw

    def group_spec(self) -> "ConvSpec":
        """The single-group convolution each group computes."""
        if self.groups == 1:
            return self
        return replace(
            self, ci=self.ci // self.groups, co=self.co // self.groups, groups=1
        )

    def in_desc(self, layout: DataLayout = NCHW) -> TensorDesc:
        return TensorDesc(self.n, self.ci, self.h, self.w, layout)

    def out_desc(self, layout: DataLayout = NCHW) -> TensorDesc:
        return TensorDesc(self.n, self.co, self.out_h, self.out_w, layout)

    @property
    def filter_bytes(self) -> int:
        return self.co * (self.ci // self.groups) * self.fh * self.fw * 4

    def with_batch(self, n: int) -> "ConvSpec":
        return replace(self, n=n)

    def with_channels(self, ci: int) -> "ConvSpec":
        return replace(self, ci=ci)


@dataclass(frozen=True)
class PoolSpec:
    """Pooling layer geometry (Equation 2).  Overlapped when window > stride."""

    n: int
    c: int
    h: int
    w: int
    window: int
    stride: int
    op: str = "max"

    def __post_init__(self) -> None:
        if min(self.n, self.c, self.h, self.w, self.window, self.stride) <= 0:
            raise ValueError("all pooling dimensions must be positive")
        if self.op not in ("max", "avg"):
            raise ValueError(f"pooling op must be 'max' or 'avg', got {self.op!r}")
        pool_out_extent(self.h, self.window, self.stride)
        pool_out_extent(self.w, self.window, self.stride)

    @property
    def out_h(self) -> int:
        return pool_out_extent(self.h, self.window, self.stride)

    @property
    def out_w(self) -> int:
        return pool_out_extent(self.w, self.window, self.stride)

    @property
    def overlapped(self) -> bool:
        """True when successive windows share input elements (Fig. 8)."""
        return self.window > self.stride

    @property
    def out_elements(self) -> int:
        return self.n * self.c * self.out_h * self.out_w

    @property
    def flops(self) -> float:
        return float(self.out_elements * self.window * self.window)

    def in_desc(self, layout: DataLayout = NCHW) -> TensorDesc:
        return TensorDesc(self.n, self.c, self.h, self.w, layout)

    def out_desc(self, layout: DataLayout = NCHW) -> TensorDesc:
        return TensorDesc(self.n, self.c, self.out_h, self.out_w, layout)


@dataclass(frozen=True)
class SoftmaxSpec:
    """Classifier layer geometry: a batch of N probability rows over
    ``categories`` labels (the paper's CLASS1–CLASS5 configurations)."""

    n: int
    categories: int

    def __post_init__(self) -> None:
        if self.n <= 0 or self.categories <= 0:
            raise ValueError("batch and category counts must be positive")

    @property
    def elements(self) -> int:
        return self.n * self.categories

    @property
    def nbytes(self) -> int:
        return self.elements * 4

    @property
    def flops(self) -> float:
        # max pass + subtract + exp(~4 flops) + sum + divide
        return float(self.elements * 8)


@dataclass(frozen=True)
class FCSpec:
    """Fully-connected layer: an (N x in) @ (in x out) matrix product."""

    n: int
    in_features: int
    out_features: int

    def __post_init__(self) -> None:
        if min(self.n, self.in_features, self.out_features) <= 0:
            raise ValueError("all dimensions must be positive")

    @property
    def flops(self) -> float:
        return 2.0 * self.n * self.in_features * self.out_features
