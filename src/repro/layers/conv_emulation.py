"""Executable emulation of cuda-convnet's direct convolution (CHWN).

The performance model's ``DirectConvCHWN`` assumes a specific blocking
structure (Section IV.A's description of cuda-convnet): a warp of 32
threads spans 32 images along the unit-stride N dimension, each thread
register-tiles ``imgs_per_thread`` images and ``filters_per_thread``
output maps, and the block's filter slice is staged through shared memory.
This module *executes* that structure on CHWN-ordered data so the test
suite can prove the blocked algorithm computes Equation 1 exactly — and so
the register-reuse arithmetic the model's batch-sensitivity law relies on
is visible in code.

The emulation is organized exactly like the kernel:

* grid: (spatial blocks, output-map blocks, image blocks)
* block: 32 lanes (images) x ``filters_per_block/filters_per_thread`` rows
* per thread: an accumulator register tile
  ``[filters_per_thread][imgs_per_thread]``
* inner loop: over the filter taps of the block's shared-memory slice.
"""

from __future__ import annotations

from math import ceil

import numpy as np

from ..tensors.layout import CHWN
from ..tensors.tensor import Tensor4D
from .base import ConvSpec

_F = np.float32


def direct_conv_chwn_emulated(
    x: Tensor4D,
    weights: np.ndarray,
    spec: ConvSpec,
    imgs_per_thread: int | None = None,
    filters_per_thread: int = 4,
    filters_per_block: int = 16,
) -> Tensor4D:
    """Run the blocked CHWN direct convolution.

    ``imgs_per_thread`` defaults to the cuda-convnet rule
    ``min(4, N // 32)`` (Section IV.A: at N=128 each thread handles four
    images so their data is reused in the register file).
    """
    if spec.groups != 1:
        raise ValueError("the emulation covers single-group convolutions")
    if x.layout != CHWN:
        raise ValueError(f"expected CHWN input, got {x.layout}")
    n, ci, h, w = spec.n, spec.ci, spec.h, spec.w
    if x.desc.dims != (n, ci, h, w):
        raise ValueError(f"input dims {x.desc.dims} != spec")
    weights = np.asarray(weights, dtype=_F)
    warp = 32
    if imgs_per_thread is None:
        imgs_per_thread = max(1, min(4, n // warp))
    img_block = warp * imgs_per_thread

    data = x.data  # physical (C, H, W, N)
    pad = spec.pad
    ho, wo, s = spec.out_h, spec.out_w, spec.stride
    out = np.zeros((spec.co, ho, wo, n), dtype=_F)  # CHWN output

    n_img_blocks = ceil(n / img_block)
    n_filter_blocks = ceil(spec.co / filters_per_block)
    spatial = ho * wo

    for bz in range(n_img_blocks):  # grid.z: image blocks
        img0 = bz * img_block
        imgs = min(img_block, n - img0)
        for by in range(n_filter_blocks):  # grid.y: output-map blocks
            f0 = by * filters_per_block
            f1 = min(spec.co, f0 + filters_per_block)
            # The block stages its filter slice through shared memory once.
            shared_filters = weights[f0:f1]  # [fpb, ci, fh, fw]
            for pos in range(spatial):  # grid.x: output positions
                oy, ox = divmod(pos, wo)
                # accumulator register tile: [filters, images]
                acc = np.zeros((f1 - f0, imgs), dtype=np.float64)
                for c in range(ci):
                    for fy in range(spec.fh):
                        iy = oy * s + fy - pad
                        if not 0 <= iy < h:
                            continue
                        for fx in range(spec.fw):
                            ix = ox * s + fx - pad
                            if not 0 <= ix < w:
                                continue
                            # One coalesced warp load: 32*ipt consecutive
                            # N-elements of the (c, iy, ix) pixel row.
                            pixel = data[c, iy, ix, img0 : img0 + imgs]
                            taps = shared_filters[:, c, fy, fx]
                            # register-tile FMA: every filter reuses the
                            # loaded pixels, every image reuses the taps
                            acc += np.outer(taps, pixel)
                out[f0:f1, oy, ox, img0 : img0 + imgs] = acc.astype(_F)

    desc = spec.out_desc(CHWN)
    return Tensor4D(out, desc)


def register_tile_reuse(spec: ConvSpec, imgs_per_thread: int | None = None) -> float:
    """FMAs per load instruction inside the register tile.

    The quantity behind Fig. 4a: per inner step a thread issues
    ``imgs_per_thread`` pixel loads and ``filters_per_thread`` tap loads,
    then performs their full outer product of FMAs.  At N >= 128 (4 images
    per thread) each instruction feeds 2 FMAs; at N = 32 (one image) only
    0.8 — the reuse collapse that makes CHWN batch-sensitive.
    """
    warp = 32
    if imgs_per_thread is None:
        imgs_per_thread = max(1, min(4, spec.n // warp))
    filters_per_thread = 4
    fmas = filters_per_thread * imgs_per_thread
    loads = imgs_per_thread + filters_per_thread
    return fmas / loads
