"""GPU kernel models for pooling in each layout (paper Sections IV.B, V.A).

Four implementations:

* :class:`PoolingCHWN` — cuda-convnet: one thread per output, warps span the
  unit-stride N dimension, every load fully coalesced.  Overlapped windows
  still re-load shared input (Fig. 8); a fraction of that redundancy hits
  L2 (short reuse distance between adjacent output warps).
* :class:`PoolingNCHWLinear` — Caffe: flat thread indexing over
  (N, C, Ho, Wo).  Warp lanes step the W dimension with the pooling stride,
  so loads are strided/un-coalesced; the traced coalescing unit counts the
  resulting transaction inflation.  Caffe's training kernel also stores an
  argmax mask, doubling store traffic.
* :class:`PoolingNCHWBlockPerRow` — cuDNN v4 era: one block per output row
  (blockDim.x = Wo).  The tiny blocks cap resident warps far below the
  bandwidth saturation point, which is why the paper measures cuDNN pooling
  at ~42 GB/s average.
* :class:`PoolingCoarsenedCHWN` — the paper's optimization: each thread
  computes a ``ux x uy`` output tile and keeps the tile's input footprint in
  registers, trading register pressure (occupancy) for DRAM traffic.  The
  auto-tuner in ``repro.core.autotune`` hill-climbs (ux, uy).
"""

from __future__ import annotations

from math import ceil

import numpy as np

from ..gpusim.cache import SetAssociativeCache
from ..gpusim.coalescing import analyze_warps
from ..gpusim.device import DeviceSpec
from ..gpusim.kernel import KernelModel, LaunchConfig, MemoryProfile
from ..gpusim.trace import sample_indices, transaction_stream
from .base import PoolSpec
from .pooling import tile_footprint

_ITEM = 4


class _PoolingKernelBase(KernelModel):
    structural_exclude = frozenset({"_profile_cache"})

    def __init__(self, spec: PoolSpec) -> None:
        self.spec = spec
        self._profile_cache: dict[str, MemoryProfile] = {}

    def flop_count(self) -> float:
        return self.spec.flops

    def alu_efficiency(self, device: DeviceSpec) -> float:
        return 0.25  # comparison/add ops only; pooling is never compute bound

    def memory_profile(self, device: DeviceSpec) -> MemoryProfile:
        cached = self._profile_cache.get(device.name)
        if cached is None:
            cached = self._build_profile(device)
            self._profile_cache[device.name] = cached
        return cached

    def _build_profile(self, device: DeviceSpec) -> MemoryProfile:
        raise NotImplementedError


class PoolingCHWN(_PoolingKernelBase):
    """cuda-convnet pooling: coalesced along N, no register tiling."""

    name = "pool-chwn"
    outputs_per_block_y = 4

    def launch_config(self, device: DeviceSpec) -> LaunchConfig:
        s = self.spec
        grid = (
            ceil(s.out_h * s.out_w / self.outputs_per_block_y),
            s.c,
            ceil(s.n / device.warp_size),
        )
        return LaunchConfig(
            grid=grid,
            block=(device.warp_size, self.outputs_per_block_y, 1),
            regs_per_thread=24,
        )

    def _build_profile(self, device: DeviceSpec) -> MemoryProfile:
        s = self.spec
        loads = float(s.out_elements * s.window * s.window * _ITEM)
        unique = float(s.in_desc().nbytes)
        redundant = max(0.0, loads - unique)
        # Adjacent output warps re-touch overlap within a short window;
        # the arch profile says how much of that the L2 absorbs.
        hit = device.arch.pool_l2_locality * redundant / loads if loads else 0.0
        return MemoryProfile(
            load_bytes=loads,
            store_bytes=float(s.out_desc().nbytes),
            load_transactions=loads / 32.0,
            store_transactions=s.out_desc().nbytes / 32.0,
            l2_hit_rate=hit,
        )


class PoolingCoarsenedCHWN(_PoolingKernelBase):
    """The paper's optimized pooling: ``ux x uy`` outputs per thread."""

    name = "pool-chwn-coarsened"

    def __init__(self, spec: PoolSpec, ux: int = 2, uy: int = 2) -> None:
        super().__init__(spec)
        if ux <= 0 or uy <= 0:
            raise ValueError("expansion factors must be positive")
        self.ux, self.uy = ux, uy

    def _regs_per_thread(self) -> int:
        # The register working set holds one image's tile footprint plus
        # accumulators — the pressure that eventually throttles occupancy
        # and makes the auto-tuner's search non-trivial.
        footprint = tile_footprint(self.spec, self.ux, self.uy)
        return min(255, 24 + footprint + self.ux * self.uy)

    def launch_config(self, device: DeviceSpec) -> LaunchConfig:
        s = self.spec
        tiles = ceil(s.out_h / self.uy) * ceil(s.out_w / self.ux)
        grid = (
            ceil(tiles / self.outputs_per_block_y),
            s.c,
            ceil(s.n / device.warp_size),
        )
        return LaunchConfig(
            grid=grid,
            block=(device.warp_size, self.outputs_per_block_y, 1),
            regs_per_thread=self._regs_per_thread(),
        )

    outputs_per_block_y = 4

    def _build_profile(self, device: DeviceSpec) -> MemoryProfile:
        s = self.spec
        tiles_y = ceil(s.out_h / self.uy)
        tiles_x = ceil(s.out_w / self.ux)
        footprint = tile_footprint(s, self.ux, self.uy)
        loads = float(s.n * s.c * tiles_y * tiles_x * footprint * _ITEM)
        unique = float(s.in_desc().nbytes)
        redundant = max(0.0, loads - unique)
        hit = device.arch.pool_l2_locality * redundant / loads if loads else 0.0
        return MemoryProfile(
            load_bytes=loads,
            store_bytes=float(s.out_desc().nbytes),
            load_transactions=loads / 32.0,
            store_transactions=s.out_desc().nbytes / 32.0,
            l2_hit_rate=hit,
        )


class _TracedNCHWPooling(_PoolingKernelBase):
    """Shared traced-load machinery for the NCHW kernels."""

    max_sample_warps = 512
    max_l2_transactions = 200_000
    writes_mask = False

    def _thread_coords(self, thread_ids: np.ndarray) -> tuple[np.ndarray, ...]:
        """Map flat thread ids to (n, c, ho, wo); subclasses override for
        their block shape."""
        s = self.spec
        wo = thread_ids % s.out_w
        rest = thread_ids // s.out_w
        ho = rest % s.out_h
        rest //= s.out_h
        c = rest % s.c
        n = rest // s.c
        return n, c, ho, wo

    def _stacked_loads(self, device: DeviceSpec) -> tuple[np.ndarray, int, int]:
        """(sampled warp-load trace, grid warps, sampled warps).

        The trace has one warp instruction per window tap — shape
        ``(sampled_warps * taps, lanes)`` — with inactive lanes at -1.
        """
        s = self.spec
        total_threads = s.out_elements
        warp = device.warp_size
        n_warps = ceil(total_threads / warp)
        sampled = sample_indices(n_warps, self.max_sample_warps)
        lanes = np.arange(warp, dtype=np.int64)
        tid = sampled[:, None] * warp + lanes
        valid = tid < total_threads
        tid = np.where(valid, tid, 0)
        n, c, ho, wo = self._thread_coords(tid)
        taps = [
            (fy, fx) for fy in range(s.window) for fx in range(s.window)
        ]
        rows = []
        for fy, fx in taps:
            # ceil-mode windows clip at the input edge (inactive taps)
            hi = np.minimum(ho * s.stride + fy, s.h - 1)
            wi = np.minimum(wo * s.stride + fx, s.w - 1)
            addr = (((n * s.c + c) * s.h + hi) * s.w + wi) * _ITEM
            rows.append(np.where(valid, addr, np.int64(-1)))
        # One warp instruction per tap: (warps * taps, lanes).
        return np.concatenate(rows, axis=0), n_warps, len(sampled)

    def _build_profile(self, device: DeviceSpec) -> MemoryProfile:
        s = self.spec
        stacked, n_warps, n_sampled = self._stacked_loads(device)
        report = analyze_warps(stacked, device, access_bytes=_ITEM)
        load_trans = report.transactions * (n_warps / n_sampled)
        loads = float(s.out_elements * s.window * s.window * _ITEM)
        store_factor = 2.0 if self.writes_mask else 1.0
        stores = float(s.out_desc().nbytes) * store_factor
        # Strided multi-map streams thrash L2 across warp instructions (the
        # concurrent working set spans N*C feature maps), so fetched
        # transactions are charged to DRAM in the timing model.  The cache
        # replay below *measures* that thrash on the sampled stream and is
        # reported as a diagnostic.
        stream = transaction_stream(
            stacked, device.transaction_bytes, self.max_l2_transactions
        )
        traced_hit = 0.0
        if stream.size:
            l2 = SetAssociativeCache.l2_for(device)
            traced_hit = float(l2.access_stream(stream).mean())
        return MemoryProfile(
            load_bytes=loads,
            store_bytes=stores,
            load_transactions=load_trans,
            store_transactions=stores / 32.0,
            l2_hit_rate=0.0,
            traced_l2_hit_rate=traced_hit,
        )


class PoolingNCHWLinear(_TracedNCHWPooling):
    """Caffe pooling: flat 512-thread blocks over (N, C, Ho, Wo), with the
    training-mode argmax mask store."""

    name = "pool-nchw-linear"
    writes_mask = True

    def launch_config(self, device: DeviceSpec) -> LaunchConfig:
        total = self.spec.out_elements
        return LaunchConfig(
            grid=(ceil(total / 512), 1, 1), block=(512, 1, 1), regs_per_thread=24
        )


class PoolingNCHWBlockPerRow(_TracedNCHWPooling):
    """cuDNN v4 era pooling: one block per feature-map slice, threads laid
    out over the (ho, wo) plane of that slice.

    Inherits the strided-load trace *and* pays per-map padding: each map's
    output plane is rounded up to whole warps, so small planes (e.g. 6x6
    after a 13x13 input) leave a large fraction of lanes idle — the
    occupancy shortfall behind cuDNN's ~42 GB/s average in Fig. 6.
    """

    name = "pool-nchw-rowblock"

    def _plane(self) -> int:
        return self.spec.out_h * self.spec.out_w

    def _padded_plane(self, device: DeviceSpec) -> int:
        warp = device.warp_size
        return ceil(self._plane() / warp) * warp

    def launch_config(self, device: DeviceSpec) -> LaunchConfig:
        s = self.spec
        padded = self._padded_plane(device)
        block = min(padded, 256)
        return LaunchConfig(
            grid=(ceil(padded / block), 1, s.n * s.c),
            block=(block, 1, 1),
            regs_per_thread=24,
            active_lane_fraction=self._plane() / padded,
        )

    def _stacked_loads(self, device: DeviceSpec) -> tuple[np.ndarray, int, int]:
        # Thread t covers map t // padded_plane, output t % padded_plane
        # (lanes beyond the plane are predicated off).
        s = self.spec
        padded = self._padded_plane(device)
        total_threads = s.n * s.c * padded
        warp = device.warp_size
        n_warps = ceil(total_threads / warp)
        sampled = sample_indices(n_warps, self.max_sample_warps)
        lanes = np.arange(warp, dtype=np.int64)
        tid = sampled[:, None] * warp + lanes
        plane_idx = tid % padded
        active = plane_idx < self._plane()
        plane_idx = np.minimum(plane_idx, self._plane() - 1)
        map_idx = np.minimum(tid // padded, s.n * s.c - 1)
        wo = plane_idx % s.out_w
        ho = plane_idx // s.out_w
        rows = []
        for fy in range(s.window):
            for fx in range(s.window):
                hi = np.minimum(ho * s.stride + fy, s.h - 1)
                wi = np.minimum(wo * s.stride + fx, s.w - 1)
                addr = ((map_idx * s.h + hi) * s.w + wi) * _ITEM
                rows.append(np.where(active, addr, np.int64(-1)))
        return np.concatenate(rows, axis=0), n_warps, len(sampled)


POOL_IMPLEMENTATIONS = ("chwn", "chwn-coarsened", "nchw-linear", "nchw-rowblock")


def make_pool_kernel(
    spec: PoolSpec, implementation: str, coarsen: tuple[int, int] = (2, 2)
) -> KernelModel:
    """Build the kernel model for one pooling implementation."""
    if implementation == "chwn":
        return PoolingCHWN(spec)
    if implementation == "chwn-coarsened":
        return PoolingCoarsenedCHWN(spec, *coarsen)
    if implementation == "nchw-linear":
        return PoolingNCHWLinear(spec)
    if implementation == "nchw-rowblock":
        return PoolingNCHWBlockPerRow(spec)
    raise ValueError(
        f"unknown implementation {implementation!r}; choose from {POOL_IMPLEMENTATIONS}"
    )
