"""Fully-connected layer: numeric forward and its GEMM kernel model.

The paper treats fully-connected layers as plain matrix multiplications
("a standard matrix multiplication is used to implement a fully-connected
layer"), so the kernel model is just a :class:`~repro.layers.gemm.GemmKernel`
with the layer's shape.  The flatten that precedes the first FC layer is
where a 4-D tensor's layout stops mattering — useful to the planner, which
never schedules a transform after the last conv/pool layer.
"""

from __future__ import annotations

import numpy as np

from ..gpusim.kernel import KernelModel
from .base import FCSpec
from .gemm import GemmKernel

_F = np.float32


def fc_forward(
    x: np.ndarray, weights: np.ndarray, bias: np.ndarray | None = None
) -> np.ndarray:
    """(N, in) @ (in, out) + bias."""
    x = np.asarray(x, dtype=_F)
    weights = np.asarray(weights, dtype=_F)
    if x.ndim != 2 or weights.ndim != 2:
        raise ValueError("fc_forward expects 2-D input and weights")
    if x.shape[1] != weights.shape[0]:
        raise ValueError(
            f"input features {x.shape[1]} != weight rows {weights.shape[0]}"
        )
    out = x @ weights
    if bias is not None:
        bias = np.asarray(bias, dtype=_F)
        if bias.shape != (weights.shape[1],):
            raise ValueError(f"bias shape {bias.shape} != ({weights.shape[1]},)")
        out = out + bias
    return out.astype(_F)


def flatten_4d(x: np.ndarray) -> np.ndarray:
    """Flatten logical (N, C, H, W) activations into (N, C*H*W) rows."""
    x = np.asarray(x)
    if x.ndim != 4:
        raise ValueError(f"expected 4-D activations, got ndim={x.ndim}")
    return np.ascontiguousarray(x.reshape(x.shape[0], -1))


def make_fc_kernel(spec: FCSpec) -> KernelModel:
    """GEMM kernel model for an FC layer: (out x in) @ (in x N)."""
    return GemmKernel(m=spec.out_features, n=spec.n, k=spec.in_features, name="fc-gemm")


def make_fc_weights(spec: FCSpec, seed: int = 2) -> tuple[np.ndarray, np.ndarray]:
    """Seeded (in, out) weights and (out,) bias."""
    rng = np.random.default_rng(seed)
    scale = 1.0 / np.sqrt(spec.in_features)
    w = (rng.standard_normal((spec.in_features, spec.out_features)) * scale).astype(_F)
    b = (rng.standard_normal(spec.out_features) * 0.01).astype(_F)
    return w, b
