"""Executable emulation of the paper's fused softmax kernel (Fig. 9).

One thread block per image (``dim3 blocks(num_img)``), ``block_threads``
cooperating threads.  The emulation walks the listing's structure:

1. strided cooperative load of the row into the shared tile
   (``for i = tidx; i < num_category; i += blockDim``);
2. step 1: tree max-reduction through ``tmp_tile`` with per-level
   synchronization (``max_reduction_thread_block``);
3. step 2: strided subtraction of ``tmp_tile[0]``;
4. step 3: strided exponential;
5. step 4: tree sum-reduction;
6. step 5: strided normalization and write-back.

Tested equal to the reference softmax for any (block size, category count),
including non-power-of-two categories and categories < block size.
"""

from __future__ import annotations

import numpy as np

from .base import SoftmaxSpec

_F = np.float32


def _tree_reduce(values: np.ndarray, op) -> float:
    """Shared-memory style tree reduction with power-of-two strides.

    ``values`` is the per-thread partial array (one slot per thread); the
    loop halves the active thread count each level, like the
    ``__syncthreads``-separated levels of the kernel's reduction helper.
    """
    tmp = values.copy()
    active = 1
    while active < tmp.size:
        active <<= 1
    active >>= 1
    # Pad the virtual tile up to the next power of two with identity slots.
    while active >= 1:
        for tid in range(active):
            partner = tid + active
            if partner < tmp.size:
                tmp[tid] = op(tmp[tid], tmp[partner])
        active >>= 1
    return float(tmp[0])


def softmax_fused_blockwise(
    x: np.ndarray, spec: SoftmaxSpec, block_threads: int = 128
) -> np.ndarray:
    """Execute the Fig. 9 kernel structure numerically."""
    if block_threads <= 0:
        raise ValueError("block_threads must be positive")
    x = np.asarray(x, dtype=_F)
    if x.shape != (spec.n, spec.categories):
        raise ValueError(f"input shape {x.shape} != {(spec.n, spec.categories)}")
    c = spec.categories
    out = np.empty_like(x)

    for block in range(spec.n):  # one thread block per image
        in_tile = np.empty(c, dtype=_F)
        # cooperative strided load (line 6-7 of the listing)
        for tidx in range(min(block_threads, c)):
            in_tile[tidx::block_threads] = x[block, tidx::block_threads]

        # step 1: per-thread partial max, then tree reduction in tmp_tile
        partial = np.full(min(block_threads, c), -np.inf, dtype=_F)
        for tidx in range(partial.size):
            partial[tidx] = in_tile[tidx::block_threads].max()
        maxv = _tree_reduce(partial, max)

        # step 2 + 3: shift and exponentiate, strided over threads
        for tidx in range(min(block_threads, c)):
            seg = in_tile[tidx::block_threads]
            in_tile[tidx::block_threads] = np.exp(seg - maxv)

        # step 4: per-thread partial sums, tree reduction
        partial_sum = np.zeros(min(block_threads, c), dtype=np.float64)
        for tidx in range(partial_sum.size):
            partial_sum[tidx] = in_tile[tidx::block_threads].sum(dtype=np.float64)
        sumv = _tree_reduce(partial_sum, lambda a, b: a + b)

        # step 5: normalize and write back
        for tidx in range(min(block_threads, c)):
            out[block, tidx::block_threads] = in_tile[tidx::block_threads] / _F(sumv)
    return out
