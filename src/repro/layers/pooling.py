"""Numeric pooling: plain and thread-coarsened implementations.

Pooling uses ceil-mode output extents (Caffe convention): the last window
may overhang the input and is clipped.  Max pooling reduces over the valid
elements; average pooling divides by the *valid* element count.

The coarsened variant computes identical results but mirrors the structure
of the paper's optimized kernel (Section V.A): each "thread" produces a
``ux x uy`` tile of outputs from a single load of the tile's input
footprint, which is what enables the register-file reuse on the GPU.  The
numeric twin exists so the test suite can prove the restructuring is
value-preserving for every expansion factor the auto-tuner may choose.
"""

from __future__ import annotations

import numpy as np

from ..tensors.layout import DataLayout
from ..tensors.tensor import Tensor4D
from .base import PoolSpec

_F = np.float32


def _check_input(x: np.ndarray, spec: PoolSpec) -> np.ndarray:
    x = np.asarray(x, dtype=_F)
    expected = (spec.n, spec.c, spec.h, spec.w)
    if x.shape != expected:
        raise ValueError(f"input shape {x.shape} != spec {expected}")
    return x


def _window_view(x: np.ndarray, spec: PoolSpec, oy: int, ox: int) -> np.ndarray:
    """The (clipped) strided plane of window offset (oy, ox):
    element ``[.., h_out, w_out]`` is input ``[.., h_out*S+oy, w_out*S+ox]``,
    padded with NaN where the offset falls outside the input."""
    s = spec.stride
    ho, wo = spec.out_h, spec.out_w
    plane = np.full((spec.n, spec.c, ho, wo), np.nan, dtype=_F)
    h_valid = min(ho, -(-(spec.h - oy) // s))
    w_valid = min(wo, -(-(spec.w - ox) // s))
    if h_valid > 0 and w_valid > 0:
        plane[:, :, :h_valid, :w_valid] = x[
            :, :, oy : oy + (h_valid - 1) * s + 1 : s, ox : ox + (w_valid - 1) * s + 1 : s
        ]
    return plane


def pool_plain(x: np.ndarray, spec: PoolSpec) -> np.ndarray:
    """Reference pooling over logical (N, C, H, W) input."""
    x = _check_input(x, spec)
    planes = np.stack(
        [
            _window_view(x, spec, oy, ox)
            for oy in range(spec.window)
            for ox in range(spec.window)
        ]
    )
    if spec.op == "max":
        with np.errstate(invalid="ignore"):
            return np.nanmax(planes, axis=0).astype(_F)
    with np.errstate(invalid="ignore"):
        return np.nanmean(planes.astype(np.float64), axis=0).astype(_F)


def pool_coarsened(
    x: np.ndarray, spec: PoolSpec, ux: int = 2, uy: int = 2
) -> np.ndarray:
    """Pooling with a working set of ``ux x uy`` outputs per 'thread'.

    Iterates output tiles the way the coarsened GPU kernel does: load the
    tile's input footprint once, then reduce each window from that cached
    footprint.  Results match :func:`pool_plain` exactly.
    """
    if ux <= 0 or uy <= 0:
        raise ValueError("expansion factors must be positive")
    x = _check_input(x, spec)
    ho, wo, s, f = spec.out_h, spec.out_w, spec.stride, spec.window
    out = np.empty((spec.n, spec.c, ho, wo), dtype=_F)
    for ty in range(0, ho, uy):
        for tx in range(0, wo, ux):
            ny, nx = min(uy, ho - ty), min(ux, wo - tx)
            # One clipped load of the tile's input footprint (register cache
            # on the GPU).
            fy0, fx0 = ty * s, tx * s
            fy1 = min(spec.h, fy0 + (ny - 1) * s + f)
            fx1 = min(spec.w, fx0 + (nx - 1) * s + f)
            footprint = x[:, :, fy0:fy1, fx0:fx1]
            for oy in range(ny):
                for ox in range(nx):
                    window = footprint[
                        :, :, oy * s : oy * s + f, ox * s : ox * s + f
                    ]
                    if spec.op == "max":
                        out[:, :, ty + oy, tx + ox] = window.max(axis=(2, 3))
                    else:
                        out[:, :, ty + oy, tx + ox] = window.mean(
                            axis=(2, 3), dtype=np.float64
                        ).astype(_F)
    return out


def tile_footprint(spec: PoolSpec, ux: int, uy: int) -> int:
    """Input elements loaded per ``ux x uy`` output tile.

    Without coarsening every output loads ``window**2`` elements; the tile
    shares its overlap, which is the traffic reduction the optimization
    banks on (Fig. 8).
    """
    s, f = spec.stride, spec.window
    return ((ux - 1) * s + f) * ((uy - 1) * s + f)


def pool_forward(
    x: Tensor4D,
    spec: PoolSpec,
    coarsen: tuple[int, int] | None = None,
    out_layout: DataLayout | None = None,
) -> Tensor4D:
    """Layout-aware pooling on a :class:`Tensor4D`."""
    logical = x.as_nchw()
    if coarsen is None:
        out = pool_plain(logical, spec)
    else:
        out = pool_coarsened(logical, spec, *coarsen)
    return Tensor4D.from_nchw(out, out_layout or x.layout)
