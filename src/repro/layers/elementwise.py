"""Elementwise layers (ReLU) and local response normalization.

These are the "other layers such as normalization and fully-connected
layers" of AlexNet (Fig. 15).  They are layout-agnostic streaming kernels:
the same bytes move regardless of axis order, so the planner treats them as
transparent (they preserve whatever layout their input uses).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

import numpy as np

from ..gpusim.device import DeviceSpec
from ..gpusim.kernel import KernelModel, LaunchConfig, MemoryProfile

_F = np.float32


def relu_forward(x: np.ndarray) -> np.ndarray:
    """max(x, 0), any shape."""
    return np.maximum(np.asarray(x, dtype=_F), 0.0)


@dataclass(frozen=True)
class LRNSpec:
    """AlexNet-style across-channel local response normalization."""

    depth: int = 5
    alpha: float = 1e-4
    beta: float = 0.75
    k: float = 2.0

    def __post_init__(self) -> None:
        if self.depth <= 0 or self.depth % 2 == 0:
            raise ValueError("LRN depth must be a positive odd number")


def lrn_forward(x: np.ndarray, spec: LRNSpec = LRNSpec()) -> np.ndarray:
    """LRN over the channel axis of logical (N, C, H, W) input."""
    x = np.asarray(x, dtype=_F)
    if x.ndim != 4:
        raise ValueError(f"expected 4-D activations, got ndim={x.ndim}")
    half = spec.depth // 2
    sq = x.astype(np.float64) ** 2
    c = x.shape[1]
    scale = np.full_like(sq, spec.k)
    for offset in range(-half, half + 1):
        lo_src, hi_src = max(0, offset), c + min(0, offset)
        lo_dst, hi_dst = max(0, -offset), c + min(0, -offset)
        scale[:, lo_dst:hi_dst] += (spec.alpha / spec.depth) * sq[:, lo_src:hi_src]
    return (x / (scale**spec.beta)).astype(_F)


class ElementwiseKernel(KernelModel):
    """A streaming kernel: read each element, write each element.

    ``reads_per_element`` > 1 covers LRN's channel window (the window is
    re-read from registers in real kernels; we charge L2 hits for it).
    """

    def __init__(
        self, elements: int, name: str = "elementwise", reads_per_element: float = 1.0
    ) -> None:
        if elements <= 0:
            raise ValueError("elements must be positive")
        self.elements = elements
        self.name = name
        self.reads_per_element = reads_per_element

    def launch_config(self, device: DeviceSpec) -> LaunchConfig:
        return LaunchConfig(
            grid=(ceil(self.elements / 256), 1, 1),
            block=(256, 1, 1),
            regs_per_thread=16,
        )

    def flop_count(self) -> float:
        return float(self.elements * max(1.0, self.reads_per_element))

    def alu_efficiency(self, device: DeviceSpec) -> float:
        return 0.25

    def memory_profile(self, device: DeviceSpec) -> MemoryProfile:
        nbytes = 4.0 * self.elements
        loads = nbytes * self.reads_per_element
        hit = max(0.0, 1.0 - nbytes / loads) if loads else 0.0
        return MemoryProfile(
            load_bytes=loads,
            store_bytes=nbytes,
            load_transactions=loads / 32.0,
            store_transactions=nbytes / 32.0,
            l2_hit_rate=hit,
        )


def make_relu_kernel(elements: int) -> ElementwiseKernel:
    return ElementwiseKernel(elements, name="relu")


def make_lrn_kernel(elements: int, spec: LRNSpec = LRNSpec()) -> ElementwiseKernel:
    return ElementwiseKernel(elements, name="lrn", reads_per_element=float(spec.depth))
