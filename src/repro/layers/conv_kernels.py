"""GPU kernel models for the convolution implementations the paper compares.

* :class:`DirectConvCHWN` — cuda-convnet's direct convolution on the CHWN
  layout: a warp spans 32 images (coalesced along N), each thread register-
  tiles up to 4 images, so efficiency ramps with batch size and saturates at
  N = 128 on Kepler (the Fig. 4a sensitivity).
* :class:`Im2colGemmNCHW` — Caffe/cuDNN's matrix-multiplication path on
  NCHW: an unroll kernel materializes the (Ci*Fh*Fw) x (N*Ho*Wo) patch
  matrix, then a GEMM whose shape efficiency collapses when C is small
  (the Fig. 4b sensitivity).
* :class:`FFTConvNCHW` — cuDNN v4's FFT and FFT-tiling modes: frequency-
  domain padding and workspace (the Fig. 5 OOM failures), a per-bin batched
  product whose reduction is only Ci, and multi-pass launch overheads.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, log2

from scipy.fft import next_fast_len

from ..gpusim.device import DeviceSpec
from ..gpusim.kernel import ComposedKernel, KernelModel, LaunchConfig, MemoryProfile
from .base import ConvSpec
from .gemm import GemmKernel, gemm_shape_efficiency


class ConvUnsupportedError(RuntimeError):
    """The requested implementation cannot run this layer configuration
    (e.g. cuDNN's FFT algorithms require unit stride)."""


class DirectConvCHWN(KernelModel):
    """cuda-convnet2 style direct convolution on the CHWN layout."""

    name = "conv-direct-chwn"
    #: output feature maps computed per thread block (filter tile held in
    #: shared memory, re-applied across the spatial positions of the block)
    co_tile = 16
    #: spatial outputs per thread block along Ho*Wo
    spatial_tile = 16

    def __init__(self, spec: ConvSpec) -> None:
        self.spec = spec

    def _imgs_per_thread(self, device: DeviceSpec) -> int:
        """Register-tiled images per thread: 4 at N >= 128, fewer below —
        the reuse loss that makes CHWN sensitive to batch size."""
        return max(1, min(4, self.spec.n // device.warp_size))

    def launch_config(self, device: DeviceSpec) -> LaunchConfig:
        s = self.spec
        ipt = self._imgs_per_thread(device)
        grid = (
            ceil(s.out_h * s.out_w / self.spatial_tile),
            ceil(s.co / self.co_tile),
            ceil(s.n / (device.warp_size * ipt)),
        )
        return LaunchConfig(
            grid=grid,
            block=(device.warp_size, 4, 1),
            regs_per_thread=64,
            smem_per_block=8 * 1024,
        )

    def flop_count(self) -> float:
        return self.spec.flops

    def alu_efficiency(self, device: DeviceSpec) -> float:
        arch = device.arch
        n_factor = min(1.0, self.spec.n / arch.direct_conv_n_saturation)
        taps = self.spec.taps
        tap_factor = taps / (taps + arch.direct_conv_tap_half)
        return arch.direct_conv_peak_eff * n_factor * tap_factor

    def memory_profile(self, device: DeviceSpec) -> MemoryProfile:
        s = self.spec
        in_bytes = float(s.in_desc().nbytes)
        out_bytes = float(s.out_desc().nbytes)
        # Each Co tile sweeps the whole input once; filters are re-fetched
        # per (image-block, spatial-block).
        input_loads = in_bytes * ceil(s.co / self.co_tile)
        ipt = self._imgs_per_thread(device)
        filter_loads = (
            float(s.filter_bytes)
            * ceil(s.n / (device.warp_size * ipt))
            * ceil(s.out_h * s.out_w / self.spatial_tile)
        )
        return MemoryProfile.coalesced(
            load_bytes=input_loads + filter_loads, store_bytes=out_bytes
        )


class Im2colKernel(KernelModel):
    """The matrix-unroll step of the NCHW path.

    Writes the full (Ci*Fh*Fw) x (Ho*Wo) patch matrix per image; reads the
    input with high L2 reuse (each element appears in up to Fh*Fw/stride^2
    patches) but the *stores* are the pure overhead the paper blames for
    NCHW's losses at small C.
    """

    name = "conv-im2col-unroll"

    def __init__(self, spec: ConvSpec) -> None:
        self.spec = spec

    def unroll_bytes(self) -> float:
        s = self.spec
        # each group unrolls its own column matrix
        return 4.0 * s.n * s.groups * s.taps * s.out_h * s.out_w

    def launch_config(self, device: DeviceSpec) -> LaunchConfig:
        s = self.spec
        total = s.n * s.taps * s.out_h * s.out_w
        return LaunchConfig(
            grid=(ceil(total / 256), 1, 1), block=(256, 1, 1), regs_per_thread=24
        )

    def flop_count(self) -> float:
        return 0.0

    def memory_profile(self, device: DeviceSpec) -> MemoryProfile:
        s = self.spec
        unroll = self.unroll_bytes()
        in_bytes = float(s.in_desc().nbytes)
        # Every patch element is a load; the unique footprint is the input,
        # so the surplus hits L2.
        hit = max(0.0, min(0.95, 1.0 - in_bytes / unroll))
        return MemoryProfile(
            load_bytes=unroll,
            store_bytes=unroll,
            load_transactions=unroll / 32.0,
            store_transactions=unroll / 32.0,
            l2_hit_rate=hit,
        )

    def workspace_bytes(self) -> float:
        # Caffe materializes the column buffer one image at a time; only a
        # pipeline depth's worth of per-image buffers is ever live.
        s = self.spec
        per_image = 4.0 * s.taps * s.out_h * s.out_w
        pipeline_depth = min(s.n, 8)
        return per_image * pipeline_depth


def im2col_gemm_kernels(spec: ConvSpec) -> list[KernelModel]:
    """The two-kernel NCHW pipeline: unroll, then one merged GEMM.

    cuDNN merges the batch into the GEMM's column dimension ("higher
    parallelism due to dimensions merging"), so N_cols = N * Ho * Wo.
    """
    gemm = GemmKernel(
        m=spec.co, n=spec.n * spec.out_h * spec.out_w, k=spec.taps, name="conv-gemm"
    )
    return [Im2colKernel(spec), gemm]


class Im2colGemmNCHW(ComposedKernel):
    """Caffe/cuDNN matrix-multiplication convolution on NCHW."""

    def __init__(self, spec: ConvSpec) -> None:
        super().__init__(kernels=im2col_gemm_kernels(spec), name="conv-mm-nchw")
        self.spec = spec


@dataclass(frozen=True)
class _FFTGeometry:
    """Padded-transform geometry shared by the FFT variants."""

    pad_h: int
    pad_w: int
    tiles: int  # number of tiles per feature map (1 for untiled)

    @property
    def points(self) -> int:
        """Padded frequency-domain points per feature map."""
        return self.pad_h * self.pad_w * self.tiles


class FFTConvNCHW(KernelModel):
    """cuDNN v4 FFT convolution (``tiled=False``) and FFT-tiling.

    Models the three-stage pipeline of Section IV.A: forward FFTs of inputs
    and zero-padded filters, a per-frequency-bin batched product (reduction
    length = Ci only), and an inverse FFT.  ``n_launches`` folds the many
    cuFFT passes and plan bookkeeping into equivalent launch overheads.
    """

    #: 32x32 frequency tiles, as in cuDNN v4's FFT-Tiling option
    tile_extent = 32

    def __init__(self, spec: ConvSpec, tiled: bool = False) -> None:
        if spec.stride != 1:
            raise ConvUnsupportedError(
                f"cuDNN FFT convolution requires unit stride (got {spec.stride})"
            )
        self.spec = spec
        self.tiled = tiled
        self.name = "conv-fft-tiled-nchw" if tiled else "conv-fft-nchw"
        self.n_launches = 80 if tiled else 60
        self.geometry = self._geometry()

    def _geometry(self) -> _FFTGeometry:
        s = self.spec
        if not self.tiled:
            return _FFTGeometry(
                pad_h=next_fast_len(s.h + 2 * s.pad),
                pad_w=next_fast_len(s.w + 2 * s.pad),
                tiles=1,
            )
        t = self.tile_extent
        useful = t - s.fh + 1
        if useful <= 0:
            raise ConvUnsupportedError(
                f"filter {s.fh} does not fit the {t}x{t} FFT tile"
            )
        tiles = ceil(s.out_h / useful) * ceil(s.out_w / useful)
        return _FFTGeometry(pad_h=t, pad_w=t, tiles=tiles)

    def _map_counts(self) -> tuple[int, int, int]:
        s = self.spec
        return (s.n * s.ci, s.co * s.ci, s.n * s.co)

    def flop_count(self) -> float:
        s = self.spec
        pts = self.geometry.points
        in_maps, filt_maps, out_maps = self._map_counts()
        # 2-D FFT at ~10 * P^2 * log2(P_line) flops per map (row+col passes).
        line = max(2.0, (self.geometry.pad_h * self.geometry.pad_w) ** 0.5)
        fft_flops = (in_maps + filt_maps + out_maps) * 10.0 * pts * log2(line)
        # Per-bin complex product-accumulate over Ci: 8 flops per MAC.
        product_flops = 8.0 * s.n * s.co * s.ci * (pts / 2.0)
        return fft_flops + product_flops

    def alu_efficiency(self, device: DeviceSpec) -> float:
        # The pipeline's throughput is gated by the weaker of the transform
        # stages and the Ci-reduction product.
        arch = device.arch
        ci = self.spec.ci
        product_factor = ci / (ci + arch.fft_product_k_half)
        return arch.fft_stage_eff * max(product_factor, 0.05)

    def memory_profile(self, device: DeviceSpec) -> MemoryProfile:
        s = self.spec
        pts = self.geometry.points
        in_maps, filt_maps, out_maps = self._map_counts()
        # Frequency-domain rfft footprint: ~ pts/2 complex = pts * 4 bytes.
        freq_bytes = 4.0
        traffic = pts * freq_bytes * (
            2.0 * in_maps + 2.0 * filt_maps + 3.0 * out_maps
        )
        real_bytes = float(
            s.in_desc().nbytes + s.filter_bytes + s.out_desc().nbytes
        )
        total = traffic + real_bytes
        # Stage traffic streams with no reuse; split it 60/40 read/write.
        return MemoryProfile.coalesced(load_bytes=0.6 * total, store_bytes=0.4 * total)

    def launch_config(self, device: DeviceSpec) -> LaunchConfig:
        in_maps, filt_maps, out_maps = self._map_counts()
        blocks = ceil((in_maps + filt_maps + out_maps) * self.geometry.points / 256)
        return LaunchConfig(
            grid=(max(blocks, 1), 1, 1), block=(256, 1, 1), regs_per_thread=40
        )

    def workspace_bytes(self) -> float:
        # 4.5x is the Titan Black ArchProfile's fft_workspace_factor; kept
        # as a plain default here because workspace is checked before the
        # device is known in some planner paths.  The engine applies the
        # check against the actual card capacity.
        in_maps, filt_maps, out_maps = self._map_counts()
        per_map = self.geometry.points * 8.0  # complex64
        streaming_factor = 0.5 if self.tiled else 1.0  # tiling streams batches
        return streaming_factor * 4.5 * (in_maps + filt_maps + out_maps) * per_map


class _NhwcTransposeKernel(KernelModel):
    """One NHWC <-> NCHW repack pass (per-image channel transpose).

    Coalesced on both sides via tiled shared memory, but still a full
    round trip over the tensor.
    """

    def __init__(self, nbytes: float, name: str) -> None:
        self.nbytes = float(nbytes)
        self.name = name

    def launch_config(self, device: DeviceSpec) -> LaunchConfig:
        return LaunchConfig(
            grid=(ceil(self.nbytes / 4 / 256), 1, 1),
            block=(32, 8, 1),
            regs_per_thread=24,
            smem_per_block=32 * 33 * 4,
        )

    def flop_count(self) -> float:
        return 0.0

    def memory_profile(self, device: DeviceSpec) -> MemoryProfile:
        return MemoryProfile.coalesced(load_bytes=self.nbytes, store_bytes=self.nbytes)

    def workspace_bytes(self) -> float:
        return self.nbytes


class Im2colGemmNHWC(ComposedKernel):
    """cuDNN's NHWC path of the era: repack to NCHW, run the NCHW pipeline,
    repack the output.

    This is the mechanism behind the paper's footnote 1 ("its NCHW layout
    outperforms its NHWC layout"): NHWC pays the NCHW cost plus two tensor
    round trips.
    """

    def __init__(self, spec: ConvSpec) -> None:
        kernels: list[KernelModel] = [
            _NhwcTransposeKernel(spec.in_desc().nbytes, "nhwc-to-nchw"),
            *im2col_gemm_kernels(spec),
            _NhwcTransposeKernel(spec.out_desc().nbytes, "nchw-to-nhwc"),
        ]
        super().__init__(kernels=kernels, name="conv-mm-nhwc")
        self.spec = spec


CONV_IMPLEMENTATIONS = (
    "direct", "im2col", "im2col-nhwc", "fft", "fft-tiled", "winograd"
)


def make_conv_kernel(spec: ConvSpec, implementation: str) -> KernelModel:
    """Build the kernel model for one convolution implementation."""
    if implementation == "direct":
        return DirectConvCHWN(spec)
    if implementation == "im2col":
        return Im2colGemmNCHW(spec)
    if implementation == "im2col-nhwc":
        return Im2colGemmNHWC(spec)
    if implementation == "fft":
        return FFTConvNCHW(spec, tiled=False)
    if implementation == "fft-tiled":
        return FFTConvNCHW(spec, tiled=True)
    if implementation == "winograd":
        from .winograd import WinogradConvNCHW

        return WinogradConvNCHW(spec)
    raise ValueError(
        f"unknown implementation {implementation!r}; choose from {CONV_IMPLEMENTATIONS}"
    )


def gemm_efficiency_for(spec: ConvSpec, device: DeviceSpec) -> float:
    """Shape efficiency of the merged conv GEMM (diagnostic helper)."""
    return gemm_shape_efficiency(
        device, spec.co, spec.n * spec.out_h * spec.out_w, spec.taps
    )
