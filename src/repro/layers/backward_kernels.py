"""GPU kernel models for the backward pass.

The paper's footnote 1 says the backward pass uses "the same data structure
and convolution operation" — so backward kernels inherit the forward
kernels' access patterns and layout preferences.  Concretely:

* conv backward = two convolution-shaped kernels (gradient w.r.t. data and
  w.r.t. filters), each with the forward kernel's FLOP count and a slightly
  lower efficiency (scatter/atomics on the filter reduction);
* pooling backward = a mask read plus an input-sized scatter, same layout
  behaviour as the forward kernel;
* FC backward = two GEMMs (dX and dW) plus a bias reduction;
* softmax backward folds into the fused kernel (cross-entropy's
  ``p - onehot`` needs one extra pass at most).

These models feed the ``training=True`` mode of the whole-network schemes.
"""

from __future__ import annotations

from ..gpusim.device import DeviceSpec
from ..gpusim.kernel import KernelModel, LaunchConfig, MemoryProfile
from .base import ConvSpec, FCSpec, PoolSpec, SoftmaxSpec
from .conv_kernels import make_conv_kernel
from .fc import make_fc_kernel
from .gemm import GemmKernel
from .pooling_kernels import make_pool_kernel
from .softmax_kernels import make_softmax_kernel


class ScaledKernel(KernelModel):
    """A kernel derived from another by scaling work and traffic.

    Used for backward passes that share the forward kernel's structure:
    same launch geometry and access pattern, different constant factors.
    """

    def __init__(
        self,
        base: KernelModel,
        name: str,
        flop_scale: float = 1.0,
        mem_scale: float = 1.0,
        eff_scale: float = 1.0,
        n_launches: int | None = None,
    ) -> None:
        if min(flop_scale, mem_scale, eff_scale) <= 0:
            raise ValueError("scales must be positive")
        self.base = base
        self.name = name
        self.flop_scale = flop_scale
        self.mem_scale = mem_scale
        self.eff_scale = eff_scale
        self.n_launches = base.n_launches if n_launches is None else n_launches

    def launch_config(self, device: DeviceSpec) -> LaunchConfig:
        return self.base.launch_config(device)

    def flop_count(self) -> float:
        return self.base.flop_count() * self.flop_scale

    def alu_efficiency(self, device: DeviceSpec) -> float:
        return min(1.0, self.base.alu_efficiency(device) * self.eff_scale)

    def memory_profile(self, device: DeviceSpec) -> MemoryProfile:
        return self.base.memory_profile(device).scaled(self.mem_scale)

    def workspace_bytes(self) -> float:
        return self.base.workspace_bytes()


def conv_backward_kernels(
    spec: ConvSpec, implementation: str
) -> list[KernelModel]:
    """Backward-data and backward-filter kernels for one conv layer.

    Both gradients perform the same multiply-accumulate volume as the
    forward pass; the filter gradient's cross-image reduction costs some
    efficiency (the standard wgrad penalty).
    """
    fwd = make_conv_kernel(spec, implementation)
    return [
        ScaledKernel(fwd, f"{fwd.name}-bwd-data", eff_scale=0.95),
        ScaledKernel(fwd, f"{fwd.name}-bwd-filter", eff_scale=0.85, mem_scale=1.1),
    ]


def pool_backward_kernel(
    spec: PoolSpec, implementation: str, coarsen: tuple[int, int] = (2, 2)
) -> KernelModel:
    """Backward pooling: read the output gradient (+ argmax mask for max
    pooling), scatter an input-sized gradient — about 1.5x the forward
    traffic with the same access pattern."""
    fwd = make_pool_kernel(spec, implementation, coarsen)
    return ScaledKernel(fwd, f"{fwd.name}-bwd", flop_scale=1.0, mem_scale=1.5)


def fc_backward_kernels(spec: FCSpec) -> list[KernelModel]:
    """dX = dY @ W^T and dW = X^T @ dY, plus the dB reduction folded into
    the second GEMM's epilogue."""
    del_fwd = make_fc_kernel(spec)  # keeps naming consistent
    dx = GemmKernel(m=spec.in_features, n=spec.n, k=spec.out_features, name="fc-bwd-dx")
    dw = GemmKernel(
        m=spec.in_features, n=spec.out_features, k=spec.n, name="fc-bwd-dw"
    )
    del del_fwd
    return [dx, dw]


def softmax_backward_kernel(spec: SoftmaxSpec, implementation: str) -> KernelModel:
    """Cross-entropy + softmax backward is one streaming pass over (N, C)."""
    fwd = make_softmax_kernel(spec, implementation)
    return ScaledKernel(fwd, f"{fwd.name}-bwd", mem_scale=1.0, n_launches=1)


#: time multiplier applied to layout transforms in training mode: the
#: activation relayout on the way forward is matched by a gradient relayout
#: on the way back.
TRAINING_TRANSFORM_FACTOR = 2.0
