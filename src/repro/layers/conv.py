"""Numeric convolution: direct, im2col+GEMM, and FFT implementations.

These are the exact (NumPy) counterparts of the three GPU strategies the
paper compares — cuda-convnet's direct convolution, Caffe/cuDNN's matrix
multiplication after an im2col unroll, and cuDNN v4's FFT modes.  All three
compute Equation 1 (a cross-correlation, as usual in CNNs) and are
cross-validated by the property-based tests.

All functions take/return *logical* (N, C, H, W) arrays; the layout-aware
entry point :func:`conv_forward` accepts a :class:`~repro.tensors.Tensor4D`
in any storage layout.
"""

from __future__ import annotations

import numpy as np
from scipy import fft as sfft

from ..tensors.layout import DataLayout, NCHW
from ..tensors.tensor import Tensor4D, TensorDesc
from .base import ConvSpec

_F = np.float32


def _check_shapes(x: np.ndarray, weights: np.ndarray, spec: ConvSpec) -> None:
    expect_x = (spec.n, spec.ci, spec.h, spec.w)
    expect_w = (spec.co, spec.ci // spec.groups, spec.fh, spec.fw)
    if x.shape != expect_x:
        raise ValueError(f"input shape {x.shape} != spec {expect_x}")
    if weights.shape != expect_w:
        raise ValueError(f"filter shape {weights.shape} != spec {expect_w}")


def _pad(x: np.ndarray, pad: int) -> np.ndarray:
    if pad == 0:
        return x
    return np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))


def grouped(conv_fn):
    """Wrap a single-group convolution so it handles grouped specs: each
    group convolves its channel slice independently (AlexNet's two-tower
    structure)."""

    def wrapper(x: np.ndarray, weights: np.ndarray, spec: ConvSpec) -> np.ndarray:
        if spec.groups == 1:
            return conv_fn(x, weights, spec)
        _check_shapes(np.asarray(x), np.asarray(weights), spec)
        g = spec.groups
        sub = spec.group_spec()
        ci_g, co_g = spec.ci // g, spec.co // g
        outs = [
            conv_fn(
                np.ascontiguousarray(x[:, k * ci_g : (k + 1) * ci_g]),
                np.ascontiguousarray(weights[k * co_g : (k + 1) * co_g]),
                sub,
            )
            for k in range(g)
        ]
        return np.concatenate(outs, axis=1)

    wrapper.__name__ = f"grouped_{conv_fn.__name__}"
    return wrapper


def _conv_direct_one_group(x: np.ndarray, weights: np.ndarray, spec: ConvSpec) -> np.ndarray:
    _check_shapes(x, weights, spec)
    xp = _pad(np.asarray(x, dtype=_F), spec.pad)
    ho, wo, s = spec.out_h, spec.out_w, spec.stride
    out = np.zeros((spec.n, spec.co, ho, wo), dtype=_F)
    for fh in range(spec.fh):
        for fw in range(spec.fw):
            patch = xp[:, :, fh : fh + (ho - 1) * s + 1 : s, fw : fw + (wo - 1) * s + 1 : s]
            out += np.einsum(
                "nchw,oc->nohw", patch, weights[:, :, fh, fw], optimize=True
            ).astype(_F)
    return out


conv_direct = grouped(_conv_direct_one_group)
conv_direct.__doc__ = """Direct convolution: accumulate one filter tap at a time.

Mirrors the structure of the cuda-convnet kernel (each tap is one pass
over a shifted input window) while staying fully vectorized.  Grouped
specs run one slice per group.
"""


def im2col(x: np.ndarray, spec: ConvSpec) -> np.ndarray:
    """Unroll input patches into a ``(N, Ci*Fh*Fw, Ho*Wo)`` matrix.

    This is the "matrix unroll step (along H and W)" the paper identifies as
    the NCHW path's overhead at small C.
    """
    xp = _pad(np.asarray(x, dtype=_F), spec.pad)
    ho, wo, s = spec.out_h, spec.out_w, spec.stride
    windows = np.lib.stride_tricks.sliding_window_view(
        xp, (spec.fh, spec.fw), axis=(2, 3)
    )  # (N, Ci, Hp-fh+1, Wp-fw+1, fh, fw)
    windows = windows[:, :, ::s, ::s][:, :, :ho, :wo]
    # (N, Ci, fh, fw, Ho, Wo) -> (N, Ci*fh*fw, Ho*Wo)
    cols = windows.transpose(0, 1, 4, 5, 2, 3).reshape(
        spec.n, spec.ci * spec.fh * spec.fw, ho * wo
    )
    return np.ascontiguousarray(cols)


def _conv_im2col_one_group(x: np.ndarray, weights: np.ndarray, spec: ConvSpec) -> np.ndarray:
    _check_shapes(x, weights, spec)
    cols = im2col(x, spec)  # (N, K, Ho*Wo)
    wmat = weights.reshape(spec.co, spec.taps)  # (Co, K)
    out = np.einsum("ok,nkp->nop", wmat, cols, optimize=True)
    return out.reshape(spec.n, spec.co, spec.out_h, spec.out_w).astype(_F)


conv_im2col = grouped(_conv_im2col_one_group)
conv_im2col.__doc__ = """im2col + GEMM convolution (the Caffe/cuDNN-MM strategy)."""


def _conv_fft_one_group(x: np.ndarray, weights: np.ndarray, spec: ConvSpec) -> np.ndarray:
    """FFT convolution: pointwise product in the frequency domain.

    Requires unit stride, like the cuDNN FFT algorithm (see
    ``repro.layers.conv_kernels.FFTUnsupportedError``).  Filters are padded
    to the input size — the memory overhead the paper highlights.
    """
    _check_shapes(x, weights, spec)
    if spec.stride != 1:
        raise ValueError("FFT convolution requires stride 1")
    xp = _pad(np.asarray(x, dtype=np.float64), spec.pad)
    hp, wp = xp.shape[2], xp.shape[3]
    fh, fw = spec.fh, spec.fw
    fft_h = sfft.next_fast_len(hp)
    fft_w = sfft.next_fast_len(wp)
    xf = sfft.rfft2(xp, s=(fft_h, fft_w))  # (N, Ci, fh?, ...)
    wf = sfft.rfft2(weights.astype(np.float64), s=(fft_h, fft_w))
    # Cross-correlation = convolution with the conjugate spectrum.
    prod = np.einsum("ncij,ocij->noij", xf, np.conj(wf), optimize=True)
    full = sfft.irfft2(prod, s=(fft_h, fft_w))
    # Valid cross-correlation region starts at (0, 0); frequency-domain
    # conjugation shifts the kernel anchor, so no offset is needed.
    out = full[:, :, : spec.out_h, : spec.out_w]
    del fh, fw
    return np.ascontiguousarray(out, dtype=_F)


conv_fft = grouped(_conv_fft_one_group)
conv_fft.__doc__ = _conv_fft_one_group.__doc__


def _conv_winograd_lazy(x, weights, spec):
    from .winograd import conv_winograd

    return conv_winograd(x, weights, spec)


_IMPLEMENTATIONS = {
    "direct": conv_direct,
    "im2col": conv_im2col,
    "fft": conv_fft,
    "winograd": _conv_winograd_lazy,
}


def conv_forward(
    x: Tensor4D,
    weights: np.ndarray,
    spec: ConvSpec,
    implementation: str = "direct",
    out_layout: DataLayout | None = None,
) -> Tensor4D:
    """Layout-aware convolution on a :class:`Tensor4D`.

    The output is stored in ``out_layout`` (defaults to the input's layout),
    so chains of layers keep their data in the planner-chosen layout exactly
    as the integrated framework does.
    """
    try:
        impl = _IMPLEMENTATIONS[implementation]
    except KeyError:
        raise ValueError(
            f"unknown convolution implementation {implementation!r}; "
            f"choose from {sorted(_IMPLEMENTATIONS)}"
        ) from None
    out = impl(x.as_nchw(), np.asarray(weights, dtype=_F), spec)
    return Tensor4D.from_nchw(out, out_layout or x.layout)


def make_filters(spec: ConvSpec, seed: int = 1) -> np.ndarray:
    """Seeded Gaussian filters shaped (Co, Ci/groups, Fh, Fw)."""
    rng = np.random.default_rng(seed)
    scale = 1.0 / np.sqrt(spec.taps)
    shape = (spec.co, spec.ci // spec.groups, spec.fh, spec.fw)
    return (rng.standard_normal(shape) * scale).astype(_F)


def conv_input_desc(spec: ConvSpec, layout: DataLayout = NCHW) -> TensorDesc:
    """Convenience re-export of :meth:`ConvSpec.in_desc`."""
    return spec.in_desc(layout)
