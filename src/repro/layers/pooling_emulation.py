"""Executable emulation of the CHWN pooling kernels (Sections IV.B, V.A).

Completes the emulation set (transform, softmax, direct conv): the
cuda-convnet pooling kernel and the paper's coarsened variant, executed
with their native CHWN data order and warp structure.

* :func:`pool_chwn_emulated` — one thread per output element, warps span
  32 consecutive images along the unit-stride N axis; every load in the
  window loop is one coalesced warp access.
* :func:`pool_chwn_coarsened_emulated` — each thread owns a ``ux x uy``
  output tile; the tile's input footprint is loaded into a register array
  once and every window reduces from it (Section V.A's working-set
  expansion).

Both are bit-compatible with the logical reference `pool_plain`.
"""

from __future__ import annotations

from math import ceil

import numpy as np

from ..tensors.layout import CHWN
from ..tensors.tensor import Tensor4D
from .base import PoolSpec

_F = np.float32


def _reduce(window: np.ndarray, op: str, count: int) -> np.ndarray:
    if op == "max":
        return window.max(axis=0)
    return (window.sum(axis=0, dtype=np.float64) / count).astype(_F)


def pool_chwn_emulated(x: Tensor4D, spec: PoolSpec) -> Tensor4D:
    """cuda-convnet pooling on physical (C, H, W, N) data."""
    if x.layout != CHWN:
        raise ValueError(f"expected CHWN input, got {x.layout}")
    if x.desc.dims != (spec.n, spec.c, spec.h, spec.w):
        raise ValueError("input dims do not match the pooling spec")
    data = x.data  # (C, H, W, N): the N axis is unit-stride
    ho, wo, s, f = spec.out_h, spec.out_w, spec.stride, spec.window
    out = np.empty((spec.c, ho, wo, spec.n), dtype=_F)
    warp = 32
    n_warps = ceil(spec.n / warp)

    for c in range(spec.c):  # grid.y in the kernel model
        for oy in range(ho):
            for ox in range(wo):
                y0, x0 = oy * s, ox * s
                y1, x1 = min(spec.h, y0 + f), min(spec.w, x0 + f)
                count = (y1 - y0) * (x1 - x0)
                for wid in range(n_warps):  # warps along the batch
                    lo = wid * warp
                    hi = min(spec.n, lo + warp)
                    # Each (iy, ix) tap is ONE coalesced warp load of the
                    # 32 consecutive N-elements at data[c, iy, ix, lo:hi].
                    taps = data[c, y0:y1, x0:x1, lo:hi].reshape(count, hi - lo)
                    out[c, oy, ox, lo:hi] = _reduce(taps, spec.op, count)
    return Tensor4D(out, spec.out_desc(CHWN))


def pool_chwn_coarsened_emulated(
    x: Tensor4D, spec: PoolSpec, ux: int = 2, uy: int = 2
) -> Tensor4D:
    """The Section V.A kernel: register-cached input tile per thread."""
    if ux <= 0 or uy <= 0:
        raise ValueError("expansion factors must be positive")
    if x.layout != CHWN:
        raise ValueError(f"expected CHWN input, got {x.layout}")
    if x.desc.dims != (spec.n, spec.c, spec.h, spec.w):
        raise ValueError("input dims do not match the pooling spec")
    data = x.data
    ho, wo, s, f = spec.out_h, spec.out_w, spec.stride, spec.window
    out = np.empty((spec.c, ho, wo, spec.n), dtype=_F)
    warp = 32
    n_warps = ceil(spec.n / warp)

    for c in range(spec.c):
        for ty in range(0, ho, uy):
            for tx in range(0, wo, ux):
                ny, nx = min(uy, ho - ty), min(ux, wo - tx)
                fy0, fx0 = ty * s, tx * s
                fy1 = min(spec.h, fy0 + (ny - 1) * s + f)
                fx1 = min(spec.w, fx0 + (nx - 1) * s + f)
                for wid in range(n_warps):
                    lo = wid * warp
                    hi = min(spec.n, lo + warp)
                    # ONE load of the tile footprint into the "register
                    # file"; every window below reads registers, not DRAM.
                    regs = data[c, fy0:fy1, fx0:fx1, lo:hi]
                    for oy in range(ny):
                        for ox in range(nx):
                            win = regs[
                                oy * s : oy * s + f, ox * s : ox * s + f
                            ]
                            count = win.shape[0] * win.shape[1]
                            out[c, ty + oy, tx + ox, lo:hi] = _reduce(
                                win.reshape(count, hi - lo), spec.op, count
                            )
    return Tensor4D(out, spec.out_desc(CHWN))


def footprint_loads(spec: PoolSpec, ux: int, uy: int) -> tuple[int, int]:
    """(loads without coarsening, loads with a ux x uy tile) per image slice.

    The counters behind Fig. 8: the plain kernel re-loads every window
    element; the coarsened kernel loads each tile footprint once.
    """
    plain = spec.out_h * spec.out_w * spec.window * spec.window
    tiles_y = ceil(spec.out_h / uy)
    tiles_x = ceil(spec.out_w / ux)
    from .pooling import tile_footprint

    coarse = tiles_y * tiles_x * tile_footprint(spec, ux, uy)
    return plain, coarse
