"""Executable emulation of the NCHW im2col + tiled-GEMM convolution.

Completes the emulation set: the Caffe/cuDNN strategy, run the way the GPU
does — an unroll kernel materializes each image's column buffer one thread
per element (the traffic the paper blames at small C), then a 64x64-tile
GEMM marches over the merged matrix staging operand tiles through a
"shared memory" scratch pair (the structure the model's GEMM traffic
formula assumes: each operand re-read once per tile row/column of the
other).

Verified bit-compatible with ``conv_im2col`` for arbitrary shapes.
"""

from __future__ import annotations

from math import ceil

import numpy as np

from .base import ConvSpec
from .conv import im2col

_F = np.float32
TILE = 64


def tiled_gemm_emulated(
    a: np.ndarray, b: np.ndarray, tile: int = TILE
) -> tuple[np.ndarray, int]:
    """C = A @ B via explicit (tile x tile) blocking.

    Returns (C, operand_tile_loads): the number of operand tiles staged
    through shared memory — the counter the kernel model's traffic formula
    is built on.
    """
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError(f"bad GEMM shapes {a.shape} @ {b.shape}")
    m, k = a.shape
    _, n = b.shape
    c = np.zeros((m, n), dtype=np.float64)
    tile_loads = 0
    for i0 in range(0, m, tile):
        i1 = min(m, i0 + tile)
        for j0 in range(0, n, tile):
            j1 = min(n, j0 + tile)
            acc = np.zeros((i1 - i0, j1 - j0), dtype=np.float64)
            for k0 in range(0, k, tile):
                k1 = min(k, k0 + tile)
                # stage one tile of each operand through "shared memory"
                sh_a = a[i0:i1, k0:k1].astype(np.float64)
                sh_b = b[k0:k1, j0:j1].astype(np.float64)
                tile_loads += 2
                acc += sh_a @ sh_b
            c[i0:i1, j0:j1] = acc
    return c.astype(_F), tile_loads


def conv_im2col_emulated(
    x: np.ndarray, weights: np.ndarray, spec: ConvSpec, tile: int = TILE
) -> tuple[np.ndarray, dict]:
    """The full NCHW pipeline with counters.

    Returns (output, counters) where counters holds the unroll buffer size
    and GEMM tile loads — the quantities behind ``Im2colKernel`` and
    ``GemmKernel``'s memory profiles.
    """
    if spec.groups != 1:
        raise ValueError("the emulation covers single-group convolutions")
    x = np.asarray(x, dtype=_F)
    if x.shape != (spec.n, spec.ci, spec.h, spec.w):
        raise ValueError("input shape does not match the spec")
    cols = im2col(x, spec)  # (N, K, Ho*Wo) — the materialized unroll
    # cuDNN's dimension merging: columns of all images side by side.
    merged = np.ascontiguousarray(
        cols.transpose(1, 0, 2).reshape(spec.taps, spec.n * spec.out_h * spec.out_w)
    )
    wmat = weights.reshape(spec.co, spec.taps)
    out2d, tile_loads = tiled_gemm_emulated(wmat, merged, tile)
    out = (
        out2d.reshape(spec.co, spec.n, spec.out_h, spec.out_w)
        .transpose(1, 0, 2, 3)
    )
    counters = {
        "unroll_elements": int(cols.size),
        "gemm_tile_loads": tile_loads,
        "gemm_shape": (spec.co, spec.n * spec.out_h * spec.out_w, spec.taps),
    }
    return np.ascontiguousarray(out, dtype=_F), counters


def expected_tile_loads(m: int, n: int, k: int, tile: int = TILE) -> int:
    """The kernel model's closed-form tile count, cross-checked in tests."""
    return 2 * ceil(m / tile) * ceil(n / tile) * ceil(k / tile)
