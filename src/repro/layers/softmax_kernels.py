"""GPU kernel models for the softmax/classifier layer (paper Section V.B).

The baseline libraries implement the five steps of Section II.A as five
kernels with only N threads each (the outer batch loop is the only
parallelized loop).  Two pathologies follow, both modelled here:

* inter-kernel data passes through off-chip memory five times over;
* N threads (128 is typical) cannot hide memory latency, so each kernel is
  latency bound — the source of the paper's "the number of threads for the
  kernel is only 128".

The optimized kernel fuses all five steps (intermediates live in shared
memory/registers) and injects threads to parallelize the inner reduction
loops, restoring both locality and parallelism.
"""

from __future__ import annotations

from math import ceil

from ..gpusim.device import DeviceSpec
from ..gpusim.kernel import ComposedKernel, KernelModel, LaunchConfig, MemoryProfile
from .base import SoftmaxSpec

_ITEM = 4


class _SoftmaxStepKernel(KernelModel):
    """One of the five baseline kernels: N threads, each looping over C.

    ``reads``/``writes`` count full (N x C) matrix passes (a per-image
    vector read/write counts as 1/C of a pass and is ignored).  Lane
    addresses stride by C*4 bytes, so every load is its own transaction;
    successive iterations of a thread revisit the same 32-byte segment,
    which the L2 serves (the per-kernel working set is tiny).
    """

    def __init__(self, spec: SoftmaxSpec, step: int, reads: int, writes: int) -> None:
        self.spec = spec
        self.step = step
        self.reads = reads
        self.writes = writes
        self.name = f"softmax-step{step}"

    def launch_config(self, device: DeviceSpec) -> LaunchConfig:
        block = min(self.spec.n, 256)
        return LaunchConfig(
            grid=(ceil(self.spec.n / block), 1, 1),
            block=(block, 1, 1),
            regs_per_thread=20,
        )

    def flop_count(self) -> float:
        return float(self.spec.elements * (self.reads + self.writes))

    def alu_efficiency(self, device: DeviceSpec) -> float:
        return 0.25

    def memory_profile(self, device: DeviceSpec) -> MemoryProfile:
        s = self.spec
        passes = self.reads + self.writes
        bytes_per_pass = float(s.nbytes)
        # Uncoalesced: one transaction per element access.  A thread's next
        # seven iterations reuse the fetched segment via L2.
        load_trans = float(s.elements * self.reads)
        lane_segments = 32 // _ITEM
        hit = (lane_segments - 1) / lane_segments if self.reads else 0.0
        return MemoryProfile(
            load_bytes=bytes_per_pass * self.reads,
            store_bytes=bytes_per_pass * self.writes,
            load_transactions=load_trans,
            store_transactions=float(s.elements * self.writes),
            l2_hit_rate=hit,
            dependent_iterations=float(s.categories),
        )


def five_kernel_softmax(spec: SoftmaxSpec) -> ComposedKernel:
    """The cuda-convnet / Caffe baseline: five dependent kernel launches."""
    steps = [
        _SoftmaxStepKernel(spec, 1, reads=1, writes=0),  # max reduction
        _SoftmaxStepKernel(spec, 2, reads=1, writes=1),  # shift
        _SoftmaxStepKernel(spec, 3, reads=1, writes=1),  # exp
        _SoftmaxStepKernel(spec, 4, reads=1, writes=0),  # sum reduction
        _SoftmaxStepKernel(spec, 5, reads=1, writes=1),  # normalize
    ]
    return ComposedKernel(kernels=list(steps), name="softmax-5kernel")


class CudnnSoftmax(KernelModel):
    """cuDNN's softmax: one block (a single warp) per image.

    Fused enough to make three passes instead of ten, but the one-warp
    blocks leave the device under-occupied — the paper's BL_Best tops out
    at 58.3 GB/s.
    """

    name = "softmax-cudnn"
    n_launches = 1

    def __init__(self, spec: SoftmaxSpec) -> None:
        self.spec = spec

    def launch_config(self, device: DeviceSpec) -> LaunchConfig:
        return LaunchConfig(
            grid=(self.spec.n, 1, 1),
            block=(device.warp_size, 1, 1),
            regs_per_thread=24,
        )

    def flop_count(self) -> float:
        return self.spec.flops

    def alu_efficiency(self, device: DeviceSpec) -> float:
        return 0.25

    def memory_profile(self, device: DeviceSpec) -> MemoryProfile:
        s = self.spec
        # Three read passes (max, exp+sum, normalize) and one write pass,
        # all coalesced along C within the warp.
        reads, writes = 3, 1
        return MemoryProfile.coalesced(
            load_bytes=float(s.nbytes * reads),
            store_bytes=float(s.nbytes * writes),
            dependent_iterations=float(
                max(1, ceil(s.categories / 32)) * (reads + writes)
            ),
        )


class FusedSoftmax(KernelModel):
    """Kernel fusion only (ablation point): one launch, intermediates in
    shared memory, but still one thread per image."""

    name = "softmax-fused"
    n_launches = 1

    def __init__(self, spec: SoftmaxSpec) -> None:
        self.spec = spec

    def launch_config(self, device: DeviceSpec) -> LaunchConfig:
        block = min(self.spec.n, 256)
        smem = min(self.spec.categories, 11 * 1024) * _ITEM
        return LaunchConfig(
            grid=(ceil(self.spec.n / block), 1, 1),
            block=(block, 1, 1),
            regs_per_thread=28,
            smem_per_block=min(smem, 48 * 1024 - 1024),
        )

    def flop_count(self) -> float:
        return self.spec.flops

    def alu_efficiency(self, device: DeviceSpec) -> float:
        return 0.25

    def memory_profile(self, device: DeviceSpec) -> MemoryProfile:
        s = self.spec
        lane_segments = 32 // _ITEM
        return MemoryProfile(
            load_bytes=float(s.nbytes),
            store_bytes=float(s.nbytes),
            load_transactions=float(s.elements),
            store_transactions=float(s.elements),
            l2_hit_rate=(lane_segments - 1) / lane_segments,
            dependent_iterations=float(s.categories),
        )


class FusedParallelSoftmax(KernelModel):
    """The paper's optimized kernel (Fig. 9): fusion + injected threads.

    One thread block per image; lanes stream the category axis coalesced
    (vectorized loads), reductions run through shared memory.  Inter-step
    communication never leaves the chip.
    """

    name = "softmax-opt"
    n_launches = 1

    def __init__(self, spec: SoftmaxSpec) -> None:
        self.spec = spec

    def _block(self) -> int:
        c = self.spec.categories
        return int(min(256, max(32, 1 << (c - 1).bit_length())))

    def launch_config(self, device: DeviceSpec) -> LaunchConfig:
        block = self._block()
        # Large category counts are streamed through a bounded tile rather
        # than staging the whole row (staging 40 KB/block would pin
        # occupancy to one block per SM); the reduction buffer adds 4 KB.
        tile = min(self.spec.categories * _ITEM, 12 * 1024)
        smem = tile + 1024 * _ITEM
        return LaunchConfig(
            grid=(self.spec.n, 1, 1),
            block=(block, 1, 1),
            regs_per_thread=32,
            smem_per_block=smem,
        )

    def flop_count(self) -> float:
        return self.spec.flops

    def alu_efficiency(self, device: DeviceSpec) -> float:
        return 0.25

    def memory_profile(self, device: DeviceSpec) -> MemoryProfile:
        s = self.spec
        rounds = ceil(s.categories / self._block())
        return MemoryProfile.coalesced(
            load_bytes=float(s.nbytes),
            store_bytes=float(s.nbytes),
            dependent_iterations=float(rounds),
            access_bytes=8,  # float2-vectorized streaming
        )


SOFTMAX_IMPLEMENTATIONS = ("5kernel", "cudnn", "fused", "opt")


def make_softmax_kernel(spec: SoftmaxSpec, implementation: str) -> KernelModel:
    """Build the kernel model for one softmax implementation."""
    if implementation == "5kernel":
        return five_kernel_softmax(spec)
    if implementation == "cudnn":
        return CudnnSoftmax(spec)
    if implementation == "fused":
        return FusedSoftmax(spec)
    if implementation == "opt":
        return FusedParallelSoftmax(spec)
    raise ValueError(
        f"unknown implementation {implementation!r}; "
        f"choose from {SOFTMAX_IMPLEMENTATIONS}"
    )
