"""Numeric softmax: the paper's five-step formulation and the fused version.

Section II.A spells softmax out as five separate steps (max, shift, exp,
sum, normalize) because the baseline libraries launch one GPU kernel per
step.  :func:`softmax_five_step` mirrors that structure and returns every
intermediate so tests can pin down each stage; :func:`softmax_fused`
computes the same result in one pass, the numeric twin of the fused kernel
in Fig. 9.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import SoftmaxSpec

_F = np.float32


@dataclass(frozen=True)
class SoftmaxSteps:
    """All intermediates of the five-step algorithm (paper Section II.A)."""

    maxv: np.ndarray  # step 1: per-image maximum           (N,)
    midv1: np.ndarray  # step 2: shifted logits             (N, C)
    midv2: np.ndarray  # step 3: exponentials               (N, C)
    sumv: np.ndarray  # step 4: per-image sum               (N,)
    out: np.ndarray  # step 5: normalized probabilities     (N, C)


def _check(x: np.ndarray, spec: SoftmaxSpec) -> np.ndarray:
    x = np.asarray(x, dtype=_F)
    if x.shape != (spec.n, spec.categories):
        raise ValueError(
            f"input shape {x.shape} != spec {(spec.n, spec.categories)}"
        )
    return x


def softmax_five_step(x: np.ndarray, spec: SoftmaxSpec) -> SoftmaxSteps:
    """The baseline five-kernel algorithm, one array op per step."""
    x = _check(x, spec)
    maxv = x.max(axis=1)  # step 1
    midv1 = x - maxv[:, None]  # step 2
    midv2 = np.exp(midv1, dtype=_F)  # step 3
    sumv = midv2.sum(axis=1, dtype=np.float64).astype(_F)  # step 4
    out = (midv2 / sumv[:, None]).astype(_F)  # step 5
    return SoftmaxSteps(maxv=maxv, midv1=midv1, midv2=midv2, sumv=sumv, out=out)


def softmax_fused(x: np.ndarray, spec: SoftmaxSpec) -> np.ndarray:
    """Single-pass softmax (the fused kernel's numeric twin)."""
    x = _check(x, spec)
    shifted = x - x.max(axis=1, keepdims=True)
    e = np.exp(shifted, dtype=_F)
    return (e / e.sum(axis=1, keepdims=True, dtype=np.float64)).astype(_F)


def softmax_forward(x: np.ndarray, spec: SoftmaxSpec, fused: bool = True) -> np.ndarray:
    """Softmax over an (N, categories) logit matrix."""
    if fused:
        return softmax_fused(x, spec)
    return softmax_five_step(x, spec).out
