"""Numeric backward passes for every layer.

The paper's footnote 1: "The same data structure and convolution operation
are used in both the forward pass and backward pass for testing and training
CNNs" — layout decisions therefore apply to training as well.  This module
provides the exact gradients; every function is verified against central
finite differences in the test suite.

All arrays are logical (N, C, H, W) / (N, F); layout handling stays in the
framework layer, exactly as in the forward path.
"""

from __future__ import annotations

import numpy as np

from .base import ConvSpec, PoolSpec, SoftmaxSpec
from .elementwise import LRNSpec
from .pooling import _window_view  # shared clipped-window machinery
from .softmax import softmax_fused

_F = np.float32


# --------------------------------------------------------------------------
# convolution
# --------------------------------------------------------------------------
def conv_backward(
    x: np.ndarray, weights: np.ndarray, dout: np.ndarray, spec: ConvSpec
) -> tuple[np.ndarray, np.ndarray]:
    """Gradients of Equation 1: returns (dx, dweights).

    Mirrors the tap-at-a-time structure of ``conv_direct``: the backward
    pass walks the same (fh, fw) loop, scattering into the padded input
    gradient and reducing into the filter gradient.  Grouped convolutions
    backpropagate one channel slice per group.
    """
    if spec.groups > 1:
        g = spec.groups
        sub = spec.group_spec()
        ci_g, co_g = spec.ci // g, spec.co // g
        dxs, dws = [], []
        for k in range(g):
            dx_k, dw_k = conv_backward(
                np.ascontiguousarray(np.asarray(x)[:, k * ci_g : (k + 1) * ci_g]),
                np.ascontiguousarray(
                    np.asarray(weights)[k * co_g : (k + 1) * co_g]
                ),
                np.ascontiguousarray(
                    np.asarray(dout)[:, k * co_g : (k + 1) * co_g]
                ),
                sub,
            )
            dxs.append(dx_k)
            dws.append(dw_k)
        return np.concatenate(dxs, axis=1), np.concatenate(dws, axis=0)
    x = np.asarray(x, dtype=_F)
    weights = np.asarray(weights, dtype=_F)
    dout = np.asarray(dout, dtype=np.float64)
    expect = (spec.n, spec.co, spec.out_h, spec.out_w)
    if dout.shape != expect:
        raise ValueError(f"dout shape {dout.shape} != {expect}")
    p, s = spec.pad, spec.stride
    xp = np.pad(x, ((0, 0), (0, 0), (p, p), (p, p))).astype(np.float64)
    dxp = np.zeros_like(xp)
    dw = np.zeros((spec.co, spec.ci // spec.groups, spec.fh, spec.fw), dtype=np.float64)
    ho, wo = spec.out_h, spec.out_w
    for fh in range(spec.fh):
        for fw in range(spec.fw):
            patch = xp[:, :, fh : fh + (ho - 1) * s + 1 : s, fw : fw + (wo - 1) * s + 1 : s]
            # dW[o, c, fh, fw] = sum_n,hw dout[n,o,hw] * patch[n,c,hw]
            dw[:, :, fh, fw] = np.einsum("nohw,nchw->oc", dout, patch, optimize=True)
            # dX gets each tap's contribution scattered back.
            dxp[
                :, :, fh : fh + (ho - 1) * s + 1 : s, fw : fw + (wo - 1) * s + 1 : s
            ] += np.einsum("nohw,oc->nchw", dout, weights[:, :, fh, fw], optimize=True)
    dx = dxp[:, :, p : p + spec.h, p : p + spec.w] if p else dxp
    return dx.astype(_F), dw.astype(_F)


# --------------------------------------------------------------------------
# pooling
# --------------------------------------------------------------------------
def pool_backward(
    x: np.ndarray, dout: np.ndarray, spec: PoolSpec
) -> np.ndarray:
    """Gradient of ceil-mode pooling.

    Max pooling routes each output's gradient to the first maximal element
    of its (clipped) window, Caffe-style; average pooling distributes it
    over the window's valid elements.
    """
    x = np.asarray(x, dtype=_F)
    dout = np.asarray(dout, dtype=np.float64)
    expect = (spec.n, spec.c, spec.out_h, spec.out_w)
    if dout.shape != expect:
        raise ValueError(f"dout shape {dout.shape} != {expect}")
    taps = [(oy, ox) for oy in range(spec.window) for ox in range(spec.window)]
    planes = np.stack([_window_view(x, spec, oy, ox) for oy, ox in taps])
    dx = np.zeros((spec.n, spec.c, spec.h, spec.w), dtype=np.float64)

    if spec.op == "max":
        with np.errstate(invalid="ignore"):
            winner = np.nanargmax(planes, axis=0)  # first max wins ties
        grads = [np.where(winner == t, dout, 0.0) for t in range(len(taps))]
    else:
        valid = ~np.isnan(planes)
        counts = valid.sum(axis=0)
        share = dout / counts
        grads = [np.where(valid[t], share, 0.0) for t in range(len(taps))]

    s = spec.stride
    for t, (oy, ox) in enumerate(taps):
        g = grads[t]
        h_valid = min(spec.out_h, -(-(spec.h - oy) // s))
        w_valid = min(spec.out_w, -(-(spec.w - ox) // s))
        if h_valid <= 0 or w_valid <= 0:
            continue
        dx[
            :, :, oy : oy + (h_valid - 1) * s + 1 : s, ox : ox + (w_valid - 1) * s + 1 : s
        ] += g[:, :, :h_valid, :w_valid]
    return dx.astype(_F)


# --------------------------------------------------------------------------
# softmax / cross-entropy
# --------------------------------------------------------------------------
def softmax_backward(
    probs: np.ndarray, dout: np.ndarray, spec: SoftmaxSpec
) -> np.ndarray:
    """Jacobian-vector product of softmax: dx = p * (dy - sum(dy * p))."""
    p = np.asarray(probs, dtype=np.float64)
    dy = np.asarray(dout, dtype=np.float64)
    if p.shape != (spec.n, spec.categories) or dy.shape != p.shape:
        raise ValueError("probs/dout shape mismatch with spec")
    inner = (dy * p).sum(axis=1, keepdims=True)
    return (p * (dy - inner)).astype(_F)


def cross_entropy_loss(
    logits: np.ndarray, labels: np.ndarray, spec: SoftmaxSpec
) -> tuple[float, np.ndarray]:
    """Mean cross-entropy over the batch and its gradient w.r.t. logits.

    The classic fused form: dlogits = (softmax(logits) - onehot) / N.
    """
    labels = np.asarray(labels)
    if labels.shape != (spec.n,):
        raise ValueError(f"labels shape {labels.shape} != ({spec.n},)")
    if labels.min() < 0 or labels.max() >= spec.categories:
        raise ValueError("labels out of range")
    probs = softmax_fused(np.asarray(logits, dtype=_F), spec).astype(np.float64)
    eps = 1e-12
    loss = -np.log(probs[np.arange(spec.n), labels] + eps).mean()
    dlogits = probs.copy()
    dlogits[np.arange(spec.n), labels] -= 1.0
    dlogits /= spec.n
    return float(loss), dlogits.astype(_F)


# --------------------------------------------------------------------------
# fully connected / relu / lrn
# --------------------------------------------------------------------------
def fc_backward(
    x: np.ndarray, weights: np.ndarray, dout: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gradients of ``x @ W + b``: returns (dx, dW, db)."""
    x = np.asarray(x, dtype=np.float64)
    w = np.asarray(weights, dtype=np.float64)
    dy = np.asarray(dout, dtype=np.float64)
    if x.shape[0] != dy.shape[0] or w.shape[1] != dy.shape[1]:
        raise ValueError("fc_backward shape mismatch")
    dx = dy @ w.T
    dw = x.T @ dy
    db = dy.sum(axis=0)
    return dx.astype(_F), dw.astype(_F), db.astype(_F)


def relu_backward(x: np.ndarray, dout: np.ndarray) -> np.ndarray:
    """Gradient of max(x, 0)."""
    x = np.asarray(x)
    dy = np.asarray(dout, dtype=np.float64)
    if x.shape != dy.shape:
        raise ValueError("relu_backward shape mismatch")
    return (dy * (x > 0)).astype(_F)


def lrn_backward(
    x: np.ndarray, dout: np.ndarray, spec: LRNSpec = LRNSpec()
) -> np.ndarray:
    """Gradient of across-channel LRN.

    With ``scale = k + (alpha/n) * sum window x^2`` and ``y = x * scale^-b``:

        dx_i = dy_i * scale_i^-b
             - (2 a b / n) * x_i * sum_{j: i in window(j)} dy_j y_j / scale_j
    """
    x = np.asarray(x, dtype=np.float64)
    dy = np.asarray(dout, dtype=np.float64)
    if x.ndim != 4 or x.shape != dy.shape:
        raise ValueError("lrn_backward expects matching 4-D arrays")
    half = spec.depth // 2
    c = x.shape[1]
    scale = np.full_like(x, spec.k)
    for offset in range(-half, half + 1):
        lo_src, hi_src = max(0, offset), c + min(0, offset)
        lo_dst, hi_dst = max(0, -offset), c + min(0, -offset)
        scale[:, lo_dst:hi_dst] += (spec.alpha / spec.depth) * (
            x[:, lo_src:hi_src] ** 2
        )
    y = x * scale ** (-spec.beta)
    ratio = dy * y / scale
    acc = np.zeros_like(x)
    for offset in range(-half, half + 1):
        # channel i receives from every j with |i - j| <= half
        lo_src, hi_src = max(0, offset), c + min(0, offset)
        lo_dst, hi_dst = max(0, -offset), c + min(0, -offset)
        acc[:, lo_src:hi_src] += ratio[:, lo_dst:hi_dst]
    dx = dy * scale ** (-spec.beta) - (
        2.0 * spec.alpha * spec.beta / spec.depth
    ) * x * acc
    return dx.astype(_F)
