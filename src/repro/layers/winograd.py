"""Winograd F(2x2, 3x3) convolution — the paper's anticipated future work.

Section VII: "like the FFT approach, more techniques leveraging arithmetic
complexity may be proposed in the future for CNNs, e.g., the recent
proposal from Nervana Systems [Lavin & Gray].  They can set
state-of-the-art performance for a group of layers, for which they suit...
Nevertheless, the underlying impact from data layout remains."

This module implements that proposal for the canonical F(2x2, 3x3) tile:

* :func:`conv_winograd` — exact numeric transform-domain convolution for
  3x3 / stride-1 layers, validated against the direct implementation;
* :class:`WinogradConvNCHW` — its kernel model: 2.25x fewer
  multiply-accumulates than direct/GEMM, a per-tile batched product with
  reduction length Ci (the same shape constraint as FFT, but without the
  padding blow-up), and transform-stage traffic.

The minimal filtering algorithm uses the standard matrices

    Y = A^T [ (G g G^T) .* (B^T d B) ] A
"""

from __future__ import annotations

from math import ceil

import numpy as np

from ..gpusim.device import DeviceSpec
from ..gpusim.kernel import KernelModel, LaunchConfig, MemoryProfile
from .base import ConvSpec
from .conv_kernels import ConvUnsupportedError

_F = np.float32

# F(2x2, 3x3) transform matrices (Lavin & Gray, eq. 10-12).
G = np.array(
    [[1.0, 0.0, 0.0], [0.5, 0.5, 0.5], [0.5, -0.5, 0.5], [0.0, 0.0, 1.0]]
)
BT = np.array(
    [
        [1.0, 0.0, -1.0, 0.0],
        [0.0, 1.0, 1.0, 0.0],
        [0.0, -1.0, 1.0, 0.0],
        [0.0, 1.0, 0.0, -1.0],
    ]
)
AT = np.array([[1.0, 1.0, 1.0, 0.0], [0.0, 1.0, -1.0, -1.0]])

TILE_OUT = 2  # outputs per tile per dimension
TILE_IN = 4  # input patch per tile per dimension


def _check_winograd(spec: ConvSpec) -> None:
    if (spec.fh, spec.fw) != (3, 3):
        raise ConvUnsupportedError(
            f"Winograd F(2x2, 3x3) requires a 3x3 filter, got {spec.fh}x{spec.fw}"
        )
    if spec.stride != 1:
        raise ConvUnsupportedError("Winograd convolution requires unit stride")


def conv_winograd(x: np.ndarray, weights: np.ndarray, spec: ConvSpec) -> np.ndarray:
    """Exact F(2x2, 3x3) Winograd convolution (NumPy, fully vectorized).

    Grouped specs convolve one channel slice per group."""
    _check_winograd(spec)
    if spec.groups > 1:
        from .conv import grouped

        return grouped(conv_winograd)(x, weights, spec)
    x = np.asarray(x, dtype=_F)
    weights = np.asarray(weights, dtype=_F)
    if x.shape != (spec.n, spec.ci, spec.h, spec.w):
        raise ValueError(f"input shape {x.shape} != spec")
    p = spec.pad
    ho, wo = spec.out_h, spec.out_w
    tiles_h, tiles_w = ceil(ho / TILE_OUT), ceil(wo / TILE_OUT)
    # Pad so that every tile's 4x4 input patch exists.
    need_h = (tiles_h - 1) * TILE_OUT + TILE_IN
    need_w = (tiles_w - 1) * TILE_OUT + TILE_IN
    xp = np.pad(
        x.astype(np.float64),
        (
            (0, 0),
            (0, 0),
            (p, need_h - spec.h - p),
            (p, need_w - spec.w - p),
        ),
    )

    # Filter transform: U[co, ci, 4, 4] = G g G^T
    u = np.einsum("ij,ocjk,lk->ocil", G, weights.astype(np.float64), G, optimize=True)

    # Input transform per tile: V[n, ci, th, tw, 4, 4] = B^T d B
    patches = np.lib.stride_tricks.sliding_window_view(xp, (TILE_IN, TILE_IN), axis=(2, 3))
    patches = patches[:, :, :: TILE_OUT, :: TILE_OUT][:, :, :tiles_h, :tiles_w]
    v = np.einsum("ij,nctujk,lk->nctuil", BT, patches, BT, optimize=True)

    # Transform-domain product: M[n, co, th, tw, 4, 4] = sum_ci U .* V
    m = np.einsum("ocil,nctuil->notuil", u, v, optimize=True)

    # Output transform: Y tile = A^T M A  -> (n, co, th, tw, 2, 2)
    y = np.einsum("ij,notujk,lk->notuil", AT, m, AT, optimize=True)

    # Reassemble tiles and crop to the true output extent.
    out = y.transpose(0, 1, 2, 4, 3, 5).reshape(
        spec.n, spec.co, tiles_h * TILE_OUT, tiles_w * TILE_OUT
    )
    return np.ascontiguousarray(out[:, :, :ho, :wo], dtype=_F)


class WinogradConvNCHW(KernelModel):
    """Kernel model for a fused Winograd convolution (NCHW).

    Work: the transform-domain product does 16 multiplies per 4 outputs per
    (ci, co) pair — 2.25x fewer MACs than direct convolution — organized as
    16 batched GEMMs of shape (M=Co, N'=N*tiles, K=Ci).  Like the FFT path,
    the reduction length is Ci alone, so small-channel layers cannot feed
    it; unlike FFT, there is no frequency-domain padding, so the workspace
    stays proportional to the activations.
    """

    name = "conv-winograd-nchw"
    n_launches = 4  # input transform, filter transform, product, inverse

    def __init__(self, spec: ConvSpec) -> None:
        _check_winograd(spec)
        self.spec = spec

    def _tiles(self) -> int:
        return ceil(self.spec.out_h / TILE_OUT) * ceil(self.spec.out_w / TILE_OUT)

    def flop_count(self) -> float:
        s = self.spec
        tiles = self._tiles()
        product = 2.0 * 16 * s.n * tiles * s.co * s.ci
        # transforms: 32 fused multiply-adds per 4x4 tile-matrix transform
        transforms = 2.0 * 32 * (
            s.n * s.ci * tiles + s.co * s.ci + s.n * s.co * tiles
        )
        return product + transforms

    def alu_efficiency(self, device: DeviceSpec) -> float:
        s = self.spec
        arch = device.arch
        # The fused product keeps tiles in registers (Neon-style), escaping
        # cuBLAS's generic K-shape penalty, but its reduction is still Ci:
        # shallow layers cannot feed it (same constraint as FFT).
        f_k = s.ci / (s.ci + arch.winograd_k_half)
        f_m = s.co / (s.co + 8.0)
        n_cols = s.n * self._tiles()
        f_n = n_cols / (n_cols + 64.0)
        return arch.winograd_peak_eff * f_k * f_m * f_n

    def memory_profile(self, device: DeviceSpec) -> MemoryProfile:
        s = self.spec
        tiles = self._tiles()
        v_bytes = 4.0 * 16 * s.n * s.ci * tiles
        m_bytes = 4.0 * 16 * s.n * s.co * tiles
        u_bytes = 4.0 * 16 * s.co * s.ci
        real = float(s.in_desc().nbytes + s.out_desc().nbytes + s.filter_bytes)
        traffic = real + 2.0 * (v_bytes + m_bytes) + 2.0 * u_bytes
        return MemoryProfile.coalesced(
            load_bytes=0.55 * traffic, store_bytes=0.45 * traffic
        )

    def launch_config(self, device: DeviceSpec) -> LaunchConfig:
        s = self.spec
        blocks = ceil(s.n * self._tiles() * s.co / 256)
        return LaunchConfig(
            grid=(max(1, blocks), 1, 1), block=(256, 1, 1),
            regs_per_thread=48, smem_per_block=8 * 1024,
        )

    def workspace_bytes(self) -> float:
        s = self.spec
        tiles = self._tiles()
        return 4.0 * 16 * tiles * s.n * (s.ci + s.co)
