"""Address-trace utilities: turn per-thread addresses into per-warp arrays.

Kernel models for the memory-bound layers (pooling, softmax, the layout
transforms) generate the byte addresses their threads touch; these helpers
reshape the flat per-thread streams into the ``(warps, lanes)`` arrays the
coalescing unit consumes, and sample blocks so that large grids stay cheap
to analyse.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .cache import SetAssociativeCache
from .coalescing import CoalescingReport, analyze_warps, warp_transactions
from .device import DeviceSpec


def warps_from_threads(
    thread_addresses: np.ndarray, warp_size: int = 32
) -> np.ndarray:
    """Group a flat per-thread address array into warps.

    ``thread_addresses`` is 1-D in thread-id order (lane 0 of warp 0 first);
    the tail is padded with -1 (inactive lanes).  2-D input is interpreted
    as per-thread *sequences*: shape ``(threads, accesses)`` becomes
    ``(warps * accesses, warp_size)`` — one warp-instruction per column.
    """
    addr = np.asarray(thread_addresses, dtype=np.int64)
    if addr.ndim == 1:
        pad = (-addr.size) % warp_size
        if pad:
            addr = np.concatenate([addr, np.full(pad, -1, dtype=np.int64)])
        return addr.reshape(-1, warp_size)
    if addr.ndim == 2:
        threads, accesses = addr.shape
        pad = (-threads) % warp_size
        if pad:
            addr = np.concatenate(
                [addr, np.full((pad, accesses), -1, dtype=np.int64)], axis=0
            )
        # (warps, warp_size, accesses) -> (warps*accesses, warp_size)
        grouped = addr.reshape(-1, warp_size, accesses)
        return np.ascontiguousarray(np.moveaxis(grouped, 2, 1)).reshape(-1, warp_size)
    raise ValueError(f"expected 1-D or 2-D addresses, got shape {addr.shape}")


def transaction_stream(
    warp_addresses: np.ndarray,
    segment_bytes: int,
    max_transactions: int | None = None,
) -> np.ndarray:
    """Post-coalescing transaction addresses for a ``(warps, lanes)`` trace.

    The single sanctioned bridge between warp arrays and the L2 model:
    inactive lanes (``-1`` padding from :func:`warps_from_threads`) are
    stripped here, so callers can feed padded traces straight through
    without tripping the cache's negative-address check.  Each warp
    contributes its distinct ``segment_bytes``-sized segments (ascending,
    as one coalesced burst), in warp order — the order the memory system
    sees them.  When ``max_transactions`` is set, whole warps are kept up
    to and including the warp whose transactions first reach the cap.
    """
    if segment_bytes <= 0:
        raise ValueError("segment_bytes must be positive")
    addr = np.asarray(warp_addresses, dtype=np.int64)
    if addr.ndim == 1:
        addr = addr[None, :]
    elif addr.ndim != 2:
        raise ValueError(f"expected 1-D or 2-D addresses, got shape {addr.shape}")
    if not addr.size:
        return np.empty(0, dtype=np.int64)
    segments = np.sort(np.where(addr >= 0, addr // segment_bytes, np.int64(-1)), axis=1)
    keep = segments >= 0
    keep[:, 1:] &= segments[:, 1:] != segments[:, :-1]
    if max_transactions is not None:
        cum = np.cumsum(keep.sum(axis=1))
        cut = int(np.searchsorted(cum, max_transactions))
        if cut + 1 < keep.shape[0]:
            keep[cut + 1 :] = False
    return segments[keep] * segment_bytes


@dataclass(frozen=True)
class TraceResult:
    """Coalescing + locality summary of a sampled address trace."""

    coalescing: CoalescingReport
    l2_hit_rate: float
    sampled_fraction: float

    def scale(self) -> float:
        """Factor to extrapolate sampled counters to the full kernel."""
        return 1.0 / self.sampled_fraction if self.sampled_fraction else 1.0


def analyze_trace(
    warp_addresses: np.ndarray,
    device: DeviceSpec,
    access_bytes: int = 4,
    sampled_fraction: float = 1.0,
    use_l2: bool = True,
    max_l2_transactions: int = 200_000,
) -> TraceResult:
    """Run a ``(warps, lanes)`` load trace through coalescing and the L2.

    The L2 pass replays the post-coalescing transaction stream through the
    set-associative model; when the stream is longer than
    ``max_l2_transactions`` a contiguous window is used, which preserves the
    short-reuse-distance hits that matter (cross-warp window overlap) while
    keeping simulation cheap.
    """
    report = analyze_warps(warp_addresses, device, access_bytes)
    hit_rate = 0.0
    if use_l2 and report.transactions:
        flat = transaction_stream(
            warp_addresses, device.transaction_bytes, max_l2_transactions
        )
        if flat.size:
            l2 = SetAssociativeCache.l2_for(device)
            hits = l2.access_stream(flat)
            hit_rate = float(hits.mean())
    return TraceResult(
        coalescing=report, l2_hit_rate=hit_rate, sampled_fraction=sampled_fraction
    )


def sample_indices(total: int, max_samples: int, rng_seed: int = 0) -> np.ndarray:
    """Deterministically choose up to ``max_samples`` indices out of ``total``.

    Uses an evenly spaced stride so that sampled blocks cover the whole
    iteration space (important when edge blocks have partial warps).
    """
    if total <= 0:
        raise ValueError("total must be positive")
    if total <= max_samples:
        return np.arange(total, dtype=np.int64)
    step = total / max_samples
    return (np.arange(max_samples, dtype=np.float64) * step).astype(np.int64)


def transactions_for_stride(
    device: DeviceSpec, lanes: int, stride_bytes: int, access_bytes: int = 4
) -> float:
    """Closed-form transactions for one warp access with a constant stride.

    Convenience for analytic models; cross-checked against the traced
    coalescing unit in the test suite.
    """
    if lanes <= 0:
        return 0.0
    lanes_idx = np.arange(device.warp_size, dtype=np.int64)
    addr = np.where(lanes_idx < lanes, lanes_idx * stride_bytes, -1)
    return float(warp_transactions(addr[None, :], device, access_bytes)[0])
