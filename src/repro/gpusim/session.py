"""Simulation sessions: one shared engine state for a whole workload.

The paper's pitch is *one-time profiling* whose results amortize across a
network (Section IV.D) — yet historically every consumer of the simulator
(planner, selector, autotuner, fusion pass, baselines, sweeps, CLI) built a
private :class:`~repro.gpusim.engine.SimulationEngine` whose memo cache was
keyed by ``id(model)``, so freshly-built kernel models never hit it and the
same Table-1 kernels were re-timed dozens of times per plan.

This module is the fix, in the spirit of cuDNN's single library handle:

* :func:`structural_key` — a content-addressed key derived from a kernel
  model's structural state plus the full device spec, so two structurally
  equal models built independently share one timing;
* :class:`SimStats` — instrumentation counters (hits, misses, wall-clock
  spent simulating, per-kind breakdown) that any session can print;
* :class:`SimulationContext` — the session object owning the cache, the
  stats, and the OOM/``tensor_bytes_resident`` accounting, with optional
  JSON persistence for cross-process reuse by benchmarks;
* :func:`default_context` — a per-device shared session that the
  :class:`SimulationEngine` compatibility shim delegates to, so code that
  still instantiates engines ad hoc transparently shares one hot cache.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, fields, is_dataclass
from enum import Enum
from hashlib import sha256
from itertools import islice
from pathlib import Path
from typing import Any

from ..obs.metrics import MetricsRegistry, register_metrics_provider
from ..obs.tracer import active_tracer
from .cache import cache_sim_snapshot
from .device import DeviceSpec
from .kernel import ComposedKernel, KernelModel
from .timing import KernelStats, time_model
from .occupancy import Occupancy


class GpuOutOfMemoryError(RuntimeError):
    """Raised when a kernel's footprint exceeds the device's DRAM."""

    def __init__(self, kernel: str, required: float, available: float) -> None:
        self.kernel = kernel
        self.required_bytes = required
        self.available_bytes = available
        super().__init__(
            f"{kernel}: requires {required / 2**30:.2f} GiB device memory, "
            f"card has {available / 2**30:.2f} GiB"
        )


# ---------------------------------------------------------------------------
# Structural cache keys
# ---------------------------------------------------------------------------


def _describe(obj: Any) -> Any:
    """A JSON-stable structural description of kernel-model state.

    Kernel models are described by their class plus :meth:`structural_state`
    (instance attributes minus derived memo caches); dataclasses (specs,
    layouts, geometry records) by their fields.  The description determines
    the timing result, so equal descriptions may share one cache entry.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return repr(obj)  # full precision, JSON-stable
    if isinstance(obj, KernelModel):
        cls = type(obj)
        state = {k: _describe(v) for k, v in sorted(obj.structural_state().items())}
        return {
            "__kernel__": f"{cls.__module__}.{cls.__qualname__}",
            "name": obj.name,
            "n_launches": obj.n_launches,
            "state": state,
        }
    if is_dataclass(obj) and not isinstance(obj, type):
        cls = type(obj)
        return {
            "__dataclass__": f"{cls.__module__}.{cls.__qualname__}",
            "fields": {
                f.name: _describe(getattr(obj, f.name)) for f in fields(obj)
            },
        }
    if isinstance(obj, Enum):
        return {"__enum__": f"{type(obj).__qualname__}.{obj.name}"}
    if isinstance(obj, (tuple, list)):
        return [_describe(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(_describe(v) for v in obj)
    if isinstance(obj, dict):
        return {str(k): _describe(v) for k, v in sorted(obj.items())}
    # Layout objects, numpy scalars, ...: fall back to class-tagged repr.
    return {"__repr__": f"{type(obj).__qualname__}:{obj!r}"}


def structural_key(model: KernelModel, device: DeviceSpec) -> str:
    """Content-addressed cache key for timing ``model`` on ``device``.

    The key hashes the model's full structural description together with
    every field of the device spec (not just its name: two specs that share
    a name but differ in, say, bandwidth must not share timings).
    """
    payload = json.dumps(
        {"device": _describe(device), "kernel": _describe(model)},
        sort_keys=True,
        separators=(",", ":"),
    )
    digest = sha256(payload.encode()).hexdigest()[:32]
    return f"{model.name}@{device.name}#{digest}"


def _kind_of(model: KernelModel) -> str:
    """Coarse kernel family for the per-kind stats breakdown.

    Kernel names follow a ``family-variant-...`` convention
    (``conv-direct-chwn``, ``pool-chwn``, ``softmax-fused``, ...).
    """
    return model.name.split("-", 1)[0] if model.name else "kernel"


# ---------------------------------------------------------------------------
# Instrumentation
# ---------------------------------------------------------------------------


@dataclass
class KindStats:
    """Hit/miss counters for one kernel family."""

    hits: int = 0
    misses: int = 0

    @property
    def total(self) -> int:
        return self.hits + self.misses


def _counter_property(metric: str, as_int: bool = True) -> property:
    """A SimStats attribute backed by one registry counter.

    Keeps the historical mutable-field interface (``stats.hits``,
    ``stats.merged_contexts += 1``) while the registry remains the single
    source of truth, so ``--sim-stats`` and ``--metrics`` cannot disagree.
    """

    def getter(self: "SimStats") -> int | float:
        value = self.registry.value(metric)
        return int(value) if as_int else value

    def setter(self: "SimStats", value: float) -> None:
        self.registry.counter(metric).value = float(value)

    return property(getter, setter)


class SimStats:
    """Counters for one simulation session — a thin view over a
    :class:`~repro.obs.metrics.MetricsRegistry`.

    ``misses`` is the number of kernels actually timed by the analytic
    model; ``hits`` are queries served from the structural cache (including
    entries loaded from an on-disk cache file).  Every counter reads and
    writes a ``sim.*`` metric in the backing registry, so the metrics
    exporters and the ``--sim-stats`` report always agree; the registry
    travels with the stats through pickling (worker merge-back).
    """

    def __init__(self, registry: "MetricsRegistry | None" = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()

    hits = _counter_property("sim.queries.hits")
    misses = _counter_property("sim.queries.misses")
    loaded_from_disk = _counter_property("sim.cache.loaded_from_disk")
    sim_wall_s = _counter_property("sim.wall_s", as_int=False)
    #: cache-model replay calls / wall seconds inside ``sim_wall_s`` (the
    #: cache-sim share of simulation time)
    cache_sim_calls = _counter_property("sim.cache_model.calls")
    cache_sim_s = _counter_property("sim.cache_model.wall_s", as_int=False)
    #: worker sessions whose caches were folded into this one, and how many
    #: of their entries were new here (see ``SimulationContext.absorb``)
    merged_contexts = _counter_property("sim.merged.contexts")
    merged_entries = _counter_property("sim.merged.entries")

    @property
    def by_kind(self) -> dict[str, KindStats]:
        """Per-kernel-family hit/miss counts (a snapshot view built from
        the ``sim.kind.*`` metrics)."""
        kinds: dict[str, KindStats] = {}
        for name in self.registry.names("sim.kind."):
            _, _, kind, field_name = name.split(".", 3)
            ks = kinds.setdefault(kind, KindStats())
            setattr(ks, field_name, int(self.registry.value(name)))
        return kinds

    @property
    def kernels_timed(self) -> int:
        return self.misses

    @property
    def queries(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.queries if self.queries else 0.0

    def record_hit(self, kind: str) -> None:
        self.registry.counter("sim.queries.hits").inc()
        self.registry.counter(f"sim.kind.{kind}.hits").inc()

    def record_miss(
        self, kind: str, wall_s: float, cache_calls: int = 0, cache_s: float = 0.0
    ) -> None:
        reg = self.registry
        reg.counter("sim.queries.misses").inc()
        reg.counter("sim.wall_s").inc(wall_s)
        reg.counter("sim.cache_model.calls").inc(cache_calls)
        reg.counter("sim.cache_model.wall_s").inc(cache_s)
        reg.counter(f"sim.kind.{kind}.misses").inc()
        reg.histogram("sim.kernel_sim_ms").observe(wall_s * 1e3)

    def record_batch(
        self,
        kind_counts: dict[str, int],
        wall_s: float,
        cache_calls: int = 0,
        cache_s: float = 0.0,
    ) -> None:
        """Record one batched evaluation: every candidate counts as a miss
        (all were timed, none served from the structural cache), but the
        wall time lands as one aggregate increment and the per-kernel
        ``sim.kernel_sim_ms`` histogram is not observed — per-candidate
        timing is exactly the overhead the batch path removes."""
        reg = self.registry
        reg.counter("sim.queries.misses").inc(sum(kind_counts.values()))
        reg.counter("sim.wall_s").inc(wall_s)
        reg.counter("sim.cache_model.calls").inc(cache_calls)
        reg.counter("sim.cache_model.wall_s").inc(cache_s)
        for kind, count in kind_counts.items():
            reg.counter(f"sim.kind.{kind}.misses").inc(count)

    def merge(self, other: "SimStats") -> None:
        """Fold another session's counters into this one (for aggregation)."""
        self.registry.merge(other.registry)

    def reset(self) -> None:
        self.registry.reset("sim.")

    def summary(self) -> str:
        """Printable counter report (the CLI's ``--sim-stats`` output)."""
        lines = [
            "simulation stats:",
            f"  kernel queries : {self.queries}",
            f"  cache hits     : {self.hits} ({self.hit_rate:.1%})",
            f"  kernels timed  : {self.kernels_timed}",
            f"  sim wall time  : {self.sim_wall_s * 1e3:.1f} ms",
        ]
        if self.cache_sim_calls:
            share = self.cache_sim_s / self.sim_wall_s if self.sim_wall_s else 0.0
            lines.append(
                f"  cache replays  : {self.cache_sim_calls} "
                f"({self.cache_sim_s * 1e3:.1f} ms, {share:.0%} of sim time)"
            )
        if self.merged_contexts:
            lines.append(
                f"  merged workers : {self.merged_contexts} contexts, "
                f"{self.merged_entries} new entries"
            )
        if self.loaded_from_disk:
            lines.append(f"  disk entries   : {self.loaded_from_disk} loaded")
        for kind in sorted(self.by_kind):
            ks = self.by_kind[kind]
            lines.append(
                f"    {kind:10s} {ks.total:6d} queries, "
                f"{ks.hits:6d} hits, {ks.misses:6d} timed"
            )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# The session object
# ---------------------------------------------------------------------------

_CACHE_FORMAT_VERSION = 1


class SimulationContext:
    """One shared simulation session: device + kernel cache + counters.

    Every consumer that threads the same context through its calls shares
    one structural timing cache, so a kernel shape is timed at most once per
    process (or once ever, with ``cache_path`` persistence).

    Parameters
    ----------
    device:
        The simulated GPU.
    check_memory:
        Default OOM-checking behaviour for :meth:`run`; individual calls
        (and the :class:`SimulationEngine` shim) may override it.
    tensor_bytes_resident:
        Bytes already resident on the device, counted against capacity by
        the OOM check (the engine's historical accounting, preserved).
    cache_path:
        Optional JSON file for cross-process cache reuse.  Loaded eagerly
        when it exists; written by :meth:`save_cache`.
    """

    def __init__(
        self,
        device: DeviceSpec,
        check_memory: bool = True,
        tensor_bytes_resident: float = 0.0,
        cache_path: str | Path | None = None,
    ) -> None:
        self.device = device
        self.check_memory = check_memory
        self.tensor_bytes_resident = tensor_bytes_resident
        #: the session's metrics; ``stats`` is the SimStats view over it
        self.metrics = MetricsRegistry()
        self.stats = SimStats(self.metrics)
        self.cache_path = Path(cache_path) if cache_path is not None else None
        self._cache: dict[str, KernelStats] = {}
        #: failed evaluations (OOM, launch validation) memoized by the
        #: sweep execution engine under the same structural keys; kept
        #: process-local — exception instances with required constructor
        #: args don't survive pickling, and re-deriving a failure is cheap
        self.exec_errors: dict[str, Exception] = {}
        if self.cache_path is not None and self.cache_path.exists():
            self.load_cache(self.cache_path)

    # -- simulation --------------------------------------------------------
    def run(
        self,
        model: KernelModel,
        check_memory: bool | None = None,
        tensor_bytes_resident: float | None = None,
    ) -> KernelStats:
        """Time one kernel model, serving structurally-equal repeats from
        the cache; raises :class:`GpuOutOfMemoryError` when enabled checks
        find the workspace plus resident tensors exceed device memory.

        Every dispatch records a ``sim.kernel`` span on the active tracer
        (when one is installed) carrying the kernel name, family, whether
        the query was served from cache, and the modelled GPU time."""
        if isinstance(model, ComposedKernel):
            tracer = active_tracer()
            if tracer is None:
                seq = self.run_sequence(
                    model.kernels,
                    name=model.name,
                    check_memory=check_memory,
                    tensor_bytes_resident=tensor_bytes_resident,
                )
                return _collapse_sequence(seq, self.device)
            with tracer.span(
                f"sim:{model.name}",
                "sim.kernel",
                kernel=model.name,
                kind=_kind_of(model),
                composed=True,
            ) as sp:
                seq = self.run_sequence(
                    model.kernels,
                    name=model.name,
                    check_memory=check_memory,
                    tensor_bytes_resident=tensor_bytes_resident,
                )
                stats = _collapse_sequence(seq, self.device)
                sp.attrs["time_ms"] = stats.time_ms
            return stats
        self._check_fit(model, check_memory, tensor_bytes_resident)
        tracer = active_tracer()
        if tracer is None:
            return self._timed(model)
        key = structural_key(model, self.device)
        with tracer.span(
            f"sim:{model.name}",
            "sim.kernel",
            kernel=model.name,
            kind=_kind_of(model),
        ) as sp:
            sp.attrs["cached"] = key in self._cache
            stats = self._timed(model, key)
            sp.attrs["time_ms"] = stats.time_ms
        return stats

    def _timed(self, model: KernelModel, key: str | None = None) -> KernelStats:
        """The cache-or-time core of :meth:`run` (tracing-agnostic)."""
        if key is None:
            key = structural_key(model, self.device)
        hit = self._cache.get(key)
        if hit is not None:
            self.stats.record_hit(_kind_of(model))
            return hit
        start = time.perf_counter()
        calls0, cache_s0 = cache_sim_snapshot()
        stats = time_model(self.device, model)
        calls1, cache_s1 = cache_sim_snapshot()
        self.stats.record_miss(
            _kind_of(model),
            time.perf_counter() - start,
            cache_calls=calls1 - calls0,
            cache_s=cache_s1 - cache_s0,
        )
        self._cache[key] = stats
        self.metrics.gauge("sim.cache.entries").set(len(self._cache))
        return stats

    def run_sequence(
        self,
        models: list[KernelModel],
        name: str = "sequence",
        check_memory: bool | None = None,
        tensor_bytes_resident: float | None = None,
    ) -> "SequenceStats":
        """Time a dependent sequence of kernels (no overlap between them:
        the paper's inter-kernel data passes through off-chip memory, so the
        next kernel cannot start early)."""
        return SequenceStats(
            name=name,
            kernels=tuple(
                self.run(m, check_memory, tensor_bytes_resident) for m in models
            ),
        )

    def _check_fit(
        self,
        model: KernelModel,
        check_memory: bool | None,
        tensor_bytes_resident: float | None,
    ) -> None:
        enabled = self.check_memory if check_memory is None else check_memory
        if not enabled:
            return
        resident = (
            self.tensor_bytes_resident
            if tensor_bytes_resident is None
            else tensor_bytes_resident
        )
        required = model.workspace_bytes() + resident
        if required > self.device.dram_bytes:
            raise GpuOutOfMemoryError(model.name, required, self.device.dram_bytes)

    # -- engine views ------------------------------------------------------
    def engine(
        self, check_memory: bool | None = None, tensor_bytes_resident: float = 0.0
    ) -> "SimulationEngine":
        """A :class:`SimulationEngine` view bound to this context.

        Lets call sites keep the familiar ``engine.run(...)`` shape while
        sharing this session's cache and counters.
        """
        from .engine import SimulationEngine

        return SimulationEngine(
            self.device,
            check_memory=self.check_memory if check_memory is None else check_memory,
            tensor_bytes_resident=tensor_bytes_resident,
            context=self,
        )

    # -- cache management --------------------------------------------------
    @property
    def cache_size(self) -> int:
        return len(self._cache)

    def clear_cache(self) -> None:
        self._cache.clear()
        self.exec_errors.clear()

    def cache_lookup(self, key: str) -> "KernelStats | None":
        """The cached stats under a :func:`structural_key`, if any (the
        sweep execution engine consults this before batch assembly)."""
        return self._cache.get(key)

    def cache_store(self, key: str, stats: KernelStats) -> None:
        """Insert a batch-computed timing under its structural key.

        First write wins, mirroring :meth:`absorb`: the batched evaluator
        is bit-identical to the scalar path by contract, so an existing
        entry already holds the same value.
        """
        if key not in self._cache:
            self._cache[key] = stats
            self.metrics.gauge("sim.cache.entries").set(len(self._cache))

    def export_state(self) -> tuple[dict[str, KernelStats], SimStats]:
        """(timing-cache entries, counters) — what a worker ships back.

        Both halves are plain picklable dataclass containers, so a parallel
        executor can return them across a process boundary and fold them
        into the parent with :meth:`absorb`.
        """
        return dict(self._cache), self.stats

    def export_delta(self, since: int = 0) -> dict[str, KernelStats]:
        """Timing-cache entries added after the first ``since`` insertions.

        The warm worker pool keeps one context alive across submissions and
        must not re-ship the whole cache every time; dict insertion order is
        stable and workers never :meth:`absorb` (only the parent does), so a
        plain insertion-count watermark identifies exactly the entries the
        parent has not seen yet.
        """
        if since <= 0:
            return dict(self._cache)
        return dict(islice(self._cache.items(), since, None))

    def absorb(
        self, cache: dict[str, KernelStats], stats: SimStats | None = None
    ) -> int:
        """Fold a worker session's cache (and counters) into this one.

        Entries already present locally win — both sides computed them from
        the same structural key, so the values are identical and keeping the
        local one is merely cheaper.  Returns the number of new entries.
        """
        new = 0
        for key, value in cache.items():
            if key not in self._cache:
                self._cache[key] = value
                new += 1
        if stats is not None:
            self.stats.merge(stats)
        self.stats.merged_contexts += 1
        self.stats.merged_entries += new
        return new

    def save_cache(self, path: str | Path | None = None) -> Path:
        """Persist the timing cache as JSON for cross-process reuse."""
        target = Path(path) if path is not None else self.cache_path
        if target is None:
            raise ValueError("no cache path given and none configured")
        payload = {
            "version": _CACHE_FORMAT_VERSION,
            "entries": {k: _stats_to_dict(v) for k, v in self._cache.items()},
        }
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(payload, indent=1, sort_keys=True))
        return target

    def load_cache(self, path: str | Path) -> int:
        """Merge entries from a cache file; returns the number loaded.

        A cache file is an accelerator, never an input: unknown format
        versions, damaged JSON, and malformed entries are all ignored (the
        session simply re-times what it cannot load).
        """
        source = Path(path)
        try:
            payload = json.loads(source.read_text())
        except (OSError, json.JSONDecodeError):
            return 0
        if not isinstance(payload, dict):
            return 0
        if payload.get("version") != _CACHE_FORMAT_VERSION:
            return 0
        loaded = 0
        for key, entry in payload.get("entries", {}).items():
            if key in self._cache:
                continue
            try:
                self._cache[key] = _stats_from_dict(entry)
            except (KeyError, TypeError):
                continue
            loaded += 1
        self.stats.loaded_from_disk += loaded
        return loaded


def _stats_to_dict(stats: KernelStats) -> dict[str, Any]:
    record = {f.name: getattr(stats, f.name) for f in fields(stats)}
    record["occupancy"] = {
        f.name: getattr(stats.occupancy, f.name) for f in fields(Occupancy)
    }
    return record


def _stats_from_dict(record: dict[str, Any]) -> KernelStats:
    data = dict(record)
    data["occupancy"] = Occupancy(**data["occupancy"])
    return KernelStats(**data)


# ---------------------------------------------------------------------------
# Sequence aggregation (formerly in engine.py)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SequenceStats:
    """Aggregated stats for a sequence of kernel launches."""

    name: str
    kernels: tuple[KernelStats, ...]

    @property
    def time_ms(self) -> float:
        return sum(k.time_ms for k in self.kernels)

    @property
    def flops(self) -> float:
        return sum(k.flops for k in self.kernels)

    @property
    def dram_bytes(self) -> float:
        return sum(k.dram_bytes for k in self.kernels)

    @property
    def useful_bytes(self) -> float:
        return sum(k.useful_bytes for k in self.kernels)

    @property
    def achieved_gflops(self) -> float:
        return self.flops / (self.time_ms * 1e6) if self.time_ms else 0.0

    @property
    def achieved_bandwidth_gbs(self) -> float:
        return self.dram_bytes / (self.time_ms * 1e6) if self.time_ms else 0.0

    @property
    def effective_bandwidth_gbs(self) -> float:
        return self.useful_bytes / (self.time_ms * 1e6) if self.time_ms else 0.0


def _collapse_sequence(seq: SequenceStats, device: DeviceSpec) -> KernelStats:
    """Fold a sequence into a single KernelStats for uniform reporting."""
    first = seq.kernels[0]
    return KernelStats(
        name=seq.name,
        device=device.name,
        time_ms=seq.time_ms,
        compute_ms=sum(k.compute_ms for k in seq.kernels),
        memory_ms=sum(k.memory_ms for k in seq.kernels),
        launch_ms=sum(k.launch_ms for k in seq.kernels),
        flops=seq.flops,
        dram_bytes=seq.dram_bytes,
        useful_bytes=seq.useful_bytes,
        transactions=sum(k.transactions for k in seq.kernels),
        occupancy=first.occupancy,
        bound=max(seq.kernels, key=lambda k: k.time_ms).bound,
        alu_utilization=seq.flops
        / (seq.time_ms * 1e6 * device.peak_gflops)
        if seq.time_ms
        else 0.0,
        n_launches=sum(k.n_launches for k in seq.kernels),
    )


# ---------------------------------------------------------------------------
# Default (per-device) sessions
# ---------------------------------------------------------------------------

_DEFAULT_CONTEXTS: dict[DeviceSpec, SimulationContext] = {}


def default_context(device: DeviceSpec) -> SimulationContext:
    """The process-wide shared session for ``device``.

    :class:`SimulationEngine` instances without an explicit context delegate
    here, which is what turns the historical engine-per-call-site pattern
    into one hot cache per device.
    """
    ctx = _DEFAULT_CONTEXTS.get(device)
    if ctx is None:
        ctx = SimulationContext(device, check_memory=True)
        _DEFAULT_CONTEXTS[device] = ctx
    return ctx


def reset_default_contexts() -> None:
    """Drop all shared sessions (test isolation, cache invalidation)."""
    _DEFAULT_CONTEXTS.clear()


def global_sim_stats() -> SimStats:
    """Merged counters across every default session in this process."""
    total = SimStats()
    for ctx in _DEFAULT_CONTEXTS.values():
        total.merge(ctx.stats)
    return total


# Fold every default session's registry into the process-wide metrics
# aggregate, so ``--metrics`` reports the same counters ``--sim-stats``
# prints (both read the very same Counter objects).
register_metrics_provider(
    "gpusim.default_contexts",
    lambda: [ctx.metrics for ctx in _DEFAULT_CONTEXTS.values()],
)
