"""Set-associative LRU cache model (the GPU's L2).

The paper's locality arguments — overlapped pooling windows re-reading
neighbouring pixels, im2col re-touching input rows — hinge on whether the
redundant accesses hit in L2 or reach DRAM.  This model answers exactly that
question for a stream of transaction addresses.

The simulator feeds *post-coalescing* transaction addresses (one per 32-byte
segment), so a "hit" here means the segment was still resident from an
earlier warp.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .device import DeviceSpec


@dataclass
class CacheStats:
    """Access/hit/miss counters for one simulation."""

    accesses: int = 0
    hits: int = 0

    @property
    def misses(self) -> int:
        return self.accesses - self.hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class SetAssociativeCache:
    """A set-associative cache with true-LRU replacement.

    Implemented with NumPy arrays (tags + LRU timestamps) so that large
    address streams stay fast.  Addresses are byte addresses; the line size
    and geometry come from the device spec by default.
    """

    def __init__(
        self,
        capacity_bytes: int,
        line_bytes: int = 32,
        assoc: int = 16,
    ) -> None:
        if capacity_bytes <= 0 or line_bytes <= 0 or assoc <= 0:
            raise ValueError("cache geometry must be positive")
        if capacity_bytes % (line_bytes * assoc):
            raise ValueError("capacity must be a multiple of line_bytes * assoc")
        self.capacity_bytes = capacity_bytes
        self.line_bytes = line_bytes
        self.assoc = assoc
        self.n_sets = capacity_bytes // (line_bytes * assoc)
        self._tags = np.full((self.n_sets, assoc), -1, dtype=np.int64)
        self._stamp = np.zeros((self.n_sets, assoc), dtype=np.int64)
        self._clock = 0
        self.stats = CacheStats()

    @classmethod
    def l2_for(cls, device: DeviceSpec) -> "SetAssociativeCache":
        """Build the L2 cache described by a device spec."""
        return cls(device.l2_bytes, device.l2_line_bytes, device.l2_assoc)

    def reset(self) -> None:
        """Invalidate all lines and zero the counters."""
        self._tags.fill(-1)
        self._stamp.fill(0)
        self._clock = 0
        self.stats = CacheStats()

    def access(self, address: int) -> bool:
        """Access one byte address; return True on hit."""
        return bool(self.access_stream(np.asarray([address]))[0])

    def access_stream(self, addresses: np.ndarray) -> np.ndarray:
        """Access a sequence of byte addresses in order.

        Returns a boolean hit mask.  The loop is per-access (LRU state is
        inherently sequential) but all per-set work is vectorized.
        """
        addr = np.asarray(addresses, dtype=np.int64).ravel()
        if addr.size and addr.min() < 0:
            raise ValueError("addresses must be non-negative")
        lines = addr // self.line_bytes
        sets = lines % self.n_sets
        hits = np.zeros(addr.size, dtype=bool)
        tags = self._tags
        stamp = self._stamp
        clock = self._clock
        for i in range(addr.size):
            s = sets[i]
            line = lines[i]
            clock += 1
            row = tags[s]
            match = np.nonzero(row == line)[0]
            if match.size:
                hits[i] = True
                stamp[s, match[0]] = clock
            else:
                victim = int(np.argmin(stamp[s]))
                tags[s, victim] = line
                stamp[s, victim] = clock
        self._clock = clock
        self.stats.accesses += addr.size
        self.stats.hits += int(hits.sum())
        return hits


def unique_line_hits(addresses: np.ndarray, line_bytes: int = 32) -> tuple[int, int]:
    """Fast infinite-cache estimate: (accesses, hits-if-cache-were-infinite).

    Useful as an upper bound on locality: every repeat touch of a line hits.
    """
    addr = np.asarray(addresses, dtype=np.int64).ravel()
    lines = addr // line_bytes
    n_unique = int(np.unique(lines).size)
    return int(lines.size), int(lines.size) - n_unique
