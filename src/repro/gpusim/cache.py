"""Set-associative LRU cache model (the GPU's L2).

The paper's locality arguments — overlapped pooling windows re-reading
neighbouring pixels, im2col re-touching input rows — hinge on whether the
redundant accesses hit in L2 or reach DRAM.  This model answers exactly that
question for a stream of transaction addresses.

The simulator feeds *post-coalescing* transaction addresses (one per 32-byte
segment), so a "hit" here means the segment was still resident from an
earlier warp.

Two implementations share one state representation:

* :meth:`SetAssociativeCache.reference_access_stream` — the scalar
  per-address replay.  LRU is inherently sequential, so this loop is the
  ground truth, kept readable and used to validate the fast path.
* :meth:`SetAssociativeCache.access_stream` — the vectorized fast path.
  Cache sets are independent, so the stream is partitioned by set (one
  stable argsort) and each set's subsequence is resolved by the cheapest
  applicable method:

  1. **closed form** — when a set's working set (distinct new lines plus
     already-valid ways) fits in the associativity, nothing is ever
     evicted, so every access hits except the first touch of each
     non-resident line; no stateful replay is needed.
  2. **set-parallel rounds** — remaining sets are replayed one access per
     set per round, so each round is a single batched tag compare /
     LRU-victim update across all still-active sets.
  3. **scalar tail** — once fewer sets than ``MIN_ROUND_SETS`` remain
     active (a few heavy sets dominate, e.g. adversarial same-set thrash),
     their tails fall back to the per-access loop on that set's row only.

Both paths maintain identical state — tags, LRU stamps, counters — bit for
bit, which the property tests in ``tests/gpusim/test_cache_equivalence.py``
assert on randomized and adversarial traces.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..obs.metrics import global_registry
from ..obs.tracer import active_tracer
from .device import DeviceSpec

#: Below this many still-active sets, set-parallel rounds stop paying for
#: themselves (each round costs ~a dozen numpy calls) and the scalar tail
#: wins.  Purely a performance knob: the two sides of the cutoff maintain
#: bit-identical cache state, so any value is correct (see
#: :func:`set_min_round_sets`).
MIN_ROUND_SETS = 24

_FAST_PATH_DEFAULT = True

#: Sorts below every real LRU stamp (stamps are >= 0): marks hit ways in the
#: fused round probe of :meth:`SetAssociativeCache._replay_open`.
_SENTINEL = np.int64(np.iinfo(np.int64).min)

#: Module-wide accumulators: replay calls and wall seconds spent inside
#: cache replays.  :class:`~repro.gpusim.session.SimulationContext`
#: snapshots them around each kernel timing to attribute the cache-sim
#: share of simulation time per session.
_SIM_CALLS = 0
_SIM_WALL_S = 0.0


def set_min_round_sets(threshold: int) -> int:
    """Set the round→scalar-tail cutoff; returns the previous value.

    ``access_stream`` switches from set-parallel rounds to the scalar
    per-set tail once fewer than ``threshold`` sets remain active.  The
    cutoff only trades numpy dispatch overhead against loop iterations —
    both sides produce bit-identical cache state (asserted by
    ``tests/gpusim/test_cache_equivalence.py``), so tuning it can never
    change simulated results.  ``0`` disables the tail entirely;
    a very large value replays everything through the scalar tail.
    """
    global MIN_ROUND_SETS
    if threshold < 0:
        raise ValueError("min_round_sets threshold must be >= 0")
    previous = MIN_ROUND_SETS
    MIN_ROUND_SETS = int(threshold)
    return previous


def min_round_sets() -> int:
    """The current round→scalar-tail cutoff (see :func:`set_min_round_sets`)."""
    return MIN_ROUND_SETS


def set_fast_path(enabled: bool) -> bool:
    """Select the default ``access_stream`` implementation for new calls.

    Returns the previous setting.  Benchmarks flip this to time the scalar
    reference against the vectorized path on identical inputs; individual
    caches may also be constructed with an explicit ``fast_path=``.
    """
    global _FAST_PATH_DEFAULT
    previous = _FAST_PATH_DEFAULT
    _FAST_PATH_DEFAULT = bool(enabled)
    return previous


def fast_path_enabled() -> bool:
    """The current default ``access_stream`` implementation choice (the
    warm worker pool ships this to reused workers, whose forked module
    state may predate a toggle flip in the parent)."""
    return _FAST_PATH_DEFAULT


def cache_sim_snapshot() -> tuple[int, float]:
    """(replay calls, wall seconds) accumulated by all caches so far."""
    return _SIM_CALLS, _SIM_WALL_S


@dataclass
class CacheStats:
    """Access/hit/miss/eviction counters for one simulation."""

    accesses: int = 0
    hits: int = 0
    evictions: int = 0

    @property
    def misses(self) -> int:
        return self.accesses - self.hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class SetAssociativeCache:
    """A set-associative cache with true-LRU replacement.

    Implemented with NumPy arrays (tags + LRU timestamps) so that large
    address streams stay fast.  Addresses are byte addresses; the line size
    and geometry come from the device spec by default.  ``fast_path``
    pins this instance to the vectorized (True) or scalar reference (False)
    replay; None defers to the module default (see :func:`set_fast_path`).
    """

    def __init__(
        self,
        capacity_bytes: int,
        line_bytes: int = 32,
        assoc: int = 16,
        fast_path: bool | None = None,
    ) -> None:
        if capacity_bytes <= 0 or line_bytes <= 0 or assoc <= 0:
            raise ValueError("cache geometry must be positive")
        if capacity_bytes % (line_bytes * assoc):
            raise ValueError("capacity must be a multiple of line_bytes * assoc")
        self.capacity_bytes = capacity_bytes
        self.line_bytes = line_bytes
        self.assoc = assoc
        self.n_sets = capacity_bytes // (line_bytes * assoc)
        self.fast_path = fast_path
        self._tags = np.full((self.n_sets, assoc), -1, dtype=np.int64)
        self._stamp = np.zeros((self.n_sets, assoc), dtype=np.int64)
        self._clock = 0
        self.stats = CacheStats()

    @classmethod
    def l2_for(
        cls, device: DeviceSpec, fast_path: bool | None = None
    ) -> "SetAssociativeCache":
        """Build the L2 cache described by a device spec."""
        return cls(
            device.l2_bytes, device.l2_line_bytes, device.l2_assoc, fast_path
        )

    def reset(self) -> None:
        """Invalidate all lines and zero the counters."""
        self._tags.fill(-1)
        self._stamp.fill(0)
        self._clock = 0
        self.stats = CacheStats()

    def access(self, address: int) -> bool:
        """Access one byte address; return True on hit."""
        return bool(self.access_stream(np.asarray([address]))[0])

    # -- shared plumbing ----------------------------------------------------
    def _prepare(self, addresses: np.ndarray) -> np.ndarray:
        addr = np.asarray(addresses, dtype=np.int64).ravel()
        if addr.size and addr.min() < 0:
            raise ValueError("addresses must be non-negative")
        return addr

    def _finish(self, hits: np.ndarray, evictions: int, t0: float) -> np.ndarray:
        global _SIM_CALLS, _SIM_WALL_S
        n_accesses = int(hits.size)
        n_hits = int(hits.sum())
        self.stats.accesses += n_accesses
        self.stats.hits += n_hits
        self.stats.evictions += int(evictions)
        wall_s = time.perf_counter() - t0
        _SIM_CALLS += 1
        _SIM_WALL_S += wall_s
        registry = global_registry()
        registry.counter("cache_model.replays").inc()
        registry.counter("cache_model.accesses").inc(n_accesses)
        registry.counter("cache_model.wall_s").inc(wall_s)
        tracer = active_tracer()
        if tracer is not None:
            tracer.record(
                "l2-replay",
                "sim.cache",
                wall_s * 1e6,
                accesses=n_accesses,
                hits=n_hits,
                evictions=int(evictions),
            )
        return hits

    def access_stream(self, addresses: np.ndarray) -> np.ndarray:
        """Access a sequence of byte addresses in order; return the hit mask.

        Dispatches to the vectorized fast path unless this cache (or the
        module default, see :func:`set_fast_path`) selects the scalar
        reference.  Both produce identical hit masks, counters, and final
        tag/stamp state.
        """
        enabled = self.fast_path if self.fast_path is not None else _FAST_PATH_DEFAULT
        if not enabled:
            return self.reference_access_stream(addresses)
        t0 = time.perf_counter()
        addr = self._prepare(addresses)
        if addr.size <= 32:  # partition overhead beats the tiny scalar loop
            return self.reference_access_stream(addr)
        if not addr.size:
            return self._finish(np.zeros(0, dtype=bool), 0, t0)
        hits, evictions = self._fast_replay(addr)
        return self._finish(hits, evictions, t0)

    # -- scalar reference ---------------------------------------------------
    def reference_access_stream(self, addresses: np.ndarray) -> np.ndarray:
        """The scalar per-address LRU replay (ground truth for the fast path).

        The loop is per-access, but each probe is a single vectorized tag
        compare against the set's ways.
        """
        t0 = time.perf_counter()
        addr = self._prepare(addresses)
        lines = addr // self.line_bytes
        sets = lines % self.n_sets
        hits = np.zeros(addr.size, dtype=bool)
        tags = self._tags
        stamp = self._stamp
        clock = self._clock
        evictions = 0
        for i in range(addr.size):
            s = sets[i]
            line = lines[i]
            clock += 1
            row = tags[s]
            eq = row == line
            if eq.any():
                hits[i] = True
                stamp[s, int(eq.argmax())] = clock
            else:
                victim = int(stamp[s].argmin())
                if row[victim] >= 0:
                    evictions += 1
                tags[s, victim] = line
                stamp[s, victim] = clock
        self._clock = clock
        return self._finish(hits, evictions, t0)

    # -- vectorized fast path -----------------------------------------------
    def _fast_replay(self, addr: np.ndarray) -> tuple[np.ndarray, int]:
        """Set-partitioned replay of ``addr``; returns (hit mask, evictions).

        State updates write the exact stamp values the reference would
        (``clock + 1 + original_index``), so tags and stamps end bit-equal.
        """
        n = addr.size
        lines = addr // self.line_bytes
        sets = lines % self.n_sets
        tags = self._tags
        clock0 = self._clock
        hits = np.zeros(n, dtype=bool)
        evictions = 0

        # Partition by set: stable, so stream order survives within a run.
        order = np.argsort(sets, kind="stable")
        ssets = sets[order]
        slines = lines[order]
        sstamps = clock0 + 1 + order

        # Collapse adjacent duplicates within each set's subsequence: a
        # back-to-back re-touch of the same line (no other access to that
        # set in between) is a guaranteed hit whose only effect is carrying
        # the LRU stamp forward.  Common in real traces — neighbouring
        # transactions of one warp, window taps sharing a line — and it
        # shrinks the stateful replay below.
        dup = np.zeros(n, dtype=bool)
        if n > 1:
            dup[1:] = (ssets[1:] == ssets[:-1]) & (slines[1:] == slines[:-1])
        if dup.any():
            hits[order[dup]] = True
            keep = np.flatnonzero(~dup)
            run_end = np.concatenate([keep[1:], [n]]) - 1
            sstamps = sstamps[run_end]  # each run's last (surviving) stamp
            ssets = ssets[keep]
            slines = slines[keep]
            order = order[keep]

        true_head = np.ones(1, dtype=bool)
        run_first = np.concatenate([true_head, ssets[1:] != ssets[:-1]])
        run_start = np.flatnonzero(run_first)
        run_of = np.cumsum(run_first) - 1  # run index of each sorted access
        run_sets = ssets[run_start]

        # Distinct (set, line) pairs.  lexsort is stable, so within a pair
        # group the stream order is preserved: the group's first element is
        # the first stream touch, its last the latest.
        porder = np.lexsort((slines, ssets))
        ps = ssets[porder]
        pl = slines[porder]
        pair_first = np.concatenate(
            [true_head, (ps[1:] != ps[:-1]) | (pl[1:] != pl[:-1])]
        )
        up_sets = ps[pair_first]
        up_run = np.searchsorted(run_sets, up_sets)
        distinct_per_run = np.bincount(up_run, minlength=run_sets.size)

        # Closed-form eligibility: the distinct new lines plus the ways
        # already valid fit in the associativity, so nothing is ever
        # evicted.  (Counting resident lines on both sides of the sum only
        # makes the test conservative.)
        valid_per_run = (tags[run_sets] >= 0).sum(axis=1)
        run_closed = distinct_per_run + valid_per_run <= self.assoc

        access_closed = run_closed[run_of]
        if access_closed.any():
            pair_last = np.concatenate([pair_first[1:], true_head])
            pc = run_closed[up_run]
            self._closed_form(
                hits,
                order,
                access_closed,
                up_sets[pc],
                pl[pair_first][pc],
                order[porder[pair_first]][pc],
                sstamps[porder[pair_last]][pc],
            )

        if not access_closed.all():
            open_mask = ~access_closed
            rank = np.arange(ssets.size) - run_start[run_of]
            evictions = self._replay_open(
                hits,
                order[open_mask],
                ssets[open_mask],
                slines[open_mask],
                sstamps[open_mask],
                rank[open_mask],
            )

        self._clock = clock0 + n
        return hits, evictions

    def _closed_form(
        self,
        hits: np.ndarray,
        order: np.ndarray,
        access_closed: np.ndarray,
        up_sets: np.ndarray,
        up_lines: np.ndarray,
        up_first_idx: np.ndarray,
        up_last_stamp: np.ndarray,
    ) -> None:
        """Resolve every closed-form set without stateful replay.

        ``up_*`` describe the distinct (set, line) pairs of closed sets
        only, sorted by set.  Hits: all accesses except the first stream
        touch of each non-resident line.  State: resident lines keep their
        way and take the stamp of their last touch; new lines fill the
        initially-invalid ways in ascending way order, in order of first
        touch — exactly the ways the reference's ``argmin`` picks, because
        invalid ways hold stamp 0 while valid ways hold stamps >= 1.
        """
        tags, stamp = self._tags, self._stamp
        hits[order[access_closed]] = True
        eq = tags[up_sets] == up_lines[:, None]
        resident = eq.any(axis=1)
        first_miss = ~resident
        hits[up_first_idx[first_miss]] = False

        if resident.any():
            ways = eq[resident].argmax(axis=1)
            stamp[up_sets[resident], ways] = up_last_stamp[resident]

        if first_miss.any():
            # Rank each new line within its set by order of first touch.
            ins = np.lexsort((up_first_idx[first_miss], up_sets[first_miss]))
            rs = up_sets[first_miss][ins]
            rstart = np.flatnonzero(
                np.concatenate([np.ones(1, dtype=bool), rs[1:] != rs[:-1]])
            )
            lengths = np.diff(np.concatenate([rstart, [rs.size]]))
            rank = np.arange(rs.size) - np.repeat(rstart, lengths)
            # Invalid ways of each inserting set, in ascending way order.
            iset = rs[rstart]
            way_order = np.argsort(tags[iset] >= 0, axis=1, kind="stable")
            ways = way_order[np.searchsorted(iset, rs), rank]
            tags[rs, ways] = up_lines[first_miss][ins]
            stamp[rs, ways] = up_last_stamp[first_miss][ins]

    def _replay_open(
        self,
        hits: np.ndarray,
        orig_idx: np.ndarray,
        osets: np.ndarray,
        olines: np.ndarray,
        ostamps: np.ndarray,
        rank: np.ndarray,
    ) -> int:
        """Stateful replay for sets whose working set exceeds associativity.

        Inputs are the open accesses in set-grouped stream order with their
        per-set rank.  Processes one access per set per *round* (a batched
        probe/update across all sets active in that round), then a scalar
        per-set tail once fewer than ``MIN_ROUND_SETS`` sets remain active.
        Returns the eviction count.
        """
        tags, stamp = self._tags, self._stamp
        # Re-sort by (rank, set): each round becomes a contiguous slice in
        # which every set appears at most once.
        r2 = np.lexsort((osets, rank))
        osets = osets[r2]
        olines = olines[r2]
        ostamps = ostamps[r2]
        orig_idx = orig_idx[r2]
        rank = rank[r2]

        # Sets active in round r are those with more than r accesses, so
        # round widths are the survival counts of the per-set histogram.
        counts = np.bincount(rank, minlength=0)  # accesses per round
        n_rounds = counts.size
        evictions = 0
        pos = 0
        lanes = np.arange(int(counts[0])) if n_rounds else np.empty(0, np.int64)
        tail_round = n_rounds
        for r in range(n_rounds):
            m = int(counts[r])
            if m < MIN_ROUND_SETS:
                tail_round = r
                break
            sl = slice(pos, pos + m)
            rs = osets[sl]
            rl = olines[sl]
            rows = tags[rs]
            # Fused probe: a matching way sinks below every real stamp
            # (stamps are >= 0), so one argmin yields the hit way on a hit
            # and the LRU victim on a miss.
            probe = np.where(rows == rl[:, None], _SENTINEL, stamp[rs])
            way = probe.argmin(axis=1)
            hit = probe[lanes[:m], way] == _SENTINEL
            miss = ~hit
            evictions += int((rows[lanes[:m], way] >= 0)[miss].sum())
            tags[rs, way] = rl
            stamp[rs, way] = ostamps[sl]
            hits[orig_idx[sl]] = hit
            pos += m

        if tail_round >= n_rounds:
            return evictions

        # Scalar tail: few heavy sets remain; replay each on its own row.
        # The remaining accesses (rank >= tail_round) sit past ``pos``;
        # regroup them by set, preserving rank (stream) order.
        t2 = np.lexsort((rank[pos:], osets[pos:])) + pos
        tsets = osets[t2]
        tlines = olines[t2]
        tstamps = ostamps[t2]
        torig = orig_idx[t2]
        tstart = np.concatenate(
            [[0], np.flatnonzero(tsets[1:] != tsets[:-1]) + 1, [tsets.size]]
        )
        for g in range(tstart.size - 1):
            lo, hi = tstart[g], tstart[g + 1]
            s = int(tsets[lo])
            row = tags[s]
            st = stamp[s]
            for j in range(lo, hi):
                line = tlines[j]
                eq = row == line
                if eq.any():
                    hits[torig[j]] = True
                    st[int(eq.argmax())] = tstamps[j]
                else:
                    victim = int(st.argmin())
                    if row[victim] >= 0:
                        evictions += 1
                    row[victim] = line
                    st[victim] = tstamps[j]
        return evictions


def unique_line_hits(addresses: np.ndarray, line_bytes: int = 32) -> tuple[int, int]:
    """Fast infinite-cache estimate: (accesses, hits-if-cache-were-infinite).

    Useful as an upper bound on locality: every repeat touch of a line hits.
    """
    addr = np.asarray(addresses, dtype=np.int64).ravel()
    lines = addr // line_bytes
    n_unique = int(np.unique(lines).size)
    return int(lines.size), int(lines.size) - n_unique
