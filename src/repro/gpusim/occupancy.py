"""SM occupancy calculator.

Occupancy — resident warps per SM relative to the hardware maximum — governs
how well memory latency is hidden.  The paper's softmax analysis ("the
parallelism of the outer loop is not enough for GPUs to hide instruction
latency ... the number of threads for the kernel is only 128") is an
occupancy/latency argument, and the pooling auto-tuner trades register
pressure (lower occupancy) against register reuse (less traffic).  This
module computes the standard CUDA occupancy limits from a launch
configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, prod

from .device import DeviceSpec
from .kernel import LaunchConfig


@dataclass(frozen=True)
class Occupancy:
    """Resolved occupancy for one kernel launch on one device."""

    blocks_per_sm: int
    warps_per_block: int
    active_warps_per_sm: int
    max_warps_per_sm: int
    limiter: str
    total_threads: int
    waves: float
    active_lane_fraction: float = 1.0

    @property
    def fraction(self) -> float:
        """Occupancy as a fraction of the device maximum (0..1]."""
        return self.active_warps_per_sm / self.max_warps_per_sm


def compute_occupancy(device: DeviceSpec, launch: LaunchConfig) -> Occupancy:
    """Derive occupancy limits for a launch the way the CUDA calculator does.

    Considers the four classical limiters: threads/SM, blocks/SM, registers,
    and shared memory.  Returns the binding limiter name for diagnostics.
    """
    threads_per_block = prod(launch.block)
    if threads_per_block <= 0:
        raise ValueError("block must contain at least one thread")
    if threads_per_block > 1024:
        raise ValueError(f"block of {threads_per_block} threads exceeds 1024")
    warps_per_block = ceil(threads_per_block / device.warp_size)

    limits: dict[str, int] = {
        "threads": device.max_threads_per_sm // threads_per_block,
        "blocks": device.max_blocks_per_sm,
    }
    regs_per_block = launch.regs_per_thread * threads_per_block
    if regs_per_block:
        limits["registers"] = device.regs_per_sm // regs_per_block
    if launch.smem_per_block:
        if launch.smem_per_block > device.smem_per_block_max:
            raise ValueError(
                f"block requests {launch.smem_per_block} B shared memory, "
                f"device max is {device.smem_per_block_max} B"
            )
        limits["shared_memory"] = device.smem_per_sm // launch.smem_per_block
    limiter = min(limits, key=lambda k: limits[k])
    blocks_per_sm = limits[limiter]
    # The warps/SM cap can shave the block count further.
    if blocks_per_sm * warps_per_block > device.max_warps_per_sm:
        blocks_per_sm = device.max_warps_per_sm // warps_per_block
        limiter = "warps"
    active_warps = blocks_per_sm * warps_per_block

    total_blocks = prod(launch.grid)
    total_threads = total_blocks * threads_per_block
    concurrent_blocks = max(1, blocks_per_sm) * device.sm_count
    waves = total_blocks / concurrent_blocks

    return Occupancy(
        blocks_per_sm=blocks_per_sm,
        warps_per_block=warps_per_block,
        active_warps_per_sm=active_warps,
        max_warps_per_sm=device.max_warps_per_sm,
        limiter=limiter,
        total_threads=total_threads,
        waves=waves,
        active_lane_fraction=launch.active_lane_fraction,
    )


def latency_hiding_factor(device: DeviceSpec, occ: Occupancy) -> float:
    """Fraction of peak DRAM bandwidth sustainable at this occupancy.

    Bandwidth saturates once ``bw_warp_saturation`` warps are resident per SM
    (a Little's-law style model); below that it degrades linearly.  A kernel
    whose whole grid does not fill one wave is additionally limited by how
    many warps it launches at all.
    """
    if occ.blocks_per_sm == 0:
        return 0.0
    sat = device.arch.bw_warp_saturation
    launched_warps_per_sm = occ.total_threads / (device.warp_size * device.sm_count)
    resident = min(occ.active_warps_per_sm, max(1.0, launched_warps_per_sm))
    # Predicated-off lanes issue no requests: a warp with 6 of 32 lanes
    # active contributes proportionally less memory-level parallelism.
    resident *= occ.active_lane_fraction
    return min(1.0, resident / sat)
