"""SM occupancy calculator.

Occupancy — resident warps per SM relative to the hardware maximum — governs
how well memory latency is hidden.  The paper's softmax analysis ("the
parallelism of the outer loop is not enough for GPUs to hide instruction
latency ... the number of threads for the kernel is only 128") is an
occupancy/latency argument, and the pooling auto-tuner trades register
pressure (lower occupancy) against register reuse (less traffic).  This
module computes the standard CUDA occupancy limits from a launch
configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, prod

from .device import DeviceSpec
from .kernel import LaunchConfig


class LaunchValidationError(ValueError):
    """A launch configuration cannot run on the device at all.

    Raised by :func:`compute_occupancy` when :func:`check_launch` finds hard
    violations — instead of silently computing a zero-block occupancy that
    downstream latency models would interpret as "no bandwidth".
    """

    def __init__(self, violations: list["LaunchViolation"]) -> None:
        self.violations = violations
        super().__init__("; ".join(v.message for v in violations))


@dataclass(frozen=True)
class LaunchViolation:
    """One device limit a launch configuration exceeds.

    ``code`` is a stable machine-readable identifier consumed by the static
    analyzer (:mod:`repro.analysis.lint`), which maps it onto K0xx rules.
    """

    code: str
    message: str
    actual: float
    limit: float


def check_launch(device: DeviceSpec, launch: LaunchConfig) -> list[LaunchViolation]:
    """Every hard device limit ``launch`` violates (empty list = launchable).

    This is the reusable limit-predicate behind both the occupancy
    calculator (which raises) and the kernel linter (which reports): a
    block larger than the device allows, per-block shared memory or
    per-thread registers over the architectural maximum, and resource
    demands so high that zero blocks fit on an SM (zero occupancy).
    """
    violations: list[LaunchViolation] = []
    threads = launch.threads_per_block
    if threads > device.max_threads_per_block:
        violations.append(
            LaunchViolation(
                "threads_per_block",
                f"block of {threads} threads exceeds the device limit of "
                f"{device.max_threads_per_block} threads per block",
                threads,
                device.max_threads_per_block,
            )
        )
    if threads > device.max_threads_per_sm:
        violations.append(
            LaunchViolation(
                "threads_per_sm",
                f"block of {threads} threads exceeds the SM capacity of "
                f"{device.max_threads_per_sm} threads — zero blocks fit",
                threads,
                device.max_threads_per_sm,
            )
        )
    if launch.regs_per_thread > device.max_regs_per_thread:
        violations.append(
            LaunchViolation(
                "regs_per_thread",
                f"{launch.regs_per_thread} registers per thread exceeds the "
                f"architectural maximum of {device.max_regs_per_thread}",
                launch.regs_per_thread,
                device.max_regs_per_thread,
            )
        )
    regs_per_block = launch.regs_per_thread * threads
    if regs_per_block > device.regs_per_sm:
        violations.append(
            LaunchViolation(
                "regs_per_block",
                f"block demands {regs_per_block} registers, the SM file holds "
                f"{device.regs_per_sm} — zero blocks fit",
                regs_per_block,
                device.regs_per_sm,
            )
        )
    if launch.smem_per_block > device.smem_per_block_max:
        violations.append(
            LaunchViolation(
                "smem_per_block",
                f"block requests {launch.smem_per_block} B shared memory, "
                f"device max is {device.smem_per_block_max} B",
                launch.smem_per_block,
                device.smem_per_block_max,
            )
        )
    elif launch.smem_per_block > device.smem_per_sm:
        violations.append(
            LaunchViolation(
                "smem_per_sm",
                f"block requests {launch.smem_per_block} B shared memory, the "
                f"SM has {device.smem_per_sm} B — zero blocks fit",
                launch.smem_per_block,
                device.smem_per_sm,
            )
        )
    return violations


@dataclass(frozen=True)
class Occupancy:
    """Resolved occupancy for one kernel launch on one device."""

    blocks_per_sm: int
    warps_per_block: int
    active_warps_per_sm: int
    max_warps_per_sm: int
    limiter: str
    total_threads: int
    waves: float
    active_lane_fraction: float = 1.0

    @property
    def fraction(self) -> float:
        """Occupancy as a fraction of the device maximum (0..1]."""
        return self.active_warps_per_sm / self.max_warps_per_sm


def compute_occupancy(device: DeviceSpec, launch: LaunchConfig) -> Occupancy:
    """Derive occupancy limits for a launch the way the CUDA calculator does.

    Considers the four classical limiters: threads/SM, blocks/SM, registers,
    and shared memory.  Returns the binding limiter name for diagnostics.
    Launches that violate a hard device limit (block too large for the
    device or for one SM, register/shared-memory demand that fits zero
    blocks) raise :class:`LaunchValidationError` instead of reporting a
    meaningless zero-block occupancy.
    """
    threads_per_block = prod(launch.block)
    if threads_per_block <= 0:
        raise ValueError("block must contain at least one thread")
    violations = check_launch(device, launch)
    if violations:
        raise LaunchValidationError(violations)
    warps_per_block = ceil(threads_per_block / device.warp_size)

    limits: dict[str, int] = {
        "threads": device.max_threads_per_sm // threads_per_block,
        "blocks": device.max_blocks_per_sm,
    }
    regs_per_block = launch.regs_per_thread * threads_per_block
    if regs_per_block:
        limits["registers"] = device.regs_per_sm // regs_per_block
    if launch.smem_per_block:
        limits["shared_memory"] = device.smem_per_sm // launch.smem_per_block
    limiter = min(limits, key=lambda k: limits[k])
    blocks_per_sm = limits[limiter]
    # The warps/SM cap can shave the block count further.
    if blocks_per_sm * warps_per_block > device.max_warps_per_sm:
        blocks_per_sm = device.max_warps_per_sm // warps_per_block
        limiter = "warps"
    active_warps = blocks_per_sm * warps_per_block

    total_blocks = prod(launch.grid)
    total_threads = total_blocks * threads_per_block
    concurrent_blocks = max(1, blocks_per_sm) * device.sm_count
    waves = total_blocks / concurrent_blocks

    return Occupancy(
        blocks_per_sm=blocks_per_sm,
        warps_per_block=warps_per_block,
        active_warps_per_sm=active_warps,
        max_warps_per_sm=device.max_warps_per_sm,
        limiter=limiter,
        total_threads=total_threads,
        waves=waves,
        active_lane_fraction=launch.active_lane_fraction,
    )


def latency_hiding_factor(device: DeviceSpec, occ: Occupancy) -> float:
    """Fraction of peak DRAM bandwidth sustainable at this occupancy.

    Bandwidth saturates once ``bw_warp_saturation`` warps are resident per SM
    (a Little's-law style model); below that it degrades linearly.  A kernel
    whose whole grid does not fill one wave is additionally limited by how
    many warps it launches at all.
    """
    if occ.blocks_per_sm == 0:
        return 0.0
    sat = device.arch.bw_warp_saturation
    launched_warps_per_sm = occ.total_threads / (device.warp_size * device.sm_count)
    resident = min(occ.active_warps_per_sm, max(1.0, launched_warps_per_sm))
    # Predicated-off lanes issue no requests: a warp with 6 of 32 lanes
    # active contributes proportionally less memory-level parallelism.
    resident *= occ.active_lane_fraction
    return min(1.0, resident / sat)
