"""GPU device specifications used by the memory-hierarchy simulator.

The paper's experiments run on an NVIDIA GTX Titan Black (Kepler GK110) and
are cross-checked on a GTX Titan X (Maxwell GM200).  We encode both as
:class:`DeviceSpec` instances.  A spec captures only the quantities the
performance model consumes: throughput ceilings, memory-system geometry,
latency constants, and a handful of *architecture profile* constants that the
paper would obtain by one-time profiling (Section IV.A: the layout-selection
thresholds "only relate to the property of the hardware").
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class ArchProfile:
    """Architecture-dependent efficiency constants.

    These play the role of the paper's one-time hardware profiling: they are
    not free parameters per layer, but fixed properties of the device that
    calibration (``repro.core.calibration``) can recover by sweeping N and C
    exactly as the paper does in Fig. 4.

    Attributes
    ----------
    direct_conv_peak_eff:
        Fraction of peak FLOPS a fully-reused direct convolution reaches
        (register-tiled CHWN kernel, cuda-convnet style).
    direct_conv_n_saturation:
        Batch size at which per-thread image reuse saturates (the kernel
        processes ``min(N, saturation)/32`` images per thread).  128 on
        Kepler; Maxwell's larger register file and better scheduling
        saturate at 64, which is why the paper reports Nt=64 on Titan X.
    gemm_peak_eff:
        Ceiling efficiency of the SGEMM used by the im2col (NCHW) path.
    direct_conv_tap_half:
        Half-saturation of direct-conv efficiency in the reduction length
        (Ci*Fh*Fw); very shallow inputs (first layers, Ci in {1, 3}) spend
        relatively more time on address arithmetic and fetch.
    gemm_k_half / gemm_m_half / gemm_n_half:
        Half-saturation constants of the GEMM-shape efficiency model
        ``eff = peak * K/(K+k_half) * M/(M+m_half) * N/(N+n_half)``.
        Small reduction dimensions (K = Ci*Fh*Fw) under-utilize the GEMM,
        which is the paper's explanation for NCHW losing at small C.
    gemm_k_floor:
        Lower bound on the K-shape factor; even degenerate GEMMs retain
        some throughput via cuBLAS's tall-skinny kernels.
    fft_stage_eff:
        Fraction of peak FLOPS achieved inside batched FFT stages.
    fft_product_k_half:
        Half-saturation of the frequency-domain pointwise product, which is
        a batched GEMM with K = Ci only (FFT forfeits the Fh*Fw reduction),
        the reason the FFT path collapses at small channel counts.
    fft_workspace_factor:
        Multiplier on the analytic frequency-domain footprint accounting
        for cuFFT workspace and double buffering; used for the 6 GB OOM
        rule behind the paper's Fig. 5 execution failures.
    winograd_peak_eff / winograd_k_half:
        Efficiency law of the fused Winograd product (the Section VII
        future-work extension): hand-fused register-tiled kernels escape
        the generic GEMM K-shape penalty but still need channels to feed
        their reduction.
    pool_l2_locality:
        Fraction of *redundant* overlapped-pooling loads the L2 absorbs
        (cross-window reuse at short distance); the remainder reaches DRAM.
    mlp_per_thread:
        Memory-level parallelism: outstanding global loads a single thread
        sustains, used by the latency-bound throughput model.
    bw_warp_saturation:
        Resident warps per SM needed to saturate DRAM bandwidth.
    """

    direct_conv_peak_eff: float = 0.50
    direct_conv_n_saturation: int = 128
    direct_conv_tap_half: float = 16.0
    gemm_peak_eff: float = 0.55
    gemm_k_half: float = 350.0
    gemm_m_half: float = 8.0
    gemm_n_half: float = 64.0
    gemm_k_floor: float = 0.15
    fft_stage_eff: float = 0.32
    fft_product_k_half: float = 64.0
    fft_workspace_factor: float = 4.5
    winograd_peak_eff: float = 0.50
    winograd_k_half: float = 128.0
    mlp_per_thread: int = 6
    bw_warp_saturation: int = 16
    pool_l2_locality: float = 0.55


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a GPU for the simulator.

    Bandwidth is the *effective* (achievable) DRAM bandwidth, matching the
    paper's use of 235 GB/s for the Titan Black rather than the theoretical
    336 GB/s.
    """

    name: str
    sm_count: int
    peak_gflops: float
    mem_bandwidth_gbs: float
    clock_ghz: float
    dram_gib: float
    warp_size: int = 32
    max_threads_per_block: int = 1024
    max_threads_per_sm: int = 2048
    max_warps_per_sm: int = 64
    max_blocks_per_sm: int = 16
    regs_per_sm: int = 65536
    max_regs_per_thread: int = 255
    smem_per_sm: int = 48 * 1024
    smem_per_block_max: int = 48 * 1024
    l2_bytes: int = 1536 * 1024
    l2_line_bytes: int = 32
    l2_assoc: int = 16
    transaction_bytes: int = 32
    mem_latency_cycles: int = 500
    launch_overhead_us: float = 5.0
    smem_banks: int = 32
    smem_bank_bytes: int = 4
    #: Empirical fraction of effective DRAM bandwidth reachable per access
    #: width.  Plain 4-byte streaming kernels on Kepler top out well below
    #: peak (instruction-issue limited); 8-byte (float2) vectorized access
    #: nearly saturates — the effect the paper exploits in its Opt2
    #: transformation kernel ("to fully utilize the bandwidth in 8-byte
    #: mode, we apply vectorization").
    bw_eff_4b: float = 0.87
    bw_eff_8b: float = 0.97
    bw_eff_16b: float = 1.0
    arch: ArchProfile = field(default_factory=ArchProfile)

    def __post_init__(self) -> None:
        if self.sm_count <= 0 or self.peak_gflops <= 0:
            raise ValueError("device must have positive SM count and FLOPS")
        if self.mem_bandwidth_gbs <= 0 or self.clock_ghz <= 0:
            raise ValueError("device must have positive bandwidth and clock")
        if self.warp_size & (self.warp_size - 1):
            raise ValueError("warp size must be a power of two")

    @property
    def max_concurrent_threads(self) -> int:
        """Total threads resident across all SMs at full occupancy."""
        return self.sm_count * self.max_threads_per_sm

    @property
    def dram_bytes(self) -> int:
        """Device memory capacity in bytes (for OOM checks)."""
        return int(self.dram_gib * (1 << 30))

    @property
    def bytes_per_cycle(self) -> float:
        """Effective DRAM bytes delivered per core clock cycle."""
        return self.mem_bandwidth_gbs * 1e9 / (self.clock_ghz * 1e9)

    def access_bw_efficiency(self, access_bytes: int) -> float:
        """Bandwidth derate for a kernel's dominant access width."""
        if access_bytes >= 16:
            return self.bw_eff_16b
        if access_bytes >= 8:
            return self.bw_eff_8b
        return self.bw_eff_4b

    def with_arch(self, **kwargs: float) -> "DeviceSpec":
        """Return a copy with updated :class:`ArchProfile` fields."""
        return replace(self, arch=replace(self.arch, **kwargs))


#: GTX Titan Black (Kepler GK110B) — the paper's primary platform.
#: 5121 GFLOPS single precision and 235 GB/s effective bandwidth are the
#: figures quoted in Section III.B.
TITAN_BLACK = DeviceSpec(
    name="GTX Titan Black",
    sm_count=15,
    peak_gflops=5121.0,
    mem_bandwidth_gbs=235.0,
    clock_ghz=0.980,
    dram_gib=6.0,
)

#: GTX Titan X (Maxwell GM200) — the paper's secondary platform.  The arch
#: profile shifts the layout crossovers, reproducing the paper's observation
#: that (Ct, Nt) moves from (32, 128) on Kepler to (128, 64) on Maxwell.
TITAN_X = DeviceSpec(
    name="GTX Titan X",
    sm_count=24,
    peak_gflops=6144.0,
    mem_bandwidth_gbs=280.0,
    clock_ghz=1.000,
    dram_gib=12.0,
    l2_bytes=3 * 1024 * 1024,
    mem_latency_cycles=400,
    arch=ArchProfile(
        direct_conv_peak_eff=0.55,
        direct_conv_n_saturation=64,
        gemm_peak_eff=0.52,
        gemm_k_half=650.0,
        mlp_per_thread=8,
    ),
)

_REGISTRY: dict[str, DeviceSpec] = {
    "titan-black": TITAN_BLACK,
    "titan-x": TITAN_X,
}


def get_device(name: str) -> DeviceSpec:
    """Look up a device spec by registry name (``titan-black``/``titan-x``)."""
    key = name.strip().lower().replace("_", "-").replace(" ", "-")
    aliases = {
        "gtx-titan-black": "titan-black",
        "gtx-titan-x": "titan-x",
        "kepler": "titan-black",
        "maxwell": "titan-x",
    }
    key = aliases.get(key, key)
    try:
        return _REGISTRY[key]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown device {name!r}; known devices: {known}") from None


def list_devices() -> list[str]:
    """Names of all registered device specs."""
    return sorted(_REGISTRY)


def register_device(key: str, spec: DeviceSpec) -> None:
    """Register a custom device spec under ``key`` for CLI/plan lookups."""
    _REGISTRY[key.strip().lower()] = spec
