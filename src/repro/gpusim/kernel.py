"""Kernel abstractions for the GPU performance model.

A :class:`KernelModel` describes one GPU kernel launch the way the paper
reasons about kernels: a launch configuration (grid/block/registers/shared
memory), an arithmetic workload (FLOPs and an ALU-efficiency estimate), and a
memory workload (:class:`MemoryProfile`: useful bytes, transactions after
coalescing, L2 hit rate, and the sequential-dependence structure that drives
latency-bound behaviour).

Concrete kernels (direct convolution, im2col+GEMM, pooling in each layout,
the softmax variants, the layout-transform kernels) live next to their layer
in ``repro.layers`` / ``repro.tensors``; this module only defines the shared
vocabulary consumed by :mod:`repro.gpusim.engine`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from math import prod

from .device import DeviceSpec

GridDim = tuple[int, int, int]


def _as_dim3(value: int | tuple[int, ...]) -> GridDim:
    if isinstance(value, int):
        value = (value,)
    dims = tuple(int(v) for v in value) + (1, 1, 1)
    if any(v <= 0 for v in dims[:3]):
        raise ValueError(f"grid/block dims must be positive, got {value!r}")
    return dims[:3]


@dataclass(frozen=True)
class LaunchConfig:
    """CUDA-style launch configuration."""

    grid: GridDim
    block: GridDim
    regs_per_thread: int = 32
    smem_per_block: int = 0
    #: fraction of warp lanes doing useful work (tiny blocks and padded
    #: rows leave lanes predicated off, wasting issued bandwidth)
    active_lane_fraction: float = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "grid", _as_dim3(self.grid))
        object.__setattr__(self, "block", _as_dim3(self.block))
        if self.regs_per_thread < 0 or self.smem_per_block < 0:
            raise ValueError("resource usage cannot be negative")
        if not 0.0 < self.active_lane_fraction <= 1.0:
            raise ValueError("active_lane_fraction must be in (0, 1]")

    @property
    def threads_per_block(self) -> int:
        return prod(self.block)

    @property
    def total_blocks(self) -> int:
        return prod(self.grid)

    @property
    def total_threads(self) -> int:
        return self.total_blocks * self.threads_per_block


@dataclass(frozen=True)
class MemoryProfile:
    """Post-coalescing memory workload of one kernel launch.

    Attributes
    ----------
    load_bytes / store_bytes:
        Useful bytes requested by threads (the algorithmic footprint).
    load_transactions / store_transactions:
        32-byte memory transactions after warp coalescing.
    l2_hit_rate:
        Fraction of load transactions served from L2 (stores are modelled
        as write-through to DRAM, matching Kepler global stores).
    dependent_iterations:
        Length of the longest *sequential* chain of memory rounds a single
        thread must perform (loop-carried dependences, e.g. the softmax
        reductions).  Feeds the latency-bound term together with occupancy.
    smem_conflict_degree:
        Average shared-memory replay factor (1.0 = conflict-free); produced
        by :mod:`repro.gpusim.sharedmem` for tiled kernels.
    access_bytes:
        Dominant per-thread access width (4 = float, 8 = float2); selects
        the device's empirical bandwidth derate for that width.
    """

    load_bytes: float
    store_bytes: float
    load_transactions: float
    store_transactions: float
    l2_hit_rate: float = 0.0
    dependent_iterations: float = 1.0
    smem_conflict_degree: float = 1.0
    access_bytes: int = 4
    #: measured L2 hit rate from replaying the kernel's sampled transaction
    #: stream through the cache model — a diagnostic counter (reported, not
    #: fed into timing, which uses the modelled ``l2_hit_rate`` above)
    traced_l2_hit_rate: float | None = None

    def __post_init__(self) -> None:
        if min(self.load_bytes, self.store_bytes) < 0:
            raise ValueError("byte counts cannot be negative")
        if min(self.load_transactions, self.store_transactions) < 0:
            raise ValueError("transaction counts cannot be negative")
        if not 0.0 <= self.l2_hit_rate <= 1.0:
            raise ValueError(f"l2_hit_rate must be in [0, 1], got {self.l2_hit_rate}")
        if self.traced_l2_hit_rate is not None and not (
            0.0 <= self.traced_l2_hit_rate <= 1.0
        ):
            raise ValueError(
                f"traced_l2_hit_rate must be in [0, 1], got {self.traced_l2_hit_rate}"
            )
        if self.smem_conflict_degree < 1.0:
            raise ValueError("conflict degree cannot be below 1.0")

    @property
    def useful_bytes(self) -> float:
        return self.load_bytes + self.store_bytes

    @property
    def total_transactions(self) -> float:
        return self.load_transactions + self.store_transactions

    def dram_bytes(self, transaction_bytes: int = 32) -> float:
        """Bytes that actually cross the DRAM bus."""
        dram_loads = self.load_transactions * (1.0 - self.l2_hit_rate)
        return (dram_loads + self.store_transactions) * transaction_bytes

    def scaled(self, factor: float) -> "MemoryProfile":
        """Scale all traffic counters (used when extrapolating sampled warps)."""
        return MemoryProfile(
            load_bytes=self.load_bytes * factor,
            store_bytes=self.store_bytes * factor,
            load_transactions=self.load_transactions * factor,
            store_transactions=self.store_transactions * factor,
            l2_hit_rate=self.l2_hit_rate,
            dependent_iterations=self.dependent_iterations,
            smem_conflict_degree=self.smem_conflict_degree,
            access_bytes=self.access_bytes,
            traced_l2_hit_rate=self.traced_l2_hit_rate,
        )

    @staticmethod
    def coalesced(load_bytes: float, store_bytes: float, **kwargs: float) -> "MemoryProfile":
        """Profile for a perfectly coalesced kernel (4 bytes/lane, 32B segments)."""
        return MemoryProfile(
            load_bytes=load_bytes,
            store_bytes=store_bytes,
            load_transactions=load_bytes / 32.0,
            store_transactions=store_bytes / 32.0,
            **kwargs,
        )


class KernelModel(ABC):
    """One modelled GPU kernel.

    Subclasses describe *what the kernel does to the memory system*; the
    engine turns that into time.  ``n_launches`` > 1 models multi-pass
    implementations (the 5-kernel softmax, FFT's transform/product/inverse
    passes) where each pass pays a launch overhead.
    """

    #: human-readable kernel name used in reports
    name: str = "kernel"
    #: number of back-to-back kernel launches this model represents
    n_launches: int = 1
    #: instance attributes that are derived memo caches, not structure —
    #: excluded from :meth:`structural_state` so a used kernel hashes the
    #: same as a freshly built one
    structural_exclude: frozenset[str] = frozenset()

    @abstractmethod
    def launch_config(self, device: DeviceSpec) -> LaunchConfig:
        """Launch geometry on the given device."""

    @abstractmethod
    def flop_count(self) -> float:
        """Total floating-point operations performed."""

    @abstractmethod
    def memory_profile(self, device: DeviceSpec) -> MemoryProfile:
        """Post-coalescing memory workload on the given device."""

    def alu_efficiency(self, device: DeviceSpec) -> float:
        """Fraction of peak FLOPS the arithmetic pipeline can sustain."""
        return 0.7

    def workspace_bytes(self) -> float:
        """Extra device memory required beyond inputs/outputs (OOM checks)."""
        return 0.0

    def structural_state(self) -> dict[str, object]:
        """The instance state that determines this kernel's timing.

        Together with the class identity and the device spec this is the
        basis of the structural cache key in :mod:`repro.gpusim.session`:
        two models of the same class with equal structural state produce
        identical stats and may share one cache entry.  Subclasses with
        derived memo attributes list them in ``structural_exclude``.
        """
        return {
            k: v for k, v in vars(self).items() if k not in self.structural_exclude
        }


@dataclass
class ComposedKernel(KernelModel):
    """A fixed sequence of kernels reported as a single logical operation.

    Used for implementations the paper treats as one layer call made of
    several passes (im2col + GEMM, the FFT pipeline, naive multi-kernel
    softmax).  Timing composes additively in the engine; this class only
    aggregates the static description for reporting.
    """

    kernels: list[KernelModel] = field(default_factory=list)
    name: str = "composed"

    def __post_init__(self) -> None:
        if not self.kernels:
            raise ValueError("ComposedKernel needs at least one kernel")
        self.n_launches = sum(k.n_launches for k in self.kernels)

    def launch_config(self, device: DeviceSpec) -> LaunchConfig:
        return self.kernels[0].launch_config(device)

    def flop_count(self) -> float:
        return sum(k.flop_count() for k in self.kernels)

    def memory_profile(self, device: DeviceSpec) -> MemoryProfile:
        profiles = [k.memory_profile(device) for k in self.kernels]
        total_loads = sum(p.load_transactions for p in profiles)
        hit = (
            sum(p.l2_hit_rate * p.load_transactions for p in profiles) / total_loads
            if total_loads
            else 0.0
        )
        return MemoryProfile(
            load_bytes=sum(p.load_bytes for p in profiles),
            store_bytes=sum(p.store_bytes for p in profiles),
            load_transactions=total_loads,
            store_transactions=sum(p.store_transactions for p in profiles),
            l2_hit_rate=hit,
            dependent_iterations=max(p.dependent_iterations for p in profiles),
            smem_conflict_degree=max(p.smem_conflict_degree for p in profiles),
            access_bytes=min(p.access_bytes for p in profiles),
        )

    def workspace_bytes(self) -> float:
        return max(k.workspace_bytes() for k in self.kernels)
