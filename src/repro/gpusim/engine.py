"""Simulation engine: run kernel models, sequences, and whole pipelines.

The engine is the single entry point the rest of the library uses to turn
:class:`~repro.gpusim.kernel.KernelModel` objects into
:class:`~repro.gpusim.timing.KernelStats`.  It adds:

* device-memory (OOM) checking against the card's capacity — the mechanism
  behind the paper's "no results for both FFT options due to execution
  failures" on CV5/CV6;
* sequencing of multi-kernel implementations with per-launch overheads;
* a tiny result cache so repeated planner queries stay cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .device import DeviceSpec
from .kernel import ComposedKernel, KernelModel
from .timing import KernelStats, time_model


class GpuOutOfMemoryError(RuntimeError):
    """Raised when a kernel's footprint exceeds the device's DRAM."""

    def __init__(self, kernel: str, required: float, available: float) -> None:
        self.kernel = kernel
        self.required_bytes = required
        self.available_bytes = available
        super().__init__(
            f"{kernel}: requires {required / 2**30:.2f} GiB device memory, "
            f"card has {available / 2**30:.2f} GiB"
        )


@dataclass(frozen=True)
class SequenceStats:
    """Aggregated stats for a sequence of kernel launches."""

    name: str
    kernels: tuple[KernelStats, ...]

    @property
    def time_ms(self) -> float:
        return sum(k.time_ms for k in self.kernels)

    @property
    def flops(self) -> float:
        return sum(k.flops for k in self.kernels)

    @property
    def dram_bytes(self) -> float:
        return sum(k.dram_bytes for k in self.kernels)

    @property
    def useful_bytes(self) -> float:
        return sum(k.useful_bytes for k in self.kernels)

    @property
    def achieved_gflops(self) -> float:
        return self.flops / (self.time_ms * 1e6) if self.time_ms else 0.0

    @property
    def achieved_bandwidth_gbs(self) -> float:
        return self.dram_bytes / (self.time_ms * 1e6) if self.time_ms else 0.0

    @property
    def effective_bandwidth_gbs(self) -> float:
        return self.useful_bytes / (self.time_ms * 1e6) if self.time_ms else 0.0


@dataclass
class SimulationEngine:
    """Times kernel models on a device, with OOM checks and memoization."""

    device: DeviceSpec
    check_memory: bool = True
    tensor_bytes_resident: float = 0.0
    # Keyed by id(model); the value keeps a strong reference to the model so
    # its id cannot be recycled by the garbage collector.
    _cache: dict[tuple[int, str], tuple[KernelModel, KernelStats]] = field(
        default_factory=dict, repr=False
    )

    def run(self, model: KernelModel) -> KernelStats:
        """Time one kernel model; raises :class:`GpuOutOfMemoryError` if its
        workspace plus resident tensors exceed device memory."""
        if isinstance(model, ComposedKernel):
            seq = self.run_sequence(model.kernels, name=model.name)
            return _collapse_sequence(seq, self.device)
        self._check_fit(model)
        key = (id(model), self.device.name)
        hit = self._cache.get(key)
        if hit is not None and hit[0] is model:
            return hit[1]
        stats = time_model(self.device, model)
        self._cache[key] = (model, stats)
        return stats

    def run_sequence(
        self, models: list[KernelModel], name: str = "sequence"
    ) -> SequenceStats:
        """Time a dependent sequence of kernels (no overlap between them:
        the paper's inter-kernel data passes through off-chip memory, so the
        next kernel cannot start early)."""
        return SequenceStats(name=name, kernels=tuple(self.run(m) for m in models))

    def _check_fit(self, model: KernelModel) -> None:
        if not self.check_memory:
            return
        required = model.workspace_bytes() + self.tensor_bytes_resident
        if required > self.device.dram_bytes:
            raise GpuOutOfMemoryError(model.name, required, self.device.dram_bytes)


def _collapse_sequence(seq: SequenceStats, device: DeviceSpec) -> KernelStats:
    """Fold a sequence into a single KernelStats for uniform reporting."""
    first = seq.kernels[0]
    return KernelStats(
        name=seq.name,
        device=device.name,
        time_ms=seq.time_ms,
        compute_ms=sum(k.compute_ms for k in seq.kernels),
        memory_ms=sum(k.memory_ms for k in seq.kernels),
        launch_ms=sum(k.launch_ms for k in seq.kernels),
        flops=seq.flops,
        dram_bytes=seq.dram_bytes,
        useful_bytes=seq.useful_bytes,
        transactions=sum(k.transactions for k in seq.kernels),
        occupancy=first.occupancy,
        bound=max(seq.kernels, key=lambda k: k.time_ms).bound,
        alu_utilization=seq.flops
        / (seq.time_ms * 1e6 * device.peak_gflops)
        if seq.time_ms
        else 0.0,
        n_launches=sum(k.n_launches for k in seq.kernels),
    )


def simulate(device: DeviceSpec, model: KernelModel) -> KernelStats:
    """One-shot convenience wrapper around :class:`SimulationEngine`."""
    return SimulationEngine(device).run(model)
