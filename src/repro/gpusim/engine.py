"""Simulation engine: the compatibility facade over simulation sessions.

Historically this module owned the cache and OOM logic; both now live in
:mod:`repro.gpusim.session`.  :class:`SimulationEngine` remains the familiar
entry point — everything it did (OOM checking, sequencing, memoization) it
still does — but it is a thin shim delegating to a :class:`SimulationContext`.
Engines built without an explicit context share the process-wide default
session for their device, so the old engine-per-call-site pattern now feeds
one hot structural cache instead of a dead ``id(model)``-keyed one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .device import DeviceSpec
from .kernel import KernelModel
from .session import (
    GpuOutOfMemoryError,
    SequenceStats,
    SimulationContext,
    default_context,
)
from .timing import KernelStats

__all__ = [
    "GpuOutOfMemoryError",
    "SequenceStats",
    "SimulationContext",
    "SimulationEngine",
    "default_context",
    "simulate",
]


@dataclass
class SimulationEngine:
    """Times kernel models on a device, with OOM checks and memoization.

    Compatibility shim: construction is unchanged, but the timing cache is
    the structural, content-addressed cache of the underlying
    :class:`~repro.gpusim.session.SimulationContext` (the shared per-device
    default session unless one is passed explicitly), so structurally equal
    kernels built at different call sites share one timing.
    """

    device: DeviceSpec
    check_memory: bool = True
    tensor_bytes_resident: float = 0.0
    context: SimulationContext | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.context is None:
            self.context = default_context(self.device)
        elif self.context.device is not self.device and (
            self.context.device != self.device
        ):
            raise ValueError(
                f"context simulates {self.context.device.name!r}, "
                f"engine asked for {self.device.name!r}"
            )

    @property
    def stats(self):
        """The underlying session's instrumentation counters."""
        return self.context.stats

    def run(self, model: KernelModel) -> KernelStats:
        """Time one kernel model; raises :class:`GpuOutOfMemoryError` if its
        workspace plus resident tensors exceed device memory."""
        return self.context.run(
            model,
            check_memory=self.check_memory,
            tensor_bytes_resident=self.tensor_bytes_resident,
        )

    def run_sequence(
        self, models: list[KernelModel], name: str = "sequence"
    ) -> SequenceStats:
        """Time a dependent sequence of kernels (no overlap between them:
        the paper's inter-kernel data passes through off-chip memory, so the
        next kernel cannot start early)."""
        return self.context.run_sequence(
            models,
            name=name,
            check_memory=self.check_memory,
            tensor_bytes_resident=self.tensor_bytes_resident,
        )


def simulate(device: DeviceSpec, model: KernelModel) -> KernelStats:
    """One-shot convenience wrapper around :class:`SimulationEngine`."""
    return SimulationEngine(device).run(model)
