"""Human-readable reports over simulated kernel statistics.

The paper argues from profiler counters (achieved bandwidth, ALU
utilization, DRAM transactions); this module renders the simulator's
equivalent counters the same way, plus a classic roofline placement so the
compute-vs-memory-bound story of each kernel is visible at a glance.
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import DeviceSpec
from .timing import KernelStats


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel placed on the device's roofline."""

    arithmetic_intensity: float  # flops per DRAM byte
    achieved_gflops: float
    roof_gflops: float  # min(peak, intensity * bandwidth)

    @property
    def efficiency(self) -> float:
        """Fraction of the attainable roof actually achieved."""
        return self.achieved_gflops / self.roof_gflops if self.roof_gflops else 0.0

    @property
    def memory_bound(self) -> bool:
        """True when the roof at this intensity is the bandwidth slope
        rather than the compute ceiling."""
        return self.roof_gflops < self._peak

    # the device's compute ceiling, set by :func:`roofline_point`
    _peak: float = 0.0


def roofline_point(device: DeviceSpec, stats: KernelStats) -> RooflinePoint:
    """Place a kernel on ``device``'s roofline."""
    intensity = stats.flops / stats.dram_bytes if stats.dram_bytes else float("inf")
    slope_roof = intensity * device.mem_bandwidth_gbs  # GFLOPS at this intensity
    roof = min(device.peak_gflops, slope_roof)
    return RooflinePoint(
        arithmetic_intensity=intensity,
        achieved_gflops=stats.achieved_gflops,
        roof_gflops=roof,
        _peak=device.peak_gflops,
    )


def kernel_report(device: DeviceSpec, stats: KernelStats) -> str:
    """Multi-line profiler-style report for one kernel."""
    occ = stats.occupancy
    point = roofline_point(device, stats)
    lines = [
        f"kernel {stats.name!r} on {stats.device}",
        f"  time          : {stats.time_ms:10.4f} ms "
        f"(compute {stats.compute_ms:.4f} | memory {stats.memory_ms:.4f} | "
        f"launch {stats.launch_ms:.4f})",
        f"  bound by      : {stats.bound}",
        f"  occupancy     : {occ.active_warps_per_sm}/{occ.max_warps_per_sm} "
        f"warps/SM ({occ.fraction:.0%}), limiter: {occ.limiter}, "
        f"waves: {occ.waves:.1f}",
        f"  DRAM traffic  : {stats.dram_bytes / 2**20:10.2f} MiB "
        f"({stats.achieved_bandwidth_gbs:.1f} GB/s achieved, "
        f"{stats.effective_bandwidth_gbs:.1f} GB/s effective)",
        f"  transactions  : {stats.transactions:,.0f}",
        f"  arithmetic    : {stats.flops / 1e9:10.2f} GFLOP at "
        f"{stats.achieved_gflops:.0f} GFLOPS "
        f"(ALU utilization {stats.alu_utilization:.1%})",
        f"  roofline      : intensity {point.arithmetic_intensity:.2f} flop/B, "
        f"roof {point.roof_gflops:.0f} GFLOPS, "
        f"{point.efficiency:.0%} of attainable",
    ]
    return "\n".join(lines)


def comparison_table(
    device: DeviceSpec, entries: list[tuple[str, KernelStats]]
) -> str:
    """Side-by-side table for several kernels (e.g. one layer, all impls)."""
    header = (
        f"{'variant':22s} {'time(ms)':>10s} {'bound':>18s} {'GFLOPS':>8s} "
        f"{'GB/s':>7s} {'occ':>5s}"
    )
    rows = [header, "-" * len(header)]
    for label, stats in entries:
        rows.append(
            f"{label:22s} {stats.time_ms:10.4f} {stats.bound:>18s} "
            f"{stats.achieved_gflops:8.0f} {stats.achieved_bandwidth_gbs:7.1f} "
            f"{stats.occupancy.fraction:5.0%}"
        )
    return "\n".join(rows)
