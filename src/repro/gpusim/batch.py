"""Batched analytic kernel evaluation: struct-of-arrays over candidates.

The sweeps, the (Ct, Nt) calibration, the pooling auto-tuner, and the layout
planner's per-edge cost queries all evaluate *grids* of independent kernel
candidates, yet the scalar path walks the analytic stack (`occupancy` →
`dram.memory_service_time` → `timing`) one kernel at a time, paying Python
call overhead, structural-key hashing, and per-call bookkeeping per
candidate.  The model itself is closed form, so a whole candidate axis can
evaluate in a handful of NumPy operations instead.

This module is that batched evaluator:

* :class:`EvalSpec` — the primitive inputs of one
  :func:`~repro.gpusim.timing.time_kernel` call, extracted from a
  :class:`~repro.gpusim.kernel.KernelModel` with :meth:`EvalSpec.from_model`;
* :class:`CandidateBatch` — the struct-of-arrays candidate table
  (:meth:`CandidateBatch.from_specs`);
* :func:`evaluate_batch` — vectorized occupancy, latency hiding, DRAM
  service times, and the roofline/timing combination over the whole table;
* :func:`evaluate_models` — the consumer entry point: expands composed
  kernels, captures per-candidate OOM/validation failures as in-slot error
  values, and falls back to the scalar ``context.run`` loop when batching
  is disabled (:func:`set_batched_eval`).

**Bit-identity contract** (same as the L2 fast path, see
``docs/PERFORMANCE.md``): every arithmetic expression below mirrors the
scalar path's expression tree operation for operation, in float64/int64, so
the produced :class:`~repro.gpusim.timing.KernelStats` are bit-identical to
:func:`~repro.gpusim.timing.time_model`'s — enforced by the golden tests in
``tests/gpusim/test_batch.py`` and the ``bench_planner_perf.py --check``
gate.  The dictionary tie-breaks of the scalar limiter selections (first
key wins on equal values) map onto ``argmin``/``argmax`` first-occurrence
semantics with rows stacked in dictionary insertion order.

Two deliberate non-goals: the batch path does not consult or populate the
session's structural timing cache (hashing each candidate would reinstate
the per-candidate overhead it removes; the computed values are identical to
cached ones anyway), and the ``dram.limiter.*`` / ``dram.bytes_total``
metrics are incremented in aggregate per batch rather than once per scalar
call, so metric *counts* can differ from a scalar run even though every
table and stats field is byte-identical.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, NamedTuple, Sequence

import numpy as np

from ..obs.metrics import global_registry
from ..obs.tracer import span as obs_span
from .cache import cache_sim_snapshot
from .device import DeviceSpec
from .kernel import ComposedKernel, KernelModel, LaunchConfig, MemoryProfile
from .occupancy import Occupancy, compute_occupancy
from .timing import KernelStats

if TYPE_CHECKING:
    from .session import SimulationContext

__all__ = [
    "CandidateBatch",
    "EvalSpec",
    "batched_eval_enabled",
    "evaluate_batch",
    "evaluate_models",
    "evaluate_specs",
    "launch_invalid_mask",
    "set_batched_eval",
]

_BATCHED_DEFAULT = True

#: occupancy limiter names, in the scalar ``limits`` dict insertion order
#: (plus the warps cap applied after the argmin)
_OCC_LIMITERS = ("threads", "blocks", "registers", "shared_memory", "warps")
#: memory limiter names, in the scalar ``times`` dict insertion order
_MEM_LIMITERS = ("dram_bandwidth", "transaction_issue", "memory_latency")
#: bound labels indexed by code: memory limiters, then compute, then launch
_BOUNDS = _MEM_LIMITERS + ("compute", "launch_overhead")

#: larger than any real per-SM block limit: rows for resources a candidate
#: does not use never win the argmin, matching the scalar path's omission
#: of those dict entries
_NO_LIMIT = np.iinfo(np.int64).max


def set_batched_eval(enabled: bool) -> bool:
    """Select whether :func:`evaluate_models` vectorizes or runs scalar.

    Returns the previous setting (mirroring
    :func:`~repro.gpusim.cache.set_fast_path`).  Benchmarks and the golden
    tests flip this to compare both paths on identical inputs.
    """
    global _BATCHED_DEFAULT
    previous = _BATCHED_DEFAULT
    _BATCHED_DEFAULT = bool(enabled)
    return previous


def batched_eval_enabled() -> bool:
    """Whether :func:`evaluate_models` currently takes the batched path."""
    return _BATCHED_DEFAULT


class EvalSpec(NamedTuple):
    """The primitive inputs of one scalar ``time_kernel`` call.

    A ``NamedTuple`` rather than a dataclass: one is built per candidate on
    the hot path, and tuple construction is measurably cheaper than frozen
    dataclass field assignment.
    """

    launch: LaunchConfig
    flops: float
    alu_efficiency: float
    profile: MemoryProfile
    n_launches: int = 1
    name: str = "kernel"

    @classmethod
    def from_model(cls, model: KernelModel, device: DeviceSpec) -> "EvalSpec":
        """Extract the model's primitive terms (same call order as
        :func:`~repro.gpusim.timing.time_model`)."""
        return cls(
            model.launch_config(device),
            model.flop_count(),
            model.alu_efficiency(device),
            model.memory_profile(device),
            model.n_launches,
            model.name,
        )

    @property
    def kind(self) -> str:
        """Kernel family, as :func:`repro.gpusim.session._kind_of`."""
        return self.name.split("-", 1)[0] if self.name else "kernel"


@dataclass(frozen=True)
class CandidateBatch:
    """Struct-of-arrays table of kernel candidates.

    Integer resource columns are int64, workload columns float64 — the
    types the scalar expressions see (Python ints divide to exact float64
    for every value range the model produces).
    """

    device: DeviceSpec
    specs: tuple[EvalSpec, ...]
    threads_per_block: np.ndarray
    total_blocks: np.ndarray
    regs_per_thread: np.ndarray
    smem_per_block: np.ndarray
    lane_fraction: np.ndarray
    flops: np.ndarray
    alu_efficiency: np.ndarray
    n_launches: np.ndarray
    load_transactions: np.ndarray
    store_transactions: np.ndarray
    l2_hit_rate: np.ndarray
    dependent_iterations: np.ndarray
    smem_conflict_degree: np.ndarray
    access_bytes: np.ndarray

    def __len__(self) -> int:
        return len(self.specs)

    @classmethod
    def from_specs(
        cls, device: DeviceSpec, specs: Sequence[EvalSpec]
    ) -> "CandidateBatch":
        """Gather the candidate axis into columnar arrays (one pass over
        the specs; each spec contributes one row tuple)."""
        specs = tuple(specs)
        if not specs:
            empty_i = np.empty(0, dtype=np.int64)
            empty_f = np.empty(0, dtype=np.float64)
            return cls(
                device, specs, empty_i, empty_i, empty_i, empty_i, empty_f,
                empty_f, empty_f, empty_i, empty_f, empty_f, empty_f,
                empty_f, empty_f, empty_i,
            )
        rows = [
            (
                lc.threads_per_block,
                lc.total_blocks,
                lc.regs_per_thread,
                lc.smem_per_block,
                lc.active_lane_fraction,
                s.flops,
                s.alu_efficiency,
                s.n_launches,
                p.load_transactions,
                p.store_transactions,
                p.l2_hit_rate,
                p.dependent_iterations,
                p.smem_conflict_degree,
                p.access_bytes,
            )
            for s in specs
            for lc, p in ((s.launch, s.profile),)
        ]
        (
            tpb, blocks, regs, smem, lane, flops, alu, launches,
            loads, stores, l2, dep, conflict, access,
        ) = zip(*rows)
        return cls(
            device=device,
            specs=specs,
            threads_per_block=np.array(tpb, dtype=np.int64),
            total_blocks=np.array(blocks, dtype=np.int64),
            regs_per_thread=np.array(regs, dtype=np.int64),
            smem_per_block=np.array(smem, dtype=np.int64),
            lane_fraction=np.array(lane, dtype=np.float64),
            flops=np.array(flops, dtype=np.float64),
            alu_efficiency=np.array(alu, dtype=np.float64),
            n_launches=np.array(launches, dtype=np.int64),
            load_transactions=np.array(loads, dtype=np.float64),
            store_transactions=np.array(stores, dtype=np.float64),
            l2_hit_rate=np.array(l2, dtype=np.float64),
            dependent_iterations=np.array(dep, dtype=np.float64),
            smem_conflict_degree=np.array(conflict, dtype=np.float64),
            access_bytes=np.array(access, dtype=np.int64),
        )


def launch_invalid_mask(device: DeviceSpec, batch: CandidateBatch) -> np.ndarray:
    """True for candidates :func:`~repro.gpusim.occupancy.check_launch`
    would reject (the scalar path raises ``LaunchValidationError``)."""
    tpb = batch.threads_per_block
    regs_per_block = batch.regs_per_thread * tpb
    return (
        (tpb > device.max_threads_per_block)
        | (tpb > device.max_threads_per_sm)
        | (batch.regs_per_thread > device.max_regs_per_thread)
        | (regs_per_block > device.regs_per_sm)
        | (batch.smem_per_block > min(device.smem_per_block_max, device.smem_per_sm))
    )


def evaluate_batch(
    device: DeviceSpec, batch: CandidateBatch
) -> list[KernelStats]:
    """Vectorized ``time_kernel`` over every candidate in ``batch``.

    Every candidate must be launchable (filter with
    :func:`launch_invalid_mask` first); the scalar path raises where this
    path would silently compute a zero-block occupancy.
    """
    n = len(batch)
    if n == 0:
        return []
    d = device

    # -- occupancy (compute_occupancy) ----------------------------------
    tpb = batch.threads_per_block
    wpb = np.ceil(tpb / d.warp_size).astype(np.int64)
    regs_per_block = batch.regs_per_thread * tpb
    limit_rows = np.stack(
        [
            d.max_threads_per_sm // tpb,
            np.full(n, d.max_blocks_per_sm, dtype=np.int64),
            np.where(
                regs_per_block > 0,
                d.regs_per_sm // np.maximum(regs_per_block, 1),
                _NO_LIMIT,
            ),
            np.where(
                batch.smem_per_block > 0,
                d.smem_per_sm // np.maximum(batch.smem_per_block, 1),
                _NO_LIMIT,
            ),
        ]
    )
    limiter_idx = limit_rows.argmin(axis=0)
    blocks_per_sm = limit_rows[limiter_idx, np.arange(n)]
    capped = blocks_per_sm * wpb > d.max_warps_per_sm
    blocks_per_sm = np.where(capped, d.max_warps_per_sm // wpb, blocks_per_sm)
    limiter_idx = np.where(capped, 4, limiter_idx)
    active_warps = blocks_per_sm * wpb
    total_threads = batch.total_blocks * tpb
    concurrent_blocks = np.maximum(1, blocks_per_sm) * d.sm_count
    waves = batch.total_blocks / concurrent_blocks

    # -- latency hiding (latency_hiding_factor) -------------------------
    sat = d.arch.bw_warp_saturation
    launched_warps_per_sm = total_threads / (d.warp_size * d.sm_count)
    resident = np.minimum(active_warps, np.maximum(1.0, launched_warps_per_sm))
    resident = resident * batch.lane_fraction
    hiding = np.minimum(1.0, resident / sat)
    hiding = np.where(blocks_per_sm == 0, 0.0, hiding)

    # -- memory service times (memory_service_time) ---------------------
    dram_bytes = (
        batch.load_transactions * (1.0 - batch.l2_hit_rate)
        + batch.store_transactions
    ) * d.transaction_bytes
    width_eff = np.where(
        batch.access_bytes >= 16,
        d.bw_eff_16b,
        np.where(batch.access_bytes >= 8, d.bw_eff_8b, d.bw_eff_4b),
    )
    bw_e9 = d.mem_bandwidth_gbs * 1e9
    sustainable_bw = bw_e9 * width_eff * np.maximum(hiding, 1e-9)
    bandwidth_s = np.where(dram_bytes != 0.0, dram_bytes / sustainable_bw, 0.0)

    issue_rate = d.sm_count * d.clock_ghz * 1e9
    total_tx = batch.load_transactions + batch.store_transactions
    lsu_s = np.where(
        total_tx != 0.0, total_tx * batch.smem_conflict_degree / issue_rate, 0.0
    )

    resident_threads = (
        np.minimum(total_threads, active_warps * d.warp_size * d.sm_count)
        * batch.lane_fraction
    )
    outstanding = np.maximum(1.0, resident_threads * d.arch.mlp_per_thread)
    latency_sec = d.mem_latency_cycles / (d.clock_ghz * 1e9)
    serial_rounds = np.maximum(
        1.0, batch.dependent_iterations / d.arch.mlp_per_thread
    )
    latency_s = np.maximum(
        total_tx * latency_sec / outstanding,
        np.where(total_tx != 0.0, serial_rounds * latency_sec, 0.0),
    )

    mem_total_s = np.maximum(np.maximum(bandwidth_s, lsu_s), latency_s)
    mem_limiter_idx = np.stack([bandwidth_s, lsu_s, latency_s]).argmax(axis=0)

    # -- compute pipeline (compute_pipeline_time) ------------------------
    eff = np.maximum(1e-6, np.minimum(1.0, batch.alu_efficiency))
    warp_factor = np.where(
        blocks_per_sm != 0, np.minimum(1.0, active_warps / 8.0), 0.0
    )
    grid_factor = np.minimum(1.0, total_threads / (d.sm_count * d.warp_size))
    derate = np.maximum(
        1e-6, eff * np.maximum(warp_factor, 1e-6) * np.maximum(grid_factor, 1e-6)
    )
    peak_e9 = d.peak_gflops * 1e9
    compute_s = np.where(
        batch.flops <= 0, 0.0, batch.flops / (peak_e9 * derate)
    )

    # -- roofline combination (time_kernel) ------------------------------
    launch_s = batch.n_launches * d.launch_overhead_us * 1e-6
    body_s = np.maximum(compute_s, mem_total_s)
    total_s = body_s + launch_s
    bound_idx = np.where(compute_s >= mem_total_s, 3, mem_limiter_idx)
    bound_idx = np.where(launch_s > body_s, 4, bound_idx)
    with np.errstate(divide="ignore", invalid="ignore"):
        alu_util = np.where(
            total_s > 0, batch.flops / (total_s * peak_e9), 0.0
        )

    # -- side effects the scalar dram path performs per call -------------
    registry = global_registry()
    limiter_counts = np.bincount(mem_limiter_idx, minlength=3)
    for idx, limiter_name in enumerate(_MEM_LIMITERS):
        if limiter_counts[idx]:
            registry.counter(f"dram.limiter.{limiter_name}").inc(
                int(limiter_counts[idx])
            )
    registry.counter("dram.bytes_total").inc(float(dram_bytes.sum()))

    # -- materialize (Python scalars: KernelStats must stay JSON-safe) ---
    # ``lane_fraction`` and ``total_tx`` round-trip through the batch
    # columns bit-exactly: the column holds the same float64 the scalar
    # path reads from the launch config / sums from the profile.
    rows = zip(
        batch.specs,
        blocks_per_sm.tolist(),
        wpb.tolist(),
        active_warps.tolist(),
        limiter_idx.tolist(),
        total_threads.tolist(),
        waves.tolist(),
        batch.lane_fraction.tolist(),
        (total_s * 1e3).tolist(),
        (compute_s * 1e3).tolist(),
        (mem_total_s * 1e3).tolist(),
        (launch_s * 1e3).tolist(),
        dram_bytes.tolist(),
        total_tx.tolist(),
        bound_idx.tolist(),
        alu_util.tolist(),
    )
    out: list[KernelStats] = []
    append = out.append
    max_warps = d.max_warps_per_sm
    device_name = d.name
    for (
        spec, blocks_i, wpb_i, warps_i, limiter_i, threads_i, waves_i,
        lane_i, time_i, compute_i, memory_i, launch_i, dram_i, tx_i,
        bound_i, util_i,
    ) in rows:
        profile = spec.profile
        append(
            KernelStats(
                spec.name,
                device_name,
                time_i,
                compute_i,
                memory_i,
                launch_i,
                spec.flops,
                dram_i,
                profile.useful_bytes,
                tx_i,
                Occupancy(
                    blocks_i,
                    wpb_i,
                    warps_i,
                    max_warps,
                    _OCC_LIMITERS[limiter_i],
                    threads_i,
                    waves_i,
                    lane_i,
                ),
                _BOUNDS[bound_i],
                util_i,
                spec.n_launches,
                profile.traced_l2_hit_rate,
            )
        )
    return out


def evaluate_specs(
    device: DeviceSpec, specs: Sequence[EvalSpec]
) -> list[KernelStats]:
    """Batch-evaluate raw specs; raises ``LaunchValidationError`` (via the
    scalar checker, for its exact message) on the first invalid launch."""
    batch = CandidateBatch.from_specs(device, specs)
    invalid = launch_invalid_mask(device, batch)
    if invalid.any():
        first = int(np.flatnonzero(invalid)[0])
        compute_occupancy(device, batch.specs[first].launch)  # raises
    return evaluate_batch(device, batch)


def _scalar_eval(
    context: "SimulationContext",
    model: KernelModel,
    check_memory: bool | None,
) -> "KernelStats | Exception":
    """One scalar reference evaluation with in-slot error capture.

    Captures the per-candidate failure modes grid consumers tolerate (OOM,
    launch validation, other model ``ValueError``); anything else is a bug
    and propagates.
    """
    from .session import GpuOutOfMemoryError

    try:
        return context.run(model, check_memory=check_memory)
    except (GpuOutOfMemoryError, ValueError) as exc:
        return exc


def evaluate_models(
    context: "SimulationContext",
    models: Sequence[KernelModel],
    check_memory: bool | None = None,
) -> "list[KernelStats | Exception]":
    """Evaluate many kernel models against ``context``'s device at once.

    The consumer entry point: returns one slot per model, either its
    :class:`KernelStats` or the exception the scalar ``context.run`` would
    have raised for it (``GpuOutOfMemoryError`` or a ``ValueError`` such as
    ``LaunchValidationError``), so grid consumers keep their per-candidate
    error handling.  Composed kernels expand one level into the flat
    candidate table and collapse through the same ``SequenceStats`` fold as
    the scalar path.  With batching disabled (:func:`set_batched_eval`)
    every slot is served by the scalar loop instead — consumers call this
    unconditionally and get bit-identical values either way.
    """
    from .session import SequenceStats, _collapse_sequence

    models = list(models)
    if not models:
        return []
    if not _BATCHED_DEFAULT:
        return [_scalar_eval(context, m, check_memory) for m in models]

    device = context.device
    results: "list[KernelStats | Exception | None]" = [None] * len(models)
    fallbacks: dict[str, int] = {}

    with obs_span("batch:eval", "batch.eval", models=len(models)) as sp:
        started = time.perf_counter()
        cache_calls0, cache_s0 = cache_sim_snapshot()
        fit_enabled = context.check_memory if check_memory is None else check_memory

        # Expand each model into flat per-launch specs, capturing per-model
        # failures (fit check first, matching the scalar order: a composed
        # kernel's first failing sub-kernel is the error the caller sees).
        flat: list[EvalSpec] = []
        groups: list[tuple[int, int, int]] = []  # (model idx, start, count)
        spec_append = flat.append
        for i, model in enumerate(models):
            if isinstance(model, ComposedKernel):
                subs = model.kernels
                if any(isinstance(k, ComposedKernel) for k in subs):
                    results[i] = _scalar_eval(context, model, check_memory)
                    fallbacks["nested_composed"] = (
                        fallbacks.get("nested_composed", 0) + 1
                    )
                    continue
            else:
                subs = (model,)
            start = len(flat)
            try:
                for sub in subs:
                    if fit_enabled:
                        context._check_fit(sub, check_memory, None)
                    spec_append(
                        EvalSpec(
                            sub.launch_config(device),
                            sub.flop_count(),
                            sub.alu_efficiency(device),
                            sub.memory_profile(device),
                            sub.n_launches,
                            sub.name,
                        )
                    )
            except Exception as exc:  # noqa: BLE001 — re-raised unless tolerated
                from .session import GpuOutOfMemoryError

                if not isinstance(exc, (GpuOutOfMemoryError, ValueError)):
                    raise
                del flat[start:]
                results[i] = exc
                key = (
                    "oom" if isinstance(exc, GpuOutOfMemoryError) else "spec_error"
                )
                fallbacks[key] = fallbacks.get(key, 0) + 1
                continue
            groups.append((i, start, len(flat) - start))

        # Weed out unlaunchable candidates: their owning model gets the
        # exact scalar LaunchValidationError, the rest re-batch without
        # them.  The common all-valid case reuses the batch as built.
        batch = CandidateBatch.from_specs(device, flat)
        if flat:
            invalid = launch_invalid_mask(device, batch)
            if invalid.any():
                valid_groups: list[tuple[int, int, int]] = []
                valid_flat: list[EvalSpec] = []
                for i, start, count in groups:
                    bad = [
                        j for j in range(start, start + count) if invalid[j]
                    ]
                    if bad:
                        try:
                            compute_occupancy(device, flat[bad[0]].launch)
                        except ValueError as exc:
                            results[i] = exc
                        fallbacks["invalid_launch"] = (
                            fallbacks.get("invalid_launch", 0) + 1
                        )
                        continue
                    valid_groups.append((i, len(valid_flat), count))
                    valid_flat.extend(flat[start : start + count])
                groups, flat = valid_groups, valid_flat
                batch = CandidateBatch.from_specs(device, flat)

        stats_list = evaluate_batch(device, batch)
        for i, start, count in groups:
            model = models[i]
            if isinstance(model, ComposedKernel):
                seq = SequenceStats(
                    name=model.name,
                    kernels=tuple(stats_list[start : start + count]),
                )
                results[i] = _collapse_sequence(seq, device)
            else:
                results[i] = stats_list[start]

        # Session counters: every flat spec was timed (no cache), recorded
        # in aggregate (per-kernel sim-time histograms don't observe
        # batched evaluations — the per-candidate wall time is the very
        # overhead this path removes).
        cache_calls1, cache_s1 = cache_sim_snapshot()
        kind_counts: dict[str, int] = {}
        for spec in flat:
            name = spec.name
            kind = name.split("-", 1)[0] if name else "kernel"
            kind_counts[kind] = kind_counts.get(kind, 0) + 1
        context.stats.record_batch(
            kind_counts,
            wall_s=time.perf_counter() - started,
            cache_calls=cache_calls1 - cache_calls0,
            cache_s=cache_s1 - cache_s0,
        )

        registry = global_registry()
        registry.counter("batch.eval.batches").inc()
        registry.counter("batch.eval.candidates").inc(len(flat))
        registry.histogram("batch.eval.size").observe(len(flat))
        for key, count in fallbacks.items():
            registry.counter(f"batch.eval.fallback.{key}").inc(count)
        if sp is not None:
            sp.attrs["candidates"] = len(flat)
            sp.attrs["fallbacks"] = sum(fallbacks.values())

    return results  # type: ignore[return-value]
