"""Analytic kernel timing: ``max(compute, memory) + launch overhead``.

The model follows the standard roofline-with-latency formulation the paper's
analysis implies: a kernel is *compute bound* when its arithmetic pipeline
time exceeds every memory service time, *memory bound* otherwise, and pays a
fixed per-launch overhead that makes multi-kernel implementations (5-step
softmax, FFT pipelines) expensive for small layers.
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import DeviceSpec
from .dram import MemoryServiceTimes, memory_service_time
from .kernel import KernelModel, LaunchConfig, MemoryProfile
from .occupancy import Occupancy, compute_occupancy


@dataclass(frozen=True)
class KernelStats:
    """Timing and counter results for one modelled kernel launch."""

    name: str
    device: str
    time_ms: float
    compute_ms: float
    memory_ms: float
    launch_ms: float
    flops: float
    dram_bytes: float
    useful_bytes: float
    transactions: float
    occupancy: Occupancy
    bound: str
    alu_utilization: float
    n_launches: int = 1
    #: measured cache-model L2 hit rate for traced kernels (diagnostic;
    #: timing uses the profile's modelled hit rate)
    traced_l2_hit_rate: float | None = None

    @property
    def achieved_gflops(self) -> float:
        """Sustained arithmetic throughput over the whole kernel time."""
        return self.flops / (self.time_ms * 1e6) if self.time_ms else 0.0

    @property
    def achieved_bandwidth_gbs(self) -> float:
        """DRAM throughput (fetched bytes / time), the nvprof-style counter."""
        return self.dram_bytes / (self.time_ms * 1e6) if self.time_ms else 0.0

    @property
    def effective_bandwidth_gbs(self) -> float:
        """Algorithmic bytes / time — the paper's figure-of-merit for
        memory-bound layers (useful data moved per unit time)."""
        return self.useful_bytes / (self.time_ms * 1e6) if self.time_ms else 0.0


def compute_pipeline_time(
    device: DeviceSpec, flops: float, efficiency: float, occ: Occupancy
) -> float:
    """Arithmetic pipeline time in seconds.

    ``efficiency`` is the kernel's best-case fraction of peak FLOPS; low
    occupancy further de-rates it (under ~8 resident warps per SM even a
    perfectly tuned kernel stalls on instruction latency).
    """
    if flops <= 0:
        return 0.0
    eff = max(1e-6, min(1.0, efficiency))
    warp_factor = min(1.0, occ.active_warps_per_sm / 8.0) if occ.blocks_per_sm else 0.0
    # Grids smaller than the chip cannot use every SM.
    grid_factor = min(1.0, occ.total_threads / (device.sm_count * device.warp_size))
    derate = max(1e-6, eff * max(warp_factor, 1e-6) * max(grid_factor, 1e-6))
    return flops / (device.peak_gflops * 1e9 * derate)


def time_kernel(
    device: DeviceSpec,
    launch: LaunchConfig,
    flops: float,
    alu_efficiency: float,
    profile: MemoryProfile,
    n_launches: int = 1,
    name: str = "kernel",
) -> KernelStats:
    """Assemble a :class:`KernelStats` from the model's primitive terms."""
    occ = compute_occupancy(device, launch)
    mem: MemoryServiceTimes = memory_service_time(device, profile, occ)
    compute_s = compute_pipeline_time(device, flops, alu_efficiency, occ)
    launch_s = n_launches * device.launch_overhead_us * 1e-6

    body_s = max(compute_s, mem.total_s)
    bound = "compute" if compute_s >= mem.total_s else mem.limiter
    total_s = body_s + launch_s
    if launch_s > body_s:
        bound = "launch_overhead"

    peak_flops = device.peak_gflops * 1e9
    alu_util = flops / (total_s * peak_flops) if total_s > 0 else 0.0

    return KernelStats(
        name=name,
        device=device.name,
        time_ms=total_s * 1e3,
        compute_ms=compute_s * 1e3,
        memory_ms=mem.total_s * 1e3,
        launch_ms=launch_s * 1e3,
        flops=flops,
        dram_bytes=mem.dram_bytes,
        useful_bytes=profile.useful_bytes,
        transactions=profile.total_transactions,
        occupancy=occ,
        bound=bound,
        alu_utilization=alu_util,
        n_launches=n_launches,
        traced_l2_hit_rate=profile.traced_l2_hit_rate,
    )


def time_model(device: DeviceSpec, model: KernelModel) -> KernelStats:
    """Time a :class:`KernelModel` on ``device``."""
    return time_kernel(
        device,
        model.launch_config(device),
        model.flop_count(),
        model.alu_efficiency(device),
        model.memory_profile(device),
        n_launches=model.n_launches,
        name=model.name,
    )
