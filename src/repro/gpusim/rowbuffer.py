"""DRAM row-buffer model.

The top-level timing folds DRAM behaviour into an effective-bandwidth
constant (235 GB/s on the Titan Black); this module opens that box one
level for analysis: GDDR5 stripes 32-byte transactions across channels and
banks, and each bank serves a *row* (page) at a time — streaming through
open rows is cheap, hopping rows pays precharge + activate.

Used by the microscope example and the row-locality ablation to show *why*
the naive transform's scattered stores underperform even at equal
transaction counts: they break row locality on top of wasting bus bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class DramGeometry:
    """A GDDR5-style memory system (Titan Black defaults)."""

    channels: int = 6
    banks_per_channel: int = 16
    row_bytes: int = 2048
    burst_bytes: int = 32
    #: service cycles (memory clock) for a row-buffer hit / miss
    t_hit: int = 4
    t_miss: int = 24

    def __post_init__(self) -> None:
        if min(
            self.channels, self.banks_per_channel, self.row_bytes, self.burst_bytes
        ) <= 0:
            raise ValueError("geometry values must be positive")
        if self.row_bytes % self.burst_bytes:
            raise ValueError("row size must be a multiple of the burst size")

    def map_address(self, addr: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(global bank id, row id) for each byte address.

        Channel interleave at burst granularity (consecutive bursts hit
        consecutive channels), bank interleave at row granularity.
        """
        burst = addr // self.burst_bytes
        channel = burst % self.channels
        # within a channel, bursts advance through a row before switching
        chan_burst = burst // self.channels
        bursts_per_row = self.row_bytes // self.burst_bytes
        row_seq = chan_burst // bursts_per_row
        bank = row_seq % self.banks_per_channel
        row = row_seq // self.banks_per_channel
        return channel * self.banks_per_channel + bank, row


@dataclass(frozen=True)
class RowBufferStats:
    """Row-buffer behaviour of one transaction stream."""

    accesses: int
    hits: int
    service_cycles: int

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def cycles_per_access(self) -> float:
        return self.service_cycles / self.accesses if self.accesses else 0.0

    def bandwidth_fraction(self, geometry: DramGeometry) -> float:
        """Sustained fraction of the all-hits streaming bandwidth."""
        if not self.accesses:
            return 0.0
        return geometry.t_hit / self.cycles_per_access


def analyze_row_locality(
    addresses: np.ndarray, geometry: DramGeometry = DramGeometry()
) -> RowBufferStats:
    """Replay a transaction-address stream against open-row state.

    Each bank keeps one open row; an access hits if its row matches the
    bank's open row, otherwise it pays the miss penalty and opens the row.
    Vectorized per bank (the per-bank streams are order-preserving slices
    of the global stream).
    """
    addr = np.asarray(addresses, dtype=np.int64).ravel()
    if addr.size and addr.min() < 0:
        raise ValueError("addresses must be non-negative")
    if addr.size == 0:
        return RowBufferStats(accesses=0, hits=0, service_cycles=0)
    bank, row = geometry.map_address(addr)
    # Stable sort by bank keeps each bank's accesses in stream order.
    order = np.argsort(bank, kind="stable")
    b_sorted = bank[order]
    r_sorted = row[order]
    first_of_bank = np.concatenate([[True], b_sorted[1:] != b_sorted[:-1]])
    same_row = np.concatenate([[False], r_sorted[1:] == r_sorted[:-1]])
    hits = int((same_row & ~first_of_bank).sum())
    misses = addr.size - hits
    cycles = hits * geometry.t_hit + misses * geometry.t_miss
    return RowBufferStats(accesses=int(addr.size), hits=hits, service_cycles=cycles)


def reference_analyze_row_locality(
    addresses: np.ndarray, geometry: DramGeometry = DramGeometry()
) -> RowBufferStats:
    """Scalar per-transaction replay — the golden reference for
    :func:`analyze_row_locality`.

    Walks the stream in order keeping one open row per bank, exactly the
    state machine the vectorized path models with a stable sort.  Kept for
    validation: ``tests/gpusim/test_rowbuffer_equivalence.py`` asserts both
    produce identical stats on random and adversarial streams.
    """
    addr = np.asarray(addresses, dtype=np.int64).ravel()
    if addr.size and addr.min() < 0:
        raise ValueError("addresses must be non-negative")
    if addr.size == 0:
        return RowBufferStats(accesses=0, hits=0, service_cycles=0)
    banks, rows = geometry.map_address(addr)
    open_rows: dict[int, int] = {}
    hits = 0
    for bank, row in zip(banks.tolist(), rows.tolist()):
        if open_rows.get(bank) == row:
            hits += 1
        else:
            open_rows[bank] = row
    misses = addr.size - hits
    cycles = hits * geometry.t_hit + misses * geometry.t_miss
    return RowBufferStats(accesses=int(addr.size), hits=hits, service_cycles=cycles)


def stream_addresses(nbytes: int, geometry: DramGeometry = DramGeometry()) -> np.ndarray:
    """A perfectly sequential transaction stream (the best case)."""
    if nbytes <= 0:
        raise ValueError("nbytes must be positive")
    return np.arange(0, nbytes, geometry.burst_bytes, dtype=np.int64)
