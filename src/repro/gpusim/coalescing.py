"""Warp-level memory coalescing model.

On Kepler-class GPUs a warp's 32 global accesses are serviced as a set of
32-byte DRAM transactions (L1 is bypassed for global loads).  The number of
distinct 32-byte segments a warp touches is therefore the fundamental
measure of access efficiency: a fully coalesced float32 warp load touches 4
segments; a stride-N load can touch up to 32, over-fetching 8x.

This module converts per-warp byte addresses into transaction counts.  It is
pure NumPy and fully vectorized so the engine can push millions of sampled
addresses through it cheaply.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .device import DeviceSpec


@dataclass(frozen=True)
class CoalescingReport:
    """Aggregate coalescing statistics for a batch of warps.

    Attributes
    ----------
    warps:
        Number of warps analysed.
    transactions:
        Total memory transactions issued.
    useful_bytes:
        Bytes actually requested by threads.
    fetched_bytes:
        Bytes moved over the memory bus (transactions * segment size).
    """

    warps: int
    transactions: int
    useful_bytes: int
    fetched_bytes: int

    @property
    def transactions_per_warp(self) -> float:
        """Average transactions per warp (1..32 for 4-byte accesses)."""
        return self.transactions / self.warps if self.warps else 0.0

    @property
    def efficiency(self) -> float:
        """Fraction of fetched bytes that were requested (0..1]."""
        return self.useful_bytes / self.fetched_bytes if self.fetched_bytes else 0.0

    @property
    def overfetch(self) -> float:
        """Bus amplification factor (1.0 = perfectly coalesced)."""
        return self.fetched_bytes / self.useful_bytes if self.useful_bytes else 0.0

    def merged(self, other: "CoalescingReport") -> "CoalescingReport":
        """Combine two reports (e.g. loads and stores of one kernel)."""
        return CoalescingReport(
            warps=self.warps + other.warps,
            transactions=self.transactions + other.transactions,
            useful_bytes=self.useful_bytes + other.useful_bytes,
            fetched_bytes=self.fetched_bytes + other.fetched_bytes,
        )


def warp_transactions(
    addresses: np.ndarray, device: DeviceSpec, access_bytes: int = 4
) -> np.ndarray:
    """Count transactions per warp for a ``(warps, warp_size)`` address array.

    Parameters
    ----------
    addresses:
        Integer byte addresses, shape ``(n_warps, warp_size)``.  Negative
        addresses mark inactive lanes (predicated-off threads) and are
        ignored.
    device:
        Device supplying the transaction segment size.
    access_bytes:
        Size of each thread's access (4 for float, 8 for float2).

    Returns
    -------
    np.ndarray
        ``(n_warps,)`` int64 array of transaction counts.
    """
    addr = np.asarray(addresses, dtype=np.int64)
    if addr.ndim != 2:
        raise ValueError(f"expected (warps, lanes) addresses, got shape {addr.shape}")
    if addr.shape[1] > device.warp_size:
        raise ValueError(
            f"{addr.shape[1]} lanes exceeds warp size {device.warp_size}"
        )
    seg = device.transaction_bytes
    active = addr >= 0
    # An access of `access_bytes` starting at addr may straddle two segments;
    # count both its first and last byte's segment.
    first = addr // seg
    last = (addr + access_bytes - 1) // seg
    counts = np.zeros(addr.shape[0], dtype=np.int64)
    for segs in (first, last):
        masked = np.where(active, segs, np.int64(-1))
        ordered = np.sort(masked, axis=1)
        # A segment is newly-touched where it differs from its left neighbour.
        new = np.concatenate(
            [np.ones((addr.shape[0], 1), dtype=bool), ordered[:, 1:] != ordered[:, :-1]],
            axis=1,
        )
        new &= ordered >= 0
        counts += new.sum(axis=1)
    # Segments counted via both `first` and `last` are double counted; fix by
    # recounting on the union.  For speed we only do the exact union pass when
    # any access straddles (access_bytes > 1 may straddle).
    if access_bytes > 1:
        both = np.concatenate([first, last], axis=1)
        both = np.where(np.concatenate([active, active], axis=1), both, np.int64(-1))
        ordered = np.sort(both, axis=1)
        new = np.concatenate(
            [np.ones((both.shape[0], 1), dtype=bool), ordered[:, 1:] != ordered[:, :-1]],
            axis=1,
        )
        new &= ordered >= 0
        counts = new.sum(axis=1)
    return counts


def analyze_warps(
    addresses: np.ndarray, device: DeviceSpec, access_bytes: int = 4
) -> CoalescingReport:
    """Run the coalescing unit over sampled warps and aggregate statistics."""
    addr = np.asarray(addresses, dtype=np.int64)
    counts = warp_transactions(addr, device, access_bytes)
    active = int((addr >= 0).sum())
    transactions = int(counts.sum())
    return CoalescingReport(
        warps=addr.shape[0],
        transactions=transactions,
        useful_bytes=active * access_bytes,
        fetched_bytes=transactions * device.transaction_bytes,
    )


def strided_pattern(
    n_warps: int,
    stride_bytes: int,
    device: DeviceSpec,
    base: int = 0,
    access_bytes: int = 4,
) -> np.ndarray:
    """Build a synthetic ``(n_warps, warp_size)`` strided address pattern.

    Each warp ``w`` starts at ``base + w * warp_size * stride_bytes`` and its
    lanes step by ``stride_bytes``.  Stride equal to ``access_bytes`` yields a
    fully coalesced pattern; larger strides model the NCHW pooling and naive
    transpose access patterns the paper identifies as inefficient.
    """
    if n_warps <= 0:
        raise ValueError("n_warps must be positive")
    lanes = np.arange(device.warp_size, dtype=np.int64)
    warps = np.arange(n_warps, dtype=np.int64)[:, None]
    return base + (warps * device.warp_size + lanes) * stride_bytes
