"""Warp-level GPU memory-hierarchy simulator.

This package is the hardware substrate of the reproduction: device specs for
the paper's GPUs, a coalescing unit, a set-associative L2, a shared-memory
bank-conflict model, an occupancy calculator, and an analytic
``max(compute, memory)`` timing model with latency-bound and launch-overhead
terms.  Everything above it (layers, transforms, planners) expresses kernels
as :class:`KernelModel` objects and asks :class:`SimulationEngine` for time.
"""

from .batch import (
    CandidateBatch,
    EvalSpec,
    batched_eval_enabled,
    evaluate_batch,
    evaluate_models,
    evaluate_specs,
    launch_invalid_mask,
    set_batched_eval,
)
from .cache import (
    CacheStats,
    SetAssociativeCache,
    cache_sim_snapshot,
    min_round_sets,
    set_fast_path,
    set_min_round_sets,
    unique_line_hits,
)
from .coalescing import (
    CoalescingReport,
    analyze_warps,
    strided_pattern,
    warp_transactions,
)
from .device import (
    TITAN_BLACK,
    TITAN_X,
    ArchProfile,
    DeviceSpec,
    get_device,
    list_devices,
    register_device,
)
from .dram import MemoryServiceTimes, memory_service_time
from .engine import (
    GpuOutOfMemoryError,
    SequenceStats,
    SimulationEngine,
    simulate,
)
from .exec import (
    adaptive_chunk_size,
    evaluate_cells,
    map_chunks,
    pool_workers,
    shutdown_pool,
)
from .session import (
    SimStats,
    SimulationContext,
    default_context,
    global_sim_stats,
    reset_default_contexts,
    structural_key,
)
from .kernel import ComposedKernel, KernelModel, LaunchConfig, MemoryProfile
from .parallel import chunk_items, parallel_map, resolve_jobs
from .occupancy import (
    LaunchValidationError,
    LaunchViolation,
    Occupancy,
    check_launch,
    compute_occupancy,
    latency_hiding_factor,
)
from .reporting import (
    RooflinePoint,
    comparison_table,
    kernel_report,
    roofline_point,
)
from .rowbuffer import (
    DramGeometry,
    RowBufferStats,
    analyze_row_locality,
    reference_analyze_row_locality,
    stream_addresses,
)
from .sharedmem import (
    BankConflictReport,
    analyze_shared_access,
    conflict_degree,
    tile_column_access,
)
from .timing import KernelStats, time_kernel, time_model
from .trace import (
    TraceResult,
    analyze_trace,
    sample_indices,
    transaction_stream,
    transactions_for_stride,
    warps_from_threads,
)

__all__ = [
    "ArchProfile",
    "BankConflictReport",
    "CacheStats",
    "CandidateBatch",
    "EvalSpec",
    "CoalescingReport",
    "ComposedKernel",
    "DeviceSpec",
    "DramGeometry",
    "GpuOutOfMemoryError",
    "KernelModel",
    "KernelStats",
    "LaunchConfig",
    "LaunchValidationError",
    "LaunchViolation",
    "MemoryProfile",
    "MemoryServiceTimes",
    "Occupancy",
    "RooflinePoint",
    "RowBufferStats",
    "SequenceStats",
    "SetAssociativeCache",
    "SimStats",
    "SimulationContext",
    "SimulationEngine",
    "TITAN_BLACK",
    "TITAN_X",
    "TraceResult",
    "analyze_row_locality",
    "analyze_shared_access",
    "analyze_trace",
    "adaptive_chunk_size",
    "analyze_warps",
    "batched_eval_enabled",
    "cache_sim_snapshot",
    "check_launch",
    "chunk_items",
    "comparison_table",
    "compute_occupancy",
    "conflict_degree",
    "default_context",
    "evaluate_batch",
    "evaluate_cells",
    "evaluate_models",
    "evaluate_specs",
    "get_device",
    "global_sim_stats",
    "kernel_report",
    "latency_hiding_factor",
    "launch_invalid_mask",
    "list_devices",
    "map_chunks",
    "memory_service_time",
    "min_round_sets",
    "parallel_map",
    "pool_workers",
    "reference_analyze_row_locality",
    "register_device",
    "resolve_jobs",
    "reset_default_contexts",
    "roofline_point",
    "sample_indices",
    "set_batched_eval",
    "set_fast_path",
    "set_min_round_sets",
    "shutdown_pool",
    "simulate",
    "structural_key",
    "stream_addresses",
    "strided_pattern",
    "tile_column_access",
    "time_kernel",
    "time_model",
    "transaction_stream",
    "transactions_for_stride",
    "unique_line_hits",
    "warp_transactions",
    "warps_from_threads",
]
