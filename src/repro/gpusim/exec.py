"""Sweep execution engine: memoized, fused, warm-pooled grid evaluation.

PR 9's batched evaluator made a *single* candidate grid ~5x cheaper per
candidate, yet end-to-end sweep and figure builds barely moved (and lost
outright with ``--jobs`` on a small box): the costs that real workloads
amortize — repeated (kernel, device) cells across grids, per-call batch
assembly, a fork-per-call worker pool — all sat *between* the grid
producers and the evaluator.  This module is that missing layer.  It sits
between the grid producers (:mod:`repro.analysis.sweeps`,
:mod:`repro.core.calibration`, :mod:`repro.core.autotune`, the figure
drivers) and the evaluators (:mod:`repro.gpusim.batch`,
:mod:`repro.gpusim.session`, :mod:`repro.gpusim.parallel`), in three
layers:

* **cross-grid memoization** — :func:`evaluate_cells` consults the
  session's structural timing cache (the same
  :func:`~repro.gpusim.session.structural_key` space
  :meth:`SimulationContext.run` uses) *before* batch assembly, and dedups
  structurally-equal cells within a grid, so each distinct (kernel shape,
  device) cell is evaluated exactly once per process no matter how many
  sweep grids revisit it.  This is where the end-to-end time lives: a
  traced NCHW pooling profile costs ~1000x a closed-form candidate, and
  the figure suite re-prices the same pooling layers grid after grid.
* **fused batching** — the cells that survive memoization assemble into
  *one* :class:`~repro.gpusim.batch.CandidateBatch` for the whole grid
  (``evaluate_models`` keeps its composed-kernel expansion and in-slot
  error semantics), instead of paying batch setup per producer-side chunk.
* **a persistent warm worker pool** — :func:`map_chunks` replaces
  fork-per-call ``parallel_map`` fan-out with a process pool that is
  created once, keeps a warm per-worker
  :class:`~repro.gpusim.session.SimulationContext` per (device, OOM mode)
  across submissions, ships only cache *deltas* home
  (:meth:`SimulationContext.export_delta` → :meth:`absorb`), and sizes
  chunks adaptively from the measured per-cell cost instead of a fixed
  split.

Everything stays byte-identical to the scalar golden path: cached values
are bit-identical to freshly-computed ones by the PR 4/9 equivalence
contract, results are reassembled in submission order, and a warm worker
computes exactly what a cold one would.  The ``--jobs`` knob remains a
pure wall-clock knob.

Instrumentation (``repro.obs``): ``exec.cache.{hit,miss,dedup,error_hit}``
counters, the ``exec.batch.size`` histogram, ``exec.pool.{reuse,chunks}``
counters, one ``exec`` span per grid, and ``exec.jobs.clamped`` from
:func:`~repro.gpusim.parallel.resolve_jobs`.

Metric *counts* can differ between a memoized and a cold run (that is the
point); every value derived from kernel stats is identical.
"""

from __future__ import annotations

import atexit
import os
import time
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from math import ceil
from typing import Any, Callable, Sequence

from ..obs.metrics import MetricsRegistry, global_registry, reset_global_registry
from ..obs.tracer import (
    Span,
    TraceEvent,
    Tracer,
    active_tracer,
    install_tracer,
    span as obs_span,
    uninstall_tracer,
)
from .cache import fast_path_enabled, min_round_sets, set_fast_path, set_min_round_sets
from .batch import batched_eval_enabled, evaluate_models, set_batched_eval
from .device import DeviceSpec
from .engine import GpuOutOfMemoryError
from .kernel import ComposedKernel, KernelModel
from .parallel import DEFAULT_MIN_CHUNK, resolve_jobs
from .session import SimStats, SimulationContext, _kind_of, structural_key
from .timing import KernelStats

__all__ = [
    "adaptive_chunk_size",
    "evaluate_cells",
    "map_chunks",
    "pool_workers",
    "shutdown_pool",
]

#: ``fn`` for :func:`map_chunks`: one *chunk* of grid cells per call (not
#: one cell), so the whole chunk can evaluate as a single fused batch.
ChunkFn = Callable[[SimulationContext, list], list]

#: What one warm worker ships back per submission: chunk results, the
#: cache *delta* since its last shipment, per-chunk session counters,
#: span/event streams, the worker's per-chunk global metrics, and whether
#: the warm context was reused.
ChunkShipment = tuple[
    list[Any],
    "dict[str, KernelStats]",
    SimStats,
    "tuple[Span, ...]",
    "tuple[TraceEvent, ...]",
    MetricsRegistry,
    bool,
]


# ---------------------------------------------------------------------------
# Layer 1+2: cross-grid memoization over one fused batch
# ---------------------------------------------------------------------------


def _memoizable(model: KernelModel) -> bool:
    """Whether a model's outcome may be served from the structural memo.

    Nested composed kernels take the scalar fallback inside
    ``evaluate_models`` (whose sub-kernels hit the context cache on their
    own keys), so memoizing the collapsed top-level value would only
    duplicate state the recursion already shares.
    """
    return not (
        isinstance(model, ComposedKernel)
        and any(isinstance(k, ComposedKernel) for k in model.kernels)
    )


def _fit_error(
    context: SimulationContext,
    model: KernelModel,
    check_memory: bool | None,
) -> GpuOutOfMemoryError | None:
    """The memory-fit error ``context.run`` would raise right now, if any.

    Checks sub-kernels in sequence order for composed models, so the
    first failing sub-kernel is the error the caller sees — the same
    order the scalar recursion and ``evaluate_models`` produce.
    """
    subs = model.kernels if isinstance(model, ComposedKernel) else (model,)
    try:
        for sub in subs:
            if isinstance(sub, ComposedKernel):
                err = _fit_error(context, sub, check_memory)
                if err is not None:
                    return err
            else:
                context._check_fit(sub, check_memory, None)
    except GpuOutOfMemoryError as exc:
        return exc
    return None


def evaluate_cells(
    context: SimulationContext,
    models: Sequence[KernelModel],
    check_memory: bool | None = None,
) -> "list[KernelStats | Exception]":
    """Memoized :func:`~repro.gpusim.batch.evaluate_models`.

    Same signature and slot-for-slot result contract (stats or the exact
    scalar exception per model), with two additions in front of batch
    assembly:

    * cells whose structural key is already in ``context``'s timing cache
      (or its error memo) are served without touching the analytic stack
      — in particular without rebuilding a traced memory profile, which
      is where sweep wall-time actually goes;
    * structurally-equal duplicates *within* the grid collapse onto one
      evaluation, then fan back out to every owning slot, preserving
      order and multiplicity.

    Misses are evaluated in one fused batch and folded back into the
    context cache, so later grids — and the scalar path — reuse them.
    With batching disabled this delegates to the scalar loop, which
    already consults the same cache via ``context.run``.

    The memory-fit check stays *outside* the memo, mirroring the scalar
    order (``_check_fit`` runs before the cache lookup in
    ``context.run``): whether a kernel fits depends on the
    ``check_memory`` flag in force *now*, not when the cell was first
    priced, so every cell re-runs the cheap fit check and only
    flag-independent outcomes (timings, launch/spec errors) are cached.
    """
    models = list(models)
    if not models:
        return []
    if not batched_eval_enabled():
        return evaluate_models(context, models, check_memory)

    device = context.device
    fit_enabled = context.check_memory if check_memory is None else check_memory
    results: "list[KernelStats | Exception | None]" = [None] * len(models)
    with obs_span("exec:grid", "exec", cells=len(models)) as sp:
        keys = [structural_key(m, device) for m in models]
        miss_idx: list[int] = []
        first_owner: dict[str, int] = {}
        dup_of: dict[int, int] = {}
        cacheable = [_memoizable(m) for m in models]
        hits = error_hits = 0
        for i, key in enumerate(keys):
            model = models[i]
            if fit_enabled:
                oom = _fit_error(context, model, check_memory)
                if oom is not None:
                    results[i] = oom
                    continue
            if not cacheable[i]:
                miss_idx.append(i)
                continue
            cached = context.cache_lookup(key)
            if cached is not None:
                results[i] = cached
                context.stats.record_hit(_kind_of(model))
                hits += 1
                continue
            err = context.exec_errors.get(key)
            if err is not None:
                results[i] = err
                error_hits += 1
                continue
            owner = first_owner.get(key)
            if owner is None:
                first_owner[key] = i
                miss_idx.append(i)
            else:
                dup_of[i] = owner

        if miss_idx:
            outcomes = evaluate_models(
                context, [models[i] for i in miss_idx], check_memory
            )
            for i, outcome in zip(miss_idx, outcomes):
                results[i] = outcome
                if not cacheable[i]:
                    continue
                if isinstance(outcome, GpuOutOfMemoryError):
                    continue  # flag-dependent; the pre-lookup fit check owns it
                if isinstance(outcome, Exception):
                    context.exec_errors[keys[i]] = outcome
                else:
                    context.cache_store(keys[i], outcome)
        for i, owner in dup_of.items():
            results[i] = results[owner]

        registry = global_registry()
        registry.counter("exec.cache.hit").inc(hits)
        registry.counter("exec.cache.miss").inc(len(miss_idx))
        registry.histogram("exec.batch.size").observe(len(miss_idx))
        if error_hits:
            registry.counter("exec.cache.error_hit").inc(error_hits)
        if dup_of:
            registry.counter("exec.cache.dedup").inc(len(dup_of))
        if sp is not None:
            sp.attrs["hits"] = hits + error_hits
            sp.attrs["misses"] = len(miss_idx)
            sp.attrs["dedup"] = len(dup_of)
    return results  # type: ignore[return-value]


# ---------------------------------------------------------------------------
# Adaptive chunk sizing
# ---------------------------------------------------------------------------

#: Aim each shipped chunk at roughly this much worker wall time: large
#: enough to amortize the pickle round-trip, small enough that expensive
#: cells (traced profiles) still load-balance across workers.
TARGET_CHUNK_S = 0.05

_EWMA_ALPHA = 0.5
_cell_cost_s: float | None = None


def _observe_cell_cost(cells: int, wall_s: float) -> None:
    """Fold one grid's measured per-cell cost into the running estimate."""
    global _cell_cost_s
    if cells <= 0 or wall_s <= 0.0:
        return
    cost = wall_s / cells
    _cell_cost_s = (
        cost
        if _cell_cost_s is None
        else _EWMA_ALPHA * cost + (1.0 - _EWMA_ALPHA) * _cell_cost_s
    )


def measured_cell_cost_s() -> float | None:
    """The engine's current per-cell cost estimate (None before any grid)."""
    return _cell_cost_s


def adaptive_chunk_size(
    n: int, jobs: int, cost_s: float | None = None
) -> int:
    """Chunk size for an ``n``-cell grid over ``jobs`` workers.

    Starts from the even one-chunk-per-worker split, then refines with the
    measured per-cell cost when one is available: cells expensive enough
    that :data:`TARGET_CHUNK_S` holds fewer of them get *smaller* chunks
    (more of them than workers), so a straggler chunk cannot serialize the
    grid.  Never below :data:`~repro.gpusim.parallel.DEFAULT_MIN_CHUNK`
    (or the grid size, if smaller) — singleton chunks are pure IPC.
    """
    if n <= 0:
        return 1
    size = ceil(n / max(1, jobs))
    if cost_s is not None and cost_s > 0.0:
        by_cost = max(1, int(TARGET_CHUNK_S / cost_s))
        size = min(size, by_cost)
    return max(size, min(n, DEFAULT_MIN_CHUNK))


# ---------------------------------------------------------------------------
# Layer 3: the persistent warm worker pool
# ---------------------------------------------------------------------------

_POOL: ProcessPoolExecutor | None = None
_POOL_WORKERS = 0

#: module-level toggles a warm (forked-earlier) worker must re-apply per
#: submission: the parent may have flipped them after the pool was born
_Toggles = tuple[bool, bool, int]


def _current_toggles() -> _Toggles:
    return (batched_eval_enabled(), fast_path_enabled(), min_round_sets())


def _get_pool(workers: int) -> ProcessPoolExecutor:
    """The process-wide executor, created once and grown on demand.

    Growing (a later call wants more workers than the pool was born with)
    recreates the executor; shrinking just leaves spare workers idle.
    """
    global _POOL, _POOL_WORKERS
    if _POOL is not None and workers > _POOL_WORKERS:
        _POOL.shutdown(wait=False, cancel_futures=True)
        _POOL = None
    if _POOL is None:
        _POOL = ProcessPoolExecutor(max_workers=workers)
        _POOL_WORKERS = workers
    return _POOL


def shutdown_pool() -> None:
    """Tear down the warm pool (test isolation; also runs at exit)."""
    global _POOL, _POOL_WORKERS
    if _POOL is not None:
        _POOL.shutdown(wait=False, cancel_futures=True)
        _POOL = None
        _POOL_WORKERS = 0


def pool_workers() -> int:
    """Current pool width (0 when no pool has been spawned)."""
    return _POOL_WORKERS if _POOL is not None else 0


atexit.register(shutdown_pool)


# -- worker-process side ----------------------------------------------------

#: one warm simulation session per (device, OOM mode), reused across
#: submissions for the life of the worker process
_WORKER_CONTEXTS: "dict[tuple[DeviceSpec, bool], SimulationContext]" = {}
#: cache-size watermark of the last shipment per warm context
_WORKER_SHIPPED: "dict[tuple[DeviceSpec, bool], int]" = {}


def _warm_chunk(
    device: DeviceSpec,
    check_memory: bool,
    fn: ChunkFn,
    chunk: list,
    trace: bool,
    toggles: _Toggles,
) -> ChunkShipment:
    """Worker body: run one chunk against the warm per-process context.

    The context's timing cache persists across submissions (that is the
    warmth); metrics and stats are swapped fresh per chunk so each
    shipment covers exactly one submission, and only cache entries newer
    than the last shipment travel home.
    """
    batched, fast_path, rounds = toggles
    set_batched_eval(batched)
    set_fast_path(fast_path)
    set_min_round_sets(rounds)

    key = (device, check_memory)
    ctx = _WORKER_CONTEXTS.get(key)
    reused = ctx is not None
    if ctx is None:
        ctx = SimulationContext(device, check_memory=check_memory)
        _WORKER_CONTEXTS[key] = ctx
        _WORKER_SHIPPED[key] = 0

    reset_global_registry()
    ctx.metrics = MetricsRegistry()
    ctx.stats = SimStats(ctx.metrics)
    if reused:
        global_registry().counter("exec.pool.reuse").inc()

    tracer = install_tracer(Tracer(f"exec-worker-{os.getpid()}")) if trace else None
    try:
        if tracer is None:
            results = fn(ctx, chunk)
        else:
            with tracer.span("chunk", "exec.pool", items=len(chunk), warm=reused):
                results = fn(ctx, chunk)
    finally:
        if trace:
            uninstall_tracer()

    delta = ctx.export_delta(_WORKER_SHIPPED[key])
    _WORKER_SHIPPED[key] = ctx.cache_size
    spans = tracer.spans() if tracer is not None else ()
    events = tracer.events() if tracer is not None else ()
    return list(results), delta, ctx.stats, spans, events, global_registry(), reused


# -- parent side ------------------------------------------------------------


def map_chunks(
    fn: ChunkFn,
    cells: Sequence[Any],
    context: SimulationContext,
    jobs: int | str | None = None,
    chunk_size: int | None = None,
) -> list:
    """Run ``fn(context, chunk)`` over ``cells`` and flatten, in cell order.

    The grid-consumer entry point: ``fn`` receives a contiguous *chunk* of
    cells and returns one result per cell, so a serial run (resolved
    ``jobs`` <= 1) is exactly one call with the whole grid — one fused
    batch, zero chunking overhead.  With workers available the grid splits
    into adaptively-sized chunks over the persistent warm pool; worker
    cache deltas, counters, metrics, and (when tracing) span streams fold
    into ``context`` on join, and results are reassembled in submission
    order.  Both paths return identical results for deterministic ``fn``.
    """
    cells = list(cells)
    jobs_n = resolve_jobs(jobs)
    if jobs_n <= 1 or len(cells) <= 1:
        started = time.perf_counter()
        out = list(fn(context, cells))
        _observe_cell_cost(len(cells), time.perf_counter() - started)
        return out

    size = (
        chunk_size
        if chunk_size is not None
        else adaptive_chunk_size(len(cells), jobs_n, _cell_cost_s)
    )
    if size <= 0:
        raise ValueError("chunk_size must be positive")
    chunks = [cells[i : i + size] for i in range(0, len(cells), size)]
    if len(chunks) <= 1:
        started = time.perf_counter()
        out = list(fn(context, cells))
        _observe_cell_cost(len(cells), time.perf_counter() - started)
        return out

    tracer = active_tracer()
    registry = global_registry()
    out = []
    started = time.perf_counter()
    with obs_span(
        "exec:pool", "exec.pool", cells=len(cells), chunks=len(chunks), jobs=jobs_n
    ):
        pool = _get_pool(jobs_n)
        try:
            futures: list[Future[ChunkShipment]] = [
                pool.submit(
                    _warm_chunk,
                    context.device,
                    context.check_memory,
                    fn,
                    chunk,
                    tracer is not None,
                    _current_toggles(),
                )
                for chunk in chunks
            ]
            # Submission order, not completion order: deterministic output.
            for future in futures:
                results, delta, stats, spans, events, metrics, reused = (
                    future.result()
                )
                context.absorb(delta, stats)
                registry.merge(metrics)
                if tracer is not None:
                    tracer.absorb(spans, events)
                    tracer.event(
                        "worker-merge",
                        "exec.pool",
                        spans=len(spans),
                        results=len(results),
                        warm=reused,
                    )
                out.extend(results)
        except BrokenProcessPool:
            shutdown_pool()
            raise
        registry.counter("exec.pool.chunks").inc(len(chunks))
    _observe_cell_cost(len(cells), time.perf_counter() - started)
    return out
