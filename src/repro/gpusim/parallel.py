"""Deterministic parallel execution of independent simulation tasks.

The sweeps, the autotuner, and the calibration search all evaluate many
independent kernel candidates; this module fans those evaluations out over
worker processes while keeping the *results byte-identical to a serial run*:

* tasks are split into at most ``jobs`` contiguous chunks and submitted in
  order; results are reassembled by iterating the futures in submission
  order, so the output list order never depends on scheduling;
* each chunk runs against a fresh per-worker
  :class:`~repro.gpusim.session.SimulationContext` (the simulation is
  deterministic, so a worker computes exactly what the serial path would);
* on join, every worker's structural timing cache and counters are folded
  back into the parent context via
  :meth:`~repro.gpusim.session.SimulationContext.absorb`, so later serial
  work still benefits from what the workers simulated;
* observability merges back the same way: when the parent has a tracer
  installed, each worker records its chunk under a fresh
  :class:`~repro.obs.tracer.Tracer` and ships the span/event streams home
  (worker pids keep Chrome-trace process rows separate), and the worker's
  process-global metrics fold into the parent's global registry.

``fn`` must be a module-level (picklable) callable of signature
``fn(context, item) -> result`` and must not rely on shared mutable state;
expected per-item failures should be caught inside ``fn`` and encoded in its
result (exceptions escaping a worker abort the whole map, exactly like the
serial loop).
"""

from __future__ import annotations

import os
from concurrent.futures import Future, ProcessPoolExecutor
from math import ceil
from typing import Any, Callable, Sequence, TypeVar

from ..obs.metrics import MetricsRegistry, global_registry, reset_global_registry
from ..obs.tracer import (
    Span,
    TraceEvent,
    Tracer,
    active_tracer,
    install_tracer,
    uninstall_tracer,
)
from .device import DeviceSpec
from .session import SimStats, SimulationContext

T = TypeVar("T")

TaskFn = Callable[[SimulationContext, Any], Any]

#: What one worker ships back: results, timing-cache entries, session
#: counters, span/event streams, and the worker's process-global metrics.
ChunkResult = tuple[
    list[Any],
    dict[str, Any],
    SimStats,
    tuple[Span, ...],
    tuple[TraceEvent, ...],
    MetricsRegistry,
]


#: Smallest default chunk: a worker process costs a fork plus a result
#: pickle round-trip, so shipping it fewer items than this loses to just
#: evaluating them in an existing chunk (singleton chunks on small grids
#: were pure IPC overhead).
DEFAULT_MIN_CHUNK = 4


def resolve_jobs(jobs: int | str | None) -> int:
    """Normalize a ``--jobs`` value: None/0/1 mean serial, ``"auto"`` and
    negative values mean one worker per available CPU.

    Requests beyond ``os.cpu_count()`` clamp to the CPU count — the
    simulation is pure CPU work, so oversubscribing only adds process
    spawn and scheduling overhead (the shipped ``BENCH_planner.json`` once
    ran ``--jobs 4`` on a 1-CPU box and *lost* 35% end to end).  A clamp
    bumps the ``exec.jobs.clamped`` counter so ``--metrics`` surfaces it.
    """
    cpus = os.cpu_count() or 1
    if jobs is None:
        return 1
    if isinstance(jobs, str):
        if jobs.strip().lower() == "auto":
            return cpus
        jobs = int(jobs)
    if jobs == 0:
        return 1
    if jobs < 0:
        return cpus
    if jobs > cpus:
        global_registry().counter("exec.jobs.clamped").inc()
        return cpus
    return jobs


def chunk_items(items: Sequence[T], jobs: int, chunk_size: int | None = None) -> list[list[T]]:
    """Split ``items`` into contiguous chunks, at most ``jobs`` of them by
    default (one per worker, so each worker context serves a maximal share
    of structurally-similar tasks).

    The default size has a floor of :data:`DEFAULT_MIN_CHUNK`: on a grid
    smaller than ``jobs * DEFAULT_MIN_CHUNK`` the split yields *fewer*
    chunks than workers rather than singleton chunks, trading idle workers
    (cheap — they were going to finish instantly anyway) for fewer
    fork/pickle round-trips (the actual cost on small grids).
    """
    n = len(items)
    if n == 0:
        return []
    if chunk_size is not None:
        size = chunk_size
        if size <= 0:
            raise ValueError("chunk_size must be positive")
    else:
        size = max(ceil(n / max(1, jobs)), min(n, DEFAULT_MIN_CHUNK))
    return [list(items[i : i + size]) for i in range(0, n, size)]


def _run_chunk(
    device: DeviceSpec,
    check_memory: bool,
    fn: TaskFn,
    chunk: list[Any],
    trace: bool,
) -> ChunkResult:
    """Worker body: evaluate one chunk against a fresh context and ship the
    results plus the context's cache/counters (and, when tracing, the span
    stream) back for merging.

    Pool workers are reused across chunks, so the worker's process-global
    metrics are zeroed on entry — each shipment covers exactly one chunk.
    """
    reset_global_registry()
    tracer = install_tracer(Tracer(f"worker-{os.getpid()}")) if trace else None
    try:
        ctx = SimulationContext(device, check_memory=check_memory)
        if tracer is None:
            results = [fn(ctx, item) for item in chunk]
        else:
            with tracer.span("chunk", "parallel", items=len(chunk)):
                results = [fn(ctx, item) for item in chunk]
    finally:
        if trace:
            uninstall_tracer()
    cache, stats = ctx.export_state()
    spans = tracer.spans() if tracer is not None else ()
    events = tracer.events() if tracer is not None else ()
    return results, cache, stats, spans, events, global_registry()


def parallel_map(
    fn: TaskFn,
    items: Sequence[Any],
    context: SimulationContext,
    jobs: int | None = None,
    chunk_size: int | None = None,
) -> list[Any]:
    """Evaluate ``fn(context, item)`` for every item, in item order.

    With ``jobs`` <= 1 this is exactly the serial loop on the caller's
    context.  Otherwise chunks run in worker processes and the workers'
    timing caches, stats, metrics, and (when tracing) span streams are
    absorbed into the parent on join.  Both paths return identical results
    for deterministic ``fn``.
    """
    jobs = resolve_jobs(jobs)
    items = list(items)
    if jobs <= 1 or len(items) <= 1:
        return [fn(context, item) for item in items]
    chunks = chunk_items(items, jobs, chunk_size)
    tracer = active_tracer()
    out: list[Any] = []
    with ProcessPoolExecutor(max_workers=min(jobs, len(chunks))) as pool:
        futures: list[Future[ChunkResult]] = [
            pool.submit(
                _run_chunk,
                context.device,
                context.check_memory,
                fn,
                c,
                tracer is not None,
            )
            for c in chunks
        ]
        # Submission order, not completion order: deterministic reassembly.
        for future in futures:
            results, cache, stats, spans, events, worker_metrics = future.result()
            context.absorb(cache, stats)
            global_registry().merge(worker_metrics)
            if tracer is not None:
                tracer.absorb(spans, events)
                tracer.event(
                    "worker-merge",
                    "parallel",
                    spans=len(spans),
                    results=len(results),
                )
            out.extend(results)
    return out
