"""DRAM service model.

Converts a :class:`~repro.gpusim.kernel.MemoryProfile` into the three memory
service times the engine takes a maximum over:

* **bandwidth time** — DRAM bytes over sustainable bandwidth (degraded at
  low occupancy via the latency-hiding factor);
* **LSU/L2 time** — total transactions over the chip's transaction issue
  throughput (one 32-byte transaction per SM per cycle), which penalizes
  badly coalesced kernels even when their DRAM footprint is small;
* **latency time** — a Little's-law bound: with ``T`` concurrently resident
  threads each sustaining ``mlp`` outstanding requests of latency ``L``, at
  most ``T * mlp / L`` transactions complete per second.  This is the term
  that makes the 128-thread baseline softmax slow, exactly as the paper
  describes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..obs.metrics import global_registry
from .device import DeviceSpec
from .kernel import MemoryProfile
from .occupancy import Occupancy, latency_hiding_factor


@dataclass(frozen=True)
class MemoryServiceTimes:
    """Per-mechanism memory service times, in seconds."""

    bandwidth_s: float
    lsu_s: float
    latency_s: float
    dram_bytes: float

    @property
    def total_s(self) -> float:
        """Binding memory time: the slowest of the three mechanisms."""
        return max(self.bandwidth_s, self.lsu_s, self.latency_s)

    @property
    def limiter(self) -> str:
        times = {
            "dram_bandwidth": self.bandwidth_s,
            "transaction_issue": self.lsu_s,
            "memory_latency": self.latency_s,
        }
        return max(times, key=lambda k: times[k])


def memory_service_time(
    device: DeviceSpec, profile: MemoryProfile, occ: Occupancy
) -> MemoryServiceTimes:
    """Compute the memory-side service times for one kernel launch."""
    dram_bytes = profile.dram_bytes(device.transaction_bytes)

    hiding = latency_hiding_factor(device, occ)
    width_eff = device.access_bw_efficiency(profile.access_bytes)
    sustainable_bw = device.mem_bandwidth_gbs * 1e9 * width_eff * max(hiding, 1e-9)
    bandwidth_s = dram_bytes / sustainable_bw if dram_bytes else 0.0

    # Transaction issue: 1 transaction per SM-cycle across the chip, shared
    # by L2 hits and DRAM fills alike; bank-conflict replays serialize the
    # pipeline the same way.
    issue_rate = device.sm_count * device.clock_ghz * 1e9
    lsu_s = (
        profile.total_transactions * profile.smem_conflict_degree / issue_rate
        if profile.total_transactions
        else 0.0
    )

    # Little's law: resident threads bound outstanding requests.
    resident_threads = min(
        occ.total_threads,
        occ.active_warps_per_sm * device.warp_size * device.sm_count,
    ) * occ.active_lane_fraction
    outstanding = max(1.0, resident_threads * device.arch.mlp_per_thread)
    latency_sec = device.mem_latency_cycles / (device.clock_ghz * 1e9)
    # Loop-carried dependences cap per-thread pipelining: a thread with a
    # fully serial chain of `dependent_iterations` rounds cannot overlap them.
    serial_rounds = max(1.0, profile.dependent_iterations / device.arch.mlp_per_thread)
    latency_s = max(
        profile.total_transactions * latency_sec / outstanding,
        serial_rounds * latency_sec if profile.total_transactions else 0.0,
    )

    result = MemoryServiceTimes(
        bandwidth_s=bandwidth_s,
        lsu_s=lsu_s,
        latency_s=latency_s,
        dram_bytes=dram_bytes,
    )
    # Tally which mechanism bound each evaluated kernel — the roofline-style
    # attribution (`dram.limiter.*` in the metrics snapshot).
    registry = global_registry()
    registry.counter(f"dram.limiter.{result.limiter}").inc()
    registry.counter("dram.bytes_total").inc(dram_bytes)
    return result
