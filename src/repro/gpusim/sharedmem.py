"""Shared-memory bank-conflict model.

The paper's optimized layout transformation (Fig. 7b) pads its shared-memory
tile by one element (``__shared__ float2 sh[C][33]``) precisely to avoid bank
conflicts during the transposed read.  This module reproduces that effect:
given the per-lane shared-memory addresses of a warp access, it reports the
conflict degree (the number of serialized replays).

Kepler shared memory has 32 banks; in 4-byte mode bank = (addr / 4) % 32, in
8-byte mode bank = (addr / 8) % 32.  Lanes that read the *same* word
broadcast and do not conflict.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class BankConflictReport:
    """Conflict statistics for a batch of warp-level shared accesses."""

    warps: int
    replays: int

    @property
    def avg_conflict_degree(self) -> float:
        """Mean serialization factor (1.0 = conflict-free)."""
        return 1.0 + self.replays / self.warps if self.warps else 1.0


def conflict_degree(
    addresses: np.ndarray, banks: int = 32, word_bytes: int = 4
) -> np.ndarray:
    """Conflict degree per warp for ``(warps, lanes)`` shared-memory addresses.

    The degree is the maximum, over banks, of the number of *distinct* words
    the warp's lanes request from that bank.  Broadcasts (same word) count
    once.  Inactive lanes use address -1.
    """
    addr = np.asarray(addresses, dtype=np.int64)
    if addr.ndim != 2:
        raise ValueError(f"expected (warps, lanes), got shape {addr.shape}")
    words = addr // word_bytes
    bank = words % banks
    degrees = np.ones(addr.shape[0], dtype=np.int64)
    for w in range(addr.shape[0]):
        active = addr[w] >= 0
        if not active.any():
            continue
        pairs = np.stack([bank[w][active], words[w][active]], axis=1)
        uniq = np.unique(pairs, axis=0)
        _, counts = np.unique(uniq[:, 0], return_counts=True)
        degrees[w] = int(counts.max())
    return degrees


def analyze_shared_access(
    addresses: np.ndarray, banks: int = 32, word_bytes: int = 4
) -> BankConflictReport:
    """Aggregate bank-conflict replays over sampled warps."""
    degrees = conflict_degree(addresses, banks, word_bytes)
    return BankConflictReport(
        warps=int(degrees.size), replays=int((degrees - 1).sum())
    )


def tile_column_access(
    tile_rows: int, row_pitch_words: int, lanes: int = 32, word_bytes: int = 4
) -> np.ndarray:
    """Addresses for a warp reading one *column* of a shared tile.

    Lane ``i`` reads word ``i * row_pitch_words`` — the canonical transposed
    tile read.  With ``row_pitch_words == 32`` every lane maps to bank 0 (a
    32-way conflict); padding the pitch to 33 makes it conflict-free, which
    is the optimization in the paper's Fig. 7b.
    """
    lanes_idx = np.arange(lanes, dtype=np.int64)
    active = lanes_idx < tile_rows
    addr = lanes_idx * row_pitch_words * word_bytes
    return np.where(active, addr, np.int64(-1))[None, :]
