"""Command-line interface:
``repro {info,calibrate,plan,bench,profile,inspect,footprint,lint,verify,transform}``.

Examples::

    repro info
    repro calibrate --device titan-x
    repro plan --network alexnet --device titan-black
    repro plan --network alexnet --trace plan-trace.json
    repro profile alexnet --trace out.json --metrics metrics.json
    repro bench --network lenet
    repro bench --layers conv
    repro inspect --layer CV7 --verbose
    repro footprint --network vgg --training
    repro lint --network alexnet --format json
    repro verify alexnet --strategy optimal
    repro verify --graph plan.json
    repro plan --network alexnet --verify
    repro transform --n 64 --c 96 --hw 55

``--trace``/``--jsonl``/``--metrics`` (on ``plan``, ``sweep``,
``calibrate``, and ``profile``) install a span tracer around the command
and export its stream afterwards; results are byte-identical with and
without tracing (file notes go to stderr).  See ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from .baselines import SCHEMES, compare_schemes
from .core import calibrate
from .framework import Net
from .gpusim import (
    SimulationEngine,
    comparison_table,
    get_device,
    global_sim_stats,
    kernel_report,
    list_devices,
)
from .layers import make_conv_kernel, make_pool_kernel, make_softmax_kernel
from .layers.conv_kernels import ConvUnsupportedError
from .gpusim.engine import GpuOutOfMemoryError
from .networks import (
    CONV_LAYERS,
    FIG13_SOFTMAX,
    NETWORK_BUILDERS,
    POOL_LAYERS,
    build_network,
)
from .obs import (
    Tracer,
    active_tracer,
    install_tracer,
    summarize_spans,
    uninstall_tracer,
    write_chrome_trace,
    write_jsonl,
    write_metrics,
)
from .tensors import CHWN, NCHW, TensorDesc, transform_stats


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--sim-stats",
        action="store_true",
        help="print simulation-session counters (cache hits, kernels timed) "
        "after the command",
    )


def _add_device(parser: argparse.ArgumentParser) -> None:
    _add_common(parser)
    parser.add_argument(
        "--device",
        default="titan-black",
        help=f"device spec to simulate ({', '.join(list_devices())})",
    )


def _parse_jobs(value: str) -> int | str:
    """``--jobs`` argument: an integer or the literal ``auto``."""
    if value.strip().lower() == "auto":
        return "auto"
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'auto', got {value!r}"
        ) from None


def _add_jobs(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=_parse_jobs,
        default=1,
        help="worker processes for independent kernel evaluations "
        "(1 = serial, 'auto' or negative = all CPUs; requests beyond the "
        "CPU count are clamped); results are identical for any value",
    )


def _add_obs(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help="write a Chrome-trace JSON span timeline (load in "
        "chrome://tracing or Perfetto)",
    )
    parser.add_argument(
        "--jsonl",
        metavar="FILE",
        help="write the raw span/event stream as JSON Lines",
    )
    parser.add_argument(
        "--metrics",
        metavar="FILE",
        help="write aggregated counters/gauges/histograms as JSON",
    )


def _cmd_info(args: argparse.Namespace) -> int:
    for name in list_devices():
        dev = get_device(name)
        print(
            f"{name:12s} {dev.name}: {dev.sm_count} SMs, "
            f"{dev.peak_gflops:.0f} GFLOPS, {dev.mem_bandwidth_gbs:.0f} GB/s, "
            f"{dev.dram_gib:.0f} GiB"
        )
    print(f"\nnetworks: {', '.join(NETWORK_BUILDERS)}")
    print(f"schemes:  {', '.join(SCHEMES)}")
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    device = get_device(args.device)
    result = calibrate(device, jobs=args.jobs)
    print(result.summary())
    print("\nN sweep (CONV7 shape):")
    for p in result.n_sweep:
        winner = "CHWN" if p.chwn_wins else "NCHW"
        print(f"  N={p.value:4d}  chwn={p.chwn_ms:8.3f} ms  nchw={p.nchw_ms:8.3f} ms  -> {winner}")
    print("C sweep:")
    for p in result.c_sweep:
        winner = "CHWN" if p.chwn_wins else "NCHW"
        print(f"  C={p.value:4d}  chwn={p.chwn_ms:8.3f} ms  nchw={p.nchw_ms:8.3f} ms  -> {winner}")
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    import json

    from .core.pipeline import PassContractError, PipelineOptions, plan_network

    device = get_device(args.device)
    netdef = build_network(args.network, batch=args.batch)
    try:
        result = plan_network(
            device,
            netdef,
            PipelineOptions(strategy=args.strategy, verify=args.verify),
        )
    except PassContractError as exc:
        print(f"plan: {exc}", file=sys.stderr)
        return 1
    plan = result.plan
    if args.format == "json":
        payload = {
            "network": netdef.name,
            "device": device.name,
            "strategy": plan.strategy,
            "total_ms": plan.total_ms,
            "transform_count": plan.transform_count,
            "transform_ms": plan.transform_ms,
            "steps": [
                {
                    "name": s.name,
                    "kind": s.kind.value,
                    "layout": str(s.layout) if s.layout else None,
                    "implementation": s.implementation,
                    "layer_ms": s.layer_ms,
                    "transform_ms": s.transform_ms,
                    "transformed_from": (
                        str(s.transformed_from) if s.transformed_from else None
                    ),
                    "transformed_to": (
                        str(s.transformed_to) if s.transformed_to else None
                    ),
                    "coarsening": list(s.coarsening) if s.coarsening else None,
                }
                for s in plan.steps
            ],
            "passes": [
                {
                    "name": t.name,
                    "ms": t.ms,
                    "nodes_before": t.nodes_before,
                    "nodes_after": t.nodes_after,
                    "stats": t.stats,
                }
                for t in result.trace
            ],
            "graph": result.graph.to_json(),
        }
        print(json.dumps(payload, indent=2))
        return 0
    print(plan.summary())
    print(
        f"\ntransforms: {plan.transform_count} "
        f"({plan.transform_ms:.3f} ms of {plan.total_ms:.3f} ms total)"
    )
    if args.explain:
        print()
        print(result.explain())
    return 0


def _batched_eval_digest() -> str | None:
    """Summarize the vectorized evaluator's work, if any ran.

    Surfaces the ``batch.eval.*`` metrics next to the span digest so
    ``repro profile`` shows how many candidates went through the batched
    path (and how many fell back to the scalar evaluator); ``repro.obs``
    smoke checks gate on the same category.
    """
    from .obs.metrics import aggregate_metrics

    metrics = aggregate_metrics()
    batches = metrics.value("batch.eval.batches")
    if not batches:
        return None
    candidates = metrics.value("batch.eval.candidates")
    sizes = metrics.histogram("batch.eval.size").summary()
    fallbacks = sum(
        metrics.value(name) for name in metrics.names("batch.eval.fallback.")
    )
    lines = [
        "batched evaluation:",
        f"  batches            {int(batches)}",
        f"  candidates         {int(candidates)}",
        f"  batch size         p50={sizes.get('p50', 0):.0f} "
        f"max={sizes.get('max', 0):.0f}",
        f"  scalar fallbacks   {int(fallbacks)}",
    ]
    return "\n".join(lines)


def _cmd_profile(args: argparse.Namespace) -> int:
    from .core.pipeline import PipelineOptions, plan_network

    device = get_device(args.device)
    netdef = build_network(args.network, batch=args.batch)
    result = plan_network(
        device, netdef, PipelineOptions(strategy=args.strategy, jobs=args.jobs)
    )
    plan = result.plan
    print(
        f"profile: {netdef.name} on {device.name} "
        f"(strategy={plan.strategy}, batch={netdef.batch})"
    )
    print()
    print(plan.summary())
    print(
        f"\ntransforms: {plan.transform_count} "
        f"({plan.transform_ms:.3f} ms of {plan.total_ms:.3f} ms total)"
    )
    print()
    print(result.explain())
    tracer = active_tracer()
    if tracer is not None:
        print()
        print(summarize_spans(tracer.spans()))
    digest = _batched_eval_digest()
    if digest is not None:
        print()
        print(digest)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    device = get_device(args.device)
    if args.layers:
        return _bench_layers(device, args.layers)
    names = [args.network] if args.network else list(NETWORK_BUILDERS)
    for name in names:
        net = Net(build_network(name))
        results = compare_schemes(net, device)
        base = results["cudnn-mm"].total_ms
        print(f"\n{name} (times in ms; speedup vs cuDNN-MM):")
        for scheme in SCHEMES:
            r = results[scheme]
            print(f"  {scheme:14s} {r.total_ms:10.3f}  {base / r.total_ms:5.2f}x")
    return 0


def _bench_layers(device, which: str) -> int:
    engine = SimulationEngine(device, check_memory=True)
    if which == "conv":
        print("layer  impl         time(ms)   GFLOPS")
        for name, spec in CONV_LAYERS.items():
            for impl in ("direct", "im2col", "fft", "fft-tiled"):
                try:
                    s = engine.run(make_conv_kernel(spec, impl))
                    print(f"{name:5s}  {impl:11s} {s.time_ms:9.3f} {s.achieved_gflops:8.0f}")
                except (ConvUnsupportedError, GpuOutOfMemoryError) as exc:
                    print(f"{name:5s}  {impl:11s}      FAIL  ({exc})")
    elif which == "pool":
        print("layer  impl             time(ms)  eff-GB/s")
        for name, spec in POOL_LAYERS.items():
            useful = spec.in_desc().nbytes + spec.out_desc().nbytes
            for impl in ("chwn", "chwn-coarsened", "nchw-linear", "nchw-rowblock"):
                s = engine.run(make_pool_kernel(spec, impl))
                print(
                    f"{name:5s}  {impl:15s} {s.time_ms:9.3f} "
                    f"{useful / (s.time_ms * 1e6):9.1f}"
                )
    elif which == "softmax":
        print("config     impl      time(ms)  eff-GB/s")
        for name, spec in FIG13_SOFTMAX.items():
            for impl in ("5kernel", "cudnn", "fused", "opt"):
                s = engine.run(make_softmax_kernel(spec, impl))
                bw = 2 * spec.nbytes / (s.time_ms * 1e6)
                print(f"{name:9s}  {impl:8s} {s.time_ms:9.4f} {bw:9.1f}")
    else:
        print(f"unknown layer group {which!r}; choose conv, pool, or softmax", file=sys.stderr)
        return 2
    return 0


def _cmd_attribute(args: argparse.Namespace) -> int:
    from .analysis import attribute_gains

    device = get_device(args.device)
    net = Net(build_network(args.network, batch=args.batch))
    a = attribute_gains(net, device, baseline=args.baseline)
    print(f"{net.name} on {device.name} (baseline: {args.baseline})")
    print(f"  baseline            : {a.baseline_ms:10.3f} ms")
    print(f"  + flexible layouts  : {a.layout_only_ms:10.3f} ms")
    print(f"  + off-chip opts     : {a.full_opt_ms:10.3f} ms")
    print(
        f"  attribution         : layout {a.layout_share:.0%}, "
        f"off-chip {a.offchip_share:.0%} "
        "(paper Section VI.C: 72% / 28%)"
    )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .analysis import crossovers, sweep_conv

    device = get_device(args.device)
    name = args.layer.upper()
    if name not in CONV_LAYERS:
        print(f"unknown conv layer {args.layer!r}", file=sys.stderr)
        return 2
    values = tuple(int(v) for v in args.values.split(","))
    impls = tuple(args.impls.split(","))
    result = sweep_conv(device, CONV_LAYERS[name], args.dim, values, impls, jobs=args.jobs)
    header = "  ".join(f"{impl:>12s}" for impl in impls)
    print(f"{args.dim:>6s}  {header}  {'winner':>10s}")
    for v in values:
        cells = []
        for impl in impls:
            t = result.time(v, impl)
            cells.append(f"{t:12.3f}" if t is not None else f"{'n/a':>12s}")
        try:
            winner = result.winner(v)
        except ValueError:
            winner = "-"
        print(f"{v:6d}  " + "  ".join(cells) + f"  {winner:>10s}")
    for value, old, new in crossovers(result):
        print(f"crossover at {args.dim}={value}: {old} -> {new}")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    device = get_device(args.device)
    engine = SimulationEngine(device, check_memory=False)
    name = args.layer.upper()
    if name in CONV_LAYERS:
        spec = CONV_LAYERS[name]
        entries = []
        for impl in ("direct", "im2col", "im2col-nhwc", "fft", "fft-tiled"):
            try:
                entries.append((impl, engine.run(make_conv_kernel(spec, impl))))
            except (ConvUnsupportedError, GpuOutOfMemoryError) as exc:
                print(f"{impl}: unavailable ({exc})")
        print(comparison_table(device, entries))
        if args.verbose:
            for impl, stats in entries:
                print()
                print(kernel_report(device, stats))
    elif name in POOL_LAYERS:
        spec = POOL_LAYERS[name]
        entries = [
            (impl, engine.run(make_pool_kernel(spec, impl)))
            for impl in ("chwn", "chwn-coarsened", "nchw-linear", "nchw-rowblock")
        ]
        print(comparison_table(device, entries))
        if args.verbose:
            for impl, stats in entries:
                print()
                print(kernel_report(device, stats))
    else:
        known = ", ".join(list(CONV_LAYERS) + list(POOL_LAYERS))
        print(f"unknown layer {args.layer!r}; known: {known}", file=sys.stderr)
        return 2
    return 0


def _cmd_footprint(args: argparse.Namespace) -> int:
    from .framework import Net
    from .framework.memory import format_footprint, plan_within_memory

    device = get_device(args.device)
    net = Net(build_network(args.network, batch=args.batch))
    plan, footprint = plan_within_memory(device, net, training=args.training)
    mode = "training" if args.training else "inference"
    print(f"{net.name} ({mode}) on {device.name}:")
    print(" ", format_footprint(footprint))
    print(
        f"  peak {footprint.peak_bytes / 2**30:.2f} GiB of "
        f"{device.dram_gib:.0f} GiB -> fits: {footprint.fits(device)}"
    )
    fft_layers = [s.name for s in plan.steps if "fft" in s.implementation]
    if fft_layers:
        print(f"  plan uses FFT on: {', '.join(fft_layers)}")
    else:
        print("  plan avoids FFT (memory pressure or no benefit)")
    return 0


def _parse_rule_ids(values: list[str] | None) -> frozenset[str]:
    ids: set[str] = set()
    for value in values or []:
        ids.update(part.strip().upper() for part in value.split(",") if part.strip())
    return frozenset(ids)


def _cmd_lint(args: argparse.Namespace) -> int:
    import json

    from .analysis import LintConfig, UnknownRuleError, iter_rules, lint_network
    from .analysis.lint import lint_netdef_text

    if args.list_rules:
        for r in iter_rules():
            print(f"{r.id}  {r.severity.value:7s}  {r.summary}")
        return 0

    try:
        config = LintConfig(
            disabled=_parse_rule_ids(args.disable),
            selected=_parse_rule_ids(args.select) or None,
        )
    except UnknownRuleError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2

    device = get_device(args.device)
    reports = []
    if args.netdef:
        try:
            with open(args.netdef, encoding="utf-8") as fh:
                text = fh.read()
        except OSError as exc:
            print(f"lint: cannot read {args.netdef}: {exc}", file=sys.stderr)
            return 2
        diagnostics = lint_netdef_text(text, config)
        from .analysis import LintReport

        report = LintReport(target=args.netdef, device=device.name, strategy="netdef")
        report.diagnostics = diagnostics
        reports.append(report)
    else:
        names = [args.network] if args.network else sorted(NETWORK_BUILDERS)
        for name in names:
            netdef = build_network(name, batch=args.batch)
            reports.append(
                lint_network(device, netdef, strategy=args.strategy, config=config)
            )

    failed = any(r.failed(strict=args.strict) for r in reports)
    if args.format == "json":
        payload = {
            "device": device.name,
            "strict": args.strict,
            "failed": failed,
            "reports": [r.to_dict() for r in reports],
        }
        print(json.dumps(payload, indent=2))
    else:
        for report in reports:
            print(report.render_text())
    return 1 if failed else 0


def _cmd_verify(args: argparse.Namespace) -> int:
    import json

    from .analysis import LintConfig, UnknownRuleError, iter_rules
    from .analysis.dataflow import liveness_footprint, verify_graph, verify_network
    from .analysis.lint import LintReport
    from .core.pipeline import PassContractError
    from .ir.graph import Graph

    if args.list_rules:
        for r in iter_rules():
            if r.id.startswith("D"):
                print(f"{r.id}  {r.severity.value:7s}  {r.summary}")
        return 0

    try:
        config = LintConfig(
            disabled=_parse_rule_ids(args.disable),
            selected=_parse_rule_ids(args.select) or None,
        )
    except UnknownRuleError as exc:
        print(f"verify: {exc}", file=sys.stderr)
        return 2

    device = get_device(args.device)
    results: list[tuple[LintReport, object | None]] = []

    if args.graph:
        try:
            with open(args.graph, encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"verify: cannot read {args.graph}: {exc}", file=sys.stderr)
            return 2
        # Accept both a bare graph dump and the `repro plan --format json`
        # payload (whose graph lives under the "graph" key).
        if isinstance(payload, dict) and "nodes" not in payload:
            payload = payload.get("graph", payload)
        try:
            graph = Graph.from_json(payload)
        except (KeyError, TypeError, ValueError) as exc:
            print(f"verify: malformed graph {args.graph}: {exc}", file=sys.stderr)
            return 2
        report = LintReport(
            target=args.graph, device=device.name, strategy="graph"
        )
        report.diagnostics = verify_graph(graph, device, config)
        footprint = None
        if not report.errors:
            # A structurally broken graph has no well-defined liveness.
            footprint = liveness_footprint(graph, training=args.training)
        results.append((report, footprint))
    else:
        names = [args.network] if args.network else sorted(NETWORK_BUILDERS)
        for name in names:
            netdef = build_network(name, batch=args.batch)
            try:
                report, footprint = verify_network(
                    device,
                    netdef,
                    strategy=args.strategy,
                    config=config,
                    training=args.training,
                )
            except PassContractError as exc:
                print(f"verify: {name}: {exc}", file=sys.stderr)
                return 1
            results.append((report, footprint))

    failed = any(r.failed(strict=args.strict) for r, _ in results)
    if args.format == "json":
        payload = {
            "device": device.name,
            "strict": args.strict,
            "failed": failed,
            "reports": [
                {
                    **report.to_dict(),
                    "footprint": (
                        {
                            "peak_bytes": fp.peak_bytes,
                            "peak_step": fp.peak_step,
                            "weights_bytes": fp.weights_bytes,
                            "curve": [
                                {"step": name, "bytes": nbytes}
                                for name, nbytes in fp.curve
                            ],
                        }
                        if fp is not None
                        else None
                    ),
                }
                for report, fp in results
            ],
        }
        print(json.dumps(payload, indent=2))
    else:
        for report, fp in results:
            print(report.render_text())
            if fp is not None:
                print(fp.summary())
            print()
    return 1 if failed else 0


def _cmd_transform(args: argparse.Namespace) -> int:
    device = get_device(args.device)
    desc = TensorDesc(args.n, args.c, args.hw, args.hw, CHWN)
    print(f"CHWN -> NCHW relayout of N={args.n} C={args.c} HW={args.hw} "
          f"({desc.nbytes / 2**20:.1f} MiB):")
    for method in ("naive", "opt1", "opt2"):
        try:
            s = transform_stats(device, desc, NCHW, method)
        except ValueError as exc:
            print(f"  {method:6s}  n/a ({exc})")
            continue
        print(
            f"  {method:6s} {s.time_ms:8.3f} ms   "
            f"{s.effective_bandwidth_gbs:6.1f} GB/s effective"
        )
    return 0


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Memory-efficiency optimizations for deep CNNs on GPUs "
        "(SC'16 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("info", help="list devices, networks and schemes")
    _add_common(p)

    p = sub.add_parser("calibrate", help="derive the (Ct, Nt) layout thresholds")
    _add_device(p)
    _add_jobs(p)
    _add_obs(p)

    p = sub.add_parser("plan", help="plan layouts for a network")
    _add_device(p)
    _add_obs(p)
    p.add_argument("--network", required=True, choices=sorted(NETWORK_BUILDERS))
    p.add_argument("--batch", type=int, default=None)
    p.add_argument("--strategy", choices=("heuristic", "optimal"), default="optimal")
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.add_argument("--explain", action="store_true",
                   help="print the pass pipeline's per-pass timing and stats")
    p.add_argument("--verify", action="store_true",
                   help="check each pass's declared contracts on its output "
                   "graph; a violation names the offending pass and exits 1")

    p = sub.add_parser(
        "profile",
        help="plan a network under the span tracer and print a profile "
        "summary (pair with --trace/--metrics for files)",
    )
    _add_device(p)
    _add_obs(p)
    _add_jobs(p)
    p.add_argument("network", choices=sorted(NETWORK_BUILDERS))
    p.add_argument("--batch", type=int, default=None)
    p.add_argument("--strategy", choices=("heuristic", "optimal"), default="optimal")

    p = sub.add_parser("bench", help="simulate networks or layer groups")
    _add_device(p)
    p.add_argument("--network", choices=sorted(NETWORK_BUILDERS))
    p.add_argument("--layers", choices=("conv", "pool", "softmax"))

    p = sub.add_parser("attribute", help="decompose Opt's gain (Section VI.C)")
    _add_device(p)
    p.add_argument("--network", required=True, choices=sorted(NETWORK_BUILDERS))
    p.add_argument("--batch", type=int, default=None)
    p.add_argument("--baseline", default="cudnn-best")

    p = sub.add_parser("sweep", help="sensitivity sweep over one conv dimension")
    _add_device(p)
    _add_jobs(p)
    _add_obs(p)
    p.add_argument("--layer", required=True, help="CV1..CV12 base shape")
    p.add_argument("--dim", default="n", help="ConvSpec field to vary (n, ci, co, h)")
    p.add_argument("--values", default="16,32,64,128,256")
    p.add_argument("--impls", default="direct,im2col")

    p = sub.add_parser("inspect", help="profiler-style report for one Table-1 layer")
    _add_device(p)
    p.add_argument("--layer", required=True, help="CV1..CV12 or PL1..PL10")
    p.add_argument("--verbose", action="store_true", help="full per-kernel reports")

    p = sub.add_parser("footprint", help="device-memory footprint of a network")
    _add_device(p)
    p.add_argument("--network", required=True, choices=sorted(NETWORK_BUILDERS))
    p.add_argument("--batch", type=int, default=None)
    p.add_argument("--training", action="store_true")

    p = sub.add_parser(
        "lint", help="static analysis of netdefs, layout plans and kernels"
    )
    _add_device(p)
    p.add_argument("--network", choices=sorted(NETWORK_BUILDERS),
                   help="lint one bundled network (default: all)")
    p.add_argument("--netdef", help="lint a netdef text file instead")
    p.add_argument("--batch", type=int, default=None)
    p.add_argument("--strategy", choices=("heuristic", "optimal"), default="heuristic")
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.add_argument("--strict", action="store_true",
                   help="warnings also cause a nonzero exit")
    p.add_argument("--disable", action="append", metavar="IDS",
                   help="comma-separated rule IDs to skip (repeatable)")
    p.add_argument("--select", action="append", metavar="IDS",
                   help="run only these comma-separated rule IDs (repeatable)")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule catalog and exit")

    p = sub.add_parser(
        "verify",
        help="dataflow verification: abstract interpretation, liveness, "
        "and pass contracts over the planned graph",
    )
    _add_device(p)
    p.add_argument("network", nargs="?", choices=sorted(NETWORK_BUILDERS),
                   help="verify one bundled network (default: all)")
    p.add_argument("--graph", metavar="FILE",
                   help="verify a serialized graph JSON (bare Graph.to_json "
                   "dump or a `repro plan --format json` payload) instead")
    p.add_argument("--batch", type=int, default=None)
    p.add_argument("--strategy", choices=("heuristic", "optimal"), default="optimal")
    p.add_argument("--training", action="store_true",
                   help="liveness model with backward-pass residency")
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.add_argument("--strict", action="store_true",
                   help="warnings also cause a nonzero exit")
    p.add_argument("--disable", action="append", metavar="IDS",
                   help="comma-separated rule IDs to skip (repeatable)")
    p.add_argument("--select", action="append", metavar="IDS",
                   help="run only these comma-separated rule IDs (repeatable)")
    p.add_argument("--list-rules", action="store_true",
                   help="print the D-rule catalog and exit")

    p = sub.add_parser("transform", help="compare layout-transform kernels")
    _add_device(p)
    p.add_argument("--n", type=int, default=64)
    p.add_argument("--c", type=int, default=96)
    p.add_argument("--hw", type=int, default=55)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = make_parser().parse_args(argv)
    handlers = {
        "info": _cmd_info,
        "calibrate": _cmd_calibrate,
        "plan": _cmd_plan,
        "profile": _cmd_profile,
        "bench": _cmd_bench,
        "attribute": _cmd_attribute,
        "sweep": _cmd_sweep,
        "inspect": _cmd_inspect,
        "footprint": _cmd_footprint,
        "lint": _cmd_lint,
        "verify": _cmd_verify,
        "transform": _cmd_transform,
    }
    trace_path = getattr(args, "trace", None)
    jsonl_path = getattr(args, "jsonl", None)
    metrics_path = getattr(args, "metrics", None)
    # `profile` always traces (its summary reads the span stream); the
    # other commands trace only when asked for an export file.  Tracing is
    # observational: the handler's stdout is byte-identical either way,
    # and file notes go to stderr.
    want_tracer = bool(trace_path or jsonl_path) or args.command == "profile"
    tracer = install_tracer(Tracer(f"repro-{args.command}")) if want_tracer else None
    try:
        if tracer is not None:
            with tracer.span(f"repro {args.command}", "cli", command=args.command):
                status = handlers[args.command](args)
        else:
            status = handlers[args.command](args)
    finally:
        if want_tracer:
            uninstall_tracer()
    if tracer is not None and trace_path:
        write_chrome_trace(trace_path, tracer)
        print(
            f"trace: wrote {len(tracer.spans())} spans to {trace_path}",
            file=sys.stderr,
        )
    if tracer is not None and jsonl_path:
        write_jsonl(jsonl_path, tracer)
        print(
            f"jsonl: wrote {len(tracer.spans())} spans / "
            f"{len(tracer.events())} events to {jsonl_path}",
            file=sys.stderr,
        )
    if metrics_path:
        write_metrics(metrics_path)
        print(f"metrics: wrote {metrics_path}", file=sys.stderr)
    if getattr(args, "sim_stats", False):
        print()
        print(global_sim_stats().summary())
    return status


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
