"""The paper's Table 1: every benchmarked layer configuration.

Column meanings follow the paper: Ni batch, Co output maps, H/W spatial
extent (input), Fw/Fh filter or pooling window, Ci input maps, S stride.
Names CV1–CV12, PL1–PL10, CLASS1–CLASS5 match the figures.
"""

from __future__ import annotations

from ..layers.base import ConvSpec, PoolSpec, SoftmaxSpec

#: Convolutional layers CV1–CV12 (Table 1 rows CONV1–CONV12).
CONV_LAYERS: dict[str, ConvSpec] = {
    # LeNet (MNIST)
    "CV1": ConvSpec(n=128, ci=1, h=28, w=28, co=16, fh=5, fw=5, stride=1),
    "CV2": ConvSpec(n=128, ci=16, h=14, w=14, co=16, fh=5, fw=5, stride=1),
    # Cifar10
    "CV3": ConvSpec(n=128, ci=3, h=24, w=24, co=64, fh=5, fw=5, stride=1),
    "CV4": ConvSpec(n=128, ci=64, h=12, w=12, co=64, fh=5, fw=5, stride=1),
    # ImageNet / ZFNet
    "CV5": ConvSpec(n=64, ci=3, h=224, w=224, co=96, fh=3, fw=3, stride=2),
    "CV6": ConvSpec(n=64, ci=96, h=55, w=55, co=256, fh=5, fw=5, stride=2),
    "CV7": ConvSpec(n=64, ci=256, h=13, w=13, co=384, fh=3, fw=3, stride=1, pad=1),
    "CV8": ConvSpec(n=64, ci=384, h=13, w=13, co=384, fh=3, fw=3, stride=1, pad=1),
    # ImageNet / VGG
    "CV9": ConvSpec(n=32, ci=3, h=224, w=224, co=64, fh=3, fw=3, stride=1, pad=1),
    "CV10": ConvSpec(n=32, ci=128, h=56, w=56, co=256, fh=3, fw=3, stride=1, pad=1),
    "CV11": ConvSpec(n=32, ci=256, h=28, w=28, co=512, fh=3, fw=3, stride=1, pad=1),
    "CV12": ConvSpec(n=32, ci=512, h=14, w=14, co=512, fh=3, fw=3, stride=1, pad=1),
}

#: Pooling layers PL1–PL10.  PL1/PL2 are LeNet's non-overlapped 2x2/s2
#: pools; the rest are overlapped 3x3/s2 (window > stride).
POOL_LAYERS: dict[str, PoolSpec] = {
    "PL1": PoolSpec(n=128, c=16, h=28, w=28, window=2, stride=2),
    "PL2": PoolSpec(n=128, c=16, h=14, w=14, window=2, stride=2),
    "PL3": PoolSpec(n=128, c=64, h=24, w=24, window=3, stride=2),
    "PL4": PoolSpec(n=128, c=64, h=12, w=12, window=3, stride=2),
    "PL5": PoolSpec(n=128, c=96, h=55, w=55, window=3, stride=2),
    "PL6": PoolSpec(n=128, c=192, h=27, w=27, window=3, stride=2),
    "PL7": PoolSpec(n=128, c=256, h=13, w=13, window=3, stride=2),
    "PL8": PoolSpec(n=64, c=96, h=110, w=110, window=3, stride=2),
    "PL9": PoolSpec(n=64, c=256, h=26, w=26, window=3, stride=2),
    "PL10": PoolSpec(n=64, c=256, h=13, w=13, window=3, stride=2),
}

#: Classifier layers CLASS1–CLASS5.
CLASS_LAYERS: dict[str, SoftmaxSpec] = {
    "CLASS1": SoftmaxSpec(n=128, categories=10),
    "CLASS2": SoftmaxSpec(n=128, categories=10),
    "CLASS3": SoftmaxSpec(n=128, categories=1000),
    "CLASS4": SoftmaxSpec(n=64, categories=1000),
    "CLASS5": SoftmaxSpec(n=32, categories=1000),
}

#: The twelve softmax configurations of Fig. 13 ("x/y means the batch size
#: as x and the number of categories as y").
FIG13_SOFTMAX: dict[str, SoftmaxSpec] = {
    f"{n}/{c}": SoftmaxSpec(n=n, categories=c)
    for n in (32, 64, 128)
    for c in (10, 100, 1000, 10000)
}

#: Layers used in Fig. 1 / Fig. 15: AlexNet's conv and pool layers.  Table 1
#: only lists AlexNet's pools; its convs follow Krizhevsky et al. with the
#: paper's batch size of 128 (single-GPU variant, no grouping).
ALEXNET_CONV: dict[str, ConvSpec] = {
    "ACV1": ConvSpec(n=128, ci=3, h=224, w=224, co=96, fh=11, fw=11, stride=4),
    "ACV2": ConvSpec(n=128, ci=96, h=27, w=27, co=256, fh=5, fw=5, stride=1, pad=2),
    "ACV3": ConvSpec(n=128, ci=256, h=13, w=13, co=384, fh=3, fw=3, stride=1, pad=1),
    "ACV4": ConvSpec(n=128, ci=384, h=13, w=13, co=384, fh=3, fw=3, stride=1, pad=1),
    "ACV5": ConvSpec(n=128, ci=384, h=13, w=13, co=256, fh=3, fw=3, stride=1, pad=1),
}

ALEXNET_POOL: dict[str, PoolSpec] = {
    "APL1": POOL_LAYERS["PL5"],
    "APL2": POOL_LAYERS["PL6"],
    "APL3": POOL_LAYERS["PL7"],
}


def conv_layer(name: str) -> ConvSpec:
    """Look up a Table-1 convolution by name (``CV1``..``CV12``)."""
    try:
        return CONV_LAYERS[name.upper()]
    except KeyError:
        raise KeyError(
            f"unknown conv layer {name!r}; known: {', '.join(CONV_LAYERS)}"
        ) from None


def pool_layer(name: str) -> PoolSpec:
    """Look up a Table-1 pooling layer by name (``PL1``..``PL10``)."""
    try:
        return POOL_LAYERS[name.upper()]
    except KeyError:
        raise KeyError(
            f"unknown pool layer {name!r}; known: {', '.join(POOL_LAYERS)}"
        ) from None
