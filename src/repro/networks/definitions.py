"""The five benchmark networks of the paper (Section III.A / Fig. 14).

Shapes follow Table 1's layer configurations: padding is chosen so that the
pool/conv input extents match the table rows exactly (e.g. LeNet's convs
use 'same' padding so PL1 sees 28x28 and PL2 sees 14x14; ZFNet's first
convolution uses a 5x5/s2 filter so that PL8 sees 110x110).  Each builder
takes an optional batch override; defaults are the paper's (128 for
LeNet/Cifar/AlexNet, 64 for ZFNet, 32 for VGG).
"""

from __future__ import annotations

from ..framework.netdef import (
    ConcatDef,
    ConvDef,
    FCDef,
    LRNDef,
    NetworkDef,
    PoolDef,
    SoftmaxDef,
)


def lenet(batch: int = 128) -> NetworkDef:
    """LeNet on MNIST (28x28 grey-scale, 10 classes); CV1/CV2/PL1/PL2/CLASS1."""
    return NetworkDef(
        name="lenet",
        batch=batch,
        in_channels=1,
        in_h=28,
        in_w=28,
        layers=(
            ConvDef("conv1", co=16, f=5, pad=2),
            PoolDef("pool1", window=2, stride=2),
            ConvDef("conv2", co=16, f=5, pad=2),
            PoolDef("pool2", window=2, stride=2),
            FCDef("fc1", out_features=500),
            FCDef("fc2", out_features=10, relu=False),
            SoftmaxDef("prob"),
        ),
    )


def cifar(batch: int = 128) -> NetworkDef:
    """The cuda-convnet CIFAR-10 example network (24x24 crops, 10 classes);
    CV3/CV4/PL3/PL4/CLASS2."""
    return NetworkDef(
        name="cifar",
        batch=batch,
        in_channels=3,
        in_h=24,
        in_w=24,
        layers=(
            ConvDef("conv1", co=64, f=5, pad=2),
            PoolDef("pool1", window=3, stride=2),
            ConvDef("conv2", co=64, f=5, pad=2),
            PoolDef("pool2", window=3, stride=2),
            FCDef("fc1", out_features=64),
            FCDef("fc2", out_features=10, relu=False),
            SoftmaxDef("prob"),
        ),
    )


def alexnet(batch: int = 128) -> NetworkDef:
    """AlexNet (single-tower) on ImageNet; PL5–PL7 and CLASS3 are its pool
    and classifier rows in Table 1."""
    return NetworkDef(
        name="alexnet",
        batch=batch,
        in_channels=3,
        in_h=227,
        in_w=227,
        layers=(
            ConvDef("conv1", co=96, f=11, stride=4),
            LRNDef("norm1"),
            PoolDef("pool1", window=3, stride=2),
            ConvDef("conv2", co=256, f=5, pad=2),
            LRNDef("norm2"),
            PoolDef("pool2", window=3, stride=2),
            ConvDef("conv3", co=384, f=3, pad=1),
            ConvDef("conv4", co=384, f=3, pad=1),
            ConvDef("conv5", co=256, f=3, pad=1),
            PoolDef("pool3", window=3, stride=2),
            FCDef("fc6", out_features=4096),
            FCDef("fc7", out_features=4096),
            FCDef("fc8", out_features=1000, relu=False),
            SoftmaxDef("prob"),
        ),
    )


def zfnet(batch: int = 64) -> NetworkDef:
    """ZFNet on ImageNet; CV6–CV8, PL8–PL10 and CLASS4 come from this net.

    Table 1 lists the first ZFNet convolution (CV5) as 3x3/s2 on 224; for a
    consistent chain into PL8's 110x110 input the network uses a 5x5/s2
    first filter ((224-5)/2+1 = 110).  CV5 itself is still benchmarked
    standalone with the table's exact shape.
    """
    return NetworkDef(
        name="zfnet",
        batch=batch,
        in_channels=3,
        in_h=224,
        in_w=224,
        layers=(
            ConvDef("conv1", co=96, f=5, stride=2),
            PoolDef("pool1", window=3, stride=2),
            LRNDef("norm1"),
            ConvDef("conv2", co=256, f=5, stride=2),
            PoolDef("pool2", window=3, stride=2),
            LRNDef("norm2"),
            ConvDef("conv3", co=384, f=3, pad=1),
            ConvDef("conv4", co=384, f=3, pad=1),
            ConvDef("conv5", co=256, f=3, pad=1),
            PoolDef("pool3", window=3, stride=2),
            FCDef("fc6", out_features=4096),
            FCDef("fc7", out_features=4096),
            FCDef("fc8", out_features=1000, relu=False),
            SoftmaxDef("prob"),
        ),
    )


def vgg(batch: int = 32) -> NetworkDef:
    """VGG-16 on ImageNet; CV9–CV12 and CLASS5 come from this net."""
    blocks = (
        ("1", 64, 2),
        ("2", 128, 2),
        ("3", 256, 3),
        ("4", 512, 3),
        ("5", 512, 3),
    )
    layers: list = []
    for tag, co, reps in blocks:
        for i in range(1, reps + 1):
            layers.append(ConvDef(f"conv{tag}_{i}", co=co, f=3, pad=1))
        layers.append(PoolDef(f"pool{tag}", window=2, stride=2))
    layers += [
        FCDef("fc6", out_features=4096),
        FCDef("fc7", out_features=4096),
        FCDef("fc8", out_features=1000, relu=False),
        SoftmaxDef("prob"),
    ]
    return NetworkDef(
        name="vgg", batch=batch, in_channels=3, in_h=224, in_w=224, layers=tuple(layers)
    )


def alexnet_grouped(batch: int = 128) -> NetworkDef:
    """AlexNet with its original two-tower grouping (conv2/4/5 use
    groups=2, as in Krizhevsky et al.'s dual-GPU layout)."""
    base = alexnet(batch)
    layers = []
    for layer in base.layers:
        if isinstance(layer, ConvDef) and layer.name in ("conv2", "conv4", "conv5"):
            layers.append(
                ConvDef(
                    layer.name, co=layer.co, f=layer.f, stride=layer.stride,
                    pad=layer.pad, relu=layer.relu, groups=2,
                )
            )
        else:
            layers.append(layer)
    return NetworkDef(
        "alexnet-grouped", base.batch, base.in_channels, base.in_h, base.in_w,
        tuple(layers),
    )


def inception(batch: int = 64) -> NetworkDef:
    """A GoogLeNet-style stem plus one Inception block (Szegedy et al.).

    The only bundled *branching* network: four parallel paths read the
    same pooling output and a channel concat joins them.  It exercises the
    graph planner on a real DAG — the 5x5 path's bottleneck (16 input
    channels, below Ct=32) prefers CHWN while its wide siblings prefer
    NCHW, so the layout of the join is a genuine optimization decision the
    chain planner cannot even express.
    """
    return NetworkDef(
        name="inception",
        batch=batch,
        in_channels=3,
        in_h=224,
        in_w=224,
        layers=(
            # stem
            ConvDef("conv1", co=64, f=7, stride=2, pad=3),
            PoolDef("pool1", window=3, stride=2),
            ConvDef("conv2", co=64, f=1),
            LRNDef("norm1"),
            ConvDef("conv3", co=192, f=3, pad=1),
            PoolDef("pool2", window=3, stride=2),
            # inception block: four branches off pool2
            ConvDef("b1", co=64, f=1, bottom="pool2"),
            ConvDef("b2a", co=96, f=1, bottom="pool2"),
            ConvDef("b2b", co=128, f=3, pad=1, bottom="b2a"),
            ConvDef("b3a", co=16, f=1, bottom="pool2"),
            ConvDef("b3b", co=32, f=5, pad=2, bottom="b3a"),
            ConvDef("b4", co=32, f=1, bottom="pool2"),
            ConcatDef("concat", inputs=("b1", "b2b", "b3b", "b4")),
            # head
            PoolDef("pool3", window=3, stride=2),
            FCDef("fc1", out_features=512),
            FCDef("fc2", out_features=1000, relu=False),
            SoftmaxDef("prob"),
        ),
    )


NETWORK_BUILDERS = {
    "lenet": lenet,
    "cifar": cifar,
    "alexnet": alexnet,
    "alexnet-grouped": alexnet_grouped,
    "inception": inception,
    "zfnet": zfnet,
    "vgg": vgg,
}


def build_network(name: str, batch: int | None = None) -> NetworkDef:
    """Build a benchmark network by name, optionally overriding the batch."""
    try:
        builder = NETWORK_BUILDERS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown network {name!r}; known: {', '.join(NETWORK_BUILDERS)}"
        ) from None
    return builder() if batch is None else builder(batch)
