"""Benchmark networks and the paper's Table-1 layer configurations."""

from .definitions import (
    NETWORK_BUILDERS,
    alexnet,
    build_network,
    cifar,
    inception,
    lenet,
    vgg,
    zfnet,
)
from .table1 import (
    ALEXNET_CONV,
    ALEXNET_POOL,
    CLASS_LAYERS,
    CONV_LAYERS,
    FIG13_SOFTMAX,
    POOL_LAYERS,
    conv_layer,
    pool_layer,
)

__all__ = [
    "ALEXNET_CONV",
    "ALEXNET_POOL",
    "CLASS_LAYERS",
    "CONV_LAYERS",
    "FIG13_SOFTMAX",
    "NETWORK_BUILDERS",
    "POOL_LAYERS",
    "alexnet",
    "build_network",
    "cifar",
    "conv_layer",
    "inception",
    "lenet",
    "pool_layer",
    "vgg",
    "zfnet",
]
