"""Plan & kernel static analysis: ``repro lint``.

The framework integration of Section IV.D silently inserts layout
transforms, and the performance model trusts every kernel's launch
configuration to fit the device — so a bad network definition, a missing
CHWN↔NCHW transform, or a kernel exceeding shared-memory limits would only
surface (if at all) deep inside a simulation run.  This module validates
all three *before* simulation, the way cuDNN-style libraries validate
descriptors up front:

* **N0xx** — network definitions: shape/stride/padding arithmetic, channel
  propagation, dead layers (:mod:`repro.analysis.rules.netdef_rules`);
* **L0xx** — layout plans: every producer→consumer layout change carries an
  explicit transform, no transform/inverse islands, implementations match
  their layout family, threshold-ambiguous layers are surfaced
  (:mod:`repro.analysis.rules.layout_rules`);
* **K0xx** — kernel models against :class:`DeviceSpec` limits via the same
  :func:`~repro.gpusim.occupancy.check_launch` predicate the occupancy
  calculator enforces (:mod:`repro.analysis.rules.kernel_rules`);
* **D0xx** — dataflow verification of the annotated graph IR: abstract
  shape/layout interpretation, transform-fact consistency, and liveness
  hazards over real producer→consumer edges
  (:mod:`repro.analysis.rules.dataflow_rules`, backed by
  :mod:`repro.analysis.dataflow`).

Entry points: :func:`lint_netdef` / :func:`lint_plan` / :func:`lint_kernel`
/ :func:`lint_graph` for one scope each, and :func:`lint_network` for the
whole pipeline (definition → plan → graph dataflow → per-step kernels →
transforms).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..core.heuristic import LayoutThresholds, thresholds_for
from ..core.pipeline import PipelineOptions, run_pipeline
from ..core.planner import LayoutPlan, NodeKind, PlanNode
from ..framework.netdef import NetworkDef, parse_netdef
from ..ir.build import lower_netdef
from ..ir.graph import Graph
from ..gpusim.device import DeviceSpec
from ..gpusim.kernel import KernelModel
from ..gpusim.session import SimulationContext
from ..layers.base import ConvSpec, PoolSpec
from ..layers.conv_kernels import make_conv_kernel
from ..layers.pooling_kernels import make_pool_kernel
from ..tensors.tensor import TensorDesc
from ..tensors.transform_kernels import make_transform_kernel
from .rules import (
    REGISTRY,
    Diagnostic,
    GraphScope,
    KernelScope,
    NetdefScope,
    PlanScope,
    Rule,
    Severity,
    rules_for,
)


class UnknownRuleError(ValueError):
    """A rule ID referenced by configuration does not exist."""


@dataclass(frozen=True)
class LintConfig:
    """Per-run rule selection.

    ``disabled`` switches individual rules off; ``selected`` (when given)
    runs *only* those rules; ``margin`` widens/narrows the L003 ambiguous
    region around the (Ct, Nt) thresholds.
    """

    disabled: frozenset[str] = frozenset()
    selected: frozenset[str] | None = None
    margin: int = 1

    def __post_init__(self) -> None:
        unknown = set(self.disabled) - set(REGISTRY)
        if self.selected is not None:
            unknown |= set(self.selected) - set(REGISTRY)
        if unknown:
            raise UnknownRuleError(
                f"unknown rule id(s): {', '.join(sorted(unknown))}; "
                f"known rules: {', '.join(sorted(REGISTRY))}"
            )

    def active(self, rule: Rule) -> bool:
        if rule.id in self.disabled:
            return False
        return self.selected is None or rule.id in self.selected


DEFAULT_CONFIG = LintConfig()


def iter_rules() -> list[Rule]:
    """The full rule catalog in ID order (the ``--list-rules`` view)."""
    return [REGISTRY[rule_id] for rule_id in sorted(REGISTRY)]


def _run_scope(
    scope_kind: str,
    scope: NetdefScope | PlanScope | KernelScope | GraphScope,
    config: LintConfig,
    network: str = "",
) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    for rule in rules_for(scope_kind):
        if not config.active(rule):
            continue
        for finding in rule.check(scope):
            diagnostics.append(
                Diagnostic(
                    rule_id=rule.id,
                    severity=rule.severity,
                    subject=finding.subject,
                    message=finding.message,
                    network=network,
                    detail=dict(finding.detail),
                )
            )
    return diagnostics


# ---------------------------------------------------------------------------
# Single-scope entry points
# ---------------------------------------------------------------------------


def lint_netdef(
    net: NetworkDef, config: LintConfig = DEFAULT_CONFIG
) -> list[Diagnostic]:
    """Run the N0xx rules over one network definition."""
    return _run_scope("netdef", NetdefScope(net), config, network=net.name)


def lint_netdef_text(
    text: str, config: LintConfig = DEFAULT_CONFIG
) -> list[Diagnostic]:
    """Parse and lint a textual netdef; parse failures become rule N000."""
    try:
        net = parse_netdef(text)
    except ValueError as exc:
        return _run_scope("netdef", NetdefScope(None, error=str(exc)), config)
    return lint_netdef(net, config)


def lint_plan(
    device: DeviceSpec,
    plan: LayoutPlan,
    nodes: list[PlanNode] | tuple[PlanNode, ...] | None = None,
    thresholds: LayoutThresholds | None = None,
    config: LintConfig = DEFAULT_CONFIG,
    network: str = "",
    graph: Graph | None = None,
) -> list[Diagnostic]:
    """Run the L0xx rules over one layout plan.

    ``nodes`` (the planner's view of the layer chain) enables the rules
    that need layer geometry: chain coverage (L006) and threshold
    ambiguity (L003).  ``graph`` — the annotated IR the pipeline planned
    over — switches the edge-walking rules (L001/L002) from the linear
    step walk to the graph's true producer/consumer edges, which is
    required for branching networks.
    """
    scope = PlanScope(
        device=device,
        plan=plan,
        nodes=tuple(nodes) if nodes is not None else None,
        thresholds=thresholds,
        margin=config.margin,
        graph=graph,
    )
    return _run_scope("plan", scope, config, network=network)


def lint_graph(
    graph: Graph,
    device: DeviceSpec | None = None,
    config: LintConfig = DEFAULT_CONFIG,
    network: str = "",
) -> list[Diagnostic]:
    """Run the D0xx dataflow rules over one annotated graph IR."""
    return _run_scope(
        "graph",
        GraphScope(graph=graph, device=device),
        config,
        network=network or graph.name,
    )


def lint_kernel(
    device: DeviceSpec,
    kernel: KernelModel,
    owner: str = "",
    config: LintConfig = DEFAULT_CONFIG,
    network: str = "",
) -> list[Diagnostic]:
    """Run the K0xx rules over one kernel model on one device."""
    scope = KernelScope(device=device, kernel=kernel, owner=owner)
    return _run_scope("kernel", scope, config, network=network)


# ---------------------------------------------------------------------------
# Whole-network pipeline
# ---------------------------------------------------------------------------


@dataclass
class LintReport:
    """All diagnostics for one lint target, with severity bookkeeping."""

    target: str
    device: str
    strategy: str
    diagnostics: list[Diagnostic] = field(default_factory=list)
    plan: LayoutPlan | None = None

    def _of(self, severity: Severity) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is severity]

    @property
    def errors(self) -> list[Diagnostic]:
        return self._of(Severity.ERROR)

    @property
    def warnings(self) -> list[Diagnostic]:
        return self._of(Severity.WARNING)

    @property
    def infos(self) -> list[Diagnostic]:
        return self._of(Severity.INFO)

    @property
    def counts(self) -> dict[str, int]:
        return {
            "error": len(self.errors),
            "warning": len(self.warnings),
            "info": len(self.infos),
        }

    def failed(self, strict: bool = False) -> bool:
        """Nonzero-exit condition: errors, or any warning under --strict."""
        if self.errors:
            return True
        return strict and bool(self.warnings)

    def sorted_diagnostics(self) -> list[Diagnostic]:
        return sorted(
            self.diagnostics,
            key=lambda d: (d.severity.rank, d.rule_id, d.subject),
        )

    def render_text(self) -> str:
        counts = self.counts
        lines = [
            f"{self.target} ({self.device}, {self.strategy}): "
            f"{counts['error']} error(s), {counts['warning']} warning(s), "
            f"{counts['info']} info"
        ]
        lines += [f"  {d.format()}" for d in self.sorted_diagnostics()]
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "target": self.target,
            "device": self.device,
            "strategy": self.strategy,
            "counts": self.counts,
            "diagnostics": [d.to_dict() for d in self.sorted_diagnostics()],
        }


def _step_kernel(
    step_kind: NodeKind,
    spec: object,
    implementation: str,
    coarsening: tuple[int, int] | None,
) -> KernelModel | None:
    """Rebuild the kernel model a plan step selected, if reconstructible."""
    try:
        if step_kind is NodeKind.CONV and isinstance(spec, ConvSpec):
            return make_conv_kernel(spec, implementation)
        if step_kind is NodeKind.POOL and isinstance(spec, PoolSpec):
            if implementation == "chwn-coarsened" and coarsening is not None:
                return make_pool_kernel(spec, implementation, coarsen=coarsening)
            return make_pool_kernel(spec, implementation)
    except ValueError:
        return None  # unknown implementation: L005 already reports it
    return None


def lint_network(
    device: DeviceSpec,
    netdef: NetworkDef,
    strategy: str = "heuristic",
    config: LintConfig = DEFAULT_CONFIG,
    context: SimulationContext | None = None,
) -> LintReport:
    """Lint one network end to end: definition, plan, kernels, transforms.

    Netdef errors stop the pipeline (an inconsistent definition has no
    well-defined plan); otherwise the requested planner runs and its output
    is checked layer by layer, including the layout-transform kernels the
    plan inserts at boundaries.
    """
    report = LintReport(target=netdef.name, device=device.name, strategy=strategy)
    report.diagnostics += lint_netdef(netdef, config)
    if any(d.severity is Severity.ERROR for d in report.diagnostics):
        return report

    options = PipelineOptions(
        strategy="heuristic" if strategy == "heuristic" else "optimal"
    )
    result = run_pipeline(
        device, lower_netdef(netdef), options, context=context
    )
    plan, graph = result.plan, result.graph
    nodes = graph.topological()
    report.plan = plan
    thresholds = thresholds_for(device)
    report.diagnostics += lint_plan(
        device, plan, nodes, thresholds, config, network=netdef.name, graph=graph
    )
    report.diagnostics += lint_graph(graph, device, config, network=netdef.name)

    specs = {n.name: n.spec for n in nodes}
    in_dims = {n.name: n.in_dims for n in nodes}
    for step in plan.steps:
        dims = in_dims.get(step.name)
        target = step.transformed_to or step.layout
        if step.transformed_from is not None and target is not None and dims:
            desc = TensorDesc(*dims, layout=step.transformed_from)
            transform = make_transform_kernel(desc, target, method="auto")
            report.diagnostics += lint_kernel(
                device,
                transform,
                owner=f"{step.name}[{transform.name}]",
                config=config,
                network=netdef.name,
            )
        if step.layout is None:
            continue
        kernel = _step_kernel(
            step.kind, specs.get(step.name), step.implementation, step.coarsening
        )
        if kernel is not None:
            report.diagnostics += lint_kernel(
                device,
                kernel,
                owner=f"{step.name}[{step.implementation}]",
                config=config,
                network=netdef.name,
            )
    return report
