"""Attribution of Opt's whole-network gains (paper Section VI.C).

"The performance impact of each layer on the whole network is different,
with convolutional layer being the most performance dominant.  Thus,
achieving the flexible data layout for a network is the most critical
optimization, contributing a 72% improvement.  Comparatively, the off-chip
memory access optimization contributes 28% due to the much smaller
execution time of pooling and Softmax layers."

This module reproduces that decomposition: starting from a baseline scheme,
apply the two optimization families one at a time —

1. **flexible data layout** — per-layer layout selection for convolutions
   and pooling (with fast transforms), but *library* pooling/softmax
   kernels (no coarsening, no fusion);
2. **off-chip access optimization** — auto-tuned pooling coarsening and
   the fused softmax on top of (1);

and report each family's share of the total time saved.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines.schemes import NetworkTiming, time_network
from ..core.planner import NodeKind, plan_optimal
from ..framework.net import Net
from ..gpusim.device import DeviceSpec
from ..gpusim.session import SimulationContext, default_context
from ..layers.base import SoftmaxSpec
from ..layers.pooling_kernels import make_pool_kernel
from ..layers.softmax_kernels import make_softmax_kernel


@dataclass(frozen=True)
class GainAttribution:
    """Decomposition of Opt's improvement over a baseline scheme."""

    network: str
    baseline_ms: float
    layout_only_ms: float  # flexible layouts, library memory kernels
    full_opt_ms: float  # + coarsened pooling and fused softmax

    @property
    def total_saved_ms(self) -> float:
        return self.baseline_ms - self.full_opt_ms

    @property
    def layout_share(self) -> float:
        """Fraction of the saving delivered by flexible data layout."""
        if self.total_saved_ms <= 0:
            return 0.0
        return (self.baseline_ms - self.layout_only_ms) / self.total_saved_ms

    @property
    def offchip_share(self) -> float:
        """Fraction delivered by the pooling/softmax access optimizations."""
        if self.total_saved_ms <= 0:
            return 0.0
        return (self.layout_only_ms - self.full_opt_ms) / self.total_saved_ms


def _layout_only_ms(
    net: Net, device: DeviceSpec, context: SimulationContext
) -> float:
    """Total time with planned layouts but *unoptimized* memory kernels.

    The plan (and its transforms) is kept; pooling reverts from the
    coarsened kernel to the plain kernel of the planned layout, and the
    softmax reverts to the best library baseline.
    """
    engine = context.engine(check_memory=False)
    if net.is_chain:
        plan = plan_optimal(
            device, net.planner_nodes(device, context=context), context=context
        )
    else:
        from ..core.pipeline import PipelineOptions, plan_network

        plan = plan_network(
            device, net.definition, PipelineOptions(strategy="optimal"),
            context=context,
        ).plan
    total = 0.0
    by_name = {layer.name: layer for layer in net.layers}
    for step in plan.steps:
        total += step.transform_ms
        layer = by_name[step.name]
        if step.kind is NodeKind.POOL and step.layout is not None:
            impl = "chwn" if str(step.layout) == "CHWN" else "nchw-linear"
            total += engine.run(make_pool_kernel(layer.spec, impl)).time_ms
        elif isinstance(layer.spec, SoftmaxSpec):
            total += min(
                engine.run(make_softmax_kernel(layer.spec, impl)).time_ms
                for impl in ("5kernel", "cudnn")
            )
        else:
            total += step.layer_ms
    return total


def attribute_gains(
    net: Net,
    device: DeviceSpec,
    baseline: str = "cudnn-best",
    context: SimulationContext | None = None,
) -> GainAttribution:
    """Decompose Opt's gain over ``baseline`` into the two families."""
    ctx = context or default_context(device)
    base: NetworkTiming = time_network(net, device, baseline, context=ctx)
    full: NetworkTiming = time_network(net, device, "opt", context=ctx)
    layout_only = _layout_only_ms(net, device, ctx)
    return GainAttribution(
        network=net.name,
        baseline_ms=base.total_ms,
        layout_only_ms=layout_only,
        full_opt_ms=full.total_ms,
    )
