"""N0xx rules: network-definition sanity (shape arithmetic, channel
propagation, dead layers).

These checks re-walk the layer stack with a *tolerant* shape inference:
unlike :func:`repro.framework.net.resolve`, which raises on the first
inconsistency, the walker records every problem it can attribute to a layer
and keeps going, so one lint run reports the whole damage.
"""

from __future__ import annotations

from collections.abc import Iterator
from functools import lru_cache

from ...framework.netdef import (
    ConvDef,
    FCDef,
    LRNDef,
    NetworkDef,
    PoolDef,
    SoftmaxDef,
)
from .base import Finding, NetdefScope, Severity, rule


@lru_cache(maxsize=128)
def _walk(net: NetworkDef) -> tuple[tuple[str, Finding], ...]:
    """Tolerant shape walk; returns (rule_id, finding) pairs."""
    found: list[tuple[str, Finding]] = []
    dims: tuple[int, int, int, int] | None = (
        net.batch,
        net.in_channels,
        net.in_h,
        net.in_w,
    )
    features: int | None = None
    classifier_done = False

    for defn in net.layers:
        if classifier_done:
            found.append(
                (
                    "N003",
                    Finding(
                        defn.name,
                        "layer is unreachable: it follows the softmax classifier",
                    ),
                )
            )
            continue
        if isinstance(defn, ConvDef):
            if dims is None:
                found.append(
                    (
                        "N004",
                        Finding(
                            defn.name,
                            "convolution after flattening: a fully-connected "
                            "layer already collapsed the 4-D activations",
                        ),
                    )
                )
                continue
            n, c, h, w = dims
            if c % defn.groups:
                found.append(
                    (
                        "N005",
                        Finding(
                            defn.name,
                            f"groups={defn.groups} does not divide the "
                            f"propagated input channels C={c}",
                            {"groups": defn.groups, "channels": c},
                        ),
                    )
                )
            out_h = (h + 2 * defn.pad - defn.f) // defn.stride + 1
            out_w = (w + 2 * defn.pad - defn.f) // defn.stride + 1
            if out_h <= 0 or out_w <= 0:
                found.append(
                    (
                        "N001",
                        Finding(
                            defn.name,
                            f"filter {defn.f}x{defn.f} (stride {defn.stride}, "
                            f"pad {defn.pad}) does not fit the {h}x{w} input",
                            {"filter": defn.f, "input": [h, w], "pad": defn.pad},
                        ),
                    )
                )
                out_h, out_w = max(out_h, 1), max(out_w, 1)
            if defn.pad >= defn.f:
                found.append(
                    (
                        "N008",
                        Finding(
                            defn.name,
                            f"pad {defn.pad} >= filter extent {defn.f}: some "
                            "output windows read only zero padding",
                            {"pad": defn.pad, "filter": defn.f},
                        ),
                    )
                )
            dims = (n, defn.co, out_h, out_w)
        elif isinstance(defn, PoolDef):
            if dims is None:
                found.append(
                    (
                        "N004",
                        Finding(
                            defn.name,
                            "pooling after flattening: a fully-connected "
                            "layer already collapsed the 4-D activations",
                        ),
                    )
                )
                continue
            n, c, h, w = dims
            if defn.window > h or defn.window > w:
                found.append(
                    (
                        "N002",
                        Finding(
                            defn.name,
                            f"pooling window {defn.window} is larger than the "
                            f"{h}x{w} input",
                            {"window": defn.window, "input": [h, w]},
                        ),
                    )
                )
                continue  # output shape undefined; keep previous dims
            if defn.stride > defn.window:
                found.append(
                    (
                        "N007",
                        Finding(
                            defn.name,
                            f"stride {defn.stride} exceeds window {defn.window}: "
                            "input rows/columns are skipped entirely",
                            {"stride": defn.stride, "window": defn.window},
                        ),
                    )
                )
            out_h = -(-(h - defn.window) // defn.stride) + 1
            out_w = -(-(w - defn.window) // defn.stride) + 1
            dims = (n, c, out_h, out_w)
        elif isinstance(defn, LRNDef):
            if dims is None:
                found.append(
                    (
                        "N004",
                        Finding(
                            defn.name,
                            "LRN after flattening: a fully-connected layer "
                            "already collapsed the 4-D activations",
                        ),
                    )
                )
        elif isinstance(defn, FCDef):
            features = defn.out_features
            dims = None
        elif isinstance(defn, SoftmaxDef):
            if features is None:
                found.append(
                    (
                        "N006",
                        Finding(
                            defn.name,
                            "softmax has no preceding fully-connected layer "
                            "to define its category count",
                        ),
                    )
                )
            classifier_done = True

    if not classifier_done:
        found.append(
            (
                "N009",
                Finding(
                    net.layers[-1].name if net.layers else net.name,
                    "network ends without a softmax classifier head",
                ),
            )
        )
    return tuple(found)


def _from_walk(scope: NetdefScope, rule_id: str) -> Iterator[Finding]:
    if scope.net is None:
        return
    for rid, finding in _walk(scope.net):
        if rid == rule_id:
            yield finding


@rule(
    "N000",
    Severity.ERROR,
    "network definition cannot be parsed or constructed",
    rationale="A definition that fails parsing or construction-time "
    "hyperparameter validation has no well-defined layer stack to analyze.",
    example="conv layer with stride=0, or a malformed netdef file",
)
def netdef_invalid(scope: NetdefScope) -> Iterator[Finding]:
    if scope.error is not None:
        yield Finding("netdef", scope.error)


@rule(
    "N001",
    Severity.ERROR,
    "convolution window does not fit the padded input",
    rationale="Equation 1 yields a non-positive output extent; the layer "
    "cannot execute and every downstream shape is undefined.",
    example="7x7 filter on a 5x5 input with pad=0",
)
def conv_window_fit(scope: NetdefScope) -> Iterator[Finding]:
    yield from _from_walk(scope, "N001")


@rule(
    "N002",
    Severity.ERROR,
    "pooling window larger than the input extent",
    rationale="Even ceil-mode pooling needs the first window to start "
    "inside the input (Equation 2).",
    example="window=5 pooling on a 3x3 feature map",
)
def pool_window_fit(scope: NetdefScope) -> Iterator[Finding]:
    yield from _from_walk(scope, "N002")


@rule(
    "N003",
    Severity.ERROR,
    "layer is unreachable (follows the softmax classifier)",
    rationale="The softmax is the terminal classifier; anything after it is "
    "dead weight the framework would still allocate memory for.",
    example="a conv layer declared after the softmax line",
)
def dead_layer(scope: NetdefScope) -> Iterator[Finding]:
    yield from _from_walk(scope, "N003")


@rule(
    "N004",
    Severity.ERROR,
    "spatial layer after flattening",
    rationale="A fully-connected layer collapses the 4-D activations; a "
    "later conv/pool/LRN has no spatial input to operate on.",
    example="fc -> conv ordering",
)
def spatial_after_flatten(scope: NetdefScope) -> Iterator[Finding]:
    yield from _from_walk(scope, "N004")


@rule(
    "N005",
    Severity.ERROR,
    "channel groups do not divide the propagated input channels",
    rationale="Grouped convolution partitions both channel dimensions; a "
    "non-dividing group count is a channel-propagation inconsistency.",
    example="groups=2 convolution receiving 95 input channels",
)
def groups_divide_channels(scope: NetdefScope) -> Iterator[Finding]:
    yield from _from_walk(scope, "N005")


@rule(
    "N006",
    Severity.ERROR,
    "softmax without a preceding fully-connected layer",
    rationale="The classifier's category count comes from the last FC "
    "layer's output features; without one it is undefined.",
    example="conv -> softmax with no fc in between",
)
def softmax_needs_features(scope: NetdefScope) -> Iterator[Finding]:
    yield from _from_walk(scope, "N006")


@rule(
    "N007",
    Severity.WARNING,
    "pooling stride exceeds the window (input elements skipped)",
    rationale="Rows/columns between windows are never read — usually a "
    "transposed window/stride pair rather than an intended subsampling.",
    example="window=2, stride=3 pooling",
)
def pool_stride_skips(scope: NetdefScope) -> Iterator[Finding]:
    yield from _from_walk(scope, "N007")


@rule(
    "N008",
    Severity.WARNING,
    "padding at least as large as the filter extent",
    rationale="Output positions exist whose window reads only zero padding; "
    "they waste compute and dilute the feature map.",
    example="3x3 filter with pad=3",
)
def excessive_padding(scope: NetdefScope) -> Iterator[Finding]:
    yield from _from_walk(scope, "N008")


@rule(
    "N009",
    Severity.INFO,
    "network ends without a classifier head",
    rationale="Benchmark networks normally terminate in fc+softmax; a "
    "missing head is legal (feature extractor) but worth confirming.",
    example="a conv/pool-only stack",
)
def missing_classifier(scope: NetdefScope) -> Iterator[Finding]:
    yield from _from_walk(scope, "N009")
