"""K0xx rules: kernel launch configurations against device limits.

Hard limits reuse :func:`repro.gpusim.occupancy.check_launch` — the same
predicate the occupancy calculator enforces — so the linter and the
simulator can never disagree about what is launchable.  Soft rules look at
the occupancy result and the post-coalescing memory profile for patterns
the paper identifies as bandwidth killers (uncoalesced access, shared-
memory bank conflicts, partial warps, underfilled devices).
"""

from __future__ import annotations

from collections.abc import Iterator

from ...gpusim.occupancy import check_launch, compute_occupancy
from .base import Finding, KernelScope, Severity, rule

#: check_launch violation codes that mean "zero blocks fit on an SM"
_ZERO_OCCUPANCY_CODES = frozenset({"threads_per_sm", "regs_per_block", "smem_per_sm"})

#: minimum occupancy fraction before K005 flags latency-hiding trouble
LOW_OCCUPANCY_FRACTION = 0.25

#: transactions-per-ideal-segment ratio above which K006 flags coalescing
COALESCING_INFLATION_LIMIT = 4.0

#: per-thread access widths the coalescing unit handles at full efficiency
ALIGNED_ACCESS_BYTES = (4, 8, 16)


def _violations(scope: KernelScope):
    return check_launch(scope.device, scope.launch)


@rule(
    "K001",
    Severity.ERROR,
    "threads per block exceed the device limit",
    rationale="The hardware refuses the launch outright; no occupancy or "
    "timing question even arises.",
    example="a 2048-thread block on a device capped at 1024",
)
def threads_per_block(scope: KernelScope) -> Iterator[Finding]:
    for v in _violations(scope):
        if v.code == "threads_per_block":
            yield Finding(
                scope.subject, v.message, {"actual": v.actual, "limit": v.limit}
            )


@rule(
    "K002",
    Severity.ERROR,
    "per-block shared memory exceeds the device maximum",
    rationale="Static shared-memory allocations above the per-block cap "
    "fail at launch; tiled kernels must shrink their tiles instead.",
    example="a 64 KiB tile on a 48 KiB/block device",
)
def smem_per_block(scope: KernelScope) -> Iterator[Finding]:
    for v in _violations(scope):
        if v.code == "smem_per_block":
            yield Finding(
                scope.subject, v.message, {"actual": v.actual, "limit": v.limit}
            )


@rule(
    "K003",
    Severity.ERROR,
    "per-thread register demand exceeds the architectural maximum",
    rationale="The compiler would spill to local memory long before this; "
    "a model declaring more is describing an impossible kernel.",
    example="regs_per_thread=300 on Kepler (max 255)",
)
def regs_per_thread(scope: KernelScope) -> Iterator[Finding]:
    for v in _violations(scope):
        if v.code == "regs_per_thread":
            yield Finding(
                scope.subject, v.message, {"actual": v.actual, "limit": v.limit}
            )


@rule(
    "K004",
    Severity.ERROR,
    "zero-occupancy launch: no block fits on an SM",
    rationale="Thread, register, or shared-memory demand per block exceeds "
    "what one SM holds, so the kernel can never be resident — the "
    "misleading 'zero bandwidth' state the occupancy fix now rejects.",
    example="a block whose register file demand exceeds the whole SM's",
)
def zero_occupancy(scope: KernelScope) -> Iterator[Finding]:
    for v in _violations(scope):
        if v.code in _ZERO_OCCUPANCY_CODES:
            yield Finding(
                scope.subject,
                v.message,
                {"code": v.code, "actual": v.actual, "limit": v.limit},
            )


@rule(
    "K005",
    Severity.WARNING,
    "low occupancy impairs latency hiding",
    rationale="Below ~a quarter of the device's resident-warp maximum the "
    "bandwidth model degrades linearly (the paper's softmax analysis); "
    "check the binding limiter reported in the detail.",
    example="a 24 KiB/block kernel limited to 2 blocks per SM",
)
def low_occupancy(scope: KernelScope) -> Iterator[Finding]:
    if _violations(scope):
        return  # hard errors already reported; occupancy is undefined
    occ = compute_occupancy(scope.device, scope.launch)
    if occ.fraction < LOW_OCCUPANCY_FRACTION:
        yield Finding(
            scope.subject,
            f"occupancy {occ.fraction:.0%} of maximum (limited by "
            f"{occ.limiter}); memory latency will be poorly hidden",
            {"fraction": occ.fraction, "limiter": occ.limiter},
        )


@rule(
    "K006",
    Severity.WARNING,
    "memory access pattern defeats coalescing",
    rationale="Transactions far above the useful-byte minimum mean warps "
    "touch scattered 32 B segments — the Fig. 7a failure mode that "
    "motivates the tiled transformation kernels.",
    example="column-strided stores issuing one transaction per element",
)
def uncoalesced_access(scope: KernelScope) -> Iterator[Finding]:
    profile = scope.profile
    ideal = profile.useful_bytes / 32.0
    if ideal <= 0:
        return
    inflation = profile.total_transactions / ideal
    if inflation >= COALESCING_INFLATION_LIMIT:
        yield Finding(
            scope.subject,
            f"{inflation:.1f}x the transactions a coalesced kernel would "
            "issue for the same useful bytes",
            {"inflation": inflation},
        )


@rule(
    "K007",
    Severity.WARNING,
    "shared-memory access pattern causes bank conflicts",
    rationale="A conflict degree above 1 multiplies shared-memory replay "
    "cycles; padding the tile row (e.g. [32][33]) removes it, as in the "
    "paper's Transform-Opt1.",
    example="an unpadded 32x32 transpose tile (32-way conflicts)",
)
def bank_conflicts(scope: KernelScope) -> Iterator[Finding]:
    degree = scope.profile.smem_conflict_degree
    if degree > 1.0:
        yield Finding(
            scope.subject,
            f"average shared-memory replay degree {degree:.1f} "
            "(1.0 is conflict-free)",
            {"conflict_degree": degree},
        )


@rule(
    "K008",
    Severity.WARNING,
    "block size is not a multiple of the warp size",
    rationale="The trailing partial warp has predicated-off lanes that "
    "still occupy issue slots and residency, wasting both.",
    example="a 100-thread block on 32-lane warps",
)
def partial_warp_block(scope: KernelScope) -> Iterator[Finding]:
    threads = scope.launch.threads_per_block
    warp = scope.device.warp_size
    if threads % warp:
        yield Finding(
            scope.subject,
            f"{threads} threads per block is not a multiple of the "
            f"{warp}-lane warp; the last warp runs partially masked",
            {"threads_per_block": threads, "warp_size": warp},
        )


@rule(
    "K009",
    Severity.INFO,
    "grid does not fill the device",
    rationale="Fewer blocks than SMs leaves hardware idle regardless of "
    "per-SM occupancy — the 'parallelism of the outer loop is not enough' "
    "softmax situation.",
    example="a 5-block grid on a 15-SM device",
)
def grid_underfills_device(scope: KernelScope) -> Iterator[Finding]:
    blocks = scope.launch.total_blocks
    if blocks < scope.device.sm_count:
        yield Finding(
            scope.subject,
            f"grid of {blocks} block(s) cannot occupy all "
            f"{scope.device.sm_count} SMs",
            {"blocks": blocks, "sm_count": scope.device.sm_count},
        )


@rule(
    "K010",
    Severity.WARNING,
    "per-thread access width is not coalescing-aligned",
    rationale="The device's bandwidth derate table covers 4/8/16-byte "
    "accesses; other widths split across segment boundaries and forfeit "
    "the vectorization gain of the 8-byte mode.",
    example="a kernel modelling 6-byte per-thread accesses",
)
def access_width(scope: KernelScope) -> Iterator[Finding]:
    width = scope.profile.access_bytes
    if width not in ALIGNED_ACCESS_BYTES:
        yield Finding(
            scope.subject,
            f"dominant access width {width} B is not one of "
            f"{list(ALIGNED_ACCESS_BYTES)}",
            {"access_bytes": width},
        )
