"""Rule catalog for the static analyzer.

Importing this package populates :data:`REGISTRY` with every built-in rule:
``N0xx`` network-definition checks, ``L0xx`` layout-plan checks, ``K0xx``
kernel/device-limit checks, and ``D0xx`` graph-dataflow checks.
"""

from . import kernel_rules, layout_rules, netdef_rules  # noqa: F401  (registration)
from . import dataflow_rules  # noqa: F401  (registration; needs base loaded)
from .base import (
    REGISTRY,
    Diagnostic,
    Finding,
    GraphScope,
    KernelScope,
    NetdefScope,
    PlanScope,
    Rule,
    Severity,
    rule,
    rules_for,
)

__all__ = [
    "Diagnostic",
    "Finding",
    "GraphScope",
    "KernelScope",
    "NetdefScope",
    "PlanScope",
    "REGISTRY",
    "Rule",
    "Severity",
    "rule",
    "rules_for",
]
