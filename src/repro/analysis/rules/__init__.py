"""Rule catalog for the static analyzer.

Importing this package populates :data:`REGISTRY` with every built-in rule:
``N0xx`` network-definition checks, ``L0xx`` layout-plan checks, and
``K0xx`` kernel/device-limit checks.
"""

from . import kernel_rules, layout_rules, netdef_rules  # noqa: F401  (registration)
from .base import (
    REGISTRY,
    Diagnostic,
    Finding,
    KernelScope,
    NetdefScope,
    PlanScope,
    Rule,
    Severity,
    rule,
    rules_for,
)

__all__ = [
    "Diagnostic",
    "Finding",
    "KernelScope",
    "NetdefScope",
    "PlanScope",
    "REGISTRY",
    "Rule",
    "Severity",
    "rule",
    "rules_for",
]
