"""Rule registry and diagnostic vocabulary for the static analyzer.

Every check the linter can perform is a :class:`Rule` with a stable ID
(``N0xx`` network definitions, ``L0xx`` layout plans, ``K0xx`` kernel
models), a default severity, and a human rationale.  Rules register
themselves with the :func:`rule` decorator at import time; the runner in
:mod:`repro.analysis.lint` selects the active subset per scope and turns
the findings each rule yields into :class:`Diagnostic` records.
"""

from __future__ import annotations

import re
from collections.abc import Callable, Iterable, Iterator
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

from ...core.heuristic import LayoutThresholds
from ...core.planner import LayoutPlan, PlanNode, PlanStep
from ...framework.netdef import NetworkDef
from ...gpusim.device import DeviceSpec
from ...gpusim.kernel import KernelModel, LaunchConfig, MemoryProfile
from ...ir.graph import Graph, GraphNode


class Severity(Enum):
    """Diagnostic severity, ordered error > warning > info."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "info": 2}[self.value]


@dataclass(frozen=True)
class Diagnostic:
    """One concrete finding: a rule firing on one subject.

    ``subject`` names the offending layer/step/kernel; ``detail`` carries
    machine-readable context (limits, distances, layout names) for the JSON
    output mode.
    """

    rule_id: str
    severity: Severity
    subject: str
    message: str
    network: str = ""
    detail: dict[str, Any] = field(default_factory=dict)

    def format(self) -> str:
        scope = f"{self.network}:{self.subject}" if self.network else self.subject
        return f"{scope}: {self.severity.value} {self.rule_id}: {self.message}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule_id,
            "severity": self.severity.value,
            "subject": self.subject,
            "network": self.network,
            "message": self.message,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class Finding:
    """What a rule's check yields; the runner stamps rule ID and severity."""

    subject: str
    message: str
    detail: dict[str, Any] = field(default_factory=dict)


# ---------------------------------------------------------------------------
# Scopes: the three inputs rules can inspect
# ---------------------------------------------------------------------------


@dataclass
class NetdefScope:
    """A network definition under analysis.

    ``error`` carries a parse/construction failure message when the
    definition could not even be built — only rule N000 consumes it.
    """

    net: NetworkDef | None
    error: str | None = None


@dataclass
class PlanScope:
    """A layout plan under analysis, optionally with the planner nodes it
    was derived from and the device's heuristic thresholds.

    ``graph`` carries the annotated network IR the pipeline planned over.
    When present, the edge-walking rules (L001/L002) follow the graph's
    real producer/consumer edges instead of assuming the step list is a
    chain — the only sound reading for branching networks.  ``nodes`` may
    hold either legacy :class:`PlanNode` records or IR
    :class:`~repro.ir.graph.GraphNode` records (they share the fields the
    rules inspect)."""

    device: DeviceSpec
    plan: LayoutPlan
    nodes: tuple[PlanNode, ...] | tuple[GraphNode, ...] | None = None
    thresholds: LayoutThresholds | None = None
    #: +/- range around (Ct, Nt) treated as the ambiguous region (L003)
    margin: int = 1
    graph: Graph | None = None

    @property
    def layout_steps(self) -> tuple[PlanStep, ...]:
        return self.plan.layout_steps()


@dataclass
class GraphScope:
    """An annotated network-graph IR under dataflow verification.

    The D0xx rules run abstract shape/layout interpretation and liveness
    analysis over the graph's real producer→consumer edges — the
    DAG-sound generalization of the chain-walking L-rules.  ``device`` is
    optional context for messages; the checks themselves are pure graph
    dataflow.
    """

    graph: Graph
    device: DeviceSpec | None = None


@dataclass
class KernelScope:
    """One kernel model checked against one device's limits."""

    device: DeviceSpec
    kernel: KernelModel
    owner: str = ""
    _launch: LaunchConfig | None = None
    _profile: MemoryProfile | None = None

    @property
    def subject(self) -> str:
        return self.owner or self.kernel.name

    @property
    def launch(self) -> LaunchConfig:
        if self._launch is None:
            self._launch = self.kernel.launch_config(self.device)
        return self._launch

    @property
    def profile(self) -> MemoryProfile:
        if self._profile is None:
            self._profile = self.kernel.memory_profile(self.device)
        return self._profile


Scope = NetdefScope | PlanScope | KernelScope | GraphScope

CheckFn = Callable[[Any], Iterable[Finding]]

_SCOPE_OF_PREFIX = {"N": "netdef", "L": "plan", "K": "kernel", "D": "graph"}
_ID_PATTERN = re.compile(r"^[NLKD]\d{3}$")


@dataclass(frozen=True)
class Rule:
    """A registered check: identity, documentation, and the check itself."""

    id: str
    severity: Severity
    summary: str
    check: CheckFn
    rationale: str = ""
    example: str = ""

    @property
    def scope(self) -> str:
        """Which input kind the rule inspects (netdef/plan/kernel)."""
        return _SCOPE_OF_PREFIX[self.id[0]]


REGISTRY: dict[str, Rule] = {}


def rule(
    rule_id: str,
    severity: Severity,
    summary: str,
    rationale: str = "",
    example: str = "",
) -> Callable[[CheckFn], CheckFn]:
    """Register a check function under a stable rule ID."""
    if not _ID_PATTERN.match(rule_id):
        raise ValueError(f"rule id {rule_id!r} must match N/L/K/D + 3 digits")
    if rule_id in REGISTRY:
        raise ValueError(f"duplicate rule id {rule_id}")

    def decorator(fn: CheckFn) -> CheckFn:
        REGISTRY[rule_id] = Rule(
            id=rule_id,
            severity=severity,
            summary=summary,
            check=fn,
            rationale=rationale,
            example=example,
        )
        return fn

    return decorator


def rules_for(scope: str) -> Iterator[Rule]:
    """All registered rules for one scope, in rule-ID order."""
    for rule_id in sorted(REGISTRY):
        if REGISTRY[rule_id].scope == scope:
            yield REGISTRY[rule_id]
