"""D0xx rules: dataflow verification of annotated network graphs.

The L-rules pattern-match the linear plan-step list; these rules run the
abstract-interpretation and liveness analyses from
:mod:`repro.analysis.dataflow` over the graph IR's real producer→consumer
edges, so they are sound on branching (Inception/ResNet-style) networks.
They back three surfaces with one implementation: ``repro lint`` (this
registry), ``repro verify`` / :func:`~repro.analysis.dataflow.verify.verify_graph`,
and the pass-contract verifier between pipeline passes.
"""

from __future__ import annotations

from collections.abc import Iterator

from ..dataflow.interp import (
    check_inverse_pairs,
    check_layout_coherence,
    check_shapes,
    check_structure,
    check_transform_annotations,
)
from ..dataflow.liveness import check_double_counts, check_liveness
from .base import Finding, GraphScope, Severity, rule


@rule(
    "D001",
    Severity.ERROR,
    "edge shape fact contradicts the consumer's annotations",
    rationale="Abstract shape interpretation propagates each producer's "
    "output dims along its real edges; a consumer whose in_dims or spec "
    "geometry disagrees would read out-of-bounds or mis-strided data.",
    example="a conv annotated for 64x64 input fed by a 32x32 producer, or "
    "a concat whose branch spatial dims differ",
)
def edge_shape_mismatch(scope: GraphScope) -> Iterator[Finding]:
    yield from check_shapes(scope.graph)


@rule(
    "D002",
    Severity.ERROR,
    "dangling edge or malformed graph structure",
    rationale="Every input edge must name a node present in the graph and "
    "every transform must sit on a real edge; a dangling reference means "
    "a pass dropped a producer without rewiring its consumers.",
    example="a pass deletes node 'conv2' but 'pool2' still lists it as "
    "an input",
)
def dangling_edge(scope: GraphScope) -> Iterator[Finding]:
    yield from check_structure(scope.graph)


@rule(
    "D003",
    Severity.ERROR,
    "consumed layout is not produced on an edge (missing transform)",
    rationale="The layout arriving over each edge — the producer's "
    "propagated layout, rewritten by the edge's transform if one exists — "
    "must equal the consumer's assigned layout; otherwise the consumer "
    "reads permuted garbage.  This is L001 generalized from chains to "
    "DAGs by dataflow.",
    example="a CHWN branch feeding an NCHW conv with no EdgeTransform "
    "recorded on that edge",
)
def missing_transform(scope: GraphScope) -> Iterator[Finding]:
    yield from check_layout_coherence(scope.graph)


@rule(
    "D004",
    Severity.ERROR,
    "transform annotation contradicts the propagated layout facts",
    rationale="A transform claiming to read a layout its producer does "
    "not deliver (or to produce one its consumer does not run in) would "
    "execute the wrong permutation kernel — the plan looks repaired but "
    "the data is still scrambled.",
    example="an edge transform NCHW->CHWN under a producer whose "
    "propagated layout fact is CHWN",
)
def transform_fact_mismatch(scope: GraphScope) -> Iterator[Finding]:
    yield from check_transform_annotations(scope.graph)


@rule(
    "D005",
    Severity.WARNING,
    "transform-inverse pair not eliminated across a layout-agnostic node",
    rationale="A layout-agnostic node (LRN, concat) relabeled to its "
    "neighbours' layout drops its incident transforms at zero kernel "
    "cost; a surviving cancellable pair means "
    "EliminateRedundantTransforms missed a strict win.",
    example="CHWN branches joining an NCHW-labeled concat whose only "
    "consumer immediately transforms back to CHWN",
)
def uneliminated_inverse_pair(scope: GraphScope) -> Iterator[Finding]:
    yield from check_inverse_pairs(scope.graph)


@rule(
    "D006",
    Severity.ERROR,
    "buffer used outside its liveness interval (use-after-free)",
    rationale="Under the last-use-free allocator the liveness model "
    "assumes, a consumer scheduled at or before its producer reads a "
    "buffer that is not (or no longer) allocated.",
    example="a corrupted schedule placing 'pool1' before the 'conv1' "
    "whose output it reads",
)
def use_outside_interval(scope: GraphScope) -> Iterator[Finding]:
    yield from check_liveness(scope.graph)


@rule(
    "D007",
    Severity.ERROR,
    "duplicate edge double-counts and double-frees a buffer",
    rationale="The allocator model releases a buffer once per consuming "
    "edge at its last use; a duplicate edge frees it twice and the "
    "footprint model counts it twice.",
    example="a concat listing the same branch output as two of its inputs",
)
def double_count_hazard(scope: GraphScope) -> Iterator[Finding]:
    yield from check_double_counts(scope.graph)
