"""L0xx rules: layout-plan verification.

The planner's output is a chain of layout-bearing steps with explicit
transform records (:attr:`PlanStep.transformed_from`).  These rules walk
that chain as a layout graph: every producer→consumer layout change must
carry a transform, transform/inverse-transform islands are flagged for
review, and each step's implementation must belong to its layout's family.
"""

from __future__ import annotations

from collections.abc import Iterator

from ...core.heuristic import (
    conv_threshold_margins,
    is_threshold_ambiguous,
    thresholds_for,
)
from ...core.planner import NodeKind
from ...core.selector import LAYOUT_IMPLEMENTATIONS, POOL_LAYOUT_IMPLEMENTATIONS
from ...layers.base import ConvSpec
from ...tensors.layout import CHWN
from .base import Finding, PlanScope, Severity, rule


@rule(
    "L001",
    Severity.ERROR,
    "producer/consumer layout mismatch without an explicit transform",
    rationale="The framework integration (Section IV.D) must insert a "
    "transformation kernel wherever consecutive layers disagree on layout; "
    "a silent mismatch means the consumer would read permuted garbage.",
    example="a CHWN conv feeding an NCHW conv with no transform recorded",
)
def layout_mismatch(scope: PlanScope) -> Iterator[Finding]:
    if scope.graph is not None:
        yield from _graph_layout_mismatch(scope)
        return
    # Walk the FULL chain, not just layout-bearing steps: layout-agnostic
    # steps (LRN, elementwise) can host a boundary transform whose target
    # only `transformed_to` records.
    current = None
    for step in scope.plan.steps:
        if step.transformed_from is not None:
            if current is not None and step.transformed_from != current:
                yield Finding(
                    step.name,
                    f"transform source {step.transformed_from} does not "
                    f"match the producer layout {current}",
                    {
                        "producer": str(current),
                        "transform_source": str(step.transformed_from),
                    },
                )
            target = step.transformed_to or step.layout
            if target is not None:
                current = target
        if step.layout is None:
            continue
        if current is None:
            current = step.layout
        elif step.layout != current:
            yield Finding(
                step.name,
                f"input arrives in {current} but the step runs in "
                f"{step.layout} with no transform recorded",
                {"producer": str(current), "consumer": str(step.layout)},
            )
            current = step.layout


@rule(
    "L002",
    Severity.WARNING,
    "transform immediately undone by its inverse",
    rationale="A single-layer layout island pays two boundary transforms; "
    "the fine-tuning step (Section IV.D) keeps it only when the layer's "
    "layout benefit exceeds both — verify that trade-off holds.",
    example="NCHW -> CHWN for one pool, then CHWN -> NCHW straight back",
)
def redundant_transform_pair(scope: PlanScope) -> Iterator[Finding]:
    if scope.graph is not None:
        yield from _graph_redundant_transform_pair(scope)
        return
    steps = scope.layout_steps
    for step, nxt in zip(steps, steps[1:]):
        if (
            step.transformed_from is not None
            and nxt.transformed_from == step.layout
            and nxt.layout == step.transformed_from
        ):
            yield Finding(
                step.name,
                f"transform {step.transformed_from} -> {step.layout} is "
                f"undone right after this step; the island costs "
                f"{step.transform_ms + nxt.transform_ms:.3f} ms of transforms",
                {
                    "island_layout": str(step.layout),
                    "surrounding_layout": str(nxt.layout),
                    "transform_ms": step.transform_ms + nxt.transform_ms,
                },
            )


def _graph_layout_mismatch(scope: PlanScope) -> Iterator[Finding]:
    """L001 over the IR: check every producer→consumer edge, not a chain."""
    graph = scope.graph
    assert graph is not None
    for node in graph.topological():
        if node.kind is NodeKind.CLASSIFIER:
            continue  # data is flattened to 2-D here; layout is moot
        by_src = {t.src: t for t in node.transforms}
        for producer in graph.producers(node.name):
            t = by_src.get(producer.name)
            if t is not None:
                if producer.layout is not None and t.from_layout != producer.layout:
                    yield Finding(
                        node.name,
                        f"transform source {t.from_layout} does not match "
                        f"the layout {producer.layout} of producer "
                        f"{producer.name}",
                        {
                            "producer": str(producer.layout),
                            "transform_source": str(t.from_layout),
                            "edge": producer.name,
                        },
                    )
                effective = t.to_layout
            else:
                effective = producer.layout
            if (
                node.layout is not None
                and effective is not None
                and effective != node.layout
            ):
                yield Finding(
                    node.name,
                    f"input from {producer.name} arrives in {effective} but "
                    f"the node runs in {node.layout} with no transform "
                    f"recorded",
                    {
                        "producer": str(effective),
                        "consumer": str(node.layout),
                        "edge": producer.name,
                    },
                )


def _graph_redundant_transform_pair(scope: PlanScope) -> Iterator[Finding]:
    """L002 over the IR: a transform on an incoming edge undone on an
    outgoing edge is a layout island regardless of chain position."""
    graph = scope.graph
    assert graph is not None
    for node in graph.topological():
        for t_in in node.transforms:
            for consumer in graph.consumers(node.name):
                for t_out in consumer.transforms:
                    if (
                        t_out.src == node.name
                        and t_out.from_layout == t_in.to_layout
                        and t_out.to_layout == t_in.from_layout
                    ):
                        yield Finding(
                            node.name,
                            f"transform {t_in.from_layout} -> {t_in.to_layout} "
                            f"is undone on the edge to {consumer.name}; the "
                            f"island costs {t_in.ms + t_out.ms:.3f} ms of "
                            f"transforms",
                            {
                                "island_layout": str(t_in.to_layout),
                                "surrounding_layout": str(t_out.to_layout),
                                "transform_ms": t_in.ms + t_out.ms,
                            },
                        )


@rule(
    "L003",
    Severity.WARNING,
    "layer sits in the ambiguous region around the (Ct, Nt) thresholds",
    rationale="Within +/-1 of a threshold the heuristic's answer flips "
    "under a trivial shape change; the paper's one-time profiling "
    "fine-tune, not the raw rule, should arbitrate these layers.",
    example="a conv with C equal to Ct, or N one below Nt",
)
def threshold_ambiguity(scope: PlanScope) -> Iterator[Finding]:
    if scope.nodes is None:
        return
    thresholds = scope.thresholds or thresholds_for(scope.device)
    for node in scope.nodes:
        if node.kind is not NodeKind.CONV or not isinstance(node.spec, ConvSpec):
            continue
        if is_threshold_ambiguous(node.spec, thresholds, scope.margin):
            margins = conv_threshold_margins(node.spec, thresholds)
            yield Finding(
                node.name,
                f"layout choice flips within +/-{scope.margin} of a "
                f"threshold (C-Ct={margins.c_distance:+d}, "
                f"N-Nt={margins.n_distance:+d})",
                {
                    "c_distance": margins.c_distance,
                    "n_distance": margins.n_distance,
                    "margin": scope.margin,
                },
            )


@rule(
    "L004",
    Severity.ERROR,
    "conv step assigned a layout with no implementation family",
    rationale="Every candidate layout needs a registered convolution "
    "implementation (Section IV.D); an unknown layout cannot execute.",
    example="a plan placing a conv in NHWC without the im2col-nhwc family",
)
def unsupported_layout(scope: PlanScope) -> Iterator[Finding]:
    for step in scope.layout_steps:
        if step.kind is NodeKind.CONV and str(step.layout) not in LAYOUT_IMPLEMENTATIONS:
            yield Finding(
                step.name,
                f"no convolution implementation family is registered for "
                f"layout {step.layout}",
                {"layout": str(step.layout)},
            )


@rule(
    "L005",
    Severity.ERROR,
    "implementation does not belong to the step's layout family",
    rationale="Each layout has its preferred implementations (direct for "
    "CHWN, MM/FFT for NCHW); a cross-family assignment would read the "
    "tensor with the wrong stride pattern.",
    example="'direct' (a CHWN kernel) scheduled on an NCHW step",
)
def implementation_layout_mismatch(scope: PlanScope) -> Iterator[Finding]:
    for step in scope.layout_steps:
        key = str(step.layout)
        if step.kind is NodeKind.CONV:
            allowed = LAYOUT_IMPLEMENTATIONS.get(key)
        else:
            # Every non-CHWN pooling layout shares the channel-major kernels.
            allowed = POOL_LAYOUT_IMPLEMENTATIONS.get(
                key, POOL_LAYOUT_IMPLEMENTATIONS["NCHW"]
            )
        if allowed is not None and step.implementation not in allowed:
            yield Finding(
                step.name,
                f"implementation {step.implementation!r} is not in the "
                f"{step.layout} family {sorted(allowed)}",
                {"implementation": step.implementation, "layout": key},
            )


@rule(
    "L006",
    Severity.ERROR,
    "plan does not cover the network's layer chain",
    rationale="A plan is only valid for the exact layer sequence it was "
    "derived from; missing, extra, or reordered steps mean transforms "
    "would be inserted at the wrong boundaries.",
    example="linting a VGG plan against an AlexNet definition",
)
def plan_chain_mismatch(scope: PlanScope) -> Iterator[Finding]:
    if scope.nodes is None:
        return
    node_names = [n.name for n in scope.nodes]
    step_names = [s.name for s in scope.plan.steps]
    if node_names == step_names:
        return
    missing = [n for n in node_names if n not in step_names]
    extra = [s for s in step_names if s not in node_names]
    if missing or extra:
        detail = {"missing": missing, "extra": extra}
        parts = []
        if missing:
            parts.append(f"missing steps {missing}")
        if extra:
            parts.append(f"unknown steps {extra}")
        yield Finding(scope.plan.strategy, "; ".join(parts), detail)
    else:
        yield Finding(
            scope.plan.strategy,
            "plan steps are reordered relative to the layer chain",
            {"nodes": node_names, "steps": step_names},
        )


@rule(
    "L007",
    Severity.INFO,
    "pooling layer left in a channel-major layout",
    rationale="Pooling always prefers CHWN (Section IV.B); staying "
    "channel-major is legitimate only when the boundary transforms cost "
    "more than the kernel saves.",
    example="an NCHW pool inside a long NCHW conv run",
)
def pool_channel_major(scope: PlanScope) -> Iterator[Finding]:
    for step in scope.layout_steps:
        if step.kind is NodeKind.POOL and step.layout != CHWN:
            yield Finding(
                step.name,
                f"pool runs in {step.layout}; CHWN is always preferred for "
                "pooling when the boundary transforms pay for themselves",
                {"layout": str(step.layout)},
            )
