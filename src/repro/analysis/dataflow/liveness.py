"""Buffer liveness over the graph IR: intervals, hazards, and the
liveness-based peak-memory curve.

``framework.memory.network_footprint`` models the Caffe allocator the
paper measured against: every activation lives for the whole run and the
peak adds one largest workspace.  That is sound but loose — an inference
allocator that frees each buffer after its *last use* (interval liveness,
as in Demmel & Dinh's communication-optimal analysis and cuDNN workspace
accounting) peaks much lower.  This module computes that model:

* :class:`LivenessAnalysis` — a backward dataflow whose fact is the set
  of buffers still needed (a buffer is named by its producing node; ``""``
  is the network input);
* :func:`buffer_intervals` — first-def/last-use schedule intervals per
  buffer, derived from the fixpoint;
* :func:`liveness_footprint` — the step-by-step live-byte curve and its
  peak, directly comparable to ``network_footprint.peak_bytes``;
* :func:`check_liveness` — use-outside-interval (use-after-free under a
  last-use-free allocator) and duplicate-edge double-free/double-count
  hazards, surfaced as the D006/D007 lint rules.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import prod
from typing import Iterator

from ...ir.graph import Graph, GraphNode, NodeKind
from ...layers.base import ConvSpec, FCSpec, SoftmaxSpec
from ...layers.conv_kernels import ConvUnsupportedError, make_conv_kernel
from ..rules.base import Finding
from .framework import DataflowAnalysis, run_analysis

INPUT_BUFFER = ""  # the network-input pseudo buffer


class LivenessAnalysis(DataflowAnalysis[frozenset[str]]):
    """Backward analysis: which buffers are still needed before a node.

    ``live_in(n) = (live_out(n) - {n}) | uses(n)`` — the classic liveness
    equations with each node defining exactly one buffer (its output) and
    using its input edges' buffers.
    """

    name = "liveness"
    direction = "backward"

    def boundary(self, graph: Graph) -> frozenset[str]:
        return frozenset()

    def join(self, a: frozenset[str], b: frozenset[str]) -> frozenset[str]:
        return a | b

    def transfer(
        self, graph: Graph, node: GraphNode, fact: frozenset[str]
    ) -> frozenset[str]:
        uses = frozenset(node.inputs) if node.inputs else frozenset({INPUT_BUFFER})
        return (fact - {node.name}) | uses


@dataclass(frozen=True)
class BufferInterval:
    """One buffer's life in schedule order: defined at ``start`` (the
    producing step; -1 for the network input), last used at ``end``."""

    buffer: str
    start: int
    end: int
    nbytes: int

    def live_at(self, step: int) -> bool:
        return self.start <= step <= self.end


def _buffer_bytes(graph: Graph, node: GraphNode) -> int:
    """Bytes of one node's output buffer (fp32), mirroring the sizing in
    ``framework.memory._activation_bytes`` so the liveness curve and the
    conservative model count the same buffers."""
    if node.out_dims is not None:
        return 4 * prod(node.out_dims)
    if node.out_features is not None:
        spec = node.spec
        batch = spec.n if isinstance(spec, (FCSpec, SoftmaxSpec)) else graph.batch
        return 4 * batch * node.out_features
    return 0


def buffer_intervals(graph: Graph) -> dict[str, BufferInterval]:
    """First-def/last-use intervals for every buffer, in schedule order.

    Derived from the :class:`LivenessAnalysis` fixpoint: a buffer's
    interval runs from its defining step to the last step whose live-in
    set still contains it (a linear-schedule allocator cannot free it
    earlier).  A buffer with no consumers ends at its defining step; the
    network input starts at -1 — live before the first node runs.
    """
    order = graph.topological()
    position = {node.name: i for i, node in enumerate(order)}
    result = run_analysis(graph, LivenessAnalysis())
    last_use: dict[str, int] = {INPUT_BUFFER: -1}
    for node in order:
        # out_facts is the backward-transfer output: live *entering* the
        # node in execution order, i.e. the buffers it or a later
        # consumer still reads.
        for buffer in result.out_facts.get(node.name, frozenset()):
            last_use[buffer] = max(
                last_use.get(buffer, -1), position[node.name]
            )
    intervals: dict[str, BufferInterval] = {}
    input_bytes = 4 * prod(graph.in_dims)
    intervals[INPUT_BUFFER] = BufferInterval(
        INPUT_BUFFER, -1, last_use[INPUT_BUFFER], input_bytes
    )
    for node in order:
        start = position[node.name]
        intervals[node.name] = BufferInterval(
            node.name,
            start,
            max(last_use.get(node.name, start), start),
            _buffer_bytes(graph, node),
        )
    return intervals


def _weights_bytes(node: GraphNode) -> int:
    spec = node.spec
    if isinstance(spec, ConvSpec):
        return spec.filter_bytes + 4 * spec.co
    if isinstance(spec, FCSpec):
        return 4 * (spec.in_features * spec.out_features + spec.out_features)
    return 0


def _scratch_bytes(graph: Graph, node: GraphNode) -> int:
    """Transient scratch live while ``node`` executes: the larger of its
    conv workspace (im2col/FFT buffers under the selected implementation)
    and its largest transform destination buffer.  The two never coexist —
    a transform's scratch is freed before the kernel launches (the paper's
    "freed right after the layout transformation is completed")."""
    workspace = 0
    if node.kind is NodeKind.CONV and isinstance(node.spec, ConvSpec):
        try:
            kernel = make_conv_kernel(node.spec, node.implementation or "im2col")
            workspace = int(kernel.workspace_bytes())
        except ConvUnsupportedError:
            workspace = 0  # an invalid selection; D-rules report it elsewhere
    transform = 0
    for t in node.transforms:
        if t.src in graph.nodes and len(node.inputs) > 1:
            dims = graph[t.src].out_dims
        else:
            dims = node.in_dims
        if dims is not None:
            transform = max(transform, 4 * prod(dims))
    return max(workspace, transform)


@dataclass(frozen=True)
class LivenessFootprint:
    """The liveness-based memory model for one annotated graph."""

    #: (step name, live bytes while that step executes), in schedule order
    curve: tuple[tuple[str, int], ...]
    peak_bytes: int
    peak_step: str
    weights_bytes: int
    intervals: dict[str, BufferInterval]

    def summary(self) -> str:
        mib = 1 << 20
        lines = [
            f"liveness peak {self.peak_bytes / mib:.1f} MiB at {self.peak_step} "
            f"(weights {self.weights_bytes / mib:.1f} MiB resident)"
        ]
        for name, live in self.curve:
            bar = "#" * max(1, int(40 * live / self.peak_bytes)) if self.peak_bytes else ""
            lines.append(f"  {name:14s} {live / mib:9.1f} MiB {bar}")
        return "\n".join(lines)


def liveness_footprint(graph: Graph, training: bool = False) -> LivenessFootprint:
    """Step-by-step live bytes under a last-use-free allocator.

    At each step the live set is: resident weights, every activation
    buffer whose interval covers the step, and the executing node's
    scratch.  ``training=True`` pins every activation to the end of the
    schedule (the backward pass re-reads them), doubles activations and
    triples weights — the same multipliers as ``network_footprint``, so
    the two models stay directly comparable.
    """
    order = graph.topological()
    intervals = buffer_intervals(graph)
    weights = sum(_weights_bytes(node) for node in order)
    if training:
        weights *= 3
        end = len(order) - 1
        intervals = {
            name: BufferInterval(iv.buffer, iv.start, end, iv.nbytes)
            for name, iv in intervals.items()
        }
    act_scale = 2 if training else 1
    curve: list[tuple[str, int]] = []
    peak, peak_step = 0, ""
    for i, node in enumerate(order):
        live = weights
        live += act_scale * sum(
            iv.nbytes for iv in intervals.values() if iv.live_at(i)
        )
        live += _scratch_bytes(graph, node)
        curve.append((node.name, live))
        if live > peak:
            peak, peak_step = live, node.name
    return LivenessFootprint(
        curve=tuple(curve),
        peak_bytes=peak,
        peak_step=peak_step,
        weights_bytes=weights,
        intervals=intervals,
    )


# ---------------------------------------------------------------------------
# hazards
# ---------------------------------------------------------------------------


def check_liveness(graph: Graph) -> Iterator[Finding]:
    """Use-after-free hazards: a node reading a buffer outside the
    interval a last-use-free allocator would keep it alive for — i.e. a
    consumer scheduled before its producer has defined the buffer."""
    position = {name: i for i, name in enumerate(graph.nodes)}
    for node in graph.topological():
        for src in node.inputs:
            if src in position and position[src] >= position[node.name]:
                yield Finding(
                    node.name,
                    f"reads buffer {src!r} before it is defined in schedule "
                    f"order — the allocator would have freed (or never "
                    f"allocated) it at this step",
                    {"edge": src, "kind": "use-outside-interval"},
                )


def check_double_counts(graph: Graph) -> Iterator[Finding]:
    """Double-free/double-count hazards: a duplicate input edge makes the
    allocator model release (and the footprint model count) the same
    buffer once per reference."""
    for node in graph.topological():
        seen: set[str] = set()
        for src in node.inputs:
            if src in seen:
                yield Finding(
                    node.name,
                    f"duplicate edge from {src!r}: the buffer would be "
                    f"counted twice and freed twice by the allocator model",
                    {"edge": src, "kind": "double-free"},
                )
            seen.add(src)
